// Command tracegen generates a synthetic Turbulence workload trace with
// the statistical shape of the production SQL log (§VI.A) and writes it to
// a file that the jaws CLI can replay.
//
// Usage:
//
//	tracegen -jobs 1000 -o trace.json.gz
//	tracegen -jobs 200 -speedup 4 -seed 7 -o fast.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"jaws/internal/workload"
)

func main() {
	var (
		out     = flag.String("o", "trace.json.gz", "output file (.gz suffix enables compression)")
		jobs    = flag.Int("jobs", 1000, "number of jobs")
		steps   = flag.Int("steps", 31, "time steps in the target store")
		seed    = flag.Int64("seed", 1, "generator seed")
		speedup = flag.Float64("speedup", 1, "arrival speed-up")
		points  = flag.Int("points", 60, "mean positions per query")
		gap     = flag.Duration("gap", 4*time.Second, "mean inter-job arrival gap")
		ordered = flag.Float64("ordered", 0.7, "fraction of multi-query jobs that are ordered")
		scale   = flag.Int("qscale", 10, "query-count divisor vs paper scale")
	)
	flag.Parse()

	w := workload.Generate(workload.Config{
		Seed:           *seed,
		Steps:          *steps,
		Jobs:           *jobs,
		PointsPerQuery: *points,
		OrderedFrac:    *ordered,
		SpeedUp:        *speedup,
		MeanJobGap:     *gap,
		QueryScale:     *scale,
	})

	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := workload.Save(f, w, strings.HasSuffix(*out, ".gz")); err != nil {
		fatalf("%v", err)
	}
	info, err := f.Stat()
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %s: %s (%d bytes)\n", *out, workload.Describe(w), info.Size())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
