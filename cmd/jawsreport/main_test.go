package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestGolden locks the report's rendering against golden files; run with
// -update after intentional output changes.
func TestGolden(t *testing.T) {
	for _, tc := range []struct{ fixture, golden string }{
		{"trace.jsonl", "trace.golden"},
		{"truncated.jsonl", "truncated.golden"},
	} {
		t.Run(tc.fixture, func(t *testing.T) {
			// Input fixtures are shared with cmd/tracestat (both commands
			// consume the same trace format); goldens stay per-command.
			in, err := os.Open(filepath.Join("..", "testdata", tc.fixture))
			if err != nil {
				t.Fatal(err)
			}
			defer in.Close()
			var out bytes.Buffer
			if err := run(in, tc.fixture, &out, 10); err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s (rerun with -update after intentional changes):\n%s", tc.golden, out.String())
			}
		})
	}
}

// TestNoSpans checks the error path for a trace without lifecycle spans.
func TestNoSpans(t *testing.T) {
	in := bytes.NewBufferString(`{"t":0,"kind":"cache_hit","step":1,"code":5}` + "\n")
	var out bytes.Buffer
	if err := run(in, "nospans", &out, 10); err == nil {
		t.Fatal("expected an error for a span-free trace")
	}
}
