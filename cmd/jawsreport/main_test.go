package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestGolden locks the report's rendering against golden files; run with
// -update after intentional output changes.
func TestGolden(t *testing.T) {
	for _, tc := range []struct {
		fixture, golden string
		wantIntegrity   bool
	}{
		{"trace.jsonl", "trace.golden", false},
		// The truncated fixture has no footer: the report must render in
		// full AND the audit must fail with the errIntegrity exit.
		{"truncated.jsonl", "truncated.golden", true},
		{"service.jsonl", "service.golden", false},
	} {
		t.Run(tc.fixture, func(t *testing.T) {
			// Input fixtures are shared with cmd/tracestat (both commands
			// consume the same trace format); goldens stay per-command.
			in, err := os.Open(filepath.Join("..", "testdata", tc.fixture))
			if err != nil {
				t.Fatal(err)
			}
			defer in.Close()
			var out bytes.Buffer
			err = run(in, tc.fixture, &out, 10, "", "")
			if tc.wantIntegrity {
				if !errors.Is(err, errIntegrity) {
					t.Fatalf("err = %v, want errIntegrity", err)
				}
			} else if err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s (rerun with -update after intentional changes):\n%s", tc.golden, out.String())
			}
		})
	}
}

// TestReqLookup exercises -req against the service fixture: a stitched
// request renders both clocks, an unstitched one falls back to the
// wall-clock side only, and an unknown ID is an error.
func TestReqLookup(t *testing.T) {
	open := func(t *testing.T) *os.File {
		in, err := os.Open(filepath.Join("..", "testdata", "service.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return in
	}

	t.Run("stitched", func(t *testing.T) {
		in := open(t)
		defer in.Close()
		var out bytes.Buffer
		if err := run(in, "service.jsonl", &out, 10, "r1111111111111111", ""); err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{
			"request r1111111111111111",
			"status 200",
			"wall    2.045s",
			"virtual 2s = gated 100ms",
			"engine  query 1 job 1: 1 decisions, 1/1 cache hit/miss",
		} {
			if !strings.Contains(out.String(), want) {
				t.Errorf("stitched record missing %q:\n%s", want, out.String())
			}
		}
	})

	t.Run("unstitched", func(t *testing.T) {
		in := open(t)
		defer in.Close()
		var out bytes.Buffer
		if err := run(in, "service.jsonl", &out, 10, "r3333333333333333", ""); err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{
			"request r3333333333333333",
			"status 429",
			"virtual (no engine span carries this request ID)",
		} {
			if !strings.Contains(out.String(), want) {
				t.Errorf("unstitched record missing %q:\n%s", want, out.String())
			}
		}
	})

	t.Run("unknown", func(t *testing.T) {
		in := open(t)
		defer in.Close()
		var out bytes.Buffer
		err := run(in, "service.jsonl", &out, 10, "rdeadbeefdeadbeef", "")
		if err == nil || !strings.Contains(err.Error(), "no request span") {
			t.Fatalf("unknown ID: err = %v, want a no-request-span error", err)
		}
	})
}

// TestNoSpans checks the error path for a trace without lifecycle spans.
func TestNoSpans(t *testing.T) {
	in := bytes.NewBufferString(`{"t":0,"kind":"cache_hit","step":1,"code":5}` + "\n")
	var out bytes.Buffer
	if err := run(in, "nospans", &out, 10, "", ""); err == nil {
		t.Fatal("expected an error for a span-free trace")
	}
}
