// Command jawsreport reconstructs query lifecycles from a JSONL trace
// (written by jaws -trace-out or jawsbench -trace-out) and reports where
// response time went: percentiles, the per-phase attribution table, and
// the starvation tail — the worst-k queries with their phase breakdowns.
//
// It also audits the trace itself: every span is checked against the
// attribution invariant (phase components must sum exactly to the
// response time), and the trace footer's drop counters are surfaced so a
// truncated trace is never mistaken for a complete one.
//
// Usage:
//
//	jaws -sched jaws2 -jobs 200 -trace-out run.jsonl
//	jawsreport run.jsonl
//	jawsreport -k 20 < run.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"jaws/internal/metrics"
	"jaws/internal/obs"
)

func main() {
	worstK := flag.Int("k", 10, "size of the starvation tail (worst-k queries)")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}
	if err := run(in, name, os.Stdout, *worstK); err != nil {
		fatalf("%v", err)
	}
}

// run streams the trace and writes the lifecycle report. Split out from
// main so tests can drive it against golden files.
func run(in io.Reader, name string, out io.Writer, worstK int) error {
	var (
		spans      []obs.Span
		footer     *obs.TraceFooter
		events     int64
		violations int
	)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		switch ev.Kind {
		case obs.KindSpan:
			if ev.Span == nil {
				return fmt.Errorf("line %d: span event without payload", line)
			}
			if ev.Span.PhaseSum() != ev.Span.Total() {
				violations++
			}
			spans = append(spans, *ev.Span)
		case obs.KindFooter:
			footer = ev.Footer
		default:
			events++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("%s: no span events (was the trace written with lifecycle spans enabled?)", name)
	}

	sum := obs.SummarizeSpans(spans, worstK)
	fmt.Fprintf(out, "trace: %s (%d spans, %d other events)\n", name, len(spans), events)

	fmt.Fprintln(out, "\n== response time ==")
	fmt.Fprintf(out, "queries: %d (%d gate-blocked)\n", sum.Count, sum.Blocked)
	fmt.Fprintf(out, "mean %s   p50 %s   p90 %s   p95 %s   p99 %s   max %s\n",
		fd(sum.Mean), fd(sum.P50), fd(sum.P90), fd(sum.P95), fd(sum.P99), fd(sum.Max))

	fmt.Fprintln(out, "\n== attribution ==")
	tb := &metrics.Table{Header: []string{"phase", "total", "share", "mean/query"}}
	for _, row := range sum.Attribution() {
		tb.AddRow(row.Name, fd(row.Total), fmt.Sprintf("%.1f%%", row.Share*100), fd(row.MeanPerQuery))
	}
	fmt.Fprint(out, tb.String())

	if len(sum.WorstK) > 0 {
		fmt.Fprintf(out, "\n== starvation tail (worst %d) ==\n", len(sum.WorstK))
		wt := &metrics.Table{Header: []string{"query", "job", "total", "gated", "queued", "overhead", "disk", "compute", "dec", "hit/miss"}}
		for i := range sum.WorstK {
			sp := &sum.WorstK[i]
			wt.AddRow(fmt.Sprint(sp.Query), fmt.Sprint(sp.Job), fd(sp.Total()),
				fd(sp.Gated), fd(sp.Queued), fd(sp.Overhead), fd(sp.Disk), fd(sp.Compute),
				fmt.Sprint(sp.Decisions), fmt.Sprintf("%d/%d", sp.Hits, sp.Misses))
		}
		fmt.Fprint(out, wt.String())
	}

	fmt.Fprintln(out, "\n== trace integrity ==")
	if violations > 0 {
		fmt.Fprintf(out, "WARNING: %d spans violate the attribution invariant (phase sum != total)\n", violations)
	} else {
		fmt.Fprintf(out, "attribution invariant: all %d spans conserve (phase sum == total)\n", len(spans))
	}
	switch {
	case footer == nil:
		fmt.Fprintln(out, "WARNING: no trace footer — the trace was cut short (writer crashed or was not closed)")
	case footer.SinkDropped > 0:
		fmt.Fprintf(out, "WARNING: footer reports %d events lost to sink write errors\n", footer.SinkDropped)
	default:
		fmt.Fprintf(out, "footer: %d events emitted, 0 lost\n", footer.Total)
	}
	return nil
}

// fd renders a duration with millisecond precision so reports stay
// readable (and byte-stable) across runs.
func fd(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jawsreport: "+format+"\n", args...)
	os.Exit(1)
}
