// Command jawsreport reconstructs query lifecycles from a JSONL trace
// (written by jaws -trace-out, jawsbench -trace-out, or jawsd
// -trace-out) and reports where response time went: percentiles, the
// per-phase attribution table, and the starvation tail — the worst-k
// queries with their phase breakdowns.
//
// Traces written by jawsd additionally carry one wall-clock request span
// ("reqspan") per served HTTP request. jawsreport stitches each request
// span to its engine span through the propagated request ID (the
// X-Jaws-Request-Id the client saw), reporting both clocks side by side:
// where the wall time went around the engine (validate/queued/dispatch/
// execute/write) and where the virtual time went inside it. -req looks a
// single request ID up and prints its full stitched record.
//
// It also audits the trace itself: every span — virtual and wall — is
// checked against the attribution invariant (phase components must sum
// exactly to the total), and the trace footer's drop counters are
// surfaced so a truncated trace is never mistaken for a complete one.
//
// Usage:
//
//	jaws -sched jaws2 -jobs 200 -trace-out run.jsonl
//	jawsreport run.jsonl
//	jawsreport -k 20 < run.jsonl
//	jawsreport -req r8b6f3a2c91d04e75 service.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"jaws/internal/metrics"
	"jaws/internal/obs"
)

func main() {
	worstK := flag.Int("k", 10, "size of the starvation tail (worst-k queries)")
	reqID := flag.String("req", "", "look one request ID up and print its stitched record")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}
	if err := run(in, name, os.Stdout, *worstK, *reqID); err != nil {
		fatalf("%v", err)
	}
}

// stitched pairs one request's wall-clock span with the engine span that
// served it, joined on the propagated request ID.
type stitched struct {
	req    obs.ReqSpan
	engine *obs.Span // nil when no engine span carries the ID (shed, timeout before dispatch)
}

// run streams the trace and writes the lifecycle report. Split out from
// main so tests can drive it against golden files. When reqID is
// non-empty only that request's stitched record is printed.
func run(in io.Reader, name string, out io.Writer, worstK int, reqID string) error {
	var (
		spans         []obs.Span
		reqSpans      []obs.ReqSpan
		footer        *obs.TraceFooter
		events        int64
		violations    int
		reqViolations int
	)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		switch ev.Kind {
		case obs.KindSpan:
			if ev.Span == nil {
				return fmt.Errorf("line %d: span event without payload", line)
			}
			if ev.Span.PhaseSum() != ev.Span.Total() {
				violations++
			}
			spans = append(spans, *ev.Span)
		case obs.KindReqSpan:
			if ev.Req == nil {
				return fmt.Errorf("line %d: reqspan event without payload", line)
			}
			if ev.Req.PhaseSum() != ev.Req.Wall {
				reqViolations++
			}
			reqSpans = append(reqSpans, *ev.Req)
		case obs.KindFooter:
			footer = ev.Footer
		default:
			events++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	// Index engine spans by request ID so each request span stitches to
	// the virtual-clock side of the same request.
	byReq := make(map[string]*obs.Span)
	for i := range spans {
		if r := spans[i].Req; r != "" {
			byReq[r] = &spans[i]
		}
	}

	if reqID != "" {
		for i := range reqSpans {
			if reqSpans[i].ID == reqID {
				printStitched(out, stitched{req: reqSpans[i], engine: byReq[reqID]})
				return nil
			}
		}
		return fmt.Errorf("%s: no request span with ID %s", name, reqID)
	}

	if len(spans) == 0 {
		return fmt.Errorf("%s: no span events (was the trace written with lifecycle spans enabled?)", name)
	}

	sum := obs.SummarizeSpans(spans, worstK)
	fmt.Fprintf(out, "trace: %s (%d spans, %d request spans, %d other events)\n",
		name, len(spans), len(reqSpans), events)

	fmt.Fprintln(out, "\n== response time ==")
	fmt.Fprintf(out, "queries: %d (%d gate-blocked)\n", sum.Count, sum.Blocked)
	fmt.Fprintf(out, "mean %s   p50 %s   p90 %s   p95 %s   p99 %s   max %s\n",
		fd(sum.Mean), fd(sum.P50), fd(sum.P90), fd(sum.P95), fd(sum.P99), fd(sum.Max))

	fmt.Fprintln(out, "\n== attribution ==")
	tb := &metrics.Table{Header: []string{"phase", "total", "share", "mean/query"}}
	for _, row := range sum.Attribution() {
		tb.AddRow(row.Name, fd(row.Total), fmt.Sprintf("%.1f%%", row.Share*100), fd(row.MeanPerQuery))
	}
	fmt.Fprint(out, tb.String())

	if len(sum.WorstK) > 0 {
		fmt.Fprintf(out, "\n== starvation tail (worst %d) ==\n", len(sum.WorstK))
		wt := &metrics.Table{Header: []string{"query", "job", "total", "gated", "queued", "overhead", "disk", "compute", "dec", "hit/miss"}}
		for i := range sum.WorstK {
			sp := &sum.WorstK[i]
			wt.AddRow(fmt.Sprint(sp.Query), fmt.Sprint(sp.Job), fd(sp.Total()),
				fd(sp.Gated), fd(sp.Queued), fd(sp.Overhead), fd(sp.Disk), fd(sp.Compute),
				fmt.Sprint(sp.Decisions), fmt.Sprintf("%d/%d", sp.Hits, sp.Misses))
		}
		fmt.Fprint(out, wt.String())
	}

	if len(reqSpans) > 0 {
		rsum := obs.SummarizeReqSpans(reqSpans, worstK)
		fmt.Fprintln(out, "\n== requests (wall clock) ==")
		fmt.Fprintf(out, "requests: %d (%d ok)\n", rsum.Count, rsum.OK)
		fmt.Fprintf(out, "mean %s   p50 %s   p90 %s   p95 %s   p99 %s   max %s\n",
			fd(rsum.Mean), fd(rsum.P50), fd(rsum.P90), fd(rsum.P95), fd(rsum.P99), fd(rsum.Max))

		fmt.Fprintln(out, "\n== request attribution ==")
		rb := &metrics.Table{Header: []string{"phase", "total", "share", "mean/request"}}
		for _, row := range rsum.Attribution() {
			rb.AddRow(row.Name, fd(row.Total), fmt.Sprintf("%.1f%%", row.Share*100), fd(row.MeanPerQuery))
		}
		fmt.Fprint(out, rb.String())

		// The worst requests, with both clocks side by side: the wall
		// phases around the engine and the virtual response time inside
		// it (when the engine span stitched).
		stitchedCount := 0
		for i := range reqSpans {
			if byReq[reqSpans[i].ID] != nil {
				stitchedCount++
			}
		}
		fmt.Fprintf(out, "\n== request tail (worst %d, %d/%d stitched to engine spans) ==\n",
			len(rsum.WorstK), stitchedCount, len(reqSpans))
		st := &metrics.Table{Header: []string{"request", "query", "status", "qdepth", "wall", "validate", "queued", "dispatch", "execute", "write", "virtual"}}
		for i := range rsum.WorstK {
			rs := &rsum.WorstK[i]
			virt := "-"
			if es := byReq[rs.ID]; es != nil {
				virt = fd(es.Total())
			}
			st.AddRow(rs.ID, fmt.Sprint(rs.Query), fmt.Sprint(rs.Status), fmt.Sprint(rs.QueueDepth),
				fd(rs.Wall), fd(rs.Validate), fd(rs.Queued), fd(rs.Dispatch), fd(rs.Execute), fd(rs.Write), virt)
		}
		fmt.Fprint(out, st.String())
	}

	fmt.Fprintln(out, "\n== trace integrity ==")
	if violations > 0 {
		fmt.Fprintf(out, "WARNING: %d spans violate the attribution invariant (phase sum != total)\n", violations)
	} else {
		fmt.Fprintf(out, "attribution invariant: all %d spans conserve (phase sum == total)\n", len(spans))
	}
	if len(reqSpans) > 0 {
		if reqViolations > 0 {
			fmt.Fprintf(out, "WARNING: %d request spans violate the attribution invariant (phase sum != wall)\n", reqViolations)
		} else {
			fmt.Fprintf(out, "request invariant: all %d request spans conserve (phase sum == wall)\n", len(reqSpans))
		}
	}
	switch {
	case footer == nil:
		fmt.Fprintln(out, "WARNING: no trace footer — the trace was cut short (writer crashed or was not closed)")
	case footer.SinkDropped > 0:
		fmt.Fprintf(out, "WARNING: footer reports %d events lost to sink write errors\n", footer.SinkDropped)
	default:
		fmt.Fprintf(out, "footer: %d events emitted, 0 lost\n", footer.Total)
	}
	return nil
}

// printStitched renders one request's full record: the wall-clock phases
// the serving layer charged around the engine, and — when the trace
// carries the engine span with the same propagated ID — the
// virtual-clock phases inside it.
func printStitched(out io.Writer, s stitched) {
	rs := &s.req
	fmt.Fprintf(out, "request %s\n", rs.ID)
	fmt.Fprintf(out, "  status %d   query %d   queue depth at admission %d\n",
		rs.Status, rs.Query, rs.QueueDepth)
	fmt.Fprintf(out, "  wall    %s = validate %s + queued %s + dispatch %s + execute %s + write %s\n",
		fd(rs.Wall), fd(rs.Validate), fd(rs.Queued), fd(rs.Dispatch), fd(rs.Execute), fd(rs.Write))
	if es := s.engine; es != nil {
		fmt.Fprintf(out, "  virtual %s = gated %s + queued %s + overhead %s + disk %s + compute %s\n",
			fd(es.Total()), fd(es.Gated), fd(es.Queued), fd(es.Overhead), fd(es.Disk), fd(es.Compute))
		fmt.Fprintf(out, "  engine  query %d job %d: %d decisions, %d/%d cache hit/miss\n",
			es.Query, es.Job, es.Decisions, es.Hits, es.Misses)
	} else {
		fmt.Fprintln(out, "  virtual (no engine span carries this request ID)")
	}
}

// fd renders a duration with millisecond precision so reports stay
// readable (and byte-stable) across runs.
func fd(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jawsreport: "+format+"\n", args...)
	os.Exit(1)
}
