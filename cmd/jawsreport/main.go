// Command jawsreport reconstructs query lifecycles from a JSONL trace
// (written by jaws -trace-out, jawsbench -trace-out, or jawsd
// -trace-out) and reports where response time went: percentiles, the
// per-phase attribution table, and the starvation tail — the worst-k
// queries with their phase breakdowns.
//
// Traces written by jawsd additionally carry one wall-clock request span
// ("reqspan") per served HTTP request. jawsreport stitches each request
// span to its engine span through the propagated request ID (the
// X-Jaws-Request-Id the client saw), reporting both clocks side by side:
// where the wall time went around the engine (validate/queued/dispatch/
// execute/write) and where the virtual time went inside it. -req looks a
// single request ID up and prints its full stitched record.
//
// Traces recorded with the decision flight recorder (jawsd -flight, or
// jawsbench, which always records) additionally carry one
// "decision_record" event per scheduling round. jawsreport joins them
// with the engine spans into wait-cause attribution: -why reconstructs
// one query's complete wait chain — every decision round it was
// eligible but passed over, attributed to losing the utility race (to
// whom, by what margin), being aged in over, the batch bound, or a
// gating edge before dispatch — and the main report gains a per-cause
// tail breakdown plus the dominant cause of each starvation-tail query.
//
// It also audits the trace itself: every span — virtual and wall — is
// checked against the attribution invariant (phase components must sum
// exactly to the total), and the trace footer's drop counters are
// surfaced so a truncated trace is never mistaken for a complete one.
// A failed audit (conservation violations, a missing footer, or sink
// drops) exits with status 2 so CI jobs catch corrupt traces.
//
// Usage:
//
//	jaws -sched jaws2 -jobs 200 -trace-out run.jsonl
//	jawsreport run.jsonl
//	jawsreport -k 20 < run.jsonl
//	jawsreport -req r8b6f3a2c91d04e75 service.jsonl
//	jawsreport -why r8b6f3a2c91d04e75 service.jsonl
//	jawsreport -why 42 run.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"jaws/internal/metrics"
	"jaws/internal/obs"
)

// errIntegrity marks a trace that failed the integrity audit; main
// translates it into exit status 2 (the report is still fully printed).
var errIntegrity = errors.New("trace integrity audit failed")

func main() {
	worstK := flag.Int("k", 10, "size of the starvation tail (worst-k queries)")
	reqID := flag.String("req", "", "look one request ID up and print its stitched record")
	why := flag.String("why", "", "reconstruct one query's wait chain from the decision records (query ID or request ID)")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}
	err := run(in, name, os.Stdout, *worstK, *reqID, *why)
	if errors.Is(err, errIntegrity) {
		fmt.Fprintf(os.Stderr, "jawsreport: %v\n", err)
		os.Exit(2)
	}
	if err != nil {
		fatalf("%v", err)
	}
}

// stitched pairs one request's wall-clock span with the engine span that
// served it, joined on the propagated request ID.
type stitched struct {
	req    obs.ReqSpan
	engine *obs.Span // nil when no engine span carries the ID (shed, timeout before dispatch)
}

// run streams the trace and writes the lifecycle report. Split out from
// main so tests can drive it against golden files. When reqID (or why)
// is non-empty only that request's stitched record (or that query's
// wait chain) is printed.
func run(in io.Reader, name string, out io.Writer, worstK int, reqID, why string) error {
	var (
		spans         []obs.Span
		reqSpans      []obs.ReqSpan
		decRecs       []obs.DecisionRecord
		footer        *obs.TraceFooter
		events        int64
		violations    int
		reqViolations int
	)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		switch ev.Kind {
		case obs.KindSpan:
			if ev.Span == nil {
				return fmt.Errorf("line %d: span event without payload", line)
			}
			if ev.Span.PhaseSum() != ev.Span.Total() {
				violations++
			}
			spans = append(spans, *ev.Span)
		case obs.KindReqSpan:
			if ev.Req == nil {
				return fmt.Errorf("line %d: reqspan event without payload", line)
			}
			if ev.Req.PhaseSum() != ev.Req.Wall {
				reqViolations++
			}
			reqSpans = append(reqSpans, *ev.Req)
		case obs.KindDecisionRecord:
			if ev.Flight == nil {
				return fmt.Errorf("line %d: decision_record event without payload", line)
			}
			decRecs = append(decRecs, *ev.Flight)
		case obs.KindFooter:
			footer = ev.Footer
		default:
			events++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	// Index engine spans by request ID so each request span stitches to
	// the virtual-clock side of the same request.
	byReq := make(map[string]*obs.Span)
	for i := range spans {
		if r := spans[i].Req; r != "" {
			byReq[r] = &spans[i]
		}
	}

	if reqID != "" {
		for i := range reqSpans {
			if reqSpans[i].ID == reqID {
				printStitched(out, stitched{req: reqSpans[i], engine: byReq[reqID]})
				return nil
			}
		}
		return fmt.Errorf("%s: no request span with ID %s", name, reqID)
	}

	if why != "" {
		sp, err := resolveWhy(why, spans, byReq)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if len(decRecs) == 0 {
			return fmt.Errorf("%s: no decision records (rerun the trace with the flight recorder on, e.g. jawsd -flight)", name)
		}
		printWhy(out, obs.NewDecisionIndex(decRecs).Chain(*sp))
		return nil
	}

	if len(spans) == 0 {
		return fmt.Errorf("%s: no span events (was the trace written with lifecycle spans enabled?)", name)
	}

	sum := obs.SummarizeSpans(spans, worstK)
	fmt.Fprintf(out, "trace: %s (%d spans, %d request spans, %d other events)\n",
		name, len(spans), len(reqSpans), events)

	fmt.Fprintln(out, "\n== response time ==")
	fmt.Fprintf(out, "queries: %d (%d gate-blocked)\n", sum.Count, sum.Blocked)
	fmt.Fprintf(out, "mean %s   p50 %s   p90 %s   p95 %s   p99 %s   max %s\n",
		fd(sum.Mean), fd(sum.P50), fd(sum.P90), fd(sum.P95), fd(sum.P99), fd(sum.Max))

	fmt.Fprintln(out, "\n== attribution ==")
	tb := &metrics.Table{Header: []string{"phase", "total", "share", "mean/query"}}
	for _, row := range sum.Attribution() {
		tb.AddRow(row.Name, fd(row.Total), fmt.Sprintf("%.1f%%", row.Share*100), fd(row.MeanPerQuery))
	}
	fmt.Fprint(out, tb.String())

	if len(sum.WorstK) > 0 {
		fmt.Fprintf(out, "\n== starvation tail (worst %d) ==\n", len(sum.WorstK))
		wt := &metrics.Table{Header: []string{"query", "job", "total", "gated", "queued", "overhead", "disk", "compute", "dec", "hit/miss"}}
		for i := range sum.WorstK {
			sp := &sum.WorstK[i]
			wt.AddRow(fmt.Sprint(sp.Query), fmt.Sprint(sp.Job), fd(sp.Total()),
				fd(sp.Gated), fd(sp.Queued), fd(sp.Overhead), fd(sp.Disk), fd(sp.Compute),
				fmt.Sprint(sp.Decisions), fmt.Sprintf("%d/%d", sp.Hits, sp.Misses))
		}
		fmt.Fprint(out, wt.String())
	}

	if len(decRecs) > 0 {
		ix := obs.NewDecisionIndex(decRecs)
		fmt.Fprintf(out, "\n== wait causes (%d decision records) ==\n", len(decRecs))
		cb := &metrics.Table{Header: []string{"cause", "total", "mean/query", "p50", "p95", "p99"}}
		for _, ct := range obs.CauseBreakdown(spans, ix) {
			cb.AddRow(ct.Cause, fms(ct.TotalMS), fms(ct.MeanMS), fms(ct.P50MS), fms(ct.P95MS), fms(ct.P99MS))
		}
		fmt.Fprint(out, cb.String())

		if len(sum.WorstK) > 0 {
			fmt.Fprintf(out, "\n== starvation tail by dominant wait cause ==\n")
			dt := &metrics.Table{Header: []string{"query", "wait", "dominant cause", "share", "passed over", "detail"}}
			for i := range sum.WorstK {
				c := ix.Chain(sum.WorstK[i])
				cause, d := c.DominantCause()
				wait := c.Span.Gated + c.Span.Queued
				share := "-"
				if wait > 0 {
					share = fmt.Sprintf("%.0f%%", float64(d)/float64(wait)*100)
				}
				dt.AddRow(fmt.Sprint(c.Query), fd(wait), string(cause), share,
					fmt.Sprint(c.PassedOver()), dominantDetail(c, cause))
			}
			fmt.Fprint(out, dt.String())
			fmt.Fprintln(out, "(jawsreport -why <query|request-id> reconstructs a full wait chain)")
		}
	}

	if len(reqSpans) > 0 {
		rsum := obs.SummarizeReqSpans(reqSpans, worstK)
		fmt.Fprintln(out, "\n== requests (wall clock) ==")
		fmt.Fprintf(out, "requests: %d (%d ok)\n", rsum.Count, rsum.OK)
		fmt.Fprintf(out, "mean %s   p50 %s   p90 %s   p95 %s   p99 %s   max %s\n",
			fd(rsum.Mean), fd(rsum.P50), fd(rsum.P90), fd(rsum.P95), fd(rsum.P99), fd(rsum.Max))

		fmt.Fprintln(out, "\n== request attribution ==")
		rb := &metrics.Table{Header: []string{"phase", "total", "share", "mean/request"}}
		for _, row := range rsum.Attribution() {
			rb.AddRow(row.Name, fd(row.Total), fmt.Sprintf("%.1f%%", row.Share*100), fd(row.MeanPerQuery))
		}
		fmt.Fprint(out, rb.String())

		// The worst requests, with both clocks side by side: the wall
		// phases around the engine and the virtual response time inside
		// it (when the engine span stitched).
		stitchedCount := 0
		for i := range reqSpans {
			if byReq[reqSpans[i].ID] != nil {
				stitchedCount++
			}
		}
		fmt.Fprintf(out, "\n== request tail (worst %d, %d/%d stitched to engine spans) ==\n",
			len(rsum.WorstK), stitchedCount, len(reqSpans))
		st := &metrics.Table{Header: []string{"request", "query", "status", "qdepth", "wall", "validate", "queued", "dispatch", "execute", "write", "virtual"}}
		for i := range rsum.WorstK {
			rs := &rsum.WorstK[i]
			virt := "-"
			if es := byReq[rs.ID]; es != nil {
				virt = fd(es.Total())
			}
			st.AddRow(rs.ID, fmt.Sprint(rs.Query), fmt.Sprint(rs.Status), fmt.Sprint(rs.QueueDepth),
				fd(rs.Wall), fd(rs.Validate), fd(rs.Queued), fd(rs.Dispatch), fd(rs.Execute), fd(rs.Write), virt)
		}
		fmt.Fprint(out, st.String())
	}

	fmt.Fprintln(out, "\n== trace integrity ==")
	if violations > 0 {
		fmt.Fprintf(out, "WARNING: %d spans violate the attribution invariant (phase sum != total)\n", violations)
	} else {
		fmt.Fprintf(out, "attribution invariant: all %d spans conserve (phase sum == total)\n", len(spans))
	}
	if len(reqSpans) > 0 {
		if reqViolations > 0 {
			fmt.Fprintf(out, "WARNING: %d request spans violate the attribution invariant (phase sum != wall)\n", reqViolations)
		} else {
			fmt.Fprintf(out, "request invariant: all %d request spans conserve (phase sum == wall)\n", len(reqSpans))
		}
	}
	switch {
	case footer == nil:
		fmt.Fprintln(out, "WARNING: no trace footer — the trace was cut short (writer crashed or was not closed)")
	case footer.SinkDropped > 0:
		fmt.Fprintf(out, "WARNING: footer reports %d events lost to sink write errors\n", footer.SinkDropped)
	default:
		fmt.Fprintf(out, "footer: %d events emitted, 0 lost\n", footer.Total)
	}

	// A failed audit is an exit-status failure, not just a WARNING line:
	// conservation violations or a dropped/truncated trace mean every
	// number above may be wrong, and CI must not greenlight it.
	switch {
	case violations > 0:
		return fmt.Errorf("%w: %d spans violate the attribution invariant", errIntegrity, violations)
	case reqViolations > 0:
		return fmt.Errorf("%w: %d request spans violate the attribution invariant", errIntegrity, reqViolations)
	case footer == nil:
		return fmt.Errorf("%w: no trace footer", errIntegrity)
	case footer.SinkDropped > 0:
		return fmt.Errorf("%w: %d events lost to sink write errors", errIntegrity, footer.SinkDropped)
	}
	return nil
}

// resolveWhy maps the -why argument — a query ID or a request ID — to
// the engine span it names.
func resolveWhy(why string, spans []obs.Span, byReq map[string]*obs.Span) (*obs.Span, error) {
	if qid, err := strconv.ParseInt(why, 10, 64); err == nil {
		for i := range spans {
			if spans[i].Query == qid {
				return &spans[i], nil
			}
		}
		return nil, fmt.Errorf("no engine span for query %d", qid)
	}
	if sp := byReq[why]; sp != nil {
		return sp, nil
	}
	return nil, fmt.Errorf("no engine span carries request ID %s", why)
}

// whyRoundCap bounds the per-round table of a wait chain; chains longer
// than this elide the middle (the summary still covers every round).
const whyRoundCap = 40

// printWhy renders one query's reconstructed wait chain.
func printWhy(out io.Writer, c *obs.WaitChain) {
	sp := &c.Span
	fmt.Fprintf(out, "why query %d", c.Query)
	if sp.Req != "" {
		fmt.Fprintf(out, " (request %s)", sp.Req)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "  engine %d   arrival %s   done %s   total %s\n",
		c.Engine, fd(sp.Arrival), fd(sp.Done), fd(sp.Total()))
	fmt.Fprintf(out, "  phases  gated %s + queued %s + overhead %s + disk %s + compute %s\n",
		fd(sp.Gated), fd(sp.Queued), fd(sp.Overhead), fd(sp.Disk), fd(sp.Compute))
	if c.Note != "" {
		fmt.Fprintf(out, "  note: %s\n", c.Note)
		return
	}

	if sp.Gated > 0 {
		fmt.Fprintf(out, "\n  gated-behind: %s held before dispatch\n", fd(sp.Gated))
		if len(c.GatedEdges) == 0 {
			fmt.Fprintln(out, "    (no gating edge recorded: admission latency, or the hold predates the recorder window)")
		}
		for _, e := range c.GatedEdges {
			fmt.Fprintf(out, "    q(%d,%d) waiting on q(%d,%d)", e.Job, e.Seq, e.OnJob, e.OnSeq)
			if e.OnQuery != 0 {
				fmt.Fprintf(out, " = query %d", e.OnQuery)
			}
			fmt.Fprintln(out)
		}
	}

	served := len(c.Rounds) - c.PassedOver()
	fmt.Fprintf(out, "\n  decision rounds in [dispatch, done): %d (%d serving, %d passed over)\n",
		len(c.Rounds), served, c.PassedOver())
	rt := &metrics.Table{Header: []string{"round", "t", "charged", "outcome", "detail"}}
	elided := 0
	for i := range c.Rounds {
		if len(c.Rounds) > whyRoundCap && i >= whyRoundCap/2 && i < len(c.Rounds)-whyRoundCap/2 {
			elided++
			continue
		}
		r := &c.Rounds[i]
		outcome, detail := "SERVED", "sub-query in this round's batch"
		if !r.Serving {
			outcome, detail = string(r.Cause), r.Detail
		}
		rt.AddRow(fmt.Sprint(r.Seq), fd(r.T), fd(r.Dur), outcome, detail)
	}
	fmt.Fprint(out, rt.String())
	if elided > 0 {
		fmt.Fprintf(out, "  (%d middle rounds elided)\n", elided)
	}

	fmt.Fprintln(out, "\n  wait by cause:")
	for _, cause := range obs.AllWaitCauses {
		if d := c.ByCause[cause]; d > 0 {
			fmt.Fprintf(out, "    %-12s %s\n", cause, fd(d))
		}
	}
	total := sp.Gated + sp.Queued
	if c.Exact {
		fmt.Fprintf(out, "  conservation: causes sum to gated+queued = %s (exact)\n", fd(total))
	} else {
		fmt.Fprintf(out, "  conservation: causes cover %s of gated+queued = %s (decision records incomplete for this window)\n",
			fd(sp.Gated+c.Queued), fd(total))
	}
}

// dominantDetail compresses a chain's dominant cause into one table
// cell: the most representative round detail, or the gating edge.
func dominantDetail(c *obs.WaitChain, cause obs.WaitCause) string {
	if cause == obs.CauseGated {
		if len(c.GatedEdges) > 0 {
			e := c.GatedEdges[0]
			return fmt.Sprintf("waiting on q(%d,%d)", e.OnJob, e.OnSeq)
		}
		return "held before dispatch"
	}
	// The longest round charged to the dominant cause carries the most
	// representative detail.
	var best *obs.WaitRound
	for i := range c.Rounds {
		r := &c.Rounds[i]
		if !r.Serving && r.Cause == cause && (best == nil || r.Dur > best.Dur) {
			best = r
		}
	}
	if best == nil {
		return "-"
	}
	return best.Detail
}

// fms renders a float of milliseconds compactly.
func fms(v float64) string { return fmt.Sprintf("%.1fms", v) }

// printStitched renders one request's full record: the wall-clock phases
// the serving layer charged around the engine, and — when the trace
// carries the engine span with the same propagated ID — the
// virtual-clock phases inside it.
func printStitched(out io.Writer, s stitched) {
	rs := &s.req
	fmt.Fprintf(out, "request %s\n", rs.ID)
	fmt.Fprintf(out, "  status %d   query %d   queue depth at admission %d\n",
		rs.Status, rs.Query, rs.QueueDepth)
	fmt.Fprintf(out, "  wall    %s = validate %s + queued %s + dispatch %s + execute %s + write %s\n",
		fd(rs.Wall), fd(rs.Validate), fd(rs.Queued), fd(rs.Dispatch), fd(rs.Execute), fd(rs.Write))
	if es := s.engine; es != nil {
		fmt.Fprintf(out, "  virtual %s = gated %s + queued %s + overhead %s + disk %s + compute %s\n",
			fd(es.Total()), fd(es.Gated), fd(es.Queued), fd(es.Overhead), fd(es.Disk), fd(es.Compute))
		fmt.Fprintf(out, "  engine  query %d job %d: %d decisions, %d/%d cache hit/miss\n",
			es.Query, es.Job, es.Decisions, es.Hits, es.Misses)
	} else {
		fmt.Fprintln(out, "  virtual (no engine span carries this request ID)")
	}
}

// fd renders a duration with millisecond precision so reports stay
// readable (and byte-stable) across runs.
func fd(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jawsreport: "+format+"\n", args...)
	os.Exit(1)
}
