package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"jaws/internal/experiments"
	"jaws/internal/obs"
)

// TestWhyEndToEnd drives the full attribution pipeline against a real
// engine run: a small JAWS2 workload executes with the flight recorder
// on, and the resulting trace must let -why reconstruct a complete wait
// chain for the most-queued query — with the acceptance invariant that
// EVERY completed span's chain is exact (each eligible round accounted
// to exactly one cause, causes summing to the span's gated + queued).
func TestWhyEndToEnd(t *testing.T) {
	var trace bytes.Buffer
	tracer := obs.NewTracer(0, &trace)
	agg := obs.NewSpanAgg()
	rec := obs.NewFlightRecorder(-1, tracer, nil) // unbounded: no round may be lost
	s := experiments.TestScale()
	s.Obs = &obs.Obs{Trace: tracer, Spans: agg, Flight: rec}
	if _, err := experiments.RunAlgorithm(s, experiments.AlgJAWS2, s.BatchSize); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	spans := agg.Spans()
	if len(spans) == 0 {
		t.Fatal("run produced no spans")
	}
	ix := obs.NewDecisionIndex(rec.Records())
	if ix.Records() == 0 {
		t.Fatal("run produced no decision records")
	}

	// Conservation across the whole population, not just one lucky span.
	target := &spans[0]
	for i := range spans {
		sp := &spans[i]
		c := ix.Chain(*sp)
		if c.Note != "" {
			t.Fatalf("query %d: incomplete chain with an unbounded recorder: %s", sp.Query, c.Note)
		}
		if !c.Exact {
			t.Errorf("query %d: chain inexact: rounds charge %v, span queued %v", sp.Query, c.Queued, sp.Queued)
		}
		var sum time.Duration
		for _, d := range c.ByCause {
			sum += d
		}
		if want := sp.Gated + sp.Queued; sum != want {
			t.Errorf("query %d: causes sum to %v, want gated+queued = %v", sp.Query, sum, want)
		}
		for _, r := range c.Rounds {
			if !r.Serving && r.Cause == "" {
				t.Errorf("query %d: pass-over round seq %d has no cause", sp.Query, r.Seq)
			}
		}
		if sp.Queued > target.Queued {
			target = sp
		}
	}
	if target.Queued == 0 {
		t.Fatal("no query queued at all; the test workload is too small to exercise attribution")
	}

	// The command-level join: feed the trace back through run() with -why
	// and check the rendered chain.
	var out bytes.Buffer
	if err := run(bytes.NewReader(trace.Bytes()), "e2e", &out, 5, "", fmt.Sprint(target.Query)); err != nil {
		t.Fatalf("run -why: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		fmt.Sprintf("why query %d", target.Query),
		"decision rounds in [dispatch, done):",
		"passed over",
		"wait by cause:",
		"(exact)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-why output missing %q:\n%s", want, out.String())
		}
	}

	// The aggregate report over the same trace must carry the wait-cause
	// sections and still pass the integrity audit (exit-0 path).
	out.Reset()
	if err := run(bytes.NewReader(trace.Bytes()), "e2e", &out, 5, "", ""); err != nil {
		t.Fatalf("aggregate report: %v", err)
	}
	for _, want := range []string{
		"== wait causes",
		"== starvation tail by dominant wait cause ==",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("aggregate report missing %q", want)
		}
	}
}
