package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jaws/internal/experiments"
	"jaws/internal/obs"
)

// regenPolicy rewrites the policy trace fixture from the seeded run below
// (then rerun with -update to refresh the golden). The fixture is
// committed so the golden test needs no engine run.
var regenPolicy = flag.Bool("regen-policy", false, "regenerate ../testdata/policy.jsonl from the seeded policy run")

// policyFixtureSpec is the tail-policy stack the fixture run decorates
// JAWS with — all three policies at once, so the golden exercises the
// report under the full stack.
const policyFixtureSpec = "gate-aware;cross-step:span=2;adaptive-batch:min=4,max=16"

// policyFixtureScale is a miniature of TestScale: just enough contention
// for gating edges and pass-over rounds to appear in the record stream
// while the committed trace stays small.
func policyFixtureScale() experiments.Scale {
	s := experiments.TestScale()
	s.Jobs = 4
	s.QueryScale = 2
	s.TailPolicy = policyFixtureSpec
	return s
}

// capturePolicyTrace executes one instrumented JAWS2 run of the scale and
// returns the raw trace bytes (spans, decision records, footer included).
func capturePolicyTrace(t *testing.T, s experiments.Scale) []byte {
	t.Helper()
	var trace bytes.Buffer
	tracer := obs.NewTracer(0, &trace)
	agg := obs.NewSpanAgg()
	rec := obs.NewFlightRecorder(-1, tracer, nil)
	s.Obs = &obs.Obs{Trace: tracer, Spans: agg, Flight: rec}
	if _, err := experiments.RunAlgorithm(s, experiments.AlgJAWS2, s.BatchSize); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	return trace.Bytes()
}

// TestPolicyGolden locks the report's rendering over a policy-decorated
// trace: the per-cause wait tail and the dominant-cause starvation table
// must render (and keep rendering) under the decorated scheduler name.
// Regenerate with -regen-policy (fixture) then -update (golden) after
// intentional changes to the policies or the report.
func TestPolicyGolden(t *testing.T) {
	fixture := filepath.Join("..", "testdata", "policy.jsonl")
	if *regenPolicy {
		if err := os.WriteFile(fixture, capturePolicyTrace(t, policyFixtureScale()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	// The fixture must really be a policy run: its decision records carry
	// the decorated scheduler name. Records name the layer that took the
	// decision — TailJAWS — not the adaptive-batch wrapper, which only
	// steers the batch bound between rounds (the same convention QoS
	// fallthrough rounds follow).
	wantSched := "JAWS+gate-aware+cross-step"
	if !strings.Contains(string(raw), wantSched) {
		t.Fatalf("fixture carries no %q decision records; regenerate with -regen-policy", wantSched)
	}

	var out bytes.Buffer
	if err := run(bytes.NewReader(raw), "policy.jsonl", &out, 10, "", ""); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"== wait causes",
		"== starvation tail by dominant wait cause ==",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}

	goldenPath := filepath.Join("testdata", "policy.golden")
	if *update {
		if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from policy.golden (rerun with -update after intentional changes):\n%s", out.String())
	}
}

// TestWhyGateAwareFlipsCause demonstrates the gate-aware policy through
// the attribution pipeline: between the undecorated and the gate-aware
// run of the same seeded workload, at least one query whose wait was
// dominated by gated-behind must flip to a different dominant cause —
// and -why over the policy trace must render the flipped query's chain.
func TestWhyGateAwareFlipsCause(t *testing.T) {
	capture := func(policy string) ([]obs.Span, *obs.DecisionIndex, []byte) {
		s := experiments.TestScale()
		s.TailPolicy = policy
		var trace bytes.Buffer
		tracer := obs.NewTracer(0, &trace)
		agg := obs.NewSpanAgg()
		rec := obs.NewFlightRecorder(-1, tracer, nil)
		s.Obs = &obs.Obs{Trace: tracer, Spans: agg, Flight: rec}
		if _, err := experiments.RunAlgorithm(s, experiments.AlgJAWS2, s.BatchSize); err != nil {
			t.Fatal(err)
		}
		if err := tracer.Close(); err != nil {
			t.Fatal(err)
		}
		return agg.Spans(), obs.NewDecisionIndex(rec.Records()), trace.Bytes()
	}
	baseSpans, baseIx, _ := capture("")
	polSpans, polIx, polTrace := capture("gate-aware")

	baseDom := make(map[int64]obs.WaitCause, len(baseSpans))
	for _, sp := range baseSpans {
		dom, _ := baseIx.Chain(sp).DominantCause()
		baseDom[sp.Query] = dom
	}
	var flipped int64 = -1
	var flippedTo obs.WaitCause
	for _, sp := range polSpans {
		if baseDom[sp.Query] != obs.CauseGated {
			continue
		}
		if dom, _ := polIx.Chain(sp).DominantCause(); dom != "" && dom != obs.CauseGated {
			flipped, flippedTo = sp.Query, dom
			break
		}
	}
	if flipped < 0 {
		t.Fatal("no gated-behind-dominated query flipped its dominant cause under gate-aware; the policy changed nothing the attribution can see")
	}
	t.Logf("query %d: gated-behind -> %s under gate-aware", flipped, flippedTo)

	var out bytes.Buffer
	if err := run(bytes.NewReader(polTrace), "policy", &out, 5, "", fmt.Sprint(flipped)); err != nil {
		t.Fatalf("run -why: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		fmt.Sprintf("why query %d", flipped),
		"wait by cause:",
		string(flippedTo),
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-why output missing %q:\n%s", want, out.String())
		}
	}
}
