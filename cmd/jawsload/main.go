// Command jawsload is a seeded load generator for jawsd: it fabricates a
// deterministic stream of /query requests and drives them at the daemon
// in closed-loop (fixed worker count, next request when the last one
// answers) or open-loop (fixed arrival rate) mode, then reports a status
// histogram, latency percentiles, and throughput.
//
// The request plan is a pure function of the flags: -dry-run prints it
// without sending anything, byte-for-byte reproducible for a fixed seed.
//
// -scenario applies a workload scenario's query-class mix to the plan
// (see `jawsbench -list-scenarios`): box cutouts expand client-side into
// a lattice of positions, temporal-derivative queries carry deriv_steps
// so the daemon chains adjacent timesteps. Arrival pacing stays owned by
// -mode/-rate — a scenario shapes *what* is asked, not *when*.
//
// Usage:
//
//	jawsload -addr 127.0.0.1:8080 -requests 256 -clients 16
//	jawsload -addr 127.0.0.1:8080 -mode open -rate 200 -requests 100
//	jawsload -requests 4 -dry-run        # show the plan, send nothing
//	jawsload -scenario deriv-chain -requests 64 -steps 8
//
// Exit status: 0 on success, 1 when the run saw transport errors or 5xx
// responses or served fewer than -min-served queries, 2 on flag errors
// (including an unknown -scenario).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jaws/internal/server"
	"jaws/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// plan is the full request sequence, fabricated up front so that the
// workload is independent of response timing (and -dry-run can print it).
type plan struct {
	bodies [][]byte
}

// buildPlan derives every request body from the seeded generator. Steps
// cycle uniformly over the store, positions land inside the physical box.
// The scenario overlay contributes the query-class mix: with the zero
// scenario the rng draw sequence (and so the plan bytes) is identical to
// the pre-scenario generator.
func buildPlan(requests, steps, points int, kernel string, coordMax float64, seed int64, sc workload.Scenario) (*plan, error) {
	rng := rand.New(rand.NewSource(seed))
	boxSide := sc.BoxSide
	if boxSide <= 0 {
		boxSide = 0.6
	}
	if boxSide > coordMax {
		boxSide = coordMax
	}
	chain := sc.DerivChain
	if chain <= 0 {
		chain = 3
	}
	if chain > steps {
		chain = steps
	}
	p := &plan{bodies: make([][]byte, requests)}
	for i := range p.bodies {
		req := server.QueryRequest{
			Step:   rng.Intn(steps),
			Kernel: kernel,
		}
		// Class selector: guarded so a scenario without box or deriv
		// classes consumes exactly the historical draw sequence.
		const (
			classPoint = iota
			classBox
			classDeriv
		)
		class := classPoint
		if sc.BoxFrac > 0 || sc.DerivFrac > 0 {
			switch u := rng.Float64(); {
			case u < sc.DerivFrac && chain >= 2:
				class = classDeriv
			case u < sc.DerivFrac+sc.BoxFrac:
				class = classBox
			}
		}
		switch class {
		case classBox:
			req.Points = boxLattice(rng, points, boxSide, coordMax)
		default:
			if class == classDeriv {
				if req.Step+chain > steps {
					req.Step = steps - chain
				}
				req.DerivSteps = chain
			}
			req.Points = make([]server.Point, points)
			for j := range req.Points {
				req.Points[j] = server.Point{
					X: rng.Float64() * coordMax,
					Y: rng.Float64() * coordMax,
					Z: rng.Float64() * coordMax,
				}
			}
		}
		body, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		p.bodies[i] = body
	}
	return p, nil
}

// boxLattice expands a cutout query client-side: a cubic lattice of at
// most `points` positions spanning a box of the given side, centred
// uniformly at random inside [0, coordMax)^3. The daemon speaks only in
// point lists, so the cutout's structure lives in the plan.
func boxLattice(rng *rand.Rand, points int, side, coordMax float64) []server.Point {
	n := 1
	for (n+1)*(n+1)*(n+1) <= points {
		n++
	}
	lo := make([]float64, 3)
	for a := range lo {
		span := coordMax - side
		if span < 0 {
			span = 0
		}
		lo[a] = rng.Float64() * span
	}
	out := make([]server.Point, 0, n*n*n)
	coord := func(a, i int) float64 {
		if n == 1 {
			return lo[a] + side/2
		}
		return lo[a] + side*float64(i)/float64(n-1)
	}
	for ix := 0; ix < n; ix++ {
		for iy := 0; iy < n; iy++ {
			for iz := 0; iz < n; iz++ {
				out = append(out, server.Point{X: coord(0, ix), Y: coord(1, iy), Z: coord(2, iz)})
			}
		}
	}
	return out
}

// reqRecord is one request's client-side outcome: the plan sequence
// number, the X-Jaws-Request-Id the server answered with, and the wall
// latency observed at the client. Written as JSONL by -latency-out so a
// client-side record can be joined against the server's trace by ID.
type reqRecord struct {
	Seq       int     `json:"seq"`
	RequestID string  `json:"request_id,omitempty"`
	Status    int     `json:"status,omitempty"`
	LatencyMS float64 `json:"latency_ms"`
	Err       string  `json:"err,omitempty"`
}

// tally accumulates per-request outcomes across worker goroutines.
type tally struct {
	mu        sync.Mutex
	byStatus  map[int]int
	latencies []time.Duration
	records   []reqRecord
	transport int
}

func (t *tally) note(rec reqRecord, latency time.Duration, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		rec.Err = err.Error()
		t.records = append(t.records, rec)
		t.transport++
		return
	}
	t.records = append(t.records, rec)
	t.byStatus[rec.Status]++
	if rec.Status == http.StatusOK {
		t.latencies = append(t.latencies, latency)
	}
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// run is the testable body of the generator: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("jawsload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "jawsd address (host:port)")
		requests   = fs.Int("requests", 64, "total requests to send")
		clients    = fs.Int("clients", 8, "closed-loop worker count")
		mode       = fs.String("mode", "closed", "closed (fixed workers) or open (fixed arrival rate)")
		rate       = fs.Float64("rate", 100, "open-loop arrival rate in requests/second")
		steps      = fs.Int("steps", 8, "steps in the target store (plan cycles over [0, steps))")
		points     = fs.Int("points", 8, "positions per query")
		kernel     = fs.String("kernel", "lag4", "interpolation kernel for every query")
		coordMax   = fs.Float64("coord-max", 6.28, "positions are drawn uniformly from [0, coord-max)^3")
		seed       = fs.Int64("seed", 1, "workload seed (the request plan is a pure function of it)")
		scenario   = fs.String("scenario", "", "workload scenario whose query-class mix shapes the plan (see jawsbench -list-scenarios); empty = all point queries")
		timeout    = fs.Duration("timeout", 30*time.Second, "per-request client timeout")
		minServed  = fs.Int("min-served", 1, "fail the run when fewer queries are served (200)")
		dryRun     = fs.Bool("dry-run", false, "print the request plan and send nothing")
		latencyOut = fs.String("latency-out", "", "write one JSON record per request (seq, request_id, status, latency) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	errf := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "jawsload: "+format+"\n", a...)
		return 1
	}

	if *requests < 1 {
		return errf("need at least one request, got %d", *requests)
	}
	if *clients < 1 {
		return errf("need at least one client, got %d", *clients)
	}
	if *steps < 1 || *points < 1 {
		return errf("steps and points must be positive")
	}
	if *mode != "closed" && *mode != "open" {
		return errf("unknown mode %q (want closed or open)", *mode)
	}
	if *mode == "open" && *rate <= 0 {
		return errf("open-loop mode needs a positive -rate, got %g", *rate)
	}
	var sc workload.Scenario
	if *scenario != "" {
		var ok bool
		if sc, ok = workload.LookupScenario(*scenario); !ok {
			fmt.Fprintf(stderr, "jawsload: unknown scenario %q (have: %s)\n",
				*scenario, strings.Join(workload.ScenarioNames(), ", "))
			return 2
		}
	}

	p, err := buildPlan(*requests, *steps, *points, *kernel, *coordMax, *seed, sc)
	if err != nil {
		return errf("building plan: %v", err)
	}

	if *dryRun {
		label := *scenario
		if label == "" {
			label = "point-only"
		}
		fmt.Fprintf(stdout, "plan            %d requests, seed %d, kernel %s, %d points each, scenario %s\n",
			*requests, *seed, *kernel, *points, label)
		for i, body := range p.bodies {
			fmt.Fprintf(stdout, "req %-4d        %s\n", i, body)
		}
		return 0
	}

	url := "http://" + *addr + "/query"
	client := &http.Client{Timeout: *timeout}
	tl := &tally{byStatus: make(map[int]int)}
	send := func(seq int, body []byte) {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			tl.note(reqRecord{Seq: seq}, 0, err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		lat := time.Since(t0)
		tl.note(reqRecord{
			Seq:       seq,
			RequestID: resp.Header.Get("X-Jaws-Request-Id"),
			Status:    resp.StatusCode,
			LatencyMS: float64(lat) / float64(time.Millisecond),
		}, lat, nil)
	}

	start := time.Now()
	var wg sync.WaitGroup
	switch *mode {
	case "closed":
		var next atomic.Int64
		for w := 0; w < *clients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(p.bodies) {
						return
					}
					send(i, p.bodies[i])
				}
			}()
		}
	case "open":
		interval := time.Duration(float64(time.Second) / *rate)
		for i := range p.bodies {
			if i > 0 {
				time.Sleep(interval)
			}
			wg.Add(1)
			go func(seq int, body []byte) {
				defer wg.Done()
				send(seq, body)
			}(i, p.bodies[i])
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(tl.latencies, func(i, j int) bool { return tl.latencies[i] < tl.latencies[j] })
	served := tl.byStatus[http.StatusOK]
	shed := tl.byStatus[http.StatusTooManyRequests]
	fivexx := 0
	for code, n := range tl.byStatus {
		if code >= 500 {
			fivexx += n
		}
	}

	fmt.Fprintf(stdout, "requests        %d sent in %.2fs (%.1f req/s)\n",
		*requests, elapsed.Seconds(), float64(*requests)/elapsed.Seconds())
	codes := make([]int, 0, len(tl.byStatus))
	for code := range tl.byStatus {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(stdout, "status %d      x %d\n", code, tl.byStatus[code])
	}
	if tl.transport > 0 {
		fmt.Fprintf(stdout, "transport err   x %d\n", tl.transport)
	}
	if served > 0 {
		fmt.Fprintf(stdout, "latency         p50 %v p90 %v p95 %v p99 %v max %v\n",
			percentile(tl.latencies, 0.50).Round(time.Microsecond),
			percentile(tl.latencies, 0.90).Round(time.Microsecond),
			percentile(tl.latencies, 0.95).Round(time.Microsecond),
			percentile(tl.latencies, 0.99).Round(time.Microsecond),
			tl.latencies[len(tl.latencies)-1].Round(time.Microsecond))
	}
	fmt.Fprintf(stdout, "summary         %d served, %d shed, %d 5xx\n", served, shed, fivexx)

	if *latencyOut != "" {
		// Records in plan order, so the file is reproducible for a fixed
		// seed regardless of completion interleaving.
		sort.Slice(tl.records, func(i, j int) bool { return tl.records[i].Seq < tl.records[j].Seq })
		f, err := os.Create(*latencyOut)
		if err != nil {
			return errf("%v", err)
		}
		enc := json.NewEncoder(f)
		for _, rec := range tl.records {
			if err := enc.Encode(rec); err != nil {
				f.Close()
				return errf("latency-out: %v", err)
			}
		}
		if err := f.Close(); err != nil {
			return errf("latency-out: %v", err)
		}
		fmt.Fprintf(stdout, "latency records -> %s (%d)\n", *latencyOut, len(tl.records))
	}

	if tl.transport > 0 {
		return errf("%d requests failed at the transport level", tl.transport)
	}
	if fivexx > 0 {
		return errf("%d requests answered with 5xx", fivexx)
	}
	if served < *minServed {
		return errf("served %d queries, need at least %d", served, *minServed)
	}
	return 0
}
