package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jaws"
	"jaws/internal/server"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		args []string
		code int
		want string
	}{
		{[]string{"-no-such-flag"}, 2, "flag provided but not defined"},
		{[]string{"-requests", "0"}, 1, "at least one request"},
		{[]string{"-clients", "0"}, 1, "at least one client"},
		{[]string{"-points", "0"}, 1, "must be positive"},
		{[]string{"-mode", "sideways"}, 1, `unknown mode "sideways"`},
		{[]string{"-mode", "open", "-rate", "0"}, 1, "positive -rate"},
	}
	for _, c := range cases {
		code, _, errb := runCLI(t, c.args...)
		if code != c.code {
			t.Errorf("%v: exit %d, want %d (stderr: %s)", c.args, code, c.code, errb)
		}
		if !strings.Contains(errb, c.want) {
			t.Errorf("%v: stderr %q missing %q", c.args, errb, c.want)
		}
	}
}

// TestDryRunPlanIsDeterministic pins the generated workload byte for
// byte: the request plan is a pure function of the flags, so two runs
// with the same seed must print identical plans, matching the golden.
func TestDryRunPlanIsDeterministic(t *testing.T) {
	args := []string{"-dry-run", "-requests", "4", "-points", "2", "-steps", "3", "-seed", "42", "-kernel", "lag6"}
	code, out1, errb := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	code, out2, _ := runCLI(t, args...)
	if code != 0 || out1 != out2 {
		t.Fatalf("two dry runs with the same seed differ:\n%s\n---\n%s", out1, out2)
	}

	golden := filepath.Join("testdata", "plan.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(out1), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != string(want) {
		t.Errorf("plan differs from golden file:\ngot:\n%s\nwant:\n%s", out1, want)
	}

	code, out3, _ := runCLI(t, append(args, "-seed", "43")...)
	if code != 0 {
		t.Fatal("reseeded dry run failed")
	}
	if out3 == out1 {
		t.Error("changing the seed did not change the plan")
	}
}

// TestClosedLoopAgainstRealServer drives a seeded smoke workload through
// a real admission-controlled server and checks the report and exit code.
func TestClosedLoopAgainstRealServer(t *testing.T) {
	sess, err := jaws.OpenSession(jaws.Config{
		Space:      jaws.Space{GridSide: 64, AtomSide: 32},
		Steps:      3,
		Seed:       5,
		CacheAtoms: 16,
		Compute:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Backends: []server.Backend{sess}, Steps: 3, ReqIDSeed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	latPath := filepath.Join(t.TempDir(), "latency.jsonl")
	code, out, errb := runCLI(t,
		"-addr", addr, "-requests", "16", "-clients", "4", "-steps", "3",
		"-points", "2", "-seed", "9", "-min-served", "16", "-latency-out", latPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb, out)
	}
	for _, want := range []string{"requests        16 sent", "status 200      x 16", "latency         p50", "summary         16 served, 0 shed, 0 5xx", "latency records -> "} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// The latency file holds one record per request in plan order, each
	// carrying the server-assigned request ID for trace joins.
	data, err := os.ReadFile(latPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 16 {
		t.Fatalf("latency-out has %d records, want 16", len(lines))
	}
	seenIDs := make(map[string]bool)
	for i, line := range lines {
		var rec reqRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record %d not JSON: %v (%s)", i, err, line)
		}
		if rec.Seq != i {
			t.Fatalf("record %d out of plan order: seq %d", i, rec.Seq)
		}
		if rec.Status != 200 || rec.LatencyMS <= 0 {
			t.Fatalf("record %d incomplete: %+v", i, rec)
		}
		if len(rec.RequestID) != 17 || seenIDs[rec.RequestID] {
			t.Fatalf("record %d has bad or duplicate request ID %q", i, rec.RequestID)
		}
		seenIDs[rec.RequestID] = true
	}

	// The -min-served gate must fail the run when the bar is too high.
	code, _, errb = runCLI(t,
		"-addr", addr, "-requests", "2", "-clients", "1", "-steps", "3",
		"-points", "1", "-min-served", "100")
	if code != 1 || !strings.Contains(errb, "need at least 100") {
		t.Errorf("min-served gate: exit %d, stderr %q", code, errb)
	}
}

// TestTransportErrorFailsRun points the generator at a closed port.
func TestTransportErrorFailsRun(t *testing.T) {
	ts := httptest.NewServer(nil)
	addr := strings.TrimPrefix(ts.URL, "http://")
	ts.Close() // nothing listens here any more

	code, _, errb := runCLI(t, "-addr", addr, "-requests", "2", "-clients", "1")
	if code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if !strings.Contains(errb, "transport level") {
		t.Errorf("stderr %q missing transport failure", errb)
	}
}
