package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"jaws"
	"jaws/internal/server"
)

func TestUnknownScenarioIsUsageError(t *testing.T) {
	code, _, errb := runCLI(t, "-scenario", "lunar", "-dry-run")
	if code != 2 {
		t.Fatalf("exit %d, want 2 (stderr: %s)", code, errb)
	}
	if !strings.Contains(errb, `unknown scenario "lunar"`) {
		t.Errorf("stderr does not name the bad scenario: %s", errb)
	}
	if !strings.Contains(errb, "deriv-chain") {
		t.Errorf("stderr does not list valid scenarios: %s", errb)
	}
}

// planBodies parses the JSON bodies out of a dry-run listing.
func planBodies(t *testing.T, out string) []server.QueryRequest {
	t.Helper()
	var reqs []server.QueryRequest
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "req ") {
			continue
		}
		raw := line[strings.Index(line, "{"):]
		var q server.QueryRequest
		if err := json.Unmarshal([]byte(raw), &q); err != nil {
			t.Fatalf("plan line not JSON: %v (%s)", err, line)
		}
		reqs = append(reqs, q)
	}
	return reqs
}

// TestScenarioPlanClassMix checks the scenario overlay reaches the plan:
// deriv-chain requests carry deriv_steps with in-range chains, box
// requests expand into lattices, and the plan stays deterministic.
func TestScenarioPlanClassMix(t *testing.T) {
	args := []string{"-dry-run", "-requests", "64", "-points", "8", "-steps", "8", "-seed", "7", "-scenario", "deriv-chain"}
	code, out1, errb := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if code, out2, _ := runCLI(t, args...); code != 0 || out2 != out1 {
		t.Fatal("scenario dry runs with the same seed differ")
	}
	if !strings.Contains(out1, "scenario deriv-chain") {
		t.Errorf("plan header does not name the scenario:\n%s", strings.SplitN(out1, "\n", 2)[0])
	}

	derivs := 0
	for _, q := range planBodies(t, out1) {
		if q.DerivSteps == 0 {
			continue
		}
		derivs++
		if q.DerivSteps != 3 {
			t.Errorf("deriv_steps = %d, want the scenario's chain of 3", q.DerivSteps)
		}
		if q.Step+q.DerivSteps > 8 {
			t.Errorf("chain [%d, %d) exceeds the 8 steps the plan was built for", q.Step, q.Step+q.DerivSteps)
		}
	}
	// 35% of 64 in expectation; demand at least a handful so the class
	// mix demonstrably reached the plan.
	if derivs < 8 {
		t.Errorf("only %d/64 requests are derivative queries, scenario mix not applied", derivs)
	}

	// poisson-box: cutouts expand into 2x2x2 lattices (8 points fit a
	// n=2 lattice exactly), axis-aligned with the scenario's box side.
	code, out3, errb := runCLI(t, "-dry-run", "-requests", "64", "-points", "8", "-steps", "8", "-seed", "7", "-scenario", "poisson-box")
	if code != 0 {
		t.Fatalf("poisson-box: exit %d, stderr: %s", code, errb)
	}
	boxes := 0
	for _, q := range planBodies(t, out3) {
		xs := map[float64]bool{}
		for _, p := range q.Points {
			xs[p.X] = true
		}
		if len(q.Points) == 8 && len(xs) == 2 {
			boxes++
		}
	}
	if boxes < 8 {
		t.Errorf("only %d/64 requests look like box lattices, scenario mix not applied", boxes)
	}
}

// TestScenarioAgainstRealServer drives a deriv-chain plan end to end: a
// live daemon must serve every request, derivative chains included.
func TestScenarioAgainstRealServer(t *testing.T) {
	sess, err := jaws.OpenSession(jaws.Config{
		Space:      jaws.Space{GridSide: 64, AtomSide: 32},
		Steps:      4,
		Seed:       5,
		CacheAtoms: 16,
		Compute:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Backends: []server.Backend{sess}, Steps: 4, ReqIDSeed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	code, out, errb := runCLI(t,
		"-addr", addr, "-requests", "24", "-clients", "4", "-steps", "4",
		"-points", "4", "-seed", "9", "-scenario", "deriv-chain", "-min-served", "24")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb, out)
	}
	if !strings.Contains(out, "summary         24 served, 0 shed, 0 5xx") {
		t.Errorf("report:\n%s", out)
	}
}
