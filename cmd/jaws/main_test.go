package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tiny are flags keeping a run under a second.
var tiny = []string{"-jobs", "4", "-steps", "3", "-cache", "32"}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunReportsAllSections(t *testing.T) {
	code, out, errb := runCLI(t, append(tiny, "-sched", "jaws2", "-v")...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{
		"workload:", "scheduler       JAWS2", "completed", "response time",
		"cache ", "disk ", "gating", "final α", "run  ended-at", // -v history
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSchedulerSelection(t *testing.T) {
	for name, wantGating := range map[string]bool{
		"noshare": false, "liferaft1": false, "liferaft2": false,
		"jaws1": false, "jaws2": true,
	} {
		code, out, errb := runCLI(t, append(tiny, "-sched", name)...)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", name, code, errb)
		}
		if got := strings.Contains(out, "gating"); got != wantGating {
			t.Errorf("%s: gating section present=%v, want %v", name, got, wantGating)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		args []string
		code int
		want string
	}{
		{[]string{"-no-such-flag"}, 2, "flag provided but not defined"},
		{append(tiny, "-sched", "bogus"), 1, `unknown scheduler "bogus"`},
		{append(tiny, "-policy", "bogus"), 1, `unknown cache policy "bogus"`},
		{append(tiny, "-fault-spec", "bogus:nope"), 1, "fault"},
		{append(tiny, "-trace", "/nonexistent/trace.gz"), 1, "no such file"},
	}
	for _, c := range cases {
		code, _, errb := runCLI(t, c.args...)
		if code != c.code {
			t.Errorf("%v: exit %d, want %d (stderr: %s)", c.args, code, c.code, errb)
		}
		if !strings.Contains(errb, c.want) {
			t.Errorf("%v: stderr %q missing %q", c.args, errb, c.want)
		}
	}
}

func TestRunFaultSpecSurvivable(t *testing.T) {
	// Transient faults with retries: the run must complete with exit 0.
	code, out, errb := runCLI(t, append(tiny, "-fault-spec", "disk-transient:p=0.1", "-fault-seed", "7")...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "completed") {
		t.Errorf("faulted run produced no report:\n%s", out)
	}
}

func TestRunFaultSpecCrashFails(t *testing.T) {
	// A scheduled node crash aborts the run: non-zero exit, crash on stderr.
	code, _, errb := runCLI(t, append(tiny, "-fault-spec", "crash@0:at=1s")...)
	if code != 1 {
		t.Fatalf("crashed run exited %d, want 1 (stderr: %s)", code, errb)
	}
	if !strings.Contains(errb, "crash") {
		t.Errorf("stderr does not mention the crash: %s", errb)
	}
}

func TestRunTraceOutAndMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	code, out, errb := runCLI(t, append(tiny, "-trace-out", path, "-metrics")...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "trace ") {
		t.Errorf("no trace summary in output:\n%s", out)
	}
	if !strings.Contains(out, "jaws_") {
		t.Errorf("no metrics in output:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		t.Error("trace file is empty")
	}
}
