// Command jaws runs a workload through a single simulated Turbulence node
// under a chosen scheduler and prints the performance report.
//
// Usage:
//
//	jaws -sched jaws2 -jobs 200                 # generated workload
//	jaws -sched liferaft2 -trace trace.json.gz  # replay a saved trace
//	jaws -sched jaws2 -policy urc -k 10 -speedup 4
//
// Schedulers: noshare, liferaft1, liferaft2, jaws1, jaws2.
// Cache policies: lruk, slru, urc, lru, fifo.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"jaws"
	"jaws/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("jaws", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		schedName = fs.String("sched", "jaws2", "scheduler: noshare, liferaft1, liferaft2, jaws1, jaws2")
		policy    = fs.String("policy", "lruk", "cache policy: lruk, slru, urc, lru, fifo")
		tailPol   = fs.String("tail-policy", "", "tail-policy spec decorating a JAWS scheduler, e.g. 'gate-aware;adaptive-batch:min=4,max=32' (DESIGN.md §18)")
		tracePath = fs.String("trace", "", "replay a trace file written by tracegen (otherwise generate)")
		jobs      = fs.Int("jobs", 200, "jobs to generate when no trace is given")
		seed      = fs.Int64("seed", 1, "workload and field seed")
		speedup   = fs.Float64("speedup", 1, "arrival speed-up (workload saturation)")
		batch     = fs.Int("k", 15, "JAWS batch size")
		alpha     = fs.Float64("alpha", 0.5, "initial age bias α")
		fixed     = fs.Bool("fixed-alpha", false, "disable adaptive starvation resistance")
		cacheAt   = fs.Int("cache", 256, "cache capacity in atoms")
		steps     = fs.Int("steps", 31, "stored time steps")
		compute   = fs.Bool("compute", false, "evaluate interpolation kernels for real")
		verbose   = fs.Bool("v", false, "print per-run adaptation history")
		traceOut  = fs.String("trace-out", "", "write a JSONL decision trace to this file (read it with tracestat)")
		metrics   = fs.Bool("metrics", false, "print the metrics registry in Prometheus text format after the run")
		faultSpec = fs.String("fault-spec", "", "deterministic fault schedule, e.g. 'disk-transient:p=0.05;disk-slow:p=0.1,extra=50ms' (see internal/fault)")
		faultSeed = fs.Int64("fault-seed", 1, "seed for the fault injector (same spec+seed replays identically)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	errf := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "jaws: "+format+"\n", a...)
		return 1
	}

	var sched jaws.Scheduler
	switch strings.ToLower(*schedName) {
	case "noshare":
		sched = jaws.SchedNoShare
	case "liferaft1":
		sched = jaws.SchedLifeRaft1
	case "liferaft2":
		sched = jaws.SchedLifeRaft2
	case "jaws1":
		sched = jaws.SchedJAWS1
	case "jaws2":
		sched = jaws.SchedJAWS2
	default:
		return errf("unknown scheduler %q", *schedName)
	}
	var pol jaws.CachePolicy
	switch strings.ToLower(*policy) {
	case "lruk":
		pol = jaws.PolicyLRUK
	case "slru":
		pol = jaws.PolicySLRU
	case "urc":
		pol = jaws.PolicyURC
	case "lru":
		pol = jaws.PolicyLRU
	case "fifo":
		pol = jaws.PolicyFIFO
	default:
		return errf("unknown cache policy %q", *policy)
	}

	var w *jaws.Workload
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return errf("%v", err)
		}
		w, err = workload.Load(f)
		f.Close()
		if err != nil {
			return errf("%v", err)
		}
	} else {
		w = jaws.GenerateWorkload(jaws.WorkloadConfig{
			Seed:    *seed,
			Jobs:    *jobs,
			Steps:   *steps,
			SpeedUp: *speedup,
		})
	}
	fmt.Fprintf(stdout, "workload: %s\n", workload.Describe(w))

	var o *jaws.Obs
	var tracer *jaws.Tracer
	if *traceOut != "" || *metrics {
		o = &jaws.Obs{}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return errf("%v", err)
			}
			tracer = jaws.NewTracer(0, f)
			o.Trace = tracer
		}
		if *metrics {
			o.Reg = jaws.NewRegistry()
		}
	}

	spec, err := jaws.ParseFaultSpec(*faultSpec)
	if err != nil {
		return errf("%v", err)
	}

	sys, err := jaws.Open(jaws.Config{
		Steps:        *steps,
		Seed:         *seed,
		Scheduler:    sched,
		BatchSize:    *batch,
		InitialAlpha: *alpha,
		AlphaSet:     true,
		AdaptiveOff:  *fixed,
		Policy:       pol,
		TailPolicy:   *tailPol,
		CacheAtoms:   *cacheAt,
		Compute:      *compute,
		Obs:          o,
		Fault:        spec,
		FaultSeed:    *faultSeed,
	})
	if err != nil {
		return errf("%v", err)
	}

	start := time.Now()
	rep, err := sys.Run(w.Jobs)
	if err != nil {
		return errf("%v", err)
	}
	wall := time.Since(start)

	fmt.Fprintf(stdout, "\nscheduler       %s (k=%d, α₀=%.2f adaptive=%v)\n", sched, *batch, *alpha, !*fixed)
	fmt.Fprintf(stdout, "cache policy    %s (%d atoms)\n", pol, *cacheAt)
	if *tailPol != "" {
		fmt.Fprintf(stdout, "tail policy     %s\n", *tailPol)
	}
	fmt.Fprintf(stdout, "completed       %d queries in %.1f virtual seconds (%.3f q/s)\n",
		rep.Completed, rep.Elapsed.Seconds(), rep.ThroughputQPS)
	fmt.Fprintf(stdout, "response time   mean %.3fs  p50 %.3fs  p95 %.3fs\n",
		rep.MeanResponse.Seconds(), rep.P50Response.Seconds(), rep.P95Response.Seconds())
	fmt.Fprintf(stdout, "cache           %.1f%% hit (%d hits / %d misses, %d evictions)\n",
		rep.CacheStats.HitRatio()*100, rep.CacheStats.Hits, rep.CacheStats.Misses, rep.CacheStats.Evictions)
	fmt.Fprintf(stdout, "disk            %d reads, %d sequential, %.1f GB, busy %.1fs\n",
		rep.DiskStats.Reads, rep.DiskStats.SeqReads,
		float64(rep.DiskStats.Bytes)/1e9, rep.DiskStats.BusyTime.Seconds())
	if sched == jaws.SchedJAWS2 {
		fmt.Fprintf(stdout, "gating          %d edges admitted, %d rejected\n", rep.GatingAdmitted, rep.GatingRejected)
	}
	if sched == jaws.SchedJAWS1 || sched == jaws.SchedJAWS2 {
		fmt.Fprintf(stdout, "final α         %.3f\n", rep.FinalAlpha)
	}
	fmt.Fprintf(stdout, "wall clock      %v\n", wall.Round(time.Millisecond))

	if *verbose {
		fmt.Fprintln(stdout, "\nrun  ended-at  mean-resp  throughput  alpha")
		for i, r := range rep.Runs {
			fmt.Fprintf(stdout, "%3d  %7.1fs  %8.3fs  %9.3f  %.3f\n",
				i, r.EndedAt.Seconds(), r.MeanRespSec, r.Throughput, r.Alpha)
		}
	}

	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return errf("trace: %v", err)
		}
		fmt.Fprintf(stdout, "trace           %d events -> %s\n", tracer.Total(), *traceOut)
	}
	if *metrics {
		fmt.Fprintln(stdout)
		if err := o.Reg.WriteText(stdout); err != nil {
			return errf("metrics: %v", err)
		}
	}
	return 0
}
