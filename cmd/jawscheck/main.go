// Command jawscheck runs the scheduler correctness oracle: randomized
// workloads are captured on the real engine and replayed through the
// reference models of internal/oracle, diffing every scheduling decision,
// checking run invariants, and shrinking any divergence to a minimal
// reproducer.
//
// Usage:
//
//	jawscheck                     # 544 differential runs: 34 seeds × (3 standard + 2 churn + 3 matrix) × ±faults
//	jawscheck -seeds 100 -v       # more seeds, one report line per run
//	jawscheck -no-faults          # clean-run pass only
//
// Exit codes: 0 all runs agree, 1 divergence or invariant violation,
// 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"jaws/internal/oracle"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("jawscheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seeds := fs.Int("seeds", 34, "seeds per algorithm (each runs with and without a fault schedule)")
	noFaults := fs.Bool("no-faults", false, "skip the fault-schedule pass")
	verbose := fs.Bool("v", false, "print one line per differential run")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *seeds <= 0 {
		fmt.Fprintln(stderr, "jawscheck: -seeds must be positive")
		return 2
	}

	start := time.Now()
	var failed []*oracle.SeedResult
	report := func(r *oracle.SeedResult) {
		if *verbose || !r.Ok() {
			fmt.Fprintf(stdout, "%s\n", r)
		}
		if !r.Ok() {
			failed = append(failed, r)
		}
	}
	results, err := oracle.Suite(*seeds, !*noFaults, report)
	if err != nil {
		fmt.Fprintf(stderr, "jawscheck: %v\n", err)
		return 1
	}

	fmt.Fprintf(stdout, "\n%d differential runs in %v: %d diverged\n",
		len(results), time.Since(start).Round(time.Millisecond), len(failed))
	if len(failed) == 0 {
		return 0
	}

	for _, r := range failed {
		if r.Divergence != nil {
			fmt.Fprintf(stdout, "\n%v seed %d fault %q:\n  %v\n", r.Algo, r.Seed, r.FaultSpec, r.Divergence)
			printReproducer(stdout, r)
		}
		for _, v := range r.Violations {
			fmt.Fprintf(stdout, "\n%v seed %d fault %q:\n  invariant: %s\n", r.Algo, r.Seed, r.FaultSpec, v)
		}
	}
	return 1
}

// printReproducer re-captures the diverging run and shrinks its op log to
// a minimal reproducer.
func printReproducer(w io.Writer, r *oracle.SeedResult) {
	cfg, p := oracle.ProfileParams(r.Profile, r.Algo, r.Seed)
	cfg.FaultSpec = r.FaultSpec
	cfg.FaultSeed = r.Seed
	c, err := oracle.Run(cfg)
	if err != nil {
		fmt.Fprintf(w, "  (recapture failed: %v)\n", err)
		return
	}
	shrunk := oracle.Shrink(oracle.StandardTarget(r.Algo, p), c.Log)
	fmt.Fprintf(w, "  minimal reproducer (%d ops, from %d):\n", len(shrunk.Ops), len(c.Log.Ops))
	for i, op := range shrunk.Ops {
		switch op.Kind {
		case oracle.OpEnqueue:
			fmt.Fprintf(w, "    %2d: enqueue %v (query %d) at %v\n", i, op.Sub.Atom, op.Sub.Query.ID, op.Now)
		case oracle.OpDecision:
			fmt.Fprintf(w, "    %2d: decision at %v (%d resident)\n", i, op.Now, len(op.Resident))
		case oracle.OpRunEnd:
			fmt.Fprintf(w, "    %2d: run-end rt=%.4f tp=%.4f\n", i, op.RT, op.TP)
		}
	}
}
