package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanSuitePasses(t *testing.T) {
	code, out, errb := runCLI(t, "-seeds", "2")
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if !strings.Contains(out, "36 differential runs") { // 2 seeds × (3 standard + 2 churn + 3 matrix + 1 tail) × ±faults
		t.Errorf("missing summary line:\n%s", out)
	}
	if !strings.Contains(out, "0 diverged") {
		t.Errorf("expected zero divergences:\n%s", out)
	}
}

func TestVerboseAndNoFaults(t *testing.T) {
	code, out, _ := runCLI(t, "-seeds", "1", "-no-faults", "-v")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, algo := range []string{"NoShare", "LifeRaft", "JAWS"} {
		if !strings.Contains(out, algo) {
			t.Errorf("verbose output missing %s line:\n%s", algo, out)
		}
	}
	if !strings.Contains(out, "9 differential runs") {
		t.Errorf("-no-faults should halve the run count:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{{"-no-such-flag"}, {"-seeds", "0"}} {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
	}
}
