// Command traceinfo summarizes a trace file written by tracegen: the job
// mix, the Fig. 8 duration histogram, the Fig. 9 step-access
// distribution, and the job-identification accuracy achievable on the
// trace's raw log records.
//
// Usage:
//
//	traceinfo trace.json.gz
package main

import (
	"fmt"
	"os"
	"time"

	"jaws/internal/job"
	"jaws/internal/metrics"
	"jaws/internal/workload"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo <trace-file>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	w, err := workload.Load(f)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Println(workload.Describe(w))

	// Job mix.
	var ordered, batched, lone int
	maxSteps := 0
	for _, j := range w.Jobs {
		switch {
		case len(j.Queries) == 1:
			lone++
		case j.Type == job.Ordered:
			ordered++
		default:
			batched++
		}
		for _, q := range j.Queries {
			if q.Step+1 > maxSteps {
				maxSteps = q.Step + 1
			}
		}
	}
	fmt.Printf("job mix: %d ordered, %d batched, %d lone queries\n\n", ordered, batched, lone)

	// Fig. 8-style duration histogram.
	if len(w.Durations) > 0 {
		h := metrics.NewHistogram(time.Minute, 30*time.Minute, time.Hour, 2*time.Hour, 6*time.Hour)
		for _, d := range w.Durations {
			h.Add(d)
		}
		tbl := metrics.Table{Header: []string{"duration", "jobs", "fraction"}}
		for i, label := range []string{"<1min", "1-30min", "30-60min", "1-2hr", "2-6hr", ">6hr"} {
			tbl.AddRow(label, fmt.Sprint(h.Counts[i]), fmt.Sprintf("%.2f", h.Fraction(i)))
		}
		fmt.Println("job durations (Fig. 8):")
		fmt.Println(tbl.String())
	}

	// Fig. 9-style step distribution.
	if len(w.StepAccess) > 0 {
		total := 0
		for _, c := range w.StepAccess {
			total += c
		}
		tbl := metrics.Table{Header: []string{"step", "queries", "fraction"}}
		for s, c := range w.StepAccess {
			tbl.AddRow(fmt.Sprint(s), fmt.Sprint(c), fmt.Sprintf("%.3f", float64(c)/float64(total)))
		}
		fmt.Println("step access (Fig. 9):")
		fmt.Println(tbl.String())
	}

	// Identification accuracy on the raw log.
	if len(w.Records) > 0 {
		assignment := job.Identify(w.Records, job.DefaultIdentifyParams())
		acc := job.Accuracy(w.Records, assignment)
		fmt.Printf("job identification (§IV.A): pairwise accuracy %.3f over %d records\n",
			acc, len(w.Records))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceinfo: "+format+"\n", args...)
	os.Exit(1)
}
