// Command tracestat summarizes a JSONL decision trace written by
// jaws -trace-out (or jawsbench -trace-out): the decision mix per
// scheduler, batch-size statistics, cache hit ratio over virtual time,
// the adaptive α trajectory, per-query gating waits, and the disk-read
// profile.
//
// Usage:
//
//	jaws -sched jaws2 -jobs 200 -trace-out run.jsonl
//	tracestat run.jsonl
//	tracestat < run.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"jaws/internal/metrics"
	"jaws/internal/obs"
)

func main() {
	var in io.Reader = os.Stdin
	name := "<stdin>"
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
		name = os.Args[1]
	}

	events, err := parse(in)
	if err != nil {
		fatalf("%v", err)
	}
	if len(events) == 0 {
		fatalf("%s: no events", name)
	}
	fmt.Printf("trace: %s (%d events, %.1f virtual seconds)\n",
		name, len(events), span(events).Seconds())

	printKindMix(events)
	printDecisions(events)
	printCacheTimeline(events)
	printAlphaTrajectory(events)
	printGating(events)
	printDisk(events)
}

// parse decodes one JSON event per line, skipping blank lines.
func parse(r io.Reader) ([]obs.Event, error) {
	var out []obs.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}

// span returns the virtual time of the last event.
func span(events []obs.Event) time.Duration {
	var max time.Duration
	for _, ev := range events {
		if ev.T > max {
			max = ev.T
		}
	}
	return max
}

// printKindMix tabulates event counts by kind.
func printKindMix(events []obs.Event) {
	counts := make(map[obs.Kind]int)
	for _, ev := range events {
		counts[ev.Kind]++
	}
	order := []obs.Kind{
		obs.KindDecision, obs.KindCacheHit, obs.KindCacheMiss,
		obs.KindCacheEvict, obs.KindDiskRead, obs.KindEdgeAdmit,
		obs.KindEdgeReject, obs.KindGateBlock, obs.KindGateAdmit,
		obs.KindPrefetch, obs.KindAlpha, obs.KindFaultRetry,
		obs.KindFaultAbort, obs.KindNodeCrash, obs.KindStallAbort,
	}
	tb := &metrics.Table{Header: []string{"kind", "events", "share"}}
	for _, k := range order {
		if counts[k] == 0 {
			continue
		}
		tb.AddRow(string(k), fmt.Sprintf("%d", counts[k]),
			fmt.Sprintf("%.1f%%", 100*float64(counts[k])/float64(len(events))))
	}
	fmt.Println("\n== event mix ==")
	fmt.Print(tb.String())
}

// printDecisions summarizes the scheduling decisions per scheduler.
func printDecisions(events []obs.Event) {
	type agg struct {
		atoms    int
		k        metrics.Summary
		ut, ue   metrics.Summary
		lastSeen time.Duration
	}
	bySched := make(map[string]*agg)
	var order []string
	for _, ev := range events {
		if ev.Kind != obs.KindDecision {
			continue
		}
		a := bySched[ev.Sched]
		if a == nil {
			a = &agg{}
			bySched[ev.Sched] = a
			order = append(order, ev.Sched)
		}
		a.atoms++
		a.k.Add(float64(ev.K))
		a.ut.Add(ev.Ut)
		a.ue.Add(ev.Ue)
		a.lastSeen = ev.T
	}
	if len(order) == 0 {
		return
	}
	tb := &metrics.Table{Header: []string{"scheduler", "atoms", "mean k", "mean U_t", "mean U_e"}}
	for _, s := range order {
		a := bySched[s]
		tb.AddRow(s, fmt.Sprintf("%d", a.atoms),
			fmt.Sprintf("%.1f", a.k.Mean()),
			fmt.Sprintf("%.1f", a.ut.Mean()),
			fmt.Sprintf("%.1f", a.ue.Mean()))
	}
	fmt.Println("\n== scheduling decisions ==")
	fmt.Print(tb.String())
}

// printCacheTimeline buckets hits/misses over virtual time and charts the
// hit ratio's evolution.
func printCacheTimeline(events []obs.Event) {
	var hits, misses int
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindCacheHit:
			hits++
		case obs.KindCacheMiss:
			misses++
		}
	}
	if hits+misses == 0 {
		return
	}
	fmt.Println("\n== cache ==")
	fmt.Printf("overall: %.1f%% hit (%d hits / %d misses)\n",
		100*float64(hits)/float64(hits+misses), hits, misses)

	const buckets = 20
	total := span(events)
	if total <= 0 {
		return
	}
	var h, m [buckets]int
	for _, ev := range events {
		if ev.Kind != obs.KindCacheHit && ev.Kind != obs.KindCacheMiss {
			continue
		}
		i := int(int64(ev.T) * buckets / int64(total+1))
		if ev.Kind == obs.KindCacheHit {
			h[i]++
		} else {
			m[i]++
		}
	}
	s := metrics.Series{Label: "hit ratio % over virtual time"}
	for i := 0; i < buckets; i++ {
		if h[i]+m[i] == 0 {
			continue
		}
		at := total.Seconds() * (float64(i) + 0.5) / buckets
		s.Append(at, 100*float64(h[i])/float64(h[i]+m[i]))
	}
	if len(s.X) > 1 {
		fmt.Print(metrics.LineChart([]metrics.Series{s}, 8))
	}
}

// printAlphaTrajectory charts α over the adaptation runs.
func printAlphaTrajectory(events []obs.Event) {
	s := metrics.Series{Label: "α by adaptation run"}
	for _, ev := range events {
		if ev.Kind == obs.KindAlpha {
			s.Append(float64(ev.Run), ev.Alpha)
		}
	}
	if len(s.X) == 0 {
		return
	}
	fmt.Println("\n== adaptive age bias ==")
	fmt.Printf("runs: %d   final α: %.3f\n", len(s.X), s.Y[len(s.Y)-1])
	if len(s.X) > 1 {
		fmt.Print(metrics.LineChart([]metrics.Series{s}, 8))
	}
}

// printGating summarizes per-query gating waits and edge decisions.
func printGating(events []obs.Event) {
	var wait metrics.Summary
	var blocked, admitted, edgeAdmit, edgeReject int
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindGateBlock:
			blocked++
		case obs.KindGateAdmit:
			admitted++
			wait.Add(ev.Wait.Seconds())
		case obs.KindEdgeAdmit:
			edgeAdmit++
		case obs.KindEdgeReject:
			edgeReject++
		}
	}
	if blocked+admitted+edgeAdmit+edgeReject == 0 {
		return
	}
	fmt.Println("\n== job-aware gating ==")
	fmt.Printf("edges: %d admitted, %d rejected\n", edgeAdmit, edgeReject)
	fmt.Printf("queries blocked: %d, later admitted: %d\n", blocked, admitted)
	if wait.N() > 0 {
		fmt.Printf("gating wait: mean %.3fs  min %.3fs  max %.3fs\n",
			wait.Mean(), wait.Min(), wait.Max())
	}
}

// printDisk summarizes the read profile.
func printDisk(events []obs.Event) {
	var reads, seq int
	var bytes int64
	var cost metrics.Summary
	for _, ev := range events {
		if ev.Kind != obs.KindDiskRead {
			continue
		}
		reads++
		if ev.Seq {
			seq++
		}
		bytes += ev.Bytes
		cost.Add(ev.Cost.Seconds())
	}
	if reads == 0 {
		return
	}
	fmt.Println("\n== disk ==")
	fmt.Printf("reads: %d (%.1f%% sequential), %.2f GB, mean cost %.1f ms\n",
		reads, 100*float64(seq)/float64(reads), float64(bytes)/1e9, cost.Mean()*1e3)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracestat: "+format+"\n", args...)
	os.Exit(1)
}
