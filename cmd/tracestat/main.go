// Command tracestat summarizes a JSONL decision trace written by
// jaws -trace-out (or jawsbench -trace-out): the decision mix per
// scheduler, batch-size statistics, cache hit ratio over virtual time,
// the adaptive α trajectory, per-query gating waits, the disk-read
// profile, and the trace footer's drop accounting.
//
// The trace is processed as a stream — one event in memory at a time —
// so traces far larger than RAM summarize fine.
//
// Usage:
//
//	jaws -sched jaws2 -jobs 200 -trace-out run.jsonl
//	tracestat run.jsonl
//	tracestat < run.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"jaws/internal/metrics"
	"jaws/internal/obs"
)

func main() {
	var in io.Reader = os.Stdin
	name := "<stdin>"
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
		name = os.Args[1]
	}
	if err := run(in, name, os.Stdout); err != nil {
		fatalf("%v", err)
	}
}

// run streams the trace through an aggregator and prints the summary.
// Split out from main so tests can drive it against golden files.
func run(in io.Reader, name string, out io.Writer) error {
	agg := newAggregator()
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		agg.add(&ev)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if agg.events == 0 {
		return fmt.Errorf("%s: no events", name)
	}
	agg.print(out, name)
	return nil
}

// timelineSlots is the fixed resolution of the streaming cache timeline.
const timelineSlots = 32

// schedAgg accumulates one scheduler's decision statistics.
type schedAgg struct {
	atoms  int
	k      metrics.Summary
	ut, ue metrics.Summary
}

// aggregator folds trace events into bounded state as they stream by:
// every structure here is fixed-size or bounded by the event vocabulary
// (schedulers, adaptation runs), never by the trace length.
type aggregator struct {
	events int64
	maxT   time.Duration
	counts map[obs.Kind]int64

	bySched    map[string]*schedAgg
	schedOrder []string

	// Cache timeline: fixed slot count over a growing window. When an
	// event lands past the window, the slot width doubles and adjacent
	// pairs merge, so resolution degrades gracefully instead of memory
	// growing with trace length.
	slotDur      time.Duration
	hitSlots     [timelineSlots]int64
	missSlots    [timelineSlots]int64
	hits, misses int64

	alpha metrics.Series

	wait                                   metrics.Summary
	blocked, admitted, edgeAdm, edgeRej    int64
	reads, seqReads                        int64
	readBytes                              int64
	readCost                               metrics.Summary
	spans                                  int64
	faultRetries, faultAborts, nodeCrashes int64

	footer *obs.TraceFooter
}

func newAggregator() *aggregator {
	return &aggregator{
		counts:  make(map[obs.Kind]int64),
		bySched: make(map[string]*schedAgg),
		slotDur: time.Millisecond,
		alpha:   metrics.Series{Label: "α by adaptation run"},
	}
}

// slot buckets t into the timeline, widening the window as needed.
func (a *aggregator) slot(t time.Duration) int {
	if t < 0 {
		t = 0
	}
	for t >= a.slotDur*timelineSlots {
		for i := 0; i < timelineSlots/2; i++ {
			a.hitSlots[i] = a.hitSlots[2*i] + a.hitSlots[2*i+1]
			a.missSlots[i] = a.missSlots[2*i] + a.missSlots[2*i+1]
		}
		for i := timelineSlots / 2; i < timelineSlots; i++ {
			a.hitSlots[i], a.missSlots[i] = 0, 0
		}
		a.slotDur *= 2
	}
	return int(t / a.slotDur)
}

// add folds one event in.
func (a *aggregator) add(ev *obs.Event) {
	if ev.Kind == obs.KindFooter {
		a.footer = ev.Footer
		return // a file property, not a simulation event
	}
	a.events++
	a.counts[ev.Kind]++
	if ev.T > a.maxT {
		a.maxT = ev.T
	}
	switch ev.Kind {
	case obs.KindDecision:
		s := a.bySched[ev.Sched]
		if s == nil {
			s = &schedAgg{}
			a.bySched[ev.Sched] = s
			a.schedOrder = append(a.schedOrder, ev.Sched)
		}
		s.atoms++
		s.k.Add(float64(ev.K))
		s.ut.Add(ev.Ut)
		s.ue.Add(ev.Ue)
	case obs.KindCacheHit:
		a.hits++
		a.hitSlots[a.slot(ev.T)]++
	case obs.KindCacheMiss:
		a.misses++
		a.missSlots[a.slot(ev.T)]++
	case obs.KindAlpha:
		a.alpha.Append(float64(ev.Run), ev.Alpha)
	case obs.KindGateBlock:
		a.blocked++
	case obs.KindGateAdmit:
		a.admitted++
		a.wait.Add(ev.Wait.Seconds())
	case obs.KindEdgeAdmit:
		a.edgeAdm++
	case obs.KindEdgeReject:
		a.edgeRej++
	case obs.KindDiskRead:
		a.reads++
		if ev.Seq {
			a.seqReads++
		}
		a.readBytes += ev.Bytes
		a.readCost.Add(ev.Cost.Seconds())
	case obs.KindSpan:
		a.spans++
	case obs.KindFaultRetry:
		a.faultRetries++
	case obs.KindFaultAbort:
		a.faultAborts++
	case obs.KindNodeCrash:
		a.nodeCrashes++
	}
}

func (a *aggregator) print(out io.Writer, name string) {
	fmt.Fprintf(out, "trace: %s (%d events, %.1f virtual seconds)\n",
		name, a.events, a.maxT.Seconds())
	a.printKindMix(out)
	a.printDecisions(out)
	a.printCacheTimeline(out)
	a.printAlphaTrajectory(out)
	a.printGating(out)
	a.printDisk(out)
	a.printFooter(out)
}

// printKindMix tabulates event counts by kind.
func (a *aggregator) printKindMix(out io.Writer) {
	order := []obs.Kind{
		obs.KindDecision, obs.KindCacheHit, obs.KindCacheMiss,
		obs.KindCacheEvict, obs.KindDiskRead, obs.KindEdgeAdmit,
		obs.KindEdgeReject, obs.KindGateBlock, obs.KindGateAdmit,
		obs.KindPrefetch, obs.KindAlpha, obs.KindFaultRetry,
		obs.KindFaultAbort, obs.KindNodeCrash, obs.KindStallAbort,
		obs.KindSpan,
	}
	tb := &metrics.Table{Header: []string{"kind", "events", "share"}}
	for _, k := range order {
		if a.counts[k] == 0 {
			continue
		}
		tb.AddRow(string(k), fmt.Sprintf("%d", a.counts[k]),
			fmt.Sprintf("%.1f%%", 100*float64(a.counts[k])/float64(a.events)))
	}
	fmt.Fprintln(out, "\n== event mix ==")
	fmt.Fprint(out, tb.String())
}

// printDecisions summarizes the scheduling decisions per scheduler.
func (a *aggregator) printDecisions(out io.Writer) {
	if len(a.schedOrder) == 0 {
		return
	}
	tb := &metrics.Table{Header: []string{"scheduler", "atoms", "mean k", "mean U_t", "mean U_e"}}
	for _, s := range a.schedOrder {
		g := a.bySched[s]
		tb.AddRow(s, fmt.Sprintf("%d", g.atoms),
			fmt.Sprintf("%.1f", g.k.Mean()),
			fmt.Sprintf("%.1f", g.ut.Mean()),
			fmt.Sprintf("%.1f", g.ue.Mean()))
	}
	fmt.Fprintln(out, "\n== scheduling decisions ==")
	fmt.Fprint(out, tb.String())
}

// printCacheTimeline charts the hit ratio's evolution over virtual time.
func (a *aggregator) printCacheTimeline(out io.Writer) {
	if a.hits+a.misses == 0 {
		return
	}
	fmt.Fprintln(out, "\n== cache ==")
	fmt.Fprintf(out, "overall: %.1f%% hit (%d hits / %d misses)\n",
		100*float64(a.hits)/float64(a.hits+a.misses), a.hits, a.misses)

	s := metrics.Series{Label: "hit ratio % over virtual time"}
	for i := 0; i < timelineSlots; i++ {
		h, m := a.hitSlots[i], a.missSlots[i]
		if h+m == 0 {
			continue
		}
		at := a.slotDur.Seconds() * (float64(i) + 0.5)
		s.Append(at, 100*float64(h)/float64(h+m))
	}
	if len(s.X) > 1 {
		fmt.Fprint(out, metrics.LineChart([]metrics.Series{s}, 8))
	}
}

// printAlphaTrajectory charts α over the adaptation runs.
func (a *aggregator) printAlphaTrajectory(out io.Writer) {
	if len(a.alpha.X) == 0 {
		return
	}
	fmt.Fprintln(out, "\n== adaptive age bias ==")
	fmt.Fprintf(out, "runs: %d   final α: %.3f\n", len(a.alpha.X), a.alpha.Y[len(a.alpha.Y)-1])
	if len(a.alpha.X) > 1 {
		fmt.Fprint(out, metrics.LineChart([]metrics.Series{a.alpha}, 8))
	}
}

// printGating summarizes per-query gating waits and edge decisions.
func (a *aggregator) printGating(out io.Writer) {
	if a.blocked+a.admitted+a.edgeAdm+a.edgeRej == 0 {
		return
	}
	fmt.Fprintln(out, "\n== job-aware gating ==")
	fmt.Fprintf(out, "edges: %d admitted, %d rejected\n", a.edgeAdm, a.edgeRej)
	fmt.Fprintf(out, "queries blocked: %d, later admitted: %d\n", a.blocked, a.admitted)
	if a.wait.N() > 0 {
		fmt.Fprintf(out, "gating wait: mean %.3fs  min %.3fs  max %.3fs\n",
			a.wait.Mean(), a.wait.Min(), a.wait.Max())
	}
}

// printDisk summarizes the read profile.
func (a *aggregator) printDisk(out io.Writer) {
	if a.reads == 0 {
		return
	}
	fmt.Fprintln(out, "\n== disk ==")
	fmt.Fprintf(out, "reads: %d (%.1f%% sequential), %.2f GB, mean cost %.1f ms\n",
		a.reads, 100*float64(a.seqReads)/float64(a.reads),
		float64(a.readBytes)/1e9, a.readCost.Mean()*1e3)
}

// printFooter audits the trace against its closing record.
func (a *aggregator) printFooter(out io.Writer) {
	fmt.Fprintln(out, "\n== trace integrity ==")
	if a.footer == nil {
		fmt.Fprintln(out, "WARNING: no trace footer — the trace was cut short (writer crashed or was not closed)")
		return
	}
	fmt.Fprintf(out, "footer: %d events emitted, %d dropped from the ring window, %d lost by the sink\n",
		a.footer.Total, a.footer.RingDropped, a.footer.SinkDropped)
	if a.footer.SinkDropped > 0 {
		fmt.Fprintf(out, "WARNING: %d events missing from this file (sink write errors)\n", a.footer.SinkDropped)
	}
	if got := a.events; a.footer.Total != got+a.footer.SinkDropped {
		fmt.Fprintf(out, "WARNING: file holds %d events but the footer claims %d emitted\n", got, a.footer.Total)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracestat: "+format+"\n", args...)
	os.Exit(1)
}
