package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jaws/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestGolden locks the summary's rendering against golden files; run with
// -update after intentional output changes.
func TestGolden(t *testing.T) {
	for _, tc := range []struct{ fixture, golden string }{
		{"trace.jsonl", "trace.golden"},
		{"truncated.jsonl", "truncated.golden"},
	} {
		t.Run(tc.fixture, func(t *testing.T) {
			// Input fixtures are shared with cmd/jawsreport (both commands
			// consume the same trace format); goldens stay per-command.
			in, err := os.Open(filepath.Join("..", "testdata", tc.fixture))
			if err != nil {
				t.Fatal(err)
			}
			defer in.Close()
			var out bytes.Buffer
			if err := run(in, tc.fixture, &out); err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s (rerun with -update after intentional changes):\n%s", tc.golden, out.String())
			}
		})
	}
}

// TestStreamingTimelineRescale feeds a synthetic stream whose virtual span
// vastly exceeds the timeline's initial window and checks the aggregate
// stays exact while memory stays fixed.
func TestStreamingTimelineRescale(t *testing.T) {
	var b strings.Builder
	const n = 5000
	for i := 0; i < n; i++ {
		kind := obs.KindCacheHit
		if i%4 == 0 {
			kind = obs.KindCacheMiss
		}
		// Spread events over ~83 virtual minutes: the millisecond-wide
		// initial window must double many times.
		fmt.Fprintf(&b, `{"t":%d,"kind":"%s","step":1,"code":5}`+"\n", int64(i)*1_000_000_000, kind)
	}
	var out bytes.Buffer
	if err := run(strings.NewReader(b.String()), "synthetic", &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, fmt.Sprintf("%d hits", n-n/4)) || !strings.Contains(s, fmt.Sprintf("%d misses", n/4)) {
		t.Fatalf("hit/miss totals lost in rescaling:\n%s", s)
	}
	var hits, misses int64
	agg := newAggregator()
	for i := 0; i < n; i++ {
		ev := obs.Event{T: time.Duration(i) * time.Second, Kind: obs.KindCacheHit}
		if i%4 == 0 {
			ev.Kind = obs.KindCacheMiss
		}
		agg.add(&ev)
	}
	for i := 0; i < timelineSlots; i++ {
		hits += agg.hitSlots[i]
		misses += agg.missSlots[i]
	}
	if hits != n-n/4 || misses != n/4 {
		t.Fatalf("slot totals %d/%d after rescale, want %d/%d", hits, misses, n-n/4, n/4)
	}
}

// TestEmptyTrace checks the error path.
func TestEmptyTrace(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(""), "empty", &out); err == nil {
		t.Fatal("expected an error for an empty trace")
	}
}
