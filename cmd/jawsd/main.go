// Command jawsd is the production daemon: the Fig. 7 web-service front
// end over a pool of long-lived JAWS session replicas, with admission
// control, backpressure, and graceful drain (see internal/server).
//
// Usage:
//
//	jawsd                                    # defaults: :8080, 1 node
//	jawsd -addr :9000 -nodes 4 -queue 128 -workers 16
//	jawsd -fault-spec 'disk-transient:p=0.05' -metrics-out metrics.prom
//
// Endpoints: POST /query (JSON), GET /metrics, /healthz, /varz. The
// daemon drains gracefully on SIGINT/SIGTERM; with -allow-quit a POST to
// /quitquitquit does the same (used by the CI end-to-end job).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"jaws"
	"jaws/internal/obs"
	"jaws/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the daemon: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("jawsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free one)")
		nodes       = fs.Int("nodes", 1, "session replicas serving the space (queries route round-robin)")
		queue       = fs.Int("queue", 64, "admission queue bound (full queue sheds with 429)")
		workers     = fs.Int("workers", 8, "worker pool size (max queries concurrently in the engines)")
		maxInFlight = fs.Int("max-in-flight", 0, "max requests between accept and response (0: 4×(queue+workers))")
		deadline    = fs.Duration("deadline", 30*time.Second, "default per-request deadline")
		maxDeadline = fs.Duration("max-deadline", 2*time.Minute, "cap on client-requested timeout_ms")
		maxBody     = fs.Int64("max-body", 1<<20, "max /query body bytes (larger is 413)")
		maxPoints   = fs.Int("max-points", 4096, "max positions per query")
		retryAfter  = fs.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		grid        = fs.Int("grid", 128, "grid side in voxels")
		atom        = fs.Int("atom", 32, "atom side in voxels")
		steps       = fs.Int("steps", 8, "stored time steps per node")
		seed        = fs.Int64("seed", 1, "turbulence field seed (replicas share it: same data)")
		schedName   = fs.String("sched", "jaws2", "scheduler: noshare, liferaft1, liferaft2, jaws1, jaws2")
		tailPol     = fs.String("tail-policy", "", "tail-policy spec decorating a JAWS scheduler on every node, e.g. 'gate-aware;adaptive-batch:min=4,max=32' (DESIGN.md §18)")
		cacheAtoms  = fs.Int("cache", 64, "cache capacity in atoms per node")
		faultSpec   = fs.String("fault-spec", "", "deterministic fault schedule, e.g. 'disk-transient:p=0.05' (see internal/fault)")
		faultSeed   = fs.Int64("fault-seed", 1, "seed for the fault injector (each node derives its own stream)")
		traceOut    = fs.String("trace-out", "", "write a JSONL decision trace to this file")
		flight      = fs.Bool("flight", false, "record scheduler decision flight records (ring + trace-out sink; enables /varz sched and jaws_sched_* metrics)")
		flightRing  = fs.Int("flight-ring", 0, "flight recorder ring capacity in records (0: default 4096, <0: unbounded)")
		metricsOut  = fs.String("metrics-out", "", "write the metrics registry (Prometheus text) to this file on exit")
		serveFor    = fs.Duration("serve-for", 0, "drain and exit after this long (0: serve until a signal)")
		allowQuit   = fs.Bool("allow-quit", false, "serve POST /quitquitquit to trigger a graceful drain")
		logOut      = fs.String("log-out", "", "write structured JSON request logs to this file (- for stderr)")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof diagnostics on this address (e.g. 127.0.0.1:6060)")
		reqSeed     = fs.Int64("req-seed", 1, "seed for deterministic X-Jaws-Request-Id derivation")
		sloTarget   = fs.Duration("slo-target", 0, "latency SLO target (0 disables SLO tracking)")
		sloObj      = fs.Float64("slo-objective", 0.99, "fraction of requests that must meet -slo-target")
		sloWindow   = fs.Duration("slo-window", time.Minute, "rolling window for SLO compliance")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	errf := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "jawsd: "+format+"\n", a...)
		return 1
	}

	var sched jaws.Scheduler
	switch strings.ToLower(*schedName) {
	case "noshare":
		sched = jaws.SchedNoShare
	case "liferaft1":
		sched = jaws.SchedLifeRaft1
	case "liferaft2":
		sched = jaws.SchedLifeRaft2
	case "jaws1":
		sched = jaws.SchedJAWS1
	case "jaws2":
		sched = jaws.SchedJAWS2
	default:
		return errf("unknown scheduler %q", *schedName)
	}
	if *nodes < 1 {
		return errf("need at least one node, got %d", *nodes)
	}
	spec, err := jaws.ParseFaultSpec(*faultSpec)
	if err != nil {
		return errf("%v", err)
	}

	reg := jaws.NewRegistry()
	o := &jaws.Obs{Reg: reg}
	var tracer *jaws.Tracer
	var reqSpans *obs.ReqSpanAgg
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return errf("%v", err)
		}
		tracer = jaws.NewTracer(0, f)
		o.Trace = tracer
		// The same tracer carries both the engines' virtual-clock events
		// and the server's wall-clock request spans, so one JSONL file
		// holds both sides of every request.
		reqSpans = obs.NewReqSpanAgg()
	}
	var recorder *obs.FlightRecorder
	if *flight {
		// Decision flight records land in the recorder's ring (for /varz
		// aggregates), the jaws_sched_* counters, and — when -trace-out is
		// set — the shared JSONL trace, where jawsreport -why joins them
		// with the engine spans.
		recorder = obs.NewFlightRecorder(*flightRing, tracer, reg)
		o.Flight = recorder
	}
	var logger *obs.Logger
	if *logOut != "" {
		w := io.Writer(stderr)
		if *logOut != "-" {
			f, err := os.Create(*logOut)
			if err != nil {
				return errf("%v", err)
			}
			defer f.Close()
			w = f
		}
		logger = obs.NewLogger(w)
	}
	slo := obs.NewSLOTracker(*sloTarget, *sloObj, *sloWindow)

	backends := make([]server.Backend, *nodes)
	for i := range backends {
		sess, err := jaws.OpenSession(jaws.Config{
			Space:      jaws.Space{GridSide: *grid, AtomSide: *atom},
			Steps:      *steps,
			Seed:       *seed, // shared: every replica serves the same field
			Scheduler:  sched,
			TailPolicy: *tailPol,
			CacheAtoms: *cacheAtoms,
			Compute:    true,
			Obs:        o,
			EngineID:   i, // label decision records per node
			Fault:      spec,
			FaultSeed:  *faultSeed + int64(i), // independent fault streams
		})
		if err != nil {
			return errf("node %d: %v", i, err)
		}
		backends[i] = sess
	}

	srv, err := server.New(server.Config{
		Backends:        backends,
		Reg:             reg,
		QueueBound:      *queue,
		Workers:         *workers,
		MaxInFlight:     *maxInFlight,
		MaxBodyBytes:    *maxBody,
		MaxPoints:       *maxPoints,
		Steps:           *steps,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		RetryAfter:      *retryAfter,
		Trace:           tracer,
		ReqSpans:        reqSpans,
		Log:             logger,
		SLO:             slo,
		ReqIDSeed:       *reqSeed,
		Flight:          recorder,
		TailPolicy:      *tailPol,
	})
	if err != nil {
		return errf("%v", err)
	}

	// A drain can be requested by a signal, the -serve-for timer, or the
	// /quitquitquit endpoint; whichever fires first wins.
	stop := make(chan string, 1)
	var stopOnce sync.Once
	requestStop := func(why string) { stopOnce.Do(func() { stop <- why }) }

	root := http.NewServeMux()
	root.Handle("/", srv.Handler())
	if *allowQuit {
		root.HandleFunc("/quitquitquit", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				w.Header().Set("Allow", http.MethodPost)
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			fmt.Fprintln(w, "draining")
			requestStop("quitquitquit")
		})
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return errf("%v", err)
	}
	fmt.Fprintf(stdout, "jawsd listening on http://%s (nodes=%d queue=%d workers=%d deadline=%v sched=%v)\n",
		ln.Addr(), *nodes, *queue, *workers, *deadline, sched)

	// Diagnostics listener, printed after the serving address so scripts
	// watching stdout see the service endpoint first.
	if *pprofAddr != "" {
		pprofSrv, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			return errf("pprof: %v", err)
		}
		defer pprofSrv.Close()
		fmt.Fprintf(stdout, "pprof on http://%s/debug/pprof/\n", pprofSrv.Addr())
	}

	httpSrv := &http.Server{Handler: root}
	httpErr := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			httpErr <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	var timerC <-chan time.Time
	if *serveFor > 0 {
		timerC = time.After(*serveFor)
	}
	var why string
	select {
	case sig := <-sigc:
		why = sig.String()
	case <-timerC:
		why = "serve-for elapsed"
	case why = <-stop:
	case err := <-httpErr:
		return errf("serve: %v", err)
	}

	fmt.Fprintf(stdout, "draining (%s)...\n", why)
	reports := srv.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return errf("http shutdown: %v", err)
	}

	st := srv.Stats()
	fmt.Fprintf(stdout, "served          %d queries (%d requests, %d shed, %d timeouts, %d errors)\n",
		st.Served, st.Requests, st.Shed, st.Timeouts, st.Errors)
	for i, rep := range reports {
		fmt.Fprintf(stdout, "node %d          %d completed, %.1f virtual s, cache hit %.1f%%\n",
			i, rep.Completed, rep.Elapsed.Seconds(), rep.CacheStats.HitRatio()*100)
	}
	if reqSpans != nil && reqSpans.Count() > 0 {
		sum := reqSpans.Summarize(3)
		fmt.Fprintf(stdout, "request spans   %d spans (%d ok), wall p50 %v p99 %v max %v\n",
			sum.Count, sum.OK, sum.P50.Round(time.Microsecond),
			sum.P99.Round(time.Microsecond), sum.Max.Round(time.Microsecond))
		for _, row := range sum.Attribution() {
			fmt.Fprintf(stdout, "  %-9s %5.1f%%  %v/request\n",
				row.Name, row.Share*100, row.MeanPerQuery.Round(time.Microsecond))
		}
	}
	if slo != nil {
		snap := slo.Snapshot()
		fmt.Fprintf(stdout, "slo             %.2f%% <= %v (objective %.2f%%, burn %.2f, budget %.0f%%)\n",
			snap.Compliance*100, snap.Target, snap.Objective*100, snap.BurnRate, snap.BudgetRemaining*100)
	}
	if recorder != nil {
		snap := recorder.Snapshot()
		fmt.Fprintf(stdout, "flight          %d decisions (%d atoms chosen; pass-overs: %d batch-full, %d lost-race, %d aged-in; %d gated rounds)\n",
			snap.Decisions, snap.ChosenAtoms, snap.PassBatchFull, snap.PassLostRace, snap.PassAgedIn, snap.GatedEdgeRounds)
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return errf("trace: %v", err)
		}
		fmt.Fprintf(stdout, "trace           %d events -> %s\n", tracer.Total(), *traceOut)
		// Fold the final drop totals into the counter so the exported
		// metrics file agrees with the closed trace.
		c := reg.Counter("jaws_trace_dropped_total")
		if dropped := tracer.RingDropped() + tracer.SinkDropped(); dropped > c.Value() {
			c.Add(dropped - c.Value())
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return errf("%v", err)
		}
		if err := reg.WriteText(f); err != nil {
			f.Close()
			return errf("metrics: %v", err)
		}
		if err := f.Close(); err != nil {
			return errf("metrics: %v", err)
		}
		fmt.Fprintf(stdout, "metrics         -> %s\n", *metricsOut)
	}
	return 0
}
