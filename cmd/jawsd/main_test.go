package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// tiny keeps daemon start-up under a second.
var tiny = []string{"-grid", "64", "-atom", "32", "-steps", "3", "-cache", "16"}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		args []string
		code int
		want string
	}{
		{[]string{"-no-such-flag"}, 2, "flag provided but not defined"},
		{append(tiny, "-sched", "bogus"), 1, `unknown scheduler "bogus"`},
		{append(tiny, "-nodes", "0"), 1, "at least one node"},
		{append(tiny, "-fault-spec", "bogus:nope"), 1, "fault"},
		{append(tiny, "-addr", "256.256.256.256:http"), 1, "listen"},
		{append(tiny, "-trace-out", "/nonexistent/dir/trace.jsonl"), 1, "no such file"},
	}
	for _, c := range cases {
		code, _, errb := runCLI(t, c.args...)
		if code != c.code {
			t.Errorf("%v: exit %d, want %d (stderr: %s)", c.args, code, c.code, errb)
		}
		if !strings.Contains(errb, c.want) {
			t.Errorf("%v: stderr %q missing %q", c.args, errb, c.want)
		}
	}
}

func TestServeForDrainsCleanly(t *testing.T) {
	code, out, errb := runCLI(t, append(tiny, "-addr", "127.0.0.1:0", "-serve-for", "50ms")...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"jawsd listening on http://", "draining (serve-for elapsed)", "served          0 queries"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// addrWriter tees the daemon's stdout and delivers the advertised listen
// address to the test as soon as it is printed.
type addrWriter struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	addr chan string
	sent bool
}

var addrRe = regexp.MustCompile(`http://(127\.0\.0\.1:\d+)`)

func (w *addrWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		if m := addrRe.FindSubmatch(w.buf.Bytes()); m != nil {
			w.sent = true
			w.addr <- string(m[1])
		}
	}
	return len(p), nil
}

func (w *addrWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestDaemonSmoke boots the daemon on a free port with the full
// observability surface enabled (request tracing, structured logs, SLO
// tracking, pprof), serves a real query and the observability endpoints,
// then drains it via /quitquitquit and checks the emitted artifacts
// stitch together under the propagated request ID.
func TestDaemonSmoke(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.prom")
	tracePath := filepath.Join(dir, "trace.jsonl")
	logPath := filepath.Join(dir, "jawsd.log")
	out := &addrWriter{addr: make(chan string, 1)}
	var errb bytes.Buffer
	exit := make(chan int, 1)
	go func() {
		exit <- run(append(tiny,
			"-addr", "127.0.0.1:0", "-nodes", "2", "-queue", "8", "-workers", "2",
			"-allow-quit", "-metrics-out", metricsPath,
			"-trace-out", tracePath, "-log-out", logPath,
			"-pprof", "127.0.0.1:0", "-req-seed", "7",
			"-slo-target", "5s", "-slo-objective", "0.9"), out, &errb)
	}()

	var addr string
	select {
	case addr = <-out.addr:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never printed its address; stderr: %s", errb.String())
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/query", "application/json",
		strings.NewReader(`{"step":1,"kernel":"lag4","points":[{"x":1,"y":2,"z":3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"velocity"`) {
		t.Errorf("/query body %q has no computed values", body)
	}
	rid := resp.Header.Get("X-Jaws-Request-Id")
	if rid == "" {
		t.Fatal("/query response has no X-Jaws-Request-Id header")
	}

	// The pprof diagnostics listener advertises itself on stdout.
	pprofRe := regexp.MustCompile(`pprof on http://(127\.0\.0\.1:\d+)/`)
	var pprofAddr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := pprofRe.FindStringSubmatch(out.String()); m != nil {
			pprofAddr = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if pprofAddr == "" {
		t.Fatalf("daemon never advertised pprof:\n%s", out.String())
	}
	presp, err := http.Get("http://" + pprofAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", presp.StatusCode)
	}

	for path, want := range map[string]string{
		"/healthz": "ok",
		"/varz":    `"queue_bound":8`,
		"/metrics": "jaws_server_served_total 1",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(b), want) {
			t.Errorf("%s body %q missing %q", path, b, want)
		}
	}

	qresp, err := http.Post(base+"/quitquitquit", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("/quitquitquit status %d", qresp.StatusCode)
	}

	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited %d; stderr: %s", code, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after /quitquitquit")
	}
	for _, want := range []string{
		"draining (quitquitquit)", "served          1 queries", "node 0", "node 1",
		"metrics         ->", "request spans   1 spans (1 ok)", "slo             100.00% <= 5s",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"jaws_server_served_total", "jaws_slo_compliance",
		"# HELP jaws_server_requests_total", "# HELP jaws_decisions_total",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics file missing %q", want)
		}
	}

	// The trace carries both sides of the request — the server's
	// wall-clock reqspan and the engine's virtual-clock span — stitched
	// by the same propagated ID.
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var reqSide, engineSide bool
	for _, line := range strings.Split(string(trace), "\n") {
		if strings.Contains(line, `"kind":"reqspan"`) && strings.Contains(line, rid) {
			reqSide = true
		}
		if strings.Contains(line, `"kind":"span"`) && strings.Contains(line, `"req":"`+rid+`"`) {
			engineSide = true
		}
	}
	if !reqSide || !engineSide {
		t.Errorf("trace does not stitch request %s (reqspan=%v, engine span=%v)", rid, reqSide, engineSide)
	}

	// Every structured log line is JSON and the served request's line
	// carries its ID.
	logData, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(logData), `"request_id":"`+rid+`"`) {
		t.Errorf("log file does not mention request %s:\n%s", rid, logData)
	}
}
