// Command jawsbench regenerates the paper's evaluation tables and figures
// (§VI) against the simulated Turbulence node and prints them as text
// tables (with ASCII renderings of the figures) or CSV.
//
// Usage:
//
//	jawsbench -exp all            # every experiment
//	jawsbench -exp fig10          # one experiment: fig8 fig9 fig10
//	                              # fig11 fig12 table1 jobid ablation
//	jawsbench -exp fig12 -quick   # reduced scale for a fast smoke run
//	jawsbench -exp fig11 -format csv > fig11.csv
//
// The mapping from experiment IDs to paper results is documented in
// DESIGN.md §4; measured-versus-paper shapes are recorded in
// EXPERIMENTS.md.
//
// Benchmark trajectory mode (DESIGN.md §11) sidesteps the experiment
// tables and produces or gates a versioned BENCH_*.json artifact:
//
//	jawsbench -bench-out BENCH_pr.json             # measure this tree
//	jawsbench -compare BENCH_main.json             # re-measure and gate
//	jawsbench -compare BENCH_main.json -with BENCH_pr.json   # gate two files
//
// Compare mode exits 3 when throughput drops or p95 response rises by
// more than -regress (default 10%).
//
// The workload scenario matrix (DESIGN.md §17) varies the arrival process
// and query-class mix without touching the scale:
//
//	jawsbench -list-scenarios                      # the registry, one per line
//	jawsbench -scenario poisson-box -bench-out BENCH_poisson-box.json
//	jawsbench -scenario deriv-chain -compare BENCH_deriv-chain.json
//
// Each scenario gates against its own baseline: artifacts record the
// scenario and Compare refuses cross-scenario comparisons.
//
// Tail policies (DESIGN.md §18) decorate the JAWS scheduler for the run;
// the artifact records the spec and gets a -tail name suffix by default:
//
//	jawsbench -scenario fig8 -policy 'gate-aware;adaptive-batch' -bench-out BENCH_fig8-tail.json
//	jawsbench -scenario fig8 -policy 'gate-aware;adaptive-batch' -compare BENCH_fig8-tail.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"jaws/internal/bench"
	"jaws/internal/experiments"
	"jaws/internal/fault"
	"jaws/internal/metrics"
	"jaws/internal/obs"
	"jaws/internal/sched"
	"jaws/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// cli carries the per-invocation output streams and format so run is
// re-entrant under test.
type cli struct {
	stdout, stderr io.Writer
	asCSV          bool
}

// run is the testable body of the command: flags in, exit code out.
// Exit codes: 0 success, 1 runtime error, 2 usage error, 3 benchmark
// regression gate failure.
func run(args []string, stdout, stderr io.Writer) int {
	c := &cli{stdout: stdout, stderr: stderr}
	fs := flag.NewFlagSet("jawsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment to run: all, fig8, fig9, fig10, fig11, fig12, table1, jobid, alpha, ablation")
	quick := fs.Bool("quick", false, "use a reduced scale for a fast smoke run")
	jobs := fs.Int("jobs", 0, "override the number of jobs in the trace")
	seed := fs.Int64("seed", 0, "override the workload/field seed")
	format := fs.String("format", "text", "output format: text or csv")
	traceOut := fs.String("trace-out", "", "write a JSONL decision trace of every experiment engine to this file")
	showMetrics := fs.Bool("metrics", false, "print the aggregated metrics registry after the experiments")
	faultSpec := fs.String("fault-spec", "", "deterministic fault schedule for every experiment engine (see internal/fault)")
	faultSeed := fs.Int64("fault-seed", 1, "seed for the fault injector")
	benchOut := fs.String("bench-out", "", "run the benchmark workload and write a BENCH_*.json artifact to this file (skips the experiment tables)")
	benchName := fs.String("bench-name", "", "artifact name recorded in -bench-out / fresh -compare runs (default: the scenario name, or jaws2 for the baseline)")
	scenario := fs.String("scenario", "", "workload scenario overlay for experiments and benchmarks (see -list-scenarios); empty means the fig8 baseline")
	policy := fs.String("policy", "", "tail-policy spec decorating the JAWS scheduler, e.g. gate-aware;adaptive-batch:min=4,max=32 (DESIGN.md §18); empty means undecorated")
	listScenarios := fs.Bool("list-scenarios", false, "list the workload scenario registry and exit")
	compareWith := fs.String("compare", "", "baseline BENCH_*.json to gate against (re-measures unless -with is given; exits 3 on regression)")
	withFile := fs.String("with", "", "candidate BENCH_*.json for -compare (instead of re-measuring)")
	regress := fs.Float64("regress", 0.10, "regression threshold for -compare: max fractional throughput drop / p95 rise")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address for profiling long runs (e.g. localhost:6060); empty disables")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listScenarios {
		for _, s := range workload.Scenarios() {
			fmt.Fprintf(stdout, "%-12s  %s\n", s.Name, s.Description)
		}
		return 0
	}
	if *scenario != "" {
		if _, ok := workload.LookupScenario(*scenario); !ok {
			fmt.Fprintf(stderr, "jawsbench: unknown scenario %q (have: %s)\n",
				*scenario, strings.Join(workload.ScenarioNames(), ", "))
			return 2
		}
	}
	if *policy != "" {
		if _, err := sched.ParsePolicySpec(*policy); err != nil {
			fmt.Fprintf(stderr, "jawsbench: %v\n", err)
			return 2
		}
	}

	if *pprofAddr != "" {
		pp, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			return c.fail(err)
		}
		defer pp.Close()
		fmt.Fprintf(stdout, "pprof on http://%s/debug/pprof/\n", pp.Addr())
	}

	switch *format {
	case "text":
	case "csv":
		c.asCSV = true
	default:
		fmt.Fprintf(stderr, "jawsbench: unknown format %q\n", *format)
		return 2
	}

	scale := experiments.DefaultScale()
	if *quick {
		scale = experiments.TestScale()
	}
	scale.Scenario = *scenario
	scale.TailPolicy = *policy
	if *jobs > 0 {
		scale.Jobs = *jobs
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	if *faultSpec != "" {
		spec, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			return c.fail(err)
		}
		scale.FaultSpec = spec
		scale.FaultSeed = *faultSeed
	}

	if *benchOut != "" || *compareWith != "" {
		name := *benchName
		if name == "" {
			if *scenario != "" {
				name = *scenario
			} else {
				name = "jaws2"
			}
			if *policy != "" {
				// Tail-policy artifacts live beside the undecorated baselines
				// (BENCH_fig8.json vs BENCH_fig8-tail.json), never overwrite them.
				name += "-tail"
			}
		}
		return c.benchMode(scale, *benchOut, name, *compareWith, *withFile, *regress)
	}

	var tracer *obs.Tracer
	if *traceOut != "" || *showMetrics {
		o := &obs.Obs{}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return c.fail(err)
			}
			tracer = obs.NewTracer(0, f)
			o.Trace = tracer
		}
		if *showMetrics {
			o.Reg = obs.NewRegistry()
		}
		scale.Obs = o
	}

	which := strings.ToLower(*exp)
	sel := func(name string) bool { return which == "all" || which == name }
	start := time.Now()
	any := false

	if sel("fig8") {
		any = true
		c.section("Fig. 8 — distribution of jobs by execution time")
		c.emit(&experiments.Fig8(scale).Table)
	}
	if sel("fig9") {
		any = true
		c.section("Fig. 9 — distribution of queries by time step accessed")
		r := experiments.Fig9(scale)
		c.emit(&r.Table)
		if !c.asCSV {
			series := metrics.Series{Label: "queries per step"}
			for step, c := range r.Counts {
				series.Append(float64(step), float64(c))
			}
			fmt.Fprintln(c.stdout)
			fmt.Fprint(c.stdout, metrics.LineChart([]metrics.Series{series}, 10))
		}
	}
	if sel("fig10") {
		any = true
		c.section("Fig. 10 — query throughput by scheduling algorithm")
		r, err := experiments.Fig10(scale)
		if err != nil {
			return c.fail(err)
		}
		c.emit(&r.Table)
		if !c.asCSV {
			labels := make([]string, len(r.Rows))
			values := make([]float64, len(r.Rows))
			for i, row := range r.Rows {
				labels[i] = row.Algorithm.String()
				values[i] = row.Throughput
			}
			fmt.Fprintln(c.stdout)
			fmt.Fprint(c.stdout, metrics.BarChart(labels, values, 40))
		}
	}
	if sel("fig11") {
		any = true
		c.section("Fig. 11 — sensitivity to workload saturation (a: throughput, b: response time)")
		r, err := experiments.Fig11(scale, nil)
		if err != nil {
			return c.fail(err)
		}
		c.emit(&r.Table)
		if !c.asCSV {
			fmt.Fprintln(c.stdout, "\n(a) throughput vs speed-up:")
			fmt.Fprint(c.stdout, metrics.LineChart(fig11Series(r, false), 10))
			fmt.Fprintln(c.stdout, "\n(b) mean response time vs speed-up:")
			fmt.Fprint(c.stdout, metrics.LineChart(fig11Series(r, true), 10))
		}
	}
	if sel("fig12") {
		any = true
		c.section("Fig. 12 — sensitivity to batch size k")
		r, err := experiments.Fig12(scale, nil)
		if err != nil {
			return c.fail(err)
		}
		c.emit(&r.Table)
		if !c.asCSV {
			s := metrics.Series{Label: "JAWS2 throughput by k"}
			base := metrics.Series{Label: "LifeRaft2 baseline"}
			for _, p := range r.Points {
				s.Append(float64(p.K), p.Throughput)
				base.Append(float64(p.K), r.LifeRaft2Baseline)
			}
			fmt.Fprintln(c.stdout)
			fmt.Fprint(c.stdout, metrics.LineChart([]metrics.Series{s, base}, 10))
		}
	}
	if sel("table1") {
		any = true
		c.section("Table I — cache replacement algorithms")
		r, err := experiments.Table1(scale, true)
		if err != nil {
			return c.fail(err)
		}
		c.emit(&r.Table)
	}
	if sel("jobid") {
		any = true
		c.section("§IV.A — job identification accuracy")
		c.emit(&experiments.JobID(scale).Table)
	}
	if sel("alpha") {
		any = true
		c.section("§V.A — adaptive age bias through changing saturation (burst / lull / burst)")
		r, err := experiments.AlphaDynamics(scale)
		if err != nil {
			return c.fail(err)
		}
		c.emit(&r.Table)
		if !c.asCSV {
			fmt.Fprintln(c.stdout)
			fmt.Fprint(c.stdout, r.Chart)
			fmt.Fprintf(c.stdout, "\nmin α during bursts: %.2f   max α during lull: %.2f\n",
				r.MinAlphaBurst, r.MaxAlphaLull)
		}
	}
	if sel("ablation") {
		any = true
		c.section("Ablations — design choices and §VII extensions")
		r, err := experiments.Ablations(scale)
		if err != nil {
			return c.fail(err)
		}
		c.emit(&r.Table)
	}

	if !any {
		fmt.Fprintf(stderr, "jawsbench: unknown experiment %q\n", *exp)
		fs.Usage()
		return 2
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return c.fail(err)
		}
		if !c.asCSV {
			fmt.Fprintf(c.stdout, "\ntrace: %d events -> %s\n", tracer.Total(), *traceOut)
		}
	}
	if *showMetrics {
		fmt.Fprintln(c.stdout)
		if err := scale.Obs.Reg.WriteText(c.stdout); err != nil {
			return c.fail(err)
		}
	}
	if !c.asCSV {
		fmt.Fprintf(c.stdout, "\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// benchMode handles -bench-out and -compare: measure the tree, write the
// artifact, and/or gate against a baseline. Returns 3 on regression.
func (c *cli) benchMode(scale experiments.Scale, outPath, name, basePath, withPath string, threshold float64) int {
	var cur *bench.Artifact
	if withPath != "" {
		var err error
		cur, err = bench.Load(withPath)
		if err != nil {
			return c.fail(err)
		}
	} else {
		start := time.Now()
		a, err := bench.Run(scale, name)
		if err != nil {
			return c.fail(err)
		}
		cur = a
		fmt.Fprintf(c.stdout, "benchmark: %d queries, %.3f q/s, p95 %.1f ms, cache hit %.0f%% (measured in %v)\n",
			cur.Completed, cur.ThroughputQPS, cur.P95ResponseMS, cur.CacheHitRate*100,
			time.Since(start).Round(time.Millisecond))
	}
	if outPath != "" {
		if err := cur.WriteFile(outPath); err != nil {
			return c.fail(err)
		}
		fmt.Fprintf(c.stdout, "artifact: %s\n", outPath)
	}
	if basePath == "" {
		return 0
	}
	base, err := bench.Load(basePath)
	if err != nil {
		return c.fail(err)
	}
	regs, err := bench.Compare(base, cur, threshold)
	if err != nil {
		return c.fail(err)
	}
	if len(regs) == 0 {
		fmt.Fprintf(c.stdout, "gate: PASS vs %s (threshold %.0f%%)\n", basePath, threshold*100)
		return 0
	}
	fmt.Fprintf(c.stderr, "gate: FAIL vs %s (threshold %.0f%%)\n", basePath, threshold*100)
	for _, r := range regs {
		fmt.Fprintf(c.stderr, "  regression: %s\n", r)
	}
	return 3
}

// fig11Series groups the Fig. 11 grid into per-algorithm series.
func fig11Series(r *experiments.Fig11Result, respTime bool) []metrics.Series {
	order := []experiments.Algorithm{
		experiments.AlgNoShare, experiments.AlgLifeRaft1,
		experiments.AlgLifeRaft2, experiments.AlgJAWS2,
	}
	var out []metrics.Series
	for _, alg := range order {
		s := metrics.Series{Label: alg.String()}
		for _, p := range r.Points {
			if p.Algorithm != alg {
				continue
			}
			y := p.Throughput
			if respTime {
				y = p.MeanRespSec
			}
			s.Append(p.SpeedUp, y)
		}
		out = append(out, s)
	}
	return out
}

func (c *cli) emit(t *metrics.Table) {
	if c.asCSV {
		fmt.Fprint(c.stdout, t.CSV())
		return
	}
	fmt.Fprint(c.stdout, t.String())
}

func (c *cli) section(title string) {
	if c.asCSV {
		fmt.Fprintf(c.stdout, "# %s\n", title)
		return
	}
	fmt.Fprintf(c.stdout, "\n== %s ==\n\n", title)
}

func (c *cli) fail(err error) int {
	fmt.Fprintf(c.stderr, "jawsbench: %v\n", err)
	return 1
}
