// Command jawsbench regenerates the paper's evaluation tables and figures
// (§VI) against the simulated Turbulence node and prints them as text
// tables (with ASCII renderings of the figures) or CSV.
//
// Usage:
//
//	jawsbench -exp all            # every experiment
//	jawsbench -exp fig10          # one experiment: fig8 fig9 fig10
//	                              # fig11 fig12 table1 jobid ablation
//	jawsbench -exp fig12 -quick   # reduced scale for a fast smoke run
//	jawsbench -exp fig11 -format csv > fig11.csv
//
// The mapping from experiment IDs to paper results is documented in
// DESIGN.md §4; measured-versus-paper shapes are recorded in
// EXPERIMENTS.md.
//
// Benchmark trajectory mode (DESIGN.md §11) sidesteps the experiment
// tables and produces or gates a versioned BENCH_*.json artifact:
//
//	jawsbench -bench-out BENCH_pr.json             # measure this tree
//	jawsbench -compare BENCH_main.json             # re-measure and gate
//	jawsbench -compare BENCH_main.json -with BENCH_pr.json   # gate two files
//
// Compare mode exits 3 when throughput drops or p95 response rises by
// more than -regress (default 10%).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"jaws/internal/bench"
	"jaws/internal/experiments"
	"jaws/internal/fault"
	"jaws/internal/metrics"
	"jaws/internal/obs"
)

var asCSV bool

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig8, fig9, fig10, fig11, fig12, table1, jobid, alpha, ablation")
	quick := flag.Bool("quick", false, "use a reduced scale for a fast smoke run")
	jobs := flag.Int("jobs", 0, "override the number of jobs in the trace")
	seed := flag.Int64("seed", 0, "override the workload/field seed")
	format := flag.String("format", "text", "output format: text or csv")
	traceOut := flag.String("trace-out", "", "write a JSONL decision trace of every experiment engine to this file")
	showMetrics := flag.Bool("metrics", false, "print the aggregated metrics registry after the experiments")
	faultSpec := flag.String("fault-spec", "", "deterministic fault schedule for every experiment engine (see internal/fault)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault injector")
	benchOut := flag.String("bench-out", "", "run the benchmark workload and write a BENCH_*.json artifact to this file (skips the experiment tables)")
	benchName := flag.String("bench-name", "jaws2", "artifact name recorded in -bench-out / fresh -compare runs")
	compareWith := flag.String("compare", "", "baseline BENCH_*.json to gate against (re-measures unless -with is given; exits 3 on regression)")
	withFile := flag.String("with", "", "candidate BENCH_*.json for -compare (instead of re-measuring)")
	regress := flag.Float64("regress", 0.10, "regression threshold for -compare: max fractional throughput drop / p95 rise")
	flag.Parse()

	switch *format {
	case "text":
	case "csv":
		asCSV = true
	default:
		fmt.Fprintf(os.Stderr, "jawsbench: unknown format %q\n", *format)
		os.Exit(2)
	}

	scale := experiments.DefaultScale()
	if *quick {
		scale = experiments.TestScale()
	}
	if *jobs > 0 {
		scale.Jobs = *jobs
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	if *faultSpec != "" {
		spec, err := fault.ParseSpec(*faultSpec)
		fail(err)
		scale.FaultSpec = spec
		scale.FaultSeed = *faultSeed
	}

	if *benchOut != "" || *compareWith != "" {
		benchMode(scale, *benchOut, *benchName, *compareWith, *withFile, *regress)
		return
	}

	var tracer *obs.Tracer
	if *traceOut != "" || *showMetrics {
		o := &obs.Obs{}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			fail(err)
			tracer = obs.NewTracer(0, f)
			o.Trace = tracer
		}
		if *showMetrics {
			o.Reg = obs.NewRegistry()
		}
		scale.Obs = o
	}

	which := strings.ToLower(*exp)
	run := func(name string) bool { return which == "all" || which == name }
	start := time.Now()
	any := false

	if run("fig8") {
		any = true
		section("Fig. 8 — distribution of jobs by execution time")
		emit(&experiments.Fig8(scale).Table)
	}
	if run("fig9") {
		any = true
		section("Fig. 9 — distribution of queries by time step accessed")
		r := experiments.Fig9(scale)
		emit(&r.Table)
		if !asCSV {
			series := metrics.Series{Label: "queries per step"}
			for step, c := range r.Counts {
				series.Append(float64(step), float64(c))
			}
			fmt.Println()
			fmt.Print(metrics.LineChart([]metrics.Series{series}, 10))
		}
	}
	if run("fig10") {
		any = true
		section("Fig. 10 — query throughput by scheduling algorithm")
		r, err := experiments.Fig10(scale)
		fail(err)
		emit(&r.Table)
		if !asCSV {
			labels := make([]string, len(r.Rows))
			values := make([]float64, len(r.Rows))
			for i, row := range r.Rows {
				labels[i] = row.Algorithm.String()
				values[i] = row.Throughput
			}
			fmt.Println()
			fmt.Print(metrics.BarChart(labels, values, 40))
		}
	}
	if run("fig11") {
		any = true
		section("Fig. 11 — sensitivity to workload saturation (a: throughput, b: response time)")
		r, err := experiments.Fig11(scale, nil)
		fail(err)
		emit(&r.Table)
		if !asCSV {
			fmt.Println("\n(a) throughput vs speed-up:")
			fmt.Print(metrics.LineChart(fig11Series(r, false), 10))
			fmt.Println("\n(b) mean response time vs speed-up:")
			fmt.Print(metrics.LineChart(fig11Series(r, true), 10))
		}
	}
	if run("fig12") {
		any = true
		section("Fig. 12 — sensitivity to batch size k")
		r, err := experiments.Fig12(scale, nil)
		fail(err)
		emit(&r.Table)
		if !asCSV {
			s := metrics.Series{Label: "JAWS2 throughput by k"}
			base := metrics.Series{Label: "LifeRaft2 baseline"}
			for _, p := range r.Points {
				s.Append(float64(p.K), p.Throughput)
				base.Append(float64(p.K), r.LifeRaft2Baseline)
			}
			fmt.Println()
			fmt.Print(metrics.LineChart([]metrics.Series{s, base}, 10))
		}
	}
	if run("table1") {
		any = true
		section("Table I — cache replacement algorithms")
		r, err := experiments.Table1(scale, true)
		fail(err)
		emit(&r.Table)
	}
	if run("jobid") {
		any = true
		section("§IV.A — job identification accuracy")
		emit(&experiments.JobID(scale).Table)
	}
	if run("alpha") {
		any = true
		section("§V.A — adaptive age bias through changing saturation (burst / lull / burst)")
		r, err := experiments.AlphaDynamics(scale)
		fail(err)
		emit(&r.Table)
		if !asCSV {
			fmt.Println()
			fmt.Print(r.Chart)
			fmt.Printf("\nmin α during bursts: %.2f   max α during lull: %.2f\n",
				r.MinAlphaBurst, r.MaxAlphaLull)
		}
	}
	if run("ablation") {
		any = true
		section("Ablations — design choices and §VII extensions")
		r, err := experiments.Ablations(scale)
		fail(err)
		emit(&r.Table)
	}

	if !any {
		fmt.Fprintf(os.Stderr, "jawsbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if tracer != nil {
		fail(tracer.Close())
		if !asCSV {
			fmt.Printf("\ntrace: %d events -> %s\n", tracer.Total(), *traceOut)
		}
	}
	if *showMetrics {
		fmt.Println()
		fail(scale.Obs.Reg.WriteText(os.Stdout))
	}
	if !asCSV {
		fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
	}
}

// benchMode handles -bench-out and -compare: measure the tree, write the
// artifact, and/or gate against a baseline. Exits 3 on regression.
func benchMode(scale experiments.Scale, outPath, name, basePath, withPath string, threshold float64) {
	var cur *bench.Artifact
	if withPath != "" {
		var err error
		cur, err = bench.Load(withPath)
		fail(err)
	} else {
		start := time.Now()
		a, err := bench.Run(scale, name)
		fail(err)
		cur = a
		fmt.Printf("benchmark: %d queries, %.3f q/s, p95 %.1f ms, cache hit %.0f%% (measured in %v)\n",
			cur.Completed, cur.ThroughputQPS, cur.P95ResponseMS, cur.CacheHitRate*100,
			time.Since(start).Round(time.Millisecond))
	}
	if outPath != "" {
		fail(cur.WriteFile(outPath))
		fmt.Printf("artifact: %s\n", outPath)
	}
	if basePath == "" {
		return
	}
	base, err := bench.Load(basePath)
	fail(err)
	regs, err := bench.Compare(base, cur, threshold)
	fail(err)
	if len(regs) == 0 {
		fmt.Printf("gate: PASS vs %s (threshold %.0f%%)\n", basePath, threshold*100)
		return
	}
	fmt.Fprintf(os.Stderr, "gate: FAIL vs %s (threshold %.0f%%)\n", basePath, threshold*100)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  regression: %s\n", r)
	}
	os.Exit(3)
}

// fig11Series groups the Fig. 11 grid into per-algorithm series.
func fig11Series(r *experiments.Fig11Result, respTime bool) []metrics.Series {
	order := []experiments.Algorithm{
		experiments.AlgNoShare, experiments.AlgLifeRaft1,
		experiments.AlgLifeRaft2, experiments.AlgJAWS2,
	}
	var out []metrics.Series
	for _, alg := range order {
		s := metrics.Series{Label: alg.String()}
		for _, p := range r.Points {
			if p.Algorithm != alg {
				continue
			}
			y := p.Throughput
			if respTime {
				y = p.MeanRespSec
			}
			s.Append(p.SpeedUp, y)
		}
		out = append(out, s)
	}
	return out
}

func emit(t *metrics.Table) {
	if asCSV {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
}

func section(title string) {
	if asCSV {
		fmt.Printf("# %s\n", title)
		return
	}
	fmt.Printf("\n== %s ==\n\n", title)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "jawsbench: %v\n", err)
		os.Exit(1)
	}
}
