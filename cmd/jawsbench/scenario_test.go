package main

import (
	"path/filepath"
	"strings"
	"testing"

	"jaws/internal/bench"
	"jaws/internal/workload"
)

// TestListScenarios pins the registry listing: sorted names, one line
// each, description attached. The golden names are the scenario matrix's
// public contract (CI and the README table are built on them).
func TestListScenarios(t *testing.T) {
	code, out, errb := runCLI(t, "-list-scenarios")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	want := []string{"deriv-chain", "diurnal", "fig8", "flows", "poisson-box"}
	if len(lines) != len(want) {
		t.Fatalf("listing has %d lines, want %d:\n%s", len(lines), len(want), out)
	}
	for i, name := range want {
		fields := strings.Fields(lines[i])
		if len(fields) < 2 || fields[0] != name {
			t.Errorf("line %d = %q, want scenario %q with a description", i, lines[i], name)
		}
	}
	// The listing is the registry: both must agree exactly.
	if got := workload.ScenarioNames(); len(got) != len(want) {
		t.Fatalf("registry has %d scenarios, listing pinned to %d", len(got), len(want))
	}
}

func TestUnknownScenarioIsUsageError(t *testing.T) {
	code, _, errb := runCLI(t, "-scenario", "lunar", "-exp", "fig8", "-quick")
	if code != 2 {
		t.Fatalf("exit %d, want 2 (stderr: %s)", code, errb)
	}
	if !strings.Contains(errb, `unknown scenario "lunar"`) {
		t.Errorf("stderr does not name the bad scenario: %s", errb)
	}
	// The error must advertise the valid names, or the user is stuck.
	if !strings.Contains(errb, "poisson-box") {
		t.Errorf("stderr does not list valid scenarios: %s", errb)
	}
}

// TestScenarioBenchArtifact runs a scenario benchmark at test scale and
// checks the artifact records the scenario, defaults its name to the
// scenario, and self-compares clean.
func TestScenarioBenchArtifact(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "BENCH_poisson-box.json")
	code, _, errb := runCLI(t, "-quick", "-scenario", "poisson-box", "-bench-out", artifact)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	a, err := bench.Load(artifact)
	if err != nil {
		t.Fatal(err)
	}
	if a.Config.Scenario != "poisson-box" {
		t.Errorf("artifact scenario = %q, want poisson-box", a.Config.Scenario)
	}
	if a.Name != "poisson-box" {
		t.Errorf("artifact name = %q, want the scenario name by default", a.Name)
	}
	code, out, errb := runCLI(t, "-quick", "-scenario", "poisson-box", "-compare", artifact, "-with", artifact)
	if code != 0 || !strings.Contains(out, "gate: PASS") {
		t.Fatalf("self-compare: exit %d, out %q, stderr %q", code, out, errb)
	}
}

// TestScenarioMismatchedBaselineRefused: gating a scenario artifact
// against the fig8 baseline must refuse loudly, not silently PASS.
func TestScenarioMismatchedBaselineRefused(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_fig8.json")
	cand := filepath.Join(dir, "BENCH_deriv.json")
	if code, _, errb := runCLI(t, "-quick", "-bench-out", base); code != 0 {
		t.Fatalf("baseline: stderr %s", errb)
	}
	if code, _, errb := runCLI(t, "-quick", "-scenario", "deriv-chain", "-bench-out", cand); code != 0 {
		t.Fatalf("candidate: stderr %s", errb)
	}
	code, out, errb := runCLI(t, "-quick", "-compare", base, "-with", cand)
	if code != 1 {
		t.Fatalf("cross-scenario compare: exit %d, want 1 (out %q)", code, out)
	}
	if !strings.Contains(errb, "different scenarios") {
		t.Errorf("stderr does not explain the scenario mismatch: %s", errb)
	}
	if strings.Contains(out, "PASS") {
		t.Errorf("cross-scenario compare reported PASS:\n%s", out)
	}
}
