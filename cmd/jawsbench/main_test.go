package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jaws/internal/bench"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-no-such-flag"}, "flag provided but not defined"},
		{[]string{"-format", "xml"}, `unknown format "xml"`},
		{[]string{"-quick", "-exp", "fig99"}, `unknown experiment "fig99"`},
	}
	for _, c := range cases {
		code, _, errb := runCLI(t, c.args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2", c.args, code)
		}
		if !strings.Contains(errb, c.want) {
			t.Errorf("%v: stderr %q missing %q", c.args, errb, c.want)
		}
	}
}

func TestQuickExperimentTextAndCSV(t *testing.T) {
	// fig8 analyzes the workload without running an engine — the cheapest
	// experiment that still exercises the table pipeline end to end.
	code, out, errb := runCLI(t, "-quick", "-exp", "fig8")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"== Fig. 8", "completed in"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}

	code, out, errb = runCLI(t, "-quick", "-exp", "fig8", "-format", "csv")
	if code != 0 {
		t.Fatalf("csv: exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "# Fig. 8") {
		t.Errorf("csv output missing section comment:\n%s", out)
	}
	if strings.Contains(out, "completed in") {
		t.Errorf("csv output polluted with timing chatter:\n%s", out)
	}
}

// TestPprofFlag runs the cheapest experiment with the diagnostics
// listener enabled and checks it is advertised on stdout.
func TestPprofFlag(t *testing.T) {
	code, out, errb := runCLI(t, "-quick", "-exp", "fig8", "-pprof", "127.0.0.1:0")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "pprof on http://127.0.0.1:") {
		t.Errorf("output does not advertise the pprof listener:\n%s", out)
	}
}

func TestBadFaultSpec(t *testing.T) {
	code, _, errb := runCLI(t, "-quick", "-fault-spec", "bogus:nope")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb)
	}
	if !strings.Contains(errb, "jawsbench:") {
		t.Errorf("stderr missing error prefix: %s", errb)
	}
}

// TestBenchOutCompareGate covers the benchmark trajectory mode end to end:
// measure an artifact, gate it against itself (PASS, exit 0), then against
// a doctored baseline claiming twice the throughput (FAIL, exit 3).
func TestBenchOutCompareGate(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "BENCH_pr.json")

	code, out, errb := runCLI(t, "-quick", "-bench-out", artifact)
	if code != 0 {
		t.Fatalf("-bench-out: exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "artifact: "+artifact) {
		t.Errorf("no artifact line in output:\n%s", out)
	}
	if _, err := bench.Load(artifact); err != nil {
		t.Fatalf("written artifact does not load: %v", err)
	}

	// Self-comparison with -with skips re-measuring and must pass.
	code, out, errb = runCLI(t, "-quick", "-compare", artifact, "-with", artifact)
	if code != 0 {
		t.Fatalf("self-compare: exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "gate: PASS") {
		t.Errorf("self-compare did not report PASS:\n%s", out)
	}

	// Doctor a baseline that claims double the throughput; the measured
	// artifact then regresses past any reasonable threshold.
	doctored := filepath.Join(dir, "BENCH_main.json")
	raw, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	m["throughput_qps"] = m["throughput_qps"].(float64) * 2
	raw, err = json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(doctored, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	code, _, errb = runCLI(t, "-quick", "-compare", doctored, "-with", artifact)
	if code != 3 {
		t.Fatalf("regression gate: exit %d, want 3 (stderr: %s)", code, errb)
	}
	if !strings.Contains(errb, "gate: FAIL") || !strings.Contains(errb, "regression:") {
		t.Errorf("regression gate stderr incomplete: %s", errb)
	}

	// Missing baseline file is a runtime error, not a gate failure.
	code, _, _ = runCLI(t, "-quick", "-compare", filepath.Join(dir, "missing.json"), "-with", artifact)
	if code != 1 {
		t.Errorf("missing baseline: exit %d, want 1", code)
	}
}
