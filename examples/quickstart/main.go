// Quickstart: open a simulated Turbulence node, generate a small workload
// with the trace generator, run it under full JAWS scheduling, and print
// the headline numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"jaws"
)

func main() {
	// A small store: 8 time steps of 128³ voxels in 32³-voxel atoms.
	sys, err := jaws.Open(jaws.Config{
		Space:      jaws.Space{GridSide: 128, AtomSide: 32},
		Steps:      8,
		Scheduler:  jaws.SchedJAWS2, // two-level + adaptive α + job-aware gating
		Policy:     jaws.PolicySLRU,
		CacheAtoms: 32,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic trace with the production log's shape: mostly ordered
	// jobs (particle-tracking style sequences with data dependencies).
	w := jaws.GenerateWorkload(jaws.WorkloadConfig{
		Seed:  7,
		Steps: 8,
		Jobs:  40,
	})
	fmt.Printf("running %d queries from %d jobs...\n", w.TotalQueries(), len(w.Jobs))

	report, err := sys.Run(w.Jobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("throughput      %.2f queries/second (virtual time)\n", report.ThroughputQPS)
	fmt.Printf("mean response   %.3f s\n", report.MeanResponse.Seconds())
	fmt.Printf("cache hit       %.1f%%\n", report.CacheStats.HitRatio()*100)
	fmt.Printf("gating edges    %d admitted\n", report.GatingAdmitted)
	fmt.Printf("final age bias  α = %.2f\n", report.FinalAlpha)

	// The same workload under the arrival-order baseline, for contrast.
	base, err := jaws.Open(jaws.Config{
		Space:      jaws.Space{GridSide: 128, AtomSide: 32},
		Steps:      8,
		Scheduler:  jaws.SchedNoShare,
		CacheAtoms: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	w2 := jaws.GenerateWorkload(jaws.WorkloadConfig{Seed: 7, Steps: 8, Jobs: 40})
	baseline, err := base.Run(w2.Jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNoShare baseline: %.2f q/s — JAWS speedup %.2fx\n",
		baseline.ThroughputQPS, report.ThroughputQPS/baseline.ThroughputQPS)
}
