// QoS demo: the paper's §VII discussion proposes completion-time
// guarantees proportional to query size — short queries delayed less than
// long queries — while keeping enough elasticity to share I/O. This
// example runs the same mixed workload (one huge cutout query amid many
// small point queries) with and without the QoS wrapper and compares the
// p95 response time of the small queries.
//
//	go run ./examples/qosdemo
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"jaws"
)

func buildWorkload(space jaws.Space) []*jaws.Job {
	rng := rand.New(rand.NewSource(5))
	var jobs []*jaws.Job
	var qid jaws.QueryID = 1

	// One scan-heavy cutout: a whole-octant box sampled densely.
	atomLen := 2 * 3.14159265 / 4
	box, err := jaws.BoxQuery(qid, space, 0,
		jaws.Position{X: 0, Y: 0, Z: 0},
		jaws.Position{X: 2 * atomLen, Y: 2 * atomLen, Z: 2 * atomLen},
		2, jaws.KernelLag4)
	if err != nil {
		log.Fatal(err)
	}
	box.JobID = 1
	box.Arrival = 0
	qid++
	jobs = append(jobs, &jaws.Job{ID: 1, User: 1, Type: jaws.Batched, Queries: []*jaws.Query{box}})

	// Forty short interactive queries trickling in behind it.
	for i := 0; i < 40; i++ {
		pts := make([]jaws.Position, 5)
		for p := range pts {
			pts[p] = jaws.Position{
				X: 3 + rng.Float64(),
				Y: 3 + rng.Float64(),
				Z: 3 + rng.Float64(),
			}
		}
		q := &jaws.Query{
			ID:      qid,
			JobID:   int64(i + 2),
			Step:    1 + i%3,
			Points:  pts,
			Kernel:  jaws.KernelTrilinear,
			Arrival: time.Duration(i) * 20 * time.Millisecond,
		}
		qid++
		jobs = append(jobs, &jaws.Job{
			ID: int64(i + 2), User: i + 2, Type: jaws.Batched,
			Queries: []*jaws.Query{q},
		})
	}
	return jobs
}

func run(stretch float64) (small95 float64, tp float64) {
	space := jaws.Space{GridSide: 128, AtomSide: 32}
	sys, err := jaws.Open(jaws.Config{
		Space:      space,
		Steps:      4,
		Scheduler:  jaws.SchedJAWS1,
		CacheAtoms: 16,
		// A pure throughput maximizer (α fixed at 0) starves the short
		// queries behind the cutout's deep atom queues — the last-mile
		// scenario of §III.C that QoS is meant to bound.
		InitialAlpha: 0,
		AlphaSet:     true,
		AdaptiveOff:  true,
		QoSStretch:   stretch,
		KeepResults:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Run(buildWorkload(space))
	if err != nil {
		log.Fatal(err)
	}
	// p95 response of the small queries only (job IDs ≥ 2).
	var rts []float64
	for _, r := range rep.Results {
		if r.Query.JobID >= 2 {
			rts = append(rts, (r.Completed - r.Query.Arrival).Seconds())
		}
	}
	sort.Float64s(rts)
	return rts[len(rts)*95/100], rep.ThroughputQPS
}

func main() {
	p95Plain, tpPlain := run(0)
	p95QoS, tpQoS := run(6)
	fmt.Println("mixed workload: one dense cutout + 40 short point queries")
	fmt.Printf("%-28s p95(short) = %6.2fs   throughput = %.2f q/s\n", "JAWS (no guarantees)", p95Plain, tpPlain)
	fmt.Printf("%-28s p95(short) = %6.2fs   throughput = %.2f q/s\n", "JAWS + QoS (stretch 6)", p95QoS, tpQoS)
	if p95QoS < p95Plain {
		fmt.Printf("\nQoS cut the short queries' p95 by %.0f%% while keeping %.0f%% of throughput.\n",
			(1-p95QoS/p95Plain)*100, tpQoS/tpPlain*100)
	} else {
		fmt.Println("\nshort queries were already unstarved on this run")
	}
}
