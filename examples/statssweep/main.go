// Stats sweep: a batched job in the paper's taxonomy (§IV) — evaluating
// statistical quantities of the turbulence over parts of the volume, one
// independent query per time step. The queries have no data dependencies,
// so they can execute in any order and JAWS treats them like one-off
// queries; the scheduler is still free to reorder them for I/O sharing.
//
// The example computes the mean kinetic energy and the RMS velocity over
// a probe sphere for every stored time step and prints the series.
//
//	go run ./examples/statssweep
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"jaws"
)

const (
	steps  = 8
	probes = 200 // sample positions per step
)

func main() {
	sys, err := jaws.Open(jaws.Config{
		Space:       jaws.Space{GridSide: 128, AtomSide: 32},
		Steps:       steps,
		Scheduler:   jaws.SchedJAWS1, // batched work: no gating needed
		Policy:      jaws.PolicySLRU,
		CacheAtoms:  48,
		Compute:     true,
		KeepResults: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One batched job: a query per time step sampling the same probe
	// sphere (Monte-Carlo volume integration).
	rng := rand.New(rand.NewSource(3))
	center := jaws.Position{X: 3.5, Y: 2.0, Z: 4.0}
	const radius = 0.6
	points := make([]jaws.Position, probes)
	for i := range points {
		// Uniform in the sphere via rejection.
		for {
			x, y, z := rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*2-1
			if x*x+y*y+z*z <= 1 {
				points[i] = jaws.Position{
					X: center.X + x*radius,
					Y: center.Y + y*radius,
					Z: center.Z + z*radius,
				}
				break
			}
		}
	}

	j := &jaws.Job{ID: 1, User: 1, Type: jaws.Batched}
	for s := 0; s < steps; s++ {
		j.Queries = append(j.Queries, &jaws.Query{
			ID:     jaws.QueryID(s + 1),
			JobID:  1,
			Seq:    s,
			Step:   s,
			Points: append([]jaws.Position(nil), points...),
			Kernel: jaws.KernelLag4,
		})
	}

	rep, err := sys.Run([]*jaws.Job{j})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("step   <KE>        u_rms       p_rms\n")
	fmt.Printf("----   ---------   ---------   ---------\n")
	for _, res := range rep.Results {
		var ke, u2, p2 float64
		for _, pv := range res.Positions {
			v2 := pv.Val[0]*pv.Val[0] + pv.Val[1]*pv.Val[1] + pv.Val[2]*pv.Val[2]
			ke += 0.5 * v2
			u2 += v2 / 3
			p2 += pv.Val[3] * pv.Val[3]
		}
		n := float64(len(res.Positions))
		fmt.Printf("%4d   %9.5f   %9.5f   %9.5f\n",
			res.Query.Step, ke/n, math.Sqrt(u2/n), math.Sqrt(p2/n))
	}
	fmt.Printf("\n%d queries, %.2f virtual seconds, cache hit %.1f%%\n",
		rep.Completed, rep.Elapsed.Seconds(), rep.CacheStats.HitRatio()*100)

	// Sanity: the synthetic field is statistically stationary, so the
	// kinetic energy should not drift wildly across steps.
	var first, last float64
	for _, res := range rep.Results {
		var ke float64
		for _, pv := range res.Positions {
			ke += 0.5 * (pv.Val[0]*pv.Val[0] + pv.Val[1]*pv.Val[1] + pv.Val[2]*pv.Val[2])
		}
		ke /= float64(len(res.Positions))
		if res.Query.Step == 0 {
			first = ke
		}
		if res.Query.Step == steps-1 {
			last = ke
		}
	}
	if first <= 0 || last <= 0 {
		log.Fatal("kinetic energy vanished — field sampling broken")
	}
	fmt.Printf("KE(first)=%.5f KE(last)=%.5f — stationary within a factor of %.1f\n",
		first, last, math.Max(first/last, last/first))
}
