// Particle tracking: the workflow that motivates job-aware scheduling in
// the paper (§IV). Several experiments each scatter a cloud of particles
// and track them through time: at every step they query the database for
// the velocity at each particle's position, integrate the motion outside
// the database (midpoint rule), and submit the next step's query with the
// new positions — the data dependency that makes these jobs *ordered*.
//
// The example runs the stepping loop for real (kernels evaluated, results
// used), then verifies the tracked trajectories against a high-resolution
// reference integration of the analytic field.
//
//	go run ./examples/particletracking
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"jaws"
)

const (
	steps     = 8    // time steps to track through
	clouds    = 6    // concurrent experiments (ordered jobs)
	particles = 40   // particles per cloud
	dt        = 2e-3 // physical time per database step (2 s / 1024)
)

func main() {
	sys, err := jaws.Open(jaws.Config{
		Space:       jaws.Space{GridSide: 128, AtomSide: 32},
		Steps:       steps,
		Scheduler:   jaws.SchedJAWS2,
		Policy:      jaws.PolicyURC,
		CacheAtoms:  48,
		Compute:     true, // evaluate the interpolation kernels for real
		KeepResults: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Scatter the clouds near a shared region of interest — particles with
	// inertia cluster in turbulent structures, so concurrent experiments
	// often track the same neighbourhood (§V.B).
	rng := rand.New(rand.NewSource(11))
	center := jaws.Position{X: 2.0, Y: 3.0, Z: 1.5}
	pos := make([][]jaws.Position, clouds)
	for c := range pos {
		pos[c] = make([]jaws.Position, particles)
		for p := range pos[c] {
			pos[c][p] = jaws.Position{
				X: center.X + rng.NormFloat64()*0.2 + float64(c)*0.05,
				Y: center.Y + rng.NormFloat64()*0.2,
				Z: center.Z + rng.NormFloat64()*0.2,
			}
		}
	}
	// Reference trajectories: integrate the analytic field directly at
	// much smaller time step.
	ref := make([][]jaws.Position, clouds)
	for c := range ref {
		ref[c] = append([]jaws.Position(nil), pos[c]...)
	}
	field := sys.Store().Field()

	var totalVirtual float64
	var queryID jaws.QueryID = 1
	for step := 0; step < steps-1; step++ {
		// One query per cloud at this step: the next query of each
		// ordered experiment. (The stepping loop plays the role of the
		// scientist's driver script.)
		var jobs []*jaws.Job
		for c := 0; c < clouds; c++ {
			q := &jaws.Query{
				ID:     queryID,
				JobID:  int64(c + 1),
				Step:   step,
				Points: append([]jaws.Position(nil), pos[c]...),
				Kernel: jaws.KernelLag6,
			}
			queryID++
			jobs = append(jobs, &jaws.Job{
				ID: int64(c + 1), User: c + 1, Type: jaws.Batched,
				Queries: []*jaws.Query{q},
			})
		}
		rep, err := sys.Run(jobs)
		if err != nil {
			log.Fatal(err)
		}
		totalVirtual += rep.Elapsed.Seconds()

		// Advance each cloud with the returned velocities (midpoint rule:
		// use the step-s velocity for a half step, then re-evaluate — here
		// simple forward Euler with the interpolated velocity, which is
		// what the public service's clients typically do).
		for _, res := range rep.Results {
			c := int(res.Query.JobID - 1)
			for i, pv := range res.Positions {
				pos[c][i] = jaws.Position{
					X: pos[c][i].X + pv.Val[0]*dt,
					Y: pos[c][i].Y + pv.Val[1]*dt,
					Z: pos[c][i].Z + pv.Val[2]*dt,
				}
			}
		}
		// Advance the reference with the analytic field (4 substeps).
		for c := range ref {
			for i := range ref[c] {
				p := ref[c][i]
				for sub := 0; sub < 4; sub++ {
					v := field.Eval(step, p)
					p = jaws.Position{X: p.X + v[0]*dt/4, Y: p.Y + v[1]*dt/4, Z: p.Z + v[2]*dt/4}
				}
				ref[c][i] = p
			}
		}
	}

	// Compare tracked positions with the reference.
	var maxErr, meanErr float64
	n := 0
	for c := range pos {
		for i := range pos[c] {
			dx := pos[c][i].X - ref[c][i].X
			dy := pos[c][i].Y - ref[c][i].Y
			dz := pos[c][i].Z - ref[c][i].Z
			e := math.Sqrt(dx*dx + dy*dy + dz*dz)
			meanErr += e
			if e > maxErr {
				maxErr = e
			}
			n++
		}
	}
	meanErr /= float64(n)

	fmt.Printf("tracked %d particles in %d clouds through %d steps\n", clouds*particles, clouds, steps-1)
	fmt.Printf("virtual time    %.2f s\n", totalVirtual)
	fmt.Printf("cache hit       %.1f%%\n", sys.CacheStats().HitRatio()*100)
	fmt.Printf("trajectory err  mean %.2e, max %.2e (vs analytic reference)\n", meanErr, maxErr)
	if meanErr > 0.05 {
		log.Fatalf("tracking diverged from reference: mean error %.3f", meanErr)
	}
	fmt.Println("tracking agrees with the analytic reference ✓")
}
