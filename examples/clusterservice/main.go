// Cluster service: the deployment shape of Fig. 7 — data partitioned
// spatially across several nodes, each running its own JAWS instance, with
// a public web-service front end like the one the Turbulence database
// exposes to scientists.
//
// The example does two things:
//
//  1. runs a generated batch workload across a simulated cluster and
//     prints the per-node and aggregate reports;
//  2. stands up the production serving layer (internal/server — the same
//     admission-controlled front end cmd/jawsd runs) over a pool of
//     session replicas, issues a demo request against it with the shared
//     wire types, and prints the interpolated velocities.
//
// go run ./examples/clusterservice
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"jaws"
	"jaws/internal/obs"
	"jaws/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the example: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clusterservice", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jobs      = fs.Int("jobs", 30, "jobs in the generated batch workload")
		nodes     = fs.Int("nodes", 4, "cluster nodes (batch run) and session replicas (service)")
		grid      = fs.Int("grid", 128, "grid side in voxels")
		steps     = fs.Int("steps", 8, "stored time steps")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "clusterservice: %v\n", err)
		return 1
	}

	// Diagnostics are served on their own listener, never the public mux:
	// the public service exposes /query, /metrics, /healthz, /varz only.
	if *pprofAddr != "" {
		pp, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			return fail(err)
		}
		defer pp.Close()
		fmt.Fprintf(stdout, "pprof on http://%s/debug/pprof/\n", pp.Addr())
	}

	space := jaws.Space{GridSide: *grid, AtomSide: 32}
	nodeCfg := jaws.Config{
		Space:      space,
		Steps:      *steps,
		Scheduler:  jaws.SchedJAWS1,
		Policy:     jaws.PolicyLRUK,
		CacheAtoms: 32,
	}

	// --- 1. batch workload across the cluster --------------------------
	w := jaws.GenerateWorkload(jaws.WorkloadConfig{
		Seed:  21,
		Steps: *steps,
		Jobs:  *jobs,
		Space: space,
	})
	rep, err := jaws.RunCluster(jaws.ClusterConfig{Nodes: *nodes, Node: nodeCfg}, w.Jobs)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "cluster run: %d logical queries, makespan %.1f virtual s, %.2f q/s aggregate\n",
		rep.Completed, rep.MaxElapsed, rep.AggregateThroughput)
	for _, nr := range rep.PerNode {
		fmt.Fprintf(stdout, "  node %d: %4d queries, %.2f q/s, cache hit %.1f%%\n",
			nr.Node, nr.Report.Completed, nr.Report.ThroughputQPS,
			nr.Report.CacheStats.HitRatio()*100)
	}

	// --- 2. interactive web-service front end --------------------------
	// The serving layer owns admission control, backpressure, and result
	// demultiplexing; the example only opens the session replicas and
	// wires them in. This is exactly what cmd/jawsd deploys.
	reg := jaws.NewRegistry()
	backends := make([]server.Backend, *nodes)
	for i := range backends {
		sess, err := jaws.OpenSession(jaws.Config{
			Space:      space,
			Steps:      *steps,
			Scheduler:  jaws.SchedJAWS1,
			CacheAtoms: 32,
			Compute:    true,
			Obs:        &jaws.Obs{Reg: reg},
		})
		if err != nil {
			return fail(err)
		}
		backends[i] = sess
	}
	srv, err := server.New(server.Config{
		Backends:   backends,
		Reg:        reg,
		QueueBound: 32,
		Workers:    4,
		Steps:      *steps,
	})
	if err != nil {
		return fail(err)
	}
	defer srv.Shutdown()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	fmt.Fprintf(stdout, "\nweb service listening on http://%s (%d replicas)\n", ln.Addr(), *nodes)

	// Demo client request, as a scientist's script would issue it — the
	// wire types are the server's own, so client and service cannot drift.
	body, err := json.Marshal(server.QueryRequest{
		Step:   *steps / 2,
		Kernel: "lag8",
		Points: []server.Point{
			{X: 1.0, Y: 2.0, Z: 3.0},
			{X: 1.1, Y: 2.0, Z: 3.0},
			{X: 1.2, Y: 2.0, Z: 3.0},
		},
	})
	if err != nil {
		return fail(err)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(fmt.Sprintf("http://%s/query", ln.Addr()), "application/json", bytes.NewReader(body))
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return fail(fmt.Errorf("/query answered %d: %s", resp.StatusCode, msg))
	}
	var out server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "demo query served in %.3f virtual s:\n", out.VirtualSeconds)
	for _, v := range out.Values {
		fmt.Fprintf(stdout, "  u(%.2f, %.2f, %.2f) = (%+.4f, %+.4f, %+.4f), p = %+.4f\n",
			v.Position.X, v.Position.Y, v.Position.Z,
			v.Velocity[0], v.Velocity[1], v.Velocity[2], v.Pressure)
	}

	// Scrape the metrics endpoint, as a monitoring agent would: engine and
	// serving-layer counters share one registry.
	mresp, err := client.Get(fmt.Sprintf("http://%s/metrics", ln.Addr()))
	if err != nil {
		return fail(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "\n/metrics sample:\n")
	for i, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if i >= 8 {
			fmt.Fprintln(stdout, "  ...")
			break
		}
		fmt.Fprintf(stdout, "  %s\n", line)
	}
	return 0
}
