// Cluster service: the deployment shape of Fig. 7 — data partitioned
// spatially across several nodes, each running its own JAWS instance, with
// a public web-service front end like the one the Turbulence database
// exposes to scientists.
//
// The example does two things:
//
//  1. runs a generated batch workload across a 4-node simulated cluster
//     and prints the per-node and aggregate reports;
//  2. starts an HTTP front end with a /query endpoint (JSON in/out),
//     issues a demo request against it, and prints the interpolated
//     velocities.
//
// go run ./examples/clusterservice
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"sync"
	"sync/atomic"
	"time"

	"jaws"
)

func main() {
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	flag.Parse()

	// Diagnostics are served on their own listener, never the public mux:
	// the public service exposes /query and /metrics only.
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			log.Println(http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	nodeCfg := jaws.Config{
		Space:      jaws.Space{GridSide: 128, AtomSide: 32},
		Steps:      8,
		Scheduler:  jaws.SchedJAWS1,
		Policy:     jaws.PolicyLRUK,
		CacheAtoms: 32,
	}

	// --- 1. batch workload across the cluster --------------------------
	w := jaws.GenerateWorkload(jaws.WorkloadConfig{
		Seed:  21,
		Steps: 8,
		Jobs:  30,
		Space: jaws.Space{GridSide: 128, AtomSide: 32},
	})
	rep, err := jaws.RunCluster(jaws.ClusterConfig{Nodes: 4, Node: nodeCfg}, w.Jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster run: %d logical queries, makespan %.1f virtual s, %.2f q/s aggregate\n",
		rep.Completed, rep.MaxElapsed, rep.AggregateThroughput)
	for _, nr := range rep.PerNode {
		fmt.Printf("  node %d: %4d queries, %.2f q/s, cache hit %.1f%%\n",
			nr.Node, nr.Report.Completed, nr.Report.ThroughputQPS,
			nr.Report.CacheStats.HitRatio()*100)
	}

	// --- 2. interactive web-service front end --------------------------
	// A single long-lived session serves every request: queries from
	// concurrent clients enter the same JAWS workload queues (where their
	// I/O can be shared), and a demultiplexer routes streamed results
	// back to the waiting handler.
	reg := jaws.NewRegistry()
	sess, err := jaws.OpenSession(jaws.Config{
		Space:      nodeCfg.Space,
		Steps:      nodeCfg.Steps,
		Scheduler:  jaws.SchedJAWS1,
		CacheAtoms: 32,
		Compute:    true,
		Obs:        &jaws.Obs{Reg: reg},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	var demux sync.Map // jaws.QueryID → chan *jaws.QueryResult
	go func() {
		for r := range sess.Results() {
			if ch, ok := demux.Load(r.Query.ID); ok {
				ch.(chan *jaws.QueryResult) <- r
			}
		}
	}()
	var nextID int64

	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(rw http.ResponseWriter, req *http.Request) {
		var in struct {
			Step   int             `json:"step"`
			Kernel string          `json:"kernel"`
			Points []jaws.Position `json:"points"`
		}
		if err := json.NewDecoder(req.Body).Decode(&in); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		kernel := jaws.KernelLag4
		if in.Kernel == "lag8" {
			kernel = jaws.KernelLag8
		}
		id := jaws.QueryID(atomic.AddInt64(&nextID, 1))
		q := &jaws.Query{ID: id, JobID: int64(id), Step: in.Step, Points: in.Points, Kernel: kernel}
		j := &jaws.Job{ID: int64(id), User: 1, Type: jaws.Batched, Queries: []*jaws.Query{q}}

		ch := make(chan *jaws.QueryResult, 1)
		demux.Store(id, ch)
		defer demux.Delete(id)
		if err := sess.Submit(j); err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		var res *jaws.QueryResult
		select {
		case res = <-ch:
		case <-time.After(30 * time.Second):
			http.Error(rw, "query timed out", http.StatusGatewayTimeout)
			return
		}

		type pv struct {
			Position jaws.Position `json:"position"`
			Velocity [3]float64    `json:"velocity"`
			Pressure float64       `json:"pressure"`
		}
		var out struct {
			VirtualSeconds float64 `json:"virtual_seconds"`
			Values         []pv    `json:"values"`
		}
		out.VirtualSeconds = (res.Completed - res.Query.Arrival).Seconds()
		for _, p := range res.Positions {
			out.Values = append(out.Values, pv{
				Position: jaws.Position{X: p.Pos.X, Y: p.Pos.Y, Z: p.Pos.Z},
				Velocity: [3]float64{p.Val[0], p.Val[1], p.Val[2]},
				Pressure: p.Val[3],
			})
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(out)
	})
	// Prometheus-style scrape endpoint over the session's registry: the
	// same counters a production deployment would alert on (decision rate,
	// cache hit ratio, disk traffic) for free from the obs layer.
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, req *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.WriteText(rw); err != nil {
			log.Printf("metrics: %v", err)
		}
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("\nweb service listening on http://%s\n", ln.Addr())

	// Demo client request, as a scientist's script would issue it.
	body, _ := json.Marshal(map[string]any{
		"step":   3,
		"kernel": "lag8",
		"points": []jaws.Position{
			{X: 1.0, Y: 2.0, Z: 3.0},
			{X: 1.1, Y: 2.0, Z: 3.0},
			{X: 1.2, Y: 2.0, Z: 3.0},
		},
	})
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(fmt.Sprintf("http://%s/query", ln.Addr()), "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		VirtualSeconds float64 `json:"virtual_seconds"`
		Values         []struct {
			Position jaws.Position `json:"position"`
			Velocity [3]float64    `json:"velocity"`
			Pressure float64       `json:"pressure"`
		} `json:"values"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("demo query served in %.3f virtual s:\n", out.VirtualSeconds)
	for _, v := range out.Values {
		fmt.Printf("  u(%.2f, %.2f, %.2f) = (%+.4f, %+.4f, %+.4f), p = %+.4f\n",
			v.Position.X, v.Position.Y, v.Position.Z,
			v.Velocity[0], v.Velocity[1], v.Velocity[2], v.Pressure)
	}

	// Scrape the metrics endpoint, as a monitoring agent would.
	mresp, err := client.Get(fmt.Sprintf("http://%s/metrics", ln.Addr()))
	if err != nil {
		log.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/metrics sample:\n")
	for i, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if i >= 8 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", line)
	}
}
