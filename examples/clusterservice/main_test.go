package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExampleSmoke builds and runs the whole example at a reduced size:
// batch cluster run, serving layer, demo query, metrics scrape.
func TestExampleSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-jobs", "4", "-nodes", "2", "-grid", "64", "-steps", "4"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	for _, want := range []string{
		"cluster run:",
		"node 0:",
		"node 1:",
		"web service listening on http://",
		"demo query served in",
		"p = ",
		"/metrics sample:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestExampleFlagError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
}
