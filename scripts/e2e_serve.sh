#!/usr/bin/env bash
# End-to-end serving check: boot a real jawsd with a deliberately small
# admission queue, drive a seeded jawsload burst at it (sheds expected,
# 5xx and transport errors fatal), then drain via /quitquitquit and
# verify the daemon exits cleanly with work served.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
workdir=$(mktemp -d)
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

$GO build -o "$workdir/jawsd" ./cmd/jawsd
$GO build -o "$workdir/jawsload" ./cmd/jawsload

"$workdir/jawsd" -addr 127.0.0.1:0 -nodes 2 -queue 8 -workers 2 \
    -grid 64 -atom 32 -steps 4 -cache 16 -allow-quit \
    -metrics-out "$workdir/metrics.prom" >"$workdir/jawsd.log" 2>&1 &
daemon_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#^jawsd listening on http://\([^ ]*\).*#\1#p' "$workdir/jawsd.log")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "jawsd died during startup:"; cat "$workdir/jawsd.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "jawsd never printed its address"; cat "$workdir/jawsd.log"; exit 1; }
echo "jawsd up on $addr"

# 64 closed-loop clients against a queue bound of 8: shedding is expected
# and fine; any 5xx or transport error fails the run (jawsload exits 1).
"$workdir/jawsload" -addr "$addr" -requests 128 -clients 64 \
    -steps 4 -points 4 -seed 7 -min-served 1 | tee "$workdir/jawsload.out"

grep -q ', 0 5xx' "$workdir/jawsload.out" || { echo "jawsload saw 5xx responses"; exit 1; }

curl -fsS -X POST "http://$addr/quitquitquit" >/dev/null
wait "$daemon_pid" || { echo "jawsd exited non-zero:"; cat "$workdir/jawsd.log"; exit 1; }

grep -q 'draining (quitquitquit)' "$workdir/jawsd.log"
served=$(sed -n 's/^served *\([0-9]*\) queries.*/\1/p' "$workdir/jawsd.log")
[ "${served:-0}" -gt 0 ] || { echo "daemon served nothing:"; cat "$workdir/jawsd.log"; exit 1; }
grep -q 'jaws_server_served_total' "$workdir/metrics.prom"

echo "e2e-serve ok: $served queries served, daemon drained cleanly"
