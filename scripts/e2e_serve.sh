#!/usr/bin/env bash
# End-to-end serving check: boot a real jawsd with a deliberately small
# admission queue and the full observability surface enabled (request
# tracing, structured logs, SLO tracking, pprof), drive a seeded jawsload
# burst at it (sheds expected, 5xx and transport errors fatal), then
# drain via /quitquitquit and verify the daemon exits cleanly — and that
# the emitted artifacts stitch together: the X-Jaws-Request-Id captured
# at the client resolves through jawsreport -req to a record carrying
# both the wall-clock and the virtual-clock side of the same request,
# and through jawsreport -why to the request's scheduler wait chain
# (the run executes with the decision flight recorder on).
#
# Artifacts (trace, log, metrics, latency records, report) land in
# $E2E_ARTIFACTS when set (CI uploads that directory), else in a temp dir.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
workdir=$(mktemp -d)
artifacts=${E2E_ARTIFACTS:-$workdir}
mkdir -p "$artifacts"
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

$GO build -o "$workdir/jawsd" ./cmd/jawsd
$GO build -o "$workdir/jawsload" ./cmd/jawsload
$GO build -o "$workdir/jawsreport" ./cmd/jawsreport

"$workdir/jawsd" -addr 127.0.0.1:0 -nodes 2 -queue 8 -workers 2 \
    -grid 64 -atom 32 -steps 4 -cache 16 -allow-quit -flight \
    -metrics-out "$artifacts/metrics.prom" \
    -trace-out "$artifacts/trace.jsonl" \
    -log-out "$artifacts/jawsd.jsonl" \
    -pprof 127.0.0.1:0 -req-seed 7 \
    -slo-target 5s -slo-objective 0.9 >"$workdir/jawsd.log" 2>&1 &
daemon_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#^jawsd listening on http://\([^ ]*\).*#\1#p' "$workdir/jawsd.log")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "jawsd died during startup:"; cat "$workdir/jawsd.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "jawsd never printed its address"; cat "$workdir/jawsd.log"; exit 1; }
echo "jawsd up on $addr"

# The diagnostics listener advertises itself on stdout; probe its index.
pprof_addr=""
for _ in $(seq 1 50); do
    pprof_addr=$(sed -n 's#^pprof on http://\([^/]*\)/.*#\1#p' "$workdir/jawsd.log")
    [ -n "$pprof_addr" ] && break
    sleep 0.1
done
[ -n "$pprof_addr" ] || { echo "jawsd never advertised pprof"; cat "$workdir/jawsd.log"; exit 1; }
curl -fsS "http://$pprof_addr/debug/pprof/" >/dev/null
echo "pprof up on $pprof_addr"

# One traced request by hand: capture the request ID the server assigned
# so the trace artifacts can be resolved back to this exact request.
rid=$(curl -fsS -D - -o /dev/null -X POST "http://$addr/query" \
    -H 'Content-Type: application/json' \
    -d '{"step":1,"kernel":"lag4","points":[{"x":1,"y":2,"z":3}]}' \
    | tr -d '\r' | sed -n 's/^X-Jaws-Request-Id: //Ip')
[ -n "$rid" ] || { echo "no X-Jaws-Request-Id on the /query response"; exit 1; }
echo "traced request $rid"

# 64 closed-loop clients against a queue bound of 8: shedding is expected
# and fine; any 5xx or transport error fails the run (jawsload exits 1).
"$workdir/jawsload" -addr "$addr" -requests 128 -clients 64 \
    -steps 4 -points 4 -seed 7 -min-served 1 \
    -latency-out "$artifacts/latency.jsonl" | tee "$workdir/jawsload.out"

grep -q ', 0 5xx' "$workdir/jawsload.out" || { echo "jawsload saw 5xx responses"; exit 1; }

curl -fsS -X POST "http://$addr/quitquitquit" >/dev/null
wait "$daemon_pid" || { echo "jawsd exited non-zero:"; cat "$workdir/jawsd.log"; exit 1; }

grep -q 'draining (quitquitquit)' "$workdir/jawsd.log"
served=$(sed -n 's/^served *\([0-9]*\) queries.*/\1/p' "$workdir/jawsd.log")
[ "${served:-0}" -gt 0 ] || { echo "daemon served nothing:"; cat "$workdir/jawsd.log"; exit 1; }
grep -q 'jaws_server_served_total' "$artifacts/metrics.prom"
grep -q '# HELP jaws_server_requests_total' "$artifacts/metrics.prom"
grep -q 'jaws_slo_compliance' "$artifacts/metrics.prom"
grep -q "\"request_id\":\"$rid\"" "$artifacts/jawsd.jsonl"

# The flight recorder must have mirrored decision records into the
# trace; keep them as their own reviewable artifact.
grep '"kind":"decision_record"' "$artifacts/trace.jsonl" >"$artifacts/decisions.jsonl" \
    || { echo "no decision records in the trace (flight recorder silent?)"; exit 1; }
echo "flight recorder captured $(wc -l <"$artifacts/decisions.jsonl") decision records"
grep -q 'jaws_sched_decisions_total' "$artifacts/metrics.prom"
grep -q '# HELP jaws_sched_passover_lost_race_total' "$artifacts/metrics.prom"
grep -q 'jaws_trace_dropped_total' "$artifacts/metrics.prom"

# The captured ID must resolve to a stitched record: the server's
# wall-clock span and the engine span it propagated the ID into.
"$workdir/jawsreport" -req "$rid" "$artifacts/trace.jsonl" | tee "$workdir/stitched.out"
grep -q "request $rid" "$workdir/stitched.out"
grep -q 'wall' "$workdir/stitched.out"
grep -q 'engine  query' "$workdir/stitched.out" || { echo "request $rid did not stitch to an engine span"; exit 1; }

# ...and through -why to its reconstructed scheduler wait chain, with
# every round accounted to a cause.
"$workdir/jawsreport" -why "$rid" "$artifacts/trace.jsonl" | tee "$workdir/why.out"
grep -q 'why query' "$workdir/why.out"
grep -q 'decision rounds in \[dispatch, done)' "$workdir/why.out"
grep -q 'conservation: causes sum to gated+queued' "$workdir/why.out" \
    || { echo "request $rid wait chain incomplete"; exit 1; }

# Full lifecycle report over the whole run as a reviewable artifact.
# The audit exit code gates the run: a truncated or drop-lossy trace
# fails here even though the report itself renders.
"$workdir/jawsreport" "$artifacts/trace.jsonl" >"$artifacts/report.txt"
grep -q 'request invariant: all' "$artifacts/report.txt"
grep -q '== wait causes' "$artifacts/report.txt"
cp "$workdir/jawsd.log" "$artifacts/jawsd.stdout.log"

echo "e2e-serve ok: $served queries served, request $rid stitched and attributed, daemon drained cleanly"
