package jaws

import (
	"testing"
	"time"
)

// smallConfig keeps façade tests fast: a tiny store and workload.
func smallConfig(s Scheduler) Config {
	return Config{
		Space:      Space{GridSide: 128, AtomSide: 32},
		Steps:      4,
		SampleSide: 4,
		Scheduler:  s,
		BatchSize:  5,
		CacheAtoms: 16,
		Cost:       CostModel{Tb: 40 * time.Millisecond, Tm: 20 * time.Microsecond},
	}
}

func smallWorkload(seed int64, jobs int) *Workload {
	return GenerateWorkload(WorkloadConfig{
		Seed:           seed,
		Space:          Space{GridSide: 128, AtomSide: 32},
		Steps:          4,
		Jobs:           jobs,
		PointsPerQuery: 20,
		MeanJobGap:     200 * time.Millisecond,
		ThinkTime:      10 * time.Millisecond,
		QueryScale:     20,
	})
}

func TestOpenDefaults(t *testing.T) {
	sys, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Store().Steps() != 31 {
		t.Fatalf("default steps = %d, want 31", sys.Store().Steps())
	}
}

func TestOpenRejectsBadPolicy(t *testing.T) {
	cfg := smallConfig(SchedJAWS2)
	cfg.Policy = CachePolicy(99)
	if _, err := Open(cfg); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestEndToEndAllSchedulers(t *testing.T) {
	w := smallWorkload(5, 30)
	total := w.TotalQueries()
	for _, s := range []Scheduler{SchedNoShare, SchedLifeRaft1, SchedLifeRaft2, SchedJAWS1, SchedJAWS2} {
		sys, err := Open(smallConfig(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		rep, err := sys.Run(smallWorkload(5, 30).Jobs)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if rep.Completed != total {
			t.Fatalf("%v completed %d/%d", s, rep.Completed, total)
		}
		if rep.ThroughputQPS <= 0 || rep.MeanResponse <= 0 {
			t.Fatalf("%v produced empty metrics: %+v", s, rep)
		}
	}
}

func TestJAWS2BeatsNoShareOnContendedTrace(t *testing.T) {
	// The headline claim at small scale: shared scheduling outperforms
	// independent evaluation under contention.
	run := func(s Scheduler) float64 {
		sys, err := Open(smallConfig(s))
		if err != nil {
			t.Fatal(err)
		}
		w := smallWorkload(7, 60)
		rep, err := sys.Run(w.Jobs)
		if err != nil {
			t.Fatal(err)
		}
		return rep.ThroughputQPS
	}
	noshare := run(SchedNoShare)
	jaws2 := run(SchedJAWS2)
	if jaws2 <= noshare {
		t.Fatalf("JAWS2 (%.3f qps) did not beat NoShare (%.3f qps)", jaws2, noshare)
	}
}

func TestAllCachePolicies(t *testing.T) {
	for _, p := range []CachePolicy{PolicyLRUK, PolicySLRU, PolicyURC, PolicyLRU, PolicyFIFO, PolicyTwoQ} {
		cfg := smallConfig(SchedJAWS1)
		cfg.Policy = p
		sys, err := Open(cfg)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		w := smallWorkload(3, 20)
		if _, err := sys.Run(w.Jobs); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		st := sys.CacheStats()
		if st.Hits+st.Misses == 0 {
			t.Fatalf("%v: cache never touched", p)
		}
	}
}

func TestJobIdentificationFacade(t *testing.T) {
	w := smallWorkload(11, 50)
	assignment := IdentifyJobs(w.Records)
	if len(assignment) != len(w.Records) {
		t.Fatalf("assignment covers %d of %d records", len(assignment), len(w.Records))
	}
	if acc := JobIdentificationAccuracy(w.Records, assignment); acc < 0.85 {
		t.Fatalf("accuracy %.3f too low", acc)
	}
}

func TestRunCluster(t *testing.T) {
	cfg := ClusterConfig{Nodes: 4, Node: smallConfig(SchedJAWS1)}
	w := smallWorkload(13, 20)
	rep, err := RunCluster(cfg, w.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != w.TotalQueries() {
		t.Fatalf("cluster completed %d/%d", rep.Completed, w.TotalQueries())
	}
	if rep.AggregateThroughput <= 0 {
		t.Fatal("no aggregate throughput")
	}
}

func TestComputeEndToEnd(t *testing.T) {
	cfg := smallConfig(SchedJAWS2)
	cfg.Compute = true
	cfg.KeepResults = true
	sys, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := smallWorkload(17, 5)
	rep, err := sys.Run(w.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != rep.Completed {
		t.Fatalf("results %d != completed %d", len(rep.Results), rep.Completed)
	}
	for _, r := range rep.Results {
		if len(r.Positions) == 0 {
			t.Fatal("query completed without computed positions")
		}
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []Scheduler{SchedNoShare, SchedLifeRaft1, SchedLifeRaft2, SchedJAWS1, SchedJAWS2, Scheduler(42)} {
		if s.String() == "" {
			t.Fatal("empty scheduler name")
		}
	}
	for _, p := range []CachePolicy{PolicyLRUK, PolicySLRU, PolicyURC, PolicyLRU, PolicyFIFO, PolicyTwoQ, CachePolicy(42)} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
}

func TestDefaultEvaluationCost(t *testing.T) {
	c := DefaultEvaluationCost()
	if c.Tb <= 0 || c.Tm <= 0 {
		t.Fatalf("bad default cost %+v", c)
	}
}

func TestExtensionsEndToEnd(t *testing.T) {
	// The §VII extensions — prefetch, declared jobs, QoS — must all run a
	// workload to completion through the public API.
	cfg := smallConfig(SchedJAWS2)
	cfg.Prefetch = true
	cfg.DeclareJobs = true
	cfg.QoSStretch = 8
	sys, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := smallWorkload(23, 25)
	rep, err := sys.Run(w.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != w.TotalQueries() {
		t.Fatalf("completed %d/%d", rep.Completed, w.TotalQueries())
	}
	if rep.Scheduler != "JAWS+QoS" {
		t.Fatalf("scheduler = %q, want the QoS wrapper", rep.Scheduler)
	}
	if rep.PrefetchedAtoms == 0 {
		t.Fatal("prefetch idle on an ordered-job workload")
	}
}

func TestOpenSession(t *testing.T) {
	sess, err := OpenSession(smallConfig(SchedJAWS2))
	if err != nil {
		t.Fatal(err)
	}
	w := smallWorkload(29, 6)
	for _, j := range w.Jobs {
		if err := sess.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	timeout := time.After(20 * time.Second)
	for got < w.TotalQueries() {
		select {
		case r := <-sess.Results():
			if r == nil {
				t.Fatal("stream closed early")
			}
			got++
		case <-timeout:
			t.Fatalf("timed out with %d/%d results", got, w.TotalQueries())
		}
	}
	rep := sess.Close()
	if rep.Completed != w.TotalQueries() {
		t.Fatalf("completed %d/%d", rep.Completed, w.TotalQueries())
	}
	if sess.Err() != nil {
		t.Fatal(sess.Err())
	}
}
