GO ?= go

.PHONY: check check-oracle check-prop check-bench check-bench-scenarios check-tail-scenarios build vet test race race-obs fuzz-smoke bench-sched bench bench-compare e2e-serve lint

## check: everything CI should gate on.
check: vet build test race fuzz-smoke

## check-oracle: the scheduler correctness oracle — every decision of the
## real schedulers diffed against the reference models over randomized
## workloads and fault schedules (see DESIGN.md §12).
check-oracle:
	$(GO) run ./cmd/jawscheck

## check-bench: measure this tree and gate it against the committed
## BENCH_main.json baseline (exits 3 past the regression threshold).
check-bench:
	$(GO) run ./cmd/jawsbench -compare BENCH_main.json

## check-bench-scenarios: the scenario-matrix regression gates — each
## scenario's measurement against its own committed baseline (a
## cross-scenario comparison is refused by the artifact schema). CI runs
## these as a matrix job; use SCENARIO=<name> to gate a single one.
SCENARIO ?=
check-bench-scenarios:
ifeq ($(SCENARIO),)
	$(GO) run ./cmd/jawsbench -scenario poisson-box -compare BENCH_poisson-box.json
	$(GO) run ./cmd/jawsbench -scenario deriv-chain -compare BENCH_deriv-chain.json
	$(GO) run ./cmd/jawsbench -scenario diurnal -compare BENCH_diurnal.json
else
	$(GO) run ./cmd/jawsbench -scenario $(SCENARIO) -compare BENCH_$(SCENARIO).json
endif

## check-tail-scenarios: the tail-policy regression gates — each
## scenario's policy stack (the one its committed BENCH_<scenario>-tail
## baseline was measured with) re-measured and gated against that
## baseline, per-cause p99 wait included. CI runs these as the tail-gate
## matrix job (see DESIGN.md §18).
check-tail-scenarios:
	$(GO) run ./cmd/jawsbench -scenario fig8 -policy 'gate-aware:boost=1.2,discount=0.8' -compare BENCH_fig8-tail.json
	$(GO) run ./cmd/jawsbench -scenario poisson-box -policy 'gate-aware' -compare BENCH_poisson-box-tail.json
	$(GO) run ./cmd/jawsbench -scenario deriv-chain -policy 'cross-step:span=2;adaptive-batch' -compare BENCH_deriv-chain-tail.json

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: static analysis beyond vet — staticcheck and govulncheck. The
## target never installs anything: tools that are not on PATH are
## skipped with a notice (CI installs both; see .github/workflows/ci.yml).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo staticcheck ./...; staticcheck ./...; \
	else echo "lint: staticcheck not on PATH, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo govulncheck ./...; govulncheck ./...; \
	else echo "lint: govulncheck not on PATH, skipping"; fi

test:
	$(GO) test ./...

## race: the full suite under the race detector (slow).
race:
	$(GO) test -race ./...

## race-obs: race-check the packages with real concurrency — the obs
## layer (atomic registry, locked tracer), the engine's compute pool,
## the scheduler structures, the serving layer, and their concurrent
## users.
race-obs:
	$(GO) test -race ./internal/obs/ ./internal/sched/ ./internal/engine/ ./internal/cluster/ ./internal/server/ ./cmd/jawsd/ ./cmd/jawsload/ ./cmd/jawsreport/

## check-prop: the quickcheck-style differential property tests — random
## op logs replayed through the production schedulers and the reference
## models, decisions and utilities compared bit for bit.
check-prop:
	$(GO) test -run 'TestRandomOpLogs|TestUtilityMismatchCaught' -count 1 ./internal/oracle/

## e2e-serve: boot a real jawsd on a free port, drive a seeded jawsload
## burst that overwhelms the small queue (some 429s expected, zero 5xx
## tolerated), then drain via /quitquitquit. CI runs this as its own job.
e2e-serve:
	./scripts/e2e_serve.sh

## fuzz-smoke: a short burst on every fuzz target (Go runs one -fuzz
## pattern per invocation, hence the repetition).
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzRoundTrip -fuzztime 10s ./internal/morton/
	$(GO) test -run xxx -fuzz FuzzCubeRange -fuzztime 10s ./internal/morton/
	$(GO) test -run xxx -fuzz FuzzLoad -fuzztime 10s ./internal/workload/
	$(GO) test -run xxx -fuzz FuzzGenerate -fuzztime 10s ./internal/workload/
	$(GO) test -run xxx -fuzz FuzzParseSpec -fuzztime 10s ./internal/fault/
	$(GO) test -run xxx -fuzz FuzzParsePolicySpec -fuzztime 10s ./internal/sched/

## bench-sched: the scheduling benches used to bound instrumentation
## overhead (compare against a pre-change baseline).
bench-sched:
	$(GO) test -run xxx -bench BenchmarkFig10Schedulers -benchtime 2x .

## bench: measure this tree into a versioned BENCH_*.json artifact
## (byte-deterministic for a fixed config; see DESIGN.md §11).
bench:
	$(GO) run ./cmd/jawsbench -bench-out BENCH_pr.json

## bench-compare: gate this tree against a committed baseline artifact
## (exits 3 past the regression threshold). Usage:
##   make bench-compare BASELINE=BENCH_main.json
BASELINE ?= BENCH_main.json
bench-compare:
	$(GO) run ./cmd/jawsbench -compare $(BASELINE)
