GO ?= go

.PHONY: check build vet test race race-obs bench-sched

## check: everything CI should gate on.
check: vet build test race-obs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the full suite under the race detector (slow).
race:
	$(GO) test -race ./...

## race-obs: race-check the packages with real concurrency — the obs
## layer (atomic registry, locked tracer) and its concurrent users.
race-obs:
	$(GO) test -race ./internal/obs/ ./internal/engine/ ./internal/cluster/

## bench-sched: the scheduling benches used to bound instrumentation
## overhead (compare against a pre-change baseline).
bench-sched:
	$(GO) test -run xxx -bench BenchmarkFig10Schedulers -benchtime 2x .
