module jaws

go 1.22
