package engine

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"jaws/internal/cache"
	"jaws/internal/field"
	"jaws/internal/job"
	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/sched"
)

// obsWorkload builds a gated two-job workload that exercises every
// instrumented path: cache hits/misses/evictions, gating edges and
// blocks, adaptation runs, and multi-atom JAWS decisions.
func obsWorkload(t *testing.T) (*Engine, *obs.Obs, []*job.Job) {
	t.Helper()
	s := testStore(t)
	c := cache.New(4, cache.NewLRU()) // tiny: forces evictions
	o := &obs.Obs{
		Trace: obs.NewTracer(1<<16, nil),
		Reg:   obs.NewRegistry(),
	}
	sc := sched.NewJAWS(sched.JAWSConfig{
		Cost: testCost, BatchSize: 4, InitialAlpha: 0.5, Adaptive: true,
		Resident: c.Contains,
	})
	e, err := New(Config{
		Store: s, Cache: c, Sched: sc, Cost: testCost,
		JobAware: true, RunLength: 2, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	think := 50 * time.Millisecond
	// Jobs 1 and 2 walk the same atoms (gating alignment + cache hits);
	// job 3 walks a different atom row, overflowing the 4-atom cache so
	// evictions fire too.
	j3 := &job.Job{ID: 3, User: 3, Type: job.Ordered, ThinkTime: think}
	for i := 0; i < 4; i++ {
		j3.Queries = append(j3.Queries, &query.Query{
			ID: query.ID(3000 + int64(i)), JobID: 3, Seq: i, Step: i,
			Points: pointsInAtom(s, uint32(i), 2, 2, 50),
			Kernel: field.KernelNone,
		})
	}
	j3.Queries[0].Arrival = 4 * time.Second
	jobs := []*job.Job{
		orderedJob(s, 1, []int{0, 1, 2, 3}, []uint32{0, 1, 2, 3}, think, 0),
		orderedJob(s, 2, []int{0, 1, 2, 3}, []uint32{0, 1, 2, 3}, think, 2*time.Second),
		j3,
	}
	return e, o, jobs
}

func TestObsEventsAndCountersConsistent(t *testing.T) {
	e, o, jobs := obsWorkload(t)
	rep, err := e.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	kinds := make(map[obs.Kind]int)
	for _, ev := range o.Trace.Events() {
		kinds[ev.Kind]++
	}
	for _, want := range []obs.Kind{
		obs.KindDecision, obs.KindCacheHit, obs.KindCacheMiss,
		obs.KindCacheEvict, obs.KindDiskRead, obs.KindAlpha,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %s events emitted (mix: %v)", want, kinds)
		}
	}
	if kinds[obs.KindEdgeAdmit]+kinds[obs.KindEdgeReject] == 0 {
		t.Errorf("no gating-edge events (mix: %v)", kinds)
	}

	// The registry's counters must agree with the engine report's own
	// accounting — they observed the same run.
	reg := o.Reg
	if got := reg.Counter("jaws_cache_hits_total").Value(); got != rep.CacheStats.Hits {
		t.Errorf("cache hits: counter %d, report %d", got, rep.CacheStats.Hits)
	}
	if got := reg.Counter("jaws_cache_misses_total").Value(); got != rep.CacheStats.Misses {
		t.Errorf("cache misses: counter %d, report %d", got, rep.CacheStats.Misses)
	}
	if got := reg.Counter("jaws_cache_evictions_total").Value(); got != rep.CacheStats.Evictions {
		t.Errorf("cache evictions: counter %d, report %d", got, rep.CacheStats.Evictions)
	}
	if got := reg.Counter("jaws_disk_reads_total").Value(); got != rep.DiskStats.Reads {
		t.Errorf("disk reads: counter %d, report %d", got, rep.DiskStats.Reads)
	}
	if got := reg.Counter("jaws_queries_completed_total").Value(); got != int64(rep.Completed) {
		t.Errorf("completed: counter %d, report %d", got, rep.Completed)
	}
	if got := int(reg.Counter("jaws_gate_edges_admitted_total").Value()); got != rep.GatingAdmitted {
		t.Errorf("edges admitted: counter %d, report %d", got, rep.GatingAdmitted)
	}
	if got := int(reg.Counter("jaws_gate_edges_rejected_total").Value()); got != rep.GatingRejected {
		t.Errorf("edges rejected: counter %d, report %d", got, rep.GatingRejected)
	}
	if got := reg.Counter("jaws_runs_total").Value(); got != int64(len(rep.Runs)) {
		t.Errorf("runs: counter %d, report %d", got, len(rep.Runs))
	}
	if got := reg.Histogram("jaws_response_seconds").Count(); got != int64(rep.Completed) {
		t.Errorf("response histogram count %d, completed %d", got, rep.Completed)
	}
	// Every trace event carries a non-decreasing-capable virtual stamp
	// within [0, Elapsed].
	for _, ev := range o.Trace.Events() {
		if ev.T < 0 || ev.T > rep.Elapsed {
			t.Fatalf("event %s stamped %v outside run [0, %v]", ev.Kind, ev.T, rep.Elapsed)
		}
	}
}

func TestObsDecisionEventsMatchScheduler(t *testing.T) {
	e, o, jobs := obsWorkload(t)
	if _, err := e.Run(jobs); err != nil {
		t.Fatal(err)
	}
	decisions := 0
	for _, ev := range o.Trace.Events() {
		if ev.Kind != obs.KindDecision {
			continue
		}
		decisions++
		if ev.Sched != "JAWS" {
			t.Fatalf("decision credited to %q", ev.Sched)
		}
		if ev.K < 1 {
			t.Fatalf("decision with batch size %d", ev.K)
		}
		if ev.Alpha < 0 || ev.Alpha > 1 {
			t.Fatalf("decision with α=%g", ev.Alpha)
		}
	}
	if decisions == 0 {
		t.Fatal("no decision events")
	}
	// Scheduled atoms (decision events) must cover the batch counter.
	if got := o.Reg.Counter("jaws_batch_atoms_total").Value(); got != int64(decisions) {
		t.Fatalf("batch atoms counter %d, decision events %d", got, decisions)
	}
}

func TestObsJSONLSinkRoundTrips(t *testing.T) {
	s := testStore(t)
	c := cache.New(8, cache.NewLRU())
	var buf bytes.Buffer
	o := &obs.Obs{Trace: obs.NewTracer(16, &buf)} // ring smaller than event count
	e, err := New(Config{
		Store: s, Cache: c, Sched: sched.NewNoShare(), Cost: testCost, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run([]*job.Job{batchedJob(s, 1, []time.Duration{0, 0, 0}, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := o.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if int64(len(lines)) != o.Trace.Total() {
		t.Fatalf("sink has %d lines, tracer emitted %d", len(lines), o.Trace.Total())
	}
	for i, line := range lines {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if ev.Kind == "" {
			t.Fatalf("line %d has no kind", i+1)
		}
	}
}

// A second engine over the same store/cache without Obs must clear the
// hooks the first engine installed — no events may leak into the old
// tracer.
func TestObsHooksClearedAcrossEngines(t *testing.T) {
	s := testStore(t)
	c := cache.New(8, cache.NewLRU())
	o := &obs.Obs{Trace: obs.NewTracer(0, nil), Reg: obs.NewRegistry()}
	sc := sched.NewJAWS(sched.JAWSConfig{Cost: testCost, Resident: c.Contains})
	e1, err := New(Config{Store: s, Cache: c, Sched: sc, Cost: testCost, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Run([]*job.Job{batchedJob(s, 1, []time.Duration{0}, 0)}); err != nil {
		t.Fatal(err)
	}
	before := o.Trace.Total()
	if before == 0 {
		t.Fatal("instrumented run emitted nothing")
	}

	e2, err := New(Config{Store: s, Cache: c, Sched: sc, Cost: testCost})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run([]*job.Job{batchedJob(s, 2, []time.Duration{0}, 1)}); err != nil {
		t.Fatal(err)
	}
	if after := o.Trace.Total(); after != before {
		t.Fatalf("uninstrumented run leaked %d events into the old tracer", after-before)
	}
}

func TestObsGateWaitMeasured(t *testing.T) {
	e, o, jobs := obsWorkload(t)
	if _, err := e.Run(jobs); err != nil {
		t.Fatal(err)
	}
	blocks, admits := 0, 0
	for _, ev := range o.Trace.Events() {
		switch ev.Kind {
		case obs.KindGateBlock:
			blocks++
		case obs.KindGateAdmit:
			admits++
			if ev.Wait <= 0 {
				t.Fatalf("gate_admit with non-positive wait %v", ev.Wait)
			}
		}
	}
	if blocks != admits {
		t.Fatalf("%d blocks but %d admits — a blocked query never dispatched", blocks, admits)
	}
	if blocked := o.Reg.Counter("jaws_gate_blocked_total").Value(); blocked != int64(blocks) {
		t.Fatalf("blocked counter %d, block events %d", blocked, blocks)
	}
}
