// Package engine executes workloads against the simulated Turbulence
// node: it owns the virtual clock, drives arrivals from the future-event
// list, feeds pre-processed sub-queries to the configured scheduler,
// charges I/O to the disk model through the cache, performs the actual
// interpolation kernels (optionally in parallel), and collects the
// throughput/response-time measurements the experiments report.
//
// The engine realizes the JAWS architecture of Fig. 7: Query Pre-Processor
// → Workload Manager (the scheduler's atom queues) → batched execution
// against the database, with results combined and returned per query.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"jaws/internal/cache"
	"jaws/internal/disk"
	"jaws/internal/fault"
	"jaws/internal/field"
	"jaws/internal/geom"
	"jaws/internal/job"
	"jaws/internal/jobgraph"
	"jaws/internal/metrics"
	"jaws/internal/morton"
	"jaws/internal/obs"
	"jaws/internal/prefetch"
	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/store"
	"jaws/internal/vclock"
)

// Config assembles an engine.
type Config struct {
	Store *store.Store
	Cache *cache.Cache
	Sched sched.Scheduler
	// Cost is the T_b/T_m model shared with the scheduler. If zero, T_b
	// defaults to a cold 8 MB read estimate and T_m to 20 µs.
	Cost sched.CostModel
	// JobAware enables gated execution (§IV): ordered jobs are registered
	// in the precedence graph and queries are admitted to the workload
	// queues only in the QUEUE state, so data-sharing queries from
	// different jobs enter together.
	JobAware bool
	// RunLength is r, the number of consecutive queries per adaptation
	// run (§V.A). Defaults to 32.
	RunLength int
	// Compute evaluates the interpolation kernels for real; otherwise
	// only virtual time is charged (benchmarks of scheduling behaviour).
	Compute bool
	// Parallelism is the number of worker goroutines for kernel
	// evaluation when Compute is set; 0 means GOMAXPROCS.
	Parallelism int
	// KeepResults retains per-position kernel outputs in the report
	// (memory-heavy; examples use it, experiments do not).
	KeepResults bool
	// StallLimit aborts the run if the engine makes no progress for this
	// many consecutive iterations (a gated-execution deadlock would
	// otherwise hang); 0 means 1<<20.
	StallLimit int
	// DecisionOverhead is the fixed cost of submitting one scheduling
	// decision to the database (query setup, plan compilation, round
	// trip). Batching k atoms amortizes it — one of the two mechanisms
	// (with sequential Morton-order I/O) that make the two-level batch
	// profitable. Zero means 50 ms; negative disables.
	DecisionOverhead time.Duration
	// FlushPerDecision empties the cache after every scheduling decision.
	// The NoShare baseline sets this: each query is evaluated
	// independently with no I/O shared across queries (§VI), matching the
	// paper's buffer-flushing methodology. Within one decision (one
	// query), atoms are still read only once.
	FlushPerDecision bool
	// DeclareUpfront registers every ordered job in the precedence graph
	// before execution begins, modelling the §VII direction of
	// encapsulating jobs inside the database: the scheduler gains a priori
	// knowledge of all queries in every job, so the greedy gating merge
	// sees the whole workload at once instead of aligning jobs
	// incrementally as they arrive. Only meaningful with JobAware.
	DeclareUpfront bool
	// Prefetch enables the §VII trajectory extrapolation: when an ordered
	// job's query completes, the predicted atoms of its next query are
	// fetched into the cache during the job's think-time window (the disk
	// is otherwise idle for that job while the scientist computes the next
	// positions), masking the page faults of the successor. Prefetch I/O
	// is bounded by the think time and charged to the disk statistics but
	// not to the virtual clock.
	Prefetch bool
	// Obs enables decision tracing and metrics. Nil (the default) runs the
	// engine uninstrumented: every instrumentation point reduces to one nil
	// check (see the obs package's zero-overhead contract).
	Obs *obs.Obs
	// EngineID labels this engine's decision flight records so a shared
	// trace can be split back into per-node timelines (cluster layers give
	// each node a distinct ID). Ignored unless Obs carries a recorder.
	EngineID int
	// Fault enables deterministic fault injection: transient/permanent
	// disk errors, latency spikes, cache corruption, and a scheduled node
	// crash (see internal/fault). Nil (the default) disables injection for
	// the cost of one nil check per hook, mirroring Obs.
	Fault *fault.Injector
	// MaxRetries bounds how many times a read failing with a transient
	// error is retried before the run aborts; 0 means 4.
	MaxRetries int
	// RetryBackoff is the base of the capped exponential backoff charged
	// to the virtual clock between read attempts; 0 means 10 ms. The
	// backoff doubles per retry up to RetryBackoffMax.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the per-retry backoff; 0 means 500 ms.
	RetryBackoffMax time.Duration
	// OnDecision, when non-nil, receives every scheduling decision the
	// engine executes: the virtual time of the NextBatch call and the
	// batches it returned, before any time is charged. The differential
	// oracle (internal/oracle) exports the engine-level decision trace
	// through this hook. The callback must not retain or mutate the slice.
	OnDecision func(now time.Duration, batches []sched.Batch)
}

// QueryResult is a completed query with its measured response time and
// (optionally) its computed values in sub-query order. For temporal-
// derivative queries (DerivSteps ≥ 2) the values are ∂/∂t estimates at
// the anchor step: the per-step kernel outputs of the chain are combined
// with the forward finite-difference stencil (query.DerivWeights) over
// query.StepDT.
type QueryResult struct {
	Query     *query.Query
	Completed time.Duration
	Positions []PointSample
}

// PointSample is one evaluated position: the kernel output (or, for
// derivative queries, the finite-differenced ∂/∂t estimate) at Pos.
type PointSample struct {
	Pos geom3
	Val [field.Components]float64
}

// geom3 mirrors geom.Position without importing it into the public result
// shape twice; kept simple for encoding.
type geom3 struct{ X, Y, Z float64 }

// RunStats is one adaptation run's measured performance.
type RunStats struct {
	EndedAt     time.Duration
	MeanRespSec float64
	Throughput  float64
	Alpha       float64
}

// Report summarizes one engine run.
type Report struct {
	Scheduler     string
	Completed     int
	Elapsed       time.Duration
	ThroughputQPS float64
	MeanResponse  time.Duration
	P50Response   time.Duration
	P95Response   time.Duration
	CacheStats    cache.Stats
	DiskStats     disk.Stats
	Runs          []RunStats
	FinalAlpha    float64
	// GatingAdmitted/Rejected report job-graph activity (job-aware runs).
	GatingAdmitted int
	GatingRejected int
	// PrefetchedAtoms counts atoms loaded by trajectory prefetching.
	PrefetchedAtoms int64
	// Retries counts atom reads re-attempted after transient disk errors.
	Retries int64
	// Faults tallies the injected faults of the run (zero without a
	// configured injector).
	Faults fault.Counts
	// Results is populated only with Config.KeepResults.
	Results []*QueryResult
}

type queryState struct {
	q         *query.Query
	remaining int
	result    *QueryResult
	// chains accumulates a derivative query's per-step kernel outputs,
	// keyed by primary atom code with one slot per chain index. The
	// per-step spatial partitions are congruent (atom codes depend only on
	// position), so every code sees the same positions in the same Morton
	// order at every step — the invariant the finite-differencing relies
	// on. Nil for plain queries and for runs without KeepResults.
	chains map[morton.Code][][]PointSample
}

// noteChainSamples stashes one per-(step,atom) sub-query's outputs into
// the derivative accumulator.
func (st *queryState) noteChainSamples(sq *query.SubQuery, out []PointSample) {
	if st.chains == nil {
		st.chains = make(map[morton.Code][][]PointSample)
	}
	slots := st.chains[sq.Atom.Code]
	if slots == nil {
		slots = make([][]PointSample, st.q.ChainLen())
		st.chains[sq.Atom.Code] = slots
	}
	slots[sq.Atom.Step-st.q.Step] = out
}

// Engine executes one workload; create a fresh engine per run.
type Engine struct {
	cfg    Config
	clock  vclock.Clock
	events vclock.EventList

	graph       *jobgraph.Graph
	registered  map[int64]bool
	arrivedRefs map[jobgraph.Ref]bool
	pool        *computePool

	arrived  []*query.Query
	states   map[query.ID]*queryState
	jobsByID map[int64]*job.Job

	predictor  *prefetch.Predictor
	prefetched int64

	inst *instruments

	// gateBuf is the reusable BlockedBy scratch of the gate-aware tail
	// policy's state source (the decision path is single-threaded).
	gateBuf []jobgraph.Ref

	completedRT []time.Duration
	runCount    int
	runStart    time.Duration
	runRT       metrics.Summary

	report Report
}

// New validates the configuration and builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Store == nil || cfg.Cache == nil || cfg.Sched == nil {
		return nil, errors.New("engine: store, cache and scheduler are all required")
	}
	if cfg.RunLength <= 0 {
		cfg.RunLength = 32
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.StallLimit <= 0 {
		cfg.StallLimit = 1 << 20
	}
	if cfg.Cost.Tb <= 0 {
		cfg.Cost.Tb = estimateTb()
	}
	if cfg.Cost.Tm <= 0 {
		cfg.Cost.Tm = 20 * time.Microsecond
	}
	if cfg.DecisionOverhead == 0 {
		cfg.DecisionOverhead = 50 * time.Millisecond
	}
	if cfg.DecisionOverhead < 0 {
		cfg.DecisionOverhead = 0
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 4
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 10 * time.Millisecond
	}
	if cfg.RetryBackoffMax <= 0 {
		cfg.RetryBackoffMax = 500 * time.Millisecond
	}
	e := &Engine{
		cfg:        cfg,
		states:     make(map[query.ID]*queryState),
		jobsByID:   make(map[int64]*job.Job),
		registered: make(map[int64]bool),
	}
	if cfg.Prefetch {
		e.predictor = prefetch.New(cfg.Store.Space())
	}
	if cfg.JobAware {
		e.arrivedRefs = make(map[jobgraph.Ref]bool)
		// Jobs register their per-query atom footprints directly, so the
		// graph's inverted atom index derives the sharing relation; no
		// pairwise set-intersection callback is needed.
		e.graph = jobgraph.New(nil)
	}
	// Let the scheduler memoize φ(i)-dependent utilities: the cache's
	// mutation counter proves residency unchanged between decisions.
	if rv, ok := cfg.Sched.(sched.ResidencyVersioned); ok {
		rv.SetResidencyVersion(cfg.Cache.Version)
	}
	// Gate-aware tail policies consume per-query gate states: install this
	// engine's job-graph view, or clear a stale source left on a reused
	// scheduler (the facade shares schedulers across engines).
	if ga, ok := cfg.Sched.(sched.GateAware); ok {
		if cfg.JobAware {
			ga.SetGateSource(e.gateState)
		} else {
			ga.SetGateSource(nil)
		}
	}
	// Install (or, uninstrumented, clear) the observability hooks. The
	// facade reuses store/cache/scheduler across engines, so this must run
	// unconditionally to drop hooks a previous instrumented run left.
	e.inst = newInstruments(cfg.Obs)
	e.inst.install(e)
	// Likewise the fault hooks: install them for this run's injector, or
	// clear whatever an earlier faulty run left on the shared store/cache.
	if cfg.Fault != nil {
		cfg.Fault.BindClock(e.clock.Now)
		cfg.Store.SetFault(cfg.Fault.DiskRead)
		cfg.Cache.SetIntegrity(func(store.AtomID) bool { return !cfg.Fault.CorruptHit() })
	} else {
		cfg.Store.SetFault(nil)
		cfg.Cache.SetIntegrity(nil)
	}
	return e, nil
}

// advance charges d to the virtual clock and attributes it to the
// in-flight spans under the given cause. Uninstrumented runs pay one nil
// check on top of the clock bump.
func (e *Engine) advance(d time.Duration, c spanCause) {
	e.clock.Advance(d)
	e.inst.noteAdvance(c, d)
}

// advanceTo fast-forwards the clock to at (never backwards), attributing
// the jump as queueing wait.
func (e *Engine) advanceTo(at time.Duration) {
	d := at - e.clock.Now()
	if d <= 0 {
		return
	}
	e.clock.AdvanceTo(at)
	e.inst.noteAdvance(causeWait, d)
}

// estimateTb returns the cold-read cost of one nominal atom on the default
// disk array — the empirically derived T_b of Eq. 1.
func estimateTb() time.Duration {
	a := disk.NewArray(4, disk.DefaultParams())
	return a.Read(0, field.NominalAtomBytes)
}

// Run executes the jobs to completion and returns the report. Batched
// jobs' queries carry absolute arrival times; ordered jobs' queries beyond
// the first arrive ThinkTime after their predecessor completes.
func (e *Engine) Run(jobs []*job.Job) (*Report, error) {
	total := 0
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		e.jobsByID[j.ID] = j
		total += len(j.Queries)
		switch j.Type {
		case job.Batched:
			for _, q := range j.Queries {
				e.events.Push(q.Arrival, q)
			}
		case job.Ordered:
			e.events.Push(j.Queries[0].Arrival, j.Queries[0])
		default:
			return nil, fmt.Errorf("engine: job %d has unknown type %v", j.ID, j.Type)
		}
	}

	if e.cfg.JobAware && e.cfg.DeclareUpfront {
		e.declareAll(jobs)
	}

	defer e.closePool()

	crashAt, willCrash := e.cfg.Fault.CrashAt()
	stall := 0
	for e.report.Completed < total {
		// 0. Honour a scheduled node crash: the node dies the first time
		// virtual time passes the injector's chosen instant. Everything in
		// flight is lost; the cluster layer recovers via failover.
		if willCrash && e.clock.Now() >= crashAt {
			e.inst.noteCrash(e.clock.Now(), e.cfg.Fault.Node())
			return nil, &fault.NodeCrashError{Node: e.cfg.Fault.Node(), At: crashAt}
		}

		progressed := false

		// 1. Deliver due arrivals.
		for ev := e.events.Peek(); ev != nil && ev.At <= e.clock.Now(); ev = e.events.Peek() {
			e.events.Pop()
			q := ev.Payload.(*query.Query)
			e.onArrival(q)
			progressed = true
		}

		// 2. Admit arrived queries whose gating constraints allow it.
		if e.admitArrived() {
			progressed = true
		}

		// 3. Execute the next batch, or fast-forward to the next event.
		if e.cfg.Sched.Pending() > 0 {
			decidedAt := e.clock.Now()
			batches := e.cfg.Sched.NextBatch(decidedAt)
			if len(batches) > 0 {
				if e.cfg.OnDecision != nil {
					e.cfg.OnDecision(decidedAt, batches)
				}
				if err := e.execute(batches); err != nil {
					return nil, err
				}
				progressed = true
			}
		} else if ev := e.events.Peek(); ev != nil {
			// Never fast-forward past the crash instant, or a long idle
			// gap would let the node outlive its own death.
			at := ev.At
			if willCrash && crashAt < at {
				at = crashAt
			}
			e.advanceTo(at)
			progressed = true
		}

		if progressed {
			stall = 0
			continue
		}
		stall++
		if stall > e.cfg.StallLimit {
			e.inst.noteStallAbort(e.clock.Now())
			return nil, fmt.Errorf("engine: stalled with %d/%d queries complete (gated-execution deadlock?)",
				e.report.Completed, total)
		}
	}

	e.finishReport()
	return &e.report, nil
}

// declareAll registers every ordered job in the precedence graph before
// the first arrival, in arrival order of their first queries so the
// greedy merge remains deterministic.
func (e *Engine) declareAll(jobs []*job.Job) {
	ordered := make([]*job.Job, 0, len(jobs))
	for _, j := range jobs {
		if j.Type == job.Ordered {
			ordered = append(ordered, j)
		}
	}
	sort.SliceStable(ordered, func(i, k int) bool {
		return ordered[i].Queries[0].Arrival < ordered[k].Queries[0].Arrival
	})
	for _, j := range ordered {
		if e.registered[j.ID] {
			continue
		}
		e.registered[j.ID] = true
		if err := e.graph.AddJobWithAtoms(j.ID, e.jobAtoms(j)); err != nil {
			panic(fmt.Sprintf("engine: declared-job registration: %v", err))
		}
	}
}

// jobAtoms computes the per-query atom lists of an ordered job, each in
// clustered-key order, for the graph's inverted index.
func (e *Engine) jobAtoms(j *job.Job) [][]store.AtomID {
	space := e.cfg.Store.Space()
	atoms := make([][]store.AtomID, len(j.Queries))
	for s, jq := range j.Queries {
		set := query.Atoms(jq, space)
		lst := make([]store.AtomID, 0, len(set))
		for id := range set {
			lst = append(lst, id)
		}
		sort.Slice(lst, func(a, b int) bool { return lst[a].Key() < lst[b].Key() })
		atoms[s] = lst
	}
	return atoms
}

// onArrival records a query's arrival: job-aware runs register ordered
// jobs in the precedence graph on first contact.
func (e *Engine) onArrival(q *query.Query) {
	j := e.jobsByID[q.JobID]
	if e.cfg.JobAware && j != nil && j.Type == job.Ordered && !e.registered[j.ID] {
		e.registered[j.ID] = true
		// Registration cannot fail here: the job was validated and is not
		// yet registered.
		if err := e.graph.AddJobWithAtoms(j.ID, e.jobAtoms(j)); err != nil {
			panic(fmt.Sprintf("engine: graph registration: %v", err))
		}
	}
	if e.cfg.JobAware && j != nil && j.Type == job.Ordered {
		e.arrivedRefs[jobgraph.Ref{Job: q.JobID, Seq: q.Seq}] = true
	}
	e.arrived = append(e.arrived, q)
}

// admitArrived moves arrived queries whose constraints are satisfied into
// the scheduler's workload queues. Reports whether anything was admitted.
func (e *Engine) admitArrived() bool {
	if len(e.arrived) == 0 {
		return false
	}
	kept := e.arrived[:0]
	admitted := false
	for _, q := range e.arrived {
		if !e.canDispatch(q) {
			e.inst.noteBlocked(q, e.clock.Now())
			kept = append(kept, q)
			continue
		}
		e.dispatch(q)
		admitted = true
	}
	e.arrived = kept
	return admitted
}

// canDispatch applies gating: job-aware runs admit ordered-job queries
// only in the QUEUE state.
func (e *Engine) canDispatch(q *query.Query) bool {
	if !e.cfg.JobAware {
		return true
	}
	j := e.jobsByID[q.JobID]
	if j == nil || j.Type != job.Ordered {
		return true
	}
	ref := jobgraph.Ref{Job: q.JobID, Seq: q.Seq}
	if e.graph.State(ref) != jobgraph.Queue {
		return false
	}
	// Atomic group admission: hold a gated query until every live
	// co-scheduled partner has also arrived (think time elapsed), so the
	// whole group's sub-queries land in the workload queues in the same
	// admission pass and their shared atoms are read in one batch.
	ok := true
	e.graph.EachPartner(ref, func(p jobgraph.Ref) bool {
		if e.graph.State(p) != jobgraph.Done && !e.arrivedRefs[p] {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// gateState is the gate-aware tail policy's per-query state source: the
// job-graph condition of one enqueued query. A query whose ordered job
// holds a WAIT successor reads GateReleasing — completing it shortens the
// successor's gated-behind wait, so its atoms deserve promotion. A query
// jobgraph.BlockedBy still holds back reads GateBlocked (with atomic
// group admission this is a transient window, but the policy and its
// oracle model handle it; random op logs exercise it heavily). Everything
// else — batched jobs, lone queries, chain tails — reads GateFree. Called
// on the decision path: no allocations (reused BlockedBy scratch).
func (e *Engine) gateState(qid query.ID) sched.GateState {
	st := e.states[qid]
	if st == nil {
		return sched.GateFree
	}
	q := st.q
	j := e.jobsByID[q.JobID]
	if j == nil || j.Type != job.Ordered {
		return sched.GateFree
	}
	if q.Seq+1 < len(j.Queries) &&
		e.graph.State(jobgraph.Ref{Job: q.JobID, Seq: q.Seq + 1}) == jobgraph.Wait {
		return sched.GateReleasing
	}
	e.gateBuf = e.graph.BlockedBy(jobgraph.Ref{Job: q.JobID, Seq: q.Seq}, e.gateBuf[:0])
	if len(e.gateBuf) > 0 {
		return sched.GateBlocked
	}
	return sched.GateFree
}

// dispatch pre-processes the query and enqueues its sub-queries.
func (e *Engine) dispatch(q *query.Query) {
	sqs, err := query.PreProcess(q, e.cfg.Store.Space())
	if err != nil {
		panic(fmt.Sprintf("engine: pre-process of validated query failed: %v", err))
	}
	st := &queryState{q: q, remaining: len(sqs)}
	if e.cfg.KeepResults {
		st.result = &QueryResult{Query: q}
	}
	e.states[q.ID] = st
	now := e.clock.Now()
	e.inst.noteDispatched(q, now)
	for _, sq := range sqs {
		e.cfg.Sched.Enqueue(sq, now)
	}
}

// execute runs one scheduler decision: a group of atom batches evaluated
// in the order given (Morton order for JAWS). The decision overhead is
// charged once for the whole group, and all primary atoms are fetched
// up front in that order so Morton-adjacent atoms produce sequential disk
// runs — the two effects the paper's two-level batching banks on.
func (e *Engine) execute(batches []sched.Batch) error {
	e.inst.noteDecision(len(batches))
	e.inst.noteFlight(e, batches)
	e.inst.noteBeginDecision(batches)
	defer e.inst.noteEndDecision()
	e.advance(e.cfg.DecisionOverhead, causeOverhead)
	atoms := make(map[store.AtomID]*field.Atom, len(batches))
	for i := range batches {
		a, err := e.readAtom(batches[i].Atom)
		if err != nil {
			return err
		}
		atoms[batches[i].Atom] = a
	}
	for i := range batches {
		if err := e.executeBatch(&batches[i], atoms[batches[i].Atom]); err != nil {
			return err
		}
	}
	if e.cfg.FlushPerDecision {
		e.cfg.Cache.Flush()
	}
	e.pushUtilities()
	return nil
}

// executeBatch evaluates one atom's sub-queries given its pre-fetched
// data: reads stencil-footprint atoms through the cache, charges compute
// time per position, evaluates kernels if configured, and completes
// queries whose last sub-query finished.
func (e *Engine) executeBatch(b *sched.Batch, atom *field.Atom) error {
	// Footprint atoms: interpolation stencils near atom faces also touch
	// neighbouring atoms (§III.B "potentially nearby atoms"). Read each
	// distinct one once for the whole batch.
	seen := map[store.AtomID]bool{b.Atom: true}
	for _, sq := range b.SubQueries {
		for _, f := range sq.Footprint {
			if !seen[f] {
				seen[f] = true
				if _, err := e.readAtom(f); err != nil {
					return err
				}
			}
		}
	}

	// Charge computation: T_m per position, scaled by kernel cost.
	var compute time.Duration
	for _, sq := range b.SubQueries {
		w := sq.Query.Kernel.CostWeight()
		compute += time.Duration(float64(e.cfg.Cost.Tm) * w * float64(len(sq.Points)))
	}
	e.advance(compute, causeCompute)

	if e.cfg.Compute && atom != nil {
		e.computeBatch(b, atom)
	}

	// Completion bookkeeping.
	now := e.clock.Now()
	for _, sq := range b.SubQueries {
		st := e.states[sq.Query.ID]
		st.remaining--
		if st.remaining == 0 {
			e.complete(st, now)
		}
	}
	return nil
}

// readAtom fetches an atom through the cache, charging disk time on miss.
// Reads failing with a transient (injected) error are retried up to
// MaxRetries times under capped exponential backoff, every attempt and
// backoff charged to the virtual clock; permanent failures and exhausted
// retries propagate as errors that abort the run.
func (e *Engine) readAtom(id store.AtomID) (*field.Atom, error) {
	if v, ok := e.cfg.Cache.Get(id); ok {
		return v.(*field.Atom), nil
	}
	backoff := e.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		a, cost, err := e.cfg.Store.Read(id)
		e.advance(cost, causeDisk) // on error, cost is the failure-detection latency
		if err == nil {
			e.cfg.Cache.Put(id, a)
			return a, nil
		}
		if !fault.IsTransient(err) || attempt >= e.cfg.MaxRetries {
			e.inst.noteFaultAbort(e.clock.Now(), id, attempt)
			return nil, fmt.Errorf("engine: read failed after %d attempt(s): %w", attempt+1, err)
		}
		e.report.Retries++
		e.inst.noteRetry(e.clock.Now(), id, attempt, backoff)
		e.advance(backoff, causeDisk)
		backoff *= 2
		if backoff > e.cfg.RetryBackoffMax {
			backoff = e.cfg.RetryBackoffMax
		}
	}
}

// computeBatch evaluates the kernels for every position of the batch in
// parallel across the engine's worker pool (one pool per run, not one
// goroutine set per batch).
func (e *Engine) computeBatch(b *sched.Batch, atom *field.Atom) {
	space := e.cfg.Store.Space()
	type unit struct {
		sq  *query.SubQuery
		out []PointSample
	}
	units := make([]unit, len(b.SubQueries))
	for i, sq := range b.SubQueries {
		units[i] = unit{sq: sq, out: make([]PointSample, len(sq.Points))}
	}
	if e.pool == nil {
		// Lazily started on the simulation goroutine (Run or Session.loop),
		// whichever drives this engine; both close it when they return.
		e.pool = newComputePool(e.cfg.Parallelism)
	}
	e.pool.run(len(units), func(i int) {
		u := &units[i]
		ac := geom.AtomFromCode(u.sq.Atom.Code)
		for p, pos := range u.sq.Points {
			val := field.Interpolate(u.sq.Query.Kernel, atom, space, ac, pos)
			u.out[p].Pos = geom3{X: pos.X, Y: pos.Y, Z: pos.Z}
			u.out[p].Val = val
		}
	})
	if e.cfg.KeepResults {
		for _, u := range units {
			st := e.states[u.sq.Query.ID]
			if st.result == nil {
				continue
			}
			if u.sq.Query.ChainLen() > 1 {
				st.noteChainSamples(u.sq, u.out)
			} else {
				st.result.Positions = append(st.result.Positions, u.out...)
			}
		}
	}
}

// complete finalizes a query: response-time accounting, run accounting,
// gating release, and successor arrival for ordered jobs.
func (e *Engine) complete(st *queryState, now time.Duration) {
	rt := now - st.q.Arrival
	e.completedRT = append(e.completedRT, rt)
	e.report.Completed++
	e.inst.noteCompleted(st.q, rt, now)
	if st.result != nil {
		if st.q.ChainLen() > 1 {
			e.assembleDeriv(st)
		}
		st.result.Completed = now
		e.report.Results = append(e.report.Results, st.result)
	}
	delete(e.states, st.q.ID)

	j := e.jobsByID[st.q.JobID]
	if j != nil && j.Type == job.Ordered {
		if e.cfg.JobAware {
			e.graph.MarkDone(jobgraph.Ref{Job: st.q.JobID, Seq: st.q.Seq})
		}
		if st.q.Seq+1 < len(j.Queries) {
			succ := j.Queries[st.q.Seq+1]
			succ.Arrival = now + j.ThinkTime
			e.events.Push(succ.Arrival, succ)
			e.prefetchFor(j, st.q)
		} else if e.predictor != nil {
			e.predictor.Forget(j.ID)
		}
	}

	// Run accounting (§V.A): after r consecutive queries, report the
	// run's performance to the scheduler and let the cache close its run.
	e.runRT.Add(rt.Seconds())
	e.runCount++
	if e.runCount >= e.cfg.RunLength {
		span := (now - e.runStart).Seconds()
		tp := 0.0
		if span > 0 {
			tp = float64(e.runCount) / span
		}
		e.report.Runs = append(e.report.Runs, RunStats{
			EndedAt:     now,
			MeanRespSec: e.runRT.Mean(),
			Throughput:  tp,
			Alpha:       e.cfg.Sched.Alpha(),
		})
		e.cfg.Sched.OnRunEnd(e.runRT.Mean(), tp)
		e.inst.noteRunEnd(now, len(e.report.Runs), e.cfg.Sched.Alpha(), e.runRT.Mean(), tp)
		e.cfg.Cache.EndRun()
		e.runCount = 0
		e.runStart = now
		e.runRT = metrics.Summary{}
	}
}

// assembleDeriv collapses a derivative query's accumulated per-step
// kernel outputs into ∂/∂t estimates: for every primary atom (in code
// order, so the result layout is deterministic) and every position, the
// derivative is Σⱼ wⱼ·v(step+j) / StepDT with the Fornberg forward
// stencil. Positions whose chain is incomplete (an atom skipped by a
// compute-disabled path) are dropped rather than differenced wrongly.
func (e *Engine) assembleDeriv(st *queryState) {
	k := st.q.ChainLen()
	w := query.DerivWeights(k)
	codes := make([]morton.Code, 0, len(st.chains))
	for c := range st.chains {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	for _, c := range codes {
		slots := st.chains[c]
		complete := true
		for j := 0; j < k; j++ {
			if slots[j] == nil || len(slots[j]) != len(slots[0]) {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		out := make([]PointSample, len(slots[0]))
		for p := range out {
			out[p].Pos = slots[0][p].Pos
			var val [field.Components]float64
			for j := 0; j < k; j++ {
				for comp := range val {
					val[comp] += w[j] * slots[j][p].Val[comp]
				}
			}
			for comp := range val {
				val[comp] /= query.StepDT
			}
			out[p].Val = val
		}
		st.result.Positions = append(st.result.Positions, out...)
	}
	st.chains = nil
}

// pushUtilities coordinates the cache with the scheduler (URC, §V.B):
// after every scheduling decision the current per-atom workload throughput
// of the resident atoms and the per-step means are pushed into the
// policy. This is the continuous maintenance whose cost Table I reports.
func (e *Engine) pushUtilities() {
	urc, ok := e.cfg.Cache.Policy().(*cache.URC)
	if !ok {
		return
	}
	up, ok := e.cfg.Sched.(sched.UtilityProvider)
	if !ok {
		return
	}
	means := make(map[int]float64)
	for _, step := range up.PendingSteps() {
		means[step] = up.StepMean(step)
	}
	urc.ReplaceStepMeans(means)
	for _, id := range e.cfg.Cache.Keys() {
		urc.SetAtomUtility(id, up.AtomUtility(id))
	}
	e.inst.noteUtilityPush()
}

// prefetchFor observes the just-completed query and fetches the predicted
// atoms of the job's next query into the cache, spending at most the
// job's think time of disk work (the window in which the job itself keeps
// the disk idle). Prediction misses waste only that bounded budget.
func (e *Engine) prefetchFor(j *job.Job, q *query.Query) {
	if e.predictor == nil {
		return
	}
	e.predictor.Observe(j.ID, q)
	predicted := e.predictor.Predict(j.ID)
	if len(predicted) == 0 {
		return
	}
	budget := j.ThinkTime
	for _, id := range predicted {
		if budget <= 0 {
			return
		}
		if e.cfg.Cache.Contains(id) || !e.cfg.Store.Contains(id) {
			continue
		}
		a, cost, err := e.cfg.Store.Read(id)
		if err != nil {
			continue
		}
		e.cfg.Cache.Put(id, a)
		e.prefetched++
		e.inst.notePrefetch(e.clock.Now(), j.ID, id, cost)
		budget -= cost
	}
}

// finishReport computes the aggregate measures.
func (e *Engine) finishReport() {
	e.report.Scheduler = e.cfg.Sched.Name()
	e.report.Elapsed = e.clock.Now()
	if s := e.report.Elapsed.Seconds(); s > 0 {
		e.report.ThroughputQPS = float64(e.report.Completed) / s
	}
	if n := len(e.completedRT); n > 0 {
		sorted := append([]time.Duration(nil), e.completedRT...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum time.Duration
		for _, rt := range sorted {
			sum += rt
		}
		e.report.MeanResponse = sum / time.Duration(n)
		e.report.P50Response = sorted[n/2]
		e.report.P95Response = sorted[n*95/100]
	}
	e.report.CacheStats = e.cfg.Cache.Stats()
	e.report.DiskStats = e.cfg.Store.DiskStats()
	e.report.FinalAlpha = e.cfg.Sched.Alpha()
	e.report.PrefetchedAtoms = e.prefetched
	e.report.Faults = e.cfg.Fault.Counts()
	if e.graph != nil {
		e.report.GatingAdmitted = e.graph.EdgesAdmitted()
		e.report.GatingRejected = e.graph.EdgesRejected()
	}
}
