package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"jaws/internal/fault"
	"jaws/internal/job"
	"jaws/internal/query"
)

// Session is a long-lived interactive front end over an engine: jobs are
// submitted while earlier ones execute, results stream out as queries
// complete, and the virtual clock keeps advancing across submissions —
// the execution model of the public Turbulence service, where dozens of
// users feed a continuous stream of queries (§II).
//
// The session's simulation loop runs in its own goroutine and owns every
// engine structure; Submit and Close are safe to call from any goroutine.
type Session struct {
	submit  chan []*job.Job
	results chan *QueryResult
	closed  chan struct{}
	done    chan struct{}

	eng *Engine

	mu        sync.Mutex
	err       error
	report    *Report
	closeOnce sync.Once
}

// SessionBuffer is the capacity of the result stream; a consumer that
// falls further behind than this backpressures the simulation (which is
// harmless: virtual time is decoupled from wall time).
const SessionBuffer = 1024

// NewSession validates cfg and starts the session loop. KeepResults is
// implied (results are the product); Compute remains caller-controlled.
func NewSession(cfg Config) (*Session, error) {
	cfg.KeepResults = true
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	s := &Session{
		eng:     e,
		submit:  make(chan []*job.Job),
		results: make(chan *QueryResult, SessionBuffer),
		closed:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	go s.loop(e)
	return s, nil
}

// Submit schedules jobs for execution at the current virtual time (their
// queries' Arrival fields are treated as offsets from "now"). It returns
// an error if the session is closed or the jobs are invalid.
func (s *Session) Submit(jobs ...*job.Job) error {
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return err
		}
	}
	select {
	case <-s.closed:
		if err := s.Err(); err != nil {
			return fmt.Errorf("engine: session failed: %w", err)
		}
		return errors.New("engine: session closed")
	case s.submit <- jobs:
		return nil
	}
}

// Results streams completed queries in completion order. The channel
// closes after Close once every in-flight query has finished.
func (s *Session) Results() <-chan *QueryResult { return s.results }

// Close stops accepting submissions; the loop drains the in-flight work,
// closes the result stream, and the final report becomes available. A
// caller with more than SessionBuffer undelivered results must keep
// consuming Results concurrently or Close will wait for the stream to
// drain. The report's Results slice is empty: results were streamed.
func (s *Session) Close() *Report {
	s.closeOnce.Do(func() { close(s.closed) })
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// Err reports a loop failure (nil in normal operation).
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// loop is the session's simulation thread: it interleaves submissions
// with the engine's arrival/admit/execute cycle and streams completions.
func (s *Session) loop(e *Engine) {
	defer close(s.done)
	defer close(s.results)
	defer e.closePool()

	total := 0
	flushed := 0
	closing := false

	fail := func(err error) {
		s.mu.Lock()
		s.err = err
		s.mu.Unlock()
		// A dead loop can no longer receive from s.submit; close the
		// session so concurrent and future Submit calls error out instead
		// of blocking forever (the serving layer depends on this when a
		// fault injector crashes the node mid-stream).
		s.closeOnce.Do(func() { close(s.closed) })
	}

	// accept registers newly submitted jobs, shifting their arrivals to
	// the current virtual time.
	accept := func(jobs []*job.Job) error {
		now := e.clock.Now()
		for _, j := range jobs {
			if _, dup := e.jobsByID[j.ID]; dup {
				return fmt.Errorf("engine: job %d already submitted", j.ID)
			}
			e.jobsByID[j.ID] = j
			total += len(j.Queries)
			switch j.Type {
			case job.Batched:
				for _, q := range j.Queries {
					q.Arrival += now
					e.events.Push(q.Arrival, q)
				}
			case job.Ordered:
				j.Queries[0].Arrival += now
				e.events.Push(j.Queries[0].Arrival, j.Queries[0])
			default:
				return fmt.Errorf("engine: job %d has unknown type %v", j.ID, j.Type)
			}
		}
		return nil
	}

	// flush streams any newly completed queries, dropping the engine's
	// reference so long sessions do not accumulate every result.
	flush := func() {
		for ; flushed < len(e.report.Results); flushed++ {
			s.results <- e.report.Results[flushed]
			e.report.Results[flushed] = nil
		}
	}

	crashAt, willCrash := e.cfg.Fault.CrashAt()
	stall := 0
	for {
		// Honour a scheduled node crash exactly as Engine.Run does: the
		// node dies the first time virtual time passes the injector's
		// instant, so chaos schedules exercise the serving path too.
		if willCrash && e.clock.Now() >= crashAt {
			e.inst.noteCrash(e.clock.Now(), e.cfg.Fault.Node())
			flush()
			fail(&fault.NodeCrashError{Node: e.cfg.Fault.Node(), At: crashAt})
			return
		}

		// Drain whatever is submittable without blocking.
		drainSubmits := true
		for drainSubmits {
			select {
			case jobs := <-s.submit:
				if err := accept(jobs); err != nil {
					fail(err)
					return
				}
			case <-s.closed:
				closing = true
				drainSubmits = false
			default:
				drainSubmits = false
			}
		}

		// One engine cycle: deliver due arrivals, admit, execute or jump.
		worked := false
		for ev := e.events.Peek(); ev != nil && ev.At <= e.clock.Now(); ev = e.events.Peek() {
			e.events.Pop()
			e.onArrival(ev.Payload.(*query.Query))
			worked = true
		}
		if e.admitArrived() {
			worked = true
		}
		if e.cfg.Sched.Pending() > 0 {
			if batches := e.cfg.Sched.NextBatch(e.clock.Now()); len(batches) > 0 {
				if err := e.execute(batches); err != nil {
					flush()
					fail(err)
					return
				}
				worked = true
			}
		} else if ev := e.events.Peek(); ev != nil {
			e.advanceTo(ev.At)
			worked = true
		}
		flush()

		if worked {
			stall = 0
		} else if e.report.Completed < total {
			stall++
			if stall > e.cfg.StallLimit {
				fail(fmt.Errorf("engine: session stalled with %d/%d queries complete", e.report.Completed, total))
				return
			}
			continue
		}

		if e.report.Completed == total && !worked {
			if closing {
				e.finishReport()
				e.report.Results = nil // streamed already
				s.mu.Lock()
				s.report = &e.report
				s.mu.Unlock()
				return
			}
			// Idle: block until a submission or Close arrives. Virtual
			// time only moves for work, so waiting costs nothing.
			select {
			case jobs := <-s.submit:
				if err := accept(jobs); err != nil {
					fail(err)
					return
				}
			case <-s.closed:
				closing = true
			}
		}
	}
}

// Now reports the session's current virtual time. It is safe to call
// concurrently (the clock is internally synchronized) but the value is
// advisory: the loop may be advancing it concurrently.
func (s *Session) Now() time.Duration { return s.eng.clock.Now() }
