package engine

import (
	"testing"

	"jaws/internal/cache"
	"jaws/internal/field"
	"jaws/internal/job"
	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/sched"
)

// TestAdaptiveBatchMirrorsFlightRecorder pins the contract the
// adaptive-batch policy steers on: its own pass-over count — the
// per-round truncation the decisions report — is exactly the aggregate
// the flight recorder publishes as PassBatchFull. If the two ever drift,
// the policy is reacting to a starvation signal the operator cannot see
// in the flight snapshot.
func TestAdaptiveBatchMirrorsFlightRecorder(t *testing.T) {
	s := testStore(t)
	spec, err := sched.ParsePolicySpec("adaptive-batch:min=1,max=4,grow=1,shrink=1,full=1,idle=50")
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(16, cache.NewLRU())
	inner := sched.NewJAWS(sched.JAWSConfig{
		Cost: testCost, BatchSize: 1, InitialAlpha: 0.5, Adaptive: true,
		Resident: c.Contains,
	})
	wrapped := spec.Wrap(inner)
	ab, ok := wrapped.(*sched.AdaptiveBatch)
	if !ok {
		t.Fatalf("Wrap returned %T, want *sched.AdaptiveBatch", wrapped)
	}
	rec := obs.NewFlightRecorder(-1, nil, nil)
	e, err := New(Config{
		Store: s, Cache: c, Sched: wrapped, Cost: testCost,
		Obs: &obs.Obs{Flight: rec},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Contention on one step: six heavy atoms and two light ones, all
	// pending at once against k = 1, so early rounds drop most of the
	// above-mean candidates and the policy must grow k while the recorder
	// counts the same pass-overs.
	var jobs []*job.Job
	for i := 0; i < 8; i++ {
		n := 100
		if i >= 6 {
			n = 10
		}
		jobs = append(jobs, &job.Job{
			ID: int64(i + 1), User: i + 1, Type: job.Batched,
			Queries: []*query.Query{{
				ID: query.ID(i + 1), JobID: int64(i + 1), Step: 0,
				Points: pointsInAtom(s, uint32(i), 0, 0, n),
				Kernel: field.KernelNone,
			}},
		})
	}
	rep, err := e.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(jobs) {
		t.Fatalf("completed %d queries, want %d", rep.Completed, len(jobs))
	}

	snap := rec.Snapshot()
	if ab.PassOvers() == 0 {
		t.Fatal("the contended run produced no batch-full pass-overs; the mirror check certifies nothing")
	}
	if ab.PassOvers() != snap.PassBatchFull {
		t.Errorf("policy counted %d pass-overs, flight recorder %d: the steering signal drifted from PassBatchFull",
			ab.PassOvers(), snap.PassBatchFull)
	}
	if grows, _ := ab.Resizes(); grows == 0 {
		t.Error("sustained truncation did not grow the batch bound")
	}
}
