package engine

import (
	"time"

	"jaws/internal/cache"
	"jaws/internal/job"
	"jaws/internal/jobgraph"
	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/store"
)

// responseBounds buckets query response times (seconds) from the
// interactive regime the paper targets up to heavily saturated runs.
var responseBounds = []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300}

// decisionBounds buckets the per-decision batch size k; the paper finds
// the optimum between 10 and 15.
var decisionBounds = []float64{1, 2, 5, 10, 15, 20, 30, 50}

// waitBounds buckets gating wait (seconds).
var waitBounds = []float64{0.1, 0.5, 1, 5, 10, 30, 60, 300, 600}

// instruments pre-resolves every metric the engine updates so hot paths
// pay one pointer dereference, not a registry lookup. A nil *instruments
// (observability not configured) is valid: all methods no-op, and the
// obs package's own nil-receiver contract covers the individual metrics.
type instruments struct {
	trace *obs.Tracer
	// spans tracks query lifecycles; nil unless a tracer or span
	// aggregator is configured (metrics-only runs skip the per-advance
	// distribution cost).
	spans *spanTracker

	// flight is the decision flight recorder; nil disables and keeps the
	// decision path at one branch per capture site. engineID labels the
	// records, flightSeq numbers them, blockedBuf is the reusable
	// BlockedBy scratch.
	flight     *obs.FlightRecorder
	engineID   int
	flightSeq  int64
	blockedBuf []jobgraph.Ref

	decisions     *obs.Counter   // scheduling decisions submitted
	decisionAtoms *obs.Histogram // batch size k per decision
	batchAtoms    *obs.Counter   // atoms executed in decisions
	completed     *obs.Counter   // queries completed
	response      *obs.Histogram // per-query response time (s)
	runs          *obs.Counter   // adaptation runs ended
	alphaGauge    *obs.Gauge     // current age bias α

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter

	diskReads    *obs.Counter
	diskSeqReads *obs.Counter
	diskBytes    *obs.Counter

	prefetchAtoms *obs.Counter

	gateBlocked   *obs.Counter
	gateWait      *obs.Histogram // gating delay per admitted query (s)
	edgesAdmitted *obs.Counter
	edgesRejected *obs.Counter

	utilityPushes *obs.Counter

	faultRetries     *obs.Counter // reads retried after transient errors
	faultAborts      *obs.Counter // reads abandoned (run aborts)
	faultCorruptions *obs.Counter // cache payloads dropped as corrupt
	nodeCrashes      *obs.Counter // injector-scheduled node deaths
	stallAborts      *obs.Counter // StallLimit deadlock aborts

	// blockedAt records the virtual time gating first held each query
	// back, so the eventual admission can carry the accumulated wait.
	blockedAt map[query.ID]time.Duration
}

// engineMetricHelp is the # HELP text for every metric the engine
// registers, emitted by the registry's Prometheus exposition.
var engineMetricHelp = map[string]string{
	"jaws_decisions_total":           "Scheduling decisions submitted to the engine.",
	"jaws_decision_atoms":            "Batch size k per scheduling decision.",
	"jaws_batch_atoms_total":         "Atoms executed inside scheduling decisions.",
	"jaws_queries_completed_total":   "Queries completed by the engine.",
	"jaws_response_seconds":          "Per-query response time on the virtual clock.",
	"jaws_runs_total":                "Adaptation runs ended by the alpha controller.",
	"jaws_alpha":                     "Current age bias alpha of the JAWS scheduler.",
	"jaws_cache_hits_total":          "Atom cache hits.",
	"jaws_cache_misses_total":        "Atom cache misses (lookups that went to disk).",
	"jaws_cache_evictions_total":     "Atoms evicted from the cache.",
	"jaws_disk_reads_total":          "Reads issued to the simulated disk array.",
	"jaws_disk_seq_reads_total":      "Reads that continued a sequential run (no seek).",
	"jaws_disk_bytes_total":          "Bytes read from the simulated disk array.",
	"jaws_prefetch_atoms_total":      "Atoms loaded by trajectory prefetching.",
	"jaws_gate_blocked_total":        "Queries job-aware gating held back at least once.",
	"jaws_gate_wait_seconds":         "Gating delay per admitted query.",
	"jaws_gate_edges_admitted_total": "Gating-graph edges admitted.",
	"jaws_gate_edges_rejected_total": "Gating-graph edges rejected.",
	"jaws_utility_pushes_total":      "URC cache-coordination passes.",
	"jaws_fault_retries_total":       "Atom reads retried after injected transient errors.",
	"jaws_fault_aborts_total":        "Atom reads abandoned after exhausting retries.",
	"jaws_fault_corruptions_total":   "Cache payloads dropped as corrupt.",
	"jaws_node_crashes_total":        "Injector-scheduled node deaths.",
	"jaws_stall_aborts_total":        "Runs aborted after StallLimit iterations without progress.",
}

// newInstruments resolves the engine's metrics against o's registry and
// captures its tracer. Returns nil when o carries neither, so the
// uninstrumented engine holds a single nil pointer.
func newInstruments(o *obs.Obs) *instruments {
	if o == nil || (o.Trace == nil && o.Reg == nil && o.Spans == nil && o.Flight == nil) {
		return nil
	}
	reg := o.Registry()
	for name, help := range engineMetricHelp {
		reg.Describe(name, help)
	}
	return &instruments{
		trace:          o.Tracer(),
		spans:          newSpanTracker(o),
		flight:         o.Recorder(),
		decisions:      reg.Counter("jaws_decisions_total"),
		decisionAtoms:  reg.Histogram("jaws_decision_atoms", decisionBounds...),
		batchAtoms:     reg.Counter("jaws_batch_atoms_total"),
		completed:      reg.Counter("jaws_queries_completed_total"),
		response:       reg.Histogram("jaws_response_seconds", responseBounds...),
		runs:           reg.Counter("jaws_runs_total"),
		alphaGauge:     reg.Gauge("jaws_alpha"),
		cacheHits:      reg.Counter("jaws_cache_hits_total"),
		cacheMisses:    reg.Counter("jaws_cache_misses_total"),
		cacheEvictions: reg.Counter("jaws_cache_evictions_total"),
		diskReads:      reg.Counter("jaws_disk_reads_total"),
		diskSeqReads:   reg.Counter("jaws_disk_seq_reads_total"),
		diskBytes:      reg.Counter("jaws_disk_bytes_total"),
		prefetchAtoms:  reg.Counter("jaws_prefetch_atoms_total"),
		gateBlocked:    reg.Counter("jaws_gate_blocked_total"),
		gateWait:       reg.Histogram("jaws_gate_wait_seconds", waitBounds...),
		edgesAdmitted:  reg.Counter("jaws_gate_edges_admitted_total"),
		edgesRejected:  reg.Counter("jaws_gate_edges_rejected_total"),
		utilityPushes:  reg.Counter("jaws_utility_pushes_total"),

		faultRetries:     reg.Counter("jaws_fault_retries_total"),
		faultAborts:      reg.Counter("jaws_fault_aborts_total"),
		faultCorruptions: reg.Counter("jaws_fault_corruptions_total"),
		nodeCrashes:      reg.Counter("jaws_node_crashes_total"),
		stallAborts:      reg.Counter("jaws_stall_aborts_total"),

		blockedAt: make(map[query.ID]time.Duration),
	}
}

// install wires the observability hooks into the engine's components.
// It runs unconditionally from New — with a nil receiver it clears any
// hooks a previous engine left on the shared store/cache/scheduler (the
// facade reuses them across runs), so a later uninstrumented run never
// emits into a dead tracer.
func (in *instruments) install(e *Engine) {
	if in == nil {
		e.cfg.Cache.SetObserver(cache.Observer{})
		e.cfg.Store.SetIOObserver(nil)
		if tr, ok := e.cfg.Sched.(sched.Traced); ok {
			tr.SetTracer(nil)
		}
		if ex, ok := e.cfg.Sched.(sched.Explained); ok {
			ex.SetExplain(false)
		}
		if e.graph != nil {
			e.graph.SetObserver(nil)
		}
		return
	}
	in.engineID = e.cfg.EngineID
	// Decision capture follows the recorder: flipped on only when flight
	// records are being collected, cleared otherwise (the facade reuses
	// schedulers across runs).
	if ex, ok := e.cfg.Sched.(sched.Explained); ok {
		ex.SetExplain(in.flight.Enabled())
	}
	e.cfg.Cache.SetObserver(cache.Observer{
		Hit: func(id store.AtomID) {
			in.cacheHits.Inc()
			in.trace.CacheHit(e.clock.Now(), id.Step, uint64(id.Code))
			if in.spans != nil {
				in.spans.noteCache(true)
			}
		},
		Miss: func(id store.AtomID) {
			in.cacheMisses.Inc()
			in.trace.CacheMiss(e.clock.Now(), id.Step, uint64(id.Code))
			if in.spans != nil {
				in.spans.noteCache(false)
			}
		},
		Evict: func(id store.AtomID) {
			in.cacheEvictions.Inc()
			in.trace.CacheEvict(e.clock.Now(), id.Step, uint64(id.Code))
		},
		Corrupt: func(id store.AtomID) {
			in.faultCorruptions.Inc()
		},
	})
	e.cfg.Store.SetIOObserver(func(addr, size int64, seq bool, cost time.Duration) {
		in.diskReads.Inc()
		if seq {
			in.diskSeqReads.Inc()
		}
		in.diskBytes.Add(size)
		in.trace.DiskRead(e.clock.Now(), addr, size, seq, cost)
	})
	if tr, ok := e.cfg.Sched.(sched.Traced); ok {
		tr.SetTracer(in.trace)
	}
	if e.graph != nil {
		e.graph.SetObserver(func(admitted bool, u, v jobgraph.Ref) {
			if admitted {
				in.edgesAdmitted.Inc()
			} else {
				in.edgesRejected.Inc()
			}
			in.trace.GateEdge(e.clock.Now(), admitted, u.Job, u.Seq, v.Job, v.Seq)
		})
	}
}

// noteDecision records one scheduler decision of len(batches) atoms.
func (in *instruments) noteDecision(batches int) {
	if in == nil {
		return
	}
	in.decisions.Inc()
	in.decisionAtoms.Observe(float64(batches))
	in.batchAtoms.Add(int64(batches))
}

// noteFlight turns the scheduler's decision capture into one flight
// record: winner and batch with per-atom utilities, runner-up steps
// with mean-U_e margins, queue depths, and the gating edges holding
// arrived queries out of the race. The capture's slices are adopted,
// not copied — the scheduler nils them at its next reset, so the record
// owns the arrays outright. Disabled (no recorder) this is one branch.
func (in *instruments) noteFlight(e *Engine, batches []sched.Batch) {
	if in == nil || !in.flight.Enabled() {
		return
	}
	rec := &obs.DecisionRecord{
		Engine:     in.engineID,
		Seq:        in.flightSeq,
		T:          e.clock.Now(),
		Sched:      e.cfg.Sched.Name(),
		Alpha:      e.cfg.Sched.Alpha(),
		WinnerStep: -1,
	}
	in.flightSeq++
	if ex, ok := e.cfg.Sched.(sched.Explained); ok {
		if exp := ex.LastExplain(); exp != nil {
			rec.Sched = exp.Sched
			rec.Alpha = exp.Alpha
			rec.Urgent = exp.Urgent
			rec.WinnerStep = exp.WinnerStep
			rec.PendingAtoms = exp.PendingAtoms
			rec.PendingSubs = exp.PendingSubs
			rec.Steps = exp.Steps
			rec.Chosen = exp.Chosen
			rec.Truncated = exp.Truncated
		}
	}
	// Schedulers without decision capture still yield a joinable record:
	// rebuild the chosen set from the batches themselves.
	if len(rec.Chosen) == 0 && len(batches) > 0 {
		rec.Chosen = make([]obs.DecisionAtom, 0, len(batches))
		for i := range batches {
			a := obs.DecisionAtom{
				Step: batches[i].Atom.Step,
				Code: uint64(batches[i].Atom.Code),
				Subs: len(batches[i].SubQueries),
			}
			a.Queries = make([]int64, 0, len(batches[i].SubQueries))
			for _, sq := range batches[i].SubQueries {
				a.Queries = append(a.Queries, int64(sq.Query.ID))
			}
			rec.Chosen = append(rec.Chosen, a)
		}
	}
	// Gating edges: every held-back arrived query, and who it waits on.
	if e.graph != nil {
		for _, q := range e.arrived {
			j := e.jobsByID[q.JobID]
			if j == nil || j.Type != job.Ordered {
				continue
			}
			in.blockedBuf = e.graph.BlockedBy(jobgraph.Ref{Job: q.JobID, Seq: q.Seq}, in.blockedBuf[:0])
			for _, b := range in.blockedBuf {
				edge := obs.DecisionEdge{
					Query: int64(q.ID), Job: q.JobID, Seq: q.Seq,
					OnJob: b.Job, OnSeq: b.Seq,
				}
				if bj := e.jobsByID[b.Job]; bj != nil && b.Seq >= 0 && b.Seq < len(bj.Queries) {
					edge.OnQuery = int64(bj.Queries[b.Seq].ID)
				}
				rec.Blocked = append(rec.Blocked, edge)
			}
		}
	}
	in.flight.Record(rec)
}

// noteCompleted records a finished query's response time and closes its
// lifecycle span.
func (in *instruments) noteCompleted(q *query.Query, rt, now time.Duration) {
	if in == nil {
		return
	}
	in.completed.Inc()
	in.response.Observe(rt.Seconds())
	if in.spans != nil {
		in.spans.complete(q.ID, now)
	}
}

// noteRunEnd records an adaptation-run boundary and the α the scheduler
// settled on after seeing the run's performance.
func (in *instruments) noteRunEnd(now time.Duration, run int, alpha, rt, tp float64) {
	if in == nil {
		return
	}
	in.runs.Inc()
	in.alphaGauge.Set(alpha)
	in.trace.Alpha(now, run, alpha, rt, tp)
}

// noteBlocked records that gating held q back, once per query.
func (in *instruments) noteBlocked(q *query.Query, now time.Duration) {
	if in == nil {
		return
	}
	if _, ok := in.blockedAt[q.ID]; ok {
		return
	}
	in.blockedAt[q.ID] = now
	in.gateBlocked.Inc()
	in.trace.GateBlock(now, int64(q.ID), q.JobID, q.Seq)
}

// noteDispatched records a query entering the workload queues and opens
// its lifecycle span; queries gating previously held back carry their
// accumulated wait.
func (in *instruments) noteDispatched(q *query.Query, now time.Duration) {
	if in == nil {
		return
	}
	blocked, wasBlocked := in.blockedAt[q.ID]
	if wasBlocked {
		delete(in.blockedAt, q.ID)
		wait := now - blocked
		in.gateWait.Observe(wait.Seconds())
		in.trace.GateAdmit(now, int64(q.ID), q.JobID, q.Seq, wait)
	}
	if in.spans != nil {
		in.spans.dispatch(q, now, wasBlocked)
	}
}

// noteAdvance attributes one virtual-clock advance to the phases of the
// in-flight spans. This is the engine's hottest instrumentation point:
// with observability disabled it is a single nil check.
func (in *instruments) noteAdvance(c spanCause, d time.Duration) {
	if in == nil || in.spans == nil {
		return
	}
	in.spans.advance(c, d)
}

// noteBeginDecision marks the queries served by the decision about to
// execute (decision → batch → query linkage for attribution).
func (in *instruments) noteBeginDecision(batches []sched.Batch) {
	if in == nil || in.spans == nil {
		return
	}
	in.spans.beginDecision(batches)
}

// noteEndDecision closes the decision's serving window.
func (in *instruments) noteEndDecision() {
	if in == nil || in.spans == nil {
		return
	}
	in.spans.endDecision()
}

// notePrefetch records one atom loaded by trajectory prefetching.
func (in *instruments) notePrefetch(now time.Duration, job int64, id store.AtomID, cost time.Duration) {
	if in == nil {
		return
	}
	in.prefetchAtoms.Inc()
	in.trace.Prefetch(now, job, id.Step, uint64(id.Code), cost)
}

// noteUtilityPush records one URC coordination pass.
func (in *instruments) noteUtilityPush() {
	if in == nil {
		return
	}
	in.utilityPushes.Inc()
}

// noteRetry records one retried atom read and the backoff charged.
func (in *instruments) noteRetry(now time.Duration, id store.AtomID, attempt int, backoff time.Duration) {
	if in == nil {
		return
	}
	in.faultRetries.Inc()
	in.trace.FaultRetry(now, id.Step, uint64(id.Code), attempt, backoff)
}

// noteFaultAbort records a read abandoned after attempt+1 attempts.
func (in *instruments) noteFaultAbort(now time.Duration, id store.AtomID, attempt int) {
	if in == nil {
		return
	}
	in.faultAborts.Inc()
	in.trace.FaultAbort(now, id.Step, uint64(id.Code), attempt)
}

// noteCrash records the injector killing this node.
func (in *instruments) noteCrash(now time.Duration, node int) {
	if in == nil {
		return
	}
	in.nodeCrashes.Inc()
	in.trace.NodeCrash(now, node)
}

// noteStallAbort records a StallLimit abort (gated-execution deadlock).
func (in *instruments) noteStallAbort(now time.Duration) {
	if in == nil {
		return
	}
	in.stallAborts.Inc()
	in.trace.StallAbort(now)
}
