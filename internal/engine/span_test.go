package engine

import (
	"testing"
	"time"

	"jaws/internal/cache"
	"jaws/internal/fault"
	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/workload"
)

// checkConservation asserts the attribution invariant over every span the
// run produced: phase components sum exactly to the response time, the
// span set matches the completion count, and service charges appear only
// on queries a decision served.
func checkConservation(t *testing.T, agg *obs.SpanAgg, completed int) {
	t.Helper()
	spans := agg.Spans()
	if len(spans) != completed {
		t.Fatalf("collected %d spans for %d completed queries", len(spans), completed)
	}
	seen := make(map[int64]bool, len(spans))
	for i := range spans {
		sp := &spans[i]
		if seen[sp.Query] {
			t.Fatalf("query %d has two spans", sp.Query)
		}
		seen[sp.Query] = true
		if sp.Done < sp.Arrival {
			t.Fatalf("query %d: done %v before arrival %v", sp.Query, sp.Done, sp.Arrival)
		}
		if got, want := sp.PhaseSum(), sp.Total(); got != want {
			t.Fatalf("query %d violates attribution: phases %v (g=%v q=%v o=%v d=%v c=%v) != total %v",
				sp.Query, got, sp.Gated, sp.Queued, sp.Overhead, sp.Disk, sp.Compute, want)
		}
		if sp.Decisions == 0 && (sp.Overhead != 0 || sp.Disk != 0 || sp.Compute != 0) {
			t.Fatalf("query %d charged service time without a serving decision: %+v", sp.Query, sp)
		}
		if sp.Decisions > 0 && sp.Overhead == 0 {
			t.Fatalf("query %d served by %d decisions but no overhead charged", sp.Query, sp.Decisions)
		}
	}
}

// spanRun executes one generated workload with span collection and
// returns the aggregator plus the completion count.
func spanRun(t *testing.T, seed int64, jobAware bool, spec fault.Spec, maxRetries int) (*obs.SpanAgg, int) {
	t.Helper()
	s := testStore(t)
	w := workload.Generate(workload.Config{
		Seed:           seed,
		Space:          s.Space(),
		Steps:          4,
		Jobs:           25,
		PointsPerQuery: 20,
		MeanJobGap:     50 * time.Millisecond,
		ThinkTime:      5 * time.Millisecond,
		QueryScale:     20,
	})
	c := cache.New(12, cache.NewLRUK(2, 0))
	agg := obs.NewSpanAgg()
	e, err := New(Config{
		Store: s, Cache: c,
		Sched: sched.NewJAWS(sched.JAWSConfig{
			Cost: testCost, BatchSize: 4, InitialAlpha: 0.5, Adaptive: true, Resident: c.Contains,
		}),
		Cost: testCost, JobAware: jobAware, RunLength: 16,
		Obs:        &obs.Obs{Spans: agg},
		Fault:      fault.New(spec, seed, 0),
		MaxRetries: maxRetries,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(w.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	return agg, rep.Completed
}

// TestSpanConservation is the core property test: across random seeded
// workloads, gated and ungated, every completed query's phase components
// sum exactly to its response time.
func TestSpanConservation(t *testing.T) {
	for _, jobAware := range []bool{false, true} {
		for seed := int64(1); seed <= 5; seed++ {
			agg, completed := spanRun(t, seed, jobAware, fault.Spec{}, 0)
			if completed == 0 {
				t.Fatal("workload completed nothing")
			}
			checkConservation(t, agg, completed)
		}
	}
}

// TestSpanConservationUnderFaults re-checks the invariant with injected
// transient errors and latency spikes: retry backoff and fault delay are
// clock advances like any other, so they must land in the Disk phase and
// conservation must survive.
func TestSpanConservationUnderFaults(t *testing.T) {
	spec, err := fault.ParseSpec("disk-transient:p=0.08,extra=1ms;disk-slow:p=0.1,extra=5ms;corrupt:p=0.02")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		agg, completed := spanRun(t, seed, true, spec, 12)
		checkConservation(t, agg, completed)
		// The fault schedule above retries with probability 0.08 per read:
		// over thousands of reads at least one span should carry disk time.
		var disk time.Duration
		for _, sp := range agg.Spans() {
			disk += sp.Disk
		}
		if disk == 0 {
			t.Fatal("no disk time attributed under a disk-fault schedule")
		}
	}
}

// TestSpanBlockedFlag checks the gate-hold linkage: a job-aware run that
// admits gating edges must mark at least the held queries Blocked, and
// their Gated phase must cover the hold.
func TestSpanBlockedFlag(t *testing.T) {
	agg, completed := spanRun(t, 3, true, fault.Spec{}, 0)
	checkConservation(t, agg, completed)
	blocked := 0
	for _, sp := range agg.Spans() {
		if sp.Blocked {
			blocked++
			if sp.Gated == 0 {
				t.Fatalf("query %d marked blocked with zero gated time", sp.Query)
			}
		}
	}
	if blocked == 0 {
		t.Skip("seed produced no gate holds; covered by other seeds")
	}
}

// TestNilObsZeroAllocation pins the zero-overhead contract: with no
// observability configured, the per-advance and per-dispatch hooks must
// not allocate (a nil instruments pointer reduces every hook to one
// branch).
func TestNilObsZeroAllocation(t *testing.T) {
	var in *instruments
	q := &query.Query{ID: 1, JobID: 1}
	batches := []sched.Batch{}
	allocs := testing.AllocsPerRun(1000, func() {
		in.noteAdvance(causeDisk, time.Millisecond)
		in.noteDispatched(q, time.Second)
		in.noteBeginDecision(batches)
		in.noteEndDecision()
		in.noteCompleted(q, time.Second, 2*time.Second)
		in.noteDecision(4)
	})
	if allocs != 0 {
		t.Fatalf("nil-obs hot path allocates %.1f times per cycle, want 0", allocs)
	}
}

// BenchmarkNoteAdvanceNil measures the uninstrumented cost of the
// engine's hottest hook (one nil check).
func BenchmarkNoteAdvanceNil(b *testing.B) {
	var in *instruments
	for i := 0; i < b.N; i++ {
		in.noteAdvance(causeCompute, time.Millisecond)
	}
}
