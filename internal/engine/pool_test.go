package engine

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Every index must be executed exactly once per run call.
func TestComputePoolExactlyOnce(t *testing.T) {
	p := newComputePool(4)
	defer p.close()
	for trial := 0; trial < 50; trial++ {
		n := trial % 17
		counts := make([]int32, n)
		p.run(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("trial %d: index %d executed %d times", trial, i, c)
			}
		}
	}
}

// Concurrent batch evaluation: several goroutines share one pool, each
// fanning out its own work; every unit must run exactly once and run must
// not return before its own units finished. Run with -race (make
// race-obs) this doubles as the data-race check on the pool.
func TestComputePoolConcurrentStress(t *testing.T) {
	p := newComputePool(3)
	defer p.close()
	const submitters = 8
	const rounds = 40
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n := (s+r)%13 + 1
				counts := make([]int32, n)
				p.run(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
				// run returned: all units of THIS call must be complete,
				// regardless of other submitters' in-flight work.
				for i, c := range counts {
					if c != 1 {
						t.Errorf("submitter %d round %d: index %d executed %d times", s, r, i, c)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
}

// A zero-sized run is a no-op and must not deadlock or touch workers.
func TestComputePoolEmptyRun(t *testing.T) {
	p := newComputePool(2)
	defer p.close()
	p.run(0, func(int) { t.Fatal("fn called for n=0") })
}
