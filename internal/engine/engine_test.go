package engine

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"jaws/internal/cache"
	"jaws/internal/field"
	"jaws/internal/geom"
	"jaws/internal/job"
	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/store"
)

func testStore(t testing.TB) *store.Store {
	t.Helper()
	s, err := store.Open(store.Config{
		Space:      geom.Space{GridSide: 128, AtomSide: 32}, // 64 atoms/step
		Steps:      4,
		SampleSide: 4,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var testCost = sched.CostModel{Tb: 40 * time.Millisecond, Tm: 20 * time.Microsecond}

func newEngine(t testing.TB, s *store.Store, sc sched.Scheduler, jobAware bool, opts ...func(*Config)) *Engine {
	t.Helper()
	cfg := Config{
		Store:    s,
		Cache:    cache.New(16, cache.NewLRU()),
		Sched:    sc,
		Cost:     testCost,
		JobAware: jobAware,
	}
	for _, o := range opts {
		o(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// pointsInAtom returns n positions spread inside atom (i,j,k).
func pointsInAtom(s *store.Store, i, j, k uint32, n int) []geom.Position {
	sp := s.Space()
	atomLen := float64(sp.AtomSide) * sp.VoxelSize()
	pts := make([]geom.Position, n)
	for p := 0; p < n; p++ {
		f := (float64(p) + 0.5) / float64(n)
		pts[p] = geom.Position{
			X: (float64(i) + f) * atomLen,
			Y: (float64(j) + 0.3) * atomLen,
			Z: (float64(k) + 0.7) * atomLen,
		}
	}
	return pts
}

// batchedJob builds a batched job of single-atom queries arriving at the
// given times.
func batchedJob(s *store.Store, id int64, arrivals []time.Duration, atomI uint32) *job.Job {
	j := &job.Job{ID: id, User: int(id), Type: job.Batched}
	for i, at := range arrivals {
		j.Queries = append(j.Queries, &query.Query{
			ID:      query.ID(id*1000 + int64(i)),
			JobID:   id,
			Seq:     i,
			Step:    0,
			Points:  pointsInAtom(s, atomI, 0, 0, 50),
			Kernel:  field.KernelNone,
			Arrival: at,
		})
	}
	return j
}

// orderedJob builds an ordered job whose queries walk across atoms
// (steps[i], atom x=atoms[i]).
func orderedJob(s *store.Store, id int64, steps []int, atoms []uint32, think time.Duration, arrival time.Duration) *job.Job {
	j := &job.Job{ID: id, User: int(id), Type: job.Ordered, ThinkTime: think}
	for i := range steps {
		j.Queries = append(j.Queries, &query.Query{
			ID:     query.ID(id*1000 + int64(i)),
			JobID:  id,
			Seq:    i,
			Step:   steps[i],
			Points: pointsInAtom(s, atoms[i], 1, 1, 50),
			Kernel: field.KernelNone,
		})
	}
	j.Queries[0].Arrival = arrival
	return j
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestRunSingleQuery(t *testing.T) {
	s := testStore(t)
	e := newEngine(t, s, sched.NewNoShare(), false)
	rep, err := e.Run([]*job.Job{batchedJob(s, 1, []time.Duration{0}, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 1 {
		t.Fatalf("Completed = %d", rep.Completed)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if rep.MeanResponse <= 0 {
		t.Fatal("no response time measured")
	}
	if rep.DiskStats.Reads == 0 {
		t.Fatal("no disk reads charged")
	}
}

func TestRunValidatesJobs(t *testing.T) {
	s := testStore(t)
	e := newEngine(t, s, sched.NewNoShare(), false)
	if _, err := e.Run([]*job.Job{{ID: 1}}); err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestOrderedJobRunsInSequence(t *testing.T) {
	s := testStore(t)
	e := newEngine(t, s, sched.NewNoShare(), false, func(c *Config) { c.KeepResults = true })
	think := 100 * time.Millisecond
	j := orderedJob(s, 1, []int{0, 1, 2}, []uint32{0, 1, 2}, think, 0)
	rep, err := e.Run([]*job.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 {
		t.Fatalf("Completed = %d", rep.Completed)
	}
	// Completion order must follow sequence and arrivals must respect
	// think time.
	var prevDone time.Duration
	for i, r := range rep.Results {
		if r.Query.Seq != i {
			t.Fatalf("completion order broken: result %d is seq %d", i, r.Query.Seq)
		}
		if i > 0 && r.Query.Arrival != prevDone+think {
			t.Fatalf("successor arrival %v != predecessor completion %v + think", r.Query.Arrival, prevDone)
		}
		prevDone = r.Completed
	}
}

func TestSharedAtomReadOnce(t *testing.T) {
	// Two queries on the same atom under LifeRaft: co-scheduled into one
	// batch, the atom is read from disk exactly once.
	s := testStore(t)
	lr := sched.NewLifeRaft(testCost, 0, nil)
	e := newEngine(t, s, lr, false)
	jobs := []*job.Job{
		batchedJob(s, 1, []time.Duration{0}, 3),
		batchedJob(s, 2, []time.Duration{0}, 3),
	}
	rep, err := e.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DiskStats.Reads != 1 {
		t.Fatalf("shared atom read %d times, want 1", rep.DiskStats.Reads)
	}
}

func TestNoShareReadsPerQueryButHitsCache(t *testing.T) {
	s := testStore(t)
	e := newEngine(t, s, sched.NewNoShare(), false)
	jobs := []*job.Job{
		batchedJob(s, 1, []time.Duration{0}, 3),
		batchedJob(s, 2, []time.Duration{0}, 3),
	}
	rep, err := e.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Two separate executions of the same atom: second is a cache hit
	// (incidental sharing), so still one disk read but two cache accesses.
	if rep.CacheStats.Hits != 1 || rep.CacheStats.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", rep.CacheStats)
	}
}

func TestComputeProducesAccurateValues(t *testing.T) {
	s := testStore(t)
	e := newEngine(t, s, sched.NewNoShare(), false, func(c *Config) {
		c.Compute = true
		c.KeepResults = true
		c.Parallelism = 4
	})
	j := &job.Job{ID: 1, User: 1, Type: job.Batched}
	j.Queries = append(j.Queries, &query.Query{
		ID: 1, JobID: 1, Step: 2,
		Points: pointsInAtom(s, 1, 1, 1, 20),
		Kernel: field.KernelTrilinear,
	})
	rep, err := e.Run([]*job.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || len(rep.Results[0].Positions) != 20 {
		t.Fatalf("results missing: %+v", rep.Results)
	}
	// Interpolated values must approximate the analytic field.
	f := s.Field()
	for _, pv := range rep.Results[0].Positions {
		truth := f.Eval(2, geom.Position{X: pv.Pos.X, Y: pv.Pos.Y, Z: pv.Pos.Z})
		for c := 0; c < 3; c++ {
			if math.Abs(pv.Val[c]-truth[c]) > 0.35 {
				t.Fatalf("interpolated %g vs truth %g (component %d)", pv.Val[c], truth[c], c)
			}
		}
	}
}

func TestJobAwareGatingSharesIO(t *testing.T) {
	// Two ordered jobs walking the same atom sequence with staggered
	// arrivals. Job-aware JAWS should align their execution so each atom
	// is read fewer times than the gate-less run.
	s := testStore(t)
	mkJobs := func() []*job.Job {
		var jobs []*job.Job
		for id := int64(1); id <= 2; id++ {
			j := orderedJob(s, id,
				[]int{0, 1, 2, 3},
				[]uint32{0, 1, 2, 3},
				10*time.Millisecond,
				time.Duration(id-1)*50*time.Millisecond)
			jobs = append(jobs, j)
		}
		return jobs
	}

	run := func(jobAware bool) *Report {
		st := testStore(t)
		c := cache.New(2, cache.NewLRU()) // tiny cache: sharing must come from co-scheduling
		js := sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 4, InitialAlpha: 0, Resident: c.Contains})
		e, err := New(Config{Store: st, Cache: c, Sched: js, Cost: testCost, JobAware: jobAware})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(mkJobs())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	aware := run(true)
	blind := run(false)
	if aware.Completed != 8 || blind.Completed != 8 {
		t.Fatalf("completions %d/%d", aware.Completed, blind.Completed)
	}
	if aware.GatingAdmitted == 0 {
		t.Fatal("job-aware run admitted no gating edges")
	}
	if aware.DiskStats.Reads > blind.DiskStats.Reads {
		t.Fatalf("job-aware reads %d > blind reads %d", aware.DiskStats.Reads, blind.DiskStats.Reads)
	}
}

func TestRunAccountingFiresOnRunEnd(t *testing.T) {
	s := testStore(t)
	jawsSched := sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 4, InitialAlpha: 0.5, Adaptive: true})
	e := newEngine(t, s, jawsSched, false, func(c *Config) { c.RunLength = 4 })
	var jobs []*job.Job
	for id := int64(1); id <= 4; id++ {
		jobs = append(jobs, batchedJob(s, id, []time.Duration{0, time.Second, 2 * time.Second}, uint32(id)))
	}
	rep, err := e.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 12 {
		t.Fatalf("Completed = %d", rep.Completed)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("expected 3 runs of 4 queries, got %d", len(rep.Runs))
	}
	for _, r := range rep.Runs {
		if r.Throughput < 0 || r.MeanRespSec < 0 {
			t.Fatalf("bad run stats %+v", r)
		}
	}
}

func TestURCCoordinationUpdatesUtilities(t *testing.T) {
	s := testStore(t)
	urc := cache.NewURC()
	c := cache.New(8, urc)
	js := sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 4, Resident: c.Contains})
	e, err := New(Config{Store: s, Cache: c, Sched: js, Cost: testCost})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*job.Job
	for id := int64(1); id <= 6; id++ {
		jobs = append(jobs, batchedJob(s, id, []time.Duration{0}, uint32(id%4)))
	}
	if _, err := e.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if urc.MetadataLen() == 0 {
		t.Fatal("URC never received utility updates from the engine")
	}
}

func TestDeterministicRuns(t *testing.T) {
	runOnce := func() *Report {
		s := testStore(t)
		c := cache.New(8, cache.NewLRU())
		js := sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 3, InitialAlpha: 0.5, Resident: c.Contains})
		e, err := New(Config{Store: s, Cache: c, Sched: js, Cost: testCost, JobAware: true})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		var jobs []*job.Job
		for id := int64(1); id <= 5; id++ {
			steps := make([]int, 3)
			atoms := make([]uint32, 3)
			for i := range steps {
				steps[i] = rng.Intn(4)
				atoms[i] = uint32(rng.Intn(4))
			}
			jobs = append(jobs, orderedJob(s, id, steps, atoms, time.Millisecond, time.Duration(id)*10*time.Millisecond))
		}
		rep, err := e.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := runOnce(), runOnce()
	if a.Elapsed != b.Elapsed || a.ThroughputQPS != b.ThroughputQPS ||
		a.DiskStats.Reads != b.DiskStats.Reads || a.CacheStats.Hits != b.CacheStats.Hits {
		t.Fatalf("virtual-time runs not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

func TestFootprintAtomsCharged(t *testing.T) {
	// A Lag8 query near an atom face must read the neighbour atoms too.
	s := testStore(t)
	e := newEngine(t, s, sched.NewNoShare(), false)
	sp := s.Space()
	atomLen := float64(sp.AtomSide) * sp.VoxelSize()
	j := &job.Job{ID: 1, User: 1, Type: job.Batched}
	j.Queries = append(j.Queries, &query.Query{
		ID: 1, JobID: 1, Step: 0,
		Points: []geom.Position{{X: atomLen + 0.5*sp.VoxelSize(), Y: 1.5 * atomLen, Z: 1.5 * atomLen}},
		Kernel: field.KernelLag8,
	})
	rep, err := e.Run([]*job.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DiskStats.Reads < 2 {
		t.Fatalf("footprint atoms not charged: %d reads", rep.DiskStats.Reads)
	}
}

func TestThroughputOrderingAcrossSchedulers(t *testing.T) {
	// A contended workload: JAWS and LifeRaft(0) must beat NoShare on
	// virtual-time throughput. This is the minimal Fig. 10 sanity check.
	mkJobs := func(s *store.Store) []*job.Job {
		rng := rand.New(rand.NewSource(3))
		var jobs []*job.Job
		for id := int64(1); id <= 12; id++ {
			atom := uint32(rng.Intn(3)) // heavy overlap on 3 atoms
			arr := time.Duration(rng.Intn(50)) * time.Millisecond
			jobs = append(jobs, batchedJob(s, id, []time.Duration{arr}, atom))
		}
		return jobs
	}
	run := func(mk func(c *cache.Cache) sched.Scheduler) float64 {
		s := testStore(t)
		c := cache.New(2, cache.NewLRU())
		e, err := New(Config{Store: s, Cache: c, Sched: mk(c), Cost: testCost})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(mkJobs(s))
		if err != nil {
			t.Fatal(err)
		}
		return rep.ThroughputQPS
	}
	noshare := run(func(*cache.Cache) sched.Scheduler { return sched.NewNoShare() })
	liferaft := run(func(c *cache.Cache) sched.Scheduler {
		return sched.NewLifeRaft(testCost, 0, c.Contains)
	})
	jawsTp := run(func(c *cache.Cache) sched.Scheduler {
		return sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 5, Resident: c.Contains})
	})
	if liferaft <= noshare {
		t.Fatalf("LifeRaft (%.2f qps) did not beat NoShare (%.2f qps)", liferaft, noshare)
	}
	if jawsTp <= noshare {
		t.Fatalf("JAWS (%.2f qps) did not beat NoShare (%.2f qps)", jawsTp, noshare)
	}
}

func BenchmarkEngineRunJAWS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := testStore(b)
		c := cache.New(16, cache.NewLRU())
		js := sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 5, Resident: c.Contains})
		e, err := New(Config{Store: s, Cache: c, Sched: js, Cost: testCost, JobAware: true})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		var jobs []*job.Job
		for id := int64(1); id <= 10; id++ {
			steps := make([]int, 4)
			atoms := make([]uint32, 4)
			for i := range steps {
				steps[i] = rng.Intn(4)
				atoms[i] = uint32(rng.Intn(4))
			}
			jobs = append(jobs, orderedJob(s, id, steps, atoms, time.Millisecond, 0))
		}
		if _, err := e.Run(jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPrefetchImprovesHitRatio(t *testing.T) {
	// A drifting ordered job stepping through time: without prefetch every
	// new step's atoms are cold; with trajectory prefetch they are warmed
	// during think time.
	mkJob := func(s *store.Store) *job.Job {
		sp := s.Space()
		atomLen := float64(sp.AtomSide) * sp.VoxelSize()
		j := &job.Job{ID: 1, User: 1, Type: job.Ordered, ThinkTime: 500 * time.Millisecond}
		for i := 0; i < 4; i++ {
			j.Queries = append(j.Queries, &query.Query{
				ID: query.ID(i + 1), JobID: 1, Seq: i, Step: i,
				Points: pointsInAtom(s, uint32(i), 1, 1, 40),
				Kernel: field.KernelNone,
			})
			_ = atomLen
		}
		j.Queries[0].Arrival = 0
		return j
	}
	run := func(pf bool) *Report {
		s := testStore(t)
		c := cache.New(16, cache.NewLRU())
		e, err := New(Config{
			Store: s, Cache: c, Sched: sched.NewNoShare(), Cost: testCost,
			Prefetch: pf,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run([]*job.Job{mkJob(s)})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	off := run(false)
	on := run(true)
	if on.PrefetchedAtoms == 0 {
		t.Fatal("prefetch issued nothing")
	}
	if off.PrefetchedAtoms != 0 {
		t.Fatal("prefetch ran while disabled")
	}
	if on.CacheStats.Hits <= off.CacheStats.Hits {
		t.Fatalf("prefetch did not add hits: %d vs %d", on.CacheStats.Hits, off.CacheStats.Hits)
	}
	if on.Elapsed > off.Elapsed {
		t.Fatalf("prefetch slowed the run: %v vs %v", on.Elapsed, off.Elapsed)
	}
}

func TestPrefetchBudgetBounded(t *testing.T) {
	// With zero think time there is no idle window: nothing may be
	// prefetched.
	s := testStore(t)
	c := cache.New(16, cache.NewLRU())
	e, err := New(Config{Store: s, Cache: c, Sched: sched.NewNoShare(), Cost: testCost, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	j := orderedJob(s, 1, []int{0, 1, 2}, []uint32{0, 1, 2}, 0, 0)
	rep, err := e.Run([]*job.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrefetchedAtoms != 0 {
		t.Fatalf("prefetched %d atoms with no think window", rep.PrefetchedAtoms)
	}
}

func TestDeclareUpfrontGatesFirstQueries(t *testing.T) {
	// Two jobs sharing their whole sequence, arriving far apart. With
	// incremental registration the early job may finish before the late
	// one registers; with declared jobs the gating edges exist from the
	// start, so the early job waits and every shared atom is read once.
	mkJobs := func(s *store.Store) []*job.Job {
		a := orderedJob(s, 1, []int{0, 1, 2, 3}, []uint32{0, 1, 2, 3}, time.Millisecond, 0)
		b := orderedJob(s, 2, []int{0, 1, 2, 3}, []uint32{0, 1, 2, 3}, time.Millisecond, 2*time.Second)
		return []*job.Job{a, b}
	}
	run := func(declare bool) *Report {
		s := testStore(t)
		c := cache.New(2, cache.NewLRU())
		js := sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 4, InitialAlpha: 0, Resident: c.Contains})
		e, err := New(Config{Store: s, Cache: c, Sched: js, Cost: testCost,
			JobAware: true, DeclareUpfront: declare})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(mkJobs(s))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	inc := run(false)
	dec := run(true)
	if dec.GatingAdmitted == 0 {
		t.Fatal("declared mode admitted no edges")
	}
	// Declared mode must not read more than incremental; with a 2-atom
	// cache and a 2 s offset it should read strictly fewer atoms.
	if dec.DiskStats.Reads > inc.DiskStats.Reads {
		t.Fatalf("declared jobs read more: %d vs %d", dec.DiskStats.Reads, inc.DiskStats.Reads)
	}
	if dec.Completed != 8 || inc.Completed != 8 {
		t.Fatalf("completions %d/%d", dec.Completed, inc.Completed)
	}
}
