package engine

import (
	"testing"
	"time"

	"jaws/internal/cache"
	"jaws/internal/field"
	"jaws/internal/job"
	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/workload"
)

// TestEngineInvariantsAcrossSchedulers runs a generated workload under
// every scheduler family and checks the accounting identities that any
// correct execution must satisfy.
func TestEngineInvariantsAcrossSchedulers(t *testing.T) {
	wcfg := workload.Config{
		Seed:           3,
		Space:          testStore(t).Space(),
		Steps:          4,
		Jobs:           25,
		PointsPerQuery: 20,
		MeanJobGap:     50 * time.Millisecond,
		ThinkTime:      5 * time.Millisecond,
		QueryScale:     20,
	}

	type mk struct {
		name     string
		jobAware bool
		build    func(c *cache.Cache) sched.Scheduler
	}
	makers := []mk{
		{"noshare", false, func(*cache.Cache) sched.Scheduler { return sched.NewNoShare() }},
		{"liferaft0", false, func(c *cache.Cache) sched.Scheduler { return sched.NewLifeRaft(testCost, 0, c.Contains) }},
		{"liferaft1", false, func(c *cache.Cache) sched.Scheduler { return sched.NewLifeRaft(testCost, 1, c.Contains) }},
		{"jaws", false, func(c *cache.Cache) sched.Scheduler {
			return sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 4, InitialAlpha: 0.5, Adaptive: true, Resident: c.Contains})
		}},
		{"jaws2", true, func(c *cache.Cache) sched.Scheduler {
			return sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 4, InitialAlpha: 0.5, Adaptive: true, Resident: c.Contains})
		}},
		{"qos", true, func(c *cache.Cache) sched.Scheduler {
			inner := sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 4, Resident: c.Contains})
			return sched.NewQoS(inner, testCost, 4, time.Second)
		}},
	}

	for _, m := range makers {
		t.Run(m.name, func(t *testing.T) {
			w := workload.Generate(wcfg)
			s := testStore(t)
			c := cache.New(12, cache.NewLRUK(2, 0))
			e, err := New(Config{
				Store: s, Cache: c, Sched: m.build(c), Cost: testCost,
				JobAware: m.jobAware, RunLength: 16,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := e.Run(w.Jobs)
			if err != nil {
				t.Fatal(err)
			}

			// 1. Every query completed exactly once.
			if rep.Completed != w.TotalQueries() {
				t.Fatalf("completed %d of %d queries", rep.Completed, w.TotalQueries())
			}
			// 2. Disk reads equal cache misses: every miss triggers one
			// store read and nothing else touches the disk.
			if rep.DiskStats.Reads != rep.CacheStats.Misses {
				t.Fatalf("reads %d != misses %d", rep.DiskStats.Reads, rep.CacheStats.Misses)
			}
			// 3. Virtual time accounts for at least all disk busy time.
			if rep.Elapsed < rep.DiskStats.BusyTime {
				t.Fatalf("elapsed %v < disk busy %v", rep.Elapsed, rep.DiskStats.BusyTime)
			}
			// 4. Responses are positive and the throughput identity holds.
			if rep.MeanResponse <= 0 || rep.P95Response < rep.P50Response {
				t.Fatalf("response stats inconsistent: %+v", rep)
			}
			wantTP := float64(rep.Completed) / rep.Elapsed.Seconds()
			if diff := rep.ThroughputQPS - wantTP; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("throughput %g != completed/elapsed %g", rep.ThroughputQPS, wantTP)
			}
			// 5. Job-aware runs finish their gating graph (nothing left
			// un-scheduled).
			if m.jobAware && e.graph != nil && !e.graph.Finished() {
				t.Fatal("gating graph not drained")
			}
		})
	}
}

// TestFigure2Scenario reproduces the paper's Fig. 2 example: three jobs
// whose region sequences share R3 and R4 (and R1 between j1 and j3).
// Job-aware scheduling must read the shared regions once where the
// gate-less run reads them repeatedly.
func TestFigure2Scenario(t *testing.T) {
	s := testStore(t)
	// Regions R1..R5 are distinct atoms of step 0; one query per region,
	// as in the figure: j1 = [R1 R2 R3 R4], j2 = [R5 R3 R4], j3 = [R1 R3 R4].
	// The 4-atom-per-axis test grid fits R1..R4 along x; R5 sits on a
	// different y row.
	type coord struct{ x, y uint32 }
	regionAtom := map[int]coord{1: {0, 1}, 2: {1, 1}, 3: {2, 1}, 4: {3, 1}, 5: {0, 2}}
	mk := func(id int64, regions []int, arrival time.Duration) *job.Job {
		j := &job.Job{ID: id, User: int(id), Type: job.Ordered, ThinkTime: time.Millisecond}
		for i, r := range regions {
			c := regionAtom[r]
			j.Queries = append(j.Queries, &query.Query{
				ID: query.ID(id*1000 + int64(i)), JobID: id, Seq: i, Step: 0,
				Points: pointsInAtom(s, c.x, c.y, 1, 50),
				Kernel: field.KernelNone,
			})
		}
		j.Queries[0].Arrival = arrival
		return j
	}
	mkJobs := func() []*job.Job {
		return []*job.Job{
			mk(1, []int{1, 2, 3, 4}, 0),
			mk(2, []int{5, 3, 4}, 20*time.Millisecond),
			mk(3, []int{1, 3, 4}, 40*time.Millisecond),
		}
	}
	run := func(aware bool) *Report {
		st := testStore(t)
		c := cache.New(1, cache.NewLRU()) // single-atom cache: sharing must be simultaneous
		js := sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 4, InitialAlpha: 0, Resident: c.Contains})
		e, err := New(Config{Store: st, Cache: c, Sched: js, Cost: testCost, JobAware: aware})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(mkJobs())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	aware := run(true)
	blind := run(false)
	if aware.Completed != 10 || blind.Completed != 10 {
		t.Fatalf("completions %d/%d", aware.Completed, blind.Completed)
	}
	if aware.GatingAdmitted == 0 {
		t.Fatal("Fig. 2 scenario admitted no gating edges")
	}
	if aware.DiskStats.Reads >= blind.DiskStats.Reads {
		t.Fatalf("job-aware run did not save I/O: %d vs %d reads",
			aware.DiskStats.Reads, blind.DiskStats.Reads)
	}
	// Fig. 2's JAWS completes 33% faster; at this tiny scale require a
	// strict improvement.
	if aware.Elapsed >= blind.Elapsed {
		t.Fatalf("job-aware run not faster: %v vs %v", aware.Elapsed, blind.Elapsed)
	}
}
