package engine

import "sync"

// computePool is the bounded worker pool batch kernel evaluation fans out
// on. The engine used to spawn fresh goroutines for every batch; the pool
// amortizes that over the run — workers are started once and fed closures
// over an unbuffered channel. run may be called concurrently from
// multiple goroutines (each call tracks its own completion), which the
// race stress test exercises.
type computePool struct {
	tasks chan func()
	wg    sync.WaitGroup // worker lifetimes
}

// newComputePool starts workers goroutines (at least one).
func newComputePool(workers int) *computePool {
	if workers < 1 {
		workers = 1
	}
	p := &computePool{tasks: make(chan func())}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// run executes fn(i) for every i in [0, n) across the pool and returns
// when all calls have completed. Each index is executed exactly once.
func (p *computePool) run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.tasks <- func() {
			defer wg.Done()
			fn(i)
		}
	}
	wg.Wait()
}

// close shuts the pool down and waits for the workers to drain. No run
// call may be in flight or issued afterwards.
func (p *computePool) close() {
	close(p.tasks)
	p.wg.Wait()
}

// closePool tears down the engine's worker pool, if one was started.
func (e *Engine) closePool() {
	if e.pool != nil {
		e.pool.close()
		e.pool = nil
	}
}
