package engine

import (
	"math"
	"testing"

	"jaws/internal/field"
	"jaws/internal/geom"
	"jaws/internal/job"
	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/store"
)

// TestDerivQueryFiniteDifference runs one temporal-derivative query
// through the full engine and checks the assembled values against the
// same pipeline applied by hand: interpolate the chain's atoms step by
// step, then difference with the Fornberg stencil over StepDT. The two
// must agree to float round-off, since assembleDeriv performs exactly
// these operations.
func TestDerivQueryFiniteDifference(t *testing.T) {
	s := testStore(t)
	e := newEngine(t, s, sched.NewNoShare(), false, func(c *Config) {
		c.Compute = true
		c.KeepResults = true
		c.Parallelism = 4
	})
	const anchor = 1
	const k = 3
	pts := pointsInAtom(s, 1, 1, 1, 20)
	j := &job.Job{ID: 1, User: 1, Type: job.Batched}
	j.Queries = append(j.Queries, &query.Query{
		ID: 1, JobID: 1, Step: anchor, DerivSteps: k,
		Points: pts,
		Kernel: field.KernelTrilinear,
	})
	rep, err := e.Run([]*job.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || len(rep.Results[0].Positions) != len(pts) {
		t.Fatalf("want %d assembled positions, got %+v", len(pts), rep.Results)
	}

	// Reproduce the pipeline by hand for each returned position.
	space := s.Space()
	w := query.DerivWeights(k)
	for _, pv := range rep.Results[0].Positions {
		pos := geom.Position{X: pv.Pos.X, Y: pv.Pos.Y, Z: pv.Pos.Z}
		ac := space.AtomOf(pos)
		var want [field.Components]float64
		for j := 0; j < k; j++ {
			atom, _, err := s.Read(store.AtomID{Step: anchor + j, Code: ac.Code()})
			if err != nil {
				t.Fatal(err)
			}
			v := field.Interpolate(field.KernelTrilinear, atom, space, ac, pos)
			for c := range want {
				want[c] += w[j] * v[c]
			}
		}
		for c := range want {
			want[c] /= query.StepDT
		}
		for c := range want {
			if math.IsNaN(pv.Val[c]) || math.Abs(pv.Val[c]-want[c]) > 1e-9*(1+math.Abs(want[c])) {
				t.Fatalf("deriv value %g, want %g (component %d at %+v)", pv.Val[c], want[c], c, pos)
			}
		}
	}

	// The estimates should also track the analytic ∂/∂t: the stencil
	// applied to the exact field values differs from the engine's only by
	// interpolation error, so demand agreement within a loose band.
	f := s.Field()
	close := 0
	for _, pv := range rep.Results[0].Positions {
		pos := geom.Position{X: pv.Pos.X, Y: pv.Pos.Y, Z: pv.Pos.Z}
		var truth [field.Components]float64
		for j := 0; j < k; j++ {
			v := f.Eval(anchor+j, pos)
			for c := range truth {
				truth[c] += w[j] * v[c]
			}
		}
		ok := true
		for c := range truth {
			truth[c] /= query.StepDT
			if math.Abs(pv.Val[c]-truth[c]) > 0.5*(1+math.Abs(truth[c])) {
				ok = false
			}
		}
		if ok {
			close++
		}
	}
	if close < len(pts)/2 {
		t.Fatalf("only %d/%d derivative estimates near the analytic stencil", close, len(pts))
	}
}

// TestDerivQueryAccounting checks a derivative query's bookkeeping: it
// completes exactly once, touches ChainLen step buckets' worth of
// sub-queries, and runs fine without KeepResults (no accumulator leaks).
func TestDerivQueryAccounting(t *testing.T) {
	s := testStore(t)
	e := newEngine(t, s, sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 4}), false, func(c *Config) {
		c.Compute = true // exercise computeBatch's chain path without retention
	})
	pts := pointsInAtom(s, 2, 2, 2, 10)
	j := &job.Job{ID: 1, User: 1, Type: job.Batched}
	j.Queries = append(j.Queries, &query.Query{
		ID: 1, JobID: 1, Step: 0, DerivSteps: 4,
		Points: pts,
		Kernel: field.KernelNone,
	})
	rep, err := e.Run([]*job.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 1 {
		t.Fatalf("Completed = %d, want 1 (the logical query, not its chain)", rep.Completed)
	}
	// All points sit in one atom, so the chain needs exactly 4 atom reads
	// (one per step; steps never share atoms).
	if rep.CacheStats.Misses != 4 {
		t.Fatalf("cache misses = %d, want 4 (one atom per chain step)", rep.CacheStats.Misses)
	}
	if rep.Results != nil {
		t.Fatalf("results retained without KeepResults: %+v", rep.Results)
	}
}
