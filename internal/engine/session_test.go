package engine

import (
	"errors"
	"testing"
	"time"

	"jaws/internal/cache"
	"jaws/internal/fault"
	"jaws/internal/job"
	"jaws/internal/sched"
)

func newTestSession(t testing.TB) *Session {
	t.Helper()
	s := testStore(t)
	c := cache.New(16, cache.NewLRU())
	js := sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 4, Resident: c.Contains})
	sess, err := NewSession(Config{Store: s, Cache: c, Sched: js, Cost: testCost, JobAware: true})
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestSessionStreamsResults(t *testing.T) {
	st := testStore(t)
	c := cache.New(16, cache.NewLRU())
	js := sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 4, Resident: c.Contains})
	sess, err := NewSession(Config{Store: st, Cache: c, Sched: js, Cost: testCost})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(batchedJob(st, 1, []time.Duration{0, 10 * time.Millisecond}, 0)); err != nil {
		t.Fatal(err)
	}
	got := 0
	timeout := time.After(10 * time.Second)
	for got < 2 {
		select {
		case r := <-sess.Results():
			if r == nil {
				t.Fatal("results channel closed early")
			}
			got++
		case <-timeout:
			t.Fatalf("timed out with %d results", got)
		}
	}
	rep := sess.Close()
	if rep == nil || rep.Completed != 2 {
		t.Fatalf("final report %+v", rep)
	}
	if sess.Err() != nil {
		t.Fatal(sess.Err())
	}
	// Stream must be closed now.
	if _, open := <-sess.Results(); open {
		t.Fatal("results channel left open after Close")
	}
}

func TestSessionMultipleSubmissionsAdvanceClock(t *testing.T) {
	st := testStore(t)
	c := cache.New(16, cache.NewLRU())
	sess, err := NewSession(Config{Store: st, Cache: c, Sched: sched.NewNoShare(), Cost: testCost})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(batchedJob(st, 1, []time.Duration{0}, 0)); err != nil {
		t.Fatal(err)
	}
	<-sess.Results()
	t1 := sess.Now()
	if t1 <= 0 {
		t.Fatal("virtual clock did not advance")
	}
	// Second submission starts at the current virtual time, not zero.
	if err := sess.Submit(batchedJob(st, 2, []time.Duration{0}, 1)); err != nil {
		t.Fatal(err)
	}
	r := <-sess.Results()
	if r.Query.Arrival < t1 {
		t.Fatalf("second submission arrived at %v, before session time %v", r.Query.Arrival, t1)
	}
	sess.Close()
}

func TestSessionOrderedJobAcrossSubmissions(t *testing.T) {
	st := testStore(t)
	c := cache.New(16, cache.NewLRU())
	js := sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 4, Resident: c.Contains})
	sess, err := NewSession(Config{Store: st, Cache: c, Sched: js, Cost: testCost, JobAware: true})
	if err != nil {
		t.Fatal(err)
	}
	j := orderedJob(st, 1, []int{0, 1, 2}, []uint32{0, 1, 2}, time.Millisecond, 0)
	if err := sess.Submit(j); err != nil {
		t.Fatal(err)
	}
	var seqs []int
	for i := 0; i < 3; i++ {
		r := <-sess.Results()
		seqs = append(seqs, r.Query.Seq)
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("ordered job completed out of order: %v", seqs)
		}
	}
	sess.Close()
}

func TestSessionRejectsAfterClose(t *testing.T) {
	sess := newTestSession(t)
	sess.Close()
	st := testStore(t)
	if err := sess.Submit(batchedJob(st, 1, []time.Duration{0}, 0)); err == nil {
		t.Fatal("submit after close accepted")
	}
}

func TestSessionRejectsInvalidJob(t *testing.T) {
	sess := newTestSession(t)
	defer sess.Close()
	if err := sess.Submit(&job.Job{ID: 1}); err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestSessionDuplicateJobFailsLoop(t *testing.T) {
	st := testStore(t)
	c := cache.New(16, cache.NewLRU())
	sess, err := NewSession(Config{Store: st, Cache: c, Sched: sched.NewNoShare(), Cost: testCost})
	if err != nil {
		t.Fatal(err)
	}
	j1 := batchedJob(st, 1, []time.Duration{0}, 0)
	if err := sess.Submit(j1); err != nil {
		t.Fatal(err)
	}
	<-sess.Results()
	j2 := batchedJob(st, 1, []time.Duration{0}, 1) // same ID
	if err := sess.Submit(j2); err != nil {
		t.Fatal(err) // accepted at the API; the loop reports the failure
	}
	sess.Close()
	if sess.Err() == nil {
		t.Fatal("duplicate job ID not reported")
	}
}

func TestSessionSubmitAfterLoopFailureErrors(t *testing.T) {
	st := testStore(t)
	c := cache.New(16, cache.NewLRU())
	sess, err := NewSession(Config{Store: st, Cache: c, Sched: sched.NewNoShare(), Cost: testCost})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(batchedJob(st, 1, []time.Duration{0}, 0)); err != nil {
		t.Fatal(err)
	}
	<-sess.Results()
	// A duplicate job ID kills the loop; once it is dead the session must
	// reject further submissions instead of blocking forever.
	if err := sess.Submit(batchedJob(st, 1, []time.Duration{0}, 1)); err != nil {
		t.Fatal(err)
	}
	for range sess.Results() {
	} // drained: the loop has exited
	if sess.Err() == nil {
		t.Fatal("loop failure not recorded")
	}
	errc := make(chan error, 1)
	go func() { errc <- sess.Submit(batchedJob(st, 3, []time.Duration{0}, 2)) }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("submit to a dead session accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("submit to a dead session blocked")
	}
	sess.Close()
}

func TestSessionHonoursCrashFault(t *testing.T) {
	st := testStore(t)
	c := cache.New(16, cache.NewLRU())
	spec, err := fault.ParseSpec("crash@0:at=1ms")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(Config{
		Store: st, Cache: c, Sched: sched.NewNoShare(), Cost: testCost,
		Fault: fault.New(spec, 1, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(batchedJob(st, 1, []time.Duration{0}, 0)); err != nil {
		t.Fatal(err)
	}
	for range sess.Results() {
	} // the stream must close when the node dies
	var nce *fault.NodeCrashError
	if !errors.As(sess.Err(), &nce) {
		t.Fatalf("session error = %v, want NodeCrashError", sess.Err())
	}
	if err := sess.Submit(batchedJob(st, 2, []time.Duration{0}, 1)); err == nil {
		t.Fatal("submit to a crashed session accepted")
	}
}

func TestSessionConcurrentSubmitters(t *testing.T) {
	st := testStore(t)
	c := cache.New(16, cache.NewLRU())
	js := sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 4, Resident: c.Contains})
	sess, err := NewSession(Config{Store: st, Cache: c, Sched: js, Cost: testCost})
	if err != nil {
		t.Fatal(err)
	}
	const submitters, each = 4, 5
	done := make(chan error, submitters)
	for w := 0; w < submitters; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				id := int64(w*100 + i + 1)
				if err := sess.Submit(batchedJob(st, id, []time.Duration{0}, uint32(id%4))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < submitters; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	timeout := time.After(20 * time.Second)
	for got < submitters*each {
		select {
		case <-sess.Results():
			got++
		case <-timeout:
			t.Fatalf("timed out with %d results", got)
		}
	}
	rep := sess.Close()
	if rep.Completed != submitters*each {
		t.Fatalf("completed %d", rep.Completed)
	}
}

func BenchmarkSessionThroughput(b *testing.B) {
	st := testStore(b)
	c := cache.New(16, cache.NewLRU())
	js := sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 4, Resident: c.Contains})
	sess, err := NewSession(Config{Store: st, Cache: c, Sched: js, Cost: testCost})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := int64(i + 1)
		if err := sess.Submit(batchedJob(st, id, []time.Duration{0}, uint32(id%4))); err != nil {
			b.Fatal(err)
		}
		<-sess.Results()
	}
	b.StopTimer()
	sess.Close()
}
