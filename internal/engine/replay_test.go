package engine

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"jaws/internal/cache"
	"jaws/internal/fault"
	"jaws/internal/job"
	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/workload"
)

// TestReplayByteIdenticalTraces is the determinism regression for the
// whole simulation stack: a fixed workload and seed — with fault
// injection running, since the injector is the newest source of
// randomness — must produce byte-identical JSONL traces and equal
// virtual-time reports across two independent engine runs.
func TestReplayByteIdenticalTraces(t *testing.T) {
	run := func() ([]byte, *Report) {
		wl := workload.Generate(workload.Config{
			Seed:           11,
			Space:          testStore(t).Space(),
			Steps:          4,
			Jobs:           8,
			PointsPerQuery: 4,
			OrderedFrac:    0.5,
			LoneQueryFrac:  0.1,
			SpeedUp:        4,
			MeanJobGap:     500 * time.Millisecond,
			ThinkTime:      10 * time.Millisecond,
			QueryScale:     1,
			Hotspots:       3,
		})
		s := testStore(t)
		ch := cache.New(16, cache.NewLRU())
		var buf bytes.Buffer
		spec, err := fault.ParseSpec("disk-transient:p=0.05,extra=1ms;disk-slow:p=0.05,extra=2ms;corrupt:p=0.02")
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{
			Store:    s,
			Cache:    ch,
			Sched:    sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 4, Resident: ch.Contains}),
			Cost:     testCost,
			JobAware: true,
			Obs:      &obs.Obs{Trace: obs.NewTracer(0, &buf)},
			Fault:    fault.New(spec, 9, 0),
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(wl.Jobs)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.cfg.Obs.Trace.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), rep
	}

	traceA, repA := run()
	traceB, repB := run()
	if len(traceA) == 0 {
		t.Fatal("first run emitted no trace events")
	}
	if !bytes.Equal(traceA, traceB) {
		// Find the first diverging line for a readable failure.
		la, lb := strings.Split(string(traceA), "\n"), strings.Split(string(traceB), "\n")
		for i := 0; i < len(la) && i < len(lb); i++ {
			if la[i] != lb[i] {
				t.Fatalf("traces diverge at line %d:\n  a: %s\n  b: %s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("traces differ in length: %d vs %d lines", len(la), len(lb))
	}
	if repA.Elapsed != repB.Elapsed || repA.Completed != repB.Completed ||
		repA.Retries != repB.Retries || repA.Faults != repB.Faults {
		t.Fatalf("reports diverge:\n  a: elapsed=%v completed=%d retries=%d faults=%+v\n  b: elapsed=%v completed=%d retries=%d faults=%+v",
			repA.Elapsed, repA.Completed, repA.Retries, repA.Faults,
			repB.Elapsed, repB.Completed, repB.Retries, repB.Faults)
	}
	if repA.Retries == 0 && repA.Faults == (fault.Counts{}) {
		t.Fatal("fault injector never fired; the replay test is not exercising it")
	}
}

// deadlockSched simulates the failure mode StallLimit exists for: work
// is pending forever but no batch is ever released (a gating deadlock).
type deadlockSched struct{}

func (deadlockSched) Name() string                           { return "deadlock" }
func (deadlockSched) Enqueue(*query.SubQuery, time.Duration) {}
func (deadlockSched) NextBatch(time.Duration) []sched.Batch  { return nil }
func (deadlockSched) Pending() int                           { return 1 }
func (deadlockSched) OnRunEnd(rt, tp float64)                {}
func (deadlockSched) Alpha() float64                         { return 0 }

// TestStallLimitAbortsDeadlock checks the engine refuses to spin forever
// when the scheduler deadlocks: the run aborts with a descriptive error
// and the abort is visible in the metrics registry.
func TestStallLimitAbortsDeadlock(t *testing.T) {
	s := testStore(t)
	reg := obs.NewRegistry()
	e, err := New(Config{
		Store:      s,
		Cache:      cache.New(4, cache.NewLRU()),
		Sched:      deadlockSched{},
		Cost:       testCost,
		StallLimit: 50,
		Obs:        &obs.Obs{Reg: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run([]*job.Job{batchedJob(s, 1, []time.Duration{0}, 0)})
	if err == nil {
		t.Fatal("deadlocked run returned no error")
	}
	if rep != nil {
		t.Fatal("deadlocked run returned a report")
	}
	if !strings.Contains(err.Error(), "stalled") || !strings.Contains(err.Error(), "0/1") {
		t.Fatalf("abort error not descriptive: %v", err)
	}
	if got := reg.Counter("jaws_stall_aborts_total").Value(); got != 1 {
		t.Fatalf("jaws_stall_aborts_total = %d, want 1", got)
	}
}
