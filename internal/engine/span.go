package engine

import (
	"time"

	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/sched"
)

// spanCause classifies a virtual-clock advance for response-time
// attribution. Every clock advance the engine performs is tagged with the
// component that charged it; the span tracker folds the advance into the
// matching phase of every in-flight query.
type spanCause uint8

const (
	// causeWait is idle fast-forward or any advance outside a decision.
	causeWait spanCause = iota
	// causeOverhead is the fixed per-decision submission cost.
	causeOverhead
	// causeDisk is disk-read time, failure-detection latency, and retry
	// backoff.
	causeDisk
	// causeCompute is kernel-evaluation time.
	causeCompute
)

// spanTracker maintains the lifecycle span of every in-flight query. It
// lives inside instruments, so a run without observability never
// constructs one and the hot-path hooks reduce to a nil check.
//
// The attribution invariant (obs.Span) holds by construction: a span's
// Gated phase is measured directly as dispatch − arrival, and from
// dispatch to completion every clock advance is charged to exactly one
// phase of every in-flight span — service phases when the executing
// decision serves the query, Queued otherwise.
type spanTracker struct {
	trace *obs.Tracer  // nil: spans not traced
	agg   *obs.SpanAgg // nil: spans not collected

	inflight   map[query.ID]*spanState
	inDecision bool
}

type spanState struct {
	span    obs.Span
	serving bool // the executing decision serves this query
}

// newSpanTracker returns nil unless at least one span consumer is
// configured — tracking costs O(in-flight) per clock advance, so it is
// paid only when someone wants the result.
func newSpanTracker(o *obs.Obs) *spanTracker {
	if o == nil || (o.Trace == nil && o.Spans == nil) {
		return nil
	}
	return &spanTracker{
		trace:    o.Tracer(),
		agg:      o.SpanAggregator(),
		inflight: make(map[query.ID]*spanState),
	}
}

// dispatch opens the span as the query enters the workload queues: the
// whole arrival → dispatch interval is the Gated phase.
func (tk *spanTracker) dispatch(q *query.Query, now time.Duration, blocked bool) {
	tk.inflight[q.ID] = &spanState{span: obs.Span{
		Query:   int64(q.ID),
		Job:     q.JobID,
		Seq:     q.Seq,
		Req:     q.ReqID,
		Arrival: q.Arrival,
		Gated:   now - q.Arrival,
		Blocked: blocked,
	}}
}

// advance charges one clock advance to every in-flight span.
func (tk *spanTracker) advance(c spanCause, d time.Duration) {
	if d <= 0 {
		return
	}
	for _, st := range tk.inflight {
		if st.serving {
			switch c {
			case causeOverhead:
				st.span.Overhead += d
			case causeDisk:
				st.span.Disk += d
			case causeCompute:
				st.span.Compute += d
			default:
				st.span.Queued += d
			}
		} else {
			st.span.Queued += d
		}
	}
}

// beginDecision marks the queries the decision's batches serve; their
// subsequent advances charge service phases instead of Queued.
func (tk *spanTracker) beginDecision(batches []sched.Batch) {
	tk.inDecision = true
	for i := range batches {
		for _, sq := range batches[i].SubQueries {
			if st := tk.inflight[sq.Query.ID]; st != nil && !st.serving {
				st.serving = true
				st.span.Decisions++
			}
		}
	}
}

// endDecision clears the serving marks.
func (tk *spanTracker) endDecision() {
	if !tk.inDecision {
		return
	}
	tk.inDecision = false
	for _, st := range tk.inflight {
		st.serving = false
	}
}

// noteCache attributes one cache lookup of the executing decision to the
// spans it serves.
func (tk *spanTracker) noteCache(hit bool) {
	if !tk.inDecision {
		return // prefetch and other out-of-decision cache traffic
	}
	for _, st := range tk.inflight {
		if !st.serving {
			continue
		}
		if hit {
			st.span.Hits++
		} else {
			st.span.Misses++
		}
	}
}

// complete closes the span and hands it to the configured consumers. A
// query completes mid-decision; removing it here stops the decision's
// remaining advances from leaking past Done.
func (tk *spanTracker) complete(id query.ID, now time.Duration) {
	st := tk.inflight[id]
	if st == nil {
		return
	}
	delete(tk.inflight, id)
	st.span.Done = now
	tk.agg.Add(st.span)
	tk.trace.SpanDone(st.span)
}
