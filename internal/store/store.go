// Package store is the simulated Turbulence database on one node: a
// clustered B+-tree access path, keyed on the combination of Morton index
// and time step (§III.A), over atoms laid out on a simulated disk array in
// Morton order within each time step.
//
// Reading an atom charges the disk model the nominal 8 MB transfer and
// materializes the atom's samples from the deterministic synthetic field.
// Caching is deliberately external (the paper manages its cache outside
// SQL Server); the store itself always goes to "disk".
package store

import (
	"fmt"
	"time"

	"jaws/internal/btree"
	"jaws/internal/disk"
	"jaws/internal/field"
	"jaws/internal/geom"
	"jaws/internal/morton"
)

// AtomID identifies one storage block: a time step plus the Morton code of
// the atom's grid coordinates. It is the unit of I/O and of scheduling.
type AtomID struct {
	Step int
	Code morton.Code
}

// String renders the atom ID.
func (id AtomID) String() string {
	return fmt.Sprintf("t%d/%s", id.Step, geom.AtomFromCode(id.Code))
}

// Key packs the ID into the clustered index key: time step in the high
// bits so a whole step is one contiguous key range (and one contiguous
// disk extent), Morton code in the low bits for spatial order within it.
func (id AtomID) Key() uint64 {
	return uint64(id.Step)<<40 | uint64(id.Code)
}

// blockMeta is the indexed location of an atom on the simulated disk.
type blockMeta struct {
	addr int64
	size int64
}

// Config parameterizes a store.
type Config struct {
	Space geom.Space
	// Steps is the number of stored time steps (31 in the paper's 800 GB
	// evaluation sample, 1024 in production).
	Steps int
	// SampleSide is the per-axis sample resolution atoms are materialized
	// at in memory (the disk model still charges the nominal 8 MB).
	SampleSide int
	// SampleGhost is the replication halo in samples on each side of the
	// atom (§III.A stores four voxels of replication); 0 disables.
	SampleGhost int
	// Seed drives the synthetic field.
	Seed int64
	// Disks is the stripe width; 0 means the paper's 4.
	Disks int
	// DiskParams override the default spindle model when non-zero.
	DiskParams disk.Params
}

// Store is a single-node atom database.
type Store struct {
	cfg   Config
	field *field.Field
	array *disk.Array
	index *btree.Tree[uint64, blockMeta]
}

// Open builds the store and its clustered index.
func Open(cfg Config) (*Store, error) {
	if err := cfg.Space.Validate(); err != nil {
		return nil, err
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("store: need at least one time step, got %d", cfg.Steps)
	}
	if cfg.SampleSide <= 0 {
		cfg.SampleSide = 8
	}
	if cfg.Disks <= 0 {
		cfg.Disks = 4
	}
	if cfg.DiskParams.TransferRate == 0 {
		cfg.DiskParams = disk.DefaultParams()
	}
	s := &Store{
		cfg:   cfg,
		field: field.New(cfg.Seed, 0, 0),
		array: disk.NewArray(cfg.Disks, cfg.DiskParams),
		index: btree.New[uint64, blockMeta](64, func(a, b uint64) bool { return a < b }),
	}
	// Lay atoms out in (step, Morton) order: because the atom grid side is
	// a power of two, Morton codes are dense in [0, atomsPerStep), so the
	// layout has no holes and Morton-adjacent atoms are disk-adjacent.
	per := int64(cfg.Space.AtomsPerStep())
	for step := 0; step < cfg.Steps; step++ {
		for c := int64(0); c < per; c++ {
			id := AtomID{Step: step, Code: morton.Code(c)}
			addr := (int64(step)*per + c) * field.NominalAtomBytes
			s.index.Put(id.Key(), blockMeta{addr: addr, size: field.NominalAtomBytes})
		}
	}
	return s, nil
}

// Space returns the store's geometry.
func (s *Store) Space() geom.Space { return s.cfg.Space }

// Steps returns the number of stored time steps.
func (s *Store) Steps() int { return s.cfg.Steps }

// AtomsPerStep returns the number of atoms per time step.
func (s *Store) AtomsPerStep() int { return s.cfg.Space.AtomsPerStep() }

// Field exposes the underlying synthetic field (ground truth for tests and
// for the example applications' correctness checks).
func (s *Store) Field() *field.Field { return s.field }

// Contains reports whether the atom exists in this store's partition.
func (s *Store) Contains(id AtomID) bool {
	_, ok := s.index.Get(id.Key())
	return ok
}

// Read fetches an atom from "disk": it walks the clustered index, charges
// the disk array for the transfer, and materializes the samples. The
// returned duration is the simulated I/O cost to charge to the virtual
// clock.
func (s *Store) Read(id AtomID) (*field.Atom, time.Duration, error) {
	meta, ok := s.index.Get(id.Key())
	if !ok {
		return nil, 0, fmt.Errorf("store: atom %v not in this partition", id)
	}
	cost, err := s.array.ReadChecked(meta.addr, meta.size)
	if err != nil {
		// cost is the failure-detection latency; the engine charges it to
		// the virtual clock before retrying or aborting.
		return nil, cost, fmt.Errorf("store: atom %v: %w", id, err)
	}
	a := s.field.SampleGhost(id.Step, s.cfg.Space, geom.AtomFromCode(id.Code), s.cfg.SampleSide, s.cfg.SampleGhost)
	return a, cost, nil
}

// SetFault installs (or, with nil, removes) a fault hook on the
// underlying disk array: it is consulted before every read and may inject
// an error or extra latency. See internal/fault for the deterministic
// injector that normally backs it.
func (s *Store) SetFault(fn func(addr, size int64) (time.Duration, error)) {
	s.array.SetFault(fn)
}

// ScanStep calls fn for every atom of the given step in Morton order.
func (s *Store) ScanStep(step int, fn func(id AtomID) bool) {
	lo := AtomID{Step: step, Code: 0}.Key()
	hi := AtomID{Step: step + 1, Code: 0}.Key()
	s.index.Scan(lo, hi, func(k uint64, _ blockMeta) bool {
		return fn(AtomID{Step: int(k >> 40), Code: morton.Code(k & (1<<40 - 1))})
	})
}

// SetIOObserver registers fn on the underlying disk array: it is called
// after every read with the extent, whether the read continued a
// sequential run, and the charged virtual-time cost. nil disables it.
func (s *Store) SetIOObserver(fn func(addr, size int64, seq bool, cost time.Duration)) {
	s.array.SetObserver(fn)
}

// DiskStats returns a snapshot of the disk array's counters.
func (s *Store) DiskStats() disk.Stats { return s.array.Snapshot() }

// ResetDiskStats clears the disk counters between experiment phases.
func (s *Store) ResetDiskStats() { s.array.ResetStats() }
