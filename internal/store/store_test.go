package store

import (
	"testing"

	"jaws/internal/geom"
	"jaws/internal/morton"
)

func testConfig() Config {
	return Config{
		Space:      geom.Space{GridSide: 128, AtomSide: 32}, // 4³ = 64 atoms/step
		Steps:      4,
		SampleSide: 4,
		Seed:       1,
	}
}

func TestOpenValidation(t *testing.T) {
	bad := testConfig()
	bad.Steps = 0
	if _, err := Open(bad); err == nil {
		t.Fatal("zero steps accepted")
	}
	bad = testConfig()
	bad.Space = geom.Space{GridSide: 100, AtomSide: 32}
	if _, err := Open(bad); err == nil {
		t.Fatal("invalid space accepted")
	}
}

func TestOpenDefaults(t *testing.T) {
	cfg := testConfig()
	cfg.SampleSide = 0
	cfg.Disks = 0
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := s.Read(AtomID{Step: 0, Code: 0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Side != 8 {
		t.Fatalf("default sample side = %d, want 8", a.Side)
	}
}

func TestReadKnownAtom(t *testing.T) {
	s, err := Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	id := AtomID{Step: 2, Code: morton.Encode(1, 2, 3)}
	a, cost, err := s.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if a == nil || len(a.Data) == 0 {
		t.Fatal("empty atom data")
	}
	if cost <= 0 {
		t.Fatalf("read cost = %v, want positive", cost)
	}
}

func TestReadMissingAtom(t *testing.T) {
	s, _ := Open(testConfig())
	if _, _, err := s.Read(AtomID{Step: 99, Code: 0}); err == nil {
		t.Fatal("read of missing step succeeded")
	}
	if _, _, err := s.Read(AtomID{Step: 0, Code: morton.Code(1 << 30)}); err == nil {
		t.Fatal("read of out-of-grid atom succeeded")
	}
}

func TestContains(t *testing.T) {
	s, _ := Open(testConfig())
	if !s.Contains(AtomID{Step: 0, Code: 0}) {
		t.Fatal("first atom missing")
	}
	if !s.Contains(AtomID{Step: 3, Code: morton.Code(63)}) {
		t.Fatal("last atom missing")
	}
	if s.Contains(AtomID{Step: 4, Code: 0}) {
		t.Fatal("phantom step present")
	}
	if s.Contains(AtomID{Step: 0, Code: morton.Code(64)}) {
		t.Fatal("phantom atom present")
	}
}

func TestReadDeterministic(t *testing.T) {
	s1, _ := Open(testConfig())
	s2, _ := Open(testConfig())
	id := AtomID{Step: 1, Code: morton.Encode(2, 0, 1)}
	a1, _, _ := s1.Read(id)
	a2, _, _ := s2.Read(id)
	for i := range a1.Data {
		if a1.Data[i] != a2.Data[i] {
			t.Fatalf("atom data not deterministic at %d", i)
		}
	}
}

func TestScanStepMortonOrder(t *testing.T) {
	s, _ := Open(testConfig())
	var ids []AtomID
	s.ScanStep(1, func(id AtomID) bool { ids = append(ids, id); return true })
	if len(ids) != 64 {
		t.Fatalf("step scan returned %d atoms, want 64", len(ids))
	}
	for i, id := range ids {
		if id.Step != 1 {
			t.Fatalf("scan leaked step %d", id.Step)
		}
		if int(id.Code) != i {
			t.Fatalf("scan out of Morton order at %d: code %d", i, id.Code)
		}
	}
}

func TestScanStepEarlyStop(t *testing.T) {
	s, _ := Open(testConfig())
	n := 0
	s.ScanStep(0, func(AtomID) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestSequentialStepScanIsCheaper(t *testing.T) {
	// Reading a whole step in Morton order should cost less than reading
	// the same atoms in a scattered order, thanks to sequential-run
	// detection in the disk model. This is the physical basis for
	// Morton-sorted batch execution.
	seq, _ := Open(testConfig())
	var seqCost, scatterCost int64
	for c := 0; c < 64; c++ {
		_, d, err := seq.Read(AtomID{Step: 0, Code: morton.Code(c)})
		if err != nil {
			t.Fatal(err)
		}
		seqCost += int64(d)
	}
	scatter, _ := Open(testConfig())
	// Stride pattern that never continues a run.
	for i := 0; i < 64; i++ {
		c := (i * 37) % 64
		_, d, err := scatter.Read(AtomID{Step: 0, Code: morton.Code(c)})
		if err != nil {
			t.Fatal(err)
		}
		scatterCost += int64(d)
	}
	if seqCost >= scatterCost {
		t.Fatalf("Morton scan (%d) not cheaper than scattered (%d)", seqCost, scatterCost)
	}
}

func TestDiskStats(t *testing.T) {
	s, _ := Open(testConfig())
	s.Read(AtomID{Step: 0, Code: 0})
	s.Read(AtomID{Step: 0, Code: 1})
	st := s.DiskStats()
	if st.Reads != 2 {
		t.Fatalf("Reads = %d, want 2", st.Reads)
	}
	s.ResetDiskStats()
	if st := s.DiskStats(); st.Reads != 0 {
		t.Fatalf("reset left %+v", st)
	}
}

func TestAtomIDKeyOrdering(t *testing.T) {
	// Keys must order by step first, then Morton code.
	a := AtomID{Step: 1, Code: morton.Code(1000)}
	b := AtomID{Step: 2, Code: 0}
	if a.Key() >= b.Key() {
		t.Fatal("key ordering broken across steps")
	}
	c := AtomID{Step: 1, Code: morton.Code(999)}
	if c.Key() >= a.Key() {
		t.Fatal("key ordering broken within step")
	}
}

func TestAtomIDString(t *testing.T) {
	if (AtomID{Step: 3, Code: morton.Encode(1, 2, 3)}).String() == "" {
		t.Fatal("empty String")
	}
}

func TestAccessors(t *testing.T) {
	s, _ := Open(testConfig())
	if s.Steps() != 4 {
		t.Fatalf("Steps = %d", s.Steps())
	}
	if s.AtomsPerStep() != 64 {
		t.Fatalf("AtomsPerStep = %d", s.AtomsPerStep())
	}
	if s.Field() == nil {
		t.Fatal("nil field")
	}
	if s.Space() != (geom.Space{GridSide: 128, AtomSide: 32}) {
		t.Fatalf("Space = %+v", s.Space())
	}
}

func BenchmarkReadAtom(b *testing.B) {
	s, _ := Open(testConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Read(AtomID{Step: i % 4, Code: morton.Code(i % 64)})
	}
}
