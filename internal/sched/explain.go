package sched

import (
	"time"

	"jaws/internal/obs"
)

// Explain is the decision capture a scheduler fills during NextBatch
// when explanation is on: the raw material of one obs.DecisionRecord.
// The engine reads it through Explained immediately after the decision
// and moves the slices into a fresh record, so every enabled round
// builds fresh slices (reset nils them) and the disabled path costs one
// branch per capture site — the zero-alloc invariant pinned by
// TestDecisionPathZeroAllocs.
type Explain struct {
	Sched string
	Alpha float64
	// Urgent marks a QoS earliest-deadline-first round.
	Urgent bool
	// WinnerStep is the chosen bucket's step (-1 when the scheduler has
	// no step level).
	WinnerStep int
	// PendingAtoms / PendingSubs are the queue depths before the pick.
	PendingAtoms int
	PendingSubs  int
	// Steps are the candidate steps, ascending; Chosen the batched atoms
	// in execution order; Truncated the above-mean victims of the batch
	// bound.
	Steps     []obs.DecisionStep
	Chosen    []obs.DecisionAtom
	Truncated []obs.DecisionAtom
}

// reset prepares the capture for one decision round. The slices are
// nil-ed, not truncated: the previous round's arrays now belong to the
// record the engine built from them.
func (e *Explain) reset(sched string, alpha float64, pendingAtoms, pendingSubs int) {
	e.Sched = sched
	e.Alpha = alpha
	e.Urgent = false
	e.WinnerStep = -1
	e.PendingAtoms = pendingAtoms
	e.PendingSubs = pendingSubs
	e.Steps, e.Chosen, e.Truncated = nil, nil, nil
}

// captureStep records one candidate step bucket with its mean metrics.
func (e *Explain) captureStep(q *queues, b *stepBucket, alpha float64, now time.Duration) {
	n := len(b.atoms)
	if n == 0 {
		return
	}
	e.Steps = append(e.Steps, obs.DecisionStep{
		Step:   b.step,
		Atoms:  n,
		MeanUt: q.stepUtSum(b) / float64(n),
		MeanUe: q.stepMeanUeBucket(b, alpha, now),
	})
}

// captureAtom records one involved atom with its utility components and
// the queries riding it. ue is the already-computed Eq. 2 score.
func (e *Explain) captureAtom(dst *[]obs.DecisionAtom, q *queues, aq *atomQueue, ue float64, now time.Duration) {
	a := obs.DecisionAtom{
		Step:  aq.id.Step,
		Code:  uint64(aq.id.Code),
		Ut:    q.ut(aq),
		Ue:    ue,
		AgeMS: float64(now-aq.oldest) / float64(time.Millisecond),
		Subs:  len(aq.subs),
	}
	a.Queries = make([]int64, 0, len(aq.subs))
	for _, sq := range aq.subs {
		a.Queries = append(a.Queries, int64(sq.Query.ID))
	}
	*dst = append(*dst, a)
}

// Explained is implemented by schedulers that can capture a per-decision
// Explain. The engine flips capture on when a flight recorder is
// configured and reads the capture right after each NextBatch; the
// returned pointer stays owned by the scheduler, but the slices inside
// are fresh each round and may be adopted by the reader.
type Explained interface {
	// SetExplain enables or disables decision capture.
	SetExplain(on bool)
	// LastExplain returns the capture of the most recent NextBatch (nil
	// when capture is off). Valid only until the next NextBatch call.
	LastExplain() *Explain
}
