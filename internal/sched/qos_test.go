package sched

import (
	"testing"
	"time"

	"jaws/internal/query"
)

func newQoSForTest(stretch float64, horizon time.Duration) *QoS {
	inner := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 4, InitialAlpha: 0})
	return NewQoS(inner, testCost, stretch, horizon)
}

func TestQoSDefaults(t *testing.T) {
	q := newQoSForTest(0, 0)
	if q.stretch != 8 || q.horizon != 2*time.Second {
		t.Fatalf("defaults: stretch=%g horizon=%v", q.stretch, q.horizon)
	}
	if q.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestQoSFallsThroughToJAWS(t *testing.T) {
	// With every deadline far away, QoS must behave exactly like JAWS:
	// pick the contended atom first.
	q := newQoSForTest(1000, time.Millisecond)
	q.Enqueue(subQueryAt(1, 0, 0, 0, 0, 5), 0)
	q.Enqueue(subQueryAt(2, 0, 1, 0, 0, 800), 0)
	q.Enqueue(subQueryAt(3, 0, 1, 0, 0, 800), 0)
	batches := q.NextBatch(time.Millisecond)
	if len(batches) == 0 {
		t.Fatal("no batches")
	}
	found := false
	for _, b := range batches {
		for _, sq := range b.SubQueries {
			if sq.Query.ID == 2 || sq.Query.ID == 3 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("contended atom not served in the contention regime")
	}
}

func TestQoSServesUrgentFirst(t *testing.T) {
	// A tiny old query with a tight deadline must preempt a huge
	// contended queue once its deadline enters the horizon.
	q := newQoSForTest(1, 500*time.Millisecond) // deadline ≈ arrival + service
	small := subQueryAt(1, 0, 0, 0, 0, 2)
	small.Query.Arrival = 0
	q.Enqueue(small, 0)
	big1 := subQueryAt(2, 0, 1, 0, 0, 5000)
	big1.Query.Arrival = 10 * time.Second
	q.Enqueue(big1, 10*time.Second)
	big2 := subQueryAt(3, 0, 1, 0, 0, 5000)
	big2.Query.Arrival = 10 * time.Second
	q.Enqueue(big2, 10*time.Second)

	batches := q.NextBatch(10 * time.Second)
	if len(batches) == 0 {
		t.Fatal("no batches")
	}
	if batches[0].SubQueries[0].Query.ID != 1 {
		t.Fatalf("urgent query not served first: got query %d", batches[0].SubQueries[0].Query.ID)
	}
}

func TestQoSCountsDeadlineMisses(t *testing.T) {
	q := newQoSForTest(1, time.Millisecond)
	sq := subQueryAt(1, 0, 0, 0, 0, 2)
	sq.Query.Arrival = 0
	q.Enqueue(sq, 0)
	// Serve it absurdly late: the deadline (≈ tens of ms) is long gone.
	q.NextBatch(time.Hour)
	if q.DeadlineMisses() != 1 {
		t.Fatalf("DeadlineMisses = %d, want 1", q.DeadlineMisses())
	}
}

func TestQoSDrainsEverything(t *testing.T) {
	q := newQoSForTest(4, 200*time.Millisecond)
	total := 0
	for step := 0; step < 2; step++ {
		for i := uint32(0); i < 4; i++ {
			sq := subQueryAt(query.ID(step*100+int(i)+1), step, i, 0, 0, 20+int(i)*30)
			sq.Query.Arrival = time.Duration(i) * 10 * time.Millisecond
			q.Enqueue(sq, sq.Query.Arrival)
			total++
		}
	}
	served := 0
	now := time.Duration(0)
	for rounds := 0; q.Pending() > 0; rounds++ {
		for _, b := range q.NextBatch(now) {
			served += len(b.SubQueries)
		}
		now += 100 * time.Millisecond
		if rounds > 1000 {
			t.Fatal("drain did not terminate")
		}
	}
	if served != total {
		t.Fatalf("served %d, want %d", served, total)
	}
}

func TestQoSUtilityProvider(t *testing.T) {
	q := newQoSForTest(8, time.Second)
	sq := subQueryAt(1, 3, 0, 0, 0, 50)
	q.Enqueue(sq, 0)
	if q.AtomUtility(sq.Atom) <= 0 {
		t.Fatal("no utility for pending atom")
	}
	if q.StepMean(3) <= 0 {
		t.Fatal("no step mean")
	}
	if steps := q.PendingSteps(); len(steps) != 1 || steps[0] != 3 {
		t.Fatalf("PendingSteps = %v", steps)
	}
	if q.Alpha() != 0 {
		t.Fatalf("Alpha = %g", q.Alpha())
	}
	q.OnRunEnd(1, 1) // must not panic
}
