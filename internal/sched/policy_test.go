package sched

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"jaws/internal/query"
	"jaws/internal/store"
)

// --- spec grammar ---------------------------------------------------------

func TestParsePolicySpec(t *testing.T) {
	cases := []struct {
		in   string
		want PolicySpec
	}{
		{"", PolicySpec{}},
		{";;", PolicySpec{}},
		{"gate-aware", PolicySpec{GateAware: &GateAwareParams{Discount: 0.25, Boost: 2}}},
		{"gate-aware:discount=0.5", PolicySpec{GateAware: &GateAwareParams{Discount: 0.5, Boost: 2}}},
		{"gate-aware:boost=3,discount=1", PolicySpec{GateAware: &GateAwareParams{Discount: 1, Boost: 3}}},
		{"cross-step", PolicySpec{CrossStep: &CrossStepParams{Span: 2}}},
		{"cross-step:span=8", PolicySpec{CrossStep: &CrossStepParams{Span: 8}}},
		{"adaptive-batch", PolicySpec{AdaptiveBatch: &AdaptiveBatchParams{Min: 4, Max: 32, Grow: 2, Shrink: 1, Full: 2, Idle: 8}}},
		{"adaptive-batch:min=1,max=4,grow=1,shrink=2,full=3,idle=5",
			PolicySpec{AdaptiveBatch: &AdaptiveBatchParams{Min: 1, Max: 4, Grow: 1, Shrink: 2, Full: 3, Idle: 5}}},
		// Clause order is irrelevant; whitespace is trimmed.
		{" adaptive-batch ; gate-aware : discount = 0.5 , boost = 4 ",
			PolicySpec{
				GateAware:     &GateAwareParams{Discount: 0.5, Boost: 4},
				AdaptiveBatch: &AdaptiveBatchParams{Min: 4, Max: 32, Grow: 2, Shrink: 1, Full: 2, Idle: 8},
			}},
	}
	for _, tc := range cases {
		got, err := ParsePolicySpec(tc.in)
		if err != nil {
			t.Errorf("ParsePolicySpec(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParsePolicySpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// Canonical rendering must parse back to the identical spec.
		again, err := ParsePolicySpec(got.String())
		if err != nil {
			t.Errorf("reparse of %q's rendering %q: %v", tc.in, got.String(), err)
			continue
		}
		if !reflect.DeepEqual(got, again) {
			t.Errorf("%q round trip changed: %+v -> %q -> %+v", tc.in, got, got.String(), again)
		}
	}
}

func TestParsePolicySpecErrors(t *testing.T) {
	bad := []string{
		"nope",
		"gate-aware:discount=0",      // out of (0, 1]
		"gate-aware:discount=1.5",    // out of (0, 1]
		"gate-aware:boost=0.5",       // < 1
		"gate-aware:boost=1e7",       // > 1e6
		"gate-aware:discount=x",      // not a number
		"gate-aware:frob=1",          // unknown parameter
		"gate-aware;gate-aware",      // duplicate clause
		"cross-step:span=0",          // < 1
		"cross-step:span=9",          // > 8
		"adaptive-batch:min=0",       // < 1
		"adaptive-batch:min=8,max=4", // max < min
		"adaptive-batch:max=2048",    // > 1024
		"adaptive-batch:grow=0",
		"adaptive-batch:shrink=0",
		"adaptive-batch:full=0",
		"adaptive-batch:idle=0",
		"adaptive-batch:min=4,min=4", // duplicate parameter
		"gate-aware:discount",        // not key=value
		"gate-aware:,",               // empty parameter
	}
	for _, in := range bad {
		if spec, err := ParsePolicySpec(in); err == nil {
			t.Errorf("ParsePolicySpec(%q) = %+v, want error", in, spec)
		}
	}
}

func TestPolicySpecEmpty(t *testing.T) {
	if !(PolicySpec{}).Empty() {
		t.Error("zero spec is not Empty")
	}
	if (PolicySpec{CrossStep: &CrossStepParams{Span: 2}}).Empty() {
		t.Error("cross-step spec reports Empty")
	}
	if got := (PolicySpec{}).String(); got != "" {
		t.Errorf("empty spec renders %q, want \"\"", got)
	}
}

// --- composition ----------------------------------------------------------

func TestWrapComposition(t *testing.T) {
	build := func() *JAWS {
		return NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 3, Resident: func(id store.AtomID) bool { return false }})
	}
	inner := build()
	if got := (PolicySpec{}).Wrap(inner); got != Scheduler(inner) {
		t.Errorf("empty spec wrapped: %T", got)
	}

	cases := []struct {
		spec PolicySpec
		typ  string
		name string
	}{
		{PolicySpec{GateAware: &GateAwareParams{Discount: 0.25, Boost: 2}}, "*sched.TailJAWS", "JAWS+gate-aware"},
		{PolicySpec{CrossStep: &CrossStepParams{Span: 2}}, "*sched.TailJAWS", "JAWS+cross-step"},
		{PolicySpec{AdaptiveBatch: &AdaptiveBatchParams{Min: 1, Max: 4, Grow: 1, Shrink: 1, Full: 1, Idle: 1}},
			"*sched.AdaptiveBatch", "JAWS+adaptive-batch"},
		{PolicySpec{
			GateAware:     &GateAwareParams{Discount: 0.25, Boost: 2},
			CrossStep:     &CrossStepParams{Span: 2},
			AdaptiveBatch: &AdaptiveBatchParams{Min: 1, Max: 4, Grow: 1, Shrink: 1, Full: 1, Idle: 1},
		}, "*sched.AdaptiveBatch", "JAWS+gate-aware+cross-step+adaptive-batch"},
	}
	for _, tc := range cases {
		s := tc.spec.Wrap(build())
		if got := reflect.TypeOf(s).String(); got != tc.typ {
			t.Errorf("%q wraps to %s, want %s", tc.spec, got, tc.typ)
		}
		if s.Name() != tc.name {
			t.Errorf("%q names %q, want %q", tc.spec, s.Name(), tc.name)
		}
		// Every decorated stack remains gate-aware pluggable.
		if _, ok := s.(GateAware); !ok {
			t.Errorf("%q: wrapped scheduler does not implement GateAware", tc.spec)
		}
	}
}

// --- TailJAWS decision rules ---------------------------------------------

// policyWorkload spreads contention over three steps and four atoms per
// step, with second sub-queries on two atoms.
func policyWorkload(base query.ID) []*query.SubQuery {
	var sqs []*query.SubQuery
	qid := base
	for step := 0; step < 3; step++ {
		for a := uint32(0); a < 4; a++ {
			sqs = append(sqs, subQueryAt(qid, step, a, 0, 0, 10+int(a)*25))
			qid++
		}
	}
	sqs = append(sqs, subQueryAt(qid, 1, 2, 0, 0, 40))
	qid++
	sqs = append(sqs, subQueryAt(qid, 2, 3, 0, 0, 15))
	return sqs
}

// describeDecision flattens a decision into a comparable string.
func describeDecision(batches []Batch) string {
	out := ""
	for _, b := range batches {
		out += b.Atom.String() + "["
		for _, sq := range b.SubQueries {
			out += fmt.Sprintf("%d ", sq.Query.ID)
		}
		out += "] "
	}
	return out
}

// TestTailJAWSSpan1EquivalentToJAWS pins the degenerate case: a TailJAWS
// with span 1 and no gate source must decide bit-identically to the bare
// JAWS it wraps — the gate factor ×1.0 is IEEE-exact and the accumulation
// order is unchanged, so any drift here is a selection-rule bug.
func TestTailJAWSSpan1EquivalentToJAWS(t *testing.T) {
	build := func() *JAWS {
		return NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 2, InitialAlpha: 0.5, Adaptive: true,
			Resident: func(id store.AtomID) bool { return id.Step == 0 }})
	}
	plain := build()
	tail := newTailJAWS(build(), nil, &CrossStepParams{Span: 1})

	for round := 0; round < 3; round++ {
		for _, sq := range policyWorkload(query.ID(1 + round*100)) {
			plain.Enqueue(sq, 0)
		}
		for _, sq := range policyWorkload(query.ID(1 + round*100)) {
			tail.Enqueue(sq, 0)
		}
		now := time.Duration(round) * time.Second
		for plain.Pending() > 0 || tail.Pending() > 0 {
			a := describeDecision(plain.NextBatch(now))
			b := describeDecision(tail.NextBatch(now))
			if a != b {
				t.Fatalf("round %d @%v: decisions diverge:\n JAWS: %s\n tail: %s", round, now, a, b)
			}
			now += 50 * time.Millisecond
		}
		plain.OnRunEnd(1.5, 2.0)
		tail.OnRunEnd(1.5, 2.0)
		if pa, ta := plain.Alpha(), tail.Alpha(); pa != ta {
			t.Fatalf("round %d: alpha diverged: %g vs %g", round, pa, ta)
		}
	}
}

// TestGateFactorSteering checks the admission-order rules end to end: a
// boosted (gate-releasing) atom wins the decision it would otherwise lose,
// and a discounted (all-blocked) atom loses the decision it would
// otherwise win.
func TestGateFactorSteering(t *testing.T) {
	build := func(fn func(query.ID) GateState) *TailJAWS {
		inner := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 1,
			Resident: func(id store.AtomID) bool { return false }})
		s := newTailJAWS(inner, &GateAwareParams{Discount: 0.25, Boost: 4}, nil)
		s.SetGateSource(fn)
		return s
	}
	// Two atoms on one step: atomB carries the heavier workload (two
	// sub-queries), so undecorated JAWS serves it first.
	atomA := subQueryAt(1, 0, 0, 0, 0, 30).Atom
	atomB := subQueryAt(2, 0, 1, 0, 0, 30).Atom
	load := func(s *TailJAWS) {
		s.Enqueue(subQueryAt(1, 0, 0, 0, 0, 30), 0) // atomA: query 1
		s.Enqueue(subQueryAt(2, 0, 1, 0, 0, 30), 0) // atomB: queries 2, 3
		s.Enqueue(subQueryAt(3, 0, 1, 0, 0, 30), 0)
	}

	free := build(func(q query.ID) GateState { return GateFree })
	load(free)
	if got := free.NextBatch(0); len(got) != 1 || got[0].Atom != atomB {
		t.Fatalf("gate-free baseline served %v, want the contended atom %v", got, atomB)
	}

	// Boost: query 1's completion releases a successor; its atom must now
	// win the race despite the lighter workload.
	boost := build(func(q query.ID) GateState {
		if q == 1 {
			return GateReleasing
		}
		return GateFree
	})
	load(boost)
	if got := boost.NextBatch(0); len(got) != 1 || got[0].Atom != atomA {
		t.Fatalf("boosted atom lost the decision: %v", got)
	}

	// Discount: both of atomB's queries are blocked upstream; the free
	// atom must win even against the heavier workload.
	disc := build(func(q query.ID) GateState {
		if q == 2 || q == 3 {
			return GateBlocked
		}
		return GateFree
	})
	load(disc)
	if got := disc.NextBatch(0); len(got) != 1 || got[0].Atom != atomA {
		t.Fatalf("discounted atom still won the decision: %v", got)
	}

	// Mixed: one blocked + one free query on the atom is NOT all-blocked;
	// no discount applies and the contended atom wins as in the baseline.
	mixed := build(func(q query.ID) GateState {
		if q == 2 {
			return GateBlocked
		}
		return GateFree
	})
	load(mixed)
	if got := mixed.NextBatch(0); len(got) != 1 || got[0].Atom != atomB {
		t.Fatalf("half-blocked atom was discounted: %v", got)
	}
}

// TestCrossStepWindow checks that a span-2 window coalesces adjacent step
// buckets into one decision when the contiguous pair outscores any single
// bucket, and that non-adjacent steps never join a window.
func TestCrossStepWindow(t *testing.T) {
	build := func(span int) *TailJAWS {
		inner := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 8,
			Resident: func(id store.AtomID) bool { return false }})
		return newTailJAWS(inner, nil, &CrossStepParams{Span: span})
	}
	// A derivative-chain shape: query 1 fans heavy sub-queries over steps
	// 0 and 1, a light unrelated query sits on step 1, and a weak
	// straggler on the non-adjacent step 3. The anchor is step 0 (the
	// highest bucket mean), step 1 shares query 1 with it, so the span-2
	// window serves the whole chain in one decision: both heavy atoms
	// exceed the window mean, the light atom does not.
	load := func(s *TailJAWS) {
		s.Enqueue(subQueryAt(1, 0, 0, 0, 0, 100), 0)
		s.Enqueue(subQueryAt(1, 1, 0, 0, 0, 100), 0)
		s.Enqueue(subQueryAt(3, 1, 1, 0, 0, 10), 0)
		s.Enqueue(subQueryAt(2, 3, 2, 0, 0, 5), 0)
	}

	s := build(2)
	load(s)
	got := s.NextBatch(0)
	steps := map[int]bool{}
	for _, b := range got {
		steps[b.Atom.Step] = true
	}
	if !steps[0] || !steps[1] {
		t.Fatalf("span-2 window served steps %v, want both chain steps {0, 1}", steps)
	}
	if steps[3] {
		t.Fatalf("non-adjacent step 3 joined the window: %v", got)
	}
	if len(got) != 2 {
		t.Fatalf("span-2 decision served %d atoms, want the 2 chain atoms", len(got))
	}

	// Span 1 serves the chain one step per decision.
	s1 := build(1)
	load(s1)
	if got := s1.NextBatch(0); len(got) != 1 || got[0].Atom.Step != 0 {
		t.Fatalf("span-1 decision = %v, want the single step-0 chain atom", got)
	}

	// An adjacent bucket with no query in common gains nothing from
	// co-scheduling: the window stays at the anchor.
	s2 := build(2)
	s2.Enqueue(subQueryAt(1, 0, 0, 0, 0, 100), 0)
	s2.Enqueue(subQueryAt(4, 1, 1, 0, 0, 100), 0)
	s2.Enqueue(subQueryAt(3, 1, 2, 0, 0, 10), 0)
	if got := s2.NextBatch(0); len(got) != 1 || got[0].Atom.Step != 0 {
		t.Fatalf("unshared adjacent step joined the window: %v", got)
	}
}

// --- AdaptiveBatch behavior ----------------------------------------------

func TestAdaptiveBatchResizing(t *testing.T) {
	inner := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 1,
		Resident: func(id store.AtomID) bool { return false }})
	// Idle is large so the growth phase is not undone by the fitting
	// rounds at the tail of each drain.
	s := newAdaptiveBatch(inner, AdaptiveBatchParams{Min: 1, Max: 3, Grow: 1, Shrink: 1, Full: 1, Idle: 100})
	if got := s.BatchSize(); got != 1 {
		t.Fatalf("initial k = %d, want 1 (clamped into [1, 3])", got)
	}

	// Sustained truncation pressure: seven heavy atoms and one light one on
	// a single step, so every early decision has far more above-mean
	// candidates than k and drops the rest — k must climb to Max.
	for i := 0; i < 3; i++ {
		qid := query.ID(1 + i*10)
		for a := uint32(0); a < 7; a++ {
			s.Enqueue(subQueryAt(qid, 0, a, 0, 0, 100), 0)
			qid++
		}
		s.Enqueue(subQueryAt(qid, 0, 7, 0, 0, 10), 0)
		now := time.Duration(i) * time.Second
		for s.Pending() > 0 {
			s.NextBatch(now)
			now += 50 * time.Millisecond
		}
	}
	if got := s.BatchSize(); got != 3 {
		t.Errorf("k after sustained truncation = %d, want Max = 3", got)
	}
	grows, _ := s.Resizes()
	if grows == 0 {
		t.Error("no grow resizes under sustained truncation")
	}
	if s.PassOvers() == 0 {
		t.Error("PassOvers() = 0 under sustained truncation")
	}

	// Empty rounds leave the streaks and k untouched.
	before := s.BatchSize()
	for i := 0; i < 20; i++ {
		if got := s.NextBatch(0); len(got) != 0 {
			t.Fatalf("empty round returned %d batches", len(got))
		}
	}
	if got := s.BatchSize(); got != before {
		t.Errorf("empty rounds moved k: %d -> %d", before, got)
	}
}

func TestAdaptiveBatchShrinks(t *testing.T) {
	inner := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 3,
		Resident: func(id store.AtomID) bool { return false }})
	s := newAdaptiveBatch(inner, AdaptiveBatchParams{Min: 1, Max: 3, Grow: 1, Shrink: 1, Full: 1, Idle: 2})
	if got := s.BatchSize(); got != 3 {
		t.Fatalf("initial k = %d, want 3", got)
	}
	// One atom per round always fits: every Idle (= 2) consecutive fitting
	// rounds shave Shrink off k until it rests at Min.
	for i := 0; i < 8; i++ {
		s.Enqueue(subQueryAt(query.ID(1000+i), 0, 0, 0, 0, 10), 0)
		if got := s.NextBatch(time.Duration(i) * time.Second); len(got) != 1 {
			t.Fatalf("fitting round served %d batches", len(got))
		}
	}
	if got := s.BatchSize(); got != 1 {
		t.Errorf("k after fitting rounds = %d, want Min = 1", got)
	}
	if _, shrinks := s.Resizes(); shrinks < 2 {
		t.Errorf("shrinks = %d, want ≥ 2 (3 -> 2 -> 1)", shrinks)
	}
}

func TestAdaptiveBatchClampsInitialK(t *testing.T) {
	inner := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 100,
		Resident: func(id store.AtomID) bool { return false }})
	s := newAdaptiveBatch(inner, AdaptiveBatchParams{Min: 2, Max: 8, Grow: 1, Shrink: 1, Full: 1, Idle: 1})
	if got := s.BatchSize(); got != 8 {
		t.Errorf("k = %d, want clamped to Max = 8", got)
	}
	inner2 := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 1,
		Resident: func(id store.AtomID) bool { return false }})
	s2 := newAdaptiveBatch(inner2, AdaptiveBatchParams{Min: 4, Max: 8, Grow: 1, Shrink: 1, Full: 1, Idle: 1})
	if got := s2.BatchSize(); got != 4 {
		t.Errorf("k = %d, want clamped to Min = 4", got)
	}
}

// --- fuzz ------------------------------------------------------------------

// FuzzParsePolicySpec mirrors internal/fault's FuzzParseSpec: any accepted
// input must render canonically, the rendering must reparse to the
// identical spec, and accepted parameters must satisfy the documented
// ranges.
func FuzzParsePolicySpec(f *testing.F) {
	f.Add("")
	f.Add("gate-aware")
	f.Add("adaptive-batch:min=4,max=32")
	f.Add("gate-aware:discount=0.5,boost=3;cross-step:span=2;adaptive-batch:min=2,max=5")
	f.Add("cross-step:span=9")
	f.Add("gate-aware:discount=;;cross-step::")
	f.Add(" adaptive-batch : idle = 3 , full = 1 ")
	f.Add("adaptive-batch:min=4,min=4")

	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParsePolicySpec(s)
		if err != nil {
			return
		}
		again, err := ParsePolicySpec(spec.String())
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", s, spec.String(), err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("round trip changed spec: %q -> %+v -> %q -> %+v", s, spec, spec.String(), again)
		}
		if p := spec.GateAware; p != nil {
			if !(p.Discount > 0 && p.Discount <= 1) || math.IsNaN(p.Discount) {
				t.Fatalf("accepted out-of-range discount %g in %q", p.Discount, s)
			}
			if !(p.Boost >= 1 && p.Boost <= 1e6) {
				t.Fatalf("accepted out-of-range boost %g in %q", p.Boost, s)
			}
		}
		if p := spec.CrossStep; p != nil && (p.Span < 1 || p.Span > 8) {
			t.Fatalf("accepted out-of-range span %d in %q", p.Span, s)
		}
		if p := spec.AdaptiveBatch; p != nil {
			if p.Min < 1 || p.Max < p.Min || p.Max > 1024 || p.Grow < 1 || p.Shrink < 1 || p.Full < 1 || p.Idle < 1 {
				t.Fatalf("accepted out-of-range adaptive-batch %+v in %q", p, s)
			}
		}
	})
}
