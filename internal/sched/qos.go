package sched

import (
	"sort"
	"time"

	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/store"
)

// QoS implements the quality-of-service direction sketched in the paper's
// discussion (§VII): "predictable and fair completion time guarantees
// that are proportional to query size (e.g. short queries are delayed
// less than long queries). We observe that even with real-time
// constraints that bound the completion time of queries, there is still
// elasticity in the workload that permits the reordering of queries to
// exploit data sharing."
//
// Each query receives a deadline proportional to its estimated service
// time: deadline = arrival + Stretch × (atoms·T_b + positions·T_m). The
// scheduler exploits the elasticity before deadlines bind — it defers to
// an inner JAWS instance for contention-ordered batching — but whenever a
// pending sub-query's deadline falls within the look-ahead horizon, the
// atoms those urgent sub-queries need are scheduled first, earliest
// deadline first.
type QoS struct {
	inner *JAWS
	cost  CostModel
	// stretch is the proportionality factor between a query's isolated
	// service-time estimate and its completion-time bound.
	stretch float64
	// horizon is how far ahead of a deadline the scheduler starts
	// treating its sub-queries as urgent.
	horizon time.Duration

	deadlines map[query.ID]time.Duration
	pendingBy map[store.AtomID]map[query.ID]bool
	// pendingCnt counts how many atom queues still hold sub-queries of
	// each query, so a deadline verdict is delivered exactly once, when
	// the query's last atom is served.
	pendingCnt map[query.ID]int

	missed int
	met    int
}

// NewQoS wraps a JAWS scheduler with proportional completion-time
// guarantees. stretch ≤ 0 defaults to 8 (a query may take 8× its isolated
// service time); horizon ≤ 0 defaults to 2 s of virtual time.
func NewQoS(inner *JAWS, cost CostModel, stretch float64, horizon time.Duration) *QoS {
	if stretch <= 0 {
		stretch = 8
	}
	if horizon <= 0 {
		horizon = 2 * time.Second
	}
	return &QoS{
		inner:      inner,
		cost:       cost,
		stretch:    stretch,
		horizon:    horizon,
		deadlines:  make(map[query.ID]time.Duration),
		pendingBy:  make(map[store.AtomID]map[query.ID]bool),
		pendingCnt: make(map[query.ID]int),
	}
}

// Name implements Scheduler.
func (s *QoS) Name() string { return "JAWS+QoS" }

// estimate returns the isolated service-time estimate of a query from its
// first sub-query's shape: atoms × T_b plus positions × T_m. It is
// intentionally the same back-of-envelope a deployment would compute at
// admission time.
func (s *QoS) estimate(sq *query.SubQuery) time.Duration {
	atoms := 1 + len(sq.Footprint)
	return time.Duration(atoms)*s.cost.Tb +
		time.Duration(float64(len(sq.Query.Points))*sq.Query.Kernel.CostWeight())*s.cost.Tm
}

// Enqueue implements Scheduler.
func (s *QoS) Enqueue(sq *query.SubQuery, now time.Duration) {
	qid := sq.Query.ID
	if _, ok := s.deadlines[qid]; !ok {
		est := s.estimate(sq)
		s.deadlines[qid] = sq.Query.Arrival + time.Duration(s.stretch*float64(est))
	}
	m := s.pendingBy[sq.Atom]
	if m == nil {
		m = make(map[query.ID]bool)
		s.pendingBy[sq.Atom] = m
	}
	if !m[qid] {
		m[qid] = true
		s.pendingCnt[qid]++
	}
	s.inner.Enqueue(sq, now)
}

// NextBatch implements Scheduler: serve urgent atoms (whose pending
// sub-queries have deadlines within the horizon) earliest-deadline-first;
// otherwise fall through to contention-ordered JAWS batching.
func (s *QoS) NextBatch(now time.Duration) []Batch {
	type urgent struct {
		atom     store.AtomID
		deadline time.Duration
	}
	var urgents []urgent
	for atom, qs := range s.pendingBy {
		best := time.Duration(1<<62 - 1)
		for qid := range qs {
			if d := s.deadlines[qid]; d < best {
				best = d
			}
		}
		if best <= now+s.horizon {
			urgents = append(urgents, urgent{atom: atom, deadline: best})
		}
	}
	var batches []Batch
	if len(urgents) > 0 {
		sort.Slice(urgents, func(i, j int) bool {
			if urgents[i].deadline != urgents[j].deadline {
				return urgents[i].deadline < urgents[j].deadline
			}
			return urgents[i].atom.Key() < urgents[j].atom.Key()
		})
		// Take up to the inner batch size of urgent atoms, then execute in
		// Morton order (the data-sharing elasticity the paper notes
		// survives real-time constraints).
		k := s.inner.BatchSize()
		if len(urgents) > k {
			urgents = urgents[:k]
		}
		sort.Slice(urgents, func(i, j int) bool { return urgents[i].atom.Key() < urgents[j].atom.Key() })
		for _, u := range urgents {
			batches = append(batches, s.inner.q.take(u.atom))
		}
	} else {
		batches = s.inner.NextBatch(now)
	}
	// Bookkeeping: retire served sub-queries; the deadline verdict lands
	// once, when a query's final atom is served.
	for _, b := range batches {
		for qid := range s.pendingBy[b.Atom] {
			s.pendingCnt[qid]--
			if s.pendingCnt[qid] > 0 {
				continue
			}
			if now > s.deadlines[qid] {
				s.missed++
			} else {
				s.met++
			}
			delete(s.deadlines, qid)
			delete(s.pendingCnt, qid)
		}
		delete(s.pendingBy, b.Atom)
	}
	return batches
}

// Pending implements Scheduler.
func (s *QoS) Pending() int { return s.inner.Pending() }

// OnRunEnd implements Scheduler.
func (s *QoS) OnRunEnd(rt, tp float64) { s.inner.OnRunEnd(rt, tp) }

// Alpha implements Scheduler.
func (s *QoS) Alpha() float64 { return s.inner.Alpha() }

// DeadlineMisses reports how many queries had their final atom served
// after their completion-time bound.
func (s *QoS) DeadlineMisses() int { return s.missed }

// DeadlinesMet reports how many queries finished within their bound.
func (s *QoS) DeadlinesMet() int { return s.met }

// SetTracer implements Traced by forwarding to the inner JAWS instance,
// so urgent batches taken directly from the inner queues are still traced
// by the fallthrough path's decisions.
func (s *QoS) SetTracer(t *obs.Tracer) { s.inner.SetTracer(t) }

// AtomUtility implements UtilityProvider.
func (s *QoS) AtomUtility(id store.AtomID) float64 { return s.inner.AtomUtility(id) }

// StepMean implements UtilityProvider.
func (s *QoS) StepMean(step int) float64 { return s.inner.StepMean(step) }

// PendingSteps implements UtilityProvider.
func (s *QoS) PendingSteps() []int { return s.inner.PendingSteps() }

var (
	_ Scheduler       = (*QoS)(nil)
	_ UtilityProvider = (*QoS)(nil)
	_ Traced          = (*QoS)(nil)
)
