package sched

import (
	"sort"
	"time"

	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/store"
)

// QoS implements the quality-of-service direction sketched in the paper's
// discussion (§VII): "predictable and fair completion time guarantees
// that are proportional to query size (e.g. short queries are delayed
// less than long queries). We observe that even with real-time
// constraints that bound the completion time of queries, there is still
// elasticity in the workload that permits the reordering of queries to
// exploit data sharing."
//
// Each query receives a deadline proportional to its estimated service
// time: deadline = arrival + Stretch × (atoms·T_b + positions·T_m). The
// scheduler exploits the elasticity before deadlines bind — it defers to
// an inner JAWS instance for contention-ordered batching — but whenever a
// pending sub-query's deadline falls within the look-ahead horizon, the
// atoms those urgent sub-queries need are scheduled first, earliest
// deadline first.
type QoS struct {
	inner *JAWS
	cost  CostModel
	// stretch is the proportionality factor between a query's isolated
	// service-time estimate and its completion-time bound.
	stretch float64
	// horizon is how far ahead of a deadline the scheduler starts
	// treating its sub-queries as urgent.
	horizon time.Duration

	deadlines map[query.ID]time.Duration
	pendingBy map[store.AtomID]map[query.ID]bool
	// pendingCnt counts how many atom queues still hold sub-queries of
	// each query, so a deadline verdict is delivered exactly once, when
	// the query's last atom is served.
	pendingCnt map[query.ID]int

	// Reused decision buffers and the inner-map pool (zero allocations in
	// steady state).
	urgents []qosUrgent
	sorter  qosSorter
	out     []Batch
	mapPool []map[query.ID]bool

	// Decision capture for the flight recorder (see Explained). The
	// urgent EDF path fills exp; fallthrough rounds are captured by the
	// inner JAWS, and lastUrgent routes LastExplain to the right one.
	explain    bool
	exp        Explain
	lastUrgent bool

	missed int
	met    int
}

// qosUrgent is one urgent atom: the earliest deadline over the queries
// pending on it.
type qosUrgent struct {
	atom     store.AtomID
	deadline time.Duration
}

// qosSorter orders urgents either earliest-deadline-first (key on ties)
// or by clustered key for Morton execution. Preallocated so the decision
// path stays allocation-free.
type qosSorter struct {
	urgents []qosUrgent
	byKey   bool
}

func (s *qosSorter) Len() int { return len(s.urgents) }
func (s *qosSorter) Swap(i, j int) {
	s.urgents[i], s.urgents[j] = s.urgents[j], s.urgents[i]
}
func (s *qosSorter) Less(i, j int) bool {
	if s.byKey {
		return s.urgents[i].atom.Key() < s.urgents[j].atom.Key()
	}
	if s.urgents[i].deadline != s.urgents[j].deadline {
		return s.urgents[i].deadline < s.urgents[j].deadline
	}
	return s.urgents[i].atom.Key() < s.urgents[j].atom.Key()
}

// NewQoS wraps a JAWS scheduler with proportional completion-time
// guarantees. stretch ≤ 0 defaults to 8 (a query may take 8× its isolated
// service time); horizon ≤ 0 defaults to 2 s of virtual time.
func NewQoS(inner *JAWS, cost CostModel, stretch float64, horizon time.Duration) *QoS {
	if stretch <= 0 {
		stretch = 8
	}
	if horizon <= 0 {
		horizon = 2 * time.Second
	}
	return &QoS{
		inner:      inner,
		cost:       cost,
		stretch:    stretch,
		horizon:    horizon,
		deadlines:  make(map[query.ID]time.Duration),
		pendingBy:  make(map[store.AtomID]map[query.ID]bool),
		pendingCnt: make(map[query.ID]int),
	}
}

// Name implements Scheduler.
func (s *QoS) Name() string { return "JAWS+QoS" }

// estimate returns the isolated service-time estimate of a query from its
// first sub-query's shape: atoms × T_b plus positions × T_m. It is
// intentionally the same back-of-envelope a deployment would compute at
// admission time.
func (s *QoS) estimate(sq *query.SubQuery) time.Duration {
	atoms := 1 + len(sq.Footprint)
	return time.Duration(atoms)*s.cost.Tb +
		time.Duration(float64(len(sq.Query.Points))*sq.Query.Kernel.CostWeight())*s.cost.Tm
}

// Enqueue implements Scheduler.
func (s *QoS) Enqueue(sq *query.SubQuery, now time.Duration) {
	qid := sq.Query.ID
	if _, ok := s.deadlines[qid]; !ok {
		est := s.estimate(sq)
		s.deadlines[qid] = sq.Query.Arrival + time.Duration(s.stretch*float64(est))
	}
	m := s.pendingBy[sq.Atom]
	if m == nil {
		if n := len(s.mapPool); n > 0 {
			m = s.mapPool[n-1]
			s.mapPool[n-1] = nil
			s.mapPool = s.mapPool[:n-1]
		} else {
			m = make(map[query.ID]bool)
		}
		s.pendingBy[sq.Atom] = m
	}
	if !m[qid] {
		m[qid] = true
		s.pendingCnt[qid]++
	}
	s.inner.Enqueue(sq, now)
}

// NextBatch implements Scheduler: serve urgent atoms (whose pending
// sub-queries have deadlines within the horizon) earliest-deadline-first;
// otherwise fall through to contention-ordered JAWS batching. The urgent
// pass iterates a map, but the subsequent sort is a total order (deadline,
// then unique clustered key), so the decision is deterministic.
func (s *QoS) NextBatch(now time.Duration) []Batch {
	s.inner.q.beginDecision()
	s.urgents = s.urgents[:0]
	for atom, qs := range s.pendingBy {
		best := time.Duration(1<<62 - 1)
		for qid := range qs {
			if d := s.deadlines[qid]; d < best {
				best = d
			}
		}
		if best <= now+s.horizon {
			s.urgents = append(s.urgents, qosUrgent{atom: atom, deadline: best})
		}
	}
	var batches []Batch
	s.lastUrgent = len(s.urgents) > 0
	if len(s.urgents) > 0 {
		var exp *Explain
		if s.explain {
			exp = &s.exp
			exp.reset(s.Name(), s.inner.ctrl.alpha, len(s.inner.q.byAtom), s.inner.q.subs)
			exp.Urgent = true
		}
		s.sorter.urgents = s.urgents
		s.sorter.byKey = false
		sort.Sort(&s.sorter)
		// Take up to the inner batch size of urgent atoms, then execute in
		// Morton order (the data-sharing elasticity the paper notes
		// survives real-time constraints).
		k := s.inner.BatchSize()
		if len(s.urgents) > k {
			s.urgents = s.urgents[:k]
		}
		s.sorter.urgents = s.urgents
		s.sorter.byKey = true
		sort.Sort(&s.sorter)
		s.out = s.out[:0]
		for _, u := range s.urgents {
			if exp != nil {
				aq := s.inner.q.byAtom[u.atom]
				exp.captureAtom(&exp.Chosen, s.inner.q, aq,
					s.inner.q.ue(aq, s.inner.ctrl.alpha, now), now)
			}
			s.out = append(s.out, s.inner.q.take(u.atom))
		}
		batches = s.out
	} else {
		batches = s.inner.NextBatch(now)
	}
	// Bookkeeping: retire served sub-queries; the deadline verdict lands
	// once, when a query's final atom is served.
	for _, b := range batches {
		m := s.pendingBy[b.Atom]
		for qid := range m {
			s.pendingCnt[qid]--
			if s.pendingCnt[qid] > 0 {
				continue
			}
			if now > s.deadlines[qid] {
				s.missed++
			} else {
				s.met++
			}
			delete(s.deadlines, qid)
			delete(s.pendingCnt, qid)
		}
		if m != nil {
			for qid := range m {
				delete(m, qid)
			}
			s.mapPool = append(s.mapPool, m)
			delete(s.pendingBy, b.Atom)
		}
	}
	return batches
}

// Pending implements Scheduler.
func (s *QoS) Pending() int { return s.inner.Pending() }

// OnRunEnd implements Scheduler.
func (s *QoS) OnRunEnd(rt, tp float64) { s.inner.OnRunEnd(rt, tp) }

// Alpha implements Scheduler.
func (s *QoS) Alpha() float64 { return s.inner.Alpha() }

// DeadlineMisses reports how many queries had their final atom served
// after their completion-time bound.
func (s *QoS) DeadlineMisses() int { return s.missed }

// DeadlinesMet reports how many queries finished within their bound.
func (s *QoS) DeadlinesMet() int { return s.met }

// SetTracer implements Traced by forwarding to the inner JAWS instance,
// so urgent batches taken directly from the inner queues are still traced
// by the fallthrough path's decisions.
func (s *QoS) SetTracer(t *obs.Tracer) { s.inner.SetTracer(t) }

// SetResidencyVersion implements ResidencyVersioned by forwarding to the
// inner JAWS instance.
func (s *QoS) SetResidencyVersion(fn func() uint64) { s.inner.SetResidencyVersion(fn) }

// SetExplain implements Explained: both the urgent EDF path (captured
// here) and the fallthrough path (captured by the inner JAWS) record.
func (s *QoS) SetExplain(on bool) {
	s.explain = on
	s.inner.SetExplain(on)
}

// LastExplain implements Explained.
func (s *QoS) LastExplain() *Explain {
	if !s.explain {
		return nil
	}
	if s.lastUrgent {
		return &s.exp
	}
	return s.inner.LastExplain()
}

// AtomUtility implements UtilityProvider.
func (s *QoS) AtomUtility(id store.AtomID) float64 { return s.inner.AtomUtility(id) }

// StepMean implements UtilityProvider.
func (s *QoS) StepMean(step int) float64 { return s.inner.StepMean(step) }

// PendingSteps implements UtilityProvider.
func (s *QoS) PendingSteps() []int { return s.inner.PendingSteps() }

var (
	_ Scheduler          = (*QoS)(nil)
	_ UtilityProvider    = (*QoS)(nil)
	_ Traced             = (*QoS)(nil)
	_ ResidencyVersioned = (*QoS)(nil)
	_ Explained          = (*QoS)(nil)
)
