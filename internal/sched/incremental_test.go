package sched

import (
	"math/rand"
	"testing"
	"time"

	"jaws/internal/morton"
	"jaws/internal/query"
	"jaws/internal/store"
)

// Utility memoization: with a residency version source installed, U_t and
// the per-step Σ U_t must be computed once per epoch, not once per read —
// the regression the recompute counters pin. (stepMeanUt and PendingSteps
// used to rescan on every call.)
func TestUtilityMemoizationCountsRecomputes(t *testing.T) {
	var version uint64 = 1
	q := newQueues(testCost, nil)
	q.setResidencyVersion(func() uint64 { return version })
	q.add(subQueryAt(1, 0, 0, 0, 0, 100), 0)
	q.add(subQueryAt(2, 0, 1, 0, 0, 200), 0)
	q.add(subQueryAt(3, 1, 0, 0, 0, 50), 0)
	q.syncResidency()

	base := q.utRecomputes
	first := q.stepMeanUt(0)
	afterFirst := q.utRecomputes - base
	if afterFirst == 0 {
		t.Fatal("first StepMean read computed nothing")
	}
	for i := 0; i < 5; i++ {
		if got := q.stepMeanUt(0); got != first {
			t.Fatalf("StepMean changed across memoized reads: %v then %v", first, got)
		}
	}
	if extra := q.utRecomputes - base - afterFirst; extra != 0 {
		t.Fatalf("memoized StepMean reads recomputed %d utilities, want 0", extra)
	}
	sumBase := q.stepSumRecomputes
	q.stepMeanUt(0)
	if q.stepSumRecomputes != sumBase {
		t.Fatal("memoized StepMean recomputed the step aggregate")
	}

	// Residency change: the next sync must invalidate every memo.
	version++
	q.syncResidency()
	if q.stepMeanUt(0) != first {
		t.Fatal("identical inputs must reproduce the identical float after recompute")
	}
	if q.stepSumRecomputes == sumBase {
		t.Fatal("version bump did not trigger an aggregate recompute")
	}

	// New work on an atom invalidates just that memo path, same version.
	utBase := q.utRecomputes
	q.add(subQueryAt(4, 0, 0, 0, 0, 10), 0)
	q.stepMeanUt(0)
	if q.utRecomputes == utBase {
		t.Fatal("enqueue on a memoized atom did not invalidate its utility")
	}
}

// Without a version source, memoization stays off: every read recomputes
// (exactness by default).
func TestNoVersionSourceAlwaysRecomputes(t *testing.T) {
	q := newQueues(testCost, nil)
	q.add(subQueryAt(1, 0, 0, 0, 0, 100), 0)
	base := q.stepSumRecomputes
	for i := 0; i < 4; i++ {
		q.stepMeanUt(0)
	}
	if got := q.stepSumRecomputes - base; got != 4 {
		t.Fatalf("un-versioned queues recomputed the aggregate %d times over 4 reads, want 4", got)
	}
}

// PendingSteps is maintained incrementally: ascending, tracking bucket
// creation and removal, with no per-call work.
func TestPendingStepsIncremental(t *testing.T) {
	q := newQueues(testCost, nil)
	q.add(subQueryAt(1, 5, 0, 0, 0, 10), 0)
	q.add(subQueryAt(2, 1, 0, 0, 0, 10), 0)
	q.add(subQueryAt(3, 3, 0, 0, 0, 10), 0)
	want := []int{1, 3, 5}
	if len(q.steps) != len(want) {
		t.Fatalf("steps = %v, want %v", q.steps, want)
	}
	for i := range want {
		if q.steps[i] != want[i] {
			t.Fatalf("steps = %v, want %v", q.steps, want)
		}
	}
	q.beginDecision()
	q.take(store.AtomID{Step: 3})
	if len(q.steps) != 2 || q.steps[0] != 1 || q.steps[1] != 5 {
		t.Fatalf("after take: steps = %v, want [1 5]", q.steps)
	}
}

// The indexed max-heap (LifeRaft at α = 0 with a version source) must make
// exactly the decisions the plain scan makes, through random enqueues,
// takes, and residency changes.
func TestHeapMatchesScan(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		residentSet := make(map[store.AtomID]bool)
		var version uint64 = 1
		resident := func(id store.AtomID) bool { return residentSet[id] }

		heapSched := NewLifeRaft(testCost, 0, resident)
		heapSched.SetResidencyVersion(func() uint64 { return version })
		scanSched := NewLifeRaft(testCost, 0, resident) // no version: scan path
		if !heapSched.q.useHeap || scanSched.q.memoOK() {
			t.Fatal("test premise broken: heap/scan configuration")
		}

		now := time.Duration(0)
		qid := 1
		for op := 0; op < 300; op++ {
			now += time.Millisecond
			switch r := rng.Intn(10); {
			case r < 6 || heapSched.Pending() == 0:
				// Random atom in a small universe so queues collide.
				sq := subQueryAt(query.ID(qid), rng.Intn(2),
					uint32(rng.Intn(3)), uint32(rng.Intn(2)), 0, rng.Intn(200)+1)
				qid++
				heapSched.Enqueue(sq, now)
				scanSched.Enqueue(sq, now)
			case r < 8:
				// Flip residency of a pending or absent atom; bump the version.
				id := store.AtomID{Step: rng.Intn(2), Code: morton.Code(rng.Intn(64))}
				residentSet[id] = !residentSet[id]
				version++
			default:
				hb := heapSched.NextBatch(now)
				sb := scanSched.NextBatch(now)
				if len(hb) != 1 || len(sb) != 1 {
					t.Fatalf("seed %d op %d: batch lens %d vs %d", seed, op, len(hb), len(sb))
				}
				if hb[0].Atom != sb[0].Atom {
					t.Fatalf("seed %d op %d: heap picked %v, scan picked %v", seed, op, hb[0].Atom, sb[0].Atom)
				}
				if len(hb[0].SubQueries) != len(sb[0].SubQueries) {
					t.Fatalf("seed %d op %d: batch sizes differ", seed, op)
				}
			}
		}
	}
}
