package sched

import (
	"math"
	"sort"
	"time"

	"jaws/internal/metrics"
	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/store"
)

// JAWSConfig parameterizes the JAWS scheduler.
type JAWSConfig struct {
	Cost CostModel
	// BatchSize is k, the maximum number of atoms co-scheduled per time
	// step (§V). The paper finds the optimum between 10 and 15 and uses
	// k = 15 in the evaluation.
	BatchSize int
	// InitialAlpha seeds the age bias; the paper initializes α to 0.5.
	InitialAlpha float64
	// Adaptive enables the automated starvation-resistance controller of
	// §V.A. When false, α stays at InitialAlpha.
	Adaptive bool
	// Resident reports cache residency for φ(i); may be nil.
	Resident func(store.AtomID) bool
	// NoMortonOrder disables the Morton-order execution of the selected
	// batch (ablation): atoms run in descending-metric order instead, so
	// the disk sees no sequential runs and stencil locality is broken.
	NoMortonOrder bool
}

// selSorter orders a JAWS selection in one of the three orders the
// algorithm needs, swapping the score slice in lockstep. A preallocated
// struct (instead of sort.Slice closures) keeps the decision path
// allocation-free.
type selSorter struct {
	sel   []*atomQueue
	score []float64
	mode  int
}

const (
	sortScoreDescKeyAsc  = iota // truncation: most contentious first
	sortKeyAsc                  // Morton execution order
	sortScoreDescKeyDesc        // noMorton ablation: metric order
)

func (s *selSorter) Len() int { return len(s.sel) }

func (s *selSorter) Swap(i, j int) {
	s.sel[i], s.sel[j] = s.sel[j], s.sel[i]
	s.score[i], s.score[j] = s.score[j], s.score[i]
}

func (s *selSorter) Less(i, j int) bool {
	switch s.mode {
	case sortKeyAsc:
		return s.sel[i].id.Key() < s.sel[j].id.Key()
	case sortScoreDescKeyDesc:
		if s.score[i] != s.score[j] {
			return s.score[i] > s.score[j]
		}
		return s.sel[i].id.Key() > s.sel[j].id.Key()
	default: // sortScoreDescKeyAsc
		if s.score[i] != s.score[j] {
			return s.score[i] > s.score[j]
		}
		return s.sel[i].id.Key() < s.sel[j].id.Key()
	}
}

// JAWS is the two-level, adaptively starvation-resistant scheduler of §V.
// At the coarse level it picks the time step with the highest mean aged
// workload throughput; at the fine level it batches up to k above-mean
// atoms of that step and executes them in Morton order.
type JAWS struct {
	q        *queues
	k        int
	ctrl     *alphaController
	noMorton bool
	trace    *obs.Tracer

	// Decision capture for the flight recorder (see Explained); off by
	// default so the decision path stays allocation-free.
	explain bool
	exp     Explain

	// lastTrunc is the number of above-mean candidates the batch bound
	// dropped in the most recent decision (the per-round batch-full
	// pass-over count the adaptive-batch policy steers on).
	lastTrunc int

	// Reused decision buffers (zero allocations in steady state).
	sel    []*atomQueue
	score  []float64
	sorter selSorter
	out    []Batch
}

// NewJAWS creates a JAWS scheduler.
func NewJAWS(cfg JAWSConfig) *JAWS {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 15
	}
	alpha := cfg.InitialAlpha
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	return &JAWS{
		q:        newQueues(cfg.Cost, cfg.Resident),
		k:        cfg.BatchSize,
		ctrl:     newAlphaController(alpha, cfg.Adaptive),
		noMorton: cfg.NoMortonOrder,
	}
}

// Name implements Scheduler.
func (s *JAWS) Name() string { return "JAWS" }

// Enqueue implements Scheduler.
func (s *JAWS) Enqueue(sq *query.SubQuery, now time.Duration) { s.q.add(sq, now) }

// sortSel sorts the current selection under the given mode.
func (s *JAWS) sortSel(mode int) {
	s.sorter.sel = s.sel
	s.sorter.score = s.score
	s.sorter.mode = mode
	sort.Sort(&s.sorter)
}

// NextBatch implements Scheduler. Two-level selection (Fig. 6): first the
// time step with the highest mean aged workload throughput, then up to k
// atoms of that step whose metric exceeds the step mean, sorted in Morton
// order. If no atom strictly exceeds the mean (e.g. all queues equal),
// the single best atom is scheduled so progress is always made.
//
// The selection walks the step buckets in ascending step order and each
// bucket's atoms in ascending key order — exactly the iteration order of
// the reference model, so strict > reproduces its tie-breaks and the
// floating-point sums accumulate identically.
func (s *JAWS) NextBatch(now time.Duration) []Batch {
	s.lastTrunc = 0
	s.q.beginDecision()
	if len(s.q.buckets) == 0 {
		return nil
	}
	s.q.syncResidency()
	alpha := s.ctrl.alpha
	var exp *Explain
	if s.explain {
		exp = &s.exp
		exp.reset(s.Name(), alpha, len(s.q.byAtom), s.q.subs)
	}

	var bestBucket *stepBucket
	bestMean := 0.0
	for _, b := range s.q.buckets {
		mean := s.q.stepMeanUeBucket(b, alpha, now)
		if exp != nil {
			exp.captureStep(s.q, b, alpha, now)
		}
		if bestBucket == nil || mean > bestMean {
			bestBucket, bestMean = b, mean
		}
	}
	if exp != nil {
		exp.WinnerStep = bestBucket.step
	}

	s.sel = s.sel[:0]
	s.score = s.score[:0]
	var fallback *atomQueue
	fallbackScore := 0.0
	for _, aq := range bestBucket.atoms {
		sc := s.q.ue(aq, alpha, now)
		if sc > bestMean {
			s.sel = append(s.sel, aq)
			s.score = append(s.score, sc)
		}
		if fallback == nil || sc > fallbackScore {
			fallback, fallbackScore = aq, sc
		}
	}
	if len(s.sel) == 0 {
		s.sel = append(s.sel, fallback)
		s.score = append(s.score, fallbackScore)
	}
	// Keep the k most contentious of the above-mean atoms, then execute
	// them in Morton order to amortize seeks. The selection is built in
	// key order, so the Morton re-sort is only needed after a truncation
	// disturbed it.
	truncated := false
	if len(s.sel) > s.k {
		s.lastTrunc = len(s.sel) - s.k
		s.sortSel(sortScoreDescKeyAsc)
		if exp != nil {
			// The victims are the tail beyond k, before the shrink: the
			// above-mean candidates the batch bound passed over.
			for i := s.k; i < len(s.sel); i++ {
				exp.captureAtom(&exp.Truncated, s.q, s.sel[i], s.score[i], now)
			}
		}
		s.sel = s.sel[:s.k]
		s.score = s.score[:s.k]
		truncated = true
	}
	if s.noMorton {
		// Ablation: metric order instead of Morton order.
		s.sortSel(sortScoreDescKeyDesc)
	} else if truncated {
		s.sortSel(sortKeyAsc)
	}
	if s.trace.Enabled() {
		for i, aq := range s.sel {
			s.trace.Decision(now, s.Name(), aq.id.Step, uint64(aq.id.Code),
				len(s.sel), s.q.ut(aq), s.score[i], alpha)
		}
	}
	s.out = s.out[:0]
	for i, aq := range s.sel {
		if exp != nil {
			exp.captureAtom(&exp.Chosen, s.q, aq, s.score[i], now)
		}
		s.out = append(s.out, s.q.take(aq.id))
		s.sel[i] = nil
	}
	return s.out
}

// SetExplain implements Explained.
func (s *JAWS) SetExplain(on bool) { s.explain = on }

// LastExplain implements Explained.
func (s *JAWS) LastExplain() *Explain {
	if !s.explain {
		return nil
	}
	return &s.exp
}

// SetTracer implements Traced.
func (s *JAWS) SetTracer(t *obs.Tracer) { s.trace = t }

// SetResidencyVersion implements ResidencyVersioned.
func (s *JAWS) SetResidencyVersion(fn func() uint64) { s.q.setResidencyVersion(fn) }

// Pending implements Scheduler.
func (s *JAWS) Pending() int { return s.q.subs }

// OnRunEnd implements Scheduler: feed the run's performance to the
// adaptive α controller.
func (s *JAWS) OnRunEnd(rt, tp float64) { s.ctrl.onRunEnd(rt, tp) }

// Alpha implements Scheduler.
func (s *JAWS) Alpha() float64 { return s.ctrl.alpha }

// BatchSize returns k.
func (s *JAWS) BatchSize() int { return s.k }

// SetBatchSize changes k for subsequent decisions (clamped to ≥ 1). The
// adaptive-batch tail policy resizes the batch through this.
func (s *JAWS) SetBatchSize(k int) {
	if k < 1 {
		k = 1
	}
	s.k = k
}

// LastTruncated reports how many above-mean candidates the batch bound
// dropped in the most recent decision (0 when the round fit within k).
func (s *JAWS) LastTruncated() int { return s.lastTrunc }

// AtomUtility implements UtilityProvider.
func (s *JAWS) AtomUtility(id store.AtomID) float64 {
	s.q.syncResidency()
	if aq, ok := s.q.byAtom[id]; ok {
		return s.q.ut(aq)
	}
	return 0
}

// StepMean implements UtilityProvider.
func (s *JAWS) StepMean(step int) float64 {
	s.q.syncResidency()
	return s.q.stepMeanUt(step)
}

// PendingSteps implements UtilityProvider: the memoized ascending step
// list (no per-call allocation; do not mutate).
func (s *JAWS) PendingSteps() []int { return s.q.steps }

var (
	_ Scheduler          = (*JAWS)(nil)
	_ UtilityProvider    = (*JAWS)(nil)
	_ Traced             = (*JAWS)(nil)
	_ ResidencyVersioned = (*JAWS)(nil)
	_ Explained          = (*JAWS)(nil)
)

// alphaController implements the adaptive starvation resistance of §V.A.
// The workload is divided into runs of r consecutive queries (the engine
// decides r and calls onRunEnd). Performance is smoothed with the paper's
// EWMA (x' = 0.2·x + 0.8·x'); the age bias is then adjusted:
//
//	(1) saturation rising (rt ratio ≥ 1) and throughput not keeping up:
//	    α decreases (bias toward contention) by min(Δ, α);
//	(2) saturation falling (rt ratio < 1) and throughput fell faster:
//	    α increases (bias toward age) by min(Δ, 1−α);
//
// where Δ = rt-ratio − tp-ratio. If two consecutive runs show no change,
// the controller perturbs α to explore the trade-off curve rather than
// staying stuck at a bad initial value.
type alphaController struct {
	alpha    float64
	adaptive bool

	rtE, tpE       *metrics.EWMA
	prevRt, prevTp float64
	havePrev       bool
	flatRuns       int
	exploreSign    float64

	// History records α after each run for the Fig. 11 diagnostics.
	History []float64
}

func newAlphaController(alpha float64, adaptive bool) *alphaController {
	return &alphaController{
		alpha:       alpha,
		adaptive:    adaptive,
		rtE:         metrics.NewEWMA(0.2),
		tpE:         metrics.NewEWMA(0.2),
		exploreSign: 1,
	}
}

// flatTolerance bounds the relative change regarded as "no change" for
// the exploration rule.
const flatTolerance = 0.01

// exploreStep is the α perturbation applied when the trade-off curve has
// been flat for two consecutive runs.
const exploreStep = 0.05

func (c *alphaController) onRunEnd(rt, tp float64) {
	if !c.adaptive {
		return
	}
	srt := c.rtE.Observe(rt)
	stp := c.tpE.Observe(tp)
	defer func() { c.History = append(c.History, c.alpha) }()
	if !c.havePrev {
		c.prevRt, c.prevTp = srt, stp
		c.havePrev = true
		return
	}
	if c.prevRt <= 0 || c.prevTp <= 0 {
		c.prevRt, c.prevTp = srt, stp
		return
	}
	rtRatio := srt / c.prevRt
	tpRatio := stp / c.prevTp
	c.prevRt, c.prevTp = srt, stp

	delta := rtRatio - tpRatio
	switch {
	case rtRatio >= 1 && tpRatio < rtRatio:
		// Saturation rising without commensurate throughput: chase
		// contention.
		c.alpha -= math.Min(delta, c.alpha)
		c.flatRuns = 0
	case rtRatio < 1 && tpRatio < rtRatio:
		// Saturation falling and throughput fell faster than response
		// time improved: spend slack on latency.
		c.alpha += math.Min(delta, 1-c.alpha)
		c.flatRuns = 0
	case math.Abs(rtRatio-1) < flatTolerance && math.Abs(tpRatio-1) < flatTolerance:
		c.flatRuns++
		if c.flatRuns >= 2 {
			// Explore the performance curve: alternate the direction so a
			// fruitless probe is undone on the next flat pair.
			c.alpha += c.exploreSign * exploreStep
			c.exploreSign = -c.exploreSign
			c.flatRuns = 0
		}
	default:
		c.flatRuns = 0
	}
	if c.alpha < 0 {
		c.alpha = 0
	}
	if c.alpha > 1 {
		c.alpha = 1
	}
}
