package sched

import (
	"time"

	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/store"
)

// NoShare is the paper's baseline: each query is evaluated independently
// and in arrival order (§VI). No sub-queries from different queries are
// ever co-scheduled; the only I/O sharing is whatever the buffer cache
// happens to provide across consecutive queries.
type NoShare struct {
	fifo    []*noShareQuery
	byQuery map[query.ID]*noShareQuery
	pending int
	trace   *obs.Tracer
}

type noShareQuery struct {
	id   query.ID
	subs []*query.SubQuery // pre-processing emits these in Morton order
}

// NewNoShare creates the arrival-order scheduler.
func NewNoShare() *NoShare {
	return &NoShare{byQuery: make(map[query.ID]*noShareQuery)}
}

// Name implements Scheduler.
func (s *NoShare) Name() string { return "NoShare" }

// Enqueue implements Scheduler. Sub-queries of one query stay grouped;
// queries are served strictly in the order their first sub-query arrived.
func (s *NoShare) Enqueue(sq *query.SubQuery, now time.Duration) {
	qs, ok := s.byQuery[sq.Query.ID]
	if !ok {
		qs = &noShareQuery{id: sq.Query.ID}
		s.byQuery[sq.Query.ID] = qs
		s.fifo = append(s.fifo, qs)
	}
	qs.subs = append(qs.subs, sq)
	s.pending++
}

// NextBatch implements Scheduler: the whole next query, one batch per
// atom, in the Morton order pre-processing produced.
func (s *NoShare) NextBatch(now time.Duration) []Batch {
	if len(s.fifo) == 0 {
		return nil
	}
	qs := s.fifo[0]
	s.fifo = s.fifo[1:]
	delete(s.byQuery, qs.id)
	out := make([]Batch, len(qs.subs))
	for i, sq := range qs.subs {
		out[i] = Batch{Atom: sq.Atom, SubQueries: []*query.SubQuery{sq}}
		// Arrival-order scheduling has no metric to report: U_t/U_e stay 0.
		s.trace.Decision(now, s.Name(), sq.Atom.Step, uint64(sq.Atom.Code), len(qs.subs), 0, 0, 0)
	}
	s.pending -= len(qs.subs)
	return out
}

// SetTracer implements Traced.
func (s *NoShare) SetTracer(t *obs.Tracer) { s.trace = t }

// Pending implements Scheduler.
func (s *NoShare) Pending() int { return s.pending }

// OnRunEnd implements Scheduler (NoShare has nothing to adapt).
func (s *NoShare) OnRunEnd(rt, tp float64) {}

// Alpha implements Scheduler.
func (s *NoShare) Alpha() float64 { return 0 }

var (
	_ Scheduler = (*NoShare)(nil)
	_ Traced    = (*NoShare)(nil)
)

// LifeRaft is the data-driven batch scheduler of §III adapted to
// Turbulence: one atom queue at a time, chosen by the aged workload
// throughput metric U_e with a fixed, manually configured age bias α.
// α = 0 is the contention-based throughput maximizer (LifeRaft_2 in the
// evaluation); α = 1 schedules by queue age, i.e. near arrival order, but
// still co-schedules sub-queries that reference the same atom
// (LifeRaft_1).
type LifeRaft struct {
	q     *queues
	alpha float64
	trace *obs.Tracer
}

// NewLifeRaft creates a LifeRaft scheduler. resident reports cache
// residency for the φ(i) term and may be nil (always miss).
func NewLifeRaft(cost CostModel, alpha float64, resident func(store.AtomID) bool) *LifeRaft {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	return &LifeRaft{q: newQueues(cost, resident), alpha: alpha}
}

// Name implements Scheduler.
func (s *LifeRaft) Name() string { return "LifeRaft" }

// Enqueue implements Scheduler.
func (s *LifeRaft) Enqueue(sq *query.SubQuery, now time.Duration) { s.q.add(sq, now) }

// NextBatch implements Scheduler: the single atom queue with the highest
// aged workload throughput (LifeRaft schedules one atom at a time; the
// two-level batching of k atoms is what JAWS adds).
func (s *LifeRaft) NextBatch(now time.Duration) []Batch {
	var best *atomQueue
	bestScore := 0.0
	for _, aq := range s.q.byAtom {
		score := s.q.ue(aq, s.alpha, now)
		if best == nil || score > bestScore || (score == bestScore && aq.id.Key() < best.id.Key()) {
			best, bestScore = aq, score
		}
	}
	if best == nil {
		return nil
	}
	if s.trace.Enabled() {
		s.trace.Decision(now, s.Name(), best.id.Step, uint64(best.id.Code),
			1, s.q.ut(best), bestScore, s.alpha)
	}
	return []Batch{s.q.take(best.id)}
}

// SetTracer implements Traced.
func (s *LifeRaft) SetTracer(t *obs.Tracer) { s.trace = t }

// Pending implements Scheduler.
func (s *LifeRaft) Pending() int { return s.q.subs }

// OnRunEnd implements Scheduler (α is fixed in LifeRaft; adaptation is a
// JAWS contribution).
func (s *LifeRaft) OnRunEnd(rt, tp float64) {}

// Alpha implements Scheduler.
func (s *LifeRaft) Alpha() float64 { return s.alpha }

// AtomUtility implements UtilityProvider.
func (s *LifeRaft) AtomUtility(id store.AtomID) float64 {
	if aq, ok := s.q.byAtom[id]; ok {
		return s.q.ut(aq)
	}
	return 0
}

// StepMean implements UtilityProvider.
func (s *LifeRaft) StepMean(step int) float64 { return s.q.stepMeanUt(step) }

// PendingSteps implements UtilityProvider.
func (s *LifeRaft) PendingSteps() []int {
	out := make([]int, 0, len(s.q.byStep))
	for step := range s.q.byStep {
		out = append(out, step)
	}
	return out
}

var (
	_ Scheduler       = (*LifeRaft)(nil)
	_ UtilityProvider = (*LifeRaft)(nil)
	_ Traced          = (*LifeRaft)(nil)
)
