package sched

import (
	"time"

	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/store"
)

// NoShare is the paper's baseline: each query is evaluated independently
// and in arrival order (§VI). No sub-queries from different queries are
// ever co-scheduled; the only I/O sharing is whatever the buffer cache
// happens to provide across consecutive queries.
type NoShare struct {
	fifo    []*noShareQuery // ring: the live entries are fifo[head:]
	head    int
	byQuery map[query.ID]*noShareQuery
	pending int
	trace   *obs.Tracer

	// Decision capture for the flight recorder (see Explained).
	explain bool
	exp     Explain

	// Reused decision buffers and the query-struct freelist (zero
	// allocations in steady state).
	free    []*noShareQuery
	out     []Batch
	singles []*query.SubQuery
}

type noShareQuery struct {
	id   query.ID
	subs []*query.SubQuery // pre-processing emits these in Morton order
}

// NewNoShare creates the arrival-order scheduler.
func NewNoShare() *NoShare {
	return &NoShare{byQuery: make(map[query.ID]*noShareQuery)}
}

// Name implements Scheduler.
func (s *NoShare) Name() string { return "NoShare" }

// Enqueue implements Scheduler. Sub-queries of one query stay grouped;
// queries are served strictly in the order their first sub-query arrived.
func (s *NoShare) Enqueue(sq *query.SubQuery, now time.Duration) {
	qs, ok := s.byQuery[sq.Query.ID]
	if !ok {
		if n := len(s.free); n > 0 {
			qs = s.free[n-1]
			s.free[n-1] = nil
			s.free = s.free[:n-1]
			qs.id = sq.Query.ID
		} else {
			qs = &noShareQuery{id: sq.Query.ID}
		}
		s.byQuery[sq.Query.ID] = qs
		s.fifo = append(s.fifo, qs)
	}
	qs.subs = append(qs.subs, sq)
	s.pending++
}

// NextBatch implements Scheduler: the whole next query, one batch per
// atom, in the Morton order pre-processing produced. The returned batches
// are valid until the next NextBatch call (see the Scheduler contract).
func (s *NoShare) NextBatch(now time.Duration) []Batch {
	if s.head == len(s.fifo) {
		return nil
	}
	var exp *Explain
	if s.explain {
		exp = &s.exp
		// Arrival-order scheduling has no step level or utilities: the
		// capture carries the FIFO depth and the served atoms only.
		exp.reset(s.Name(), 0, len(s.fifo)-s.head, s.pending)
	}
	qs := s.fifo[s.head]
	s.fifo[s.head] = nil
	s.head++
	if s.head == len(s.fifo) {
		// Drained: reset the ring so the backing array is reused.
		s.fifo = s.fifo[:0]
		s.head = 0
	}
	delete(s.byQuery, qs.id)
	// The singleton SubQueries slices are carved out of one reused arena;
	// it is filled completely before any batch references it, so a growth
	// reallocation cannot strand earlier batches on an old backing array.
	s.singles = append(s.singles[:0], qs.subs...)
	s.out = s.out[:0]
	for i, sq := range qs.subs {
		s.out = append(s.out, Batch{Atom: sq.Atom, SubQueries: s.singles[i : i+1 : i+1]})
		// Arrival-order scheduling has no metric to report: U_t/U_e stay 0.
		s.trace.Decision(now, s.Name(), sq.Atom.Step, uint64(sq.Atom.Code), len(qs.subs), 0, 0, 0)
		if exp != nil {
			exp.Chosen = append(exp.Chosen, obs.DecisionAtom{
				Step: sq.Atom.Step, Code: uint64(sq.Atom.Code),
				Subs: 1, Queries: []int64{int64(qs.id)},
			})
		}
	}
	s.pending -= len(qs.subs)
	for i := range qs.subs {
		qs.subs[i] = nil
	}
	qs.subs = qs.subs[:0]
	s.free = append(s.free, qs)
	return s.out
}

// SetTracer implements Traced.
func (s *NoShare) SetTracer(t *obs.Tracer) { s.trace = t }

// SetExplain implements Explained.
func (s *NoShare) SetExplain(on bool) { s.explain = on }

// LastExplain implements Explained.
func (s *NoShare) LastExplain() *Explain {
	if !s.explain {
		return nil
	}
	return &s.exp
}

// Pending implements Scheduler.
func (s *NoShare) Pending() int { return s.pending }

// OnRunEnd implements Scheduler (NoShare has nothing to adapt).
func (s *NoShare) OnRunEnd(rt, tp float64) {}

// Alpha implements Scheduler.
func (s *NoShare) Alpha() float64 { return 0 }

var (
	_ Scheduler = (*NoShare)(nil)
	_ Traced    = (*NoShare)(nil)
	_ Explained = (*NoShare)(nil)
)

// LifeRaft is the data-driven batch scheduler of §III adapted to
// Turbulence: one atom queue at a time, chosen by the aged workload
// throughput metric U_e with a fixed, manually configured age bias α.
// α = 0 is the contention-based throughput maximizer (LifeRaft_2 in the
// evaluation); α = 1 schedules by queue age, i.e. near arrival order, but
// still co-schedules sub-queries that reference the same atom
// (LifeRaft_1).
type LifeRaft struct {
	q     *queues
	alpha float64
	trace *obs.Tracer
	// Decision capture for the flight recorder (see Explained).
	explain bool
	exp     Explain
	// outBatch is the reused single-batch decision buffer.
	outBatch [1]Batch
}

// NewLifeRaft creates a LifeRaft scheduler. resident reports cache
// residency for the φ(i) term and may be nil (always miss).
func NewLifeRaft(cost CostModel, alpha float64, resident func(store.AtomID) bool) *LifeRaft {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	q := newQueues(cost, resident)
	// At α = 0 the aged metric degenerates to U_t bitwise, which is
	// time-independent, so the indexed max-heap can stand in for the
	// argmax scan (engaged once a residency version source is installed).
	q.useHeap = alpha == 0
	return &LifeRaft{q: q, alpha: alpha}
}

// Name implements Scheduler.
func (s *LifeRaft) Name() string { return "LifeRaft" }

// Enqueue implements Scheduler.
func (s *LifeRaft) Enqueue(sq *query.SubQuery, now time.Duration) { s.q.add(sq, now) }

// NextBatch implements Scheduler: the single atom queue with the highest
// aged workload throughput (LifeRaft schedules one atom at a time; the
// two-level batching of k atoms is what JAWS adds). At α = 0 the answer
// comes from the indexed max-heap in O(log n); otherwise a linear scan in
// the model's key order keeps the tie-breaks exact.
func (s *LifeRaft) NextBatch(now time.Duration) []Batch {
	s.q.beginDecision()
	if s.q.subs == 0 {
		return nil
	}
	s.q.syncResidency()
	var best *atomQueue
	bestScore := 0.0
	if s.alpha == 0 && s.q.useHeap && s.q.memoOK() {
		best = s.q.heapTop()
		bestScore = s.q.ue(best, s.alpha, now)
	} else {
		for _, b := range s.q.buckets {
			for _, aq := range b.atoms {
				score := s.q.ue(aq, s.alpha, now)
				if best == nil || score > bestScore {
					best, bestScore = aq, score
				}
			}
		}
	}
	if s.trace.Enabled() {
		s.trace.Decision(now, s.Name(), best.id.Step, uint64(best.id.Code),
			1, s.q.ut(best), bestScore, s.alpha)
	}
	if s.explain {
		exp := &s.exp
		exp.reset(s.Name(), s.alpha, len(s.q.byAtom), s.q.subs)
		for _, b := range s.q.buckets {
			exp.captureStep(s.q, b, s.alpha, now)
		}
		exp.WinnerStep = best.id.Step
		exp.captureAtom(&exp.Chosen, s.q, best, bestScore, now)
	}
	s.outBatch[0] = s.q.take(best.id)
	return s.outBatch[:]
}

// SetTracer implements Traced.
func (s *LifeRaft) SetTracer(t *obs.Tracer) { s.trace = t }

// SetExplain implements Explained.
func (s *LifeRaft) SetExplain(on bool) { s.explain = on }

// LastExplain implements Explained.
func (s *LifeRaft) LastExplain() *Explain {
	if !s.explain {
		return nil
	}
	return &s.exp
}

// SetResidencyVersion implements ResidencyVersioned.
func (s *LifeRaft) SetResidencyVersion(fn func() uint64) { s.q.setResidencyVersion(fn) }

// Pending implements Scheduler.
func (s *LifeRaft) Pending() int { return s.q.subs }

// OnRunEnd implements Scheduler (α is fixed in LifeRaft; adaptation is a
// JAWS contribution).
func (s *LifeRaft) OnRunEnd(rt, tp float64) {}

// Alpha implements Scheduler.
func (s *LifeRaft) Alpha() float64 { return s.alpha }

// AtomUtility implements UtilityProvider.
func (s *LifeRaft) AtomUtility(id store.AtomID) float64 {
	s.q.syncResidency()
	if aq, ok := s.q.byAtom[id]; ok {
		return s.q.ut(aq)
	}
	return 0
}

// StepMean implements UtilityProvider.
func (s *LifeRaft) StepMean(step int) float64 {
	s.q.syncResidency()
	return s.q.stepMeanUt(step)
}

// PendingSteps implements UtilityProvider: the memoized ascending step
// list (no per-call allocation; do not mutate).
func (s *LifeRaft) PendingSteps() []int { return s.q.steps }

var (
	_ Scheduler          = (*LifeRaft)(nil)
	_ UtilityProvider    = (*LifeRaft)(nil)
	_ Traced             = (*LifeRaft)(nil)
	_ ResidencyVersioned = (*LifeRaft)(nil)
	_ Explained          = (*LifeRaft)(nil)
)
