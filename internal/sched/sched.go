// Package sched implements the query schedulers the paper evaluates:
//
//   - NoShare — every query evaluated independently, in arrival order;
//   - LifeRaft — data-driven batch processing by the (aged) workload
//     throughput metric of §III.C, with a fixed age bias α;
//   - JAWS — LifeRaft extended with two-level scheduling (§V) and
//     adaptive starvation resistance (§V.A). Job-aware gating (§IV) is
//     layered on by the execution engine via the jobgraph package.
//
// A scheduler owns the per-atom workload queues: each pending sub-query
// sits in the queue of its primary atom, and the scheduler picks which
// atom queue(s) to drain next.
//
// The decision path is incremental and allocation-free: atom queues live
// in per-step Morton-sorted buckets (no per-decision sort), Eq. 1/2
// utilities and per-step aggregates are memoized behind a cache-residency
// version counter, and batches reuse pooled structures. The differential
// oracle (internal/oracle) certifies that every decision is byte-identical
// to a naive rescan reference model.
package sched

import (
	"time"

	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/store"
)

// CostModel carries the constants of Eq. 1: T_b estimates the time to
// read an atom from disk and T_m the computation cost of a single
// position. Both are derived empirically (the engine measures T_b from
// the disk model's parameters).
type CostModel struct {
	Tb time.Duration
	Tm time.Duration
}

// Batch is one unit of execution handed to the engine: all pending
// sub-queries of one atom, co-scheduled in a single pass over the data.
type Batch struct {
	Atom       store.AtomID
	SubQueries []*query.SubQuery
}

// Positions returns the total number of positions in the batch.
func (b *Batch) Positions() int {
	n := 0
	for _, sq := range b.SubQueries {
		n += len(sq.Points)
	}
	return n
}

// Scheduler is the engine-facing interface all three algorithms satisfy.
// Implementations are not safe for concurrent use; the engine serializes.
type Scheduler interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Enqueue admits one pre-processed sub-query at virtual time now.
	Enqueue(sq *query.SubQuery, now time.Duration)
	// NextBatch selects and removes the next batch(es) of work. It
	// returns nil when no work is pending.
	//
	// Ownership: the returned slice and the batches' SubQueries slices
	// are valid only until the next NextBatch call on the same scheduler —
	// schedulers recycle the underlying storage. Callers that retain a
	// decision (recorders, tracers) must copy it.
	NextBatch(now time.Duration) []Batch
	// Pending reports the number of queued sub-queries.
	Pending() int
	// OnRunEnd delivers the measured mean response time (seconds) and
	// query throughput (queries/second) of the run that just ended;
	// adaptive schedulers tune their age bias here.
	OnRunEnd(rt, tp float64)
	// Alpha reports the current age bias (diagnostic; 0 for NoShare).
	Alpha() float64
}

// Traced is implemented by schedulers that can emit per-decision trace
// events (the atom picked, the decision's batch size, and the U_t/U_e/α
// values that justified the pick). The engine installs the tracer when
// observability is configured; a nil tracer disables emission.
type Traced interface {
	SetTracer(t *obs.Tracer)
}

// UtilityProvider is implemented by contention-based schedulers that can
// expose their ranking for cache coordination (URC, §V.B).
type UtilityProvider interface {
	// AtomUtility returns the current workload-throughput metric of the
	// atom (0 if it has no pending work).
	AtomUtility(id store.AtomID) float64
	// StepMean returns the mean workload throughput of the step's pending
	// atoms (0 if the step has no pending work).
	StepMean(step int) float64
	// PendingSteps lists the steps with pending work, ascending. The
	// returned slice is owned by the scheduler and must not be mutated or
	// retained across scheduler calls.
	PendingSteps() []int
}

// ResidencyVersioned is implemented by schedulers that memoize
// φ(i)-dependent utility values behind a residency version counter: the
// counter must change whenever the set of cache-resident atoms may have
// changed (the cache's mutation counter). Without a version source the
// schedulers recompute utilities on every read — still exact, just not
// incremental. The engine installs the cache's Version method.
type ResidencyVersioned interface {
	SetResidencyVersion(fn func() uint64)
}

// atomQueue is the workload queue of one atom: the union of the pending
// W_j^i over all queries (§III.C).
type atomQueue struct {
	id        store.AtomID
	subs      []*query.SubQuery
	positions int
	oldest    time.Duration // enqueue time of the oldest sub-query

	// ut memoizes the Eq. 1 value, valid iff utSeen == queues.epoch
	// (see index.go for the invariant).
	ut     float64
	utSeen uint64
	// heapIdx is the position in queues.heap, -1 when not a member.
	heapIdx int
}

// queues indexes the atom queues by atom and by time step. See index.go
// for the incremental structures (sorted step buckets, memo epochs, the
// indexed max-heap, and the freelists).
type queues struct {
	byAtom   map[store.AtomID]*atomQueue
	buckets  []*stepBucket // step-ascending; buckets[i].step == steps[i]
	steps    []int         // memoized PendingSteps answer
	subs     int
	resident func(store.AtomID) bool
	cost     CostModel

	// Residency-version gating for the utility memos (see syncResidency).
	resVersion func() uint64
	lastRes    uint64
	haveRes    bool
	epoch      uint64

	// Indexed max-heap over all pending atoms (ut desc, key asc); engaged
	// by LifeRaft at α = 0, rebuilt lazily when the epoch moves.
	heap     []*atomQueue
	heapSeen uint64
	useHeap  bool

	// Freelists and the deferred-recycle list backing the zero-allocation
	// decision path.
	freeAtoms   []*atomQueue
	freeBuckets []*stepBucket
	released    []*atomQueue

	// Recompute counters (regression tests pin that memoization works).
	utRecomputes      int
	stepSumRecomputes int
}

func newQueues(cost CostModel, resident func(store.AtomID) bool) *queues {
	if resident == nil {
		resident = func(store.AtomID) bool { return false }
	}
	return &queues{
		byAtom:   make(map[store.AtomID]*atomQueue),
		resident: resident,
		cost:     cost,
		epoch:    1,
	}
}

// setResidencyVersion installs the residency version source, enabling
// cross-call memoization (and the heap, for schedulers that want it).
func (q *queues) setResidencyVersion(fn func() uint64) {
	q.resVersion = fn
	q.haveRes = false
	q.epoch++
}

func (q *queues) add(sq *query.SubQuery, now time.Duration) {
	q.syncResidency()
	aq, ok := q.byAtom[sq.Atom]
	if !ok {
		aq = q.newAtomQueue(sq.Atom)
		aq.oldest = now
		q.byAtom[sq.Atom] = aq
		q.bucketFor(sq.Atom.Step, true).insertAtom(aq)
		aq.subs = append(aq.subs, sq)
		aq.positions += len(sq.Points)
		q.subs++
		if q.heapValid() {
			q.ut(aq)
			q.heapPush(aq)
		}
		return
	}
	aq.subs = append(aq.subs, sq)
	aq.positions += len(sq.Points)
	aq.utSeen = 0 // positions changed: the memoized ut is stale
	q.subs++
	if b := q.bucketFor(sq.Atom.Step, false); b != nil {
		b.sumSeen = 0
	}
	if q.heapValid() {
		q.ut(aq)
		q.heapFix(aq)
	}
}

// take removes the queue of atom id, returning it as a Batch. The
// Batch's SubQueries slice is recycled at the start of the next
// NextBatch call (see beginDecision).
func (q *queues) take(id store.AtomID) Batch {
	aq := q.byAtom[id]
	delete(q.byAtom, id)
	b := q.bucketFor(id.Step, false)
	b.removeAtom(aq)
	if len(b.atoms) == 0 {
		q.dropBucket(b)
	}
	if q.heapValid() && aq.heapIdx >= 0 {
		q.heapRemove(aq)
	}
	q.subs -= len(aq.subs)
	q.released = append(q.released, aq)
	return Batch{Atom: aq.id, SubQueries: aq.subs}
}

// ut computes the workload throughput metric of Eq. 1:
//
//	U_t(i) = ΣW / (T_b·φ(i) + T_m·ΣW)
//
// in positions per second, where φ(i) is 0 if the atom is resident in the
// cache and 1 otherwise. The value is memoized per residency epoch when a
// version source is installed; recomputation reproduces the identical
// float (same expression, same inputs), which the oracle certifies.
func (q *queues) ut(aq *atomQueue) float64 {
	if q.memoOK() && aq.utSeen == q.epoch {
		return aq.ut
	}
	q.utRecomputes++
	w := float64(aq.positions)
	phi := 1.0
	if q.resident(aq.id) {
		phi = 0
	}
	denom := q.cost.Tb.Seconds()*phi + q.cost.Tm.Seconds()*w
	v := 0.0
	if denom > 0 {
		v = w / denom
	}
	if q.memoOK() {
		aq.ut = v
		aq.utSeen = q.epoch
	}
	return v
}

// ue computes the aged workload throughput metric of Eq. 2:
//
//	U_e(i) = U_t(i)·(1−α) + E(i)·α
//
// where E(i) is the queuing time of the oldest sub-query, in milliseconds
// (the paper's unit).
func (q *queues) ue(aq *atomQueue, alpha float64, now time.Duration) float64 {
	ageMs := float64(now-aq.oldest) / float64(time.Millisecond)
	return q.ut(aq)*(1-alpha) + ageMs*alpha
}

// stepUtSum returns Σ U_t over the bucket's atoms, accumulated in Morton
// order, memoized per epoch. At α = 0 this is also Σ U_e bitwise:
// ut·(1−0) ≡ ut and ageMs·0 ≡ +0.0 for the non-negative finite ages the
// virtual clock produces, and x + 0.0 ≡ x for the non-negative ut.
func (q *queues) stepUtSum(b *stepBucket) float64 {
	if q.memoOK() && b.sumSeen == q.epoch {
		return b.utSum
	}
	q.stepSumRecomputes++
	sum := 0.0
	for _, aq := range b.atoms {
		sum += q.ut(aq)
	}
	if q.memoOK() {
		b.utSum = sum
		b.sumSeen = q.epoch
	}
	return sum
}

// stepMeanUeBucket returns the mean aged metric over the bucket's atoms.
// The α = 0 case reuses the memoized Σ U_t (bitwise-identical, see
// stepUtSum); otherwise the age terms are time-dependent and the sum is
// rebuilt each call — in the same Morton order as the reference model.
func (q *queues) stepMeanUeBucket(b *stepBucket, alpha float64, now time.Duration) float64 {
	if len(b.atoms) == 0 {
		return 0
	}
	if alpha == 0 {
		return q.stepUtSum(b) / float64(len(b.atoms))
	}
	sum := 0.0
	for _, aq := range b.atoms {
		sum += q.ue(aq, alpha, now)
	}
	return sum / float64(len(b.atoms))
}

// stepMeanUt returns the mean un-aged metric over the pending atoms.
func (q *queues) stepMeanUt(step int) float64 {
	b := q.bucketFor(step, false)
	if b == nil || len(b.atoms) == 0 {
		return 0
	}
	return q.stepUtSum(b) / float64(len(b.atoms))
}
