// Package sched implements the query schedulers the paper evaluates:
//
//   - NoShare — every query evaluated independently, in arrival order;
//   - LifeRaft — data-driven batch processing by the (aged) workload
//     throughput metric of §III.C, with a fixed age bias α;
//   - JAWS — LifeRaft extended with two-level scheduling (§V) and
//     adaptive starvation resistance (§V.A). Job-aware gating (§IV) is
//     layered on by the execution engine via the jobgraph package.
//
// A scheduler owns the per-atom workload queues: each pending sub-query
// sits in the queue of its primary atom, and the scheduler picks which
// atom queue(s) to drain next.
package sched

import (
	"sort"
	"time"

	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/store"
)

// CostModel carries the constants of Eq. 1: T_b estimates the time to
// read an atom from disk and T_m the computation cost of a single
// position. Both are derived empirically (the engine measures T_b from
// the disk model's parameters).
type CostModel struct {
	Tb time.Duration
	Tm time.Duration
}

// Batch is one unit of execution handed to the engine: all pending
// sub-queries of one atom, co-scheduled in a single pass over the data.
type Batch struct {
	Atom       store.AtomID
	SubQueries []*query.SubQuery
}

// Positions returns the total number of positions in the batch.
func (b *Batch) Positions() int {
	n := 0
	for _, sq := range b.SubQueries {
		n += len(sq.Points)
	}
	return n
}

// Scheduler is the engine-facing interface all three algorithms satisfy.
// Implementations are not safe for concurrent use; the engine serializes.
type Scheduler interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Enqueue admits one pre-processed sub-query at virtual time now.
	Enqueue(sq *query.SubQuery, now time.Duration)
	// NextBatch selects and removes the next batch(es) of work. It
	// returns nil when no work is pending.
	NextBatch(now time.Duration) []Batch
	// Pending reports the number of queued sub-queries.
	Pending() int
	// OnRunEnd delivers the measured mean response time (seconds) and
	// query throughput (queries/second) of the run that just ended;
	// adaptive schedulers tune their age bias here.
	OnRunEnd(rt, tp float64)
	// Alpha reports the current age bias (diagnostic; 0 for NoShare).
	Alpha() float64
}

// Traced is implemented by schedulers that can emit per-decision trace
// events (the atom picked, the decision's batch size, and the U_t/U_e/α
// values that justified the pick). The engine installs the tracer when
// observability is configured; a nil tracer disables emission.
type Traced interface {
	SetTracer(t *obs.Tracer)
}

// UtilityProvider is implemented by contention-based schedulers that can
// expose their ranking for cache coordination (URC, §V.B).
type UtilityProvider interface {
	// AtomUtility returns the current workload-throughput metric of the
	// atom (0 if it has no pending work).
	AtomUtility(id store.AtomID) float64
	// StepMean returns the mean workload throughput of the step's pending
	// atoms (0 if the step has no pending work).
	StepMean(step int) float64
	// PendingSteps lists the steps with pending work.
	PendingSteps() []int
}

// atomQueue is the workload queue of one atom: the union of the pending
// W_j^i over all queries (§III.C).
type atomQueue struct {
	id        store.AtomID
	subs      []*query.SubQuery
	positions int
	oldest    time.Duration // enqueue time of the oldest sub-query
}

// queues indexes the atom queues by atom and by time step.
type queues struct {
	byAtom   map[store.AtomID]*atomQueue
	byStep   map[int]map[store.AtomID]*atomQueue
	subs     int
	resident func(store.AtomID) bool
	cost     CostModel
}

func newQueues(cost CostModel, resident func(store.AtomID) bool) *queues {
	if resident == nil {
		resident = func(store.AtomID) bool { return false }
	}
	return &queues{
		byAtom:   make(map[store.AtomID]*atomQueue),
		byStep:   make(map[int]map[store.AtomID]*atomQueue),
		resident: resident,
		cost:     cost,
	}
}

func (q *queues) add(sq *query.SubQuery, now time.Duration) {
	aq, ok := q.byAtom[sq.Atom]
	if !ok {
		aq = &atomQueue{id: sq.Atom, oldest: now}
		q.byAtom[sq.Atom] = aq
		step := q.byStep[sq.Atom.Step]
		if step == nil {
			step = make(map[store.AtomID]*atomQueue)
			q.byStep[sq.Atom.Step] = step
		}
		step[sq.Atom] = aq
	}
	aq.subs = append(aq.subs, sq)
	aq.positions += len(sq.Points)
	q.subs++
}

// take removes and returns the queue of atom id as a Batch.
func (q *queues) take(id store.AtomID) Batch {
	aq := q.byAtom[id]
	delete(q.byAtom, id)
	step := q.byStep[id.Step]
	delete(step, id)
	if len(step) == 0 {
		delete(q.byStep, id.Step)
	}
	q.subs -= len(aq.subs)
	return Batch{Atom: aq.id, SubQueries: aq.subs}
}

// ut computes the workload throughput metric of Eq. 1:
//
//	U_t(i) = ΣW / (T_b·φ(i) + T_m·ΣW)
//
// in positions per second, where φ(i) is 0 if the atom is resident in the
// cache and 1 otherwise.
func (q *queues) ut(aq *atomQueue) float64 {
	w := float64(aq.positions)
	phi := 1.0
	if q.resident(aq.id) {
		phi = 0
	}
	denom := q.cost.Tb.Seconds()*phi + q.cost.Tm.Seconds()*w
	if denom <= 0 {
		return 0
	}
	return w / denom
}

// ue computes the aged workload throughput metric of Eq. 2:
//
//	U_e(i) = U_t(i)·(1−α) + E(i)·α
//
// where E(i) is the queuing time of the oldest sub-query, in milliseconds
// (the paper's unit).
func (q *queues) ue(aq *atomQueue, alpha float64, now time.Duration) float64 {
	ageMs := float64(now-aq.oldest) / float64(time.Millisecond)
	return q.ut(aq)*(1-alpha) + ageMs*alpha
}

// sortedStepQueues returns the step's atom queues in Morton order.
// Iterating the map directly would make floating-point sums depend on the
// runtime's map order and turn whole simulations non-deterministic.
func (q *queues) sortedStepQueues(step int) []*atomQueue {
	atoms := q.byStep[step]
	out := make([]*atomQueue, 0, len(atoms))
	for _, aq := range atoms {
		out = append(out, aq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id.Key() < out[j].id.Key() })
	return out
}

// stepMeanUe returns the mean aged metric over the pending atoms of step.
func (q *queues) stepMeanUe(step int, alpha float64, now time.Duration) float64 {
	atoms := q.sortedStepQueues(step)
	if len(atoms) == 0 {
		return 0
	}
	sum := 0.0
	for _, aq := range atoms {
		sum += q.ue(aq, alpha, now)
	}
	return sum / float64(len(atoms))
}

// stepMeanUt returns the mean un-aged metric over the pending atoms.
func (q *queues) stepMeanUt(step int) float64 {
	atoms := q.sortedStepQueues(step)
	if len(atoms) == 0 {
		return 0
	}
	sum := 0.0
	for _, aq := range atoms {
		sum += q.ut(aq)
	}
	return sum / float64(len(atoms))
}
