package sched

import (
	"sort"

	"jaws/internal/store"
)

// This file holds the incremental index structures behind the queues
// type: per-step Morton-sorted buckets with memoized utility aggregates,
// an indexed max-heap over candidate atoms, and the freelists that keep
// the decision path allocation-free.
//
// Invariants (each checked by the differential oracle, which replays
// every decision through a naive rescan model):
//
//   - buckets is sorted by step ascending and steps[i] == buckets[i].step;
//     iterating buckets then each bucket's atoms (key-ascending) visits
//     atoms in exactly the global clustered-index key order the reference
//     model iterates in, so floating-point accumulation order is
//     identical.
//   - A memoized value stamped with seen == epoch equals the value a
//     fresh recomputation would produce: the epoch advances whenever the
//     residency version changes, and per-atom/per-bucket stamps are
//     zeroed whenever positions or membership change, so a valid stamp
//     implies every input of the memo is unchanged.
//   - When heapSeen == epoch the heap contains exactly the pending atoms,
//     every member's ut stamp is current, heapIdx back-pointers are
//     consistent, and the max-heap property holds under the total order
//     (ut descending, key ascending) — whose maximum is the same atom a
//     key-ascending scan with strict > selects.

// stepBucket is the per-time-step index: the step's pending atom queues
// in Morton (clustered-key) order plus the memoized Σ U_t aggregate.
type stepBucket struct {
	step  int
	atoms []*atomQueue // key-ascending
	// utSum is Σ ut over atoms, valid iff sumSeen == queues.epoch.
	utSum   float64
	sumSeen uint64
}

// insertAtom places aq into the bucket's key-sorted slice.
func (b *stepBucket) insertAtom(aq *atomQueue) {
	key := aq.id.Key()
	i := sort.Search(len(b.atoms), func(i int) bool { return b.atoms[i].id.Key() >= key })
	b.atoms = append(b.atoms, nil)
	copy(b.atoms[i+1:], b.atoms[i:])
	b.atoms[i] = aq
	b.sumSeen = 0
}

// removeAtom deletes aq from the bucket's key-sorted slice.
func (b *stepBucket) removeAtom(aq *atomQueue) {
	key := aq.id.Key()
	i := sort.Search(len(b.atoms), func(i int) bool { return b.atoms[i].id.Key() >= key })
	copy(b.atoms[i:], b.atoms[i+1:])
	b.atoms[len(b.atoms)-1] = nil
	b.atoms = b.atoms[:len(b.atoms)-1]
	b.sumSeen = 0
}

// bucketFor returns the bucket of step, creating it (in step order) when
// create is set. Returns nil when absent and create is false.
func (q *queues) bucketFor(step int, create bool) *stepBucket {
	i := sort.Search(len(q.buckets), func(i int) bool { return q.buckets[i].step >= step })
	if i < len(q.buckets) && q.buckets[i].step == step {
		return q.buckets[i]
	}
	if !create {
		return nil
	}
	var b *stepBucket
	if n := len(q.freeBuckets); n > 0 {
		b = q.freeBuckets[n-1]
		q.freeBuckets[n-1] = nil
		q.freeBuckets = q.freeBuckets[:n-1]
		b.step = step
	} else {
		b = &stepBucket{step: step}
	}
	q.buckets = append(q.buckets, nil)
	copy(q.buckets[i+1:], q.buckets[i:])
	q.buckets[i] = b
	q.steps = append(q.steps, 0)
	copy(q.steps[i+1:], q.steps[i:])
	q.steps[i] = step
	return b
}

// dropBucket removes an emptied bucket from the step index and recycles
// it.
func (q *queues) dropBucket(b *stepBucket) {
	i := sort.Search(len(q.buckets), func(i int) bool { return q.buckets[i].step >= b.step })
	copy(q.buckets[i:], q.buckets[i+1:])
	q.buckets[len(q.buckets)-1] = nil
	q.buckets = q.buckets[:len(q.buckets)-1]
	copy(q.steps[i:], q.steps[i+1:])
	q.steps = q.steps[:len(q.steps)-1]
	b.atoms = b.atoms[:0]
	b.sumSeen = 0
	q.freeBuckets = append(q.freeBuckets, b)
}

// --- residency-version gating -------------------------------------------

// syncResidency advances the memo epoch when the cache may have changed
// since the last call. Without a version source memoization stays off
// (every read recomputes — always exact); the engine installs the cache's
// mutation counter via SetResidencyVersion, after which φ-dependent memos
// survive across calls until the counter moves.
func (q *queues) syncResidency() {
	if q.resVersion == nil {
		return
	}
	v := q.resVersion()
	if !q.haveRes || v != q.lastRes {
		q.haveRes = true
		q.lastRes = v
		q.epoch++
	}
}

// memoOK reports whether cross-call memoization is safe.
func (q *queues) memoOK() bool { return q.resVersion != nil }

// --- indexed max-heap ---------------------------------------------------

// heapLess is the heap's total order: U_t descending, clustered key
// ascending. Its maximum is exactly the atom a key-ascending scan with
// strict > keeps, which is what the reference model computes.
func heapLess(a, b *atomQueue) bool {
	if a.ut != b.ut {
		return a.ut > b.ut
	}
	return a.id.Key() < b.id.Key()
}

// heapValid reports whether the heap mirrors the current epoch. The heap
// requires memoization (it compares cached ut values), so without a
// residency version source it stays disengaged and callers fall back to
// the exact linear scan.
func (q *queues) heapValid() bool { return q.useHeap && q.memoOK() && q.heapSeen == q.epoch }

// heapRebuild reconstructs the heap from the buckets: recompute every
// atom's ut at the current epoch, then heapify.
func (q *queues) heapRebuild() {
	q.heap = q.heap[:0]
	for _, b := range q.buckets {
		for _, aq := range b.atoms {
			q.ut(aq)
			aq.heapIdx = len(q.heap)
			q.heap = append(q.heap, aq)
		}
	}
	for i := len(q.heap)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
	q.heapSeen = q.epoch
}

// heapTop returns the maximum under heapLess, rebuilding if stale.
func (q *queues) heapTop() *atomQueue {
	if !q.heapValid() {
		q.heapRebuild()
	}
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

func (q *queues) heapPush(aq *atomQueue) {
	aq.heapIdx = len(q.heap)
	q.heap = append(q.heap, aq)
	q.siftUp(aq.heapIdx)
}

func (q *queues) heapRemove(aq *atomQueue) {
	i := aq.heapIdx
	last := len(q.heap) - 1
	q.heap[i] = q.heap[last]
	q.heap[i].heapIdx = i
	q.heap[last] = nil
	q.heap = q.heap[:last]
	aq.heapIdx = -1
	if i < last {
		q.siftDown(i)
		q.siftUp(i)
	}
}

// heapFix restores the heap property around aq after its ut changed.
func (q *queues) heapFix(aq *atomQueue) {
	q.siftDown(aq.heapIdx)
	q.siftUp(aq.heapIdx)
}

func (q *queues) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(q.heap[i], q.heap[parent]) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		q.heap[i].heapIdx = i
		q.heap[parent].heapIdx = parent
		i = parent
	}
}

func (q *queues) siftDown(i int) {
	n := len(q.heap)
	for {
		best := i
		if l := 2*i + 1; l < n && heapLess(q.heap[l], q.heap[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && heapLess(q.heap[r], q.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		q.heap[i], q.heap[best] = q.heap[best], q.heap[i]
		q.heap[i].heapIdx = i
		q.heap[best].heapIdx = best
		i = best
	}
}

// --- freelists ----------------------------------------------------------

// newAtomQueue returns a recycled (or fresh) atom queue for id.
func (q *queues) newAtomQueue(id store.AtomID) *atomQueue {
	if n := len(q.freeAtoms); n > 0 {
		aq := q.freeAtoms[n-1]
		q.freeAtoms[n-1] = nil
		q.freeAtoms = q.freeAtoms[:n-1]
		aq.id = id
		return aq
	}
	return &atomQueue{id: id, heapIdx: -1}
}

// beginDecision recycles the atom queues released by the previous
// decision. It runs at the top of every NextBatch, which is what bounds
// the lifetime of returned batches (see the Scheduler contract): the
// SubQueries slices handed out by the previous decision are reused from
// here on.
func (q *queues) beginDecision() {
	for i, aq := range q.released {
		for j := range aq.subs {
			aq.subs[j] = nil // drop sub-query references so completed queries can be collected
		}
		aq.subs = aq.subs[:0]
		aq.positions = 0
		aq.oldest = 0
		aq.utSeen = 0
		aq.heapIdx = -1
		q.freeAtoms = append(q.freeAtoms, aq)
		q.released[i] = nil
	}
	q.released = q.released[:0]
}
