package sched

import (
	"testing"
	"time"

	"jaws/internal/field"
	"jaws/internal/geom"
	"jaws/internal/morton"
	"jaws/internal/query"
	"jaws/internal/store"
)

var testCost = CostModel{Tb: 50 * time.Millisecond, Tm: 20 * time.Microsecond}

func testSpace() geom.Space { return geom.Space{GridSide: 128, AtomSide: 32} }

// subQueryAt builds a sub-query of n positions in atom (i,j,k) of step for
// query qid.
func subQueryAt(qid query.ID, step int, i, j, k uint32, n int) *query.SubQuery {
	s := testSpace()
	atomLen := float64(s.AtomSide) * s.VoxelSize()
	pts := make([]geom.Position, n)
	for p := 0; p < n; p++ {
		frac := (float64(p) + 0.5) / float64(n)
		pts[p] = geom.Position{
			X: (float64(i) + frac) * atomLen,
			Y: (float64(j) + 0.5) * atomLen,
			Z: (float64(k) + 0.5) * atomLen,
		}
	}
	q := &query.Query{ID: qid, Step: step, Points: pts, Kernel: field.KernelNone}
	sqs, err := query.PreProcess(q, s)
	if err != nil {
		panic(err)
	}
	if len(sqs) != 1 {
		panic("subQueryAt positions spilled atoms")
	}
	return sqs[0]
}

func TestUtMetric(t *testing.T) {
	q := newQueues(testCost, nil)
	sq := subQueryAt(1, 0, 0, 0, 0, 100)
	q.add(sq, 0)
	aq := q.byAtom[sq.Atom]
	// W=100, φ=1: Ut = 100 / (0.05 + 100·20e-6) = 100/0.052.
	want := 100.0 / 0.052
	if got := q.ut(aq); got < want*0.999 || got > want*1.001 {
		t.Fatalf("Ut = %g, want %g", got, want)
	}
}

func TestUtResidentAtomSkipsIOCost(t *testing.T) {
	resident := func(store.AtomID) bool { return true }
	q := newQueues(testCost, resident)
	sq := subQueryAt(1, 0, 0, 0, 0, 100)
	q.add(sq, 0)
	aq := q.byAtom[sq.Atom]
	// φ=0: Ut = 100 / (100·20e-6) = 1/Tm.
	want := 1.0 / testCost.Tm.Seconds()
	if got := q.ut(aq); got < want*0.999 || got > want*1.001 {
		t.Fatalf("resident Ut = %g, want %g", got, want)
	}
}

func TestUtMoreContentionHigherScore(t *testing.T) {
	q := newQueues(testCost, nil)
	small := subQueryAt(1, 0, 0, 0, 0, 10)
	big := subQueryAt(2, 0, 1, 0, 0, 1000)
	q.add(small, 0)
	q.add(big, 0)
	if q.ut(q.byAtom[big.Atom]) <= q.ut(q.byAtom[small.Atom]) {
		t.Fatal("longer workload queue did not score higher")
	}
}

func TestUeAgeBias(t *testing.T) {
	q := newQueues(testCost, nil)
	old := subQueryAt(1, 0, 0, 0, 0, 5)
	hot := subQueryAt(2, 0, 1, 0, 0, 5000)
	q.add(old, 0)
	q.add(hot, 10*time.Second)
	now := 11 * time.Second
	// α=0: pure contention — hot wins.
	if q.ue(q.byAtom[hot.Atom], 0, now) <= q.ue(q.byAtom[old.Atom], 0, now) {
		t.Fatal("α=0 did not favour contention")
	}
	// α=1: pure age — old wins (11000 ms vs 1000 ms).
	if q.ue(q.byAtom[old.Atom], 1, now) <= q.ue(q.byAtom[hot.Atom], 1, now) {
		t.Fatal("α=1 did not favour age")
	}
}

func TestNoShareArrivalOrder(t *testing.T) {
	s := NewNoShare()
	// Query 2 arrives first, then query 1.
	s.Enqueue(subQueryAt(2, 0, 0, 0, 0, 10), 0)
	s.Enqueue(subQueryAt(2, 0, 1, 0, 0, 10), 0)
	s.Enqueue(subQueryAt(1, 0, 2, 0, 0, 10), time.Second)
	if s.Pending() != 3 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	first := s.NextBatch(2 * time.Second)
	if len(first) != 2 {
		t.Fatalf("first NextBatch = %d batches, want query 2's two atoms", len(first))
	}
	for _, b := range first {
		if b.SubQueries[0].Query.ID != 2 {
			t.Fatal("NoShare broke arrival order")
		}
	}
	second := s.NextBatch(2 * time.Second)
	if len(second) != 1 || second[0].SubQueries[0].Query.ID != 1 {
		t.Fatal("second query not served next")
	}
	if s.NextBatch(0) != nil {
		t.Fatal("empty scheduler returned work")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", s.Pending())
	}
}

func TestNoShareNeverCoSchedules(t *testing.T) {
	s := NewNoShare()
	// Two queries touch the same atom; each batch must contain sub-queries
	// of exactly one query.
	s.Enqueue(subQueryAt(1, 0, 0, 0, 0, 10), 0)
	s.Enqueue(subQueryAt(2, 0, 0, 0, 0, 10), 0)
	for batches := s.NextBatch(0); batches != nil; batches = s.NextBatch(0) {
		for _, b := range batches {
			qid := b.SubQueries[0].Query.ID
			for _, sq := range b.SubQueries {
				if sq.Query.ID != qid {
					t.Fatal("NoShare co-scheduled two queries")
				}
			}
		}
	}
}

func TestLifeRaftPicksMostContended(t *testing.T) {
	s := NewLifeRaft(testCost, 0, nil)
	s.Enqueue(subQueryAt(1, 0, 0, 0, 0, 10), 0)
	s.Enqueue(subQueryAt(2, 0, 1, 0, 0, 500), 0)
	s.Enqueue(subQueryAt(3, 0, 1, 0, 0, 500), 0) // same atom as query 2
	batches := s.NextBatch(time.Second)
	if len(batches) != 1 {
		t.Fatalf("LifeRaft scheduled %d atoms, want exactly 1", len(batches))
	}
	b := batches[0]
	if b.Atom != (store.AtomID{Step: 0, Code: morton.Encode(1, 0, 0)}) {
		t.Fatalf("picked %v, want the contended atom", b.Atom)
	}
	if len(b.SubQueries) != 2 || b.Positions() != 1000 {
		t.Fatalf("batch did not co-schedule both queries: %d subs, %d positions",
			len(b.SubQueries), b.Positions())
	}
}

func TestLifeRaftAlphaOneServesOldest(t *testing.T) {
	s := NewLifeRaft(testCost, 1, nil)
	s.Enqueue(subQueryAt(1, 0, 0, 0, 0, 1), 0)                   // old, tiny
	s.Enqueue(subQueryAt(2, 0, 1, 0, 0, 100000), 10*time.Second) // new, huge
	batches := s.NextBatch(20 * time.Second)
	if batches[0].SubQueries[0].Query.ID != 1 {
		t.Fatal("α=1 LifeRaft did not serve the oldest queue")
	}
}

func TestLifeRaftAlphaClamped(t *testing.T) {
	if NewLifeRaft(testCost, -1, nil).Alpha() != 0 {
		t.Fatal("negative α not clamped")
	}
	if NewLifeRaft(testCost, 2, nil).Alpha() != 1 {
		t.Fatal("α>1 not clamped")
	}
}

func TestLifeRaftEmptyNextBatch(t *testing.T) {
	if NewLifeRaft(testCost, 0, nil).NextBatch(0) != nil {
		t.Fatal("empty LifeRaft returned work")
	}
}

func TestJAWSTwoLevelSelection(t *testing.T) {
	s := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 3, InitialAlpha: 0})
	// Step 0: three hot atoms + one cold; step 1: one lukewarm atom.
	s.Enqueue(subQueryAt(1, 0, 0, 0, 0, 500), 0)
	s.Enqueue(subQueryAt(2, 0, 1, 0, 0, 500), 0)
	s.Enqueue(subQueryAt(3, 0, 2, 0, 0, 500), 0)
	s.Enqueue(subQueryAt(4, 0, 3, 0, 0, 1), 0)
	s.Enqueue(subQueryAt(5, 1, 0, 0, 0, 50), 0)
	batches := s.NextBatch(time.Second)
	if len(batches) == 0 {
		t.Fatal("no batches")
	}
	for _, b := range batches {
		if b.Atom.Step != 0 {
			t.Fatalf("two-level selection leaked step %d", b.Atom.Step)
		}
	}
	// The cold atom (1 position) is below the step mean and must not be
	// selected; the three hot atoms all exceed the mean.
	if len(batches) != 3 {
		t.Fatalf("selected %d atoms, want the 3 above-mean atoms", len(batches))
	}
	for i := 1; i < len(batches); i++ {
		if batches[i-1].Atom.Key() >= batches[i].Atom.Key() {
			t.Fatal("batch atoms not in Morton order")
		}
	}
}

func TestJAWSBatchSizeCapsSelection(t *testing.T) {
	s := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 2, InitialAlpha: 0})
	// Many equal hot atoms plus one clearly-below-mean atom so "above
	// mean" selects the hot ones.
	for i := uint32(0); i < 4; i++ {
		s.Enqueue(subQueryAt(query.ID(i+1), 0, i, 0, 0, 500), 0)
	}
	s.Enqueue(subQueryAt(99, 0, 0, 1, 0, 1), 0)
	batches := s.NextBatch(time.Second)
	if len(batches) > 2 {
		t.Fatalf("batch size 2 exceeded: %d", len(batches))
	}
}

func TestJAWSFallbackWhenAllEqual(t *testing.T) {
	s := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 5, InitialAlpha: 0})
	// Two identical queues: neither strictly exceeds the mean; JAWS must
	// still make progress with the single best atom.
	s.Enqueue(subQueryAt(1, 0, 0, 0, 0, 100), 0)
	s.Enqueue(subQueryAt(2, 0, 1, 0, 0, 100), 0)
	batches := s.NextBatch(time.Second)
	if len(batches) != 1 {
		t.Fatalf("fallback selected %d atoms, want 1", len(batches))
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d after one batch", s.Pending())
	}
}

func TestJAWSDefaultBatchSize(t *testing.T) {
	if NewJAWS(JAWSConfig{Cost: testCost}).BatchSize() != 15 {
		t.Fatal("default k != 15 (the paper's evaluation setting)")
	}
}

func TestJAWSDrainsEverything(t *testing.T) {
	s := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 4, InitialAlpha: 0.5})
	total := 0
	for step := 0; step < 3; step++ {
		for i := uint32(0); i < 4; i++ {
			s.Enqueue(subQueryAt(query.ID(step*10+int(i)), step, i, i, 0, 10+int(i)*5), 0)
			total++
		}
	}
	seen := 0
	for rounds := 0; s.Pending() > 0; rounds++ {
		batches := s.NextBatch(time.Duration(rounds) * time.Second)
		if len(batches) == 0 {
			t.Fatal("pending work but no batches")
		}
		for _, b := range batches {
			seen += len(b.SubQueries)
		}
		if rounds > 1000 {
			t.Fatal("drain did not terminate")
		}
	}
	if seen != total {
		t.Fatalf("drained %d sub-queries, want %d", seen, total)
	}
}

func TestUtilityProvider(t *testing.T) {
	s := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 3})
	sq := subQueryAt(1, 2, 0, 0, 0, 100)
	s.Enqueue(sq, 0)
	if s.AtomUtility(sq.Atom) <= 0 {
		t.Fatal("pending atom has zero utility")
	}
	if s.AtomUtility(store.AtomID{Step: 9, Code: 0}) != 0 {
		t.Fatal("idle atom has nonzero utility")
	}
	if s.StepMean(2) <= 0 {
		t.Fatal("pending step has zero mean")
	}
	steps := s.PendingSteps()
	if len(steps) != 1 || steps[0] != 2 {
		t.Fatalf("PendingSteps = %v", steps)
	}
}

func TestAlphaControllerRule1DecreasesAlpha(t *testing.T) {
	c := newAlphaController(0.5, true)
	c.onRunEnd(1.0, 1.0) // baseline
	// Response time doubling, throughput flat → bias toward contention.
	c.onRunEnd(3.0, 1.0)
	if c.alpha >= 0.5 {
		t.Fatalf("α = %g, want decreased from 0.5", c.alpha)
	}
	if c.alpha < 0 {
		t.Fatalf("α = %g fell below 0", c.alpha)
	}
}

func TestAlphaControllerRule2IncreasesAlpha(t *testing.T) {
	c := newAlphaController(0.3, true)
	c.onRunEnd(10.0, 5.0)
	// Saturation falls (rt ratio < 1) and throughput falls faster.
	c.onRunEnd(7.0, 1.0)
	if c.alpha <= 0.3 {
		t.Fatalf("α = %g, want increased from 0.3", c.alpha)
	}
	if c.alpha > 1 {
		t.Fatalf("α = %g exceeded 1", c.alpha)
	}
}

func TestAlphaControllerDisabled(t *testing.T) {
	c := newAlphaController(0.5, false)
	c.onRunEnd(1, 1)
	c.onRunEnd(100, 0.001)
	if c.alpha != 0.5 {
		t.Fatalf("non-adaptive α moved to %g", c.alpha)
	}
}

func TestAlphaControllerExploresWhenFlat(t *testing.T) {
	c := newAlphaController(0.5, true)
	for i := 0; i < 4; i++ {
		c.onRunEnd(2.0, 3.0) // perfectly flat
	}
	if c.alpha == 0.5 {
		t.Fatal("controller stuck at initial α despite flat trade-off curve")
	}
}

func TestAlphaControllerBoundsProperty(t *testing.T) {
	// α must remain in [0,1] under any observation sequence.
	c := newAlphaController(0.5, true)
	vals := []struct{ rt, tp float64 }{
		{1, 1}, {10, 0.1}, {0.01, 5}, {100, 100}, {0.5, 0.5}, {3, 0.2}, {0.1, 0.1},
	}
	for _, v := range vals {
		c.onRunEnd(v.rt, v.tp)
		if c.alpha < 0 || c.alpha > 1 {
			t.Fatalf("α = %g out of bounds", c.alpha)
		}
	}
	if len(c.History) == 0 {
		t.Fatal("controller recorded no history")
	}
}

func TestBatchPositions(t *testing.T) {
	b := Batch{SubQueries: []*query.SubQuery{
		subQueryAt(1, 0, 0, 0, 0, 7),
		subQueryAt(2, 0, 0, 0, 0, 5),
	}}
	if b.Positions() != 12 {
		t.Fatalf("Positions = %d", b.Positions())
	}
}

func BenchmarkJAWSNextBatch(b *testing.B) {
	s := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 15})
	for step := 0; step < 8; step++ {
		for i := uint32(0); i < 4; i++ {
			for j := uint32(0); j < 4; j++ {
				s.Enqueue(subQueryAt(query.ID(step*100+int(i)*10+int(j)), step, i, j, 0, 50), 0)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batches := s.NextBatch(time.Second)
		// Re-enqueue to keep the scheduler loaded.
		for _, batch := range batches {
			for _, sq := range batch.SubQueries {
				s.Enqueue(sq, time.Second)
			}
		}
	}
}
