package sched

import (
	"testing"
	"time"

	"jaws/internal/query"
	"jaws/internal/store"
)

// The decision path must be allocation-free in steady state: once the
// freelists and decision buffers have warmed up, Enqueue and NextBatch
// perform zero heap allocations per round for every scheduler. This pins
// the incremental-index design (no per-decision sorting or map building);
// make check runs it with the rest of the package tests.

// allocWorkload returns a mixed set of sub-queries spanning several steps
// and atoms, some sharing an atom queue.
func allocWorkload() []*query.SubQuery {
	var sqs []*query.SubQuery
	qid := query.ID(1)
	for step := 0; step < 3; step++ {
		for a := uint32(0); a < 4; a++ {
			sqs = append(sqs, subQueryAt(qid, step, a, 0, 0, 10+int(a)*25))
			qid++
		}
	}
	// Contention: second sub-queries on two of the atoms.
	sqs = append(sqs, subQueryAt(qid, 1, 2, 0, 0, 40))
	qid++
	sqs = append(sqs, subQueryAt(qid, 2, 3, 0, 0, 15))
	return sqs
}

// derivAllocWorkload is the scenario-matrix shape: temporal-derivative
// chains fan one query out into sub-queries on the same atom across k
// adjacent steps, mixed with point sub-queries contending for the same
// atoms. Multi-step same-query fan-out is the pattern the deriv-chain
// scenario feeds the schedulers; it must be as allocation-free as the
// point path.
func derivAllocWorkload() []*query.SubQuery {
	var sqs []*query.SubQuery
	qid := query.ID(100)
	for a := uint32(0); a < 4; a++ {
		sqs = append(sqs, subQueryChain(qid, 0, a, 0, 0, 10+int(a)*25, 3)...)
		qid++
	}
	// Contention: point sub-queries on atoms the chains also touch.
	sqs = append(sqs, subQueryAt(qid, 1, 2, 0, 0, 40))
	qid++
	sqs = append(sqs, subQueryAt(qid, 2, 3, 0, 0, 15))
	return sqs
}

// subQueryChain pre-processes one derivative query chaining `chain`
// steps from `step` inside atom (i,j,k), returning all its sub-queries.
func subQueryChain(qid query.ID, step int, i, j, k uint32, n, chain int) []*query.SubQuery {
	base := subQueryAt(qid, step, i, j, k, n)
	q := *base.Query
	q.DerivSteps = chain
	sqs, err := query.PreProcess(&q, testSpace())
	if err != nil {
		panic(err)
	}
	if len(sqs) != chain {
		panic("subQueryChain positions spilled atoms")
	}
	return sqs
}

// drain enqueues the workload and takes decisions until the scheduler is
// empty — one steady-state round.
func drainRound(s Scheduler, sqs []*query.SubQuery) {
	for _, sq := range sqs {
		s.Enqueue(sq, 0)
	}
	now := time.Duration(0)
	for s.Pending() > 0 {
		if batches := s.NextBatch(now); len(batches) == 0 {
			panic("scheduler returned no batches with pending work")
		}
		now += time.Millisecond
	}
	// One more NextBatch so the last round's released queues are recycled
	// inside the measured window, not carried into the next one.
	s.NextBatch(now)
}

func TestDecisionPathZeroAllocs(t *testing.T) {
	resident := func(id store.AtomID) bool { return id.Step == 0 }
	version := func() uint64 { return 7 }
	cases := []struct {
		name  string
		build func() Scheduler
	}{
		{"NoShare", func() Scheduler { return NewNoShare() }},
		{"LifeRaft-alpha0-heap", func() Scheduler {
			s := NewLifeRaft(testCost, 0, resident)
			s.SetResidencyVersion(version)
			return s
		}},
		{"LifeRaft-alpha0.5", func() Scheduler {
			s := NewLifeRaft(testCost, 0.5, resident)
			s.SetResidencyVersion(version)
			return s
		}},
		{"JAWS", func() Scheduler {
			s := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 3, Resident: resident})
			s.SetResidencyVersion(version)
			return s
		}},
		{"JAWS-adaptive", func() Scheduler {
			s := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 2, InitialAlpha: 0.5, Adaptive: true, Resident: resident})
			s.SetResidencyVersion(version)
			return s
		}},
		{"JAWS-noversion", func() Scheduler {
			// Memoization off (no version source): still zero allocs, every
			// utility recomputed in place.
			return NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 3, Resident: resident})
		}},
		{"JAWS+QoS-urgent", func() Scheduler {
			inner := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 3, Resident: resident})
			inner.SetResidencyVersion(version)
			// Default stretch: deadlines land inside the horizon, so the
			// urgent EDF path is the one measured.
			return NewQoS(inner, testCost, 0, 0)
		}},
		{"JAWS+QoS-fallthrough", func() Scheduler {
			inner := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 3, Resident: resident})
			inner.SetResidencyVersion(version)
			// Enormous stretch: nothing is ever urgent, so the inner JAWS
			// path runs through the QoS bookkeeping.
			return NewQoS(inner, testCost, 1e9, time.Nanosecond)
		}},
		{"JAWS+gate-aware", func() Scheduler {
			inner := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 3, Resident: resident})
			inner.SetResidencyVersion(version)
			spec := PolicySpec{GateAware: &GateAwareParams{Discount: 0.25, Boost: 2}}
			s := spec.Wrap(inner)
			// A non-trivial gate source: states vary by query without
			// allocating (the closure is installed once, outside the
			// measured rounds).
			s.(GateAware).SetGateSource(func(q query.ID) GateState {
				switch q % 3 {
				case 0:
					return GateBlocked
				case 1:
					return GateReleasing
				}
				return GateFree
			})
			return s
		}},
		{"JAWS+cross-step", func() Scheduler {
			inner := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 3, Resident: resident})
			inner.SetResidencyVersion(version)
			return PolicySpec{CrossStep: &CrossStepParams{Span: 3}}.Wrap(inner)
		}},
		{"JAWS+adaptive-batch", func() Scheduler {
			inner := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 2, Resident: resident})
			inner.SetResidencyVersion(version)
			// Tight bounds with immediate reactions so the measured rounds
			// actually resize k.
			return PolicySpec{AdaptiveBatch: &AdaptiveBatchParams{
				Min: 1, Max: 4, Grow: 1, Shrink: 1, Full: 1, Idle: 1,
			}}.Wrap(inner)
		}},
		{"JAWS+full-stack", func() Scheduler {
			inner := NewJAWS(JAWSConfig{Cost: testCost, BatchSize: 2, Resident: resident})
			inner.SetResidencyVersion(version)
			spec := PolicySpec{
				GateAware:     &GateAwareParams{Discount: 0.5, Boost: 2},
				CrossStep:     &CrossStepParams{Span: 2},
				AdaptiveBatch: &AdaptiveBatchParams{Min: 1, Max: 4, Grow: 1, Shrink: 1, Full: 1, Idle: 2},
			}
			s := spec.Wrap(inner)
			s.(GateAware).SetGateSource(func(q query.ID) GateState {
				if q%4 == 0 {
					return GateReleasing
				}
				return GateFree
			})
			return s
		}},
	}
	workloads := []struct {
		name string
		sqs  []*query.SubQuery
	}{
		{"point", allocWorkload()},
		{"deriv", derivAllocWorkload()},
	}
	for _, wl := range workloads {
		for _, tc := range cases {
			t.Run(wl.name+"/"+tc.name, func(t *testing.T) {
				s := tc.build()
				// Warm the freelists and decision buffers to steady state.
				for i := 0; i < 3; i++ {
					drainRound(s, wl.sqs)
				}
				if avg := testing.AllocsPerRun(10, func() { drainRound(s, wl.sqs) }); avg != 0 {
					t.Fatalf("%s: %.1f allocs per enqueue+drain round, want 0", tc.name, avg)
				}
			})
		}
	}
}
