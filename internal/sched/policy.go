package sched

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/store"
)

// Tail policies: pluggable decorators over the JAWS scheduler that attack
// the response-time tail the wait-cause attribution exposes (gated-behind,
// batch-full, lost-race). Three policies compose through one spec string:
//
//	gate-aware      adjust the utility race with job-graph gate states:
//	                atoms carrying queries whose completion releases a
//	                WAIT successor are boosted, atoms whose queries are
//	                all blocked behind unresolved upstream edges are
//	                discounted — runs spend I/O on work that can complete
//	                and on work that unblocks more work.
//	cross-step      widen level-one selection from a single step bucket
//	                to the best window of adjacent steps, so a
//	                derivative-chain query's sub-queries on steps s..s+c
//	                can be served in one decision instead of c races.
//	adaptive-batch  grow the batch bound k while decisions keep
//	                truncating above-mean candidates (batch-full
//	                pass-overs) and shrink it back when rounds fit,
//	                so aged queries stop losing races at a fixed k.
//
// gate-aware and cross-step both replace the two-level selection and fold
// into one decorator (a gate-aware spec is a window of span 1; a plain
// cross-step spec applies no gate factors); adaptive-batch wraps either
// the combined selection or a bare JAWS. Every decorator keeps the
// zero-alloc decision path (see TestDecisionPathZeroAllocs) and has an
// independent reference model in internal/oracle certified by
// differential replay.

// GateState is the job-graph condition of one pending query, as reported
// by the engine's gate source (GateFree when no source is installed).
type GateState uint8

const (
	// GateFree: the query has no gate relationship that should move its
	// atoms in the utility race.
	GateFree GateState = iota
	// GateBlocked: the query is held behind unresolved upstream edges
	// (jobgraph.BlockedBy is non-empty) — serving its atoms cannot
	// complete it yet.
	GateBlocked
	// GateReleasing: completing the query releases a WAIT successor in
	// its job — serving its atoms shortens someone's gated-behind wait.
	GateReleasing
)

// GateAware is implemented by schedulers that consume per-query gate
// states. The engine installs its job-graph view through SetGateSource
// when job-aware gating is on; fn may be nil (all queries read GateFree).
type GateAware interface {
	SetGateSource(fn func(q query.ID) GateState)
}

// GateAwareParams tunes the gate-aware admission-order policy.
type GateAwareParams struct {
	// Discount multiplies the aged metric of atoms whose pending queries
	// are all gate-blocked; in (0, 1].
	Discount float64
	// Boost multiplies the aged metric of atoms carrying at least one
	// gate-releasing query; ≥ 1.
	Boost float64
}

// CrossStepParams tunes the cross-step batching policy.
type CrossStepParams struct {
	// Span bounds the window of adjacent step buckets one decision may
	// coalesce; in [1, 8] (1 degenerates to plain JAWS selection).
	Span int
}

// AdaptiveBatchParams tunes the starvation-aware batch sizing policy.
type AdaptiveBatchParams struct {
	// Min and Max bound the batch size k.
	Min, Max int
	// Grow is added to k after Full consecutive truncating rounds;
	// Shrink is subtracted after Idle consecutive non-truncating rounds.
	Grow, Shrink int
	Full, Idle   int
}

// Policy spec grammar (mirrors internal/fault's ParseSpec):
//
//	spec   := clause (';' clause)*          (empty spec: no policy)
//	clause := name [':' param (',' param)*]
//	param  := key '=' value
//
// Clause names and parameters (defaults in parentheses):
//
//	gate-aware:discount=0.25,boost=2
//	cross-step:span=2
//	adaptive-batch:min=4,max=32,grow=2,shrink=1,full=2,idle=8
//
// Each clause may appear at most once; clause order is irrelevant
// (String renders canonically: gate-aware, cross-step, adaptive-batch).
type PolicySpec struct {
	GateAware     *GateAwareParams
	CrossStep     *CrossStepParams
	AdaptiveBatch *AdaptiveBatchParams
}

// Empty reports whether the spec selects no policy.
func (s PolicySpec) Empty() bool {
	return s.GateAware == nil && s.CrossStep == nil && s.AdaptiveBatch == nil
}

// String renders the spec canonically; ParsePolicySpec(s.String())
// round-trips to an identical spec.
func (s PolicySpec) String() string {
	var parts []string
	if p := s.GateAware; p != nil {
		parts = append(parts, fmt.Sprintf("gate-aware:discount=%s,boost=%s",
			strconv.FormatFloat(p.Discount, 'g', -1, 64),
			strconv.FormatFloat(p.Boost, 'g', -1, 64)))
	}
	if p := s.CrossStep; p != nil {
		parts = append(parts, fmt.Sprintf("cross-step:span=%d", p.Span))
	}
	if p := s.AdaptiveBatch; p != nil {
		parts = append(parts, fmt.Sprintf("adaptive-batch:min=%d,max=%d,grow=%d,shrink=%d,full=%d,idle=%d",
			p.Min, p.Max, p.Grow, p.Shrink, p.Full, p.Idle))
	}
	return strings.Join(parts, ";")
}

// ParsePolicySpec parses a tail-policy spec string. The empty string (and
// strings of empty clauses, e.g. ";;") parse to the empty spec.
func ParsePolicySpec(in string) (PolicySpec, error) {
	var spec PolicySpec
	for _, clause := range strings.Split(in, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, hasParams := strings.Cut(clause, ":")
		name = strings.TrimSpace(name)
		params := make(map[string]string)
		if hasParams {
			for _, p := range strings.Split(rest, ",") {
				p = strings.TrimSpace(p)
				if p == "" {
					return PolicySpec{}, fmt.Errorf("sched: policy %q: empty parameter", name)
				}
				k, v, ok := strings.Cut(p, "=")
				k, v = strings.TrimSpace(k), strings.TrimSpace(v)
				if !ok || k == "" {
					return PolicySpec{}, fmt.Errorf("sched: policy %q: parameter %q is not key=value", name, p)
				}
				if _, dup := params[k]; dup {
					return PolicySpec{}, fmt.Errorf("sched: policy %q: duplicate parameter %q", name, k)
				}
				params[k] = v
			}
		}
		var err error
		switch name {
		case "gate-aware":
			if spec.GateAware != nil {
				return PolicySpec{}, fmt.Errorf("sched: duplicate policy clause %q", name)
			}
			spec.GateAware, err = parseGateAware(params)
		case "cross-step":
			if spec.CrossStep != nil {
				return PolicySpec{}, fmt.Errorf("sched: duplicate policy clause %q", name)
			}
			spec.CrossStep, err = parseCrossStep(params)
		case "adaptive-batch":
			if spec.AdaptiveBatch != nil {
				return PolicySpec{}, fmt.Errorf("sched: duplicate policy clause %q", name)
			}
			spec.AdaptiveBatch, err = parseAdaptiveBatch(params)
		default:
			return PolicySpec{}, fmt.Errorf("sched: unknown policy %q (have gate-aware, cross-step, adaptive-batch)", name)
		}
		if err != nil {
			return PolicySpec{}, err
		}
	}
	return spec, nil
}

func parseGateAware(params map[string]string) (*GateAwareParams, error) {
	p := &GateAwareParams{Discount: 0.25, Boost: 2}
	for k, v := range params {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("sched: gate-aware: %s=%q: %v", k, v, err)
		}
		switch k {
		case "discount":
			p.Discount = f
		case "boost":
			p.Boost = f
		default:
			return nil, fmt.Errorf("sched: gate-aware: unknown parameter %q", k)
		}
	}
	if !(p.Discount > 0 && p.Discount <= 1) {
		return nil, fmt.Errorf("sched: gate-aware: discount %g out of (0, 1]", p.Discount)
	}
	if !(p.Boost >= 1 && p.Boost <= 1e6) {
		return nil, fmt.Errorf("sched: gate-aware: boost %g out of [1, 1e6]", p.Boost)
	}
	return p, nil
}

func parseCrossStep(params map[string]string) (*CrossStepParams, error) {
	p := &CrossStepParams{Span: 2}
	for k, v := range params {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("sched: cross-step: %s=%q: %v", k, v, err)
		}
		switch k {
		case "span":
			p.Span = n
		default:
			return nil, fmt.Errorf("sched: cross-step: unknown parameter %q", k)
		}
	}
	if p.Span < 1 || p.Span > 8 {
		return nil, fmt.Errorf("sched: cross-step: span %d out of [1, 8]", p.Span)
	}
	return p, nil
}

func parseAdaptiveBatch(params map[string]string) (*AdaptiveBatchParams, error) {
	p := &AdaptiveBatchParams{Min: 4, Max: 32, Grow: 2, Shrink: 1, Full: 2, Idle: 8}
	for k, v := range params {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("sched: adaptive-batch: %s=%q: %v", k, v, err)
		}
		switch k {
		case "min":
			p.Min = n
		case "max":
			p.Max = n
		case "grow":
			p.Grow = n
		case "shrink":
			p.Shrink = n
		case "full":
			p.Full = n
		case "idle":
			p.Idle = n
		default:
			return nil, fmt.Errorf("sched: adaptive-batch: unknown parameter %q", k)
		}
	}
	if p.Min < 1 {
		return nil, fmt.Errorf("sched: adaptive-batch: min %d < 1", p.Min)
	}
	if p.Max < p.Min || p.Max > 1024 {
		return nil, fmt.Errorf("sched: adaptive-batch: max %d out of [min=%d, 1024]", p.Max, p.Min)
	}
	if p.Grow < 1 || p.Shrink < 1 {
		return nil, fmt.Errorf("sched: adaptive-batch: grow/shrink must be ≥ 1 (got %d/%d)", p.Grow, p.Shrink)
	}
	if p.Full < 1 || p.Idle < 1 {
		return nil, fmt.Errorf("sched: adaptive-batch: full/idle must be ≥ 1 (got %d/%d)", p.Full, p.Idle)
	}
	return p, nil
}

// tailInner is the contract a scheduler must satisfy to sit under a tail
// decorator: the full observable scheduler surface plus a resizable batch
// bound and the per-round truncation count.
type tailInner interface {
	Scheduler
	UtilityProvider
	Traced
	ResidencyVersioned
	Explained
	BatchSize() int
	SetBatchSize(int)
	LastTruncated() int
}

// Wrap applies the spec's policies around inner and returns the decorated
// scheduler (inner itself for the empty spec). gate-aware and cross-step
// fold into one TailJAWS selection layer; adaptive-batch wraps outermost.
func (s PolicySpec) Wrap(inner *JAWS) Scheduler {
	var cur tailInner = inner
	if s.GateAware != nil || s.CrossStep != nil {
		cur = newTailJAWS(inner, s.GateAware, s.CrossStep)
	}
	if s.AdaptiveBatch != nil {
		cur = newAdaptiveBatch(cur, *s.AdaptiveBatch)
	}
	if cur == tailInner(inner) {
		return inner
	}
	return cur
}

// --- TailJAWS: gate-aware scoring + cross-step windows -------------------

// TailJAWS replaces the inner JAWS's two-level selection with a
// gate-adjusted, window-widened one. Like QoS it owns the decision while
// reusing the inner scheduler's incremental queues, α controller, and
// freelists:
//
//   - every atom's aged metric U_e is multiplied by a gate factor: Boost
//     when any pending query on the atom is GateReleasing, Discount when
//     every pending query is GateBlocked, 1 otherwise;
//   - level one anchors on the best single step bucket by mean adjusted
//     metric — exactly JAWS's rule (strict >, earliest on ties) — then
//     extends the window across up to Span−1 following buckets whose
//     step values are contiguous and that share a pending query with the
//     anchor bucket: a derivative chain's sub-queries on steps s..s+c
//     are the sharing case, so the chain is served in one decision
//     instead of c utility races (a bucket with no query in common gains
//     nothing from co-scheduling and is left to its own race);
//   - level two batches the above-window-mean atoms of the window (single
//     best as fallback), truncates to k most-contentious, and executes in
//     Morton order exactly as JAWS does.
//
// With Span 1 and no gate source the selection is bit-identical to JAWS:
// the factor multiplication by 1.0 is exact and the accumulation order
// (buckets step-ascending, atoms key-ascending) is unchanged.
type TailJAWS struct {
	inner  *JAWS
	span   int
	gate   *GateAwareParams
	gateFn func(query.ID) GateState
	name   string
	trace  *obs.Tracer

	// Decision capture for the flight recorder (see Explained).
	explain bool
	exp     Explain

	lastTrunc int

	// Reused decision buffers (zero allocations in steady state).
	sel    []*atomQueue
	score  []float64
	sorter selSorter
	out    []Batch
}

func newTailJAWS(inner *JAWS, gate *GateAwareParams, xs *CrossStepParams) *TailJAWS {
	span := 1
	if xs != nil {
		span = xs.Span
	}
	name := "JAWS"
	if gate != nil {
		name += "+gate-aware"
	}
	if xs != nil {
		name += "+cross-step"
	}
	return &TailJAWS{inner: inner, span: span, gate: gate, name: name}
}

// Name implements Scheduler.
func (s *TailJAWS) Name() string { return s.name }

// SetGateSource implements GateAware.
func (s *TailJAWS) SetGateSource(fn func(q query.ID) GateState) { s.gateFn = fn }

// factor returns the gate multiplier for one atom queue: Boost if any
// pending query is releasing, Discount if all are blocked, 1 otherwise
// (and always 1 without a gate policy or source).
func (s *TailJAWS) factor(aq *atomQueue) float64 {
	if s.gate == nil || s.gateFn == nil {
		return 1
	}
	releasing := false
	blocked := len(aq.subs) > 0
	for _, sq := range aq.subs {
		switch s.gateFn(sq.Query.ID) {
		case GateReleasing:
			releasing = true
		case GateBlocked:
		default:
			blocked = false
		}
	}
	if releasing {
		return s.gate.Boost
	}
	if blocked {
		return s.gate.Discount
	}
	return 1
}

// adjusted is the policy's decision score: Eq. 2's aged metric times the
// gate factor. The multiplication happens unconditionally so the spelled
// expression is identical on every path (and in the reference model).
func (s *TailJAWS) adjusted(aq *atomQueue, alpha float64, now time.Duration) float64 {
	return s.inner.q.ue(aq, alpha, now) * s.factor(aq)
}

// sortSel sorts the current selection under the given mode.
func (s *TailJAWS) sortSel(mode int) {
	s.sorter.sel = s.sel
	s.sorter.score = s.score
	s.sorter.mode = mode
	sort.Sort(&s.sorter)
}

// bucketsShareQuery reports whether any pending sub-query in a and b
// belongs to the same query — the derivative-chain signature that makes
// a window extension worthwhile. Buckets are small (atoms of one step),
// so the nested scan stays cheap and allocation-free.
func bucketsShareQuery(a, b *stepBucket) bool {
	for _, aqa := range a.atoms {
		for _, sqa := range aqa.subs {
			for _, aqb := range b.atoms {
				for _, sqb := range aqb.subs {
					if sqa.Query.ID == sqb.Query.ID {
						return true
					}
				}
			}
		}
	}
	return false
}

// NextBatch implements Scheduler.
func (s *TailJAWS) NextBatch(now time.Duration) []Batch {
	s.lastTrunc = 0
	q := s.inner.q
	q.beginDecision()
	if len(q.buckets) == 0 {
		return nil
	}
	q.syncResidency()
	alpha := s.inner.ctrl.alpha
	var exp *Explain
	if s.explain {
		exp = &s.exp
		exp.reset(s.name, alpha, len(q.byAtom), q.subs)
	}

	// Level one: anchor on the best single bucket by mean adjusted metric
	// — JAWS's own rule (strict >, earliest bucket on ties). Gate factors
	// change per decision, so no memoized sums apply: the sums accumulate
	// bucket by bucket in step order, atoms in key order — the reference
	// model's exact order.
	bestStart, bestLen := -1, 1
	bestMean, winSum, winCount := 0.0, 0.0, 0
	for i := range q.buckets {
		sum := 0.0
		count := 0
		for _, aq := range q.buckets[i].atoms {
			sum += s.adjusted(aq, alpha, now)
			count++
		}
		if mean := sum / float64(count); bestStart < 0 || mean > bestMean {
			bestStart, bestMean = i, mean
			winSum, winCount = sum, count
		}
		if exp != nil {
			exp.captureStep(q, q.buckets[i], alpha, now)
		}
	}
	if exp != nil {
		exp.WinnerStep = q.buckets[bestStart].step
	}

	// Window extension: fold in up to span−1 following buckets whose step
	// values stay contiguous and that share a pending query with the
	// anchor — the derivative-chain case, where serving the later steps
	// alongside the anchor completes the chain in one decision. The
	// window mean replaces the anchor mean as level two's bar.
	for j := bestStart + 1; j < len(q.buckets) && j-bestStart < s.span; j++ {
		if q.buckets[j].step != q.buckets[j-1].step+1 ||
			!bucketsShareQuery(q.buckets[bestStart], q.buckets[j]) {
			break
		}
		for _, aq := range q.buckets[j].atoms {
			winSum += s.adjusted(aq, alpha, now)
			winCount++
		}
		bestLen++
	}
	if bestLen > 1 {
		bestMean = winSum / float64(winCount)
	}

	// Level two: above-window-mean atoms across the window, in global key
	// order (bucket order is step-ascending and keys are step-major, so
	// concatenation preserves key order).
	s.sel = s.sel[:0]
	s.score = s.score[:0]
	var fallback *atomQueue
	fallbackScore := 0.0
	for j := bestStart; j < bestStart+bestLen; j++ {
		for _, aq := range q.buckets[j].atoms {
			sc := s.adjusted(aq, alpha, now)
			if sc > bestMean {
				s.sel = append(s.sel, aq)
				s.score = append(s.score, sc)
			}
			if fallback == nil || sc > fallbackScore {
				fallback, fallbackScore = aq, sc
			}
		}
	}
	if len(s.sel) == 0 {
		s.sel = append(s.sel, fallback)
		s.score = append(s.score, fallbackScore)
	}
	truncated := false
	if len(s.sel) > s.inner.k {
		s.lastTrunc = len(s.sel) - s.inner.k
		s.sortSel(sortScoreDescKeyAsc)
		if exp != nil {
			for i := s.inner.k; i < len(s.sel); i++ {
				exp.captureAtom(&exp.Truncated, q, s.sel[i], s.score[i], now)
			}
		}
		s.sel = s.sel[:s.inner.k]
		s.score = s.score[:s.inner.k]
		truncated = true
	}
	if truncated {
		s.sortSel(sortKeyAsc)
	}
	if s.trace.Enabled() {
		for i, aq := range s.sel {
			s.trace.Decision(now, s.name, aq.id.Step, uint64(aq.id.Code),
				len(s.sel), q.ut(aq), s.score[i], alpha)
		}
	}
	s.out = s.out[:0]
	for i, aq := range s.sel {
		if exp != nil {
			exp.captureAtom(&exp.Chosen, q, aq, s.score[i], now)
		}
		s.out = append(s.out, q.take(aq.id))
		s.sel[i] = nil
	}
	return s.out
}

// Enqueue implements Scheduler.
func (s *TailJAWS) Enqueue(sq *query.SubQuery, now time.Duration) { s.inner.Enqueue(sq, now) }

// Pending implements Scheduler.
func (s *TailJAWS) Pending() int { return s.inner.Pending() }

// OnRunEnd implements Scheduler.
func (s *TailJAWS) OnRunEnd(rt, tp float64) { s.inner.OnRunEnd(rt, tp) }

// Alpha implements Scheduler.
func (s *TailJAWS) Alpha() float64 { return s.inner.Alpha() }

// BatchSize returns the inner batch bound k.
func (s *TailJAWS) BatchSize() int { return s.inner.BatchSize() }

// SetBatchSize resizes the inner batch bound.
func (s *TailJAWS) SetBatchSize(k int) { s.inner.SetBatchSize(k) }

// LastTruncated reports the most recent round's batch-full pass-overs.
func (s *TailJAWS) LastTruncated() int { return s.lastTrunc }

// SetTracer implements Traced. The decision is taken here, so the tracer
// stays local (the inner JAWS's NextBatch never runs under TailJAWS).
func (s *TailJAWS) SetTracer(t *obs.Tracer) { s.trace = t }

// SetResidencyVersion implements ResidencyVersioned.
func (s *TailJAWS) SetResidencyVersion(fn func() uint64) { s.inner.SetResidencyVersion(fn) }

// SetExplain implements Explained.
func (s *TailJAWS) SetExplain(on bool) { s.explain = on }

// LastExplain implements Explained.
func (s *TailJAWS) LastExplain() *Explain {
	if !s.explain {
		return nil
	}
	return &s.exp
}

// AtomUtility implements UtilityProvider.
func (s *TailJAWS) AtomUtility(id store.AtomID) float64 { return s.inner.AtomUtility(id) }

// StepMean implements UtilityProvider.
func (s *TailJAWS) StepMean(step int) float64 { return s.inner.StepMean(step) }

// PendingSteps implements UtilityProvider.
func (s *TailJAWS) PendingSteps() []int { return s.inner.PendingSteps() }

// --- AdaptiveBatch: starvation-aware batch sizing ------------------------

// AdaptiveBatch resizes the inner batch bound k from the truncation
// pressure the decisions themselves report: after Full consecutive rounds
// that dropped above-mean candidates (batch-full pass-overs, the same
// per-round count obs.FlightRecorder aggregates as PassBatchFull), k
// grows by Grow up to Max; after Idle consecutive rounds that fit, k
// shrinks by Shrink down to Min. Steering on the decision stream — not on
// a wall-clock recorder snapshot — keeps the policy a pure function of
// the op log, so the oracle replays it exactly; TestAdaptiveBatchMirrorsFlightRecorder
// pins the equivalence of the two counters.
type AdaptiveBatch struct {
	inner tailInner
	p     AdaptiveBatchParams

	streakFull, streakIdle int
	passOvers              int64
	grows, shrinks         int
}

func newAdaptiveBatch(inner tailInner, p AdaptiveBatchParams) *AdaptiveBatch {
	k := inner.BatchSize()
	if k < p.Min {
		k = p.Min
	}
	if k > p.Max {
		k = p.Max
	}
	inner.SetBatchSize(k)
	return &AdaptiveBatch{inner: inner, p: p}
}

// Name implements Scheduler.
func (s *AdaptiveBatch) Name() string { return s.inner.Name() + "+adaptive-batch" }

// NextBatch implements Scheduler: delegate, then steer k for the next
// round from this round's truncation count. Empty rounds (no pending
// work) leave the streaks untouched.
func (s *AdaptiveBatch) NextBatch(now time.Duration) []Batch {
	out := s.inner.NextBatch(now)
	if len(out) == 0 {
		return out
	}
	t := s.inner.LastTruncated()
	s.passOvers += int64(t)
	if t > 0 {
		s.streakFull++
		s.streakIdle = 0
		if s.streakFull >= s.p.Full {
			s.streakFull = 0
			if k := s.inner.BatchSize(); k < s.p.Max {
				k += s.p.Grow
				if k > s.p.Max {
					k = s.p.Max
				}
				s.inner.SetBatchSize(k)
				s.grows++
			}
		}
	} else {
		s.streakIdle++
		s.streakFull = 0
		if s.streakIdle >= s.p.Idle {
			s.streakIdle = 0
			if k := s.inner.BatchSize(); k > s.p.Min {
				k -= s.p.Shrink
				if k < s.p.Min {
					k = s.p.Min
				}
				s.inner.SetBatchSize(k)
				s.shrinks++
			}
		}
	}
	return out
}

// PassOvers reports the cumulative batch-full pass-overs observed across
// decisions — the policy's own count of the aggregate the flight recorder
// publishes as PassBatchFull.
func (s *AdaptiveBatch) PassOvers() int64 { return s.passOvers }

// Resizes reports how many times the policy grew and shrank k.
func (s *AdaptiveBatch) Resizes() (grows, shrinks int) { return s.grows, s.shrinks }

// Enqueue implements Scheduler.
func (s *AdaptiveBatch) Enqueue(sq *query.SubQuery, now time.Duration) { s.inner.Enqueue(sq, now) }

// Pending implements Scheduler.
func (s *AdaptiveBatch) Pending() int { return s.inner.Pending() }

// OnRunEnd implements Scheduler.
func (s *AdaptiveBatch) OnRunEnd(rt, tp float64) { s.inner.OnRunEnd(rt, tp) }

// Alpha implements Scheduler.
func (s *AdaptiveBatch) Alpha() float64 { return s.inner.Alpha() }

// BatchSize returns the current (adapted) batch bound.
func (s *AdaptiveBatch) BatchSize() int { return s.inner.BatchSize() }

// SetBatchSize implements tailInner (resets the adapted bound).
func (s *AdaptiveBatch) SetBatchSize(k int) { s.inner.SetBatchSize(k) }

// LastTruncated implements tailInner.
func (s *AdaptiveBatch) LastTruncated() int { return s.inner.LastTruncated() }

// SetGateSource implements GateAware by forwarding when the inner layer
// consumes gate states.
func (s *AdaptiveBatch) SetGateSource(fn func(q query.ID) GateState) {
	if ga, ok := s.inner.(GateAware); ok {
		ga.SetGateSource(fn)
	}
}

// SetTracer implements Traced.
func (s *AdaptiveBatch) SetTracer(t *obs.Tracer) { s.inner.SetTracer(t) }

// SetResidencyVersion implements ResidencyVersioned.
func (s *AdaptiveBatch) SetResidencyVersion(fn func() uint64) { s.inner.SetResidencyVersion(fn) }

// SetExplain implements Explained.
func (s *AdaptiveBatch) SetExplain(on bool) { s.inner.SetExplain(on) }

// LastExplain implements Explained.
func (s *AdaptiveBatch) LastExplain() *Explain { return s.inner.LastExplain() }

// AtomUtility implements UtilityProvider.
func (s *AdaptiveBatch) AtomUtility(id store.AtomID) float64 { return s.inner.AtomUtility(id) }

// StepMean implements UtilityProvider.
func (s *AdaptiveBatch) StepMean(step int) float64 { return s.inner.StepMean(step) }

// PendingSteps implements UtilityProvider.
func (s *AdaptiveBatch) PendingSteps() []int { return s.inner.PendingSteps() }

var (
	_ tailInner = (*JAWS)(nil)
	_ tailInner = (*TailJAWS)(nil)
	_ tailInner = (*AdaptiveBatch)(nil)
	_ GateAware = (*TailJAWS)(nil)
	_ GateAware = (*AdaptiveBatch)(nil)
)
