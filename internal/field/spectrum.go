package field

import (
	"math"
	"sort"
)

// SpectrumPoint is one shell of the kinetic-energy spectrum.
type SpectrumPoint struct {
	K float64 // shell wavenumber (center)
	E float64 // kinetic energy in the shell
}

// Spectrum returns the shell-averaged kinetic-energy spectrum E(k) of the
// synthetic field, computed analytically from its Fourier modes: a mode
// u(x) = a·sin(k·x + φ) carries mean kinetic energy |a|²/4 (the ¼ from
// ⟨sin²⟩ = ½ and the ½ in ½u²). The construction draws amplitudes so that
// E(k) ~ k^(−5/3), the Kolmogorov inertial-range scaling; tests verify
// the realized slope.
func (f *Field) Spectrum() []SpectrumPoint {
	shells := make(map[int]float64)
	for i := range f.modes {
		m := &f.modes[i]
		kmag := math.Sqrt(m.k[0]*m.k[0] + m.k[1]*m.k[1] + m.k[2]*m.k[2])
		shell := int(math.Round(kmag))
		e := (m.a[0]*m.a[0] + m.a[1]*m.a[1] + m.a[2]*m.a[2]) / 4
		shells[shell] += e
	}
	out := make([]SpectrumPoint, 0, len(shells))
	for k, e := range shells {
		out = append(out, SpectrumPoint{K: float64(k), E: e})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}

// TotalKineticEnergy returns the mean kinetic energy density ⟨½u²⟩ of the
// field, the sum of the spectrum.
func (f *Field) TotalKineticEnergy() float64 {
	var e float64
	for _, p := range f.Spectrum() {
		e += p.E
	}
	return e
}

// SpectralSlope fits a power law E(k) ~ k^s over the populated shells by
// least squares in log-log space and returns the exponent s. The
// synthetic field targets s ≈ −5/3 (amplitudes ~ k^(−11/6) drawn over the
// integer lattice give the inertial-range scaling in expectation).
func (f *Field) SpectralSlope() float64 {
	pts := f.Spectrum()
	// Fit only the well-populated inertial range: wavevectors are drawn
	// from a [−15,15]³ lattice cube, so shells beyond k ≈ 15 are
	// corner-depleted and fall off faster than the target scaling.
	const kMax = 14
	var xs, ys []float64
	for _, p := range pts {
		if p.K < 2 || p.K > kMax || p.E <= 0 {
			continue
		}
		xs = append(xs, math.Log(p.K))
		ys = append(ys, math.Log(p.E))
	}
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
