package field

import (
	"fmt"
	"math"

	"jaws/internal/geom"
)

// Kernel identifies a computation performed at each queried position,
// mirroring the operations the Turbulence web services expose.
type Kernel int

const (
	// KernelNone returns the nearest sample: used by statistics queries
	// that aggregate raw grid values.
	KernelNone Kernel = iota
	// KernelTrilinear is first-order interpolation over the 2³ cell.
	KernelTrilinear
	// KernelLag4 is 4th-order Lagrange polynomial interpolation (4³ stencil).
	KernelLag4
	// KernelLag6 is 6th-order Lagrange interpolation (6³ stencil).
	KernelLag6
	// KernelLag8 is 8th-order Lagrange interpolation (8³ stencil).
	KernelLag8
)

// String names the kernel.
func (k Kernel) String() string {
	switch k {
	case KernelNone:
		return "none"
	case KernelTrilinear:
		return "trilinear"
	case KernelLag4:
		return "lag4"
	case KernelLag6:
		return "lag6"
	case KernelLag8:
		return "lag8"
	}
	return fmt.Sprintf("kernel(%d)", int(k))
}

// StencilRadius returns the half-width in voxels of the kernel's stencil;
// the pre-processor uses it to compute atom footprints.
func (k Kernel) StencilRadius() int {
	switch k {
	case KernelNone:
		return 0
	case KernelTrilinear:
		return 1
	case KernelLag4:
		return 2
	case KernelLag6:
		return 3
	case KernelLag8:
		return 4
	}
	return 0
}

// CostWeight scales the per-position compute time T_m: higher-order
// stencils touch more samples.
func (k Kernel) CostWeight() float64 {
	switch k {
	case KernelNone:
		return 0.25
	case KernelTrilinear:
		return 1
	case KernelLag4:
		return 2
	case KernelLag6:
		return 4
	case KernelLag8:
		return 8
	}
	return 1
}

// Interpolate evaluates the kernel at position pos using the sampled atom
// a (the atom containing pos within `space`). Stencils may extend into
// the atom's replication halo (§III.A stores four ghost voxels on each
// side for exactly this purpose); without a halo they are clamped to the
// atom's own sample grid. Returns the interpolated (u, v, w, p).
func Interpolate(k Kernel, a *Atom, space geom.Space, ac geom.AtomCoord, pos geom.Position) [Components]float64 {
	// Position in atom-local fractional sample coordinates.
	atomLen := float64(space.AtomSide) * space.VoxelSize()
	h := atomLen / float64(a.Side)
	wp := geom.Wrap(pos)
	lx := (wp.X - float64(ac.I)*atomLen) / h
	ly := (wp.Y - float64(ac.J)*atomLen) / h
	lz := (wp.Z - float64(ac.K)*atomLen) / h
	// Samples sit at cell centers (i+0.5); convert to sample coordinates.
	sx, sy, sz := lx-0.5, ly-0.5, lz-0.5

	switch k {
	case KernelNone:
		i := clamp(int(math.Round(sx)), 0, a.Side-1)
		j := clamp(int(math.Round(sy)), 0, a.Side-1)
		l := clamp(int(math.Round(sz)), 0, a.Side-1)
		return a.At(i, j, l)
	case KernelTrilinear:
		return lagrange(a, sx, sy, sz, 2)
	case KernelLag4:
		return lagrange(a, sx, sy, sz, 4)
	case KernelLag6:
		return lagrange(a, sx, sy, sz, 6)
	case KernelLag8:
		return lagrange(a, sx, sy, sz, 8)
	}
	return lagrange(a, sx, sy, sz, 2)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// lagrange performs separable N-point Lagrange interpolation on the atom's
// sample grid (halo included). N=2 degenerates to trilinear interpolation.
func lagrange(a *Atom, sx, sy, sz float64, n int) [Components]float64 {
	if a.dim() < n {
		n = a.dim() // tiny test atoms: fall back to the widest stencil that fits
	}
	ix, wx := lagrangeWeightsHalo(sx, n, a.Side, a.Ghost)
	iy, wy := lagrangeWeightsHalo(sy, n, a.Side, a.Ghost)
	iz, wz := lagrangeWeightsHalo(sz, n, a.Side, a.Ghost)

	d := a.dim()
	g := a.Ghost
	var out [Components]float64
	for kk := 0; kk < n; kk++ {
		for jj := 0; jj < n; jj++ {
			wyz := wy[jj] * wz[kk]
			rowBase := (iz+g+kk)*d + (iy + g + jj)
			for ii := 0; ii < n; ii++ {
				w := wx[ii] * wyz
				base := (rowBase*d + ix + g + ii) * Components
				out[0] += w * a.Data[base]
				out[1] += w * a.Data[base+1]
				out[2] += w * a.Data[base+2]
				out[3] += w * a.Data[base+3]
			}
		}
	}
	return out
}

// lagrangeWeights returns the first stencil index and the N Lagrange
// basis weights for fractional sample coordinate s on a grid of `side`
// samples, clamping the stencil to the grid.
func lagrangeWeights(s float64, n, side int) (int, []float64) {
	return lagrangeWeightsHalo(s, n, side, 0)
}

// lagrangeWeightsHalo is lagrangeWeights with a replication halo of g
// samples available on each side: the stencil may start as early as −g
// and end as late as side+g, so positions near an atom face keep a
// centred (more accurate) stencil instead of a clamped one-sided one.
func lagrangeWeightsHalo(s float64, n, side, g int) (int, []float64) {
	var start int
	if n == 2 {
		start = int(math.Floor(s))
	} else {
		start = int(math.Floor(s)) - n/2 + 1
	}
	start = clamp(start, -g, side+g-n)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		xi := float64(start + i)
		num, den := 1.0, 1.0
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			xj := float64(start + j)
			num *= s - xj
			den *= xi - xj
		}
		w[i] = num / den
	}
	return start, w
}
