package field

import (
	"math"
	"testing"

	"jaws/internal/geom"
)

func TestSpectrumShellsSorted(t *testing.T) {
	f := New(1, 64, 0)
	sp := f.Spectrum()
	if len(sp) < 3 {
		t.Fatalf("only %d shells", len(sp))
	}
	for i := 1; i < len(sp); i++ {
		if sp[i].K <= sp[i-1].K {
			t.Fatal("shells not sorted")
		}
	}
	for _, p := range sp {
		if p.E <= 0 {
			t.Fatalf("non-positive shell energy at k=%g", p.K)
		}
	}
}

func TestSpectralSlopeNearKolmogorov(t *testing.T) {
	// With many modes the realized slope should be near the targeted
	// −5/3 inertial-range exponent (shot noise from the random lattice
	// draw allows generous tolerance).
	f := New(7, 512, 0)
	s := f.SpectralSlope()
	if s > -1.0 || s < -2.4 {
		t.Fatalf("spectral slope %.2f not in the Kolmogorov-like band [−2.4, −1.0]", s)
	}
}

func TestTotalKineticEnergyMatchesPointwiseAverage(t *testing.T) {
	// Parseval check: the spectral total must match the spatially averaged
	// ½u² measured by sampling the field.
	f := New(3, 32, 0)
	want := f.TotalKineticEnergy()
	var sum float64
	const n = 24
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := geom.Position{
				X: (float64(i) + 0.5) / n * geom.DomainSide,
				Y: (float64(j) + 0.5) / n * geom.DomainSide,
				Z: (float64(i*7+j*3) + 0.5) / (n * n) * geom.DomainSide,
			}
			v := f.Eval(0, p)
			sum += 0.5 * (v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
		}
	}
	got := sum / (n * n)
	// Sampling error and mode cross-terms allow ~20 % tolerance.
	if math.Abs(got-want) > 0.25*want {
		t.Fatalf("pointwise KE %.5f vs spectral %.5f", got, want)
	}
}

func TestSpectralSlopeDegenerate(t *testing.T) {
	f := &Field{dt: 1} // no modes
	if s := f.SpectralSlope(); s != 0 {
		t.Fatalf("slope of empty field = %g", s)
	}
}
