package field

import (
	"math"

	"jaws/internal/geom"
)

// Gradient is the velocity-gradient tensor du_i/dx_j (i = row, j =
// column). The production Turbulence service exposes this as
// GetVelocityGradient; scientists use it for strain/rotation-rate
// analysis of turbulent structures.
type Gradient [3][3]float64

// EvalGradient returns the analytic velocity gradient of the synthetic
// field at pos and step — the ground truth that numerical differentiation
// of the sampled atoms approximates.
func (f *Field) EvalGradient(step int, pos geom.Position) Gradient {
	pos = geom.Wrap(pos)
	t := float64(step) * f.dt
	var g Gradient
	for i := range f.modes {
		m := &f.modes[i]
		phase := m.k[0]*pos.X + m.k[1]*pos.Y + m.k[2]*pos.Z + m.ph + m.omega*t
		c := math.Cos(phase)
		for vi := 0; vi < 3; vi++ {
			for xj := 0; xj < 3; xj++ {
				g[vi][xj] += m.a[vi] * m.k[xj] * c
			}
		}
	}
	return g
}

// InterpolateGradient evaluates the spatial gradient of the kernel's
// interpolant at pos using the sampled atom: the separable Lagrange basis
// is differentiated analytically along each axis, matching how the
// production service computes FD4/FD6/FD8 gradients on the grid. The
// kernel selects the stencil width (KernelNone degrades to trilinear).
func InterpolateGradient(k Kernel, a *Atom, space geom.Space, ac geom.AtomCoord, pos geom.Position) Gradient {
	n := 2
	switch k {
	case KernelLag4:
		n = 4
	case KernelLag6:
		n = 6
	case KernelLag8:
		n = 8
	}
	if a.dim() < n {
		n = a.dim()
	}
	atomLen := float64(space.AtomSide) * space.VoxelSize()
	h := atomLen / float64(a.Side)
	wp := geom.Wrap(pos)
	sx := (wp.X-float64(ac.I)*atomLen)/h - 0.5
	sy := (wp.Y-float64(ac.J)*atomLen)/h - 0.5
	sz := (wp.Z-float64(ac.K)*atomLen)/h - 0.5

	ix, wx := lagrangeWeightsHalo(sx, n, a.Side, a.Ghost)
	iy, wy := lagrangeWeightsHalo(sy, n, a.Side, a.Ghost)
	iz, wz := lagrangeWeightsHalo(sz, n, a.Side, a.Ghost)
	dx := lagrangeDerivWeights(sx, ix, n)
	dy := lagrangeDerivWeights(sy, iy, n)
	dz := lagrangeDerivWeights(sz, iz, n)

	d := a.dim()
	gh := a.Ghost
	var g Gradient
	for kk := 0; kk < n; kk++ {
		for jj := 0; jj < n; jj++ {
			rowBase := ((iz+gh+kk)*d + (iy + gh + jj)) * d
			for ii := 0; ii < n; ii++ {
				base := (rowBase + ix + gh + ii) * Components
				wX := dx[ii] * wy[jj] * wz[kk] // ∂/∂x basis
				wY := wx[ii] * dy[jj] * wz[kk] // ∂/∂y basis
				wZ := wx[ii] * wy[jj] * dz[kk] // ∂/∂z basis
				for vi := 0; vi < 3; vi++ {
					v := a.Data[base+vi]
					g[vi][0] += wX * v
					g[vi][1] += wY * v
					g[vi][2] += wZ * v
				}
			}
		}
	}
	// Basis derivatives are per sample index; convert to physical units.
	inv := 1 / h
	for vi := 0; vi < 3; vi++ {
		for xj := 0; xj < 3; xj++ {
			g[vi][xj] *= inv
		}
	}
	return g
}

// lagrangeDerivWeights returns the derivatives of the N Lagrange basis
// polynomials anchored at start, evaluated at fractional sample
// coordinate s (in sample-index units).
func lagrangeDerivWeights(s float64, start, n int) []float64 {
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		xi := float64(start + i)
		den := 1.0
		for j := 0; j < n; j++ {
			if j != i {
				den *= xi - float64(start+j)
			}
		}
		// d/ds Π_{j≠i}(s-x_j) = Σ_{m≠i} Π_{j≠i,m}(s-x_j).
		sum := 0.0
		for m := 0; m < n; m++ {
			if m == i {
				continue
			}
			prod := 1.0
			for j := 0; j < n; j++ {
				if j == i || j == m {
					continue
				}
				prod *= s - float64(start+j)
			}
			sum += prod
		}
		d[i] = sum / den
	}
	return d
}

// Strain returns the symmetric strain-rate part S_ij = (g_ij + g_ji)/2.
func (g Gradient) Strain() Gradient {
	var s Gradient
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s[i][j] = 0.5 * (g[i][j] + g[j][i])
		}
	}
	return s
}

// Vorticity returns the vorticity vector ω = ∇×u.
func (g Gradient) Vorticity() [3]float64 {
	return [3]float64{
		g[2][1] - g[1][2],
		g[0][2] - g[2][0],
		g[1][0] - g[0][1],
	}
}

// Divergence returns tr(g) = ∇·u, which is ≈0 for the incompressible
// synthetic field.
func (g Gradient) Divergence() float64 { return g[0][0] + g[1][1] + g[2][2] }

// QCriterion returns Q = (‖Ω‖² − ‖S‖²)/2, the vortex-identification
// measure scientists use to find turbulent structures (positive Q marks
// rotation-dominated regions).
func (g Gradient) QCriterion() float64 {
	s := g.Strain()
	var sNorm, oNorm float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			omega := 0.5 * (g[i][j] - g[j][i])
			sNorm += s[i][j] * s[i][j]
			oNorm += omega * omega
		}
	}
	return 0.5 * (oNorm - sNorm)
}
