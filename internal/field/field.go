// Package field synthesizes the turbulence data the simulated database
// stores: a time series of velocity + pressure fields on a structured
// grid, generated deterministically so any atom can be materialized on
// demand without keeping 27 TB on disk.
//
// Substitution note (see DESIGN.md): the paper's data comes from a direct
// numerical simulation of isotropic turbulence. Scheduling behaviour
// depends only on which atoms queries touch and on the I/O-to-compute
// ratio, not on flow physics, so we synthesize a divergence-free velocity
// field as a sum of random Fourier modes with a Kolmogorov-like energy
// spectrum (E(k) ~ k^-5/3) advected in time. The field is smooth, periodic,
// deterministic in (seed, step, position), and exercises the same
// interpolation kernels the real service offers (Lag4/Lag6/Lag8).
package field

import (
	"math"
	"math/rand"

	"jaws/internal/geom"
)

// Components is the number of scalar fields per grid point: three velocity
// components plus pressure. With float64 samples a 64³ atom is exactly
// 64³·4·8 B = 8 MiB, matching the paper's atom size.
const Components = 4

// Mode is one Fourier mode of the synthetic field.
type mode struct {
	k     [3]float64 // wavevector (integer lattice)
	a     [3]float64 // velocity amplitude vector, perpendicular to k
	p     float64    // pressure amplitude
	ph    float64    // phase
	omega float64    // temporal frequency
}

// Field is a deterministic synthetic turbulence field.
type Field struct {
	modes []mode
	dt    float64 // simulation time per database time step
}

// New builds a synthetic field with nModes Fourier modes drawn from the
// given seed. dt is the physical time between stored time steps (the paper
// stores 1024 steps over 2 s, so dt ≈ 2 ms).
func New(seed int64, nModes int, dt float64) *Field {
	if nModes <= 0 {
		nModes = 48
	}
	if dt <= 0 {
		dt = 2.0 / 1024
	}
	rng := rand.New(rand.NewSource(seed))
	f := &Field{dt: dt, modes: make([]mode, 0, nModes)}
	for len(f.modes) < nModes {
		// Integer wavevector with |k| in [1, 16] for spatial structure at
		// several scales.
		kx := float64(rng.Intn(31) - 15)
		ky := float64(rng.Intn(31) - 15)
		kz := float64(rng.Intn(31) - 15)
		k2 := kx*kx + ky*ky + kz*kz
		if k2 < 1 {
			continue
		}
		kmag := math.Sqrt(k2)
		// Kolmogorov-like amplitude: E(k) ~ k^-5/3 → |a| ~ k^-11/6.
		amp := math.Pow(kmag, -11.0/6.0)
		// Random direction projected perpendicular to k (incompressible).
		ax, ay, az := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		dot := (ax*kx + ay*ky + az*kz) / k2
		ax -= dot * kx
		ay -= dot * ky
		az -= dot * kz
		norm := math.Sqrt(ax*ax + ay*ay + az*az)
		if norm < 1e-12 {
			continue
		}
		scale := amp / norm
		f.modes = append(f.modes, mode{
			k:     [3]float64{kx, ky, kz},
			a:     [3]float64{ax * scale, ay * scale, az * scale},
			p:     amp * 0.5,
			ph:    rng.Float64() * 2 * math.Pi,
			omega: kmag * 0.7, // eddy turnover frequency grows with k
		})
	}
	return f
}

// Eval returns the analytic field value (u, v, w, pressure) at position
// pos and time step `step`. This is the ground truth the gridded atoms
// sample; tests compare interpolation output against it.
func (f *Field) Eval(step int, pos geom.Position) [Components]float64 {
	// Wrap into the periodic box first: the wavevectors are integer, so
	// sin(k·(x+2π)) = sin(k·x) and wrapping changes nothing analytically,
	// but it keeps the phase argument small enough that extreme caller
	// coordinates cannot overflow to Inf/NaN.
	pos = geom.Wrap(pos)
	t := float64(step) * f.dt
	var out [Components]float64
	for i := range f.modes {
		m := &f.modes[i]
		phase := m.k[0]*pos.X + m.k[1]*pos.Y + m.k[2]*pos.Z + m.ph + m.omega*t
		s := math.Sin(phase)
		out[0] += m.a[0] * s
		out[1] += m.a[1] * s
		out[2] += m.a[2] * s
		out[3] += m.p * math.Cos(phase)
	}
	return out
}

// Atom holds the gridded samples of one storage block: (Side+2·Ghost)³
// grid points × Components values, in x-fastest order. Ghost is the
// replication halo of §III.A ("each atom is 72³ in length with four units
// of replication on each side for performance reasons"): samples beyond
// the atom's own extent let interpolation stencils near a face evaluate
// without touching the neighbour atom's data.
type Atom struct {
	Side  int
	Ghost int
	Data  []float64
}

// dim is the stored samples per axis including the halo.
func (a *Atom) dim() int { return a.Side + 2*a.Ghost }

// NominalAtomBytes is the on-disk size charged for one atom regardless of
// the in-memory sampling resolution: 64³ points × 4 components × 8 bytes,
// the paper's "roughly 8 MB".
const NominalAtomBytes = 64 * 64 * 64 * Components * 8

// Sample materializes the atom at coordinate ac of time step `step` on a
// grid with `side` samples per axis within the atom and no halo. The
// simulation uses a reduced side (e.g. 8) to keep memory small; the disk
// model still charges the nominal 8 MB.
func (f *Field) Sample(step int, space geom.Space, ac geom.AtomCoord, side int) *Atom {
	return f.SampleGhost(step, space, ac, side, 0)
}

// SampleGhost materializes the atom with a replication halo of `ghost`
// samples on each side (the §III.A layout). Halo samples come from the
// periodic field itself, exactly as the production pipeline copies them
// from neighbouring atoms.
func (f *Field) SampleGhost(step int, space geom.Space, ac geom.AtomCoord, side, ghost int) *Atom {
	if side <= 0 {
		side = 8
	}
	if ghost < 0 {
		ghost = 0
	}
	atomLen := float64(space.AtomSide) * space.VoxelSize()
	origin := geom.Position{
		X: float64(ac.I) * atomLen,
		Y: float64(ac.J) * atomLen,
		Z: float64(ac.K) * atomLen,
	}
	h := atomLen / float64(side)
	dim := side + 2*ghost
	a := &Atom{Side: side, Ghost: ghost, Data: make([]float64, dim*dim*dim*Components)}
	idx := 0
	for k := -ghost; k < side+ghost; k++ {
		for j := -ghost; j < side+ghost; j++ {
			for i := -ghost; i < side+ghost; i++ {
				p := geom.Position{
					X: origin.X + (float64(i)+0.5)*h,
					Y: origin.Y + (float64(j)+0.5)*h,
					Z: origin.Z + (float64(k)+0.5)*h,
				}
				v := f.Eval(step, p)
				copy(a.Data[idx:idx+Components], v[:])
				idx += Components
			}
		}
	}
	return a
}

// At returns the sampled value at integer grid point (i, j, k) of the
// atom's own extent; indices from −Ghost to Side+Ghost−1 reach into the
// replication halo.
func (a *Atom) At(i, j, k int) [Components]float64 {
	d := a.dim()
	base := (((k+a.Ghost)*d+(j+a.Ghost))*d + (i + a.Ghost)) * Components
	var out [Components]float64
	copy(out[:], a.Data[base:base+Components])
	return out
}

// Bytes returns the in-memory footprint of the sampled atom.
func (a *Atom) Bytes() int64 { return int64(len(a.Data) * 8) }
