package field

import (
	"math"
	"testing"
	"testing/quick"

	"jaws/internal/geom"
)

func testSpace() geom.Space { return geom.Space{GridSide: 256, AtomSide: 32} }

func TestNewDeterministic(t *testing.T) {
	f1 := New(42, 32, 0)
	f2 := New(42, 32, 0)
	p := geom.Position{X: 1.1, Y: 2.2, Z: 3.3}
	v1, v2 := f1.Eval(5, p), f2.Eval(5, p)
	if v1 != v2 {
		t.Fatalf("same seed diverged: %v vs %v", v1, v2)
	}
	f3 := New(43, 32, 0)
	if f3.Eval(5, p) == v1 {
		t.Fatal("different seeds produced identical field")
	}
}

func TestNewDefaults(t *testing.T) {
	f := New(1, 0, 0)
	if len(f.modes) == 0 {
		t.Fatal("default mode count is zero")
	}
	if f.dt <= 0 {
		t.Fatal("default dt not positive")
	}
}

func TestEvalPeriodic(t *testing.T) {
	f := New(7, 32, 0)
	a := f.Eval(3, geom.Position{X: 0.5, Y: 1.0, Z: 1.5})
	b := f.Eval(3, geom.Position{X: 0.5 + geom.DomainSide, Y: 1.0, Z: 1.5 + 2*geom.DomainSide})
	for c := 0; c < Components; c++ {
		if math.Abs(a[c]-b[c]) > 1e-9 {
			t.Fatalf("field not periodic: component %d: %g vs %g", c, a[c], b[c])
		}
	}
}

func TestEvalTimeVaries(t *testing.T) {
	f := New(7, 32, 0)
	p := geom.Position{X: 2, Y: 2, Z: 2}
	if f.Eval(0, p) == f.Eval(100, p) {
		t.Fatal("field constant in time")
	}
}

// Property: the synthesized velocity field is statistically bounded — no
// NaN/Inf anywhere.
func TestEvalFinite(t *testing.T) {
	f := New(11, 48, 0)
	g := func(x, y, z float64, s uint8) bool {
		v := f.Eval(int(s), geom.Position{X: x, Y: y, Z: z})
		for _, c := range v {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The velocity field is constructed divergence-free; verify via central
// differences that divergence is near zero relative to the gradient scale.
func TestDivergenceFree(t *testing.T) {
	f := New(3, 48, 0)
	h := 1e-5
	p := geom.Position{X: 1.3, Y: 2.7, Z: 4.1}
	div := 0.0
	grad := 0.0
	for axis := 0; axis < 3; axis++ {
		plus, minus := p, p
		switch axis {
		case 0:
			plus.X += h
			minus.X -= h
		case 1:
			plus.Y += h
			minus.Y -= h
		case 2:
			plus.Z += h
			minus.Z -= h
		}
		d := (f.Eval(0, plus)[axis] - f.Eval(0, minus)[axis]) / (2 * h)
		div += d
		grad += math.Abs(d)
	}
	// Pressure gradient scale as a yardstick for "near zero".
	if grad == 0 {
		t.Skip("degenerate field")
	}
	if math.Abs(div) > 1e-6*math.Max(grad, 1) {
		t.Fatalf("divergence %g too large (|grad| sum %g)", div, grad)
	}
}

func TestSampleShape(t *testing.T) {
	f := New(5, 16, 0)
	s := testSpace()
	a := f.Sample(0, s, geom.AtomCoord{I: 1, J: 2, K: 3}, 8)
	if a.Side != 8 {
		t.Fatalf("Side = %d, want 8", a.Side)
	}
	if len(a.Data) != 8*8*8*Components {
		t.Fatalf("Data len = %d", len(a.Data))
	}
	if a.Bytes() != int64(len(a.Data)*8) {
		t.Fatalf("Bytes = %d", a.Bytes())
	}
}

func TestSampleDefaultSide(t *testing.T) {
	f := New(5, 16, 0)
	a := f.Sample(0, testSpace(), geom.AtomCoord{I: 0, J: 0, K: 0}, 0)
	if a.Side != 8 {
		t.Fatalf("default side = %d, want 8", a.Side)
	}
}

func TestSampleMatchesEval(t *testing.T) {
	f := New(5, 16, 0)
	s := testSpace()
	ac := geom.AtomCoord{I: 2, J: 1, K: 0}
	a := f.Sample(7, s, ac, 4)
	// Sample (1,2,3) sits at a known physical position.
	atomLen := float64(s.AtomSide) * s.VoxelSize()
	h := atomLen / 4
	p := geom.Position{
		X: float64(ac.I)*atomLen + 1.5*h,
		Y: float64(ac.J)*atomLen + 2.5*h,
		Z: float64(ac.K)*atomLen + 3.5*h,
	}
	want := f.Eval(7, p)
	got := a.At(1, 2, 3)
	for c := 0; c < Components; c++ {
		if math.Abs(got[c]-want[c]) > 1e-12 {
			t.Fatalf("sample (1,2,3) component %d = %g, want %g", c, got[c], want[c])
		}
	}
}

func TestNominalAtomBytes(t *testing.T) {
	if NominalAtomBytes != 8<<20 {
		t.Fatalf("nominal atom size = %d, want 8 MiB as in §III.A", NominalAtomBytes)
	}
}

func TestKernelStencilRadii(t *testing.T) {
	cases := map[Kernel]int{
		KernelNone:      0,
		KernelTrilinear: 1,
		KernelLag4:      2,
		KernelLag6:      3,
		KernelLag8:      4,
	}
	for k, want := range cases {
		if got := k.StencilRadius(); got != want {
			t.Errorf("%v radius = %d, want %d", k, got, want)
		}
	}
}

func TestKernelCostOrdering(t *testing.T) {
	ks := []Kernel{KernelNone, KernelTrilinear, KernelLag4, KernelLag6, KernelLag8}
	for i := 1; i < len(ks); i++ {
		if ks[i].CostWeight() <= ks[i-1].CostWeight() {
			t.Fatalf("cost weight not increasing: %v=%g vs %v=%g",
				ks[i-1], ks[i-1].CostWeight(), ks[i], ks[i].CostWeight())
		}
	}
}

func TestKernelStrings(t *testing.T) {
	for _, k := range []Kernel{KernelNone, KernelTrilinear, KernelLag4, KernelLag6, KernelLag8, Kernel(99)} {
		if k.String() == "" {
			t.Fatalf("empty String for kernel %d", int(k))
		}
	}
}

// Interpolation accuracy: higher-order kernels should reproduce the smooth
// analytic field more accurately at the atom center.
func TestInterpolationAccuracyImproves(t *testing.T) {
	f := New(21, 24, 0)
	s := testSpace()
	ac := geom.AtomCoord{I: 3, J: 3, K: 3}
	a := f.Sample(0, s, ac, 16)
	p := s.Center(ac)
	p.X += 0.3 * s.VoxelSize()
	p.Y -= 0.2 * s.VoxelSize()
	truth := f.Eval(0, p)

	errFor := func(k Kernel) float64 {
		got := Interpolate(k, a, s, ac, p)
		e := 0.0
		for c := 0; c < 3; c++ {
			e += math.Abs(got[c] - truth[c])
		}
		return e
	}
	e2 := errFor(KernelTrilinear)
	e8 := errFor(KernelLag8)
	if e8 > e2*1.05 {
		t.Fatalf("Lag8 error %g not better than trilinear %g", e8, e2)
	}
}

// Property: interpolating exactly at a sample point reproduces the sample
// (Lagrange basis is interpolating).
func TestInterpolateAtSamplePoint(t *testing.T) {
	f := New(9, 16, 0)
	s := testSpace()
	ac := geom.AtomCoord{I: 1, J: 1, K: 1}
	a := f.Sample(0, s, ac, 8)
	atomLen := float64(s.AtomSide) * s.VoxelSize()
	h := atomLen / 8
	for _, idx := range [][3]int{{2, 3, 4}, {0, 0, 0}, {7, 7, 7}, {4, 4, 4}} {
		p := geom.Position{
			X: float64(ac.I)*atomLen + (float64(idx[0])+0.5)*h,
			Y: float64(ac.J)*atomLen + (float64(idx[1])+0.5)*h,
			Z: float64(ac.K)*atomLen + (float64(idx[2])+0.5)*h,
		}
		want := a.At(idx[0], idx[1], idx[2])
		for _, k := range []Kernel{KernelTrilinear, KernelLag4, KernelNone} {
			got := Interpolate(k, a, s, ac, p)
			for c := 0; c < Components; c++ {
				if math.Abs(got[c]-want[c]) > 1e-9 {
					t.Fatalf("%v at sample %v component %d = %g, want %g", k, idx, c, got[c], want[c])
				}
			}
		}
	}
}

// Property: interpolation output is always finite for positions inside the
// atom, for every kernel.
func TestInterpolateFinite(t *testing.T) {
	f := New(13, 16, 0)
	s := testSpace()
	ac := geom.AtomCoord{I: 2, J: 2, K: 2}
	a := f.Sample(0, s, ac, 8)
	atomLen := float64(s.AtomSide) * s.VoxelSize()
	g := func(fx, fy, fz float64, kk uint8) bool {
		frac := func(v float64) float64 { v = math.Abs(v); return v - math.Floor(v) }
		p := geom.Position{
			X: float64(ac.I)*atomLen + frac(fx)*atomLen,
			Y: float64(ac.J)*atomLen + frac(fy)*atomLen,
			Z: float64(ac.K)*atomLen + frac(fz)*atomLen,
		}
		k := Kernel(int(kk) % 5)
		v := Interpolate(k, a, s, ac, p)
		for _, c := range v {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSampleAtom8(b *testing.B) {
	f := New(1, 48, 0)
	s := testSpace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Sample(i%31, s, geom.AtomCoord{I: uint32(i) % 8, J: 0, K: 0}, 8)
	}
}

func BenchmarkInterpolateLag4(b *testing.B) {
	f := New(1, 48, 0)
	s := testSpace()
	ac := geom.AtomCoord{I: 1, J: 1, K: 1}
	a := f.Sample(0, s, ac, 8)
	p := s.Center(ac)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Interpolate(KernelLag4, a, s, ac, p)
	}
}

func TestSampleGhostLayout(t *testing.T) {
	f := New(5, 16, 0)
	s := testSpace()
	ac := geom.AtomCoord{I: 1, J: 1, K: 1}
	a := f.SampleGhost(3, s, ac, 4, 2)
	if a.Ghost != 2 || a.Side != 4 {
		t.Fatalf("ghost atom shape %d/%d", a.Side, a.Ghost)
	}
	if len(a.Data) != 8*8*8*Components {
		t.Fatalf("halo data len = %d, want (4+2·2)³·4", len(a.Data))
	}
	// Interior samples must agree with the no-halo atom.
	plain := f.Sample(3, s, ac, 4)
	for i := 0; i < 4; i++ {
		if a.At(i, i, i) != plain.At(i, i, i) {
			t.Fatalf("interior sample (%d,%d,%d) differs with halo", i, i, i)
		}
	}
	// Halo samples must equal the field at the neighbour's positions.
	atomLen := float64(s.AtomSide) * s.VoxelSize()
	h := atomLen / 4
	p := geom.Position{
		X: float64(ac.I)*atomLen + (-1+0.5)*h,
		Y: float64(ac.J)*atomLen + 0.5*h,
		Z: float64(ac.K)*atomLen + 0.5*h,
	}
	want := f.Eval(3, p)
	got := a.At(-1, 0, 0)
	for c := 0; c < Components; c++ {
		if math.Abs(got[c]-want[c]) > 1e-12 {
			t.Fatalf("halo sample component %d = %g, want %g", c, got[c], want[c])
		}
	}
}

func TestGhostImprovesBoundaryInterpolation(t *testing.T) {
	// A Lag6 evaluation right at an atom face: with a halo the stencil
	// stays centred; without it the stencil is clamped one-sided and
	// loses accuracy.
	f := New(21, 24, 0)
	s := testSpace()
	ac := geom.AtomCoord{I: 3, J: 3, K: 3}
	atomLen := float64(s.AtomSide) * s.VoxelSize()
	p := geom.Position{
		X: float64(ac.I)*atomLen + 0.2*s.VoxelSize(), // just inside the low-x face
		Y: (float64(ac.J) + 0.5) * atomLen,
		Z: (float64(ac.K) + 0.5) * atomLen,
	}
	truth := f.Eval(0, p)
	errOf := func(a *Atom) float64 {
		got := Interpolate(KernelLag6, a, s, ac, p)
		e := 0.0
		for c := 0; c < 3; c++ {
			e += math.Abs(got[c] - truth[c])
		}
		return e
	}
	plain := errOf(f.SampleGhost(0, s, ac, 12, 0))
	halo := errOf(f.SampleGhost(0, s, ac, 12, 3))
	if halo > plain {
		t.Fatalf("halo did not help at the boundary: %g vs %g", halo, plain)
	}
	if halo > 0.05 {
		t.Fatalf("halo boundary error still large: %g", halo)
	}
}

func TestSampleGhostNegativeClamped(t *testing.T) {
	f := New(5, 16, 0)
	a := f.SampleGhost(0, testSpace(), geom.AtomCoord{I: 0, J: 0, K: 0}, 4, -3)
	if a.Ghost != 0 {
		t.Fatalf("negative ghost not clamped: %d", a.Ghost)
	}
}
