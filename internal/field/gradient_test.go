package field

import (
	"math"
	"testing"

	"jaws/internal/geom"
)

func TestEvalGradientMatchesFiniteDifference(t *testing.T) {
	f := New(31, 32, 0)
	p := geom.Position{X: 1.2, Y: 2.3, Z: 3.4}
	g := f.EvalGradient(2, p)
	h := 1e-6
	for vi := 0; vi < 3; vi++ {
		for xj := 0; xj < 3; xj++ {
			plus, minus := p, p
			switch xj {
			case 0:
				plus.X += h
				minus.X -= h
			case 1:
				plus.Y += h
				minus.Y -= h
			case 2:
				plus.Z += h
				minus.Z -= h
			}
			fd := (f.Eval(2, plus)[vi] - f.Eval(2, minus)[vi]) / (2 * h)
			if math.Abs(fd-g[vi][xj]) > 1e-5*(1+math.Abs(fd)) {
				t.Fatalf("analytic g[%d][%d]=%g vs FD %g", vi, xj, g[vi][xj], fd)
			}
		}
	}
}

func TestEvalGradientDivergenceFree(t *testing.T) {
	f := New(5, 48, 0)
	for _, p := range []geom.Position{{X: 0.5, Y: 0.5, Z: 0.5}, {X: 3, Y: 1, Z: 5}, {X: 6, Y: 6, Z: 6}} {
		if div := math.Abs(f.EvalGradient(0, p).Divergence()); div > 1e-10 {
			t.Fatalf("analytic divergence %g at %v", div, p)
		}
	}
}

func TestInterpolateGradientAccuracy(t *testing.T) {
	// The interpolated gradient must approximate the analytic one, and
	// higher-order stencils must not be worse.
	f := New(13, 24, 0)
	s := geom.Space{GridSide: 256, AtomSide: 32}
	ac := geom.AtomCoord{I: 2, J: 2, K: 2}
	a := f.Sample(0, s, ac, 16)
	p := s.Center(ac)
	p.X += 0.2 * s.VoxelSize()
	truth := f.EvalGradient(0, p)

	errOf := func(k Kernel) float64 {
		got := InterpolateGradient(k, a, s, ac, p)
		e := 0.0
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				e += math.Abs(got[i][j] - truth[i][j])
			}
		}
		return e
	}
	e2 := errOf(KernelTrilinear)
	e8 := errOf(KernelLag8)
	// The analytic field varies on O(1) scales; the sampled atom grid has
	// spacing ~0.05 here, so even low-order gradients should be close.
	norm := 0.0
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			norm += math.Abs(truth[i][j])
		}
	}
	if e8 > 0.2*norm {
		t.Fatalf("Lag8 gradient error %g vs tensor norm %g", e8, norm)
	}
	if e8 > e2*1.1 {
		t.Fatalf("Lag8 gradient (%g) worse than trilinear (%g)", e8, e2)
	}
}

func TestGradientDecompositions(t *testing.T) {
	g := Gradient{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
	}
	s := g.Strain()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if s[i][j] != s[j][i] {
				t.Fatal("strain not symmetric")
			}
		}
	}
	w := g.Vorticity()
	want := [3]float64{8 - 6, 3 - 7, 4 - 2}
	if w != want {
		t.Fatalf("vorticity %v, want %v", w, want)
	}
	if g.Divergence() != 15 {
		t.Fatalf("divergence = %g", g.Divergence())
	}
	// Pure rotation has positive Q; pure strain negative.
	rot := Gradient{{0, -1, 0}, {1, 0, 0}, {0, 0, 0}}
	if rot.QCriterion() <= 0 {
		t.Fatal("pure rotation has non-positive Q")
	}
	strain := Gradient{{1, 0, 0}, {0, -1, 0}, {0, 0, 0}}
	if strain.QCriterion() >= 0 {
		t.Fatal("pure strain has non-negative Q")
	}
}

func TestInterpolatedGradientNearlyDivergenceFree(t *testing.T) {
	// Numerical differentiation of an incompressible field should stay
	// close to divergence-free relative to the gradient magnitude.
	f := New(3, 24, 0)
	s := geom.Space{GridSide: 256, AtomSide: 32}
	ac := geom.AtomCoord{I: 1, J: 3, K: 5}
	a := f.Sample(4, s, ac, 16)
	p := s.Center(ac)
	g := InterpolateGradient(KernelLag6, a, s, ac, p)
	norm := 0.0
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			norm += math.Abs(g[i][j])
		}
	}
	if math.Abs(g.Divergence()) > 0.05*norm {
		t.Fatalf("numerical divergence %g vs norm %g", g.Divergence(), norm)
	}
}

func BenchmarkInterpolateGradientLag6(b *testing.B) {
	f := New(1, 48, 0)
	s := geom.Space{GridSide: 256, AtomSide: 32}
	ac := geom.AtomCoord{I: 1, J: 1, K: 1}
	a := f.Sample(0, s, ac, 8)
	p := s.Center(ac)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InterpolateGradient(KernelLag6, a, s, ac, p)
	}
}
