// Package geom defines the spatial model of the simulated Turbulence
// database: a periodic cube of voxels partitioned into fixed-size storage
// blocks ("atoms"), and the mapping from continuous query positions to the
// atoms their evaluation touches.
//
// In the production database each time step is a 1024³ voxel grid split
// into 64³-voxel atoms (4096 atoms of ~8 MB per step). The same layout is
// reproduced here with configurable sizes so tests run at small scale while
// the benchmark harness uses paper-scale parameters.
package geom

import (
	"fmt"
	"math"

	"jaws/internal/morton"
)

// Position is a point in the continuous simulation domain [0, 2π)³,
// matching the convention of the turbulence DNS, which simulates a
// periodic box of side 2π.
type Position struct {
	X, Y, Z float64
}

// DomainSide is the physical side length of the periodic simulation box.
const DomainSide = 2 * math.Pi

// Space describes the discretization of one time step: GridSide voxels per
// axis, partitioned into atoms of AtomSide voxels per axis.
type Space struct {
	// GridSide is the number of voxels per axis (1024 in the paper).
	GridSide int
	// AtomSide is the number of voxels per axis in one atom (64 in the
	// paper, giving 4096 atoms per time step).
	AtomSide int
}

// Validate checks the structural invariants of the space.
func (s Space) Validate() error {
	if s.GridSide <= 0 || s.AtomSide <= 0 {
		return fmt.Errorf("geom: sides must be positive, got grid=%d atom=%d", s.GridSide, s.AtomSide)
	}
	if s.GridSide%s.AtomSide != 0 {
		return fmt.Errorf("geom: grid side %d not divisible by atom side %d", s.GridSide, s.AtomSide)
	}
	side := s.AtomsPerAxis()
	if side&(side-1) != 0 {
		return fmt.Errorf("geom: atoms per axis %d must be a power of two for the Morton index", side)
	}
	return nil
}

// PaperSpace returns the production geometry: 1024³ voxels in 64³-voxel
// atoms.
func PaperSpace() Space { return Space{GridSide: 1024, AtomSide: 64} }

// AtomsPerAxis returns the number of atoms along one axis.
func (s Space) AtomsPerAxis() int { return s.GridSide / s.AtomSide }

// AtomsPerStep returns the total number of atoms in one time step
// (4096 in the paper).
func (s Space) AtomsPerStep() int {
	n := s.AtomsPerAxis()
	return n * n * n
}

// VoxelSize is the physical side length of one voxel.
func (s Space) VoxelSize() float64 { return DomainSide / float64(s.GridSide) }

// AtomCoord identifies an atom within a time step by its integer grid
// coordinates (each in [0, AtomsPerAxis)).
type AtomCoord struct {
	I, J, K uint32
}

// Code returns the Morton code of the atom, which is its position in the
// on-disk linear order.
func (a AtomCoord) Code() morton.Code { return morton.Encode(a.I, a.J, a.K) }

// AtomFromCode inverts Code.
func AtomFromCode(c morton.Code) AtomCoord {
	x, y, z := c.Decode()
	return AtomCoord{I: x, J: y, K: z}
}

// wrap maps v into [0, DomainSide) respecting periodicity.
func wrap(v float64) float64 {
	v = math.Mod(v, DomainSide)
	if v < 0 {
		v += DomainSide
	}
	return v
}

// Wrap returns p with every component wrapped into the periodic domain.
func Wrap(p Position) Position {
	return Position{X: wrap(p.X), Y: wrap(p.Y), Z: wrap(p.Z)}
}

// VoxelOf returns the integer voxel containing p (after periodic wrap).
func (s Space) VoxelOf(p Position) (vx, vy, vz int) {
	vsz := s.VoxelSize()
	f := func(v float64) int {
		i := int(wrap(v) / vsz)
		if i >= s.GridSide { // guard against FP round-up at the seam
			i = s.GridSide - 1
		}
		return i
	}
	return f(p.X), f(p.Y), f(p.Z)
}

// AtomOf returns the atom containing position p.
func (s Space) AtomOf(p Position) AtomCoord {
	vx, vy, vz := s.VoxelOf(p)
	return AtomCoord{
		I: uint32(vx / s.AtomSide),
		J: uint32(vy / s.AtomSide),
		K: uint32(vz / s.AtomSide),
	}
}

// Footprint returns the set of atoms an interpolation stencil of
// half-width radius (in voxels) around p must read. The primary atom is
// always first. For Lagrange interpolation of order N the stencil spans
// N voxels, so radius = N/2; a stencil that stays inside one atom returns
// just that atom, while one near an atom face spills into neighbours —
// this is the "kernel of computation" locality that two-level scheduling
// (batching k nearby atoms) exploits.
func (s Space) Footprint(p Position, radius int) []AtomCoord {
	primary := s.AtomOf(p)
	if radius <= 0 {
		return []AtomCoord{primary}
	}
	vx, vy, vz := s.VoxelOf(p)
	n := s.AtomsPerAxis()
	seen := map[AtomCoord]bool{primary: true}
	out := []AtomCoord{primary}
	// Examine the two extreme corners of the stencil along each axis.
	for _, dx := range [2]int{vx - radius, vx + radius} {
		for _, dy := range [2]int{vy - radius, vy + radius} {
			for _, dz := range [2]int{vz - radius, vz + radius} {
				a := AtomCoord{
					I: uint32(wrapInt(dx/s.AtomSide, floorDivAdjust(dx, s.AtomSide), n)),
					J: uint32(wrapInt(dy/s.AtomSide, floorDivAdjust(dy, s.AtomSide), n)),
					K: uint32(wrapInt(dz/s.AtomSide, floorDivAdjust(dz, s.AtomSide), n)),
				}
				if !seen[a] {
					seen[a] = true
					out = append(out, a)
				}
			}
		}
	}
	return out
}

// floorDivAdjust returns -1 when integer division of a negative numerator
// truncated toward zero instead of flooring.
func floorDivAdjust(num, den int) int {
	if num < 0 && num%den != 0 {
		return -1
	}
	return 0
}

// wrapInt wraps q+adjust into [0, n) for the periodic atom grid.
func wrapInt(q, adjust, n int) int {
	v := (q + adjust) % n
	if v < 0 {
		v += n
	}
	return v
}

// Dist2 returns the squared Euclidean distance between two positions under
// the minimum-image convention of the periodic domain.
func Dist2(a, b Position) float64 {
	d := func(x, y float64) float64 {
		dv := math.Abs(wrap(x) - wrap(y))
		if dv > DomainSide/2 {
			dv = DomainSide - dv
		}
		return dv
	}
	dx, dy, dz := d(a.X, b.X), d(a.Y, b.Y), d(a.Z, b.Z)
	return dx*dx + dy*dy + dz*dz
}

// Center returns the physical center of atom a.
func (s Space) Center(a AtomCoord) Position {
	asz := float64(s.AtomSide) * s.VoxelSize()
	return Position{
		X: (float64(a.I) + 0.5) * asz,
		Y: (float64(a.J) + 0.5) * asz,
		Z: (float64(a.K) + 0.5) * asz,
	}
}

// String renders the atom coordinate.
func (a AtomCoord) String() string { return fmt.Sprintf("atom(%d,%d,%d)", a.I, a.J, a.K) }
