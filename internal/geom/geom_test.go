package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func testSpace() Space { return Space{GridSide: 256, AtomSide: 32} }

func TestValidate(t *testing.T) {
	if err := testSpace().Validate(); err != nil {
		t.Fatalf("valid space rejected: %v", err)
	}
	if err := PaperSpace().Validate(); err != nil {
		t.Fatalf("paper space rejected: %v", err)
	}
	bad := []Space{
		{GridSide: 0, AtomSide: 32},
		{GridSide: 256, AtomSide: 0},
		{GridSide: 100, AtomSide: 32},  // not divisible
		{GridSide: 96, AtomSide: 32},   // 3 atoms per axis: not a power of two
		{GridSide: -256, AtomSide: 32}, // negative
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid space %+v accepted", s)
		}
	}
}

func TestPaperSpaceDimensions(t *testing.T) {
	s := PaperSpace()
	if got := s.AtomsPerAxis(); got != 16 {
		t.Fatalf("paper atoms per axis = %d, want 16", got)
	}
	if got := s.AtomsPerStep(); got != 4096 {
		t.Fatalf("paper atoms per step = %d, want 4096 (as stated in §III.A)", got)
	}
}

func TestAtomOfCorners(t *testing.T) {
	s := testSpace()
	if a := s.AtomOf(Position{0, 0, 0}); a != (AtomCoord{0, 0, 0}) {
		t.Fatalf("origin in atom %v, want (0,0,0)", a)
	}
	// Just inside the far corner.
	eps := 1e-9
	p := Position{DomainSide - eps, DomainSide - eps, DomainSide - eps}
	n := uint32(s.AtomsPerAxis() - 1)
	if a := s.AtomOf(p); a != (AtomCoord{n, n, n}) {
		t.Fatalf("far corner in atom %v, want (%d,%d,%d)", a, n, n, n)
	}
}

func TestAtomOfPeriodicWrap(t *testing.T) {
	s := testSpace()
	a := s.AtomOf(Position{DomainSide + 0.1, -0.1, 2 * DomainSide})
	b := s.AtomOf(Position{0.1, DomainSide - 0.1, 0})
	if a != b {
		t.Fatalf("periodic wrap inconsistent: %v vs %v", a, b)
	}
}

// Property: every position maps to an atom with coordinates inside the
// grid, and the atom's Morton code round-trips.
func TestAtomOfInRange(t *testing.T) {
	s := testSpace()
	n := uint32(s.AtomsPerAxis())
	f := func(x, y, z float64) bool {
		a := s.AtomOf(Position{x, y, z})
		if a.I >= n || a.J >= n || a.K >= n {
			return false
		}
		return AtomFromCode(a.Code()) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFootprintInterior(t *testing.T) {
	s := testSpace()
	// Center of atom (1,1,1): an 8-voxel-radius stencil stays inside a
	// 32-voxel atom.
	center := s.Center(AtomCoord{1, 1, 1})
	fp := s.Footprint(center, 8)
	if len(fp) != 1 || fp[0] != (AtomCoord{1, 1, 1}) {
		t.Fatalf("interior footprint = %v, want just atom(1,1,1)", fp)
	}
}

func TestFootprintZeroRadius(t *testing.T) {
	s := testSpace()
	p := Position{0.1, 0.2, 0.3}
	fp := s.Footprint(p, 0)
	if len(fp) != 1 || fp[0] != s.AtomOf(p) {
		t.Fatalf("zero-radius footprint = %v, want the containing atom only", fp)
	}
}

func TestFootprintSpillsAcrossFace(t *testing.T) {
	s := testSpace()
	// A point just inside atom (1,1,1) near its low-x face: stencil spills
	// into atom (0,1,1).
	asz := float64(s.AtomSide) * s.VoxelSize()
	p := Position{asz + 0.5*s.VoxelSize(), 1.5 * asz, 1.5 * asz}
	fp := s.Footprint(p, 4)
	if fp[0] != (AtomCoord{1, 1, 1}) {
		t.Fatalf("primary atom = %v, want (1,1,1)", fp[0])
	}
	found := false
	for _, a := range fp {
		if a == (AtomCoord{0, 1, 1}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("footprint %v missing neighbour (0,1,1)", fp)
	}
}

func TestFootprintPeriodicSpill(t *testing.T) {
	s := testSpace()
	// A point near the domain origin: the stencil wraps to the far side.
	p := Position{0.5 * s.VoxelSize(), 0.5 * s.VoxelSize(), 0.5 * s.VoxelSize()}
	fp := s.Footprint(p, 4)
	n := uint32(s.AtomsPerAxis() - 1)
	found := false
	for _, a := range fp {
		if a == (AtomCoord{n, n, n}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("periodic footprint %v missing wrapped corner atom (%d,%d,%d)", fp, n, n, n)
	}
	if len(fp) != 8 {
		t.Fatalf("corner stencil should touch 8 atoms, got %d: %v", len(fp), fp)
	}
}

// Property: the footprint always contains the primary atom first and has
// no duplicates.
func TestFootprintNoDuplicates(t *testing.T) {
	s := testSpace()
	f := func(x, y, z float64, r uint8) bool {
		radius := int(r % 8)
		p := Position{x, y, z}
		fp := s.Footprint(p, radius)
		if len(fp) == 0 || fp[0] != s.AtomOf(p) {
			return false
		}
		seen := map[AtomCoord]bool{}
		for _, a := range fp {
			if seen[a] {
				return false
			}
			seen[a] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDist2Periodic(t *testing.T) {
	a := Position{0.1, 0, 0}
	b := Position{DomainSide - 0.1, 0, 0}
	want := 0.2 * 0.2
	if got := Dist2(a, b); math.Abs(got-want) > 1e-9 {
		t.Fatalf("minimum-image Dist2 = %g, want %g", got, want)
	}
}

func TestDist2Symmetric(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := Position{ax, ay, az}, Position{bx, by, bz}
		return math.Abs(Dist2(a, b)-Dist2(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCenterInsideAtom(t *testing.T) {
	s := testSpace()
	for _, a := range []AtomCoord{{0, 0, 0}, {3, 5, 7}, {7, 7, 7}} {
		if got := s.AtomOf(s.Center(a)); got != a {
			t.Fatalf("center of %v maps back to %v", a, got)
		}
	}
}

func TestVoxelSize(t *testing.T) {
	s := testSpace()
	want := DomainSide / 256
	if got := s.VoxelSize(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("VoxelSize = %g, want %g", got, want)
	}
}

func TestWrap(t *testing.T) {
	p := Wrap(Position{-0.5, DomainSide + 0.5, 3 * DomainSide})
	if p.X < 0 || p.X >= DomainSide || p.Y < 0 || p.Y >= DomainSide || p.Z < 0 || p.Z >= DomainSide {
		t.Fatalf("Wrap left components outside domain: %+v", p)
	}
}
