package cache

import (
	"container/list"
	"fmt"

	"jaws/internal/store"
)

// TwoQ implements the 2Q replacement algorithm of Johnson & Shasha
// (VLDB '94), one of the two prior designs the paper's SLRU draws on
// (§V.B cites it alongside segmented caching). New atoms enter a FIFO
// probation queue (A1in); atoms evicted from probation leave a ghost
// entry (A1out, addresses only); an atom re-referenced while its ghost is
// alive is recognized as genuinely hot and promoted into the main LRU
// (Am). One-shot scans therefore flow through A1in without ever touching
// the hot set.
type TwoQ struct {
	kin  int // capacity share of A1in
	kout int // ghost entries retained

	a1in  *list.List // FIFO of resident probation atoms (front = newest)
	am    *list.List // LRU of resident hot atoms (front = MRU)
	where map[store.AtomID]*list.Element
	inAm  map[store.AtomID]bool

	ghost     *list.List // FIFO of evicted-from-probation atom IDs
	ghostByID map[store.AtomID]*list.Element
}

// NewTwoQ builds a 2Q policy for a cache of the given capacity. The
// classic tunings are used: A1in sized at 25 % of capacity and A1out
// remembering 50 % of capacity worth of ghosts.
func NewTwoQ(capacity int) *TwoQ {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: 2Q capacity must be positive, got %d", capacity))
	}
	kin := capacity / 4
	if kin < 1 {
		kin = 1
	}
	kout := capacity / 2
	if kout < 1 {
		kout = 1
	}
	return &TwoQ{
		kin:       kin,
		kout:      kout,
		a1in:      list.New(),
		am:        list.New(),
		where:     make(map[store.AtomID]*list.Element),
		inAm:      make(map[store.AtomID]bool),
		ghost:     list.New(),
		ghostByID: make(map[store.AtomID]*list.Element),
	}
}

// Name implements Policy.
func (p *TwoQ) Name() string { return "2q" }

// OnHit implements Policy: hits in Am refresh recency; hits in A1in do
// nothing (2Q deliberately ignores correlated re-references during
// probation).
func (p *TwoQ) OnHit(id store.AtomID) {
	if p.inAm[id] {
		p.am.MoveToFront(p.where[id])
	}
}

// OnInsert implements Policy: an atom whose ghost is still remembered is
// promoted straight to the hot LRU; everything else starts probation.
func (p *TwoQ) OnInsert(id store.AtomID) {
	if e, ok := p.ghostByID[id]; ok {
		p.ghost.Remove(e)
		delete(p.ghostByID, id)
		p.where[id] = p.am.PushFront(id)
		p.inAm[id] = true
		return
	}
	p.where[id] = p.a1in.PushFront(id)
}

// Victim implements Policy: drain an over-full probation queue first,
// else the hot LRU tail; fall back to whichever queue has content.
func (p *TwoQ) Victim() store.AtomID {
	if p.a1in.Len() > p.kin || p.am.Len() == 0 {
		if e := p.a1in.Back(); e != nil {
			return e.Value.(store.AtomID)
		}
	}
	return p.am.Back().Value.(store.AtomID)
}

// OnEvict implements Policy: probation evictions leave a ghost.
func (p *TwoQ) OnEvict(id store.AtomID) {
	e, ok := p.where[id]
	if !ok {
		return
	}
	if p.inAm[id] {
		p.am.Remove(e)
		delete(p.inAm, id)
	} else {
		p.a1in.Remove(e)
		p.ghostByID[id] = p.ghost.PushFront(id)
		for p.ghost.Len() > p.kout {
			old := p.ghost.Back()
			p.ghost.Remove(old)
			delete(p.ghostByID, old.Value.(store.AtomID))
		}
	}
	delete(p.where, id)
}

// EndRun implements Policy (no-op; 2Q adapts continuously).
func (p *TwoQ) EndRun() {}

// HotLen reports the current Am size (tests).
func (p *TwoQ) HotLen() int { return p.am.Len() }

// GhostLen reports the current A1out size (tests).
func (p *TwoQ) GhostLen() int { return p.ghost.Len() }
