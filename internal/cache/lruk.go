package cache

import (
	"jaws/internal/store"
)

// LRUK implements the LRU-K page replacement of O'Neil, O'Neil & Weikum
// (SIGMOD '93), the algorithm behind SQL Server's page replacement that
// Table I uses as the workload-oblivious baseline.
//
// Each atom keeps the times of its last K references. The victim is the
// resident atom with the maximum backward K-distance — i.e. the oldest
// K-th most recent reference — with atoms that have fewer than K
// references treated as infinitely distant. Two refinements from the
// original paper are essential in practice and implemented here:
//
//   - correlated references: touches within the correlated-reference
//     period collapse into one, so a burst from a single batch does not
//     masquerade as genuine reuse;
//   - retained history: reference history survives eviction for a
//     retention period, so an atom that cycles back soon after eviction
//     is recognized as hot instead of being treated as brand new (without
//     this the cache freezes on early two-reference atoms and thrashes
//     every newcomer).
type LRUK struct {
	k          int
	correlated int64 // correlated reference period in ticks
	retain     int64 // retained-history period in ticks
	clock      int64
	hist       map[store.AtomID][]int64 // most recent first, len ≤ k
	resident   map[store.AtomID]bool
}

// DefaultRetain is the retained-information period (in reference ticks)
// used when NewLRUK is given retain ≤ 0.
const DefaultRetain = 4096

// NewLRUK builds an LRU-K policy. k ≤ 0 defaults to 2 (the classic
// LRU-2); correlated ≤ 0 disables correlated-reference filtering.
func NewLRUK(k int, correlated int64) *LRUK {
	if k <= 0 {
		k = 2
	}
	return &LRUK{
		k:          k,
		correlated: correlated,
		retain:     DefaultRetain,
		hist:       make(map[store.AtomID][]int64),
		resident:   make(map[store.AtomID]bool),
	}
}

// Name implements Policy.
func (p *LRUK) Name() string { return "lru-k" }

func (p *LRUK) touch(id store.AtomID) {
	p.clock++
	h := p.hist[id]
	if len(h) > 0 && p.correlated > 0 && p.clock-h[0] <= p.correlated {
		// Correlated reference: update the most recent time only.
		h[0] = p.clock
		return
	}
	h = append([]int64{p.clock}, h...)
	if len(h) > p.k {
		h = h[:p.k]
	}
	p.hist[id] = h
	if p.clock%512 == 0 {
		p.gc()
	}
}

// gc drops retained history of non-resident atoms whose last reference is
// older than the retention period, bounding memory.
func (p *LRUK) gc() {
	for id, h := range p.hist {
		if !p.resident[id] && p.clock-h[0] > p.retain {
			delete(p.hist, id)
		}
	}
}

// OnHit implements Policy.
func (p *LRUK) OnHit(id store.AtomID) { p.touch(id) }

// OnInsert implements Policy.
func (p *LRUK) OnInsert(id store.AtomID) {
	p.resident[id] = true
	p.touch(id)
}

// Victim implements Policy: the resident atom with maximum backward
// K-distance.
func (p *LRUK) Victim() store.AtomID {
	var victim store.AtomID
	victimKth := int64(1<<62 - 1)
	victimShort := false // victim has < k references
	first := true
	for id := range p.resident {
		h := p.hist[id]
		short := len(h) < p.k
		var kth int64
		if short {
			kth = h[len(h)-1] // oldest known reference
		} else {
			kth = h[p.k-1]
		}
		better := false
		switch {
		case first:
			better = true
		case short && !victimShort:
			better = true // infinite distance beats finite
		case short == victimShort && kth < victimKth:
			better = true
		case short == victimShort && kth == victimKth && id.Key() < victim.Key():
			better = true // deterministic tie-break for reproducible runs
		}
		if better {
			victim, victimKth, victimShort, first = id, kth, short, false
		}
	}
	return victim
}

// OnEvict implements Policy. The reference history is retained (up to the
// retention period) so returning atoms keep their hotness.
func (p *LRUK) OnEvict(id store.AtomID) { delete(p.resident, id) }

// EndRun implements Policy (no-op).
func (p *LRUK) EndRun() {}
