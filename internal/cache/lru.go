package cache

import (
	"container/list"

	"jaws/internal/store"
)

// LRU is least-recently-used replacement, the simplest recency policy;
// included as an ablation baseline.
type LRU struct {
	order *list.List // front = most recent
	elems map[store.AtomID]*list.Element
}

// NewLRU creates an empty LRU policy.
func NewLRU() *LRU {
	return &LRU{order: list.New(), elems: make(map[store.AtomID]*list.Element)}
}

// Name implements Policy.
func (p *LRU) Name() string { return "lru" }

// OnHit implements Policy.
func (p *LRU) OnHit(id store.AtomID) {
	if e, ok := p.elems[id]; ok {
		p.order.MoveToFront(e)
	}
}

// OnInsert implements Policy.
func (p *LRU) OnInsert(id store.AtomID) {
	p.elems[id] = p.order.PushFront(id)
}

// Victim implements Policy.
func (p *LRU) Victim() store.AtomID {
	return p.order.Back().Value.(store.AtomID)
}

// OnEvict implements Policy.
func (p *LRU) OnEvict(id store.AtomID) {
	if e, ok := p.elems[id]; ok {
		p.order.Remove(e)
		delete(p.elems, id)
	}
}

// EndRun implements Policy (no-op for LRU).
func (p *LRU) EndRun() {}

// FIFO is first-in-first-out replacement: recency-blind, used in ablation
// benches to quantify what recency alone buys.
type FIFO struct {
	order *list.List // front = newest
	elems map[store.AtomID]*list.Element
}

// NewFIFO creates an empty FIFO policy.
func NewFIFO() *FIFO {
	return &FIFO{order: list.New(), elems: make(map[store.AtomID]*list.Element)}
}

// Name implements Policy.
func (p *FIFO) Name() string { return "fifo" }

// OnHit implements Policy (hits do not reorder a FIFO).
func (p *FIFO) OnHit(store.AtomID) {}

// OnInsert implements Policy.
func (p *FIFO) OnInsert(id store.AtomID) {
	p.elems[id] = p.order.PushFront(id)
}

// Victim implements Policy.
func (p *FIFO) Victim() store.AtomID {
	return p.order.Back().Value.(store.AtomID)
}

// OnEvict implements Policy.
func (p *FIFO) OnEvict(id store.AtomID) {
	if e, ok := p.elems[id]; ok {
		p.order.Remove(e)
		delete(p.elems, id)
	}
}

// EndRun implements Policy (no-op).
func (p *FIFO) EndRun() {}
