// Package cache implements the externally managed atom cache of §V.B and
// the replacement policies the paper evaluates in Table I: the LRU-K
// baseline (SQL Server's page replacement is a variant of LRU-K), the
// low-overhead Segmented LRU (SLRU) that promotes frequently accessed
// atoms into a protected segment at the end of each run, and the
// Utility-Ranked Cache (URC) that coordinates eviction with the two-level
// scheduler. Plain LRU and FIFO are included for ablation.
//
// Capacity is counted in atoms: atoms are equal-sized (the paper assumes
// uniform I/O cost for the same reason), so a 2 GB cache is 256 8-MB atoms.
package cache

import (
	"fmt"
	"time"

	"jaws/internal/store"
)

// Policy decides which resident atom to evict. Implementations are not
// safe for concurrent use; the cache serializes calls.
type Policy interface {
	// Name identifies the policy in reports ("lru-k", "slru", "urc", ...).
	Name() string
	// OnHit notes an access to a resident atom.
	OnHit(id store.AtomID)
	// OnInsert notes that id became resident.
	OnInsert(id store.AtomID)
	// Victim selects the resident atom to evict. It is only called when
	// the cache is full and must return a currently resident atom.
	Victim() store.AtomID
	// OnEvict notes that id was evicted.
	OnEvict(id store.AtomID)
	// EndRun marks the end of one workload run (r consecutive queries);
	// SLRU performs its promotions here. Other policies ignore it.
	EndRun()
}

// Stats accumulates cache effectiveness counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// Corruptions counts resident entries dropped because their payload
	// failed integrity verification (fault injection); each is also
	// counted as a miss, since the caller must re-read from disk.
	Corruptions int64
	// PolicyTime is real (wall-clock) time spent inside policy decisions;
	// it backs Table I's overhead-per-query column.
	PolicyTime time.Duration
}

// HitRatio returns hits/(hits+misses), or 0 before any access.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Observer receives per-atom cache events for tracing. Any hook may be
// nil; hooks run synchronously on the accessing goroutine.
type Observer struct {
	Hit     func(id store.AtomID)
	Miss    func(id store.AtomID)
	Evict   func(id store.AtomID)
	Corrupt func(id store.AtomID)
}

// Cache is an atom cache with a pluggable replacement policy.
type Cache struct {
	capacity int
	policy   Policy
	entries  map[store.AtomID]any
	stats    Stats
	obs      Observer
	// integrity, when non-nil, verifies a resident payload on every hit
	// (the checksum pass a real buffer manager performs); false drops the
	// entry and reports a miss so the caller re-reads from disk.
	integrity func(id store.AtomID) bool
	// version counts residency mutations: it advances whenever the set of
	// resident atoms changes (insert, evict, corruption drop, flush).
	// Schedulers use it to memoize φ(i)-dependent utility values between
	// decisions (sched.ResidencyVersioned).
	version uint64
}

// New creates a cache holding up to capacity atoms. capacity must be
// positive and policy non-nil.
func New(capacity int, policy Policy) *Cache {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: capacity must be positive, got %d", capacity))
	}
	if policy == nil {
		panic("cache: nil policy")
	}
	return &Cache{
		capacity: capacity,
		policy:   policy,
		entries:  make(map[store.AtomID]any, capacity),
	}
}

// SetObserver installs (or, with the zero Observer, removes) the event
// hooks. The cache serializes calls to the hooks with its own accesses.
func (c *Cache) SetObserver(o Observer) { c.obs = o }

// SetIntegrity installs (or, with nil, removes) the payload verifier
// consulted on every hit. See internal/fault for the deterministic
// corruption injector that normally backs it.
func (c *Cache) SetIntegrity(fn func(id store.AtomID) bool) { c.integrity = fn }

// Get returns the cached value for id, if resident.
func (c *Cache) Get(id store.AtomID) (any, bool) {
	v, ok := c.entries[id]
	if ok && c.integrity != nil && !c.integrity(id) {
		// Checksum mismatch: the resident copy is garbage. Drop it and
		// report a miss so the caller restores the atom from disk.
		delete(c.entries, id)
		c.version++
		c.policy.OnEvict(id)
		c.stats.Corruptions++
		c.stats.Misses++
		if c.obs.Corrupt != nil {
			c.obs.Corrupt(id)
		}
		if c.obs.Miss != nil {
			c.obs.Miss(id)
		}
		return nil, false
	}
	if ok {
		c.stats.Hits++
		start := time.Now()
		c.policy.OnHit(id)
		c.stats.PolicyTime += time.Since(start)
		if c.obs.Hit != nil {
			c.obs.Hit(id)
		}
	} else {
		c.stats.Misses++
		if c.obs.Miss != nil {
			c.obs.Miss(id)
		}
	}
	return v, ok
}

// Contains reports residency without touching the policy or stats — the
// scheduler uses this for the φ(i) term of the workload throughput metric
// (Eq. 1), which must not perturb recency state.
func (c *Cache) Contains(id store.AtomID) bool {
	_, ok := c.entries[id]
	return ok
}

// Put inserts id, evicting per policy if the cache is full. Inserting an
// already-resident atom just refreshes its value and recency.
func (c *Cache) Put(id store.AtomID, v any) {
	if _, ok := c.entries[id]; ok {
		c.entries[id] = v
		start := time.Now()
		c.policy.OnHit(id)
		c.stats.PolicyTime += time.Since(start)
		return
	}
	start := time.Now()
	for len(c.entries) >= c.capacity {
		victim := c.policy.Victim()
		if _, ok := c.entries[victim]; !ok {
			panic(fmt.Sprintf("cache: policy %s evicted non-resident atom %v", c.policy.Name(), victim))
		}
		delete(c.entries, victim)
		c.version++
		c.policy.OnEvict(victim)
		c.stats.Evictions++
		if c.obs.Evict != nil {
			c.obs.Evict(victim)
		}
	}
	c.entries[id] = v
	c.version++
	c.policy.OnInsert(id)
	c.stats.PolicyTime += time.Since(start)
}

// EndRun forwards the end-of-run signal to the policy.
func (c *Cache) EndRun() {
	start := time.Now()
	c.policy.EndRun()
	c.stats.PolicyTime += time.Since(start)
}

// Len reports the number of resident atoms.
func (c *Cache) Len() int { return len(c.entries) }

// Version returns the residency mutation counter: it changes whenever the
// set of resident atoms may have changed, so an unchanged value proves
// every Contains answer (and thus every φ(i) term) is unchanged too.
func (c *Cache) Version() uint64 { return c.version }

// Keys returns the resident atom IDs in unspecified order. The engine
// uses this to push scheduler utilities into URC.
func (c *Cache) Keys() []store.AtomID {
	out := make([]store.AtomID, 0, len(c.entries))
	for id := range c.entries {
		out = append(out, id)
	}
	return out
}

// Capacity reports the configured maximum.
func (c *Cache) Capacity() int { return c.capacity }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters (contents stay resident).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Flush evicts everything. The NoShare baseline flushes between queries so
// that no I/O is shared across queries (§VI), mirroring the paper's
// methodology of flushing the buffer pool.
func (c *Cache) Flush() {
	for id := range c.entries {
		delete(c.entries, id)
		c.version++
		c.policy.OnEvict(id)
		c.stats.Evictions++
		if c.obs.Evict != nil {
			c.obs.Evict(id)
		}
	}
}

// PolicyName reports the replacement policy in use.
func (c *Cache) PolicyName() string { return c.policy.Name() }

// Policy exposes the policy for scheduler coordination (URC needs utility
// updates pushed into it).
func (c *Cache) Policy() Policy { return c.policy }
