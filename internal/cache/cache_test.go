package cache

import (
	"testing"

	"jaws/internal/morton"
	"jaws/internal/store"
)

func id(step, code int) store.AtomID {
	return store.AtomID{Step: step, Code: morton.Code(code)}
}

func TestNewValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero capacity accepted")
			}
		}()
		New(0, NewLRU())
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil policy accepted")
			}
		}()
		New(1, nil)
	}()
}

func TestGetMissAndHit(t *testing.T) {
	c := New(2, NewLRU())
	if _, ok := c.Get(id(0, 1)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(id(0, 1), "a")
	v, ok := c.Get(id(0, 1))
	if !ok || v != "a" {
		t.Fatalf("Get = %v/%v", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := New(2, NewLRU())
	c.Put(id(0, 1), "a")
	c.Put(id(0, 1), "b")
	if c.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Put", c.Len())
	}
	if v, _ := c.Get(id(0, 1)); v != "b" {
		t.Fatalf("value not refreshed: %v", v)
	}
}

func TestCapacityEnforced(t *testing.T) {
	c := New(3, NewLRU())
	for i := 0; i < 10; i++ {
		c.Put(id(0, i), i)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if c.Stats().Evictions != 7 {
		t.Fatalf("Evictions = %d, want 7", c.Stats().Evictions)
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := New(2, NewLRU())
	c.Put(id(0, 1), nil)
	c.Put(id(0, 2), nil)
	// Probing 1 via Contains must not refresh its recency.
	if !c.Contains(id(0, 1)) {
		t.Fatal("Contains false for resident atom")
	}
	hits := c.Stats().Hits
	c.Put(id(0, 3), nil) // evicts LRU = 1
	if c.Contains(id(0, 1)) {
		t.Fatal("Contains perturbed LRU order")
	}
	if c.Stats().Hits != hits {
		t.Fatal("Contains counted as a hit")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(2, NewLRU())
	c.Put(id(0, 1), nil)
	c.Put(id(0, 2), nil)
	c.Get(id(0, 1))      // 1 becomes MRU
	c.Put(id(0, 3), nil) // evicts 2
	if !c.Contains(id(0, 1)) || c.Contains(id(0, 2)) || !c.Contains(id(0, 3)) {
		t.Fatal("LRU evicted the wrong atom")
	}
}

func TestFIFOIgnoresHits(t *testing.T) {
	c := New(2, NewFIFO())
	c.Put(id(0, 1), nil)
	c.Put(id(0, 2), nil)
	c.Get(id(0, 1))      // should NOT save 1
	c.Put(id(0, 3), nil) // evicts 1 (oldest insert)
	if c.Contains(id(0, 1)) || !c.Contains(id(0, 2)) {
		t.Fatal("FIFO order not insert-based")
	}
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("empty stats ratio not 0")
	}
	s.Hits, s.Misses = 3, 1
	if s.HitRatio() != 0.75 {
		t.Fatalf("ratio = %g", s.HitRatio())
	}
}

func TestResetStats(t *testing.T) {
	c := New(2, NewLRU())
	c.Put(id(0, 1), nil)
	c.Get(id(0, 1))
	c.ResetStats()
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("reset left %+v", s)
	}
	if c.Len() != 1 {
		t.Fatal("reset dropped contents")
	}
}

func TestPolicyName(t *testing.T) {
	for _, tc := range []struct {
		p    Policy
		want string
	}{
		{NewLRU(), "lru"},
		{NewFIFO(), "fifo"},
		{NewLRUK(2, 0), "lru-k"},
		{NewSLRU(10, 0.2), "slru"},
		{NewURC(), "urc"},
	} {
		if tc.p.Name() != tc.want {
			t.Errorf("Name = %q, want %q", tc.p.Name(), tc.want)
		}
		if New(4, tc.p).PolicyName() != tc.want {
			t.Errorf("cache PolicyName mismatch for %q", tc.want)
		}
	}
}

// Generic conformance: under any policy the cache never exceeds capacity
// and never loses the most recently inserted atom immediately.
func TestPolicyConformance(t *testing.T) {
	policies := []func() Policy{
		func() Policy { return NewLRU() },
		func() Policy { return NewFIFO() },
		func() Policy { return NewLRUK(2, 0) },
		func() Policy { return NewSLRU(4, 0.25) },
		func() Policy { return NewURC() },
	}
	for _, mk := range policies {
		p := mk()
		c := New(4, p)
		for i := 0; i < 100; i++ {
			c.Put(id(i%3, i), i)
			if c.Len() > 4 {
				t.Fatalf("%s: cache over capacity: %d", p.Name(), c.Len())
			}
			if i%7 == 0 {
				c.Get(id(i%3, i))
			}
			if i%10 == 9 {
				c.EndRun()
			}
		}
		if c.Len() == 0 {
			t.Fatalf("%s: cache empty after inserts", p.Name())
		}
	}
}

func TestLRUKPrefersReusedAtoms(t *testing.T) {
	// Atom 1 is referenced repeatedly (≥K times spread out); atoms 2..n are
	// touched once. LRU-K must evict a single-reference atom, not atom 1,
	// even when atom 1's last touch is older.
	p := NewLRUK(2, 0)
	c := New(3, p)
	c.Put(id(0, 1), nil)
	c.Get(id(0, 1))
	c.Get(id(0, 1)) // two references: finite K-distance
	c.Put(id(0, 2), nil)
	c.Put(id(0, 3), nil)
	c.Put(id(0, 4), nil) // must evict 2 or 3 (single-reference), not 1
	if !c.Contains(id(0, 1)) {
		t.Fatal("LRU-K evicted the K-referenced atom")
	}
}

func TestLRUKCorrelatedReferences(t *testing.T) {
	// With a correlated reference period, a rapid burst on atom 2 counts
	// as one reference, so it stays "infinite distance" and evicts before
	// atom 1, which has two well-separated references.
	p := NewLRUK(2, 3)
	c := New(2, p)
	c.Put(id(0, 1), nil)
	c.Put(id(0, 2), nil)
	c.Get(id(0, 2)) // correlated with its insert (within 3 ticks)
	c.Get(id(0, 1))
	c.Get(id(0, 1)) // ticks now beyond the period: real second reference
	c.Put(id(0, 3), nil)
	if !c.Contains(id(0, 1)) {
		t.Fatal("correlated burst outranked genuine reuse")
	}
}

func TestSLRUProtectedSurvivesScan(t *testing.T) {
	// Atom 1 is hot during run 1 and gets promoted; a full scan of cold
	// atoms in run 2 must not evict it.
	p := NewSLRU(4, 0.25) // protected capacity 1
	c := New(4, p)
	c.Put(id(0, 1), nil)
	for i := 0; i < 5; i++ {
		c.Get(id(0, 1))
	}
	c.Put(id(0, 2), nil)
	c.EndRun() // promotes atom 1
	if p.ProtectedLen() != 1 {
		t.Fatalf("protected segment = %d, want 1", p.ProtectedLen())
	}
	for i := 10; i < 20; i++ { // scan: 10 cold atoms through a 4-atom cache
		c.Put(id(0, i), nil)
	}
	if !c.Contains(id(0, 1)) {
		t.Fatal("scan flushed the protected atom")
	}
}

func TestSLRUDemotion(t *testing.T) {
	p := NewSLRU(4, 0.25) // protected capacity 1
	c := New(4, p)
	c.Put(id(0, 1), nil)
	c.Get(id(0, 1))
	c.EndRun() // 1 promoted
	// Run 2: atom 2 is hotter.
	c.Put(id(0, 2), nil)
	for i := 0; i < 5; i++ {
		c.Get(id(0, 2))
	}
	c.EndRun() // 2 promoted, 1 demoted to probationary MRU
	if p.ProtectedLen() != 1 {
		t.Fatalf("protected segment = %d, want 1", p.ProtectedLen())
	}
	// 1 must still be resident (demoted to MRU end, not dropped).
	if !c.Contains(id(0, 1)) {
		t.Fatal("demotion dropped the atom")
	}
}

func TestSLRUZeroProtected(t *testing.T) {
	p := NewSLRU(4, 0)
	c := New(4, p)
	for i := 0; i < 10; i++ {
		c.Put(id(0, i), nil)
		c.EndRun()
	}
	if p.ProtectedLen() != 0 {
		t.Fatal("protected segment grew despite zero fraction")
	}
}

func TestSLRUClampsFraction(t *testing.T) {
	p := NewSLRU(10, 0.9) // clamped to 0.5
	if p.protCap != 5 {
		t.Fatalf("protected capacity = %d, want 5 (clamped)", p.protCap)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SLRU accepted non-positive capacity")
			}
		}()
		NewSLRU(0, 0.1)
	}()
}

func TestURCEvictsLowestUtility(t *testing.T) {
	p := NewURC()
	c := New(3, p)
	c.Put(id(0, 1), nil)
	c.Put(id(0, 2), nil)
	c.Put(id(0, 3), nil)
	p.SetStepMean(0, 1.0)
	p.SetAtomUtility(id(0, 1), 5)
	p.SetAtomUtility(id(0, 2), 1) // coldest within the step
	p.SetAtomUtility(id(0, 3), 9)
	c.Put(id(0, 4), nil) // evicts 2
	if c.Contains(id(0, 2)) {
		t.Fatal("URC kept the lowest-utility atom")
	}
	if !c.Contains(id(0, 1)) || !c.Contains(id(0, 3)) {
		t.Fatal("URC evicted a higher-utility atom")
	}
}

func TestURCStepOrdering(t *testing.T) {
	// Atoms from the step with lower mean throughput evict first even if
	// their per-atom utility is higher.
	p := NewURC()
	c := New(2, p)
	c.Put(id(0, 1), nil)
	c.Put(id(1, 1), nil)
	p.SetStepMean(0, 0.1) // cold step
	p.SetStepMean(1, 5.0) // hot step
	p.SetAtomUtility(id(0, 1), 100)
	p.SetAtomUtility(id(1, 1), 0.5)
	c.Put(id(1, 2), nil) // must evict the cold-step atom
	if c.Contains(id(0, 1)) {
		t.Fatal("URC ignored step-level ordering")
	}
	if !c.Contains(id(1, 1)) {
		t.Fatal("URC evicted hot-step atom")
	}
}

func TestURCUnknownUtilitiesEvictFirst(t *testing.T) {
	p := NewURC()
	c := New(2, p)
	c.Put(id(0, 1), nil)
	c.Put(id(0, 2), nil)
	p.SetStepMean(0, 1)
	p.SetAtomUtility(id(0, 1), 3)
	// atom 2 has no pending workload: defaults to zero utility.
	c.Put(id(0, 3), nil)
	if c.Contains(id(0, 2)) {
		t.Fatal("atom with no pending requests survived eviction")
	}
}

func TestURCMetadataBounded(t *testing.T) {
	p := NewURC()
	c := New(8, p)
	for i := 0; i < 1000; i++ {
		c.Put(id(i%3, i), nil)
		p.SetAtomUtility(id(i%3, i), float64(i))
		p.SetStepMean(i%3, float64(i))
	}
	// Eviction must clean up per-atom metadata: only resident atoms plus
	// the 3 step means remain.
	if got := p.MetadataLen(); got > 8+3 {
		t.Fatalf("URC metadata grew unbounded: %d entries", got)
	}
}

func TestURCDeterministicTieBreak(t *testing.T) {
	run := func() store.AtomID {
		p := NewURC()
		c := New(3, p)
		c.Put(id(0, 1), nil)
		c.Put(id(0, 2), nil)
		c.Put(id(0, 3), nil)
		// All utilities equal: victim must be deterministic.
		c.Put(id(0, 4), nil)
		for _, candidate := range []store.AtomID{id(0, 1), id(0, 2), id(0, 3)} {
			if !c.Contains(candidate) {
				return candidate
			}
		}
		t.Fatal("nothing evicted")
		return store.AtomID{}
	}
	first := run()
	for i := 0; i < 5; i++ {
		if run() != first {
			t.Fatal("URC tie-break not deterministic")
		}
	}
}

func TestPolicyTimeAccumulates(t *testing.T) {
	c := New(4, NewURC())
	for i := 0; i < 100; i++ {
		c.Put(id(0, i), nil)
	}
	if c.Stats().PolicyTime <= 0 {
		t.Fatal("PolicyTime not measured")
	}
}

func BenchmarkLRUPut(b *testing.B)  { benchPolicy(b, NewLRU()) }
func BenchmarkLRUKPut(b *testing.B) { benchPolicy(b, NewLRUK(2, 0)) }
func BenchmarkSLRUPut(b *testing.B) { benchPolicy(b, NewSLRU(256, 0.05)) }
func BenchmarkURCPut(b *testing.B)  { benchPolicy(b, NewURC()) }

func benchPolicy(b *testing.B, p Policy) {
	c := New(256, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(id(i%31, i%4096), nil)
		if i%100 == 99 {
			c.EndRun()
		}
	}
}

func TestFlush(t *testing.T) {
	c := New(4, NewLRU())
	for i := 0; i < 4; i++ {
		c.Put(id(0, i), i)
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("Flush left %d entries", c.Len())
	}
	if c.Stats().Evictions != 4 {
		t.Fatalf("Flush evictions = %d", c.Stats().Evictions)
	}
	// Cache must remain usable.
	c.Put(id(0, 9), nil)
	if !c.Contains(id(0, 9)) {
		t.Fatal("cache broken after Flush")
	}
}

func TestLRUKRetainedHistory(t *testing.T) {
	// An atom that cycles out of the cache and promptly returns must keep
	// its reference history (the retained-information refinement); a
	// freshly inserted cold atom should be evicted in preference to it.
	p := NewLRUK(2, 0)
	c := New(2, p)
	c.Put(id(0, 1), nil)
	c.Get(id(0, 1)) // two refs: finite K-distance
	c.Put(id(0, 2), nil)
	c.Put(id(0, 3), nil) // evicts one of 1, 2 (both resident, 1 is finite → 2 goes)
	if !c.Contains(id(0, 1)) {
		t.Fatal("two-reference atom evicted before single-reference atoms")
	}
	c.Put(id(0, 4), nil) // evicts 3 (short) — 1 still protected
	c.Put(id(0, 1), nil) // 1 returns... wait, 1 is still resident here
	if !c.Contains(id(0, 1)) {
		t.Fatal("hot atom lost")
	}
	// Now force 1 out and bring it back: history must survive eviction.
	p2 := NewLRUK(2, 0)
	c2 := New(1, p2)
	c2.Put(id(0, 7), nil)
	c2.Get(id(0, 7))
	c2.Get(id(0, 7))      // rich history
	c2.Put(id(0, 8), nil) // evicts 7
	c2.Put(id(0, 7), nil) // 7 returns: now has ≥2 refs counting history
	if len(p2.hist[id(0, 7)]) < 2 {
		t.Fatal("reference history not retained across eviction")
	}
}

func TestLRUKNoFreeze(t *testing.T) {
	// Regression: without retained history + resident tracking, atoms that
	// gained K references early freeze in the cache forever while every
	// newcomer thrashes through one revolving slot. Verify that a shift in
	// the hot set eventually displaces the old hot atoms.
	p := NewLRUK(2, 0)
	c := New(4, p)
	// Phase 1: atoms 1..4 become hot (2 refs each).
	for i := 1; i <= 4; i++ {
		c.Put(id(0, i), nil)
		c.Get(id(0, i))
		c.Get(id(0, i))
	}
	// Phase 2: new hot set 11..14, each touched repeatedly over rounds.
	for round := 0; round < 6; round++ {
		for i := 11; i <= 14; i++ {
			if _, ok := c.Get(id(0, i)); !ok {
				c.Put(id(0, i), nil)
			}
		}
	}
	survivors := 0
	for i := 11; i <= 14; i++ {
		if c.Contains(id(0, i)) {
			survivors++
		}
	}
	if survivors < 2 {
		t.Fatalf("new hot set never displaced the old one: %d/4 resident", survivors)
	}
}

func TestURCRecencyTieBreak(t *testing.T) {
	p := NewURC()
	c := New(3, p)
	c.Put(id(0, 1), nil)
	c.Put(id(0, 2), nil)
	c.Put(id(0, 3), nil)
	// No utilities at all: pure recency. Touch 1 so 2 becomes the LRU.
	c.Get(id(0, 1))
	c.Put(id(0, 4), nil)
	if c.Contains(id(0, 2)) {
		t.Fatal("URC did not fall back to recency among zero-utility atoms")
	}
	if !c.Contains(id(0, 1)) {
		t.Fatal("URC evicted a recently used atom despite ties")
	}
}

func TestURCReplaceStepMeans(t *testing.T) {
	p := NewURC()
	p.SetStepMean(1, 5)
	p.SetStepMean(2, 7)
	p.ReplaceStepMeans(map[int]float64{2: 3, 4: 9})
	if _, ok := p.stepMean[1]; ok {
		t.Fatal("stale step mean survived ReplaceStepMeans")
	}
	if p.stepMean[2] != 3 || p.stepMean[4] != 9 {
		t.Fatalf("means not replaced: %v", p.stepMean)
	}
}

func TestTwoQPromotionViaGhost(t *testing.T) {
	p := NewTwoQ(4) // kin=1, kout=2
	c := New(4, p)
	c.Put(id(0, 1), nil)
	// Push 1 out of probation with a stream of cold atoms.
	c.Put(id(0, 2), nil)
	c.Put(id(0, 3), nil)
	c.Put(id(0, 4), nil)
	c.Put(id(0, 5), nil)
	if c.Contains(id(0, 1)) {
		t.Fatal("probation atom survived a scan")
	}
	if p.GhostLen() == 0 {
		t.Fatal("no ghost recorded")
	}
	// Re-reference 1 while its ghost lives: must enter the hot LRU.
	c.Put(id(0, 1), nil)
	if p.HotLen() != 1 {
		t.Fatalf("HotLen = %d, want 1 after ghost promotion", p.HotLen())
	}
	// A subsequent scan must not evict the hot atom.
	for i := 10; i < 20; i++ {
		c.Put(id(0, i), nil)
	}
	if !c.Contains(id(0, 1)) {
		t.Fatal("scan flushed the 2Q hot set")
	}
}

func TestTwoQScanResistance(t *testing.T) {
	// One-shot scans never pollute Am.
	p := NewTwoQ(8)
	c := New(8, p)
	for i := 0; i < 100; i++ {
		c.Put(id(0, i), nil)
	}
	if p.HotLen() != 0 {
		t.Fatalf("scan promoted %d atoms into the hot set", p.HotLen())
	}
}

func TestTwoQGhostBounded(t *testing.T) {
	p := NewTwoQ(4) // kout = 2
	c := New(4, p)
	for i := 0; i < 200; i++ {
		c.Put(id(0, i), nil)
	}
	if p.GhostLen() > 2 {
		t.Fatalf("ghost queue grew to %d, bound is 2", p.GhostLen())
	}
}

func TestTwoQValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("2Q accepted non-positive capacity")
		}
	}()
	NewTwoQ(0)
}

func TestTwoQConformance(t *testing.T) {
	p := NewTwoQ(4)
	c := New(4, p)
	for i := 0; i < 200; i++ {
		c.Put(id(i%3, i%17), i)
		if c.Len() > 4 {
			t.Fatalf("2Q cache over capacity: %d", c.Len())
		}
		if i%5 == 0 {
			c.Get(id(i%3, i%17))
		}
	}
	if p.Name() != "2q" {
		t.Fatal("wrong name")
	}
}

func BenchmarkTwoQPut(b *testing.B) { benchPolicy(b, NewTwoQ(256)) }

func TestIntegrityCorruptionDropsEntry(t *testing.T) {
	c := New(4, NewLRU())
	c.Put(id(0, 1), "payload")

	bad := map[store.AtomID]bool{id(0, 1): true}
	var corrupted, missed []store.AtomID
	c.SetObserver(Observer{
		Corrupt: func(i store.AtomID) { corrupted = append(corrupted, i) },
		Miss:    func(i store.AtomID) { missed = append(missed, i) },
	})
	c.SetIntegrity(func(i store.AtomID) bool { return !bad[i] })

	if _, ok := c.Get(id(0, 1)); ok {
		t.Fatal("corrupted entry served as a hit")
	}
	if c.Contains(id(0, 1)) {
		t.Fatal("corrupted entry still resident")
	}
	st := c.Stats()
	if st.Corruptions != 1 || st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(corrupted) != 1 || len(missed) != 1 {
		t.Fatalf("observer saw %d corruptions, %d misses", len(corrupted), len(missed))
	}

	// The re-read path restores the atom; a clean hit then works and the
	// policy state stayed coherent (eviction bookkeeping not corrupted).
	delete(bad, id(0, 1))
	c.Put(id(0, 1), "fresh")
	if v, ok := c.Get(id(0, 1)); !ok || v != "fresh" {
		t.Fatalf("restored entry: %v, %v", v, ok)
	}

	c.SetIntegrity(nil)
	if _, ok := c.Get(id(0, 1)); !ok {
		t.Fatal("cleared integrity hook still rejecting")
	}
}

// Version is the scheduler's memoization guard: it must advance on every
// residency mutation (insert, evict, corruption drop, flush) and must NOT
// advance on reads or refreshing Puts — an unchanged value proves every
// Contains answer is unchanged.
func TestVersionTracksResidencyMutations(t *testing.T) {
	c := New(2, NewLRU())
	v0 := c.Version()

	c.Put(id(0, 1), "a") // insert
	if c.Version() == v0 {
		t.Fatal("insert did not advance the version")
	}
	v1 := c.Version()

	c.Get(id(0, 1))  // hit
	c.Get(id(0, 9))  // miss
	c.Contains(id(0, 1))
	c.Put(id(0, 1), "a2") // refresh: residency set unchanged
	if c.Version() != v1 {
		t.Fatalf("reads/refresh advanced the version: %d -> %d", v1, c.Version())
	}

	c.Put(id(0, 2), "b")
	v2 := c.Version()
	c.Put(id(0, 3), "c") // full: evicts + inserts
	if c.Version() <= v2 {
		t.Fatal("eviction+insert did not advance the version")
	}
	v3 := c.Version()

	// Corruption drop on hit.
	c.SetIntegrity(func(store.AtomID) bool { return false })
	if _, ok := c.Get(id(0, 3)); ok {
		t.Fatal("corrupt entry served")
	}
	if c.Version() == v3 {
		t.Fatal("corruption drop did not advance the version")
	}
	c.SetIntegrity(nil)
	v4 := c.Version()

	c.Flush()
	if c.Version() == v4 {
		t.Fatal("flush did not advance the version")
	}
	if c.Len() != 0 {
		t.Fatalf("len after flush = %d", c.Len())
	}
}
