package cache

import (
	"container/list"
	"fmt"
	"sort"

	"jaws/internal/store"
)

// SLRU is the paper's Segmented LRU (§V.B): the cache is divided into a
// probationary segment and a small protected segment (5–10 % of capacity).
// Both segments are recency-ordered. At the end of each workload run the
// most frequently accessed atoms are promoted into the protected segment;
// atoms squeezed out of the protected segment re-enter the probationary
// segment at its MRU end. Victims always come from the probationary
// segment, so regions of interest that are queried repeatedly (e.g.
// turbulent structures where inertial particles cluster) survive scans
// that sweep an entire time step once.
type SLRU struct {
	protCap int
	prob    *list.List // front = MRU
	prot    *list.List
	where   map[store.AtomID]*list.Element
	inProt  map[store.AtomID]bool
	counts  map[store.AtomID]int // accesses in the current run
}

// NewSLRU builds an SLRU policy for a cache of the given total capacity,
// reserving protectedFrac of it (clamped to [0,0.5]) for the protected
// segment. The paper allocates 5 %.
func NewSLRU(capacity int, protectedFrac float64) *SLRU {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: slru capacity must be positive, got %d", capacity))
	}
	if protectedFrac < 0 {
		protectedFrac = 0
	}
	if protectedFrac > 0.5 {
		protectedFrac = 0.5
	}
	protCap := int(float64(capacity) * protectedFrac)
	return &SLRU{
		protCap: protCap,
		prob:    list.New(),
		prot:    list.New(),
		where:   make(map[store.AtomID]*list.Element),
		inProt:  make(map[store.AtomID]bool),
		counts:  make(map[store.AtomID]int),
	}
}

// Name implements Policy.
func (p *SLRU) Name() string { return "slru" }

// OnHit implements Policy: refresh recency within the atom's segment and
// count the access for end-of-run promotion.
func (p *SLRU) OnHit(id store.AtomID) {
	p.counts[id]++
	if e, ok := p.where[id]; ok {
		if p.inProt[id] {
			p.prot.MoveToFront(e)
		} else {
			p.prob.MoveToFront(e)
		}
	}
}

// OnInsert implements Policy: new atoms enter the probationary segment.
func (p *SLRU) OnInsert(id store.AtomID) {
	p.counts[id]++
	p.where[id] = p.prob.PushFront(id)
}

// Victim implements Policy: the LRU end of the probationary segment. If
// the probationary segment is empty (protected fraction misconfigured
// large and the workload tiny), fall back to the protected LRU end.
func (p *SLRU) Victim() store.AtomID {
	if e := p.prob.Back(); e != nil {
		return e.Value.(store.AtomID)
	}
	return p.prot.Back().Value.(store.AtomID)
}

// OnEvict implements Policy.
func (p *SLRU) OnEvict(id store.AtomID) {
	e, ok := p.where[id]
	if !ok {
		return
	}
	if p.inProt[id] {
		p.prot.Remove(e)
		delete(p.inProt, id)
	} else {
		p.prob.Remove(e)
	}
	delete(p.where, id)
	delete(p.counts, id)
}

// EndRun implements Policy: promote the most frequently accessed resident
// atoms of the finished run into the protected segment, demoting as
// needed. This is the once-per-run work that keeps SLRU's overhead under
// a millisecond per query in Table I.
func (p *SLRU) EndRun() {
	if p.protCap == 0 {
		p.counts = make(map[store.AtomID]int)
		return
	}
	type kv struct {
		id store.AtomID
		n  int
	}
	ranked := make([]kv, 0, len(p.counts))
	for id, n := range p.counts {
		if _, resident := p.where[id]; resident {
			ranked = append(ranked, kv{id, n})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].id.Key() < ranked[j].id.Key() // deterministic ties
	})
	if len(ranked) > p.protCap {
		ranked = ranked[:p.protCap]
	}
	keep := make(map[store.AtomID]bool, len(ranked))
	for _, r := range ranked {
		keep[r.id] = true
	}
	// Demote protected atoms that fell out of the top set: they re-enter
	// the probationary segment at its MRU end.
	for e := p.prot.Front(); e != nil; {
		next := e.Next()
		id := e.Value.(store.AtomID)
		if !keep[id] {
			p.prot.Remove(e)
			delete(p.inProt, id)
			p.where[id] = p.prob.PushFront(id)
		}
		e = next
	}
	// Promote the winners that are not already protected.
	for _, r := range ranked {
		if p.inProt[r.id] {
			continue
		}
		if e, ok := p.where[r.id]; ok {
			p.prob.Remove(e)
			p.where[r.id] = p.prot.PushFront(r.id)
			p.inProt[r.id] = true
		}
	}
	p.counts = make(map[store.AtomID]int)
}

// ProtectedLen reports the current protected-segment size (for tests).
func (p *SLRU) ProtectedLen() int { return p.prot.Len() }
