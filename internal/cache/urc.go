package cache

import (
	"jaws/internal/store"
)

// URC is the paper's Utility-Ranked Caching (§V.B): eviction order is
// coordinated with the two-level scheduler so that atoms which the
// scheduler will touch farthest in the future leave the cache first.
//
// Concretely: between time steps, atoms from the step with the lower mean
// workload throughput are evicted before atoms from a hotter step; within
// one time step, atoms are evicted in order of increasing workload
// throughput (Eq. 1). The scheduler pushes both quantities into the policy
// after every arrival and every processed batch — that push is the
// "significant maintenance overhead" Table I measures at 7 ms/query,
// against which the 16 % throughput gain is traded.
type URC struct {
	resident map[store.AtomID]int64 // value: last access tick (recency)
	atomUt   map[store.AtomID]float64
	stepMean map[int]float64
	clock    int64
}

// NewURC builds an empty URC policy.
func NewURC() *URC {
	return &URC{
		resident: make(map[store.AtomID]int64),
		atomUt:   make(map[store.AtomID]float64),
		stepMean: make(map[int]float64),
	}
}

// Name implements Policy.
func (p *URC) Name() string { return "urc" }

// OnHit implements Policy: utility ranks first, but recency breaks ties —
// in particular among atoms with no pending workload at all, where the
// scheduler offers no signal and the most stale atom should leave first.
func (p *URC) OnHit(id store.AtomID) {
	p.clock++
	p.resident[id] = p.clock
}

// OnInsert implements Policy.
func (p *URC) OnInsert(id store.AtomID) {
	p.clock++
	p.resident[id] = p.clock
}

// OnEvict implements Policy.
func (p *URC) OnEvict(id store.AtomID) {
	delete(p.resident, id)
	delete(p.atomUt, id)
}

// EndRun implements Policy (no-op; URC updates continuously).
func (p *URC) EndRun() {}

// SetAtomUtility records the workload-throughput metric U_t of a resident
// or soon-resident atom. Atoms with no pending requests should be set to
// zero (they are the farthest-future atoms and evict first).
func (p *URC) SetAtomUtility(id store.AtomID, ut float64) {
	p.atomUt[id] = ut
}

// SetStepMean records the mean workload throughput of a time step, the
// coarse level of the two-level framework.
func (p *URC) SetStepMean(step int, mean float64) {
	p.stepMean[step] = mean
}

// ReplaceStepMeans swaps in the full current per-step means, dropping
// entries for steps that no longer have pending work (their atoms become
// farthest-future and evict first).
func (p *URC) ReplaceStepMeans(means map[int]float64) {
	for step := range p.stepMean {
		if _, ok := means[step]; !ok {
			delete(p.stepMean, step)
		}
	}
	for step, m := range means {
		p.stepMean[step] = m
	}
}

// Victim implements Policy: the resident atom with the lowest
// (step mean U_t, atom U_t, recency) triple.
func (p *URC) Victim() store.AtomID {
	var victim store.AtomID
	first := true
	var vStep, vAtom float64
	var vSeen int64
	for id, seen := range p.resident {
		sm := p.stepMean[id.Step]
		au := p.atomUt[id]
		better := false
		switch {
		case first:
			better = true
		case sm != vStep:
			better = sm < vStep
		case au != vAtom:
			better = au < vAtom
		case seen != vSeen:
			better = seen < vSeen // least recently used among equals
		default:
			// Deterministic tie-break so runs are reproducible.
			better = id.Key() < victim.Key()
		}
		if better {
			victim, vStep, vAtom, vSeen, first = id, sm, au, seen, false
		}
	}
	return victim
}

// MetadataLen reports the number of utility entries tracked (tests assert
// the "metadata is small" claim: bookkeeping is O(resident atoms)).
func (p *URC) MetadataLen() int { return len(p.atomUt) + len(p.stepMean) }
