package jobgraph

import (
	"math/rand"
	"strings"
	"testing"
)

// regionGraph builds a Graph over jobs described as region-label slices:
// queries share data iff their labels match (Fig. 2 convention).
func regionGraph(t *testing.T, jobs map[int64][]int) *Graph {
	t.Helper()
	g := New(func(a, b Ref) bool {
		return jobs[a.Job][a.Seq] == jobs[b.Job][b.Seq]
	})
	// Deterministic insertion order: ascending job ID.
	var ids []int64
	for id := range jobs {
		ids = append(ids, id)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, id := range ids {
		if err := g.AddJob(id, len(jobs[id])); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddJobValidation(t *testing.T) {
	g := New(func(a, b Ref) bool { return false })
	if err := g.AddJob(1, 0); err == nil {
		t.Fatal("empty job accepted")
	}
	if err := g.AddJob(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddJob(1, 3); err == nil {
		t.Fatal("duplicate job accepted")
	}
	if g.Jobs() != 1 {
		t.Fatalf("Jobs = %d", g.Jobs())
	}
}

func TestSingleJobLifecycle(t *testing.T) {
	g := regionGraph(t, map[int64][]int{1: {1, 2, 3}})
	// First query queued, rest waiting.
	if got := g.State(Ref{Job: 1, Seq: 0}); got != Queue {
		t.Fatalf("q0 state = %v, want QUEUE", got)
	}
	if got := g.State(Ref{Job: 1, Seq: 1}); got != Wait {
		t.Fatalf("q1 state = %v, want WAIT", got)
	}
	g.MarkDone(Ref{Job: 1, Seq: 0})
	if got := g.State(Ref{Job: 1, Seq: 1}); got != Queue {
		t.Fatalf("after done q1 state = %v, want QUEUE", got)
	}
	g.MarkDone(Ref{Job: 1, Seq: 1})
	g.MarkDone(Ref{Job: 1, Seq: 2})
	if !g.Finished() {
		t.Fatal("graph not finished after all queries done")
	}
}

func TestMarkDonePanicsOnBadState(t *testing.T) {
	g := regionGraph(t, map[int64][]int{1: {1, 2}})
	defer func() {
		if recover() == nil {
			t.Fatal("MarkDone on WAIT query did not panic")
		}
	}()
	g.MarkDone(Ref{Job: 1, Seq: 1})
}

func TestGatingCoSchedules(t *testing.T) {
	// j1 = [R1 R2 R4], j2 = [R2 R4]: edges at R2 and R4. j2's first query
	// (R2) must wait for j1's R2 to become ready.
	g := regionGraph(t, map[int64][]int{1: {1, 2, 4}, 2: {2, 4}})
	if g.EdgesAdmitted() != 2 {
		t.Fatalf("admitted %d edges, want 2", g.EdgesAdmitted())
	}
	// j2/q0 gates on j1/q1, which is WAIT → j2/q0 held at READY.
	if got := g.State(Ref{Job: 2, Seq: 0}); got != Ready {
		t.Fatalf("j2q0 = %v, want READY (gated)", got)
	}
	g.MarkDone(Ref{Job: 1, Seq: 0})
	// Now j1/q1 is READY; gating satisfied both ways → both QUEUE.
	if got := g.State(Ref{Job: 1, Seq: 1}); got != Queue {
		t.Fatalf("j1q1 = %v, want QUEUE", got)
	}
	if got := g.State(Ref{Job: 2, Seq: 0}); got != Queue {
		t.Fatalf("j2q0 = %v, want QUEUE (co-scheduled)", got)
	}
	// Partners reported symmetrically.
	p := g.Partners(Ref{Job: 1, Seq: 1})
	if len(p) != 1 || p[0] != (Ref{Job: 2, Seq: 0}) {
		t.Fatalf("Partners = %v", p)
	}
}

func TestGatingNumbersFigure3(t *testing.T) {
	// Two identical jobs [R1 R2 R3 R4] with sharing at R1, R2, R3, R4:
	// gating numbers must increase 1,2,3,4 along the job (Fig. 3 shows
	// the last aligned query carrying the highest gating number).
	g := regionGraph(t, map[int64][]int{1: {1, 2, 3, 4}, 2: {1, 2, 3, 4}})
	for s := 0; s < 4; s++ {
		if got := g.GatingNumber(Ref{Job: 1, Seq: s}); got != s+1 {
			t.Fatalf("G(j1,q%d) = %d, want %d", s, got, s+1)
		}
		if g.GatingNumber(Ref{Job: 1, Seq: s}) != g.GatingNumber(Ref{Job: 2, Seq: s}) {
			t.Fatal("co-scheduled queries disagree on gating number")
		}
	}
	if g.GatingNumber(Ref{Job: 99, Seq: 0}) != 0 {
		t.Fatal("unknown query has nonzero gating number")
	}
}

func TestTransitivityBuildsClique(t *testing.T) {
	// Three jobs all touching R7 in their only query: admitting 1↔2 then
	// 3↔{1,2} must produce one 3-member component (transitive
	// co-scheduling, line 2 of Fig. 4).
	g := regionGraph(t, map[int64][]int{1: {7}, 2: {7}, 3: {7}})
	p := g.Partners(Ref{Job: 3, Seq: 0})
	if len(p) != 2 {
		t.Fatalf("transitive partners = %v, want 2", p)
	}
}

func TestRejectSecondEdgeSameJobPair(t *testing.T) {
	// j1 = [R1 R1], j2 = [R1]: both j1 queries share with j2's only query,
	// but each query may hold at most one gating edge per partner job —
	// the DP already guarantees this, so only one pair is proposed and at
	// most one edge admitted.
	g := regionGraph(t, map[int64][]int{1: {1, 1}, 2: {1}})
	if g.EdgesAdmitted() != 1 {
		t.Fatalf("admitted %d edges, want 1", g.EdgesAdmitted())
	}
}

func TestRejectCrossing(t *testing.T) {
	// j1 = [R1 R2], j2 = [R2 R1], j3 designed so a crossing could arise
	// transitively: j3 = [R1] shares with j1/q0 and j2/q1. After j1↔j2
	// align (one edge max, say R1↔R1? those are at (0) and (1)):
	// Align j1=[1,2], j2=[2,1]: matches either (0,1) or (1,0) — one edge.
	// Then j3=[1] links to both R1 queries transitively; feasibility must
	// hold (no crossing possible with a 1-query job).
	g := regionGraph(t, map[int64][]int{1: {1, 2}, 2: {2, 1}, 3: {1}})
	// The invariant to check: every component has at most one query per
	// job and pairs are non-crossing — exercised via no panic and by
	// state-machine drain below.
	drainAll(t, g, 0)
}

func TestComponentOnePerJob(t *testing.T) {
	// A component may never hold two queries of the same job. j1 = [R5 R5]
	// and j2 = [R5]: transitivity would pull both j1 queries together via
	// j2's query — must be rejected.
	g := regionGraph(t, map[int64][]int{1: {5, 5}, 2: {5}})
	q0, q1 := Ref{Job: 1, Seq: 0}, Ref{Job: 1, Seq: 1}
	for _, p := range g.Partners(q0) {
		if p == q1 {
			t.Fatal("component contains two queries of one job")
		}
	}
	drainAll(t, g, 0)
}

// drainAll repeatedly executes schedulable queries (in a rotation chosen
// by seed) until the graph finishes, failing the test on deadlock.
func drainAll(t *testing.T, g *Graph, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for rounds := 0; !g.Finished(); rounds++ {
		ready := g.Schedulable()
		if len(ready) == 0 {
			t.Fatalf("deadlock: no schedulable queries but graph unfinished")
		}
		// Complete a random subset (at least one) to exercise interleaving.
		k := rng.Intn(len(ready)) + 1
		rng.Shuffle(len(ready), func(i, j int) { ready[i], ready[j] = ready[j], ready[i] })
		for _, q := range ready[:k] {
			g.MarkDone(q)
		}
		if rounds > 100000 {
			t.Fatal("drain did not terminate")
		}
	}
}

func TestScheduleCompletesFigure2(t *testing.T) {
	// Figure 2's three jobs: j1 = [R1 R2 R3 R4], j2 = [R3 R4], j3 = [R1 R3 R4].
	g := regionGraph(t, map[int64][]int{
		1: {1, 2, 3, 4},
		2: {3, 4},
		3: {1, 3, 4},
	})
	if g.EdgesAdmitted() == 0 {
		t.Fatal("no gating edges admitted for heavily sharing jobs")
	}
	drainAll(t, g, 1)
}

// Property: no combination of random jobs and random sharing can deadlock
// the gated schedule. This is the safety property the admission checks of
// Fig. 4 (gating numbers + precedence consistency) exist to guarantee.
func TestNoDeadlockProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		nJobs := rng.Intn(5) + 2
		jobs := make(map[int64][]int, nJobs)
		for j := 0; j < nJobs; j++ {
			n := rng.Intn(8) + 1
			regions := make([]int, n)
			for i := range regions {
				regions[i] = rng.Intn(5)
			}
			jobs[int64(j+1)] = regions
		}
		g := regionGraph(t, jobs)
		drainAll(t, g, int64(trial))
	}
}

// Property: gating numbers are strictly increasing along each job's gated
// queries (the invariant that guarantees deadlock freedom).
func TestGatingLevelsMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		nJobs := rng.Intn(5) + 2
		jobs := make(map[int64][]int, nJobs)
		for j := 0; j < nJobs; j++ {
			n := rng.Intn(10) + 1
			regions := make([]int, n)
			for i := range regions {
				regions[i] = rng.Intn(6)
			}
			jobs[int64(j+1)] = regions
		}
		g := regionGraph(t, jobs)
		for id, regions := range jobs {
			prev := 0
			for s := range regions {
				q := Ref{Job: id, Seq: s}
				if g.compOf(q) == nil {
					continue
				}
				lvl := g.GatingNumber(q)
				if lvl <= prev {
					t.Fatalf("trial %d: job %d gating levels not strictly increasing (%d then %d)",
						trial, id, prev, lvl)
				}
				prev = lvl
			}
		}
	}
}

func TestIncrementalAddJobGatesNewArrival(t *testing.T) {
	// A job arriving after execution began can still pick up gating edges
	// to the not-yet-executed tail of a running job.
	jobs := map[int64][]int{1: {1, 2, 3}}
	g := New(func(a, b Ref) bool { return jobs[a.Job][a.Seq] == jobs[b.Job][b.Seq] })
	if err := g.AddJob(1, 3); err != nil {
		t.Fatal(err)
	}
	g.MarkDone(Ref{Job: 1, Seq: 0})
	jobs[2] = []int{2, 3}
	if err := g.AddJob(2, 2); err != nil {
		t.Fatal(err)
	}
	if g.EdgesAdmitted() == 0 {
		t.Fatal("late-arriving job gained no gating edges")
	}
	drainAll(t, g, 3)
}

func TestPrune(t *testing.T) {
	g := regionGraph(t, map[int64][]int{1: {1, 2}, 2: {1, 2}})
	drainAll(t, g, 5)
	g.Prune()
	if g.Jobs() != 0 {
		t.Fatalf("prune left %d jobs", g.Jobs())
	}
	// Graph remains usable after pruning.
	if err := g.AddJob(10, 2); err != nil {
		t.Fatal(err)
	}
	if g.State(Ref{Job: 10, Seq: 0}) != Queue {
		t.Fatal("graph unusable after prune")
	}
}

func TestPruneKeepsLiveComponents(t *testing.T) {
	// j1 finishes but shares a component with j2's still-live query:
	// j1 must be kept until the partner completes.
	g := regionGraph(t, map[int64][]int{1: {7}, 2: {1, 7}})
	// Finish j1 and j2's first query; j2's R7 query now QUEUEs.
	g.MarkDone(Ref{Job: 2, Seq: 0})
	g.MarkDone(Ref{Job: 1, Seq: 0})
	g.Prune()
	if g.Jobs() != 2 {
		t.Fatalf("prune dropped a job with a live gating partner: %d jobs", g.Jobs())
	}
	g.MarkDone(Ref{Job: 2, Seq: 1})
	g.Prune()
	if g.Jobs() != 0 {
		t.Fatalf("prune left %d jobs after completion", g.Jobs())
	}
}

func TestSchedulableOrderDeterministic(t *testing.T) {
	g := regionGraph(t, map[int64][]int{1: {1}, 2: {2}, 3: {3}})
	a := g.Schedulable()
	b := g.Schedulable()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("Schedulable sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Schedulable order unstable")
		}
	}
}

func TestStateStringAndRefString(t *testing.T) {
	for _, s := range []State{Wait, Ready, Queue, Done, State(42)} {
		if s.String() == "" {
			t.Fatal("empty state string")
		}
	}
	if (Ref{Job: 1, Seq: 2}).String() == "" {
		t.Fatal("empty ref string")
	}
}

func BenchmarkAddJob50Jobs(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	regions := make(map[int64][]int)
	for j := int64(1); j <= 50; j++ {
		n := rng.Intn(20) + 5
		r := make([]int, n)
		for i := range r {
			r[i] = rng.Intn(30)
		}
		regions[j] = r
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(func(a, b Ref) bool { return regions[a.Job][a.Seq] == regions[b.Job][b.Seq] })
		for j := int64(1); j <= 50; j++ {
			g.AddJob(j, len(regions[j]))
		}
	}
}

func TestArrivalMergeAblation(t *testing.T) {
	// Both merge orders must produce valid, deadlock-free graphs; the
	// greedy order should never admit fewer edges than arrival order on a
	// workload engineered so greedy wins (a late pair with a large
	// alignment that arrival-order merging fragments).
	jobs := map[int64][]int{
		1: {1, 9, 9, 9}, // small overlap with 3
		2: {8, 8, 8, 8}, // no overlap
		3: {1, 2, 3, 4}, // full overlap with 4
		4: {1, 2, 3, 4}, // full overlap with 3
	}
	shares := func(a, b Ref) bool { return jobs[a.Job][a.Seq] == jobs[b.Job][b.Seq] }

	build := func(mk func(func(a, b Ref) bool) *Graph) *Graph {
		g := mk(shares)
		for id := int64(1); id <= 4; id++ {
			if err := g.AddJob(id, len(jobs[id])); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	greedy := build(New)
	arrival := build(NewArrivalMerge)
	if greedy.EdgesAdmitted() < arrival.EdgesAdmitted() {
		t.Fatalf("greedy merge admitted fewer edges (%d) than arrival order (%d)",
			greedy.EdgesAdmitted(), arrival.EdgesAdmitted())
	}
	drainAll(t, greedy, 1)
	drainAll(t, arrival, 2)
}

func TestDotRendering(t *testing.T) {
	g := regionGraph(t, map[int64][]int{1: {1, 2, 4}, 2: {2, 4}})
	g.MarkDone(Ref{Job: 1, Seq: 0})
	dot := g.Dot()
	for _, want := range []string{
		"graph jaws",
		"cluster_j1", "cluster_j2",
		"q1_0 -- q1_1",  // precedence
		"style=dashed",  // gating
		"DONE", "QUEUE", // states rendered
		"G=1", // gating numbers rendered
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Each gating pair appears exactly once.
	if strings.Count(dot, "q1_1 -- q2_0") != 1 {
		t.Fatalf("gating edge duplicated:\n%s", dot)
	}
}
