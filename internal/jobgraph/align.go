// Package jobgraph implements JAWS's job-aware gated execution (§IV): a
// precedence graph over the queries of ordered jobs, augmented with gating
// edges that synchronize the execution of queries from different jobs so
// that queries accessing the same data are co-scheduled and their I/O is
// shared.
//
// The pipeline has three phases, as in the paper:
//
//  1. a Needleman–Wunsch dynamic program finds, for every pair of jobs,
//     the maximal non-crossing alignment of queries that exhibit data
//     sharing (each alignment is a candidate gating edge);
//  2. gating numbers — the minimum number of gating edges the scheduler
//     must evaluate before a query can be scheduled — are computed by a
//     pass over the jobs in execution order;
//  3. a greedy merge admits pairwise edges into the global graph,
//     rejecting edges that would deadlock the schedule or violate
//     precedence constraints (Fig. 4).
package jobgraph

// Pair is one aligned query pair from the dynamic program: query SeqA of
// job A is co-scheduled with query SeqB of job B.
type Pair struct {
	SeqA, SeqB int
}

// Align runs the Needleman–Wunsch global alignment of §IV.B between two
// jobs of lenA and lenB queries. share(i, j) reports whether query i of
// job A and query j of job B exhibit data sharing (score 1); skipping a
// query costs nothing (gap penalty 0). It returns the aligned sharing
// pairs in increasing sequence order. By construction the pairs are
// non-crossing and each query appears in at most one pair — exactly the
// feasibility conditions for gating edges between one pair of jobs.
func Align(lenA, lenB int, share func(i, j int) bool) []Pair {
	if lenA == 0 || lenB == 0 {
		return nil
	}
	// m[i][j] = best score aligning the first i queries of A with the
	// first j of B. Computed bottom-up as in the paper:
	// m[i][j] = max(m[i-1][j-1] + s(i,j), m[i][j-1], m[i-1][j]).
	m := make([][]int32, lenA+1)
	for i := range m {
		m[i] = make([]int32, lenB+1)
	}
	for i := 1; i <= lenA; i++ {
		for j := 1; j <= lenB; j++ {
			best := m[i-1][j-1]
			if share(i-1, j-1) {
				best++
			}
			if m[i-1][j] > best {
				best = m[i-1][j]
			}
			if m[i][j-1] > best {
				best = m[i][j-1]
			}
			m[i][j] = best
		}
	}
	// Traceback, preferring matched diagonals so every unit of score
	// becomes a gating edge.
	var rev []Pair
	i, j := lenA, lenB
	for i > 0 && j > 0 {
		s := int32(0)
		if share(i-1, j-1) {
			s = 1
		}
		switch {
		case s == 1 && m[i][j] == m[i-1][j-1]+1:
			rev = append(rev, Pair{SeqA: i - 1, SeqB: j - 1})
			i--
			j--
		case m[i][j] == m[i-1][j]:
			i--
		case m[i][j] == m[i][j-1]:
			j--
		default: // unmatched diagonal (s == 0, equal scores)
			i--
			j--
		}
	}
	// Reverse into increasing order.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}
