// Package jobgraph implements JAWS's job-aware gated execution (§IV): a
// precedence graph over the queries of ordered jobs, augmented with gating
// edges that synchronize the execution of queries from different jobs so
// that queries accessing the same data are co-scheduled and their I/O is
// shared.
//
// The pipeline has three phases, as in the paper:
//
//  1. a Needleman–Wunsch dynamic program finds, for every pair of jobs,
//     the maximal non-crossing alignment of queries that exhibit data
//     sharing (each alignment is a candidate gating edge);
//  2. gating numbers — the minimum number of gating edges the scheduler
//     must evaluate before a query can be scheduled — are computed by a
//     pass over the jobs in execution order;
//  3. a greedy merge admits pairwise edges into the global graph,
//     rejecting edges that would deadlock the schedule or violate
//     precedence constraints (Fig. 4).
package jobgraph

// Pair is one aligned query pair from the dynamic program: query SeqA of
// job A is co-scheduled with query SeqB of job B.
type Pair struct {
	SeqA, SeqB int
}

// Aligner runs the Needleman–Wunsch global alignment of §IV.B
// incrementally, one row (one query of job A) at a time, against a fixed
// job B. Because each new row depends only on the previous one, extending
// the alignment with a further query never recomputes earlier rows — this
// is the append-row update the incremental merge path uses, and it lets
// the graph admit a job against the already-admitted run without
// re-running any pairwise DP from scratch. The DP matrix and the share
// bits are kept in flat reusable arenas, so repeated alignments allocate
// only for the returned pairs.
//
// The zero Aligner is ready for use: call Begin, then AppendRow for each
// query of job A in sequence order, then Pairs.
type Aligner struct {
	lenB int
	rows int     // rows appended so far (queries of job A)
	m    []int32 // (rows+1)×(lenB+1) score matrix, row-major, borders included
	sh   []bool  // rows×lenB share bits, recorded during the forward pass
}

// Begin starts a fresh alignment against a job of lenB queries, reusing
// the internal arenas.
func (al *Aligner) Begin(lenB int) {
	al.lenB = lenB
	al.rows = 0
	need := lenB + 1
	if cap(al.m) < need {
		al.m = make([]int32, need)
	}
	al.m = al.m[:need]
	for j := range al.m {
		al.m[j] = 0
	}
	al.sh = al.sh[:0]
}

// AppendRow extends the alignment with the next query of job A.
// share(j) reports whether that query and query j of job B exhibit data
// sharing (score 1); skipping a query costs nothing (gap penalty 0), as
// in the paper. The share answers are recorded so the traceback never
// re-asks.
func (al *Aligner) AppendRow(share func(j int) bool) {
	i := al.rows + 1
	w := al.lenB + 1
	need := (i + 1) * w
	for len(al.m) < need {
		al.m = append(al.m, 0)
	}
	prev := al.m[(i-1)*w : i*w]
	row := al.m[i*w : (i+1)*w]
	row[0] = 0
	for j := 1; j <= al.lenB; j++ {
		s := share(j - 1)
		al.sh = append(al.sh, s)
		best := prev[j-1]
		if s {
			best++
		}
		if prev[j] > best {
			best = prev[j]
		}
		if row[j-1] > best {
			best = row[j-1]
		}
		row[j] = best
	}
	al.rows = i
}

// Pairs runs the traceback over the accumulated rows and returns the
// aligned sharing pairs in increasing sequence order. By construction the
// pairs are non-crossing and each query appears in at most one pair —
// exactly the feasibility conditions for gating edges between one pair of
// jobs. The returned slice is freshly allocated (callers retain it).
func (al *Aligner) Pairs() []Pair {
	if al.rows == 0 || al.lenB == 0 {
		return nil
	}
	w := al.lenB + 1
	// Traceback, preferring matched diagonals so every unit of score
	// becomes a gating edge.
	var rev []Pair
	i, j := al.rows, al.lenB
	for i > 0 && j > 0 {
		s := int32(0)
		if al.sh[(i-1)*al.lenB+(j-1)] {
			s = 1
		}
		switch {
		case s == 1 && al.m[i*w+j] == al.m[(i-1)*w+(j-1)]+1:
			rev = append(rev, Pair{SeqA: i - 1, SeqB: j - 1})
			i--
			j--
		case al.m[i*w+j] == al.m[(i-1)*w+j]:
			i--
		case al.m[i*w+j] == al.m[i*w+(j-1)]:
			j--
		default: // unmatched diagonal (s == 0, equal scores)
			i--
			j--
		}
	}
	out := make([]Pair, len(rev))
	for k, p := range rev {
		out[len(rev)-1-k] = p
	}
	return out
}

// Align runs the full Needleman–Wunsch alignment between two jobs of lenA
// and lenB queries in one call. share(i, j) reports whether query i of
// job A and query j of job B exhibit data sharing. It is the batch
// convenience over Aligner's append-row interface and computes the
// identical alignment.
func Align(lenA, lenB int, share func(i, j int) bool) []Pair {
	if lenA == 0 || lenB == 0 {
		return nil
	}
	var al Aligner
	al.Begin(lenB)
	for i := 0; i < lenA; i++ {
		al.AppendRow(func(j int) bool { return share(i, j) })
	}
	return al.Pairs()
}
