package jobgraph

import (
	"fmt"
	"sort"
)

// Ref identifies a query vertex in the precedence graph: query Seq
// (0-based) of job Job.
type Ref struct {
	Job int64
	Seq int
}

// String renders the reference.
func (r Ref) String() string { return fmt.Sprintf("q(%d,%d)", r.Job, r.Seq) }

// State is the scheduling state of a query vertex (§IV.B).
type State int

const (
	// Wait: precedence constraints unsatisfied (predecessor not done).
	Wait State = iota
	// Ready: only gating constraints unsatisfied.
	Ready
	// Queue: all constraints satisfied; awaiting execution.
	Queue
	// Done: completed execution.
	Done
)

// String names the state.
func (s State) String() string {
	switch s {
	case Wait:
		return "WAIT"
	case Ready:
		return "READY"
	case Queue:
		return "QUEUE"
	case Done:
		return "DONE"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// component is a set of queries connected by gating edges; all members are
// co-scheduled. level is the gating number G: the number of gating edges
// (synchronization points) that must be evaluated before the component can
// be scheduled.
type component struct {
	members []Ref
	level   int
}

// Graph is the precedence graph with gating edges for a set of ordered
// jobs. It is not safe for concurrent use; the scheduler owns it.
type Graph struct {
	shares  func(a, b Ref) bool
	jobLen  map[int64]int
	jobSeq  []int64 // job registration order, for deterministic iteration
	state   map[Ref]State
	comp    map[Ref]*component
	gated   map[int64][]Ref // per job: gated queries in seq order
	dpCache map[[2]int64][]Pair

	// mergeByArrival disables the paper's greedy largest-alignment-first
	// merge in favour of plain registration order (ablation).
	mergeByArrival bool

	// stats
	admitted, rejected int

	// obs, when set, is called with the outcome of every gating-edge
	// admission attempt (tracing; the graph carries no virtual clock, so
	// the observer stamps events itself).
	obs func(admitted bool, u, v Ref)
}

// New creates an empty graph. shares reports whether two queries (from
// different jobs) access at least one common atom — A(a) ∩ A(b) ≠ ∅.
func New(shares func(a, b Ref) bool) *Graph {
	return newGraph(shares, false)
}

// NewArrivalMerge creates a graph whose merge phase admits partner jobs in
// registration order instead of the paper's greedy largest-alignment-first
// order — the merge-order ablation of DESIGN.md §5.
func NewArrivalMerge(shares func(a, b Ref) bool) *Graph {
	return newGraph(shares, true)
}

func newGraph(shares func(a, b Ref) bool, byArrival bool) *Graph {
	g := &Graph{
		shares:  shares,
		jobLen:  make(map[int64]int),
		state:   make(map[Ref]State),
		comp:    make(map[Ref]*component),
		gated:   make(map[int64][]Ref),
		dpCache: make(map[[2]int64][]Pair),
	}
	g.mergeByArrival = byArrival
	return g
}

// SetObserver registers fn to be notified of every gating-edge admission
// decision (admitted or refused) between queries u and v. nil disables.
func (g *Graph) SetObserver(fn func(admitted bool, u, v Ref)) { g.obs = fn }

// Jobs returns the number of registered jobs.
func (g *Graph) Jobs() int { return len(g.jobLen) }

// EdgesAdmitted reports how many gating links were admitted (a component
// of k members counts as k-1 links).
func (g *Graph) EdgesAdmitted() int { return g.admitted }

// EdgesRejected reports how many candidate links the feasibility checks
// refused.
func (g *Graph) EdgesRejected() int { return g.rejected }

// AddJob registers an ordered job of n queries, aligns it against every
// previously registered job with the Needleman–Wunsch dynamic program, and
// greedily merges the resulting gating edges into the graph (most-sharing
// partner jobs first). This is the incremental path of §IV.B: "when a new
// job arrives, it can be added to the existing graph incrementally".
func (g *Graph) AddJob(id int64, n int) error {
	if _, dup := g.jobLen[id]; dup {
		return fmt.Errorf("jobgraph: job %d already registered", id)
	}
	if n <= 0 {
		return fmt.Errorf("jobgraph: job %d has no queries", id)
	}
	g.jobLen[id] = n
	g.jobSeq = append(g.jobSeq, id)
	g.state[Ref{Job: id, Seq: 0}] = Ready
	for s := 1; s < n; s++ {
		g.state[Ref{Job: id, Seq: s}] = Wait
	}
	g.mergeJob(id)
	g.propagate()
	return nil
}

// dpPairs returns (computing and caching) the dynamic-program alignment
// between jobs a and b, expressed as pairs (seq in a, seq in b).
func (g *Graph) dpPairs(a, b int64) []Pair {
	key := [2]int64{a, b}
	if a > b {
		key = [2]int64{b, a}
	}
	if cached, ok := g.dpCache[key]; ok {
		if key[0] == a {
			return cached
		}
		// Cached with swapped roles: flip.
		flipped := make([]Pair, len(cached))
		for i, p := range cached {
			flipped[i] = Pair{SeqA: p.SeqB, SeqB: p.SeqA}
		}
		return flipped
	}
	lo, hi := key[0], key[1]
	pairs := Align(g.jobLen[lo], g.jobLen[hi], func(i, j int) bool {
		return g.shares(Ref{Job: lo, Seq: i}, Ref{Job: hi, Seq: j})
	})
	g.dpCache[key] = pairs
	if lo == a {
		return pairs
	}
	flipped := make([]Pair, len(pairs))
	for i, p := range pairs {
		flipped[i] = Pair{SeqA: p.SeqB, SeqB: p.SeqA}
	}
	return flipped
}

// mergeJob admits gating edges between the new job and every previously
// registered job, taking partner jobs in decreasing order of alignment
// size (the greedy merge of §IV.B) and admitting each job's edges in
// precedence order.
func (g *Graph) mergeJob(newJob int64) {
	type cand struct {
		partner int64
		pairs   []Pair // SeqA = new job, SeqB = partner
	}
	var cands []cand
	for _, other := range g.jobSeq {
		if other == newJob {
			continue
		}
		if pairs := g.dpPairs(newJob, other); len(pairs) > 0 {
			cands = append(cands, cand{partner: other, pairs: pairs})
		}
	}
	if !g.mergeByArrival {
		sort.SliceStable(cands, func(i, j int) bool {
			if len(cands[i].pairs) != len(cands[j].pairs) {
				return len(cands[i].pairs) > len(cands[j].pairs)
			}
			return cands[i].partner < cands[j].partner
		})
	}
	for _, c := range cands {
		for _, p := range c.pairs {
			g.admitEdge(Ref{Job: newJob, Seq: p.SeqA}, Ref{Job: c.partner, Seq: p.SeqB})
		}
	}
}

// levelBefore returns 1 + the highest gating level among gated queries of
// job j strictly before seq — the minimum level a new gating edge at seq
// could take (the MaxGatNum computation of Fig. 4).
func (g *Graph) levelBefore(j int64, seq int) int {
	max := 0
	for _, q := range g.gated[j] {
		if q.Seq >= seq {
			break
		}
		if lvl := g.comp[q].level; lvl >= max {
			max = lvl
		}
	}
	return max + 1
}

// levelAfterBound returns the lowest gating level among gated queries of
// job j strictly after seq, or -1 if none; a component containing (j, seq)
// must sit strictly below this level.
func (g *Graph) levelAfterBound(j int64, seq int) int {
	for _, q := range g.gated[j] {
		if q.Seq > seq {
			return g.comp[q].level
		}
	}
	return -1
}

// admitEdge attempts to admit a gating edge between u (a query of the job
// being merged) and v (a query of an already-merged job), applying the
// feasibility checks of Fig. 4:
//
//   - transitivity: u joins v's whole component (co-scheduling is
//     transitive), so the checks run against every member;
//   - one gating edge per query per job pair, and no crossing edges
//     between any job pair (precedence consistency, lines 10–13);
//   - no scheduling deadlock: gating levels must remain strictly
//     increasing along every job (the gating-number check of line 9).
//
// It reports whether the edge was admitted.
func (g *Graph) admitEdge(u, v Ref) bool {
	cu, cv := g.comp[u], g.comp[v]
	if cu != nil && cu == cv {
		return true // already co-scheduled
	}
	// Gather the would-be combined membership.
	membersOf := func(r Ref, c *component) []Ref {
		if c != nil {
			return c.members
		}
		return []Ref{r}
	}
	mu, mv := membersOf(u, cu), membersOf(v, cv)

	// A component may contain at most one query per job: co-scheduling two
	// ordered queries of the same job is an immediate deadlock.
	jobs := make(map[int64]int, len(mu)+len(mv))
	for _, m := range mu {
		jobs[m.Job] = m.Seq
	}
	for _, m := range mv {
		if _, clash := jobs[m.Job]; clash {
			return g.rejectEdge(u, v)
		}
		jobs[m.Job] = m.Seq
	}

	// Crossing check: for every pair of jobs now linked through the
	// combined component, the set of co-scheduling pairs across all
	// components must remain monotone (non-crossing). It suffices to check
	// each new cross-job pair (a from mu, b from mv) against existing
	// components containing both jobs.
	for _, a := range mu {
		for _, b := range mv {
			if g.wouldCross(a, b) {
				return g.rejectEdge(u, v)
			}
		}
	}

	// Level feasibility (gating numbers). Every member imposes a lower
	// bound (strictly above all gated predecessors in its job) and an
	// upper bound (strictly below all gated successors).
	lower := 0
	upper := 1 << 30
	all := make([]Ref, 0, len(mu)+len(mv))
	all = append(all, mu...)
	all = append(all, mv...)
	for _, m := range all {
		if lb := g.levelBefore(m.Job, m.Seq); lb > lower {
			lower = lb
		}
		if ub := g.levelAfterBound(m.Job, m.Seq); ub >= 0 && ub < upper {
			upper = ub
		}
	}
	level := lower
	// Existing components have committed levels; they cannot move (their
	// jobs' later edges were admitted against them).
	switch {
	case cu != nil && cv != nil:
		if cu.level != cv.level {
			return g.rejectEdge(u, v)
		}
		level = cu.level
	case cu != nil:
		if cu.level < lower {
			return g.rejectEdge(u, v)
		}
		level = cu.level
	case cv != nil:
		if cv.level < lower {
			return g.rejectEdge(u, v)
		}
		level = cv.level
	}
	if level >= upper {
		return g.rejectEdge(u, v)
	}

	// Admit: union into one component at the agreed level.
	merged := &component{members: all, level: level}
	sort.Slice(merged.members, func(i, j int) bool {
		if merged.members[i].Job != merged.members[j].Job {
			return merged.members[i].Job < merged.members[j].Job
		}
		return merged.members[i].Seq < merged.members[j].Seq
	})
	for _, m := range merged.members {
		if g.comp[m] == nil {
			g.insertGated(m)
		}
		g.comp[m] = merged
	}
	g.admitted++
	if g.obs != nil {
		g.obs(true, u, v)
	}
	return true
}

// rejectEdge counts and reports one refused gating edge.
func (g *Graph) rejectEdge(u, v Ref) bool {
	g.rejected++
	if g.obs != nil {
		g.obs(false, u, v)
	}
	return false
}

// wouldCross reports whether co-scheduling a with b would cross an
// existing co-scheduling pair between their jobs, or duplicate an edge on
// either query for that job pair.
func (g *Graph) wouldCross(a, b Ref) bool {
	if a.Job == b.Job {
		return true
	}
	// Scan gated queries of job a; those whose component also holds a
	// query of job b define the existing pairs.
	for _, qa := range g.gated[a.Job] {
		c := g.comp[qa]
		for _, m := range c.members {
			if m.Job != b.Job {
				continue
			}
			// Existing pair (qa.Seq, m.Seq) vs candidate (a.Seq, b.Seq).
			if qa.Seq == a.Seq || m.Seq == b.Seq {
				return true // second edge on the same query for this job pair
			}
			if (qa.Seq < a.Seq) != (m.Seq < b.Seq) {
				return true // crossing
			}
		}
	}
	return false
}

// insertGated records that q now has gating edges, keeping the per-job
// list sorted by sequence.
func (g *Graph) insertGated(q Ref) {
	lst := g.gated[q.Job]
	i := sort.Search(len(lst), func(i int) bool { return lst[i].Seq >= q.Seq })
	lst = append(lst, Ref{})
	copy(lst[i+1:], lst[i:])
	lst[i] = q
	g.gated[q.Job] = lst
}

// GatingNumber returns G(q): the gating level of q's component, or 0 if q
// has no gating edges.
func (g *Graph) GatingNumber(q Ref) int {
	if c := g.comp[q]; c != nil {
		return c.level
	}
	return 0
}

// Partners returns the queries co-scheduled with q (its component minus
// itself), in deterministic order.
func (g *Graph) Partners(q Ref) []Ref {
	c := g.comp[q]
	if c == nil {
		return nil
	}
	out := make([]Ref, 0, len(c.members)-1)
	for _, m := range c.members {
		if m != q {
			out = append(out, m)
		}
	}
	return out
}

// State returns the scheduling state of q.
func (g *Graph) State(q Ref) State { return g.state[q] }

// MarkDone records the completion of q, releases its successor from WAIT,
// and propagates gating releases. Marking an unknown or non-QUEUE query
// done is a programming error in the engine and panics.
func (g *Graph) MarkDone(q Ref) {
	st, ok := g.state[q]
	if !ok {
		panic(fmt.Sprintf("jobgraph: MarkDone on unknown query %v", q))
	}
	if st != Queue {
		panic(fmt.Sprintf("jobgraph: MarkDone on %v in state %v", q, st))
	}
	g.state[q] = Done
	succ := Ref{Job: q.Job, Seq: q.Seq + 1}
	if st, ok := g.state[succ]; ok && st == Wait {
		g.state[succ] = Ready
	}
	g.propagate()
}

// propagate promotes READY queries whose gating constraints are satisfied
// to QUEUE, iterating to a fixpoint so whole gating components release
// together.
func (g *Graph) propagate() {
	for {
		changed := false
		for _, jobID := range g.jobSeq {
			n := g.jobLen[jobID]
			for s := 0; s < n; s++ {
				q := Ref{Job: jobID, Seq: s}
				if g.state[q] != Ready {
					continue
				}
				if g.gatingSatisfied(q) {
					g.state[q] = Queue
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// gatingSatisfied reports whether every query co-scheduled with q has at
// least reached READY (Done partners count as satisfied: their data
// sharing opportunity has passed).
func (g *Graph) gatingSatisfied(q Ref) bool {
	c := g.comp[q]
	if c == nil {
		return true
	}
	for _, m := range c.members {
		if m == q {
			continue
		}
		if g.state[m] < Ready {
			return false
		}
	}
	return true
}

// Schedulable returns all queries currently in the QUEUE state, ordered by
// (job registration order, sequence).
func (g *Graph) Schedulable() []Ref {
	var out []Ref
	for _, jobID := range g.jobSeq {
		n := g.jobLen[jobID]
		for s := 0; s < n; s++ {
			q := Ref{Job: jobID, Seq: s}
			if g.state[q] == Queue {
				out = append(out, q)
			}
		}
	}
	return out
}

// Finished reports whether every query of every registered job is DONE.
func (g *Graph) Finished() bool {
	for _, jobID := range g.jobSeq {
		n := g.jobLen[jobID]
		for s := 0; s < n; s++ {
			if g.state[Ref{Job: jobID, Seq: s}] != Done {
				return false
			}
		}
	}
	return true
}

// Prune drops completed jobs from the graph (the paper prunes completed
// queries continually to keep the merge phase cheap). A job is dropped
// when all of its queries are DONE and none of its components link to a
// live query.
func (g *Graph) Prune() {
	keep := g.jobSeq[:0]
	for _, jobID := range g.jobSeq {
		n := g.jobLen[jobID]
		done := true
		for s := 0; s < n; s++ {
			if g.state[Ref{Job: jobID, Seq: s}] != Done {
				done = false
				break
			}
		}
		live := false
		if done {
			for _, q := range g.gated[jobID] {
				for _, m := range g.comp[q].members {
					// A member with no state entry was pruned earlier, which
					// implies it was already Done.
					if st, known := g.state[m]; known && st != Done {
						live = true
						break
					}
				}
				if live {
					break
				}
			}
		}
		if done && !live {
			for s := 0; s < n; s++ {
				q := Ref{Job: jobID, Seq: s}
				delete(g.state, q)
				delete(g.comp, q)
			}
			delete(g.gated, jobID)
			delete(g.jobLen, jobID)
			for key := range g.dpCache {
				if key[0] == jobID || key[1] == jobID {
					delete(g.dpCache, key)
				}
			}
			continue
		}
		keep = append(keep, jobID)
	}
	g.jobSeq = keep
}
