package jobgraph

import (
	"fmt"
	"sort"

	"jaws/internal/store"
)

// Ref identifies a query vertex in the precedence graph: query Seq
// (0-based) of job Job.
type Ref struct {
	Job int64
	Seq int
}

// String renders the reference.
func (r Ref) String() string { return fmt.Sprintf("q(%d,%d)", r.Job, r.Seq) }

// State is the scheduling state of a query vertex (§IV.B).
type State int

const (
	// Wait: precedence constraints unsatisfied (predecessor not done).
	Wait State = iota
	// Ready: only gating constraints unsatisfied.
	Ready
	// Queue: all constraints satisfied; awaiting execution.
	Queue
	// Done: completed execution.
	Done
)

// String names the state.
func (s State) String() string {
	switch s {
	case Wait:
		return "WAIT"
	case Ready:
		return "READY"
	case Queue:
		return "QUEUE"
	case Done:
		return "DONE"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// component is a set of queries connected by gating edges; all members are
// co-scheduled. level is the gating number G: the number of gating edges
// (synchronization points) that must be evaluated before the component can
// be scheduled.
type component struct {
	members []Ref
	level   int
}

// jobInfo is the per-job record: query states and component pointers are
// dense slices indexed by sequence number (the per-Ref maps they replace
// dominated the gating profile), gated lists the job's gated queries in
// sequence order, and atoms holds the per-query atom lists when the job
// was registered through AddJobWithAtoms (nil for the callback path).
type jobInfo struct {
	n      int
	states []State
	comps  []*component
	gated  []Ref
	atoms  [][]store.AtomID
}

// Graph is the precedence graph with gating edges for a set of ordered
// jobs. It is not safe for concurrent use; the scheduler owns it.
type Graph struct {
	shares func(a, b Ref) bool
	jobs   map[int64]*jobInfo
	jobSeq []int64 // job registration order, for deterministic iteration

	// postings is the inverted index over atom-registered jobs: for each
	// atom, the queries whose footprint contains it. The merge phase reads
	// a new job's sharing partners straight out of it instead of probing
	// the shares callback once per query pair.
	postings map[store.AtomID][]Ref

	dpCache map[[2]int64][]Pair
	al      Aligner

	// work and touched are the reusable buffers of the incremental
	// propagation (see promote).
	work    []Ref
	touched []*component

	// mergeByArrival disables the paper's greedy largest-alignment-first
	// merge in favour of plain registration order (ablation).
	mergeByArrival bool

	// stats
	admitted, rejected int

	// obs, when set, is called with the outcome of every gating-edge
	// admission attempt (tracing; the graph carries no virtual clock, so
	// the observer stamps events itself).
	obs func(admitted bool, u, v Ref)
}

// New creates an empty graph. shares reports whether two queries (from
// different jobs) access at least one common atom — A(a) ∩ A(b) ≠ ∅. It
// may be nil when every job is registered through AddJobWithAtoms, which
// derives sharing from the inverted atom index instead.
func New(shares func(a, b Ref) bool) *Graph {
	return newGraph(shares, false)
}

// NewArrivalMerge creates a graph whose merge phase admits partner jobs in
// registration order instead of the paper's greedy largest-alignment-first
// order — the merge-order ablation of DESIGN.md §5.
func NewArrivalMerge(shares func(a, b Ref) bool) *Graph {
	return newGraph(shares, true)
}

func newGraph(shares func(a, b Ref) bool, byArrival bool) *Graph {
	return &Graph{
		shares:         shares,
		jobs:           make(map[int64]*jobInfo),
		postings:       make(map[store.AtomID][]Ref),
		dpCache:        make(map[[2]int64][]Pair),
		mergeByArrival: byArrival,
	}
}

// SetObserver registers fn to be notified of every gating-edge admission
// decision (admitted or refused) between queries u and v. nil disables.
func (g *Graph) SetObserver(fn func(admitted bool, u, v Ref)) { g.obs = fn }

// Jobs returns the number of registered jobs.
func (g *Graph) Jobs() int { return len(g.jobs) }

// EdgesAdmitted reports how many gating links were admitted (a component
// of k members counts as k-1 links).
func (g *Graph) EdgesAdmitted() int { return g.admitted }

// EdgesRejected reports how many candidate links the feasibility checks
// refused.
func (g *Graph) EdgesRejected() int { return g.rejected }

// stateOf returns the state of q and whether q is a live (registered,
// unpruned) query. Unknown queries read as Wait, matching the map
// semantics this replaced.
func (g *Graph) stateOf(q Ref) (State, bool) {
	ji := g.jobs[q.Job]
	if ji == nil || q.Seq < 0 || q.Seq >= ji.n {
		return Wait, false
	}
	return ji.states[q.Seq], true
}

// compOf returns q's gating component, or nil.
func (g *Graph) compOf(q Ref) *component {
	ji := g.jobs[q.Job]
	if ji == nil || q.Seq < 0 || q.Seq >= ji.n {
		return nil
	}
	return ji.comps[q.Seq]
}

// AddJob registers an ordered job of n queries, aligns it against every
// previously registered job with the Needleman–Wunsch dynamic program, and
// greedily merges the resulting gating edges into the graph (most-sharing
// partner jobs first). This is the incremental path of §IV.B: "when a new
// job arrives, it can be added to the existing graph incrementally".
// Sharing with already-registered jobs is probed through the shares
// callback (which must be non-nil for edges to form on this path).
func (g *Graph) AddJob(id int64, n int) error {
	return g.addJob(id, n, nil)
}

// AddJobWithAtoms registers an ordered job whose per-query atom footprints
// are known up front: atoms[s] lists the atoms query s accesses (order
// irrelevant; duplicates harmless). The job enters the inverted atom
// index, and its sharing partners are discovered by a single pass over the
// index — one postings lookup per atom — instead of one set-intersection
// probe per query pair, so admission cost scales with actual sharing
// rather than with the number of registered queries.
func (g *Graph) AddJobWithAtoms(id int64, atoms [][]store.AtomID) error {
	return g.addJob(id, len(atoms), atoms)
}

func (g *Graph) addJob(id int64, n int, atoms [][]store.AtomID) error {
	if _, dup := g.jobs[id]; dup {
		return fmt.Errorf("jobgraph: job %d already registered", id)
	}
	if n <= 0 {
		return fmt.Errorf("jobgraph: job %d has no queries", id)
	}
	ji := &jobInfo{
		n:      n,
		states: make([]State, n),
		comps:  make([]*component, n),
		atoms:  atoms,
	}
	ji.states[0] = Ready
	g.jobs[id] = ji
	g.jobSeq = append(g.jobSeq, id)
	for s, as := range atoms {
		for _, a := range as {
			g.postings[a] = append(g.postings[a], Ref{Job: id, Seq: s})
		}
	}
	g.touched = g.touched[:0]
	g.mergeJob(id)
	// Incremental propagation: the only queries the registration can have
	// made promotable are the new job's first query (born Ready) and the
	// Ready members of components whose membership just changed. Promoting
	// a Ready query to Queue never enables further promotions (gating only
	// requires partners to have reached Ready), so one pass suffices.
	g.work = g.work[:0]
	g.work = append(g.work, Ref{Job: id, Seq: 0})
	for _, c := range g.touched {
		g.work = append(g.work, c.members...)
	}
	g.promote(g.work)
	return nil
}

// dpPairs returns (computing and caching) the dynamic-program alignment
// between jobs a and b via the shares callback, expressed as pairs
// (seq in a, seq in b).
func (g *Graph) dpPairs(a, b int64) []Pair {
	key := [2]int64{a, b}
	if a > b {
		key = [2]int64{b, a}
	}
	if cached, ok := g.dpCache[key]; ok {
		if key[0] == a {
			return cached
		}
		// Cached with swapped roles: flip.
		flipped := make([]Pair, len(cached))
		for i, p := range cached {
			flipped[i] = Pair{SeqA: p.SeqB, SeqB: p.SeqA}
		}
		return flipped
	}
	lo, hi := key[0], key[1]
	pairs := Align(g.jobs[lo].n, g.jobs[hi].n, func(i, j int) bool {
		return g.shares(Ref{Job: lo, Seq: i}, Ref{Job: hi, Seq: j})
	})
	g.dpCache[key] = pairs
	if lo == a {
		return pairs
	}
	flipped := make([]Pair, len(pairs))
	for i, p := range pairs {
		flipped[i] = Pair{SeqA: p.SeqB, SeqB: p.SeqA}
	}
	return flipped
}

// mergeJob admits gating edges between the new job and every previously
// registered job, taking partner jobs in decreasing order of alignment
// size (the greedy merge of §IV.B) and admitting each job's edges in
// precedence order. When both sides registered atom lists, the sharing
// relation comes from one pass over the inverted index; mixed pairs fall
// back to the shares callback.
func (g *Graph) mergeJob(newJob int64) {
	ji := g.jobs[newJob]
	type cand struct {
		partner int64
		pairs   []Pair // SeqA = new job, SeqB = partner
	}
	var cands []cand
	// Single sweep over the new job's atoms: every postings hit marks one
	// shared (new-seq, partner-seq) cell of the pairwise DP's share
	// relation. The alignment then reads the marks in O(1) per cell.
	var marks map[int64]map[int]bool
	if ji.atoms != nil {
		marks = make(map[int64]map[int]bool)
		for i, as := range ji.atoms {
			for _, a := range as {
				for _, ref := range g.postings[a] {
					if ref.Job == newJob {
						continue
					}
					pj := g.jobs[ref.Job]
					m := marks[ref.Job]
					if m == nil {
						m = make(map[int]bool)
						marks[ref.Job] = m
					}
					m[i*pj.n+ref.Seq] = true
				}
			}
		}
	}
	for _, other := range g.jobSeq {
		if other == newJob {
			continue
		}
		pj := g.jobs[other]
		var pairs []Pair
		if ji.atoms != nil && pj.atoms != nil {
			m := marks[other]
			if len(m) == 0 {
				continue
			}
			// Orient the DP with the smaller job ID as the A side — the
			// same canonical orientation dpPairs uses — so traceback
			// tie-breaks match the callback path exactly.
			nB := pj.n
			if newJob < other {
				g.al.Begin(nB)
				for i := 0; i < ji.n; i++ {
					base := i * nB
					g.al.AppendRow(func(j int) bool { return m[base+j] })
				}
				pairs = g.al.Pairs()
			} else {
				g.al.Begin(ji.n)
				for j := 0; j < nB; j++ {
					j := j
					g.al.AppendRow(func(i int) bool { return m[i*nB+j] })
				}
				pairs = g.al.Pairs()
				for k := range pairs {
					pairs[k].SeqA, pairs[k].SeqB = pairs[k].SeqB, pairs[k].SeqA
				}
			}
		} else {
			if g.shares == nil {
				continue // no way to probe sharing for this pair
			}
			pairs = g.dpPairs(newJob, other)
		}
		if len(pairs) > 0 {
			cands = append(cands, cand{partner: other, pairs: pairs})
		}
	}
	if !g.mergeByArrival {
		sort.SliceStable(cands, func(i, j int) bool {
			if len(cands[i].pairs) != len(cands[j].pairs) {
				return len(cands[i].pairs) > len(cands[j].pairs)
			}
			return cands[i].partner < cands[j].partner
		})
	}
	for _, c := range cands {
		for _, p := range c.pairs {
			g.admitEdge(Ref{Job: newJob, Seq: p.SeqA}, Ref{Job: c.partner, Seq: p.SeqB})
		}
	}
}

// levelBefore returns 1 + the highest gating level among gated queries of
// job j strictly before seq — the minimum level a new gating edge at seq
// could take (the MaxGatNum computation of Fig. 4).
func (g *Graph) levelBefore(j int64, seq int) int {
	max := 0
	for _, q := range g.jobs[j].gated {
		if q.Seq >= seq {
			break
		}
		if lvl := g.compOf(q).level; lvl >= max {
			max = lvl
		}
	}
	return max + 1
}

// levelAfterBound returns the lowest gating level among gated queries of
// job j strictly after seq, or -1 if none; a component containing (j, seq)
// must sit strictly below this level.
func (g *Graph) levelAfterBound(j int64, seq int) int {
	for _, q := range g.jobs[j].gated {
		if q.Seq > seq {
			return g.compOf(q).level
		}
	}
	return -1
}

// admitEdge attempts to admit a gating edge between u (a query of the job
// being merged) and v (a query of an already-merged job), applying the
// feasibility checks of Fig. 4:
//
//   - transitivity: u joins v's whole component (co-scheduling is
//     transitive), so the checks run against every member;
//   - one gating edge per query per job pair, and no crossing edges
//     between any job pair (precedence consistency, lines 10–13);
//   - no scheduling deadlock: gating levels must remain strictly
//     increasing along every job (the gating-number check of line 9).
//
// It reports whether the edge was admitted.
func (g *Graph) admitEdge(u, v Ref) bool {
	cu, cv := g.compOf(u), g.compOf(v)
	if cu != nil && cu == cv {
		return true // already co-scheduled
	}
	// Gather the would-be combined membership.
	membersOf := func(r Ref, c *component) []Ref {
		if c != nil {
			return c.members
		}
		return []Ref{r}
	}
	mu, mv := membersOf(u, cu), membersOf(v, cv)

	// A component may contain at most one query per job: co-scheduling two
	// ordered queries of the same job is an immediate deadlock.
	jobs := make(map[int64]int, len(mu)+len(mv))
	for _, m := range mu {
		jobs[m.Job] = m.Seq
	}
	for _, m := range mv {
		if _, clash := jobs[m.Job]; clash {
			return g.rejectEdge(u, v)
		}
		jobs[m.Job] = m.Seq
	}

	// Crossing check: for every pair of jobs now linked through the
	// combined component, the set of co-scheduling pairs across all
	// components must remain monotone (non-crossing). It suffices to check
	// each new cross-job pair (a from mu, b from mv) against existing
	// components containing both jobs.
	for _, a := range mu {
		for _, b := range mv {
			if g.wouldCross(a, b) {
				return g.rejectEdge(u, v)
			}
		}
	}

	// Level feasibility (gating numbers). Every member imposes a lower
	// bound (strictly above all gated predecessors in its job) and an
	// upper bound (strictly below all gated successors).
	lower := 0
	upper := 1 << 30
	all := make([]Ref, 0, len(mu)+len(mv))
	all = append(all, mu...)
	all = append(all, mv...)
	for _, m := range all {
		if lb := g.levelBefore(m.Job, m.Seq); lb > lower {
			lower = lb
		}
		if ub := g.levelAfterBound(m.Job, m.Seq); ub >= 0 && ub < upper {
			upper = ub
		}
	}
	level := lower
	// Existing components have committed levels; they cannot move (their
	// jobs' later edges were admitted against them).
	switch {
	case cu != nil && cv != nil:
		if cu.level != cv.level {
			return g.rejectEdge(u, v)
		}
		level = cu.level
	case cu != nil:
		if cu.level < lower {
			return g.rejectEdge(u, v)
		}
		level = cu.level
	case cv != nil:
		if cv.level < lower {
			return g.rejectEdge(u, v)
		}
		level = cv.level
	}
	if level >= upper {
		return g.rejectEdge(u, v)
	}

	// Admit: union into one component at the agreed level.
	merged := &component{members: all, level: level}
	sort.Slice(merged.members, func(i, j int) bool {
		if merged.members[i].Job != merged.members[j].Job {
			return merged.members[i].Job < merged.members[j].Job
		}
		return merged.members[i].Seq < merged.members[j].Seq
	})
	for _, m := range merged.members {
		mi := g.jobs[m.Job]
		if mi.comps[m.Seq] == nil {
			g.insertGated(m)
		}
		mi.comps[m.Seq] = merged
	}
	g.touched = append(g.touched, merged)
	g.admitted++
	if g.obs != nil {
		g.obs(true, u, v)
	}
	return true
}

// rejectEdge counts and reports one refused gating edge.
func (g *Graph) rejectEdge(u, v Ref) bool {
	g.rejected++
	if g.obs != nil {
		g.obs(false, u, v)
	}
	return false
}

// wouldCross reports whether co-scheduling a with b would cross an
// existing co-scheduling pair between their jobs, or duplicate an edge on
// either query for that job pair.
func (g *Graph) wouldCross(a, b Ref) bool {
	if a.Job == b.Job {
		return true
	}
	// Scan gated queries of job a; those whose component also holds a
	// query of job b define the existing pairs.
	for _, qa := range g.jobs[a.Job].gated {
		c := g.compOf(qa)
		for _, m := range c.members {
			if m.Job != b.Job {
				continue
			}
			// Existing pair (qa.Seq, m.Seq) vs candidate (a.Seq, b.Seq).
			if qa.Seq == a.Seq || m.Seq == b.Seq {
				return true // second edge on the same query for this job pair
			}
			if (qa.Seq < a.Seq) != (m.Seq < b.Seq) {
				return true // crossing
			}
		}
	}
	return false
}

// insertGated records that q now has gating edges, keeping the per-job
// list sorted by sequence.
func (g *Graph) insertGated(q Ref) {
	ji := g.jobs[q.Job]
	lst := ji.gated
	i := sort.Search(len(lst), func(i int) bool { return lst[i].Seq >= q.Seq })
	lst = append(lst, Ref{})
	copy(lst[i+1:], lst[i:])
	lst[i] = q
	ji.gated = lst
}

// GatingNumber returns G(q): the gating level of q's component, or 0 if q
// has no gating edges.
func (g *Graph) GatingNumber(q Ref) int {
	if c := g.compOf(q); c != nil {
		return c.level
	}
	return 0
}

// Partners returns the queries co-scheduled with q (its component minus
// itself), in deterministic order. The slice is freshly allocated; hot
// paths should prefer EachPartner.
func (g *Graph) Partners(q Ref) []Ref {
	c := g.compOf(q)
	if c == nil {
		return nil
	}
	out := make([]Ref, 0, len(c.members)-1)
	for _, m := range c.members {
		if m != q {
			out = append(out, m)
		}
	}
	return out
}

// EachPartner calls fn for every query co-scheduled with q, in
// deterministic (job, seq) order, stopping early when fn returns false.
// It allocates nothing.
func (g *Graph) EachPartner(q Ref, fn func(Ref) bool) {
	c := g.compOf(q)
	if c == nil {
		return
	}
	for _, m := range c.members {
		if m != q && !fn(m) {
			return
		}
	}
}

// State returns the scheduling state of q.
func (g *Graph) State(q Ref) State {
	st, _ := g.stateOf(q)
	return st
}

// MarkDone records the completion of q, releases its successor from WAIT,
// and propagates gating releases. Marking an unknown or non-QUEUE query
// done is a programming error in the engine and panics.
func (g *Graph) MarkDone(q Ref) {
	ji := g.jobs[q.Job]
	if ji == nil || q.Seq < 0 || q.Seq >= ji.n {
		panic(fmt.Sprintf("jobgraph: MarkDone on unknown query %v", q))
	}
	if st := ji.states[q.Seq]; st != Queue {
		panic(fmt.Sprintf("jobgraph: MarkDone on %v in state %v", q, st))
	}
	ji.states[q.Seq] = Done
	// Incremental propagation: q's own transition (QUEUE→DONE) cannot
	// change anyone's gating satisfaction — both states already count as
	// "reached Ready". Only the successor's WAIT→READY release can, and
	// only for the successor itself and the members of its component.
	if q.Seq+1 >= ji.n || ji.states[q.Seq+1] != Wait {
		return
	}
	succ := Ref{Job: q.Job, Seq: q.Seq + 1}
	ji.states[succ.Seq] = Ready
	g.work = g.work[:0]
	g.work = append(g.work, succ)
	if c := ji.comps[succ.Seq]; c != nil {
		g.work = append(g.work, c.members...)
	}
	g.promote(g.work)
}

// promote moves the given queries from READY to QUEUE where their gating
// constraints are satisfied. Because promotion only raises states that
// already count as "reached Ready" for partners, it can never enable a
// further promotion, so the worklist needs no fixpoint iteration; callers
// just list every query whose satisfaction may have changed. The naive
// full-graph fixpoint this replaces is kept as propagateAll for the
// equivalence tests.
func (g *Graph) promote(work []Ref) {
	for _, r := range work {
		ji := g.jobs[r.Job]
		if ji == nil || ji.states[r.Seq] != Ready {
			continue
		}
		if g.gatingSatisfied(r) {
			ji.states[r.Seq] = Queue
		}
	}
}

// propagateAll is the reference propagation: sweep every query to a
// fixpoint. Kept only to cross-check the incremental promote in tests.
func (g *Graph) propagateAll() {
	for {
		changed := false
		for _, jobID := range g.jobSeq {
			ji := g.jobs[jobID]
			for s := 0; s < ji.n; s++ {
				if ji.states[s] != Ready {
					continue
				}
				if g.gatingSatisfied(Ref{Job: jobID, Seq: s}) {
					ji.states[s] = Queue
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// gatingSatisfied reports whether every query co-scheduled with q has at
// least reached READY (Done partners count as satisfied: their data
// sharing opportunity has passed).
func (g *Graph) gatingSatisfied(q Ref) bool {
	c := g.compOf(q)
	if c == nil {
		return true
	}
	for _, m := range c.members {
		if m == q {
			continue
		}
		if st, _ := g.stateOf(m); st < Ready {
			return false
		}
	}
	return true
}

// BlockedBy appends to buf the queries directly holding q back and
// returns the extended slice (empty when q is schedulable, done, or
// unknown): a WAIT query is held by its job predecessor; a READY query
// by the co-scheduled partners that have not yet reached READY
// themselves, in deterministic (job, seq) order. It allocates nothing
// when buf has capacity.
func (g *Graph) BlockedBy(q Ref, buf []Ref) []Ref {
	st, known := g.stateOf(q)
	if !known {
		return buf
	}
	switch st {
	case Wait:
		return append(buf, Ref{Job: q.Job, Seq: q.Seq - 1})
	case Ready:
		c := g.compOf(q)
		if c == nil {
			return buf
		}
		for _, m := range c.members {
			if m == q {
				continue
			}
			if mst, _ := g.stateOf(m); mst < Ready {
				buf = append(buf, m)
			}
		}
	}
	return buf
}

// Schedulable returns all queries currently in the QUEUE state, ordered by
// (job registration order, sequence).
func (g *Graph) Schedulable() []Ref {
	var out []Ref
	for _, jobID := range g.jobSeq {
		ji := g.jobs[jobID]
		for s := 0; s < ji.n; s++ {
			if ji.states[s] == Queue {
				out = append(out, Ref{Job: jobID, Seq: s})
			}
		}
	}
	return out
}

// Finished reports whether every query of every registered job is DONE.
func (g *Graph) Finished() bool {
	for _, jobID := range g.jobSeq {
		ji := g.jobs[jobID]
		for s := 0; s < ji.n; s++ {
			if ji.states[s] != Done {
				return false
			}
		}
	}
	return true
}

// Prune drops completed jobs from the graph (the paper prunes completed
// queries continually to keep the merge phase cheap). A job is dropped
// when all of its queries are DONE and none of its components link to a
// live query. Pruning also retires the job's postings so the inverted
// index tracks only live jobs.
func (g *Graph) Prune() {
	keep := g.jobSeq[:0]
	for _, jobID := range g.jobSeq {
		ji := g.jobs[jobID]
		done := true
		for s := 0; s < ji.n; s++ {
			if ji.states[s] != Done {
				done = false
				break
			}
		}
		live := false
		if done {
		scan:
			for _, q := range ji.gated {
				for _, m := range g.compOf(q).members {
					// A member with no live record was pruned earlier, which
					// implies it was already Done.
					if st, known := g.stateOf(m); known && st != Done {
						live = true
						break scan
					}
				}
			}
		}
		if done && !live {
			for _, as := range ji.atoms {
				for _, a := range as {
					refs := g.postings[a]
					for k := 0; k < len(refs); {
						if refs[k].Job == jobID {
							refs[k] = refs[len(refs)-1]
							refs = refs[:len(refs)-1]
						} else {
							k++
						}
					}
					if len(refs) == 0 {
						delete(g.postings, a)
					} else {
						g.postings[a] = refs
					}
				}
			}
			delete(g.jobs, jobID)
			for key := range g.dpCache {
				if key[0] == jobID || key[1] == jobID {
					delete(g.dpCache, key)
				}
			}
			continue
		}
		keep = append(keep, jobID)
	}
	g.jobSeq = keep
}
