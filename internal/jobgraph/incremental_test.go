package jobgraph

import (
	"math/rand"
	"testing"

	"jaws/internal/morton"
	"jaws/internal/store"
)

// randomRegionJobs draws nJobs jobs of 1..maxLen queries, each query
// labelled with one of maxRegion regions (two queries share data iff
// their labels match, the Fig. 2 convention).
func randomRegionJobs(rng *rand.Rand, nJobs, maxLen, maxRegion int) map[int64][]int {
	jobs := make(map[int64][]int, nJobs)
	for j := 0; j < nJobs; j++ {
		n := rng.Intn(maxLen) + 1
		regions := make([]int, n)
		for i := range regions {
			regions[i] = rng.Intn(maxRegion)
		}
		jobs[int64(j+1)] = regions
	}
	return jobs
}

// regionAtoms maps a region-label job description to per-query atom
// lists: one atom per label, so lists intersect iff labels match.
func regionAtoms(regions []int) [][]store.AtomID {
	atoms := make([][]store.AtomID, len(regions))
	for s, r := range regions {
		atoms[s] = []store.AtomID{{Step: 0, Code: morton.Code(r)}}
	}
	return atoms
}

// The postings-index path (AddJobWithAtoms) and the callback path
// (AddJob with a shares function) must produce identical graphs: same
// admissions, same rejections, same states and gating numbers through a
// full randomized execution.
func TestAtomsPathMatchesCallbackPath(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		jobs := randomRegionJobs(rng, rng.Intn(5)+2, 8, 5)
		cb := New(func(a, b Ref) bool {
			return jobs[a.Job][a.Seq] == jobs[b.Job][b.Seq]
		})
		ix := New(nil)
		var ids []int64
		for id := int64(1); int(id) <= len(jobs); id++ {
			ids = append(ids, id)
		}
		for _, id := range ids {
			if err := cb.AddJob(id, len(jobs[id])); err != nil {
				t.Fatal(err)
			}
			if err := ix.AddJobWithAtoms(id, regionAtoms(jobs[id])); err != nil {
				t.Fatal(err)
			}
		}
		compare := func(stage string) {
			t.Helper()
			if cb.EdgesAdmitted() != ix.EdgesAdmitted() || cb.EdgesRejected() != ix.EdgesRejected() {
				t.Fatalf("seed %d %s: edges admitted/rejected %d/%d (callback) vs %d/%d (atoms)",
					seed, stage, cb.EdgesAdmitted(), cb.EdgesRejected(), ix.EdgesAdmitted(), ix.EdgesRejected())
			}
			for _, id := range ids {
				for s := range jobs[id] {
					q := Ref{Job: id, Seq: s}
					if cb.State(q) != ix.State(q) {
						t.Fatalf("seed %d %s: %v state %v (callback) vs %v (atoms)",
							seed, stage, q, cb.State(q), ix.State(q))
					}
					if cb.GatingNumber(q) != ix.GatingNumber(q) {
						t.Fatalf("seed %d %s: %v gating %d (callback) vs %d (atoms)",
							seed, stage, q, cb.GatingNumber(q), ix.GatingNumber(q))
					}
				}
			}
		}
		compare("after registration")
		// Drive both graphs through the same randomized completion order.
		for !cb.Finished() {
			sched := cb.Schedulable()
			if len(sched) == 0 {
				t.Fatalf("seed %d: deadlock with unfinished graph", seed)
			}
			q := sched[rng.Intn(len(sched))]
			cb.MarkDone(q)
			ix.MarkDone(q)
			compare("after " + q.String())
		}
	}
}

// The incremental worklist propagation must leave the graph at the same
// fixpoint the naive full-graph sweep reaches: after every public
// operation, re-running the reference propagateAll must change nothing.
func TestIncrementalPromoteReachesFixpoint(t *testing.T) {
	snapshot := func(g *Graph) map[Ref]State {
		m := make(map[Ref]State)
		for _, id := range g.jobSeq {
			ji := g.jobs[id]
			for s := 0; s < ji.n; s++ {
				m[Ref{Job: id, Seq: s}] = ji.states[s]
			}
		}
		return m
	}
	assertFixpoint := func(t *testing.T, g *Graph, seed int64, stage string) {
		t.Helper()
		before := snapshot(g)
		g.propagateAll()
		for q, st := range snapshot(g) {
			if before[q] != st {
				t.Fatalf("seed %d %s: incremental propagation missed %v (%v, fixpoint says %v)",
					seed, stage, q, before[q], st)
			}
		}
	}
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
		jobs := randomRegionJobs(rng, rng.Intn(6)+2, 8, 4)
		g := New(nil)
		// Interleave registrations with completions so promotion happens
		// both from AddJob merges and from MarkDone releases.
		pendingIDs := make([]int64, 0, len(jobs))
		for id := int64(1); int(id) <= len(jobs); id++ {
			pendingIDs = append(pendingIDs, id)
		}
		total := 0
		for _, regions := range jobs {
			total += len(regions)
		}
		doneCount := 0
		for doneCount < total {
			if len(pendingIDs) > 0 && (rng.Intn(2) == 0 || len(g.Schedulable()) == 0) {
				id := pendingIDs[0]
				pendingIDs = pendingIDs[1:]
				if err := g.AddJobWithAtoms(id, regionAtoms(jobs[id])); err != nil {
					t.Fatal(err)
				}
				assertFixpoint(t, g, seed, "AddJob")
				continue
			}
			sched := g.Schedulable()
			if len(sched) == 0 {
				t.Fatalf("seed %d: deadlock with %d/%d done", seed, doneCount, total)
			}
			q := sched[rng.Intn(len(sched))]
			g.MarkDone(q)
			doneCount++
			assertFixpoint(t, g, seed, "MarkDone")
			if rng.Intn(8) == 0 {
				g.Prune()
				assertFixpoint(t, g, seed, "Prune")
			}
		}
	}
}

// EachPartner must visit exactly the Partners slice, in order, without
// allocating.
func TestEachPartnerMatchesPartners(t *testing.T) {
	g := regionGraph(t, map[int64][]int{1: {1, 2, 4}, 2: {2, 4}, 3: {2}})
	for _, q := range []Ref{{Job: 1, Seq: 1}, {Job: 2, Seq: 0}, {Job: 1, Seq: 0}, {Job: 9, Seq: 0}} {
		want := g.Partners(q)
		var got []Ref
		g.EachPartner(q, func(r Ref) bool {
			got = append(got, r)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("%v: EachPartner visited %v, Partners %v", q, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: EachPartner visited %v, Partners %v", q, got, want)
			}
		}
	}
	// Early stop.
	n := 0
	g.EachPartner(Ref{Job: 1, Seq: 1}, func(Ref) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stop visited %d partners, want 1", n)
	}
}

// The append-row Aligner must agree with the one-shot Align on random
// share relations, including after arena reuse.
func TestAlignerAppendRowMatchesAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var al Aligner
	for trial := 0; trial < 200; trial++ {
		lenA, lenB := rng.Intn(9)+1, rng.Intn(9)+1
		shares := make([]bool, lenA*lenB)
		for i := range shares {
			shares[i] = rng.Intn(3) == 0
		}
		share := func(i, j int) bool { return shares[i*lenB+j] }
		want := Align(lenA, lenB, share)
		al.Begin(lenB)
		for i := 0; i < lenA; i++ {
			i := i
			al.AppendRow(func(j int) bool { return share(i, j) })
		}
		got := al.Pairs()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %v vs %v", trial, got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("trial %d: %v vs %v", trial, got, want)
			}
		}
	}
}
