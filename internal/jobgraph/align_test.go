package jobgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// shareFromRegions builds a share function from per-query region labels:
// queries share data iff they carry the same label (the simplification of
// Fig. 2, where node values denote the data region accessed).
func shareFromRegions(a, b []int) func(i, j int) bool {
	return func(i, j int) bool { return a[i] == b[j] }
}

func TestAlignEmpty(t *testing.T) {
	if got := Align(0, 5, func(int, int) bool { return true }); got != nil {
		t.Fatalf("alignment of empty job = %v", got)
	}
	if got := Align(5, 0, func(int, int) bool { return true }); got != nil {
		t.Fatalf("alignment with empty job = %v", got)
	}
}

func TestAlignIdenticalJobs(t *testing.T) {
	a := []int{1, 2, 3, 4}
	pairs := Align(4, 4, shareFromRegions(a, a))
	if len(pairs) != 4 {
		t.Fatalf("identical jobs aligned %d pairs, want 4", len(pairs))
	}
	for i, p := range pairs {
		if p.SeqA != i || p.SeqB != i {
			t.Fatalf("pair %d = %+v, want diagonal", i, p)
		}
	}
}

func TestAlignNoSharing(t *testing.T) {
	pairs := Align(3, 3, shareFromRegions([]int{1, 2, 3}, []int{4, 5, 6}))
	if len(pairs) != 0 {
		t.Fatalf("disjoint jobs aligned %d pairs", len(pairs))
	}
}

func TestAlignWithGaps(t *testing.T) {
	// Job A: R1 R2 R3; Job B: R1 R9 R9 R3. Optimal: align R1 and R3,
	// skipping B's middle queries.
	a := []int{1, 2, 3}
	b := []int{1, 9, 9, 3}
	pairs := Align(len(a), len(b), shareFromRegions(a, b))
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs, want 2: %v", len(pairs), pairs)
	}
	if pairs[0] != (Pair{SeqA: 0, SeqB: 0}) || pairs[1] != (Pair{SeqA: 2, SeqB: 3}) {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestAlignPrefersMoreEdges(t *testing.T) {
	// A crossing would allow only one edge; the DP must find the
	// non-crossing subset of maximum size.
	// Job A: R1 R2; Job B: R2 R1 R2. Best: A0-B1? crossing with A1-B0...
	// Options: {A0↔B1} + {A1↔B2} (non-crossing, 2 edges).
	a := []int{1, 2}
	b := []int{2, 1, 2}
	pairs := Align(len(a), len(b), shareFromRegions(a, b))
	if len(pairs) != 2 {
		t.Fatalf("got %v, want two non-crossing edges", pairs)
	}
}

func TestAlignFigure2Scenario(t *testing.T) {
	// Figure 2's jobs (values = data regions): three jobs where JAWS
	// aligns R3 and R4 accesses. Pairwise alignment of j1 = [R1 R2 R3 R4]
	// and j2 = [R3 R4] must match both queries of j2.
	j1 := []int{1, 2, 3, 4}
	j2 := []int{3, 4}
	pairs := Align(len(j1), len(j2), shareFromRegions(j1, j2))
	if len(pairs) != 2 {
		t.Fatalf("got %v, want R3 and R4 aligned", pairs)
	}
	if pairs[0] != (Pair{SeqA: 2, SeqB: 0}) || pairs[1] != (Pair{SeqA: 3, SeqB: 1}) {
		t.Fatalf("pairs = %v", pairs)
	}
}

// Property: alignments are feasible gating-edge sets — strictly increasing
// in both sequences (non-crossing, at most one edge per query) and every
// pair actually shares data.
func TestAlignFeasibilityProperty(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		a := make([]int, len(aRaw))
		for i, v := range aRaw {
			a[i] = int(v % 8)
		}
		b := make([]int, len(bRaw))
		for i, v := range bRaw {
			b[i] = int(v % 8)
		}
		share := shareFromRegions(a, b)
		pairs := Align(len(a), len(b), share)
		prevA, prevB := -1, -1
		for _, p := range pairs {
			if p.SeqA <= prevA || p.SeqB <= prevB {
				return false
			}
			if !share(p.SeqA, p.SeqB) {
				return false
			}
			prevA, prevB = p.SeqA, p.SeqB
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the DP is optimal — for small inputs, its edge count matches a
// brute-force maximum non-crossing matching.
func TestAlignOptimalityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n, m := rng.Intn(6)+1, rng.Intn(6)+1
		a := make([]int, n)
		b := make([]int, m)
		for i := range a {
			a[i] = rng.Intn(4)
		}
		for i := range b {
			b[i] = rng.Intn(4)
		}
		share := shareFromRegions(a, b)
		got := len(Align(n, m, share))
		want := bruteMaxMatching(n, m, share)
		if got != want {
			t.Fatalf("trial %d: DP found %d edges, brute force %d (a=%v b=%v)", trial, got, want, a, b)
		}
	}
}

// bruteMaxMatching enumerates all non-crossing matchings recursively.
func bruteMaxMatching(n, m int, share func(i, j int) bool) int {
	var rec func(i, j int) int
	memo := make(map[[2]int]int)
	rec = func(i, j int) int {
		if i >= n || j >= m {
			return 0
		}
		key := [2]int{i, j}
		if v, ok := memo[key]; ok {
			return v
		}
		best := rec(i+1, j)
		if v := rec(i, j+1); v > best {
			best = v
		}
		if share(i, j) {
			if v := 1 + rec(i+1, j+1); v > best {
				best = v
			}
		}
		memo[key] = best
		return best
	}
	return rec(0, 0)
}

func BenchmarkAlign100x100(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := make([]int, 100)
	c := make([]int, 100)
	for i := range a {
		a[i] = rng.Intn(20)
		c[i] = rng.Intn(20)
	}
	share := shareFromRegions(a, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Align(100, 100, share)
	}
}
