package jobgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the precedence graph in Graphviz DOT form, in the style of
// the paper's Fig. 5: one row ("rank") per job, solid directed edges for
// precedence constraints, dashed undirected edges for gating, and each
// vertex labelled with its state and gating number. Useful for debugging
// gated schedules and for documentation.
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("graph jaws {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=circle fontsize=10];\n")

	ids := append([]int64(nil), g.jobSeq...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, jobID := range ids {
		n := g.jobs[jobID].n
		fmt.Fprintf(&b, "  subgraph cluster_j%d {\n    label=\"job %d\";\n", jobID, jobID)
		for s := 0; s < n; s++ {
			q := Ref{Job: jobID, Seq: s}
			style := ""
			switch g.State(q) {
			case Done:
				style = " style=filled fillcolor=gray80"
			case Queue:
				style = " style=filled fillcolor=palegreen"
			case Ready:
				style = " style=filled fillcolor=lightyellow"
			}
			label := fmt.Sprintf("%d.%d\\n%s", jobID, s, g.State(q))
			if gn := g.GatingNumber(q); gn > 0 {
				label += fmt.Sprintf("\\nG=%d", gn)
			}
			fmt.Fprintf(&b, "    q%d_%d [label=\"%s\"%s];\n", jobID, s, label, style)
		}
		// Precedence edges.
		for s := 0; s+1 < n; s++ {
			fmt.Fprintf(&b, "    q%d_%d -- q%d_%d [style=solid dir=forward];\n", jobID, s, jobID, s+1)
		}
		b.WriteString("  }\n")
	}

	// Gating edges: emit each component as a clique, each pair once.
	seen := map[string]bool{}
	for _, jobID := range ids {
		for _, q := range g.jobs[jobID].gated {
			c := g.compOf(q)
			for _, a := range c.members {
				for _, d := range c.members {
					if a.Job > d.Job || (a.Job == d.Job && a.Seq >= d.Seq) {
						continue
					}
					key := fmt.Sprintf("%v-%v", a, d)
					if seen[key] {
						continue
					}
					seen[key] = true
					fmt.Fprintf(&b, "  q%d_%d -- q%d_%d [style=dashed constraint=false];\n",
						a.Job, a.Seq, d.Job, d.Seq)
				}
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
