package btree

// Delete removes key k, reporting whether it was present. Underflowing
// nodes are rebalanced by borrowing from or merging with a sibling, so
// the tree keeps its logarithmic height under churn (the cluster prunes
// per-experiment scratch indexes this way).
func (t *Tree[K, V]) Delete(k K) bool {
	removed := t.delete(t.root, k)
	if removed {
		t.size--
	}
	// Collapse a root that lost all separators.
	if in, ok := t.root.(*interior[K, V]); ok && len(in.children) == 1 {
		t.root = in.children[0]
		t.height--
	}
	return removed
}

// minFill is the underflow threshold for rebalancing: interiors count
// children, leaves count keys. A node at minFill-1 merged with a sibling
// at minFill yields 2·minFill−1 ≤ order entries, so merges never overflow.
func (t *Tree[K, V]) minFill() int { return (t.order + 1) / 2 }

func (t *Tree[K, V]) delete(n node[K, V], k K) bool {
	switch x := n.(type) {
	case *leaf[K, V]:
		i, ok := x.find(t, k)
		if !ok {
			return false
		}
		x.keys = append(x.keys[:i], x.keys[i+1:]...)
		x.vals = append(x.vals[:i], x.vals[i+1:]...)
		return true
	case *interior[K, V]:
		idx := x.childIndex(t, k)
		removed := t.delete(x.children[idx], k)
		if removed {
			t.rebalance(x, idx)
		}
		return removed
	}
	return false
}

// rebalance fixes a possibly underflowing child idx of parent p.
func (t *Tree[K, V]) rebalance(p *interior[K, V], idx int) {
	child := p.children[idx]
	if t.fill(child) >= t.minFill() {
		return
	}
	// Try borrowing from the left sibling, then the right; merge if both
	// siblings are minimal.
	if idx > 0 && t.fill(p.children[idx-1]) > t.minFill() {
		t.borrowLeft(p, idx)
		return
	}
	if idx < len(p.children)-1 && t.fill(p.children[idx+1]) > t.minFill() {
		t.borrowRight(p, idx)
		return
	}
	if idx > 0 {
		t.merge(p, idx-1)
	} else if idx < len(p.children)-1 {
		t.merge(p, idx)
	}
}

// fill measures how full a node is for rebalancing purposes.
func (t *Tree[K, V]) fill(n node[K, V]) int {
	switch x := n.(type) {
	case *leaf[K, V]:
		return len(x.keys)
	case *interior[K, V]:
		return len(x.children)
	}
	return 0
}

// borrowLeft moves the left sibling's last entry into child idx.
func (t *Tree[K, V]) borrowLeft(p *interior[K, V], idx int) {
	switch child := p.children[idx].(type) {
	case *leaf[K, V]:
		left := p.children[idx-1].(*leaf[K, V])
		last := len(left.keys) - 1
		child.keys = append([]K{left.keys[last]}, child.keys...)
		child.vals = append([]V{left.vals[last]}, child.vals...)
		left.keys = left.keys[:last]
		left.vals = left.vals[:last]
		p.keys[idx-1] = child.keys[0]
	case *interior[K, V]:
		left := p.children[idx-1].(*interior[K, V])
		lastKey := len(left.keys) - 1
		child.keys = append([]K{p.keys[idx-1]}, child.keys...)
		child.children = append([]node[K, V]{left.children[len(left.children)-1]}, child.children...)
		p.keys[idx-1] = left.keys[lastKey]
		left.keys = left.keys[:lastKey]
		left.children = left.children[:len(left.children)-1]
	}
}

// borrowRight moves the right sibling's first entry into child idx.
func (t *Tree[K, V]) borrowRight(p *interior[K, V], idx int) {
	switch child := p.children[idx].(type) {
	case *leaf[K, V]:
		right := p.children[idx+1].(*leaf[K, V])
		child.keys = append(child.keys, right.keys[0])
		child.vals = append(child.vals, right.vals[0])
		right.keys = right.keys[1:]
		right.vals = right.vals[1:]
		p.keys[idx] = right.keys[0]
	case *interior[K, V]:
		right := p.children[idx+1].(*interior[K, V])
		child.keys = append(child.keys, p.keys[idx])
		child.children = append(child.children, right.children[0])
		p.keys[idx] = right.keys[0]
		right.keys = right.keys[1:]
		right.children = right.children[1:]
	}
}

// merge joins children idx and idx+1 of p into one node.
func (t *Tree[K, V]) merge(p *interior[K, V], idx int) {
	switch left := p.children[idx].(type) {
	case *leaf[K, V]:
		right := p.children[idx+1].(*leaf[K, V])
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	case *interior[K, V]:
		right := p.children[idx+1].(*interior[K, V])
		left.keys = append(left.keys, p.keys[idx])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	p.keys = append(p.keys[:idx], p.keys[idx+1:]...)
	p.children = append(p.children[:idx+1], p.children[idx+2:]...)
}
