// Package btree implements a clustered B+-tree: the access path the
// Turbulence database uses to retrieve atoms, keyed on the combination of
// time step and Morton index (§III.A of the paper).
//
// Interior nodes hold only separator keys; all values live in the leaves,
// which are linked left-to-right so that range scans (e.g. "all atoms of
// time step t in Morton order") stream sequentially — exactly the property
// that makes Morton-sorted batch execution I/O friendly.
package btree

import (
	"fmt"
	"sort"
)

// Tree is a B+-tree mapping ordered keys K to values V. Create one with
// New. Not safe for concurrent mutation; the store serializes access.
type Tree[K any, V any] struct {
	less   func(a, b K) bool
	order  int // max children per interior node
	root   node[K, V]
	height int
	size   int
}

// DefaultOrder is the branching factor used when New is given order < 3.
const DefaultOrder = 64

type node[K any, V any] interface {
	// insert adds (k,v); if the node splits it returns the separator key
	// and the new right sibling.
	insert(t *Tree[K, V], k K, v V) (sep K, right node[K, V], split, added bool)
	firstLeaf() *leaf[K, V]
}

type interior[K any, V any] struct {
	keys     []K
	children []node[K, V]
}

type leaf[K any, V any] struct {
	keys []K
	vals []V
	next *leaf[K, V]
}

// New creates an empty tree with the given branching order (use 0 for the
// default) and key ordering.
func New[K any, V any](order int, less func(a, b K) bool) *Tree[K, V] {
	if order < 3 {
		order = DefaultOrder
	}
	return &Tree[K, V]{less: less, order: order, root: &leaf[K, V]{}, height: 1}
}

// Len reports the number of stored keys.
func (t *Tree[K, V]) Len() int { return t.size }

// Height reports the number of levels (1 for a single-leaf tree).
func (t *Tree[K, V]) Height() int { return t.height }

// Put inserts or replaces the value for key k.
func (t *Tree[K, V]) Put(k K, v V) {
	sep, right, split, added := t.root.insert(t, k, v)
	if split {
		t.root = &interior[K, V]{keys: []K{sep}, children: []node[K, V]{t.root, right}}
		t.height++
	}
	if added {
		t.size++
	}
}

// Get returns the value for key k.
func (t *Tree[K, V]) Get(k K) (V, bool) {
	n := t.root
	for {
		switch x := n.(type) {
		case *interior[K, V]:
			n = x.children[x.childIndex(t, k)]
		case *leaf[K, V]:
			i, ok := x.find(t, k)
			if !ok {
				var zero V
				return zero, false
			}
			return x.vals[i], true
		default:
			panic("btree: unknown node type")
		}
	}
}

// Scan calls fn for every key in [lo, hi) in ascending order, stopping
// early if fn returns false. The leaf chain makes this a sequential walk.
func (t *Tree[K, V]) Scan(lo, hi K, fn func(k K, v V) bool) {
	n := t.root
	for {
		x, ok := n.(*interior[K, V])
		if !ok {
			break
		}
		n = x.children[x.childIndex(t, lo)]
	}
	lf := n.(*leaf[K, V])
	for lf != nil {
		for i, k := range lf.keys {
			if t.less(k, lo) {
				continue
			}
			if !t.less(k, hi) {
				return
			}
			if !fn(k, lf.vals[i]) {
				return
			}
		}
		lf = lf.next
	}
}

// Ascend calls fn for every key in ascending order, stopping early if fn
// returns false.
func (t *Tree[K, V]) Ascend(fn func(k K, v V) bool) {
	lf := t.root.firstLeaf()
	for lf != nil {
		for i, k := range lf.keys {
			if !fn(k, lf.vals[i]) {
				return
			}
		}
		lf = lf.next
	}
}

// Min returns the smallest key and its value; ok is false on an empty tree.
func (t *Tree[K, V]) Min() (k K, v V, ok bool) {
	lf := t.root.firstLeaf()
	for lf != nil {
		if len(lf.keys) > 0 {
			return lf.keys[0], lf.vals[0], true
		}
		lf = lf.next
	}
	return k, v, false
}

// childIndex finds which child subtree of an interior node covers k.
func (n *interior[K, V]) childIndex(t *Tree[K, V], k K) int {
	return sort.Search(len(n.keys), func(i int) bool { return t.less(k, n.keys[i]) })
}

func (n *interior[K, V]) firstLeaf() *leaf[K, V] { return n.children[0].firstLeaf() }

func (n *interior[K, V]) insert(t *Tree[K, V], k K, v V) (K, node[K, V], bool, bool) {
	idx := n.childIndex(t, k)
	sep, right, split, added := n.children[idx].insert(t, k, v)
	if split {
		n.keys = append(n.keys, sep)
		copy(n.keys[idx+1:], n.keys[idx:])
		n.keys[idx] = sep
		n.children = append(n.children, nil)
		copy(n.children[idx+2:], n.children[idx+1:])
		n.children[idx+1] = right
	}
	if len(n.children) > t.order {
		mid := len(n.keys) / 2
		promoted := n.keys[mid]
		sibling := &interior[K, V]{
			keys:     append([]K(nil), n.keys[mid+1:]...),
			children: append([]node[K, V](nil), n.children[mid+1:]...),
		}
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
		return promoted, sibling, true, added
	}
	var zero K
	return zero, nil, false, added
}

// find locates k within the leaf; ok reports whether it is present.
func (n *leaf[K, V]) find(t *Tree[K, V], k K) (int, bool) {
	i := sort.Search(len(n.keys), func(i int) bool { return !t.less(n.keys[i], k) })
	if i < len(n.keys) && !t.less(k, n.keys[i]) {
		return i, true
	}
	return i, false
}

func (n *leaf[K, V]) firstLeaf() *leaf[K, V] { return n }

func (n *leaf[K, V]) insert(t *Tree[K, V], k K, v V) (K, node[K, V], bool, bool) {
	i, found := n.find(t, k)
	added := !found
	if found {
		n.vals[i] = v
	} else {
		n.keys = append(n.keys, k)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.vals = append(n.vals, v)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
	}
	if len(n.keys) > t.order {
		mid := len(n.keys) / 2
		sibling := &leaf[K, V]{
			keys: append([]K(nil), n.keys[mid:]...),
			vals: append([]V(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = sibling
		return sibling.keys[0], sibling, true, added
	}
	var zero K
	return zero, nil, false, added
}

// CheckInvariants walks the tree verifying structural invariants; it is
// exported for tests and returns a descriptive error on the first
// violation found.
func (t *Tree[K, V]) CheckInvariants() error {
	count := 0
	var prev *K
	lf := t.root.firstLeaf()
	for lf != nil {
		for i := range lf.keys {
			k := lf.keys[i]
			if prev != nil && !t.less(*prev, k) {
				return fmt.Errorf("btree: leaf keys out of order")
			}
			kc := k
			prev = &kc
			count++
		}
		lf = lf.next
	}
	if count != t.size {
		return fmt.Errorf("btree: leaf chain has %d keys, size says %d", count, t.size)
	}
	return t.checkNode(t.root, t.height)
}

func (t *Tree[K, V]) checkNode(n node[K, V], depth int) error {
	switch x := n.(type) {
	case *leaf[K, V]:
		if depth != 1 {
			return fmt.Errorf("btree: leaf at depth %d, want 1", depth)
		}
	case *interior[K, V]:
		if len(x.children) != len(x.keys)+1 {
			return fmt.Errorf("btree: interior with %d keys, %d children", len(x.keys), len(x.children))
		}
		if len(x.children) > t.order {
			return fmt.Errorf("btree: interior overflow: %d children > order %d", len(x.children), t.order)
		}
		for _, c := range x.children {
			if err := t.checkNode(c, depth-1); err != nil {
				return err
			}
		}
	}
	return nil
}
