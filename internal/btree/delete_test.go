package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDeleteBasic(t *testing.T) {
	tr := newInt(4)
	for i := 0; i < 10; i++ {
		tr.Put(i, "v")
	}
	if !tr.Delete(5) {
		t.Fatal("Delete(5) reported absent")
	}
	if tr.Delete(5) {
		t.Fatal("double Delete reported present")
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("deleted key still present")
	}
	if tr.Len() != 9 {
		t.Fatalf("Len = %d, want 9", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := newInt(4)
	if tr.Delete(1) {
		t.Fatal("Delete on empty tree reported present")
	}
	tr.Put(1, "v")
	if tr.Delete(2) {
		t.Fatal("Delete of absent key reported present")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDeleteAllShrinksHeight(t *testing.T) {
	tr := newInt(3)
	const n = 200
	for i := 0; i < n; i++ {
		tr.Put(i, "v")
	}
	grown := tr.Height()
	if grown < 3 {
		t.Fatalf("tree too shallow to test: height %d", grown)
	}
	for i := 0; i < n; i++ {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) missing", i)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after Delete(%d): %v", i, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if tr.Height() >= grown {
		t.Fatalf("height did not shrink: %d → %d", grown, tr.Height())
	}
	// Tree stays usable.
	tr.Put(42, "back")
	if v, ok := tr.Get(42); !ok || v != "back" {
		t.Fatal("tree unusable after full drain")
	}
}

func TestDeleteKeepsLeafChain(t *testing.T) {
	tr := newInt(3)
	for i := 0; i < 100; i++ {
		tr.Put(i, "v")
	}
	rng := rand.New(rand.NewSource(8))
	for _, k := range rng.Perm(100)[:50] {
		tr.Delete(k)
	}
	var keys []int
	tr.Ascend(func(k int, _ string) bool { keys = append(keys, k); return true })
	if !sort.IntsAreSorted(keys) {
		t.Fatal("leaf chain broken: Ascend unsorted")
	}
	if len(keys) != 50 {
		t.Fatalf("Ascend visited %d keys, want 50", len(keys))
	}
	// Scan still works across merged leaves.
	n := 0
	tr.Scan(0, 100, func(int, string) bool { n++; return true })
	if n != 50 {
		t.Fatalf("Scan visited %d keys, want 50", n)
	}
}

// Property: a random interleaving of inserts and deletes behaves exactly
// like a map, and structural invariants hold throughout, at branching
// orders that force every rebalancing path.
func TestDeleteAgainstReferenceModel(t *testing.T) {
	for _, order := range []int{3, 4, 8} {
		f := func(ops []int16) bool {
			tr := New[int, int](order, intLess)
			ref := map[int]int{}
			for i, op := range ops {
				k := int(op) % 64
				if op%3 == 0 {
					// delete
					want := false
					if _, ok := ref[k]; ok {
						want = true
						delete(ref, k)
					}
					if tr.Delete(k) != want {
						return false
					}
				} else {
					tr.Put(k, i)
					ref[k] = i
				}
				if tr.CheckInvariants() != nil {
					return false
				}
			}
			if tr.Len() != len(ref) {
				return false
			}
			for k, v := range ref {
				got, ok := tr.Get(k)
				if !ok || got != v {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
	}
}

func BenchmarkDelete(b *testing.B) {
	keys := make([]uint64, 1<<14)
	for i := range keys {
		keys[i] = uint64(i) * 2654435761
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := New[uint64, int](64, func(a, b uint64) bool { return a < b })
		for _, k := range keys {
			tr.Put(k, 0)
		}
		b.StartTimer()
		for _, k := range keys {
			tr.Delete(k)
		}
	}
}
