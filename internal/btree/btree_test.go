package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func newInt(order int) *Tree[int, string] { return New[int, string](order, intLess) }

func TestEmptyTree(t *testing.T) {
	tr := newInt(0)
	if tr.Len() != 0 {
		t.Fatalf("empty tree Len = %d", tr.Len())
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree returned ok")
	}
	called := false
	tr.Ascend(func(int, string) bool { called = true; return true })
	if called {
		t.Fatal("Ascend on empty tree visited a key")
	}
}

func TestPutGet(t *testing.T) {
	tr := newInt(4)
	for i := 0; i < 100; i++ {
		tr.Put(i, "v")
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	for i := 0; i < 100; i++ {
		if _, ok := tr.Get(i); !ok {
			t.Fatalf("Get(%d) missing", i)
		}
	}
	if _, ok := tr.Get(100); ok {
		t.Fatal("Get(100) present, never inserted")
	}
}

func TestPutReplace(t *testing.T) {
	tr := newInt(4)
	tr.Put(7, "a")
	tr.Put(7, "b")
	if tr.Len() != 1 {
		t.Fatalf("replace changed Len to %d", tr.Len())
	}
	if v, _ := tr.Get(7); v != "b" {
		t.Fatalf("Get(7) = %q, want b", v)
	}
}

func TestSplitGrowsHeight(t *testing.T) {
	tr := newInt(3)
	h := tr.Height()
	for i := 0; i < 50; i++ {
		tr.Put(i, "v")
	}
	if tr.Height() <= h {
		t.Fatalf("tree never grew: height %d", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanRange(t *testing.T) {
	tr := newInt(4)
	for i := 0; i < 100; i += 2 { // evens only
		tr.Put(i, "v")
	}
	var got []int
	tr.Scan(10, 30, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	want := []int{10, 12, 14, 16, 18, 20, 22, 24, 26, 28}
	if len(got) != len(want) {
		t.Fatalf("Scan got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan got %v, want %v", got, want)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := newInt(4)
	for i := 0; i < 100; i++ {
		tr.Put(i, "v")
	}
	n := 0
	tr.Scan(0, 100, func(int, string) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d keys, want 5", n)
	}
}

func TestScanEmptyRange(t *testing.T) {
	tr := newInt(4)
	for i := 0; i < 10; i++ {
		tr.Put(i, "v")
	}
	n := 0
	tr.Scan(5, 5, func(int, string) bool { n++; return true })
	if n != 0 {
		t.Fatalf("empty range visited %d keys", n)
	}
}

func TestMin(t *testing.T) {
	tr := newInt(4)
	for _, k := range []int{42, 7, 99, 13} {
		tr.Put(k, "v")
	}
	k, _, ok := tr.Min()
	if !ok || k != 7 {
		t.Fatalf("Min = %d/%v, want 7/true", k, ok)
	}
}

func TestAscendSorted(t *testing.T) {
	tr := newInt(5)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		tr.Put(rng.Intn(500), "v")
	}
	var keys []int
	tr.Ascend(func(k int, _ string) bool { keys = append(keys, k); return true })
	if !sort.IntsAreSorted(keys) {
		t.Fatal("Ascend not sorted")
	}
	if len(keys) != tr.Len() {
		t.Fatalf("Ascend visited %d keys, Len = %d", len(keys), tr.Len())
	}
}

// Property: the tree behaves identically to a reference map for any
// sequence of insertions, at several branching orders including ones that
// force deep trees.
func TestAgainstReferenceModel(t *testing.T) {
	for _, order := range []int{3, 4, 8, 64} {
		f := func(keys []int16) bool {
			tr := New[int, int](order, intLess)
			ref := map[int]int{}
			for i, k16 := range keys {
				k := int(k16)
				tr.Put(k, i)
				ref[k] = i
			}
			if tr.Len() != len(ref) {
				return false
			}
			for k, v := range ref {
				got, ok := tr.Get(k)
				if !ok || got != v {
					return false
				}
			}
			// Full ascend equals sorted reference keys.
			var want []int
			for k := range ref {
				want = append(want, k)
			}
			sort.Ints(want)
			i := 0
			good := true
			tr.Ascend(func(k int, _ int) bool {
				if i >= len(want) || k != want[i] {
					good = false
					return false
				}
				i++
				return true
			})
			return good && i == len(want) && tr.CheckInvariants() == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
	}
}

// Property: Scan(lo,hi) returns exactly the reference keys in [lo,hi).
func TestScanAgainstReference(t *testing.T) {
	f := func(keys []int16, lo16, hi16 int16) bool {
		lo, hi := int(lo16), int(hi16)
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := New[int, int](4, intLess)
		ref := map[int]bool{}
		for _, k16 := range keys {
			tr.Put(int(k16), 0)
			ref[int(k16)] = true
		}
		var want []int
		for k := range ref {
			if k >= lo && k < hi {
				want = append(want, k)
			}
		}
		sort.Ints(want)
		var got []int
		tr.Scan(lo, hi, func(k int, _ int) bool { got = append(got, k); return true })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompositeKey(t *testing.T) {
	// The store keys atoms on (step, morton) packed into a uint64, like
	// the clustered index in §III.A. Verify ordering by step then code.
	type entry struct{ step, code uint32 }
	key := func(e entry) uint64 { return uint64(e.step)<<32 | uint64(e.code) }
	tr := New[uint64, entry](8, func(a, b uint64) bool { return a < b })
	entries := []entry{{2, 1}, {1, 5}, {1, 2}, {0, 9}, {2, 0}}
	for _, e := range entries {
		tr.Put(key(e), e)
	}
	var got []entry
	tr.Ascend(func(_ uint64, e entry) bool { got = append(got, e); return true })
	want := []entry{{0, 9}, {1, 2}, {1, 5}, {2, 0}, {2, 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("composite ordering got %v, want %v", got, want)
		}
	}
	// Range scan of step 1 only.
	var step1 []entry
	tr.Scan(uint64(1)<<32, uint64(2)<<32, func(_ uint64, e entry) bool {
		step1 = append(step1, e)
		return true
	})
	if len(step1) != 2 || step1[0].step != 1 || step1[1].step != 1 {
		t.Fatalf("step-1 scan = %v", step1)
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New[uint64, int](64, func(a, b uint64) bool { return a < b })
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(rng.Uint64(), i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New[uint64, int](64, func(a, b uint64) bool { return a < b })
	for i := 0; i < 1<<16; i++ {
		tr.Put(uint64(i)*2654435761, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(uint64(i%(1<<16)) * 2654435761)
	}
}
