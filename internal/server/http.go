package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"jaws"
)

// Point is a position in the periodic simulation domain [0, 2π)³, the
// wire shape of jaws.Position.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
}

// QueryRequest is the /query request body. Unknown fields are rejected.
type QueryRequest struct {
	// Step is the stored time step, in [0, Steps).
	Step int `json:"step"`
	// Kernel names the interpolation kernel: none, trilinear, lag4
	// (default), lag6, lag8.
	Kernel string `json:"kernel,omitempty"`
	// Points are the evaluation positions (at most MaxPoints).
	Points []Point `json:"points"`
	// TimeoutMS overrides the server's default per-request deadline,
	// capped by MaxDeadline. Zero means the default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// PointValue is one evaluated position of a QueryResponse.
type PointValue struct {
	Position Point      `json:"position"`
	Velocity [3]float64 `json:"velocity"`
	Pressure float64    `json:"pressure"`
}

// QueryResponse is the /query success body.
type QueryResponse struct {
	QueryID int64 `json:"query_id"`
	// VirtualSeconds is the query's response time on the engine's
	// virtual clock (arrival to completion).
	VirtualSeconds float64      `json:"virtual_seconds"`
	Values         []PointValue `json:"values"`
}

// kernels maps wire names to kernels; the empty name is the default.
var kernels = map[string]jaws.Kernel{
	"":          jaws.KernelLag4,
	"lag4":      jaws.KernelLag4,
	"lag6":      jaws.KernelLag6,
	"lag8":      jaws.KernelLag8,
	"trilinear": jaws.KernelTrilinear,
	"none":      jaws.KernelNone,
}

// task is one accepted request traveling from the handler through the
// queue to a worker and back.
type task struct {
	ctx   context.Context
	id    jaws.QueryID
	job   *jaws.Job
	respc chan taskOutcome // cap 1: the worker's send never blocks
}

// taskOutcome is the worker's verdict: a result, or an HTTP status.
type taskOutcome struct {
	res    *jaws.QueryResult
	status int
	err    error
}

// handleQuery is POST /query: validate, gate, enqueue, wait, respond.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Inc()
	if s.draining.Load() {
		s.unavailable.Inc()
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return
	}

	// In-flight gate: bounds concurrent requests between accept and
	// response, including decode and queue wait.
	n := s.inflight.Add(1)
	defer func() { s.gInflight.Set(float64(s.inflight.Add(-1))) }()
	s.gInflight.Set(float64(n))
	if n > int64(s.cfg.MaxInFlight) {
		s.shedRequest(w, "too many requests in flight")
		return
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var in QueryRequest
	if err := dec.Decode(&in); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.rejectRequest(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
		} else {
			s.rejectRequest(w, http.StatusBadRequest, "malformed request: "+err.Error())
		}
		return
	}
	kernel, ok := kernels[in.Kernel]
	if !ok {
		s.rejectRequest(w, http.StatusBadRequest, fmt.Sprintf("unknown kernel %q", in.Kernel))
		return
	}
	if in.Step < 0 || in.Step >= s.cfg.Steps {
		s.rejectRequest(w, http.StatusBadRequest,
			fmt.Sprintf("step %d outside [0, %d)", in.Step, s.cfg.Steps))
		return
	}
	if len(in.Points) == 0 {
		s.rejectRequest(w, http.StatusBadRequest, "no points")
		return
	}
	if len(in.Points) > s.cfg.MaxPoints {
		s.rejectRequest(w, http.StatusBadRequest,
			fmt.Sprintf("%d points exceed the limit of %d", len(in.Points), s.cfg.MaxPoints))
		return
	}

	deadline := s.cfg.DefaultDeadline
	if in.TimeoutMS > 0 {
		deadline = time.Duration(in.TimeoutMS) * time.Millisecond
		if deadline > s.cfg.MaxDeadline {
			deadline = s.cfg.MaxDeadline
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	id := jaws.QueryID(s.nextID.Add(1))
	pts := make([]jaws.Position, len(in.Points))
	for i, p := range in.Points {
		pts[i] = jaws.Position{X: p.X, Y: p.Y, Z: p.Z}
	}
	q := &jaws.Query{ID: id, JobID: int64(id), User: 1, Step: in.Step, Points: pts, Kernel: kernel}
	t := &task{
		ctx:   ctx,
		id:    id,
		job:   &jaws.Job{ID: int64(id), User: 1, Type: jaws.Batched, Queries: []*jaws.Query{q}},
		respc: make(chan taskOutcome, 1),
	}

	start := time.Now()
	s.acceptMu.RLock()
	if s.draining.Load() {
		s.acceptMu.RUnlock()
		s.unavailable.Inc()
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return
	}
	select {
	case s.queue <- t:
		s.acceptMu.RUnlock()
		s.gQueue.Set(float64(len(s.queue)))
	default:
		s.acceptMu.RUnlock()
		s.shedRequest(w, "request queue full")
		return
	}

	// Accepted: a worker is now guaranteed to respond exactly once.
	out := <-t.respc
	switch {
	case out.res != nil:
		virt := (out.res.Completed - out.res.Query.Arrival).Seconds()
		s.served.Inc()
		s.hLatency.Observe(time.Since(start).Seconds())
		s.hVirtual.Observe(virt)
		resp := QueryResponse{QueryID: int64(id), VirtualSeconds: virt, Values: make([]PointValue, 0, len(out.res.Positions))}
		for _, p := range out.res.Positions {
			resp.Values = append(resp.Values, PointValue{
				Position: Point{X: p.Pos.X, Y: p.Pos.Y, Z: p.Pos.Z},
				Velocity: [3]float64{p.Val[0], p.Val[1], p.Val[2]},
				Pressure: p.Val[3],
			})
		}
		writeJSON(w, http.StatusOK, resp)
	case out.status == http.StatusGatewayTimeout:
		s.timeouts.Inc()
		http.Error(w, fmt.Sprintf("deadline exceeded after %v", deadline), http.StatusGatewayTimeout)
	default:
		s.errcount.Inc()
		msg := "backend unavailable"
		if out.err != nil {
			msg = "backend failed: " + out.err.Error()
		}
		http.Error(w, msg, out.status)
	}
}

// shedRequest answers 429 with the configured Retry-After hint.
func (s *Server) shedRequest(w http.ResponseWriter, msg string) {
	s.shed.Inc()
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, msg, http.StatusTooManyRequests)
}

// rejectRequest answers a 4xx validation failure.
func (s *Server) rejectRequest(w http.ResponseWriter, code int, msg string) {
	s.rejected.Inc()
	http.Error(w, msg, code)
}

// handleHealthz is the liveness probe: 200 while serving, 503 when
// draining or a backend died.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := s.healthy(); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// varz is the /varz body: the admission-control configuration plus the
// live Stats snapshot.
type varz struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Backends        int     `json:"backends"`
	QueueBound      int     `json:"queue_bound"`
	Workers         int     `json:"workers"`
	MaxInFlight     int     `json:"max_in_flight"`
	MaxBodyBytes    int64   `json:"max_body_bytes"`
	MaxPoints       int     `json:"max_points"`
	Steps           int     `json:"steps"`
	DefaultDeadline string  `json:"default_deadline"`
	MaxDeadline     string  `json:"max_deadline"`
	Stats           Stats   `json:"stats"`
}

// handleVarz exposes configuration and counters as JSON.
func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, varz{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Backends:        len(s.backends),
		QueueBound:      s.cfg.QueueBound,
		Workers:         s.cfg.Workers,
		MaxInFlight:     s.cfg.MaxInFlight,
		MaxBodyBytes:    s.cfg.MaxBodyBytes,
		MaxPoints:       s.cfg.MaxPoints,
		Steps:           s.cfg.Steps,
		DefaultDeadline: s.cfg.DefaultDeadline.String(),
		MaxDeadline:     s.cfg.MaxDeadline.String(),
		Stats:           s.Stats(),
	})
}

// handleMetrics is the Prometheus-style scrape endpoint over the
// server's registry (shared with the backends when the caller passed
// one registry to both).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.cfg.Reg.WriteText(w)
}

// writeJSON encodes v with a trailing newline.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
