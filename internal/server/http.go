package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"jaws"
	"jaws/internal/obs"
)

// Point is a position in the periodic simulation domain [0, 2π)³, the
// wire shape of jaws.Position.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
}

// QueryRequest is the /query request body. Unknown fields are rejected.
type QueryRequest struct {
	// Step is the stored time step, in [0, Steps).
	Step int `json:"step"`
	// Kernel names the interpolation kernel: none, trilinear, lag4
	// (default), lag6, lag8.
	Kernel string `json:"kernel,omitempty"`
	// Points are the evaluation positions (at most MaxPoints).
	Points []Point `json:"points"`
	// TimeoutMS overrides the server's default per-request deadline,
	// capped by MaxDeadline. Zero means the default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// DerivSteps, when ≥2, asks for the temporal derivative ∂/∂t instead
	// of the field value: the points are evaluated at DerivSteps adjacent
	// steps starting at Step and finite-differenced. The chain must fit
	// the stored range (step+deriv_steps ≤ steps) and is capped at
	// MaxDerivSteps. 0 (and 1) means a plain single-step query.
	DerivSteps int `json:"deriv_steps,omitempty"`
}

// MaxDerivSteps bounds a derivative query's chain: each extra step
// multiplies the query's atom footprint, so the bound plays the same
// admission-control role as MaxPoints.
const MaxDerivSteps = 8

// PointValue is one evaluated position of a QueryResponse.
type PointValue struct {
	Position Point      `json:"position"`
	Velocity [3]float64 `json:"velocity"`
	Pressure float64    `json:"pressure"`
}

// QueryResponse is the /query success body.
type QueryResponse struct {
	QueryID int64 `json:"query_id"`
	// VirtualSeconds is the query's response time on the engine's
	// virtual clock (arrival to completion).
	VirtualSeconds float64      `json:"virtual_seconds"`
	Values         []PointValue `json:"values"`
}

// kernels maps wire names to kernels; the empty name is the default.
var kernels = map[string]jaws.Kernel{
	"":          jaws.KernelLag4,
	"lag4":      jaws.KernelLag4,
	"lag6":      jaws.KernelLag6,
	"lag8":      jaws.KernelLag8,
	"trilinear": jaws.KernelTrilinear,
	"none":      jaws.KernelNone,
}

// task is one accepted request traveling from the handler through the
// queue to a worker and back.
type task struct {
	ctx context.Context
	id  jaws.QueryID
	job *jaws.Job
	// rs is the request's wall-clock span (nil when request tracking is
	// off). Ownership travels with the task: the worker marks the queued,
	// dispatch, and execute phases, then the respc send returns the span
	// to the handler for Finish.
	rs    *obs.ReqSpan
	respc chan taskOutcome // cap 1: the worker's send never blocks
}

// taskOutcome is the worker's verdict: a result, or an HTTP status.
type taskOutcome struct {
	res    *jaws.QueryResult
	status int
	err    error
}

// handleQuery is POST /query: validate, gate, enqueue, wait, respond.
// With request tracking on, every wall-clock transition of an admitted
// request is charged to exactly one ReqSpan phase: handler entry →
// admission is validate, the worker marks queued/dispatch/execute, and
// Finish charges the response write — so the phases sum to the span's
// Wall by construction.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Inc()
	var rs *obs.ReqSpan
	if s.reqTrack {
		rs = obs.NewReqSpan()
	}
	t0 := time.Now()
	if s.draining.Load() {
		s.unavailable.Inc()
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return
	}

	// In-flight gate: bounds concurrent requests between accept and
	// response, including decode and queue wait.
	n := s.inflight.Add(1)
	defer func() { s.gInflight.Set(float64(s.inflight.Add(-1))) }()
	s.gInflight.Set(float64(n))
	if n > int64(s.cfg.MaxInFlight) {
		s.shedRequest(w, "", "too many requests in flight")
		return
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var in QueryRequest
	if err := dec.Decode(&in); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.rejectRequest(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
		} else {
			s.rejectRequest(w, http.StatusBadRequest, "malformed request: "+err.Error())
		}
		return
	}
	kernel, ok := kernels[in.Kernel]
	if !ok {
		s.rejectRequest(w, http.StatusBadRequest, fmt.Sprintf("unknown kernel %q", in.Kernel))
		return
	}
	if in.Step < 0 || in.Step >= s.cfg.Steps {
		s.rejectRequest(w, http.StatusBadRequest,
			fmt.Sprintf("step %d outside [0, %d)", in.Step, s.cfg.Steps))
		return
	}
	if len(in.Points) == 0 {
		s.rejectRequest(w, http.StatusBadRequest, "no points")
		return
	}
	if len(in.Points) > s.cfg.MaxPoints {
		s.rejectRequest(w, http.StatusBadRequest,
			fmt.Sprintf("%d points exceed the limit of %d", len(in.Points), s.cfg.MaxPoints))
		return
	}
	if in.DerivSteps < 0 || in.DerivSteps == 1 || in.DerivSteps > MaxDerivSteps {
		s.rejectRequest(w, http.StatusBadRequest,
			fmt.Sprintf("deriv_steps %d invalid: want 0 (plain query) or 2..%d", in.DerivSteps, MaxDerivSteps))
		return
	}
	if in.DerivSteps > 1 && in.Step+in.DerivSteps > s.cfg.Steps {
		s.rejectRequest(w, http.StatusBadRequest,
			fmt.Sprintf("derivative chain [%d, %d) exceeds the stored %d steps", in.Step, in.Step+in.DerivSteps, s.cfg.Steps))
		return
	}

	deadline := s.cfg.DefaultDeadline
	if in.TimeoutMS > 0 {
		deadline = time.Duration(in.TimeoutMS) * time.Millisecond
		if deadline > s.cfg.MaxDeadline {
			deadline = s.cfg.MaxDeadline
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	// Validation passed: consume a query ID and derive the request ID
	// from it. The ID is returned to the client immediately (even if the
	// queue then sheds) and propagated into the engine on the query, so
	// the engine's virtual-clock span carries it (Span.Req) and
	// cmd/jawsreport can stitch both sides of the request back together.
	id := jaws.QueryID(s.nextID.Add(1))
	rid := obs.RequestID(s.cfg.ReqIDSeed, int64(id))
	w.Header().Set("X-Jaws-Request-Id", rid)
	rs.SetRequest(rid, int64(id))
	pts := make([]jaws.Position, len(in.Points))
	for i, p := range in.Points {
		pts[i] = jaws.Position{X: p.X, Y: p.Y, Z: p.Z}
	}
	q := &jaws.Query{ID: id, JobID: int64(id), User: 1, Step: in.Step, DerivSteps: in.DerivSteps, Points: pts, Kernel: kernel, ReqID: rid}
	t := &task{
		ctx:   ctx,
		id:    id,
		job:   &jaws.Job{ID: int64(id), User: 1, Type: jaws.Batched, Queries: []*jaws.Query{q}},
		rs:    rs,
		respc: make(chan taskOutcome, 1),
	}

	start := time.Now()
	s.acceptMu.RLock()
	if s.draining.Load() {
		s.acceptMu.RUnlock()
		s.unavailable.Inc()
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		s.emitSpan(rs, http.StatusServiceUnavailable)
		return
	}
	// Close the validate phase and record the queue depth before the
	// send: after the send the worker owns the span.
	rs.Admit(len(s.queue))
	select {
	case s.queue <- t:
		s.acceptMu.RUnlock()
		s.gQueue.Set(float64(len(s.queue)))
	default:
		s.acceptMu.RUnlock()
		s.shedRequest(w, rid, "request queue full")
		s.emitSpan(rs, http.StatusTooManyRequests)
		return
	}

	// Accepted: a worker is now guaranteed to respond exactly once, and
	// the respc receive hands span ownership back to this goroutine.
	out := <-t.respc
	var status int
	switch {
	case out.res != nil:
		status = http.StatusOK
		virt := (out.res.Completed - out.res.Query.Arrival).Seconds()
		s.served.Inc()
		s.hLatency.Observe(time.Since(start).Seconds())
		s.hVirtual.Observe(virt)
		resp := QueryResponse{QueryID: int64(id), VirtualSeconds: virt, Values: make([]PointValue, 0, len(out.res.Positions))}
		for _, p := range out.res.Positions {
			resp.Values = append(resp.Values, PointValue{
				Position: Point{X: p.Pos.X, Y: p.Pos.Y, Z: p.Pos.Z},
				Velocity: [3]float64{p.Val[0], p.Val[1], p.Val[2]},
				Pressure: p.Val[3],
			})
		}
		writeJSON(w, http.StatusOK, resp)
	case out.status == http.StatusGatewayTimeout:
		status = http.StatusGatewayTimeout
		s.timeouts.Inc()
		http.Error(w, fmt.Sprintf("deadline exceeded after %v", deadline), http.StatusGatewayTimeout)
	default:
		status = out.status
		s.errcount.Inc()
		msg := "backend unavailable"
		if out.err != nil {
			msg = "backend failed: " + out.err.Error()
		}
		http.Error(w, msg, out.status)
	}

	// The response bytes are written: close the span (charging the write
	// phase) and fan the request out to the observers.
	s.emitSpan(rs, status)
	wall := time.Since(t0)
	if rs != nil {
		wall = rs.Wall
	}
	s.cfg.SLO.Observe(wall, status != http.StatusOK)
	if lg := s.cfg.Log; lg.Enabled() {
		lg.Info("request finished",
			"request_id", rid, "query", int64(id), "status", status,
			"wall_ms", float64(wall)/float64(time.Millisecond),
			"queue_depth", len(s.queue))
	}
}

// emitSpan finishes rs with the HTTP status the request was answered
// with and fans it out to the span aggregator and the tracer. Nil rs
// (request tracking off) is a no-op.
func (s *Server) emitSpan(rs *obs.ReqSpan, status int) {
	if rs == nil {
		return
	}
	rs.Finish(status)
	s.cfg.ReqSpans.Add(*rs)
	s.cfg.Trace.ReqSpanDone(*rs)
}

// shedRequest answers 429 with the configured Retry-After hint. rid is
// the request ID when one was already assigned ("" for the in-flight
// gate, which sheds before validation).
func (s *Server) shedRequest(w http.ResponseWriter, rid, msg string) {
	s.shed.Inc()
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, msg, http.StatusTooManyRequests)
	if lg := s.cfg.Log; lg.Enabled() {
		lg.Warn("request shed", "request_id", rid, "reason", msg)
	}
}

// rejectRequest answers a 4xx validation failure. Rejections happen
// before a request ID is assigned, so their log lines carry an empty
// request_id.
func (s *Server) rejectRequest(w http.ResponseWriter, code int, msg string) {
	s.rejected.Inc()
	http.Error(w, msg, code)
	if lg := s.cfg.Log; lg.Enabled() {
		lg.Warn("request rejected", "request_id", "", "status", code, "reason", msg)
	}
}

// handleHealthz is the liveness probe: 200 while serving, 503 when
// draining or a backend died.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := s.healthy(); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// varz is the /varz body: the admission-control configuration plus the
// live Stats snapshot.
type varz struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Backends        int     `json:"backends"`
	QueueBound      int     `json:"queue_bound"`
	Workers         int     `json:"workers"`
	MaxInFlight     int     `json:"max_in_flight"`
	MaxBodyBytes    int64   `json:"max_body_bytes"`
	MaxPoints       int     `json:"max_points"`
	Steps           int     `json:"steps"`
	DefaultDeadline string  `json:"default_deadline"`
	MaxDeadline     string  `json:"max_deadline"`
	// TailPolicy is the spec decorating the backends' schedulers; omitted
	// when the nodes run undecorated.
	TailPolicy string `json:"tail_policy,omitempty"`
	Stats      Stats  `json:"stats"`
	// SLO is the rolling-window objective snapshot; omitted when no
	// tracker is configured.
	SLO *obs.SLOSnapshot `json:"slo,omitempty"`
	// Sched is the decision flight recorder's live aggregate; omitted
	// when no recorder is configured.
	Sched *schedVarz `json:"sched,omitempty"`
}

// schedVarz is the /varz scheduler section: the flight recorder's
// cumulative aggregates plus derived rates and the tracer's drop total.
type schedVarz struct {
	obs.FlightSnapshot
	// DecisionsPerSec is the wall-clock decision rate since the server
	// started (the engines decide on a virtual clock; this is the
	// observable recording rate).
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	// TraceDropped is the tracer's ring+sink drop total (also exported as
	// jaws_trace_dropped_total).
	TraceDropped int64 `json:"trace_dropped"`
}

// handleVarz exposes configuration and counters as JSON.
func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	var slo *obs.SLOSnapshot
	if s.cfg.SLO != nil {
		snap := s.cfg.SLO.Snapshot()
		slo = &snap
	}
	var sv *schedVarz
	if s.cfg.Flight.Enabled() {
		sv = &schedVarz{
			FlightSnapshot: s.cfg.Flight.Snapshot(),
			TraceDropped:   s.refreshTraceDropped(),
		}
		if up := time.Since(s.start).Seconds(); up > 0 {
			sv.DecisionsPerSec = float64(sv.Decisions) / up
		}
	}
	writeJSON(w, http.StatusOK, varz{
		SLO:             slo,
		Sched:           sv,
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Backends:        len(s.backends),
		QueueBound:      s.cfg.QueueBound,
		Workers:         s.cfg.Workers,
		MaxInFlight:     s.cfg.MaxInFlight,
		MaxBodyBytes:    s.cfg.MaxBodyBytes,
		MaxPoints:       s.cfg.MaxPoints,
		Steps:           s.cfg.Steps,
		DefaultDeadline: s.cfg.DefaultDeadline.String(),
		MaxDeadline:     s.cfg.MaxDeadline.String(),
		TailPolicy:      s.cfg.TailPolicy,
		Stats:           s.Stats(),
	})
}

// handleMetrics is the Prometheus-style scrape endpoint over the
// server's registry (shared with the backends when the caller passed
// one registry to both).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Refresh the SLO gauges from the rolling window at scrape time so
	// the exposition always reflects the current window, not the last
	// request.
	if s.cfg.SLO != nil {
		snap := s.cfg.SLO.Snapshot()
		s.gSLOCompliance.Set(snap.Compliance)
		s.gSLOBurn.Set(snap.BurnRate)
		s.gSLOBudget.Set(snap.BudgetRemaining)
		s.gSLOGood.Set(float64(snap.Good))
		s.gSLOBad.Set(float64(snap.Bad))
	}
	s.refreshTraceDropped()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.cfg.Reg.WriteText(w)
}

// writeJSON encodes v with a trailing newline.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
