package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"jaws"
	"jaws/internal/obs"
)

// obsBundle is the full observability wiring a test server can run with.
type obsBundle struct {
	trace *obs.Tracer
	spans *obs.ReqSpanAgg
	logs  *strings.Builder
	slo   *obs.SLOTracker
}

func withObs(seed int64) (*obsBundle, func(*Config)) {
	b := &obsBundle{
		trace: obs.NewTracer(0, nil),
		spans: obs.NewReqSpanAgg(),
		logs:  &strings.Builder{},
		slo:   obs.NewSLOTracker(5*time.Second, 0.99, time.Minute),
	}
	return b, func(c *Config) {
		c.Trace = b.trace
		c.ReqSpans = b.spans
		c.Log = obs.NewLogger(b.logs)
		c.SLO = b.slo
		c.ReqIDSeed = seed
	}
}

// TestRequestIDHeaderDeterministic pins the propagated ID: the response
// header carries obs.RequestID(seed, n) for the n-th accepted request.
func TestRequestIDHeaderDeterministic(t *testing.T) {
	_, mutate := withObs(7)
	_, ts := newTestServer(t, []Backend{newFakeBackend()}, mutate)
	for n := int64(1); n <= 3; n++ {
		resp := postQuery(t, ts.URL, okBody)
		resp.Body.Close()
		if got, want := resp.Header.Get("X-Jaws-Request-Id"), obs.RequestID(7, n); got != want {
			t.Fatalf("request %d: X-Jaws-Request-Id = %q, want %q", n, got, want)
		}
	}
}

// TestRequestSpanLifecycle checks a served request produces one span with
// the attribution invariant intact, a matching trace event, an SLO
// observation, and a structured log line carrying the request ID.
func TestRequestSpanLifecycle(t *testing.T) {
	b, mutate := withObs(1)
	_, ts := newTestServer(t, []Backend{newFakeBackend()}, mutate)
	resp := postQuery(t, ts.URL, okBody)
	resp.Body.Close()
	rid := resp.Header.Get("X-Jaws-Request-Id")

	spans := b.spans.Spans()
	if len(spans) != 1 {
		t.Fatalf("aggregator holds %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.ID != rid || sp.Query != 1 || sp.Status != http.StatusOK {
		t.Fatalf("span %+v does not match request %s", sp, rid)
	}
	if sp.PhaseSum() != sp.Wall || sp.Wall <= 0 {
		t.Fatalf("attribution broken: phases %v != wall %v", sp.PhaseSum(), sp.Wall)
	}

	var traced int
	for _, ev := range b.trace.Events() {
		if ev.Kind == obs.KindReqSpan {
			traced++
			if ev.Req.ID != rid {
				t.Fatalf("trace event carries ID %q, want %q", ev.Req.ID, rid)
			}
		}
	}
	if traced != 1 {
		t.Fatalf("tracer saw %d reqspan events, want 1", traced)
	}

	if snap := b.slo.Snapshot(); snap.Good != 1 || snap.Bad != 0 {
		t.Fatalf("slo did not observe the request: %+v", snap)
	}
	logLine := b.logs.String()
	if !strings.Contains(logLine, rid) || !strings.Contains(logLine, `"msg":"request finished"`) {
		t.Fatalf("log line missing request context: %s", logLine)
	}
}

// TestRequestSpanConservationConcurrent hammers the traced server from
// many clients (run under -race by make race-obs) and checks every span
// individually conserves its wall clock and IDs stay unique.
func TestRequestSpanConservationConcurrent(t *testing.T) {
	b, mutate := withObs(3)
	_, ts := newTestServer(t, []Backend{newFakeBackend()}, func(c *Config) {
		mutate(c)
		c.Workers = 4
		c.QueueBound = 64
		c.MaxInFlight = 1024
	})
	const clients, per = 8, 5
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				resp := postQuery(t, ts.URL, okBody)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	spans := b.spans.Spans()
	if len(spans) != clients*per {
		t.Fatalf("recorded %d spans, want %d", len(spans), clients*per)
	}
	seen := make(map[string]bool, len(spans))
	for _, sp := range spans {
		if sp.PhaseSum() != sp.Wall {
			t.Fatalf("span %s: phases %v != wall %v", sp.ID, sp.PhaseSum(), sp.Wall)
		}
		if seen[sp.ID] {
			t.Fatalf("duplicate request ID %s", sp.ID)
		}
		seen[sp.ID] = true
	}
	sum := obs.SummarizeReqSpans(spans, 3)
	if sum.OK != clients*per || sum.Phases.Sum() != sum.TotalWall {
		t.Fatalf("summary lost time or requests: %+v", sum)
	}
}

// TestShedCarriesRequestID: a queue-full shed happens after ID
// assignment, so the 429 still returns the header and the span records
// the shed status.
func TestShedCarriesRequestID(t *testing.T) {
	fake := newFakeBackend()
	fake.hold = true
	b, mutate := withObs(5)
	srv, ts := newTestServer(t, []Backend{fake}, func(c *Config) {
		mutate(c)
		c.Workers = 1
		c.QueueBound = 1
	})
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp := postQuery(t, ts.URL, okBody)
			resp.Body.Close()
			done <- resp.StatusCode
		}()
		if i == 0 {
			waitFor(t, "worker to hold r1", func() bool { return fake.submittedCount() == 1 })
		} else {
			waitFor(t, "queue to fill", func() bool { return srv.Stats().QueueDepth == 1 })
		}
	}
	resp := postQuery(t, ts.URL, okBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("X-Jaws-Request-Id") == "" {
		t.Fatal("shed response lost its request ID")
	}
	fake.release()
	<-done
	<-done

	var shedSpans int
	for _, sp := range b.spans.Spans() {
		if sp.Status == http.StatusTooManyRequests {
			shedSpans++
			if sp.PhaseSum() != sp.Wall {
				t.Fatalf("shed span broke conservation: %+v", sp)
			}
		}
	}
	if shedSpans != 1 {
		t.Fatalf("recorded %d shed spans, want 1", shedSpans)
	}
	if !strings.Contains(b.logs.String(), "request shed") {
		t.Fatal("shed not logged")
	}
}

// TestEngineSpanCarriesRequestID runs a real session behind the server
// and checks the engine's virtual-clock span is stamped with the HTTP
// request ID — the stitching key jawsreport joins on.
func TestEngineSpanCarriesRequestID(t *testing.T) {
	var sink bytes.Buffer
	trace := obs.NewTracer(0, &sink)
	sess, err := jaws.OpenSession(jaws.Config{
		Space:      jaws.Space{GridSide: 64, AtomSide: 32},
		Steps:      4,
		CacheAtoms: 16,
		Obs:        &jaws.Obs{Trace: trace},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, []Backend{sess}, func(c *Config) {
		c.Trace = trace
		c.ReqIDSeed = 11
	})
	resp := postQuery(t, ts.URL, okBody)
	resp.Body.Close()
	rid := resp.Header.Get("X-Jaws-Request-Id")
	if rid == "" {
		t.Fatal("no request ID returned")
	}

	var engineSpan, reqSpan bool
	for _, ev := range trace.Events() {
		switch ev.Kind {
		case obs.KindSpan:
			if ev.Span.Req == rid {
				engineSpan = true
			}
		case obs.KindReqSpan:
			if ev.Req.ID == rid {
				reqSpan = true
			}
		}
	}
	if !engineSpan {
		t.Errorf("no engine span carries request ID %s", rid)
	}
	if !reqSpan {
		t.Errorf("no request span carries request ID %s", rid)
	}
}

// TestSLOExposition checks /varz carries the SLO snapshot and /metrics
// the jaws_slo_* gauges with help text.
func TestSLOExposition(t *testing.T) {
	_, mutate := withObs(1)
	_, ts := newTestServer(t, []Backend{newFakeBackend()}, mutate)
	resp := postQuery(t, ts.URL, okBody)
	resp.Body.Close()

	vresp, err := http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var v varz
	if err := json.NewDecoder(vresp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.SLO == nil || v.SLO.Good != 1 || v.SLO.Compliance != 1 {
		t.Fatalf("varz slo = %+v, want 1 good observation", v.SLO)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	for _, want := range []string{
		"jaws_slo_compliance 1",
		"jaws_slo_good 1",
		"jaws_slo_bad 0",
		"# HELP jaws_slo_burn_rate",
		"# HELP jaws_server_requests_total",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestUntracedPathUnchanged: with no observers configured the serving
// path must not allocate spans or emit headers differently than before —
// the header is still set (IDs cost nothing) but no spans are recorded.
func TestUntracedPathUnchanged(t *testing.T) {
	srv, ts := newTestServer(t, []Backend{newFakeBackend()}, nil)
	resp := postQuery(t, ts.URL, okBody)
	resp.Body.Close()
	if resp.Header.Get("X-Jaws-Request-Id") == "" {
		t.Fatal("request ID header must be set even without tracing")
	}
	if srv.reqTrack {
		t.Fatal("reqTrack on without a tracer or aggregator")
	}
}
