package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"jaws"
)

// slowBackend throttles Submit so a burst of clients reliably overwhelms
// a small queue: the worker pool is pinned inside Submit long enough for
// the admission queue to fill and shedding to kick in.
type slowBackend struct {
	Backend
	delay time.Duration
}

func (s slowBackend) Submit(jobs ...*jaws.Job) error {
	time.Sleep(s.delay)
	return s.Backend.Submit(jobs...)
}

func openTestSession(t *testing.T) *jaws.Session {
	t.Helper()
	sess, err := jaws.OpenSession(jaws.Config{
		Space:      jaws.Space{GridSide: 64, AtomSide: 32},
		Steps:      4,
		Seed:       3,
		CacheAtoms: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// fire sends one query per client through a shared barrier and tallies
// the responses by status code, recording served query IDs.
func fire(t *testing.T, url string, clients int) (byStatus map[int]int, ids map[int64]int) {
	t.Helper()
	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		start = make(chan struct{})
	)
	byStatus = make(map[int]int)
	ids = make(map[int64]int)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := http.Post(url+"/query", "application/json",
				strings.NewReader(`{"step":1,"points":[{"x":1,"y":2,"z":3}]}`))
			if err != nil {
				mu.Lock()
				byStatus[-1]++
				mu.Unlock()
				return
			}
			defer resp.Body.Close()
			var out QueryResponse
			if resp.StatusCode == http.StatusOK {
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Errorf("decoding 200 body: %v", err)
				}
			}
			mu.Lock()
			byStatus[resp.StatusCode]++
			if resp.StatusCode == http.StatusOK {
				ids[out.QueryID]++
			}
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	return byStatus, ids
}

// TestConcurrentClientsShedExactlyOnce is the acceptance scenario: 64
// concurrent clients against a queue bound of 8 and two throttled
// workers. Some requests must be shed with 429; every accepted request
// is served exactly once (unique query IDs, engine completion count
// equal to the number of 200s); nothing is lost or double-served.
func TestConcurrentClientsShedExactlyOnce(t *testing.T) {
	sess := openTestSession(t)
	srv, err := New(Config{
		Backends:    []Backend{slowBackend{Backend: sess, delay: 20 * time.Millisecond}},
		QueueBound:  8,
		Workers:     2,
		MaxInFlight: 1 << 20, // only the queue sheds in this scenario
		Steps:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 64
	byStatus, ids := fire(t, ts.URL, clients)

	served, shed := byStatus[http.StatusOK], byStatus[http.StatusTooManyRequests]
	if served+shed != clients {
		t.Fatalf("status histogram %v: 200s+429s = %d, want %d", byStatus, served+shed, clients)
	}
	if served == 0 || shed == 0 {
		t.Fatalf("status histogram %v: want both served and shed requests", byStatus)
	}
	for id, n := range ids {
		if n != 1 {
			t.Errorf("query %d served %d times", id, n)
		}
	}
	if len(ids) != served {
		t.Errorf("%d distinct query IDs for %d served requests", len(ids), served)
	}

	reports := srv.Shutdown()
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(reports))
	}
	if reports[0].Completed != served {
		t.Errorf("engine completed %d queries, server served %d — accepted work was lost or duplicated",
			reports[0].Completed, served)
	}
	st := srv.Stats()
	if st.Served != int64(served) || st.Shed != int64(shed) {
		t.Errorf("stats %+v disagree with client tally (%d served, %d shed)", st, served, shed)
	}
	if st.Timeouts != 0 || st.Errors != 0 || st.LateResults != 0 {
		t.Errorf("unexpected failures in stats %+v", st)
	}
}

// TestGracefulDrainServesAccepted shuts the server down while requests
// are queued and in flight: every accepted request must still be served
// (no request dropped after accept), and only new work is refused.
func TestGracefulDrainServesAccepted(t *testing.T) {
	sess := openTestSession(t)
	srv, err := New(Config{
		Backends:   []Backend{slowBackend{Backend: sess, delay: 30 * time.Millisecond}},
		QueueBound: 8,
		Workers:    2,
		Steps:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const accepted = 6 // 2 workers + 4 queued, all within bounds
	codes := make(chan int, accepted)
	for i := 0; i < accepted; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/query", "application/json",
				strings.NewReader(`{"step":1,"points":[{"x":1,"y":2,"z":3}]}`))
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	waitFor(t, "all requests in flight", func() bool {
		return srv.Stats().InFlight == accepted
	})

	reports := srv.Shutdown()

	for i := 0; i < accepted; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("accepted request finished with %d after drain, want 200", code)
		}
	}
	if len(reports) != 1 || reports[0].Completed != accepted {
		t.Errorf("drained engine report %+v, want %d completed", reports, accepted)
	}

	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"step":1,"points":[{"x":1,"y":2,"z":3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain query got %d, want 503", resp.StatusCode)
	}
}

// TestManyClientsAgainstReplicaPool spreads a burst over three session
// replicas with a roomy queue: everything is served, exactly once, with
// completions distributed across all backends.
func TestManyClientsAgainstReplicaPool(t *testing.T) {
	backs := make([]Backend, 3)
	for i := range backs {
		backs[i] = openTestSession(t)
	}
	srv, err := New(Config{Backends: backs, QueueBound: 128, Workers: 12, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 48
	byStatus, ids := fire(t, ts.URL, clients)
	if byStatus[http.StatusOK] != clients {
		t.Fatalf("status histogram %v, want all %d served", byStatus, clients)
	}
	if len(ids) != clients {
		t.Fatalf("%d distinct query IDs, want %d", len(ids), clients)
	}

	reports := srv.Shutdown()
	total := 0
	for _, rep := range reports {
		if rep.Completed == 0 {
			t.Error("a replica served nothing: round robin is not spreading load")
		}
		total += rep.Completed
	}
	if total != clients {
		t.Errorf("replicas completed %d queries in total, want %d", total, clients)
	}
}
