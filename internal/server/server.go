// Package server is the serving layer of the reproduction: the Fig. 7
// "web-service front end" promoted from a demo handler into a real
// subsystem. A Server exposes an HTTP query service over one or more
// long-lived jaws sessions (the engine facade), with the admission
// control and backpressure a batch scheduler needs to face interactive
// traffic:
//
//   - a bounded request queue feeding a fixed worker pool: accepted work
//     is never dropped, and the engine sees at most Workers concurrent
//     jobs per backend;
//   - load shedding: when the queue is full (or the in-flight gate is
//     exceeded) requests are rejected immediately with 429 and a
//     Retry-After hint instead of piling up latency;
//   - per-request deadlines: every query carries a wall-clock deadline
//     (client-settable via timeout_ms, capped by MaxDeadline); expiry
//     answers 504 and the eventual engine result is discarded;
//   - graceful drain: Shutdown stops admission, serves every request
//     already accepted, then closes the backends and collects their
//     final reports.
//
// Everything is instrumented through internal/obs (queue-depth and
// in-flight gauges, shed/timeout/error counters, wall- and virtual-time
// latency histograms) and the layer is fault-transparent: a backend
// session killed by an internal/fault crash schedule turns into 502s for
// its waiters and a degraded /healthz, never a hang, so chaos schedules
// exercise the service path end to end.
package server

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"jaws"
	"jaws/internal/obs"
)

// Backend is the query-execution engine behind a Server: the subset of
// *jaws.Session the serving layer needs. Requests are routed across
// backends round-robin, skipping dead ones.
type Backend interface {
	// Submit schedules jobs at the backend's current virtual time. It
	// must return an error (not block) once the backend is closed or dead.
	Submit(jobs ...*jaws.Job) error
	// Results streams completed queries; the channel closes when the
	// backend stops (cleanly or on a fault).
	Results() <-chan *jaws.QueryResult
	// Close drains in-flight work and returns the final report (nil if
	// the backend died beforehand).
	Close() *jaws.Report
	// Err reports a backend failure (nil in normal operation).
	Err() error
}

// Config parameterizes a Server. The zero value of every knob gets a
// production-shaped default; Backends is the only required field.
type Config struct {
	// Backends are the sessions serving queries; at least one.
	Backends []Backend
	// Reg receives the server's metrics (and is served at /metrics). Nil
	// allocates a private registry so instrumentation is always on.
	Reg *obs.Registry
	// QueueBound is the admission queue capacity; default 64. Requests
	// arriving with the queue full are shed with 429.
	QueueBound int
	// Workers is the worker-pool size: the maximum number of queries
	// concurrently submitted to the backends; default 8.
	Workers int
	// MaxInFlight caps requests between accept and response (including
	// decode and queue wait); beyond it requests are shed with 429.
	// Default: 4 × (QueueBound + Workers).
	MaxInFlight int
	// MaxBodyBytes bounds the /query request body; default 1 MiB.
	// Oversized bodies are rejected with 413.
	MaxBodyBytes int64
	// MaxPoints bounds positions per query; default 4096.
	MaxPoints int
	// Steps is the number of stored time steps: a query's step must lie
	// in [0, Steps). Default 31 (the paper's store).
	Steps int
	// DefaultDeadline is the per-request deadline when the client sends
	// no timeout_ms; default 30 s.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines; default 2 min.
	MaxDeadline time.Duration
	// RetryAfter is the hint attached to 429 responses; default 1 s.
	RetryAfter time.Duration

	// Trace, when non-nil, receives one "reqspan" event per request that
	// was assigned an ID (usually the same tracer the backends write
	// engine events to, so one JSONL file carries both sides).
	Trace *obs.Tracer
	// ReqSpans, when non-nil, collects finished request spans for
	// end-of-run summaries (percentiles, attribution, worst-k tail).
	ReqSpans *obs.ReqSpanAgg
	// Log, when non-nil, receives structured request logs (one JSON line
	// per lifecycle event, each carrying the request_id).
	Log *obs.Logger
	// SLO, when non-nil, tracks latency-objective compliance over the
	// accepted requests; exposed through /varz and jaws_slo_* gauges.
	SLO *obs.SLOTracker
	// ReqIDSeed seeds the deterministic request-ID derivation (see
	// obs.RequestID): for a fixed seed the same acceptance order yields
	// the same X-Jaws-Request-Id values.
	ReqIDSeed int64
	// Flight, when non-nil, is the decision flight recorder the backends
	// record into; the server exposes its live aggregates at /varz
	// (decision rate, pass-over counts by cause) and its jaws_sched_*
	// counters at /metrics.
	Flight *obs.FlightRecorder
	// TailPolicy is the tail-policy spec the backends' schedulers were
	// decorated with (see sched.ParsePolicySpec); informational, exposed
	// at /varz so operators can tell which policy stack a node runs.
	TailPolicy string
}

func (c *Config) applyDefaults() {
	if c.QueueBound <= 0 {
		c.QueueBound = 64
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * (c.QueueBound + c.Workers)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxPoints <= 0 {
		c.MaxPoints = 4096
	}
	if c.Steps <= 0 {
		c.Steps = 31
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
}

// backendState pairs a backend with its liveness signal.
type backendState struct {
	be Backend
	// dead closes when the backend's result stream ends. During a drain
	// that is normal shutdown; at any other time the backend crashed.
	dead chan struct{}
}

// Server is the HTTP front end. Create with New, expose Handler on a
// listener, and call Shutdown to drain.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	backends []*backendState
	queue    chan *task
	start    time.Time

	nextID   atomic.Int64 // query/job ID source, unique across backends
	rr       atomic.Int64 // round-robin backend cursor
	inflight atomic.Int64
	draining atomic.Bool

	// acceptMu serializes enqueues against Shutdown's close(queue): an
	// enqueue holds the read side, the drain flag flips under the write
	// side, so no send can race the close.
	acceptMu sync.RWMutex
	demux    sync.Map // jaws.QueryID → chan *jaws.QueryResult (cap 1)

	workerWG     sync.WaitGroup
	demuxWG      sync.WaitGroup
	shutdownOnce sync.Once
	reports      []*jaws.Report

	// reqTrack is true when a tracer or span aggregator is configured:
	// only then does the handler allocate a ReqSpan per request, keeping
	// the disabled serving path allocation-free.
	reqTrack bool

	// Request accounting, also exported through cfg.Reg and /varz.
	requests, served, shed, rejected *obs.Counter
	timeouts, errcount, unavailable  *obs.Counter
	late                             *obs.Counter
	gQueue, gInflight                *obs.Gauge
	hLatency, hVirtual               *obs.Histogram

	// SLO exposition gauges; nil unless cfg.SLO is set. Refreshed from
	// the tracker's rolling window at scrape time.
	gSLOCompliance, gSLOBurn, gSLOBudget *obs.Gauge
	gSLOGood, gSLOBad                    *obs.Gauge

	// traceDropped mirrors the tracer's ring+sink drop totals as a
	// counter; nil unless cfg.Trace is set. Refreshed (delta-added, so the
	// counter stays monotonic) at scrape time.
	traceDropped *obs.Counter
}

// serverMetricHelp is the # HELP text for the serving layer's metrics.
var serverMetricHelp = map[string]string{
	"jaws_server_requests_total":     "HTTP /query requests received.",
	"jaws_server_served_total":       "Requests answered 200 with query results.",
	"jaws_server_shed_total":         "Requests shed with 429 (queue full or in-flight gate).",
	"jaws_server_rejected_total":     "Requests rejected with 4xx validation failures.",
	"jaws_server_timeouts_total":     "Requests that exceeded their deadline (504).",
	"jaws_server_errors_total":       "Requests failed by a backend (5xx).",
	"jaws_server_unavailable_total":  "Requests refused while draining (503).",
	"jaws_server_late_results_total": "Engine results that arrived after their waiter gave up.",
	"jaws_server_queue_depth":        "Admission queue depth.",
	"jaws_server_inflight":           "Requests between accept and response.",
	"jaws_server_latency_seconds":    "Wall-clock request latency from admission to outcome.",
	"jaws_server_virtual_seconds":    "Query response time on the engine's virtual clock.",
	"jaws_slo_compliance":            "Fraction of windowed requests meeting the latency target.",
	"jaws_slo_burn_rate":             "Error-budget burn rate (1 = burning exactly at budget).",
	"jaws_slo_budget_remaining":      "Fraction of the windowed error budget left.",
	"jaws_slo_good":                  "Requests in the window that met the objective.",
	"jaws_slo_bad":                   "Requests in the window that missed the objective.",
	"jaws_trace_dropped_total":       "Trace events lost to ring overwrites or sink write failures.",
}

// New validates cfg, starts the worker pool and the per-backend result
// demultiplexers, and returns a servable Server.
func New(cfg Config) (*Server, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("server: at least one backend required")
	}
	cfg.applyDefaults()
	if cfg.Reg == nil {
		cfg.Reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		queue: make(chan *task, cfg.QueueBound),
		start: time.Now(),

		requests:    cfg.Reg.Counter("jaws_server_requests_total"),
		served:      cfg.Reg.Counter("jaws_server_served_total"),
		shed:        cfg.Reg.Counter("jaws_server_shed_total"),
		rejected:    cfg.Reg.Counter("jaws_server_rejected_total"),
		timeouts:    cfg.Reg.Counter("jaws_server_timeouts_total"),
		errcount:    cfg.Reg.Counter("jaws_server_errors_total"),
		unavailable: cfg.Reg.Counter("jaws_server_unavailable_total"),
		late:        cfg.Reg.Counter("jaws_server_late_results_total"),
		gQueue:      cfg.Reg.Gauge("jaws_server_queue_depth"),
		gInflight:   cfg.Reg.Gauge("jaws_server_inflight"),
		hLatency: cfg.Reg.Histogram("jaws_server_latency_seconds",
			0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10),
		hVirtual: cfg.Reg.Histogram("jaws_server_virtual_seconds",
			0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100),
	}
	s.reqTrack = cfg.Trace != nil || cfg.ReqSpans != nil
	for name, help := range serverMetricHelp {
		cfg.Reg.Describe(name, help)
	}
	if cfg.Trace != nil {
		s.traceDropped = cfg.Reg.Counter("jaws_trace_dropped_total")
	}
	if cfg.SLO != nil {
		s.gSLOCompliance = cfg.Reg.Gauge("jaws_slo_compliance")
		s.gSLOBurn = cfg.Reg.Gauge("jaws_slo_burn_rate")
		s.gSLOBudget = cfg.Reg.Gauge("jaws_slo_budget_remaining")
		s.gSLOGood = cfg.Reg.Gauge("jaws_slo_good")
		s.gSLOBad = cfg.Reg.Gauge("jaws_slo_bad")
	}
	for _, be := range cfg.Backends {
		b := &backendState{be: be, dead: make(chan struct{})}
		s.backends = append(s.backends, b)
		s.demuxWG.Add(1)
		go s.drain(b)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/varz", s.handleVarz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the public mux (/query, /metrics, /healthz, /varz).
func (s *Server) Handler() http.Handler { return s.mux }

// drain routes one backend's completion stream to the per-request
// channels registered in demux. Results nobody waits for (the waiter
// timed out or the request was canceled) are dropped and counted.
func (s *Server) drain(b *backendState) {
	defer s.demuxWG.Done()
	defer close(b.dead)
	for r := range b.be.Results() {
		if ch, ok := s.demux.LoadAndDelete(r.Query.ID); ok {
			ch.(chan *jaws.QueryResult) <- r // cap 1: never blocks
		} else {
			s.late.Inc()
		}
	}
}

// worker consumes the admission queue until Shutdown closes it, then
// finishes whatever is still queued (accepted work is never dropped).
func (s *Server) worker() {
	defer s.workerWG.Done()
	for t := range s.queue {
		s.gQueue.Set(float64(len(s.queue)))
		s.serveTask(t)
	}
}

// serveTask submits one accepted request to a live backend and waits for
// its result, the deadline, or the backend's death — whichever first.
// Every task gets exactly one response on respc.
//
// The span marks are safe without locks: the handler stopped touching
// t.rs before the queue send, this goroutine marks between receiving the
// task and sending on respc, and the handler resumes only after the
// respc receive — each handoff is a happens-before edge.
func (s *Server) serveTask(t *task) {
	t.rs.Mark(obs.ReqQueued)
	if t.ctx.Err() != nil { // deadline spent while queued
		t.respc <- taskOutcome{status: http.StatusGatewayTimeout}
		return
	}
	b := s.pick()
	ch := make(chan *jaws.QueryResult, 1)
	s.demux.Store(t.id, ch)
	err := b.be.Submit(t.job)
	t.rs.Mark(obs.ReqDispatch)
	if err != nil {
		s.demux.Delete(t.id)
		t.respc <- taskOutcome{status: http.StatusBadGateway, err: err}
		return
	}
	select {
	case r := <-ch:
		t.rs.Mark(obs.ReqExecute)
		t.respc <- taskOutcome{res: r}
	case <-t.ctx.Done():
		t.rs.Mark(obs.ReqExecute)
		s.demux.Delete(t.id)
		t.respc <- taskOutcome{status: http.StatusGatewayTimeout}
	case <-b.dead:
		t.rs.Mark(obs.ReqExecute)
		s.demux.Delete(t.id)
		t.respc <- taskOutcome{status: http.StatusBadGateway, err: b.be.Err()}
	}
}

// pick returns the next live backend round-robin (any backend when all
// are dead; Submit or the dead channel will surface the failure).
func (s *Server) pick() *backendState {
	n := len(s.backends)
	start := int(s.rr.Add(1)-1) % n
	for i := 0; i < n; i++ {
		b := s.backends[(start+i)%n]
		select {
		case <-b.dead:
		default:
			return b
		}
	}
	return s.backends[start]
}

// healthy reports whether the server is accepting work and every backend
// is live.
func (s *Server) healthy() error {
	if s.draining.Load() {
		return errors.New("draining")
	}
	for i, b := range s.backends {
		select {
		case <-b.dead:
			if err := b.be.Err(); err != nil {
				return fmt.Errorf("backend %d down: %w", i, err)
			}
			return fmt.Errorf("backend %d down", i)
		default:
		}
	}
	return nil
}

// Shutdown gracefully drains the server: admission stops (new queries
// get 503), every accepted request is served, the worker pool exits,
// and the backends are closed. It returns the backends' final reports
// (dead backends contribute none) and is idempotent.
func (s *Server) Shutdown() []*jaws.Report {
	s.shutdownOnce.Do(func() {
		s.acceptMu.Lock()
		s.draining.Store(true)
		s.acceptMu.Unlock()
		close(s.queue)
		s.workerWG.Wait()
		for _, b := range s.backends {
			if rep := b.be.Close(); rep != nil {
				s.reports = append(s.reports, rep)
			}
		}
		s.demuxWG.Wait()
	})
	return s.reports
}

// refreshTraceDropped folds the tracer's current drop totals into the
// jaws_trace_dropped_total counter by delta, preserving counter
// semantics across repeated scrapes. Returns the current total.
func (s *Server) refreshTraceDropped() int64 {
	if s.traceDropped == nil {
		return 0
	}
	dropped := s.cfg.Trace.RingDropped() + s.cfg.Trace.SinkDropped()
	if d := dropped - s.traceDropped.Value(); d > 0 {
		s.traceDropped.Add(d)
	}
	return dropped
}

// Stats is a point-in-time snapshot of the server's request accounting.
type Stats struct {
	Requests    int64 `json:"requests"`
	Served      int64 `json:"served"`
	Shed        int64 `json:"shed"`
	Rejected    int64 `json:"rejected"`
	Timeouts    int64 `json:"timeouts"`
	Errors      int64 `json:"errors"`
	Unavailable int64 `json:"unavailable"`
	LateResults int64 `json:"late_results"`
	QueueDepth  int   `json:"queue_depth"`
	InFlight    int64 `json:"in_flight"`
	Draining    bool  `json:"draining"`
}

// Stats snapshots the request accounting (also served at /varz).
func (s *Server) Stats() Stats {
	return Stats{
		Requests:    s.requests.Value(),
		Served:      s.served.Value(),
		Shed:        s.shed.Value(),
		Rejected:    s.rejected.Value(),
		Timeouts:    s.timeouts.Value(),
		Errors:      s.errcount.Value(),
		Unavailable: s.unavailable.Value(),
		LateResults: s.late.Value(),
		QueueDepth:  len(s.queue),
		InFlight:    s.inflight.Load(),
		Draining:    s.draining.Load(),
	}
}
