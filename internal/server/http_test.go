package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jaws"
	"jaws/internal/query"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestQueryValidation is the table-driven request-validation suite: every
// malformed request is rejected before it can reach a backend.
func TestQueryValidation(t *testing.T) {
	fake := newFakeBackend()
	srv, ts := newTestServer(t, []Backend{fake}, func(c *Config) {
		c.MaxBodyBytes = 256
		c.MaxPoints = 2
	})

	cases := []struct {
		name   string
		method string
		body   string
		code   int
		want   string // substring of the error body
	}{
		{"malformed JSON", "POST", `{"step":`, http.StatusBadRequest, "malformed request"},
		{"not JSON at all", "POST", `hello`, http.StatusBadRequest, "malformed request"},
		{"unknown field", "POST", `{"step":1,"points":[{"x":1,"y":2,"z":3}],"frobnicate":true}`, http.StatusBadRequest, "unknown field"},
		{"unknown kernel", "POST", `{"step":1,"kernel":"spline","points":[{"x":1,"y":2,"z":3}]}`, http.StatusBadRequest, `unknown kernel "spline"`},
		{"negative step", "POST", `{"step":-1,"points":[{"x":1,"y":2,"z":3}]}`, http.StatusBadRequest, "outside [0, 4)"},
		{"step past store", "POST", `{"step":4,"points":[{"x":1,"y":2,"z":3}]}`, http.StatusBadRequest, "outside [0, 4)"},
		{"no points", "POST", `{"step":1,"points":[]}`, http.StatusBadRequest, "no points"},
		{"too many points", "POST", `{"step":1,"points":[{"x":1},{"x":2},{"x":3}]}`, http.StatusBadRequest, "exceed the limit of 2"},
		{"deriv_steps of one", "POST", `{"step":1,"deriv_steps":1,"points":[{"x":1,"y":2,"z":3}]}`, http.StatusBadRequest, "deriv_steps 1 invalid"},
		{"deriv_steps negative", "POST", `{"step":1,"deriv_steps":-2,"points":[{"x":1,"y":2,"z":3}]}`, http.StatusBadRequest, "deriv_steps -2 invalid"},
		{"deriv_steps too long", "POST", `{"step":0,"deriv_steps":9,"points":[{"x":1,"y":2,"z":3}]}`, http.StatusBadRequest, "deriv_steps 9 invalid"},
		{"deriv chain past store", "POST", `{"step":3,"deriv_steps":2,"points":[{"x":1,"y":2,"z":3}]}`, http.StatusBadRequest, "derivative chain [3, 5) exceeds the stored 4 steps"},
		{"oversized body", "POST", `{"step":1,"points":[` + strings.Repeat(`{"x":1.234567,"y":2.345678,"z":3.456789},`, 20) + `{"x":1}]}`, http.StatusRequestEntityTooLarge, "exceeds 256 bytes"},
		{"GET not allowed", "GET", "", http.StatusMethodNotAllowed, "POST only"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+"/query", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != c.code {
				t.Fatalf("status %d, want %d (body %q)", resp.StatusCode, c.code, body)
			}
			if !strings.Contains(string(body), c.want) {
				t.Errorf("body %q missing %q", body, c.want)
			}
		})
	}
	if n := fake.submittedCount(); n != 0 {
		t.Errorf("%d invalid requests reached the backend", n)
	}
	if st := srv.Stats(); st.Served != 0 {
		t.Errorf("stats %+v", st)
	}
}

// TestQueryGoldenHappyPath drives a real seeded session (kernels
// evaluated for real) and pins the exact response bytes: the virtual
// engine is deterministic, so the served payload is too.
func TestQueryGoldenHappyPath(t *testing.T) {
	sess, err := jaws.OpenSession(jaws.Config{
		Space:      jaws.Space{GridSide: 64, AtomSide: 32},
		Steps:      4,
		Seed:       11,
		Scheduler:  jaws.SchedJAWS2,
		CacheAtoms: 16,
		Compute:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, []Backend{sess}, nil)

	body := `{"step":1,"kernel":"lag8","points":[{"x":1.0,"y":2.0,"z":3.0},{"x":1.1,"y":2.0,"z":3.0},{"x":1.2,"y":2.0,"z":3.0}]}`
	resp := postQuery(t, ts.URL, body)
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q", ct)
	}

	golden := filepath.Join("testdata", "query_ok.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response differs from golden file:\ngot:  %s\nwant: %s", got, want)
	}
}

// TestQueryDerivativeServed drives a derivative request through a real
// session: the engine fans the chain out into per-step sub-queries and
// finite-differences them, and the served values must match a by-hand
// chain of plain queries at the same points combined with the Fornberg
// stencil.
func TestQueryDerivativeServed(t *testing.T) {
	sess, err := jaws.OpenSession(jaws.Config{
		Space:      jaws.Space{GridSide: 64, AtomSide: 32},
		Steps:      4,
		Seed:       11,
		Scheduler:  jaws.SchedJAWS2,
		CacheAtoms: 16,
		Compute:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, []Backend{sess}, nil)

	points := `[{"x":1.0,"y":2.0,"z":3.0},{"x":1.1,"y":2.0,"z":3.0}]`
	const k = 3
	resp := postQuery(t, ts.URL, `{"step":1,"deriv_steps":3,"kernel":"lag8","points":`+points+`}`)
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("derivative request rejected: %d %s", resp.StatusCode, raw)
	}
	var deriv QueryResponse
	if err := json.Unmarshal(raw, &deriv); err != nil {
		t.Fatal(err)
	}
	if len(deriv.Values) != 2 {
		t.Fatalf("derivative response carries %d values, want 2", len(deriv.Values))
	}

	// Reference: the same chain assembled from plain per-step queries.
	perStep := make([]QueryResponse, k)
	for i := 0; i < k; i++ {
		r := postQuery(t, ts.URL, fmt.Sprintf(`{"step":%d,"kernel":"lag8","points":%s}`, 1+i, points))
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("plain step %d rejected: %d %s", 1+i, r.StatusCode, body)
		}
		if err := json.Unmarshal(body, &perStep[i]); err != nil {
			t.Fatal(err)
		}
	}
	w := query.DerivWeights(k)
	for pi, got := range deriv.Values {
		for c := 0; c < 3; c++ {
			var want float64
			for i := 0; i < k; i++ {
				want += w[i] * perStep[i].Values[pi].Velocity[c]
			}
			want /= query.StepDT
			if diff := got.Velocity[c] - want; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("point %d velocity[%d] = %v, want %v", pi, c, got.Velocity[c], want)
			}
		}
	}
}
