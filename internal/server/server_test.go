package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"jaws"
	"jaws/internal/obs"
)

// fakeBackend is a fully controllable Backend: by default it completes
// every submitted query instantly; with hold set it sits on them until
// release, and die simulates a crash-faulted session.
type fakeBackend struct {
	results chan *jaws.QueryResult

	mu        sync.Mutex
	submitted []*jaws.Job
	hold      bool
	err       error
	dead      bool
	closeOnce sync.Once
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{results: make(chan *jaws.QueryResult, 1024)}
}

func (f *fakeBackend) Submit(jobs ...*jaws.Job) error {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return errors.New("session closed")
	}
	f.submitted = append(f.submitted, jobs...)
	hold := f.hold
	f.mu.Unlock()
	if !hold {
		f.complete(jobs)
	}
	return nil
}

func (f *fakeBackend) complete(jobs []*jaws.Job) {
	for _, j := range jobs {
		for _, q := range j.Queries {
			f.results <- &jaws.QueryResult{Query: q, Completed: q.Arrival + time.Second}
		}
	}
}

// release completes everything held so far and stops holding.
func (f *fakeBackend) release() {
	f.mu.Lock()
	f.hold = false
	held := append([]*jaws.Job(nil), f.submitted...)
	f.submitted = f.submitted[:0]
	f.mu.Unlock()
	f.complete(held)
}

// die simulates an internal/fault node crash: the result stream ends and
// further submissions fail.
func (f *fakeBackend) die(err error) {
	f.mu.Lock()
	f.dead = true
	f.err = err
	f.mu.Unlock()
	f.closeOnce.Do(func() { close(f.results) })
}

func (f *fakeBackend) Results() <-chan *jaws.QueryResult { return f.results }

func (f *fakeBackend) Close() *jaws.Report {
	f.mu.Lock()
	dead := f.dead
	n := len(f.submitted)
	f.mu.Unlock()
	f.closeOnce.Do(func() { close(f.results) })
	if dead {
		return nil
	}
	return &jaws.Report{Completed: n}
}

func (f *fakeBackend) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

func (f *fakeBackend) submittedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.submitted)
}

// newTestServer builds a server over the given backends with small, test
// friendly bounds; mutate tweaks the config before New.
func newTestServer(t *testing.T, backends []Backend, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Backends:        backends,
		QueueBound:      8,
		Workers:         2,
		MaxBodyBytes:    1 << 16,
		MaxPoints:       64,
		Steps:           4,
		DefaultDeadline: 10 * time.Second,
		RetryAfter:      2 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Shutdown()
		ts.Close()
	})
	return srv, ts
}

func postQuery(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// waitFor polls cond for up to 5 s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

const okBody = `{"step":1,"points":[{"x":1,"y":2,"z":3}]}`

func TestNewRequiresBackends(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no backends accepted")
	}
}

func TestQueryHappyPathOnFake(t *testing.T) {
	fake := newFakeBackend()
	srv, ts := newTestServer(t, []Backend{fake}, nil)
	resp := postQuery(t, ts.URL, okBody)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.QueryID != 1 {
		t.Errorf("query_id = %d, want 1", out.QueryID)
	}
	if out.VirtualSeconds != 1 { // fake completes at arrival+1s
		t.Errorf("virtual_seconds = %g, want 1", out.VirtualSeconds)
	}
	if st := srv.Stats(); st.Served != 1 || st.Requests != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	fake := newFakeBackend()
	fake.hold = true
	srv, ts := newTestServer(t, []Backend{fake}, nil)
	resp := postQuery(t, ts.URL, `{"step":1,"points":[{"x":1,"y":2,"z":3}],"timeout_ms":50}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if st := srv.Stats(); st.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", st.Timeouts)
	}
	// The engine eventually completes the abandoned query; the server
	// must drop it and count it as late, not deliver or crash.
	fake.release()
	waitFor(t, "late result accounting", func() bool { return srv.Stats().LateResults == 1 })
}

func TestQueueFullShedsWithRetryAfter(t *testing.T) {
	fake := newFakeBackend()
	fake.hold = true
	srv, ts := newTestServer(t, []Backend{fake}, func(c *Config) {
		c.Workers = 1
		c.QueueBound = 1
	})

	// r1 occupies the single worker, r2 the single queue slot.
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp := postQuery(t, ts.URL, okBody)
			resp.Body.Close()
			done <- resp.StatusCode
		}()
		if i == 0 {
			waitFor(t, "worker to hold r1", func() bool { return fake.submittedCount() == 1 })
		} else {
			waitFor(t, "queue to fill", func() bool { return srv.Stats().QueueDepth == 1 })
		}
	}

	// r3 must be shed immediately.
	resp := postQuery(t, ts.URL, okBody)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	if st := srv.Stats(); st.Shed != 1 {
		t.Errorf("shed = %d, want 1", st.Shed)
	}

	fake.release()
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Errorf("held request %d finished with %d, want 200", i, code)
		}
	}
}

func TestInFlightGateSheds(t *testing.T) {
	fake := newFakeBackend()
	fake.hold = true
	srv, ts := newTestServer(t, []Backend{fake}, func(c *Config) { c.MaxInFlight = 1 })

	done := make(chan int, 1)
	go func() {
		resp := postQuery(t, ts.URL, okBody)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	waitFor(t, "first request in flight", func() bool { return fake.submittedCount() == 1 })

	resp := postQuery(t, ts.URL, okBody)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if st := srv.Stats(); st.Shed != 1 {
		t.Errorf("shed = %d, want 1", st.Shed)
	}
	fake.release()
	if code := <-done; code != http.StatusOK {
		t.Errorf("gated request finished with %d, want 200", code)
	}
	_ = srv
}

func TestBackendDeathFailsWaitersAndHealth(t *testing.T) {
	fake := newFakeBackend()
	fake.hold = true
	srv, ts := newTestServer(t, []Backend{fake}, nil)

	done := make(chan int, 1)
	go func() {
		resp := postQuery(t, ts.URL, okBody)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	waitFor(t, "request in flight", func() bool { return fake.submittedCount() == 1 })

	fake.die(errors.New("node crashed (fault injection)"))
	if code := <-done; code != http.StatusBadGateway {
		t.Fatalf("waiter got %d, want 502", code)
	}

	// New queries fail fast on Submit.
	resp := postQuery(t, ts.URL, okBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("post-death query got %d, want 502", resp.StatusCode)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d after backend death, want 503", hresp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(hresp.Body)
	if !strings.Contains(buf.String(), "crash") {
		t.Errorf("healthz body %q does not name the crash", buf.String())
	}
	if st := srv.Stats(); st.Errors != 2 {
		t.Errorf("errors = %d, want 2", st.Errors)
	}
}

func TestRoundRobinAcrossBackends(t *testing.T) {
	a, b := newFakeBackend(), newFakeBackend()
	_, ts := newTestServer(t, []Backend{a, b}, nil)
	for i := 0; i < 4; i++ {
		resp := postQuery(t, ts.URL, okBody)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	if a.submittedCount() != 2 || b.submittedCount() != 2 {
		t.Errorf("round robin split %d/%d, want 2/2", a.submittedCount(), b.submittedCount())
	}
}

func TestRoundRobinSkipsDeadBackend(t *testing.T) {
	a, b := newFakeBackend(), newFakeBackend()
	_, ts := newTestServer(t, []Backend{a, b}, nil)
	a.die(errors.New("crashed"))
	waitFor(t, "dead backend noticed", func() bool {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	for i := 0; i < 3; i++ {
		resp := postQuery(t, ts.URL, okBody)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 via live backend", i, resp.StatusCode)
		}
	}
	if b.submittedCount() != 3 {
		t.Errorf("live backend served %d, want 3", b.submittedCount())
	}
}

func TestShutdownRejectsNewWork(t *testing.T) {
	fake := newFakeBackend()
	srv, ts := newTestServer(t, []Backend{fake}, nil)
	reports := srv.Shutdown()
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(reports))
	}
	if again := srv.Shutdown(); len(again) != 1 {
		t.Fatal("Shutdown is not idempotent")
	}
	resp := postQuery(t, ts.URL, okBody)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", hresp.StatusCode)
	}
	if st := srv.Stats(); !st.Draining || st.Unavailable != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestVarzAndMetrics(t *testing.T) {
	fake := newFakeBackend()
	_, ts := newTestServer(t, []Backend{fake}, nil)
	resp := postQuery(t, ts.URL, okBody)
	resp.Body.Close()

	vresp, err := http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var v varz
	if err := json.NewDecoder(vresp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.QueueBound != 8 || v.Workers != 2 || v.Backends != 1 || v.Steps != 4 {
		t.Errorf("varz config %+v", v)
	}
	if v.Stats.Served != 1 {
		t.Errorf("varz stats %+v", v.Stats)
	}
	if v.MaxInFlight != 4*(8+2) {
		t.Errorf("defaulted max_in_flight = %d", v.MaxInFlight)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	for _, want := range []string{
		"jaws_server_requests_total 1",
		"jaws_server_served_total 1",
		"jaws_server_latency_seconds_count 1",
		"jaws_server_queue_depth",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestVarzSchedAndTraceDropped wires a flight recorder and a tiny-ring
// tracer into the server: /varz must grow the "sched" section with the
// recorder's live aggregates and the trace drop total, and /metrics
// must export jaws_trace_dropped_total (with its HELP line) tracking
// the tracer's ring evictions.
func TestVarzSchedAndTraceDropped(t *testing.T) {
	tracer := obs.NewTracer(2, nil) // 2-slot ring: drops are immediate
	recorder := obs.NewFlightRecorder(16, tracer, nil)
	fake := newFakeBackend()
	_, ts := newTestServer(t, []Backend{fake}, func(c *Config) {
		c.Trace = tracer
		c.Flight = recorder
	})

	// Five mirrored decision records through a 2-slot ring: 3+ evictions.
	for seq := int64(0); seq < 5; seq++ {
		recorder.Record(&obs.DecisionRecord{Seq: seq, Chosen: []obs.DecisionAtom{{Step: 1}}})
	}

	vresp, err := http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var v varz
	if err := json.NewDecoder(vresp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Sched == nil {
		t.Fatal("/varz has no sched section with a flight recorder configured")
	}
	if v.Sched.Decisions != 5 || v.Sched.ChosenAtoms != 5 {
		t.Errorf("sched varz = %+v, want 5 decisions / 5 chosen", v.Sched.FlightSnapshot)
	}
	if want := tracer.RingDropped(); v.Sched.TraceDropped != want {
		t.Errorf("sched varz trace_dropped = %d, want %d", v.Sched.TraceDropped, want)
	}
	if v.Sched.TraceDropped == 0 {
		t.Error("expected ring drops through a 2-slot tracer")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	for _, want := range []string{
		"# HELP jaws_trace_dropped_total",
		fmt.Sprintf("jaws_trace_dropped_total %d", tracer.RingDropped()),
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q:\n%s", want, buf.String())
		}
	}

	// The no-flight server must omit the section entirely.
	_, plain := newTestServer(t, []Backend{newFakeBackend()}, nil)
	presp, err := http.Get(plain.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	var pv varz
	if err := json.NewDecoder(presp.Body).Decode(&pv); err != nil {
		t.Fatal(err)
	}
	if pv.Sched != nil {
		t.Errorf("sched section present without a flight recorder: %+v", pv.Sched)
	}
}

// TestChaosCrashFaultOnServicePath runs the serving layer over a real
// session with an internal/fault crash schedule: the first query drives
// the virtual clock past the crash time, the node dies mid-request, and
// the server must answer 502 (not hang) and degrade /healthz.
func TestChaosCrashFaultOnServicePath(t *testing.T) {
	spec, err := jaws.ParseFaultSpec("crash@0:at=1ms")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := jaws.OpenSession(jaws.Config{
		Space:      jaws.Space{GridSide: 64, AtomSide: 32},
		Steps:      4,
		CacheAtoms: 16,
		Fault:      spec,
		FaultSeed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, []Backend{sess}, nil)

	// The first query may complete before the virtual clock reaches the
	// crash time; within a few queries the node must die.
	status, body := 0, ""
	for i := 0; i < 5 && status != http.StatusBadGateway; i++ {
		resp := postQuery(t, ts.URL, okBody)
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		status, body = resp.StatusCode, buf.String()
	}
	if status != http.StatusBadGateway {
		t.Fatalf("crashed-node queries never returned 502 (last: %d %q)", status, body)
	}
	if !strings.Contains(body, "crash") {
		t.Errorf("502 body %q does not name the crash", body)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after crash: %d, want 503", hresp.StatusCode)
	}
	if st := srv.Stats(); st.Errors == 0 {
		t.Errorf("stats %+v: no error counted", st)
	}
}
