// Package morton implements the Morton (Z-order) space-filling curve used
// by the Turbulence database to partition and index 3-D space.
//
// The database logically partitions space into cubes of side 2^k and lays
// atoms out on disk in Morton order, so atoms that are close along the
// curve are also near each other in voxel space. Both the clustered
// B+-tree access path and JAWS's batch execution order (sub-queries within
// a batch are evaluated in Morton order) depend on this package.
//
// Coordinates up to 21 bits per axis are supported, so codes fit in 63
// bits of a uint64.
package morton

import "fmt"

// MaxCoordBits is the number of bits supported per axis.
const MaxCoordBits = 21

// MaxCoord is the largest encodable per-axis coordinate.
const MaxCoord = 1<<MaxCoordBits - 1

// Code is a 3-D Morton code: the bit-interleaving of three coordinates.
// Codes order atoms on disk and define the within-batch execution order.
type Code uint64

// Encode interleaves the bits of x, y, and z into a Morton code.
// Each coordinate must be at most MaxCoord; larger values panic because a
// silently truncated code would corrupt the spatial index.
func Encode(x, y, z uint32) Code {
	if x > MaxCoord || y > MaxCoord || z > MaxCoord {
		panic(fmt.Sprintf("morton: coordinate out of range: (%d,%d,%d) > %d", x, y, z, MaxCoord))
	}
	return Code(spread(x) | spread(y)<<1 | spread(z)<<2)
}

// Decode recovers the three coordinates interleaved into c.
func (c Code) Decode() (x, y, z uint32) {
	return compact(uint64(c)), compact(uint64(c) >> 1), compact(uint64(c) >> 2)
}

// spread distributes the low 21 bits of v so that each bit lands at three
// times its original position (the classic magic-number dilation).
func spread(v uint32) uint64 {
	x := uint64(v) & 0x1fffff
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// compact is the inverse of spread: it collects every third bit of v.
func compact(v uint64) uint32 {
	x := v & 0x1249249249249249
	x = (x | x>>2) & 0x10c30c30c30c30c3
	x = (x | x>>4) & 0x100f00f00f00f00f
	x = (x | x>>8) & 0x1f0000ff0000ff
	x = (x | x>>16) & 0x1f00000000ffff
	x = (x | x>>32) & 0x1fffff
	return uint32(x)
}

// CubeRange returns the half-open Morton code interval [lo, hi) covered by
// the axis-aligned cube of side 2^level whose minimum corner is (x, y, z).
// The corner must be aligned to the cube size (a property of the
// hierarchical index: space is partitioned into cubes of side 2^k). Because
// the Morton curve visits every point of an aligned cube contiguously, the
// cube maps to exactly one code interval — this is what makes range and
// containment queries efficient with respect to I/O.
func CubeRange(x, y, z uint32, level uint) (lo, hi Code) {
	side := uint32(1) << level
	if x%side != 0 || y%side != 0 || z%side != 0 {
		panic(fmt.Sprintf("morton: cube corner (%d,%d,%d) not aligned to side %d", x, y, z, side))
	}
	lo = Encode(x, y, z)
	hi = lo + Code(1)<<(3*level)
	return lo, hi
}

// ContainingCube returns the minimum corner of the level-sized cube that
// contains (x, y, z).
func ContainingCube(x, y, z uint32, level uint) (cx, cy, cz uint32) {
	mask := ^uint32(1<<level - 1)
	return x & mask, y & mask, z & mask
}

// Parent returns the Morton code of the cube one level up that contains c:
// codes within one parent cube share all but their low three bits.
func (c Code) Parent() Code { return c >> 3 }

// Neighbors returns the Morton codes of the up-to-26 face/edge/corner
// neighbours of the unit cell c within a grid of side `side` cells per
// axis. Cells outside the grid are omitted (the simulated field is
// non-periodic at the index level; periodicity is handled by the geometry
// layer). Interpolation kernels use this to find the nearby atoms a
// stencil spills into.
func (c Code) Neighbors(side uint32) []Code {
	x, y, z := c.Decode()
	out := make([]Code, 0, 26)
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				nx, ny, nz := int64(x)+int64(dx), int64(y)+int64(dy), int64(z)+int64(dz)
				if nx < 0 || ny < 0 || nz < 0 || nx >= int64(side) || ny >= int64(side) || nz >= int64(side) {
					continue
				}
				out = append(out, Encode(uint32(nx), uint32(ny), uint32(nz)))
			}
		}
	}
	return out
}

// Dist2 returns the squared Euclidean distance between the cells encoded
// by a and b. Used by tests to verify the locality-preserving property of
// the curve and by pre-fetch heuristics to rank candidate atoms.
func Dist2(a, b Code) uint64 {
	ax, ay, az := a.Decode()
	bx, by, bz := b.Decode()
	dx := int64(ax) - int64(bx)
	dy := int64(ay) - int64(by)
	dz := int64(az) - int64(bz)
	return uint64(dx*dx + dy*dy + dz*dz)
}

// String renders the code and its decoded coordinates for diagnostics.
func (c Code) String() string {
	x, y, z := c.Decode()
	return fmt.Sprintf("morton(%d=%d,%d,%d)", uint64(c), x, y, z)
}
