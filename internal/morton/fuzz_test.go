package morton

import "testing"

// FuzzRoundTrip verifies Encode/Decode are inverse for every in-range
// coordinate triple.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0))
	f.Add(uint32(MaxCoord), uint32(MaxCoord), uint32(MaxCoord))
	f.Add(uint32(12345), uint32(54321), uint32(777))
	f.Fuzz(func(t *testing.T, x, y, z uint32) {
		x &= MaxCoord
		y &= MaxCoord
		z &= MaxCoord
		gx, gy, gz := Encode(x, y, z).Decode()
		if gx != x || gy != y || gz != z {
			t.Fatalf("round trip (%d,%d,%d) → (%d,%d,%d)", x, y, z, gx, gy, gz)
		}
	})
}

// FuzzCubeRange verifies that aligned cubes always map to intervals of
// exactly side³ codes and every corner point encodes inside its interval.
func FuzzCubeRange(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0), uint8(2))
	f.Add(uint32(64), uint32(128), uint32(32), uint8(4))
	f.Fuzz(func(t *testing.T, x, y, z uint32, lvl uint8) {
		level := uint(lvl % 6)
		side := uint32(1) << level
		// Align the corner.
		x = (x % 1024) &^ (side - 1)
		y = (y % 1024) &^ (side - 1)
		z = (z % 1024) &^ (side - 1)
		lo, hi := CubeRange(x, y, z, level)
		if hi-lo != Code(1)<<(3*level) {
			t.Fatalf("interval size %d, want %d", hi-lo, Code(1)<<(3*level))
		}
		c := Encode(x+side-1, y+side-1, z+side-1)
		if c < lo || c >= hi {
			t.Fatalf("far corner outside interval")
		}
	})
}
