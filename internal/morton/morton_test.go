package morton

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeKnownValues(t *testing.T) {
	cases := []struct {
		x, y, z uint32
		want    Code
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{0, 1, 0, 2},
		{0, 0, 1, 4},
		{1, 1, 1, 7},
		{2, 0, 0, 8},
		{7, 7, 7, 511},
	}
	for _, c := range cases {
		if got := Encode(c.x, c.y, c.z); got != c.want {
			t.Errorf("Encode(%d,%d,%d) = %d, want %d", c.x, c.y, c.z, got, c.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= MaxCoord
		y &= MaxCoord
		z &= MaxCoord
		gx, gy, gz := Encode(x, y, z).Decode()
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeMaxCoord(t *testing.T) {
	c := Encode(MaxCoord, MaxCoord, MaxCoord)
	x, y, z := c.Decode()
	if x != MaxCoord || y != MaxCoord || z != MaxCoord {
		t.Fatalf("max coord round trip failed: got (%d,%d,%d)", x, y, z)
	}
}

func TestEncodeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode with out-of-range coordinate did not panic")
		}
	}()
	Encode(MaxCoord+1, 0, 0)
}

// Property: Morton order within an aligned cube is contiguous — every code
// inside the cube's [lo,hi) range decodes to a point inside the cube, and
// every point of the cube encodes into the range.
func TestCubeRangeContiguity(t *testing.T) {
	const level = 2 // cubes of side 4
	lo, hi := CubeRange(4, 8, 12, level)
	if hi-lo != 64 {
		t.Fatalf("cube of side 4 should cover 64 codes, got %d", hi-lo)
	}
	for c := lo; c < hi; c++ {
		x, y, z := c.Decode()
		if x < 4 || x >= 8 || y < 8 || y >= 12 || z < 12 || z >= 16 {
			t.Fatalf("code %d decodes to (%d,%d,%d), outside cube", c, x, y, z)
		}
	}
	count := 0
	for x := uint32(4); x < 8; x++ {
		for y := uint32(8); y < 12; y++ {
			for z := uint32(12); z < 16; z++ {
				c := Encode(x, y, z)
				if c < lo || c >= hi {
					t.Fatalf("point (%d,%d,%d) encodes to %d, outside [%d,%d)", x, y, z, c, lo, hi)
				}
				count++
			}
		}
	}
	if count != 64 {
		t.Fatalf("expected 64 points, visited %d", count)
	}
}

func TestCubeRangeUnalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CubeRange with unaligned corner did not panic")
		}
	}()
	CubeRange(1, 0, 0, 2)
}

func TestContainingCube(t *testing.T) {
	cx, cy, cz := ContainingCube(13, 7, 22, 3)
	if cx != 8 || cy != 0 || cz != 16 {
		t.Fatalf("ContainingCube(13,7,22,3) = (%d,%d,%d), want (8,0,16)", cx, cy, cz)
	}
	// The containing cube's range must include the original point.
	lo, hi := CubeRange(cx, cy, cz, 3)
	c := Encode(13, 7, 22)
	if c < lo || c >= hi {
		t.Fatalf("point not inside its containing cube's Morton range")
	}
}

func TestParent(t *testing.T) {
	// All 8 children of a level-1 cube share the same parent code.
	parent := Encode(2, 4, 6) >> 3
	for dx := uint32(0); dx < 2; dx++ {
		for dy := uint32(0); dy < 2; dy++ {
			for dz := uint32(0); dz < 2; dz++ {
				c := Encode(2+dx, 4+dy, 6+dz)
				if c.Parent() != parent {
					t.Fatalf("child (%d,%d,%d) parent = %d, want %d", 2+dx, 4+dy, 6+dz, c.Parent(), parent)
				}
			}
		}
	}
}

func TestNeighborsInterior(t *testing.T) {
	c := Encode(5, 5, 5)
	nbrs := c.Neighbors(16)
	if len(nbrs) != 26 {
		t.Fatalf("interior cell should have 26 neighbours, got %d", len(nbrs))
	}
	seen := map[Code]bool{}
	for _, n := range nbrs {
		if seen[n] {
			t.Fatalf("duplicate neighbour %v", n)
		}
		seen[n] = true
		if d := Dist2(c, n); d < 1 || d > 3 {
			t.Fatalf("neighbour %v at squared distance %d, want 1..3", n, d)
		}
	}
}

func TestNeighborsCorner(t *testing.T) {
	c := Encode(0, 0, 0)
	nbrs := c.Neighbors(16)
	if len(nbrs) != 7 {
		t.Fatalf("corner cell should have 7 neighbours, got %d", len(nbrs))
	}
}

func TestNeighborsEdgeOfGrid(t *testing.T) {
	side := uint32(4)
	c := Encode(3, 3, 3) // max corner
	nbrs := c.Neighbors(side)
	if len(nbrs) != 7 {
		t.Fatalf("max-corner cell should have 7 neighbours, got %d", len(nbrs))
	}
	for _, n := range nbrs {
		x, y, z := n.Decode()
		if x >= side || y >= side || z >= side {
			t.Fatalf("neighbour (%d,%d,%d) outside grid of side %d", x, y, z, side)
		}
	}
}

// Property: Morton order preserves spatial locality in aggregate — the mean
// spatial distance between Morton-consecutive cells is far smaller than
// between randomly paired cells. This is the property the paper relies on
// when sorting positions in Morton order to amortize disk seeks.
func TestLocalityPreservation(t *testing.T) {
	const side = 16
	codes := make([]Code, 0, side*side*side)
	for x := uint32(0); x < side; x++ {
		for y := uint32(0); y < side; y++ {
			for z := uint32(0); z < side; z++ {
				codes = append(codes, Encode(x, y, z))
			}
		}
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })

	var adjSum float64
	for i := 1; i < len(codes); i++ {
		adjSum += float64(Dist2(codes[i-1], codes[i]))
	}
	adjMean := adjSum / float64(len(codes)-1)

	rng := rand.New(rand.NewSource(7))
	var randSum float64
	const pairs = 4095
	for i := 0; i < pairs; i++ {
		a := codes[rng.Intn(len(codes))]
		b := codes[rng.Intn(len(codes))]
		randSum += float64(Dist2(a, b))
	}
	randMean := randSum / pairs

	if adjMean*10 > randMean {
		t.Fatalf("Morton-adjacent mean dist² %.2f not ≪ random mean dist² %.2f", adjMean, randMean)
	}
}

// Property: encoding is strictly monotone along each axis when the other
// two coordinates are zero (bits only shift left).
func TestAxisMonotonicity(t *testing.T) {
	f := func(a, b uint32) bool {
		a &= MaxCoord
		b &= MaxCoord
		if a == b {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return Encode(lo, 0, 0) < Encode(hi, 0, 0) &&
			Encode(0, lo, 0) < Encode(0, hi, 0) &&
			Encode(0, 0, lo) < Encode(0, 0, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	s := Encode(1, 2, 3).String()
	if s == "" {
		t.Fatal("String() returned empty")
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Encode(uint32(i)&MaxCoord, uint32(i>>1)&MaxCoord, uint32(i>>2)&MaxCoord)
	}
}

func BenchmarkDecode(b *testing.B) {
	c := Encode(123456, 654321, 111111)
	for i := 0; i < b.N; i++ {
		_, _, _ = c.Decode()
	}
}
