package query

import "fmt"

// StepDT is the simulation time between adjacent stored steps, in
// seconds. The paper's database stores 1024 steps spanning 2 s of
// simulated time (§II; the Fig. 9 axis uses the same base), and the
// reproduction keeps that time base for derivative queries.
const StepDT = 2.0 / 1024

// DerivWeights returns the forward finite-difference coefficients
// c_0..c_{k-1} approximating f'(x₀) from k unit-spaced samples
// f(x₀), f(x₀+1), …, f(x₀+k−1):
//
//	f'(x₀) ≈ Σⱼ cⱼ·f(x₀+j)       (O(h^{k−1}) accurate; divide by the
//	                              actual spacing to scale)
//
// k = 2 gives the plain forward difference [−1, 1]; k = 3 the
// second-order [−3/2, 2, −1/2]; higher k the usual one-sided stencils
// (Fornberg's algorithm). The engine uses these to collapse a derivative
// query's per-step results into ∂/∂t estimates at the chain's anchor
// step. k must be ≥ 2.
func DerivWeights(k int) []float64 {
	if k < 2 {
		panic(fmt.Sprintf("query: derivative stencil needs ≥2 samples, got %d", k))
	}
	// Fornberg (1988), "Generation of finite difference formulas on
	// arbitrarily spaced grids", for derivative order 1 at z = 0 over
	// nodes x_j = j.
	const m = 1
	c := make([][m + 1]float64, k)
	c1 := 1.0
	c4 := -0.0 // x[0] - z
	c[0][0] = 1
	for i := 1; i < k; i++ {
		mn := i
		if mn > m {
			mn = m
		}
		c2 := 1.0
		c5 := c4
		c4 = float64(i) // x[i] - z
		for j := 0; j < i; j++ {
			c3 := float64(i - j) // x[i] - x[j]
			c2 *= c3
			if j == i-1 {
				for v := mn; v >= 1; v-- {
					c[i][v] = c1 * (float64(v)*c[i-1][v-1] - c5*c[i-1][v]) / c2
				}
				c[i][0] = -c1 * c5 * c[i-1][0] / c2
			}
			for v := mn; v >= 1; v-- {
				c[j][v] = (c4*c[j][v] - float64(v)*c[j][v-1]) / c3
			}
			c[j][0] = c4 * c[j][0] / c3
		}
		c1 = c2
	}
	out := make([]float64, k)
	for j := range out {
		out[j] = c[j][1]
	}
	return out
}
