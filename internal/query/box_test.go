package query

import (
	"testing"

	"jaws/internal/field"
	"jaws/internal/geom"
)

func TestBoxQueryLattice(t *testing.T) {
	s := testSpace()
	vsz := s.VoxelSize()
	lo := geom.Position{X: 0, Y: 0, Z: 0}
	hi := geom.Position{X: 4 * vsz, Y: 4 * vsz, Z: 4 * vsz}
	q, err := BoxQuery(1, s, 2, lo, hi, 1, field.KernelNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Points) != 64 {
		t.Fatalf("4×4×4 voxel box at stride 1 yielded %d points, want 64", len(q.Points))
	}
	if q.Step != 2 {
		t.Fatalf("step = %d", q.Step)
	}
	// Stride 2 quarters each axis count.
	q2, err := BoxQuery(2, s, 2, lo, hi, 2, field.KernelNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.Points) != 8 {
		t.Fatalf("stride-2 box yielded %d points, want 8", len(q2.Points))
	}
}

func TestBoxQueryValidation(t *testing.T) {
	s := testSpace()
	lo := geom.Position{X: 1, Y: 1, Z: 1}
	hi := geom.Position{X: 2, Y: 2, Z: 2}
	if _, err := BoxQuery(1, s, 0, lo, hi, 0, field.KernelNone); err == nil {
		t.Fatal("zero stride accepted")
	}
	if _, err := BoxQuery(1, s, 0, hi, lo, 1, field.KernelNone); err == nil {
		t.Fatal("inverted corners accepted")
	}
	huge := geom.Position{X: 1 + 2*geom.DomainSide, Y: 2, Z: 2}
	if _, err := BoxQuery(1, s, 0, lo, huge, 1, field.KernelNone); err == nil {
		t.Fatal("over-domain box accepted")
	}
}

func TestBoxQueryMortonCompactAtoms(t *testing.T) {
	// A box spanning one atom-aligned octant must pre-process into
	// Morton-contiguous sub-queries (the §III.A containment property).
	s := testSpace()
	atomLen := float64(s.AtomSide) * s.VoxelSize()
	lo := geom.Position{X: 0, Y: 0, Z: 0}
	hi := geom.Position{X: 2 * atomLen, Y: 2 * atomLen, Z: 2 * atomLen}
	q, err := BoxQuery(1, s, 0, lo, hi, 8, field.KernelNone)
	if err != nil {
		t.Fatal(err)
	}
	sqs, err := PreProcess(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(sqs) != 8 {
		t.Fatalf("2×2×2-atom box split into %d sub-queries, want 8", len(sqs))
	}
	for i, sq := range sqs {
		if int(sq.Atom.Code) != i {
			t.Fatalf("atoms not Morton-contiguous: sub-query %d has code %d", i, sq.Atom.Code)
		}
	}
}

func TestSphereQuery(t *testing.T) {
	s := testSpace()
	c := geom.Position{X: 3, Y: 3, Z: 3}
	q, err := SphereQuery(1, s, 1, c, 0.3, 2, field.KernelLag4)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Points) == 0 {
		t.Fatal("empty sphere")
	}
	for _, p := range q.Points {
		if geom.Dist2(p, c) > 0.3*0.3+1e-9 {
			t.Fatalf("point %v outside the sphere", p)
		}
	}
	// A sphere has fewer points than its bounding box.
	box, _ := BoxQuery(2, s, 1,
		geom.Position{X: c.X - 0.3, Y: c.Y - 0.3, Z: c.Z - 0.3},
		geom.Position{X: c.X + 0.3, Y: c.Y + 0.3, Z: c.Z + 0.3},
		2, field.KernelLag4)
	if len(q.Points) >= len(box.Points) {
		t.Fatalf("sphere (%d points) not smaller than bounding box (%d)", len(q.Points), len(box.Points))
	}
}

func TestSphereQueryValidation(t *testing.T) {
	s := testSpace()
	c := geom.Position{X: 1, Y: 1, Z: 1}
	if _, err := SphereQuery(1, s, 0, c, 0, 1, field.KernelNone); err == nil {
		t.Fatal("zero radius accepted")
	}
	if _, err := SphereQuery(1, s, 0, c, geom.DomainSide, 1, field.KernelNone); err == nil {
		t.Fatal("over-half-domain radius accepted")
	}
	if _, err := SphereQuery(1, s, 0, c, 0.5, 0, field.KernelNone); err == nil {
		t.Fatal("zero stride accepted")
	}
}
