package query

import (
	"math"
	"testing"

	"jaws/internal/field"
	"jaws/internal/geom"
	"jaws/internal/store"
)

func TestDerivWeightsKnown(t *testing.T) {
	cases := []struct {
		k    int
		want []float64
	}{
		{2, []float64{-1, 1}},
		{3, []float64{-1.5, 2, -0.5}},
		{4, []float64{-11.0 / 6, 3, -1.5, 1.0 / 3}},
	}
	for _, tc := range cases {
		got := DerivWeights(tc.k)
		if len(got) != tc.k {
			t.Fatalf("DerivWeights(%d) has %d coefficients", tc.k, len(got))
		}
		for j := range got {
			if math.Abs(got[j]-tc.want[j]) > 1e-12 {
				t.Errorf("DerivWeights(%d)[%d] = %v, want %v", tc.k, j, got[j], tc.want[j])
			}
		}
	}
}

// TestDerivWeightsPolynomialExactness checks the defining property of the
// order-k forward stencil: it differentiates polynomials of degree < k
// exactly at the anchor node. f(x) = x^d on nodes 0..k−1 has f'(0) = 0
// for d ≥ 2 and f'(0) = 1 for d = 1.
func TestDerivWeightsPolynomialExactness(t *testing.T) {
	for k := 2; k <= 6; k++ {
		w := DerivWeights(k)
		for d := 0; d < k; d++ {
			sum := 0.0
			for j := 0; j < k; j++ {
				sum += w[j] * math.Pow(float64(j), float64(d))
			}
			want := 0.0
			if d == 1 {
				want = 1
			}
			if math.Abs(sum-want) > 1e-9 {
				t.Errorf("k=%d: stencil applied to x^%d gives %v, want %v", k, d, sum, want)
			}
		}
	}
}

func TestDerivWeightsPanicsBelowTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DerivWeights(1) did not panic")
		}
	}()
	DerivWeights(1)
}

// TestPreProcessDerivChain checks that a derivative query fans out into
// congruent per-step partitions: the same atom codes at every chain step,
// with the same positions in the same order (the engine's differencing
// invariant), and ChainLen × (codes per step) sub-queries in total.
func TestPreProcessDerivChain(t *testing.T) {
	space := geom.Space{GridSide: 64, AtomSide: 16}
	q := &Query{
		ID:         1,
		Step:       3,
		DerivSteps: 3,
		Kernel:     field.KernelTrilinear,
		Points: []geom.Position{
			{X: 0.1, Y: 0.1, Z: 0.1},
			{X: 3.0, Y: 3.0, Z: 3.0},
			{X: 0.12, Y: 0.11, Z: 0.1},
		},
	}
	sqs, err := PreProcess(q, space)
	if err != nil {
		t.Fatal(err)
	}
	byStep := map[int]map[uint64][]geom.Position{}
	for _, sq := range sqs {
		if sq.Atom.Step < q.Step || sq.Atom.Step >= q.Step+q.DerivSteps {
			t.Fatalf("sub-query step %d outside chain [%d, %d)", sq.Atom.Step, q.Step, q.Step+q.DerivSteps)
		}
		m := byStep[sq.Atom.Step]
		if m == nil {
			m = map[uint64][]geom.Position{}
			byStep[sq.Atom.Step] = m
		}
		m[uint64(sq.Atom.Code)] = sq.Points
	}
	if len(byStep) != q.DerivSteps {
		t.Fatalf("chain covers %d steps, want %d", len(byStep), q.DerivSteps)
	}
	base := byStep[q.Step]
	if len(base) == 0 {
		t.Fatal("no sub-queries at the anchor step")
	}
	if want := q.DerivSteps * len(base); len(sqs) != want {
		t.Fatalf("%d sub-queries, want %d (chain × per-step groups)", len(sqs), want)
	}
	for s := q.Step + 1; s < q.Step+q.DerivSteps; s++ {
		m := byStep[s]
		if len(m) != len(base) {
			t.Fatalf("step %d has %d atom groups, anchor has %d", s, len(m), len(base))
		}
		for code, pts := range base {
			other, ok := m[code]
			if !ok {
				t.Fatalf("step %d missing atom code %#x present at anchor", s, code)
			}
			if len(other) != len(pts) {
				t.Fatalf("step %d code %#x: %d points, anchor has %d", s, code, len(other), len(pts))
			}
			for i := range pts {
				if pts[i] != other[i] {
					t.Fatalf("step %d code %#x: point %d differs from anchor (order not congruent)", s, code, i)
				}
			}
		}
	}
}

// TestAtomsSpansChain checks A(q) widens across the chain: a derivative
// query's atom set is exactly its point-query twin's set replicated at
// each chain step.
func TestAtomsSpansChain(t *testing.T) {
	space := geom.Space{GridSide: 64, AtomSide: 16}
	pts := []geom.Position{{X: 0.1, Y: 0.1, Z: 0.1}, {X: 2.5, Y: 2.5, Z: 2.5}}
	point := &Query{ID: 1, Step: 2, Points: pts}
	deriv := &Query{ID: 2, Step: 2, DerivSteps: 4, Points: pts}

	pa := Atoms(point, space)
	da := Atoms(deriv, space)
	if len(da) != len(pa)*deriv.DerivSteps {
		t.Fatalf("deriv A(q) has %d atoms, want %d × %d", len(da), len(pa), deriv.DerivSteps)
	}
	for id := range pa {
		for s := 0; s < deriv.DerivSteps; s++ {
			want := store.AtomID{Step: id.Step + s, Code: id.Code}
			if !da[want] {
				t.Fatalf("deriv A(q) missing %v", want)
			}
		}
	}

	// Sharing is symmetric across the widened set: the deriv query shares
	// with a point query at a later chain step even though their anchor
	// steps differ.
	later := &Query{ID: 3, Step: 4, Points: pts}
	if !Shares(deriv, later, space) || !Shares(later, deriv, space) {
		t.Fatal("deriv query does not share with point query inside its chain")
	}
	outside := &Query{ID: 4, Step: 9, Points: pts}
	if Shares(deriv, outside, space) {
		t.Fatal("deriv query shares with point query outside its chain")
	}
}

func TestValidateDerivSteps(t *testing.T) {
	q := &Query{ID: 1, Points: []geom.Position{{}}, DerivSteps: -1}
	if err := q.Validate(); err == nil {
		t.Fatal("negative DerivSteps accepted")
	}
}
