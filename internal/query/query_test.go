package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jaws/internal/field"
	"jaws/internal/geom"
	"jaws/internal/store"
)

func testSpace() geom.Space { return geom.Space{GridSide: 128, AtomSide: 32} }

func mkQuery(id ID, step int, pts []geom.Position, k field.Kernel) *Query {
	return &Query{ID: id, Step: step, Points: pts, Kernel: k}
}

func TestValidate(t *testing.T) {
	if err := mkQuery(1, 0, nil, field.KernelNone).Validate(); err == nil {
		t.Fatal("empty query accepted")
	}
	if err := mkQuery(1, -1, []geom.Position{{}}, field.KernelNone).Validate(); err == nil {
		t.Fatal("negative step accepted")
	}
	if err := mkQuery(1, 0, []geom.Position{{}}, field.KernelNone).Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
}

func TestPreProcessGroupsByAtom(t *testing.T) {
	s := testSpace()
	// Two positions in atom (0,0,0), one in atom (1,0,0).
	atomLen := float64(s.AtomSide) * s.VoxelSize()
	pts := []geom.Position{
		{X: 0.2 * atomLen, Y: 0.2 * atomLen, Z: 0.2 * atomLen},
		{X: 0.8 * atomLen, Y: 0.8 * atomLen, Z: 0.8 * atomLen},
		{X: 1.5 * atomLen, Y: 0.5 * atomLen, Z: 0.5 * atomLen},
	}
	q := mkQuery(1, 2, pts, field.KernelNone)
	sqs, err := PreProcess(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(sqs) != 2 {
		t.Fatalf("got %d sub-queries, want 2", len(sqs))
	}
	if len(sqs[0].Points)+len(sqs[1].Points) != 3 {
		t.Fatal("positions lost or duplicated in split")
	}
	for _, sq := range sqs {
		if sq.Atom.Step != 2 {
			t.Fatalf("sub-query step %d, want 2", sq.Atom.Step)
		}
		for _, p := range sq.Points {
			if got := (store.AtomID{Step: 2, Code: s.AtomOf(p).Code()}); got != sq.Atom {
				t.Fatalf("position %v grouped under wrong atom %v", p, sq.Atom)
			}
		}
	}
}

func TestPreProcessMortonOrderOfAtoms(t *testing.T) {
	s := testSpace()
	rng := rand.New(rand.NewSource(5))
	pts := make([]geom.Position, 200)
	for i := range pts {
		pts[i] = geom.Position{
			X: rng.Float64() * geom.DomainSide,
			Y: rng.Float64() * geom.DomainSide,
			Z: rng.Float64() * geom.DomainSide,
		}
	}
	sqs, err := PreProcess(mkQuery(1, 0, pts, field.KernelNone), s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sqs); i++ {
		if sqs[i-1].Atom.Key() >= sqs[i].Atom.Key() {
			t.Fatal("sub-queries not in Morton order")
		}
	}
}

func TestPreProcessSortsPointsWithinAtom(t *testing.T) {
	s := testSpace()
	atomLen := float64(s.AtomSide) * s.VoxelSize()
	// Several positions inside atom (0,0,0) in reverse spatial order.
	var pts []geom.Position
	for i := 9; i >= 0; i-- {
		v := (float64(i) + 0.5) / 10 * atomLen
		pts = append(pts, geom.Position{X: v, Y: v, Z: v})
	}
	sqs, _ := PreProcess(mkQuery(1, 0, pts, field.KernelNone), s)
	if len(sqs) != 1 {
		t.Fatalf("want single sub-query, got %d", len(sqs))
	}
	got := sqs[0].Points
	for i := 1; i < len(got); i++ {
		if got[i].X < got[i-1].X {
			t.Fatal("points within atom not Morton-sorted (diagonal should be ascending)")
		}
	}
}

func TestPreProcessFootprint(t *testing.T) {
	s := testSpace()
	atomLen := float64(s.AtomSide) * s.VoxelSize()
	// Position near the low-x face of atom (1,1,1) with a wide kernel:
	// footprint must include atom (0,1,1) but never the primary atom.
	p := geom.Position{X: atomLen + 0.5*s.VoxelSize(), Y: 1.5 * atomLen, Z: 1.5 * atomLen}
	sqs, _ := PreProcess(mkQuery(1, 0, []geom.Position{p}, field.KernelLag8), s)
	if len(sqs) != 1 {
		t.Fatalf("want 1 sub-query, got %d", len(sqs))
	}
	sq := sqs[0]
	wantNbr := store.AtomID{Step: 0, Code: geom.AtomCoord{I: 0, J: 1, K: 1}.Code()}
	found := false
	for _, f := range sq.Footprint {
		if f == sq.Atom {
			t.Fatal("footprint contains the primary atom")
		}
		if f == wantNbr {
			found = true
		}
	}
	if !found {
		t.Fatalf("footprint %v missing neighbour %v", sq.Footprint, wantNbr)
	}
}

func TestPreProcessNoFootprintForPointKernel(t *testing.T) {
	s := testSpace()
	sqs, _ := PreProcess(mkQuery(1, 0, []geom.Position{{X: 1, Y: 1, Z: 1}}, field.KernelNone), s)
	if len(sqs[0].Footprint) != 0 {
		t.Fatalf("zero-radius kernel has footprint %v", sqs[0].Footprint)
	}
}

func TestPreProcessInvalid(t *testing.T) {
	if _, err := PreProcess(mkQuery(1, 0, nil, field.KernelNone), testSpace()); err == nil {
		t.Fatal("invalid query pre-processed")
	}
}

// Property: pre-processing partitions the positions — every input position
// appears in exactly one sub-query, and the total count is preserved.
func TestPreProcessPartitionProperty(t *testing.T) {
	s := testSpace()
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		var pts []geom.Position
		for i := 0; i+2 < len(raw); i += 3 {
			pts = append(pts, geom.Wrap(geom.Position{X: raw[i], Y: raw[i+1], Z: raw[i+2]}))
		}
		q := mkQuery(7, 1, pts, field.KernelLag4)
		sqs, err := PreProcess(q, s)
		if err != nil {
			return false
		}
		total := 0
		for _, sq := range sqs {
			total += len(sq.Points)
		}
		return total == len(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomsAndShares(t *testing.T) {
	s := testSpace()
	atomLen := float64(s.AtomSide) * s.VoxelSize()
	inAtom := func(i, j, k uint32) geom.Position {
		return geom.Position{
			X: (float64(i) + 0.5) * atomLen,
			Y: (float64(j) + 0.5) * atomLen,
			Z: (float64(k) + 0.5) * atomLen,
		}
	}
	qa := mkQuery(1, 0, []geom.Position{inAtom(0, 0, 0), inAtom(1, 1, 1)}, field.KernelNone)
	qb := mkQuery(2, 0, []geom.Position{inAtom(1, 1, 1)}, field.KernelNone)
	qc := mkQuery(3, 0, []geom.Position{inAtom(2, 2, 2)}, field.KernelNone)
	qd := mkQuery(4, 1, []geom.Position{inAtom(0, 0, 0)}, field.KernelNone) // other step

	if got := Atoms(qa, s); len(got) != 2 {
		t.Fatalf("Atoms(qa) = %v, want 2 atoms", got)
	}
	if !Shares(qa, qb, s) {
		t.Fatal("qa and qb share atom (1,1,1) but Shares = false")
	}
	if Shares(qa, qc, s) {
		t.Fatal("qa and qc share nothing but Shares = true")
	}
	if Shares(qa, qd, s) {
		t.Fatal("different time steps must not share atoms")
	}
	if !Shares(qa, qa, s) {
		t.Fatal("query does not share with itself")
	}
}

func TestResultResponseTime(t *testing.T) {
	q := mkQuery(1, 0, []geom.Position{{}}, field.KernelNone)
	q.Arrival = 100
	r := &Result{Query: q, Completed: 350}
	if r.ResponseTime() != 250 {
		t.Fatalf("ResponseTime = %v, want 250", r.ResponseTime())
	}
}

func BenchmarkPreProcess1kPoints(b *testing.B) {
	s := testSpace()
	rng := rand.New(rand.NewSource(9))
	pts := make([]geom.Position, 1000)
	for i := range pts {
		pts[i] = geom.Position{
			X: rng.Float64() * geom.DomainSide,
			Y: rng.Float64() * geom.DomainSide,
			Z: rng.Float64() * geom.DomainSide,
		}
	}
	q := mkQuery(1, 0, pts, field.KernelLag4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PreProcess(q, s); err != nil {
			b.Fatal(err)
		}
	}
}
