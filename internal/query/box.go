package query

import (
	"fmt"

	"jaws/internal/field"
	"jaws/internal/geom"
)

// BoxQuery builds a query that samples an axis-aligned box of the domain
// on a regular lattice — the "cutout" access pattern the Turbulence web
// services expose alongside point queries. lo and hi are opposite corners
// (hi components must exceed lo components; the box may not wrap), and
// stride is the lattice spacing in voxels (≥1).
//
// The resulting query behaves like any other: the pre-processor splits it
// into per-atom sub-queries, and because a box maps to a compact set of
// Morton-contiguous atoms (the hierarchical index property of §III.A),
// its batches produce near-sequential I/O.
func BoxQuery(id ID, space geom.Space, step int, lo, hi geom.Position, stride int, k field.Kernel) (*Query, error) {
	if stride < 1 {
		return nil, fmt.Errorf("query: box stride must be ≥1, got %d", stride)
	}
	if hi.X <= lo.X || hi.Y <= lo.Y || hi.Z <= lo.Z {
		return nil, fmt.Errorf("query: box corners not ordered: lo %v hi %v", lo, hi)
	}
	if hi.X-lo.X > geom.DomainSide || hi.Y-lo.Y > geom.DomainSide || hi.Z-lo.Z > geom.DomainSide {
		return nil, fmt.Errorf("query: box exceeds the periodic domain")
	}
	h := space.VoxelSize() * float64(stride)
	var pts []geom.Position
	for z := lo.Z; z < hi.Z; z += h {
		for y := lo.Y; y < hi.Y; y += h {
			for x := lo.X; x < hi.X; x += h {
				pts = append(pts, geom.Wrap(geom.Position{X: x, Y: y, Z: z}))
			}
		}
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("query: box smaller than one lattice cell")
	}
	q := &Query{ID: id, Step: step, Points: pts, Kernel: k}
	return q, nil
}

// SphereQuery builds a query sampling a ball around center on a regular
// lattice of the given stride (in voxels) — the probe-volume pattern the
// statistics workloads use.
func SphereQuery(id ID, space geom.Space, step int, center geom.Position, radius float64, stride int, k field.Kernel) (*Query, error) {
	if stride < 1 {
		return nil, fmt.Errorf("query: sphere stride must be ≥1, got %d", stride)
	}
	if radius <= 0 || radius > geom.DomainSide/2 {
		return nil, fmt.Errorf("query: sphere radius %g out of range", radius)
	}
	h := space.VoxelSize() * float64(stride)
	var pts []geom.Position
	for z := -radius; z <= radius; z += h {
		for y := -radius; y <= radius; y += h {
			for x := -radius; x <= radius; x += h {
				if x*x+y*y+z*z > radius*radius {
					continue
				}
				pts = append(pts, geom.Wrap(geom.Position{
					X: center.X + x, Y: center.Y + y, Z: center.Z + z,
				}))
			}
		}
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("query: sphere smaller than one lattice cell")
	}
	return &Query{ID: id, Step: step, Points: pts, Kernel: k}, nil
}
