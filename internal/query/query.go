// Package query models Turbulence queries and the LifeRaft/JAWS
// pre-processing stage (§III.B): each query supplies a list of positions
// to evaluate at one time step with an interpolation kernel; the
// pre-processor identifies the atom containing each position and splits
// the query into per-atom sub-queries that can be executed in any order
// and whose results combine into the original query's result.
package query

import (
	"fmt"
	"sort"
	"time"

	"jaws/internal/field"
	"jaws/internal/geom"
	"jaws/internal/morton"
	"jaws/internal/store"
)

// ID uniquely identifies a query within one scheduler instance.
type ID int64

// Query is one request: evaluate Kernel at every position at time step
// Step. Queries belonging to an ordered job carry their job's ID and their
// sequence index within it.
type Query struct {
	ID     ID
	Step   int
	Points []geom.Position
	Kernel field.Kernel

	// DerivSteps, when ≥2, marks a temporal-derivative query: Points are
	// evaluated at every step of the chain Step..Step+DerivSteps−1 and
	// the per-step results are finite-differenced into ∂/∂t estimates
	// (DerivWeights over StepDT). 0 and 1 mean a plain single-step query.
	// The pre-processor emits per-(step, atom) sub-queries for the whole
	// chain, so one logical query spans several step buckets in the
	// scheduler and widens A(q) in the gating graph.
	DerivSteps int

	// JobID is zero for one-off queries.
	JobID int64
	// Seq is the query's position within its job (0-based).
	Seq int
	// User identifies the submitting scientist (used by the job
	// identification heuristics and the workload generator).
	User int

	// ReqID is the serving layer's request ID when the query entered
	// through HTTP (empty for batch workloads). The engine copies it into
	// the query's lifecycle span so wall-clock and virtual-clock records
	// of one request stitch together.
	ReqID string

	// Arrival is the virtual time the query entered the system. For
	// ordered jobs beyond the first query this is set when the predecessor
	// completes (plus think time).
	Arrival time.Duration
}

// Validate checks the query is well formed.
func (q *Query) Validate() error {
	if len(q.Points) == 0 {
		return fmt.Errorf("query %d: no positions", q.ID)
	}
	if q.Step < 0 {
		return fmt.Errorf("query %d: negative time step %d", q.ID, q.Step)
	}
	if q.DerivSteps < 0 {
		return fmt.Errorf("query %d: negative derivative chain %d", q.ID, q.DerivSteps)
	}
	return nil
}

// ChainLen is the number of adjacent time steps the query evaluates:
// DerivSteps for temporal-derivative queries, 1 otherwise.
func (q *Query) ChainLen() int {
	if q.DerivSteps > 1 {
		return q.DerivSteps
	}
	return 1
}

// SubQuery is the unit of scheduling: the subset of a query's positions
// that fall within a single atom, plus the footprint of neighbouring atoms
// the kernel stencil may touch.
type SubQuery struct {
	Query *Query
	// Atom is the primary atom (contains the positions).
	Atom store.AtomID
	// Points are the positions inside Atom, sorted in Morton order of
	// their voxels so locations close in space are evaluated in close
	// succession (§III.B).
	Points []geom.Position
	// Footprint lists additional atoms the interpolation stencils of
	// these positions spill into (excluding Atom itself). The two-level
	// scheduler co-schedules them to respect locality of reference.
	Footprint []store.AtomID
}

// PreProcess splits q into sub-queries grouped by primary atom, in Morton
// order of the atoms. It returns an error if the query is malformed.
func PreProcess(q *Query, space geom.Space) ([]*SubQuery, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	radius := q.Kernel.StencilRadius()
	groups := make(map[store.AtomID]*SubQuery)
	// Temporal-derivative queries repeat the same spatial grouping at
	// every step of their chain: atom codes depend only on position, so
	// the per-step partitions are congruent (the engine's finite-
	// differencing relies on this).
	for s := 0; s < q.ChainLen(); s++ {
		step := q.Step + s
		for _, p := range q.Points {
			fp := space.Footprint(p, radius)
			primary := store.AtomID{Step: step, Code: fp[0].Code()}
			sq, ok := groups[primary]
			if !ok {
				sq = &SubQuery{Query: q, Atom: primary}
				groups[primary] = sq
			}
			sq.Points = append(sq.Points, p)
			for _, ac := range fp[1:] {
				sq.addFootprint(store.AtomID{Step: step, Code: ac.Code()})
			}
		}
	}
	out := make([]*SubQuery, 0, len(groups))
	for _, sq := range groups {
		sortMorton(space, sq.Points)
		sort.Slice(sq.Footprint, func(i, j int) bool {
			return sq.Footprint[i].Key() < sq.Footprint[j].Key()
		})
		out = append(out, sq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Atom.Key() < out[j].Atom.Key() })
	return out, nil
}

func (sq *SubQuery) addFootprint(id store.AtomID) {
	for _, existing := range sq.Footprint {
		if existing == id {
			return
		}
	}
	sq.Footprint = append(sq.Footprint, id)
}

// sortMorton sorts positions by the Morton code of their voxel so that
// points referencing the same region of an atom are evaluated together.
func sortMorton(space geom.Space, pts []geom.Position) {
	codes := make([]morton.Code, len(pts))
	for i, p := range pts {
		vx, vy, vz := space.VoxelOf(p)
		codes[i] = morton.Encode(uint32(vx), uint32(vy), uint32(vz))
	}
	sort.Sort(&byCode{pts: pts, codes: codes})
}

type byCode struct {
	pts   []geom.Position
	codes []morton.Code
}

func (b *byCode) Len() int           { return len(b.pts) }
func (b *byCode) Less(i, j int) bool { return b.codes[i] < b.codes[j] }
func (b *byCode) Swap(i, j int) {
	b.pts[i], b.pts[j] = b.pts[j], b.pts[i]
	b.codes[i], b.codes[j] = b.codes[j], b.codes[i]
}

// Atoms returns the set of primary atoms accessed by query q — A(q) in the
// paper's notation (§IV), the basis of the data-sharing test between
// queries of different jobs. A temporal-derivative query's set spans its
// whole step chain.
func Atoms(q *Query, space geom.Space) map[store.AtomID]bool {
	out := make(map[store.AtomID]bool)
	for s := 0; s < q.ChainLen(); s++ {
		for _, p := range q.Points {
			out[store.AtomID{Step: q.Step + s, Code: space.AtomOf(p).Code()}] = true
		}
	}
	return out
}

// Shares reports whether queries a and b exhibit data sharing:
// A(a) ∩ A(b) ≠ ∅.
func Shares(a, b *Query, space geom.Space) bool {
	aa := Atoms(a, space)
	for s := 0; s < b.ChainLen(); s++ {
		for _, p := range b.Points {
			if aa[store.AtomID{Step: b.Step + s, Code: space.AtomOf(p).Code()}] {
				return true
			}
		}
	}
	return false
}

// Result is the combined output of a completed query: one kernel value per
// input position, in the original position order.
type Result struct {
	Query  *Query
	Values [][field.Components]float64
	// Completed is the virtual time the final sub-query finished.
	Completed time.Duration
}

// ResponseTime is the paper's response-time measure: completion minus
// arrival.
func (r *Result) ResponseTime() time.Duration { return r.Completed - r.Query.Arrival }
