package oracle

import (
	"testing"

	"jaws/internal/workload"
)

// TestDifferentialSuite is the headline check of this package: randomized
// workloads are captured on a real engine and replayed through the
// reference models, with and without fault schedules, and every decision
// and utility must agree bit for bit. 34 seeds × (3 standard + 2 churn +
// 3 scenario-matrix + 1 tail-policy profiles) × {clean, faulted} = 612
// differential runs.
func TestDifferentialSuite(t *testing.T) {
	seeds := 34
	if testing.Short() {
		seeds = 5
	}
	results, err := Suite(seeds, true, nil)
	if err != nil {
		t.Fatalf("suite: %v", err)
	}
	if want := seeds * (3 + 2 + 3 + 1) * 2; len(results) != want {
		t.Fatalf("suite ran %d captures, want %d", len(results), want)
	}
	var crashed, decisions int
	for _, r := range results {
		if r.Divergence != nil {
			t.Errorf("%s: %v", r, r.Divergence)
		}
		for _, v := range r.Violations {
			t.Errorf("%s: invariant: %s", r, v)
		}
		if r.Crashed {
			crashed++
		}
		decisions += r.Decisions
	}
	// The fault pass is only meaningful if its crash schedules actually
	// truncate runs, and a suite that made no decisions certifies nothing.
	if crashed == 0 {
		t.Error("no capture crashed; fault schedules are not exercising the crash path")
	}
	if crashed == len(results)/2 {
		t.Error("every faulted capture crashed; no faulted run completed")
	}
	if decisions == 0 {
		t.Error("suite recorded zero scheduling decisions")
	}
}

// TestSuiteDeterminism re-captures one configuration and requires the two
// op logs to be identical — the property that makes replay-vs-recorded
// divergences meaningful.
func TestSuiteDeterminism(t *testing.T) {
	for _, a := range []Algo{AlgoNoShare, AlgoLifeRaft, AlgoJAWS} {
		cfg, _ := SuiteParams(a, 7)
		c1, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		c2, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if len(c1.Log.Ops) != len(c2.Log.Ops) {
			t.Fatalf("%v: op counts differ between identical runs: %d vs %d", a, len(c1.Log.Ops), len(c2.Log.Ops))
		}
		for i := range c1.Log.Ops {
			o1, o2 := c1.Log.Ops[i], c2.Log.Ops[i]
			if o1.Kind != o2.Kind || o1.Now != o2.Now {
				t.Fatalf("%v: op %d differs: kind %v@%v vs kind %v@%v", a, i, o1.Kind, o1.Now, o2.Kind, o2.Now)
			}
			if o1.Kind == OpDecision && !describeMatches(o1, o2) {
				t.Fatalf("%v: decision %d differs: %s vs %s", a, i, describeBatches(o1.Got), describeBatches(o2.Got))
			}
		}
	}
}

// describeMatches compares two recorded decisions structurally (sub-query
// pointers differ between runs, so batchesEqual cannot apply).
func describeMatches(a, b Op) bool {
	return describeBatches(a.Got) == describeBatches(b.Got)
}

// TestMatrixProfileCoversNewClasses opens the matrix profile's hood: the
// generated workloads must actually contain derivative chains, and the
// arrival process must cycle with the seed — otherwise the matrix pass
// would certify nothing beyond the standard profile.
func TestMatrixProfileCoversNewClasses(t *testing.T) {
	arrivals := make(map[string]bool)
	for seed := int64(1); seed <= 6; seed++ {
		cfg, _ := MatrixParams(AlgoJAWS, seed)
		name := "on-off"
		if cfg.Workload.Arrivals != nil {
			name = cfg.Workload.Arrivals.Name()
		}
		arrivals[name] = true

		wl := workload.Generate(cfg.Workload)
		derivs := 0
		for _, jb := range wl.Jobs {
			for _, q := range jb.Queries {
				if q.DerivSteps >= 2 {
					derivs++
					if q.Step+q.DerivSteps > cfg.Workload.Steps {
						t.Errorf("seed %d: chain [%d, %d) exceeds %d steps", seed, q.Step, q.Step+q.DerivSteps, cfg.Workload.Steps)
					}
				}
			}
		}
		if derivs == 0 {
			t.Errorf("seed %d: matrix workload contains no derivative chains", seed)
		}
	}
	if len(arrivals) != 3 {
		t.Errorf("six consecutive seeds covered arrival processes %v, want all 3", arrivals)
	}
}
