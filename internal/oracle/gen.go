package oracle

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"jaws/internal/field"
	"jaws/internal/geom"
	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/store"
)

// The random op-log generator: seeded synthetic scheduler interactions
// for quickcheck-style differential testing. Where the capture harness
// (harness.go) records what a real engine run happens to do, GenLog
// explores the op space directly — decisions on empty queues, residency
// snapshots that flip between consecutive decisions, α-controller
// reports mid-stream — the corners an engine-driven trace rarely
// reaches. A generated log carries no recorded answers; Diff replays it
// through the production scheduler and the reference model side by side.

// genSpace is the tiny universe random logs draw from: a 128³ grid in
// 32³ atoms (4 per axis), small enough that random enqueues collide into
// genuinely contended queues.
func genSpace() geom.Space { return geom.Space{GridSide: 128, AtomSide: 32} }

// genSub builds one pre-processed sub-query of n positions inside atom
// (i,j,k) of step, arriving at the given virtual time (the QoS deadline
// anchor).
func genSub(qid query.ID, step int, i, j, k uint32, n int, arrival time.Duration) *query.SubQuery {
	s := genSpace()
	atomLen := float64(s.AtomSide) * s.VoxelSize()
	pts := make([]geom.Position, n)
	for p := 0; p < n; p++ {
		frac := (float64(p) + 0.5) / float64(n)
		pts[p] = geom.Position{
			X: (float64(i) + frac) * atomLen,
			Y: (float64(j) + 0.5) * atomLen,
			Z: (float64(k) + 0.5) * atomLen,
		}
	}
	q := &query.Query{ID: qid, Step: step, Points: pts, Kernel: field.KernelNone, Arrival: arrival}
	sqs, err := query.PreProcess(q, s)
	if err != nil {
		panic(err)
	}
	if len(sqs) != 1 {
		panic("oracle: genSub positions spilled atoms")
	}
	return sqs[0]
}

// GenConfig sizes a random op log. The zero value is a sensible default.
type GenConfig struct {
	// Ops is the log length; zero means 400.
	Ops int
	// Steps bounds the time-step universe; zero means 3.
	Steps int
	// AtomSide bounds each per-axis atom coordinate; zero means 3.
	AtomSide int
	// MaxPoints bounds a sub-query's position count; zero means 200.
	MaxPoints int
}

// GenLog generates a seeded random scheduler op log: weighted enqueues,
// decisions under fresh random residency snapshots, and run-end reports
// that drive the adaptive α controller. The same seed always yields the
// same log, so a failing seed is a complete reproducer.
func GenLog(seed int64, cfg GenConfig) *OpLog {
	if cfg.Ops == 0 {
		cfg.Ops = 400
	}
	if cfg.Steps == 0 {
		cfg.Steps = 3
	}
	if cfg.AtomSide == 0 {
		cfg.AtomSide = 3
	}
	if cfg.MaxPoints == 0 {
		cfg.MaxPoints = 200
	}
	rng := rand.New(rand.NewSource(seed))
	log := &OpLog{}
	now := time.Duration(0)
	qid := query.ID(1)
	// seen accumulates every atom an enqueue has touched, in first-contact
	// order: the pool residency snapshots draw from. NextBatch consults
	// residency only for queued atoms, so the pool never needs to cover
	// atoms no sub-query reached.
	var seen []store.AtomID
	inSeen := make(map[store.AtomID]bool)

	for len(log.Ops) < cfg.Ops {
		now += time.Duration(rng.Intn(5)+1) * time.Millisecond
		switch r := rng.Intn(100); {
		case r < 55 || len(seen) == 0:
			sq := genSub(qid, rng.Intn(cfg.Steps),
				uint32(rng.Intn(cfg.AtomSide)), uint32(rng.Intn(cfg.AtomSide)), uint32(rng.Intn(cfg.AtomSide)),
				rng.Intn(cfg.MaxPoints)+1, now)
			qid++
			if !inSeen[sq.Atom] {
				inSeen[sq.Atom] = true
				seen = append(seen, sq.Atom)
			}
			log.Ops = append(log.Ops, Op{Kind: OpEnqueue, Now: now, Sub: sq})
		case r < 85:
			// A fresh snapshot per decision: density varies from all-miss to
			// mostly-resident so the φ(i) term flips between decisions (the
			// memo-invalidation path under test).
			var snap map[store.AtomID]bool
			if density := rng.Float64(); density > 0.2 {
				snap = make(map[store.AtomID]bool, len(seen))
				for _, id := range seen {
					if rng.Float64() < density {
						snap[id] = true
					}
				}
			}
			// A fresh gate snapshot too: per-query states flip between
			// decisions, exercising the gate-aware scoring far harder than
			// an engine run (where BlockedBy is transient) ever would. The
			// map is always drawn so gate-free and gate-aware targets
			// consume the same random stream; non-gate-aware replays simply
			// ignore it.
			gates := make(map[query.ID]sched.GateState)
			for q := query.ID(1); q < qid; q++ {
				switch g := rng.Intn(10); {
				case g < 2:
					gates[q] = sched.GateBlocked
				case g < 3:
					gates[q] = sched.GateReleasing
				}
			}
			if len(gates) == 0 {
				gates = nil
			}
			log.Ops = append(log.Ops, Op{Kind: OpDecision, Now: now, Resident: snap, Gates: gates})
		default:
			log.Ops = append(log.Ops, Op{
				Kind: OpRunEnd,
				RT:   rng.Float64()*2 + 0.01,
				TP:   rng.Float64()*50 + 1,
			})
		}
	}
	return log
}

// FormatOps renders an op log compactly, one op per line — the shape a
// shrunk reproducer is reported in.
func FormatOps(log *OpLog) string {
	var b strings.Builder
	for i, op := range log.Ops {
		switch op.Kind {
		case OpEnqueue:
			fmt.Fprintf(&b, "%3d: enq   q%d s%d/a%d ×%d @%v\n",
				i, op.Sub.Query.ID, op.Sub.Atom.Step, op.Sub.Atom.Code, len(op.Sub.Points), op.Now)
		case OpDecision:
			fmt.Fprintf(&b, "%3d: dec   @%v resident=%d gates=%d\n", i, op.Now, len(op.Resident), len(op.Gates))
		case OpRunEnd:
			fmt.Fprintf(&b, "%3d: run   rt=%g tp=%g\n", i, op.RT, op.TP)
		}
	}
	return b.String()
}
