package oracle

import (
	"sort"

	"jaws/internal/store"
)

// ModelCacheStats mirrors the accounting of cache.Stats that the model
// certifies (policy timing is an implementation concern, not semantics).
type ModelCacheStats struct {
	Hits, Misses, Evictions, Corruptions int64
}

// ModelSLRU is the reference model of the externally managed atom cache
// running the Segmented LRU policy (§V.B), restated with plain slices:
// index 0 of each segment is the MRU end. Methods return what happened —
// hit/miss, the atoms evicted — instead of firing observer hooks, so a
// differential test can compare outcomes directly.
type ModelSLRU struct {
	capacity int
	protCap  int
	prob     []store.AtomID // prob[0] = MRU
	prot     []store.AtomID
	counts   map[store.AtomID]int
	resident map[store.AtomID]bool
	stats    ModelCacheStats

	// Integrity, when non-nil, is consulted on every hit; false drops the
	// entry and reports a corruption-miss, as cache.Cache.Get does.
	Integrity func(id store.AtomID) bool
}

// NewModelSLRU builds the model for a cache of capacity atoms with
// protectedFrac (clamped to [0,0.5]) reserved for the protected segment.
func NewModelSLRU(capacity int, protectedFrac float64) *ModelSLRU {
	if protectedFrac < 0 {
		protectedFrac = 0
	}
	if protectedFrac > 0.5 {
		protectedFrac = 0.5
	}
	return &ModelSLRU{
		capacity: capacity,
		protCap:  int(float64(capacity) * protectedFrac),
		counts:   make(map[store.AtomID]int),
		resident: make(map[store.AtomID]bool),
	}
}

// Get reports whether id was served from the cache. A resident entry
// failing the integrity check is dropped and reported as a
// corruption-miss.
func (m *ModelSLRU) Get(id store.AtomID) (hit, corrupt bool) {
	if !m.resident[id] {
		m.stats.Misses++
		return false, false
	}
	if m.Integrity != nil && !m.Integrity(id) {
		m.remove(id)
		m.stats.Corruptions++
		m.stats.Misses++
		return false, true
	}
	m.stats.Hits++
	m.counts[id]++
	m.moveToFront(id)
	return true, false
}

// Contains reports residency without touching recency or stats.
func (m *ModelSLRU) Contains(id store.AtomID) bool { return m.resident[id] }

// Put inserts id, returning the victims evicted to make room (in eviction
// order). Re-inserting a resident atom only refreshes its recency.
func (m *ModelSLRU) Put(id store.AtomID) []store.AtomID {
	if m.resident[id] {
		m.counts[id]++
		m.moveToFront(id)
		return nil
	}
	var evicted []store.AtomID
	for len(m.prob)+len(m.prot) >= m.capacity {
		victim := m.victim()
		m.remove(victim)
		m.stats.Evictions++
		evicted = append(evicted, victim)
	}
	m.resident[id] = true
	m.counts[id]++
	m.prob = append([]store.AtomID{id}, m.prob...)
	return evicted
}

// victim is the probationary LRU tail, falling back to the protected tail
// when the probationary segment is empty.
func (m *ModelSLRU) victim() store.AtomID {
	if n := len(m.prob); n > 0 {
		return m.prob[n-1]
	}
	return m.prot[len(m.prot)-1]
}

// EndRun promotes the run's most accessed resident atoms into the
// protected segment: rank by (count desc, key asc), keep the top protCap,
// demote protected losers to the probationary MRU end (in protected MRU
// order), promote winners in rank order, reset counts.
func (m *ModelSLRU) EndRun() {
	defer func() { m.counts = make(map[store.AtomID]int) }()
	if m.protCap == 0 {
		return
	}
	var ranked []store.AtomID
	for id := range m.counts {
		if m.resident[id] {
			ranked = append(ranked, id)
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if m.counts[ranked[i]] != m.counts[ranked[j]] {
			return m.counts[ranked[i]] > m.counts[ranked[j]]
		}
		return ranked[i].Key() < ranked[j].Key()
	})
	if len(ranked) > m.protCap {
		ranked = ranked[:m.protCap]
	}
	keep := make(map[store.AtomID]bool, len(ranked))
	for _, id := range ranked {
		keep[id] = true
	}
	var stay []store.AtomID
	for _, id := range m.prot { // MRU → LRU, as the production list walk
		if keep[id] {
			stay = append(stay, id)
		} else {
			m.prob = append([]store.AtomID{id}, m.prob...)
		}
	}
	m.prot = stay
	for _, id := range ranked {
		if m.inProt(id) {
			continue
		}
		m.dropFromProb(id)
		m.prot = append([]store.AtomID{id}, m.prot...)
	}
}

// Flush evicts everything, returning the victims sorted by key (the
// production flush iterates a map, so only the set is specified).
func (m *ModelSLRU) Flush() []store.AtomID {
	out := make([]store.AtomID, 0, len(m.resident))
	for id := range m.resident {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	for _, id := range out {
		m.remove(id)
		m.stats.Evictions++
	}
	return out
}

// Len reports the number of resident atoms.
func (m *ModelSLRU) Len() int { return len(m.prob) + len(m.prot) }

// ProtectedLen reports the protected-segment size.
func (m *ModelSLRU) ProtectedLen() int { return len(m.prot) }

// Resident returns the resident atom set sorted by key.
func (m *ModelSLRU) Resident() []store.AtomID {
	out := make([]store.AtomID, 0, len(m.resident))
	for id := range m.resident {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Stats returns a copy of the counters.
func (m *ModelSLRU) Stats() ModelCacheStats { return m.stats }

func (m *ModelSLRU) inProt(id store.AtomID) bool {
	for _, p := range m.prot {
		if p == id {
			return true
		}
	}
	return false
}

func (m *ModelSLRU) dropFromProb(id store.AtomID) {
	for i, p := range m.prob {
		if p == id {
			m.prob = append(m.prob[:i], m.prob[i+1:]...)
			return
		}
	}
}

func (m *ModelSLRU) moveToFront(id store.AtomID) {
	if m.inProt(id) {
		for i, p := range m.prot {
			if p == id {
				m.prot = append(m.prot[:i], m.prot[i+1:]...)
				break
			}
		}
		m.prot = append([]store.AtomID{id}, m.prot...)
		return
	}
	m.dropFromProb(id)
	m.prob = append([]store.AtomID{id}, m.prob...)
}

func (m *ModelSLRU) remove(id store.AtomID) {
	delete(m.resident, id)
	delete(m.counts, id)
	if m.inProt(id) {
		for i, p := range m.prot {
			if p == id {
				m.prot = append(m.prot[:i], m.prot[i+1:]...)
				return
			}
		}
	}
	m.dropFromProb(id)
}
