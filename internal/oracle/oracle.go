// Package oracle is the correctness backstop for the JAWS scheduler
// family: a small, obviously-correct executable reference model of the
// paper's scheduling semantics, a differential harness that replays
// recorded workloads through both the model and the production
// internal/sched, internal/jobgraph and internal/cache paths, and a set of
// invariant checkers any test can call.
//
// The models trade every optimization for legibility: plain sorted slices
// instead of hash maps, one loop per rule of the paper, no shared state
// with the production code. Where the production implementation iterates a
// map under a deterministic tie-break, the model iterates a sorted slice
// and relies on order alone; agreement between the two is exactly what the
// differential harness certifies:
//
//   - utility scoring — Eq. 1's workload throughput U_t and Eq. 2's aged
//     metric U_e, including the §V.A adaptive age-bias controller;
//   - LifeRaft's single-best-queue selection and JAWS's two-level
//     time-step/atom batching (Fig. 6), with NoShare's arrival-order
//     baseline;
//   - gated execution (§IV, Fig. 4): alignment, gating-number deadlock
//     checks and precedence consistency (see ModelGraph);
//   - SLRU admission, eviction, and end-of-run promotion (see ModelSLRU).
//
// See diff.go for the recording/replay/shrinking harness and
// invariants.go for the reusable checkers.
package oracle

import (
	"math"
	"sort"
	"time"

	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/store"
)

// Algo names the scheduling algorithm a model reproduces.
type Algo int

const (
	// AlgoNoShare is the arrival-order baseline.
	AlgoNoShare Algo = iota
	// AlgoLifeRaft is aged-utility single-queue selection with fixed α.
	AlgoLifeRaft
	// AlgoJAWS is two-level batching with adaptive starvation resistance.
	AlgoJAWS
)

// String names the algorithm.
func (a Algo) String() string {
	switch a {
	case AlgoNoShare:
		return "NoShare"
	case AlgoLifeRaft:
		return "LifeRaft"
	case AlgoJAWS:
		return "JAWS"
	}
	return "Algo(?)"
}

// Params fixes the scheduler parameters a model (and the production
// scheduler it shadows) runs with.
type Params struct {
	// Cost is the T_b/T_m model of Eq. 1.
	Cost sched.CostModel
	// BatchSize is JAWS's k (ignored by the other algorithms).
	BatchSize int
	// Alpha is LifeRaft's fixed age bias, or JAWS's initial one.
	Alpha float64
	// Adaptive enables the §V.A controller (JAWS only).
	Adaptive bool
}

// Model is the oracle-side scheduler interface. Residency for the φ(i)
// term is supplied per decision, because the model holds no cache: the
// harness snapshots the production cache (or the recorded snapshot) and
// hands the same view to both sides.
type Model interface {
	// Enqueue admits one sub-query at virtual time now.
	Enqueue(sq *query.SubQuery, now time.Duration)
	// NextBatch selects and removes the next decision's batches; resident
	// reports cache residency for the φ(i) term (may be nil = all misses).
	NextBatch(now time.Duration, resident func(store.AtomID) bool) []sched.Batch
	// OnRunEnd feeds one adaptation run's performance to the α controller.
	OnRunEnd(rt, tp float64)
	// Alpha reports the current age bias.
	Alpha() float64
	// Pending reports the number of queued sub-queries.
	Pending() int
}

// UtilityModel is the oracle-side counterpart of sched.UtilityProvider:
// reference utility accessors computed by naive rescan over the sorted
// queue list, taking the residency snapshot explicitly (the model holds
// no cache). The differential harness compares these against the
// production scheduler's memoized answers with strict float equality.
type UtilityModel interface {
	// AtomUtility returns Eq. 1's U_t for the atom's pending queue, 0
	// when the atom has no pending work.
	AtomUtility(id store.AtomID, resident func(store.AtomID) bool) float64
	// StepMean returns the mean U_t over the step's pending atoms, 0 when
	// the step has no pending work.
	StepMean(step int, resident func(store.AtomID) bool) float64
	// PendingSteps lists the steps with pending work, ascending.
	PendingSteps() []int
	// PendingAtoms lists every atom with pending work in clustered-index
	// key order.
	PendingAtoms() []store.AtomID
}

// NewModel builds the reference model for the algorithm.
func NewModel(a Algo, p Params) Model {
	switch a {
	case AlgoNoShare:
		return &modelNoShare{}
	case AlgoLifeRaft:
		return &modelLifeRaft{cost: p.Cost, alpha: clamp01(p.Alpha)}
	default:
		k := p.BatchSize
		if k <= 0 {
			k = 15
		}
		return &modelJAWS{
			cost: p.Cost,
			k:    k,
			ctrl: modelAlphaController{alpha: clamp01(p.Alpha), adaptive: p.Adaptive, exploreSign: 1},
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// modelQueue is one atom's workload queue: the pending sub-queries, their
// total position count, and the enqueue time of the oldest.
type modelQueue struct {
	atom      store.AtomID
	subs      []*query.SubQuery
	positions int
	oldest    time.Duration
}

// queueList keeps atom queues sorted by clustered-index key, so every
// model iteration is in Morton order by construction.
type queueList struct {
	queues []*modelQueue
	subs   int
}

// add appends sq to its atom's queue, creating the queue (in key order) on
// first contact.
func (l *queueList) add(sq *query.SubQuery, now time.Duration) {
	i := sort.Search(len(l.queues), func(i int) bool {
		return l.queues[i].atom.Key() >= sq.Atom.Key()
	})
	if i == len(l.queues) || l.queues[i].atom != sq.Atom {
		l.queues = append(l.queues, nil)
		copy(l.queues[i+1:], l.queues[i:])
		l.queues[i] = &modelQueue{atom: sq.Atom, oldest: now}
	}
	q := l.queues[i]
	q.subs = append(q.subs, sq)
	q.positions += len(sq.Points)
	l.subs++
}

// take removes queue q and returns it as a batch.
func (l *queueList) take(q *modelQueue) sched.Batch {
	for i, cand := range l.queues {
		if cand == q {
			l.queues = append(l.queues[:i], l.queues[i+1:]...)
			break
		}
	}
	l.subs -= len(q.subs)
	return sched.Batch{Atom: q.atom, SubQueries: q.subs}
}

// steps returns the distinct time steps with pending work, ascending.
func (l *queueList) steps() []int {
	var out []int
	for _, q := range l.queues {
		if n := len(out); n == 0 || out[n-1] != q.atom.Step {
			out = append(out, q.atom.Step)
		}
	}
	sort.Ints(out)
	// The queues are sorted by Key (step-major), so steps already come out
	// ascending; the sort is belt and braces for readability.
	return out
}

// ofStep returns the step's queues in Morton order (a subslice view).
func (l *queueList) ofStep(step int) []*modelQueue {
	var out []*modelQueue
	for _, q := range l.queues {
		if q.atom.Step == step {
			out = append(out, q)
		}
	}
	return out
}

// atoms returns every pending atom in key order.
func (l *queueList) atoms() []store.AtomID {
	out := make([]store.AtomID, len(l.queues))
	for i, q := range l.queues {
		out[i] = q.atom
	}
	return out
}

// atomUtility returns the atom's Eq. 1 value, 0 when it has no queue.
func (l *queueList) atomUtility(cost sched.CostModel, id store.AtomID, resident func(store.AtomID) bool) float64 {
	for _, q := range l.queues {
		if q.atom == id {
			return ut(cost, q, resident)
		}
	}
	return 0
}

// stepMean returns the mean Eq. 1 value over the step's queues, summing
// in key-ascending order — the same accumulation order as the production
// buckets, so agreement is bit-exact, not approximate.
func (l *queueList) stepMean(cost sched.CostModel, step int, resident func(store.AtomID) bool) float64 {
	qs := l.ofStep(step)
	if len(qs) == 0 {
		return 0
	}
	sum := 0.0
	for _, q := range qs {
		sum += ut(cost, q, resident)
	}
	return sum / float64(len(qs))
}

// ut computes Eq. 1: U_t(i) = ΣW / (T_b·φ(i) + T_m·ΣW), with φ(i) = 0 for
// a cache-resident atom.
func ut(cost sched.CostModel, q *modelQueue, resident func(store.AtomID) bool) float64 {
	w := float64(q.positions)
	phi := 1.0
	if resident != nil && resident(q.atom) {
		phi = 0
	}
	denom := cost.Tb.Seconds()*phi + cost.Tm.Seconds()*w
	if denom <= 0 {
		return 0
	}
	return w / denom
}

// ue computes Eq. 2: U_e(i) = U_t(i)·(1−α) + E(i)·α, with E(i) the age of
// the oldest pending sub-query in milliseconds.
func ue(cost sched.CostModel, q *modelQueue, alpha float64, now time.Duration, resident func(store.AtomID) bool) float64 {
	ageMs := float64(now-q.oldest) / float64(time.Millisecond)
	return ut(cost, q, resident)*(1-alpha) + ageMs*alpha
}

// --- NoShare -------------------------------------------------------------

// modelNoShare serves whole queries strictly in the order their first
// sub-query arrived, one batch per sub-query.
type modelNoShare struct {
	fifo    []*modelNSQuery
	pending int
}

type modelNSQuery struct {
	id   query.ID
	subs []*query.SubQuery
}

func (m *modelNoShare) Enqueue(sq *query.SubQuery, now time.Duration) {
	for _, q := range m.fifo {
		if q.id == sq.Query.ID {
			q.subs = append(q.subs, sq)
			m.pending++
			return
		}
	}
	m.fifo = append(m.fifo, &modelNSQuery{id: sq.Query.ID, subs: []*query.SubQuery{sq}})
	m.pending++
}

func (m *modelNoShare) NextBatch(now time.Duration, resident func(store.AtomID) bool) []sched.Batch {
	if len(m.fifo) == 0 {
		return nil
	}
	q := m.fifo[0]
	m.fifo = m.fifo[1:]
	out := make([]sched.Batch, len(q.subs))
	for i, sq := range q.subs {
		out[i] = sched.Batch{Atom: sq.Atom, SubQueries: []*query.SubQuery{sq}}
	}
	m.pending -= len(q.subs)
	return out
}

func (m *modelNoShare) OnRunEnd(rt, tp float64) {}
func (m *modelNoShare) Alpha() float64          { return 0 }
func (m *modelNoShare) Pending() int            { return m.pending }

// --- LifeRaft ------------------------------------------------------------

// modelLifeRaft picks the single atom queue with the highest aged metric
// (ties to the lowest clustered-index key).
type modelLifeRaft struct {
	cost  sched.CostModel
	alpha float64
	q     queueList
}

func (m *modelLifeRaft) Enqueue(sq *query.SubQuery, now time.Duration) { m.q.add(sq, now) }

func (m *modelLifeRaft) NextBatch(now time.Duration, resident func(store.AtomID) bool) []sched.Batch {
	var best *modelQueue
	bestScore := 0.0
	// Key-ascending iteration: strict > keeps the lowest key on ties.
	for _, q := range m.q.queues {
		if score := ue(m.cost, q, m.alpha, now, resident); best == nil || score > bestScore {
			best, bestScore = q, score
		}
	}
	if best == nil {
		return nil
	}
	return []sched.Batch{m.q.take(best)}
}

func (m *modelLifeRaft) OnRunEnd(rt, tp float64) {}
func (m *modelLifeRaft) Alpha() float64          { return m.alpha }
func (m *modelLifeRaft) Pending() int            { return m.q.subs }

// AtomUtility implements UtilityModel.
func (m *modelLifeRaft) AtomUtility(id store.AtomID, resident func(store.AtomID) bool) float64 {
	return m.q.atomUtility(m.cost, id, resident)
}

// StepMean implements UtilityModel.
func (m *modelLifeRaft) StepMean(step int, resident func(store.AtomID) bool) float64 {
	return m.q.stepMean(m.cost, step, resident)
}

// PendingSteps implements UtilityModel.
func (m *modelLifeRaft) PendingSteps() []int { return m.q.steps() }

// PendingAtoms implements UtilityModel.
func (m *modelLifeRaft) PendingAtoms() []store.AtomID { return m.q.atoms() }

// --- JAWS ----------------------------------------------------------------

// modelJAWS is the two-level selection of Fig. 6: the time step with the
// highest mean aged metric, then up to k above-mean atoms of that step in
// Morton order (or the single best atom when none exceeds the mean).
type modelJAWS struct {
	cost sched.CostModel
	k    int
	ctrl modelAlphaController
	q    queueList
	// lastTrunc is the most recent decision's batch-full pass-over count,
	// mirroring the production scheduler's LastTruncated for the
	// adaptive-batch policy model.
	lastTrunc int
}

func (m *modelJAWS) Enqueue(sq *query.SubQuery, now time.Duration) { m.q.add(sq, now) }

func (m *modelJAWS) NextBatch(now time.Duration, resident func(store.AtomID) bool) []sched.Batch {
	m.lastTrunc = 0
	if m.q.subs == 0 {
		return nil
	}
	alpha := m.ctrl.alpha

	// Level one: the step with the highest mean aged metric; ascending
	// iteration plus strict > resolves ties to the lowest step.
	bestStep, bestMean := -1, 0.0
	for _, step := range m.q.steps() {
		queues := m.q.ofStep(step)
		sum := 0.0
		for _, q := range queues {
			sum += ue(m.cost, q, alpha, now, resident)
		}
		mean := sum / float64(len(queues))
		if bestStep < 0 || mean > bestMean {
			bestStep, bestMean = step, mean
		}
	}

	// Level two: the above-mean atoms of that step; if none strictly
	// exceeds the mean, the single best atom keeps the schedule moving.
	queues := m.q.ofStep(bestStep)
	var selected []*modelQueue
	var fallback *modelQueue
	fallbackScore := 0.0
	for _, q := range queues {
		score := ue(m.cost, q, alpha, now, resident)
		if score > bestMean {
			selected = append(selected, q)
		}
		if fallback == nil || score > fallbackScore {
			fallback, fallbackScore = q, score
		}
	}
	if len(selected) == 0 {
		selected = []*modelQueue{fallback}
	}
	// Keep the k most contentious (score-descending, key-ascending on
	// ties), then execute in Morton order.
	if len(selected) > m.k {
		m.lastTrunc = len(selected) - m.k
		sort.SliceStable(selected, func(i, j int) bool {
			si := ue(m.cost, selected[i], alpha, now, resident)
			sj := ue(m.cost, selected[j], alpha, now, resident)
			if si != sj {
				return si > sj
			}
			return selected[i].atom.Key() < selected[j].atom.Key()
		})
		selected = selected[:m.k]
		sort.Slice(selected, func(i, j int) bool {
			return selected[i].atom.Key() < selected[j].atom.Key()
		})
	}
	out := make([]sched.Batch, len(selected))
	for i, q := range selected {
		out[i] = m.q.take(q)
	}
	return out
}

func (m *modelJAWS) OnRunEnd(rt, tp float64) { m.ctrl.onRunEnd(rt, tp) }
func (m *modelJAWS) Alpha() float64          { return m.ctrl.alpha }
func (m *modelJAWS) Pending() int            { return m.q.subs }

// AtomUtility implements UtilityModel.
func (m *modelJAWS) AtomUtility(id store.AtomID, resident func(store.AtomID) bool) float64 {
	return m.q.atomUtility(m.cost, id, resident)
}

// StepMean implements UtilityModel.
func (m *modelJAWS) StepMean(step int, resident func(store.AtomID) bool) float64 {
	return m.q.stepMean(m.cost, step, resident)
}

// PendingSteps implements UtilityModel.
func (m *modelJAWS) PendingSteps() []int { return m.q.steps() }

// PendingAtoms implements UtilityModel.
func (m *modelJAWS) PendingAtoms() []store.AtomID { return m.q.atoms() }

func (m *modelJAWS) setBatchSize(k int) {
	if k < 1 {
		k = 1
	}
	m.k = k
}
func (m *modelJAWS) batchSize() int     { return m.k }
func (m *modelJAWS) lastTruncated() int { return m.lastTrunc }

var (
	_ UtilityModel = (*modelLifeRaft)(nil)
	_ UtilityModel = (*modelJAWS)(nil)
)

// modelAlphaController is the §V.A starvation-resistance controller,
// restated from the paper: smooth each run's response time and throughput
// with the EWMA x' = 0.2·x + 0.8·x' (x'(0) = x(0)), compare consecutive
// smoothed runs, and move α toward contention when saturation rises
// without commensurate throughput, toward age when slack appears, with a
// ±0.05 alternating probe after two flat runs.
type modelAlphaController struct {
	alpha    float64
	adaptive bool

	rtS, tpS       float64
	started        bool
	prevRt, prevTp float64
	havePrev       bool
	flatRuns       int
	exploreSign    float64
}

func (c *modelAlphaController) smooth(rt, tp float64) (float64, float64) {
	// w and 1-w are computed the way the production EWMA does (runtime
	// 1-w, not a 0.8 literal) so the smoothing is bit-identical.
	w := 0.2
	if !c.started {
		c.rtS, c.tpS = rt, tp
		c.started = true
	} else {
		c.rtS = w*rt + (1-w)*c.rtS
		c.tpS = w*tp + (1-w)*c.tpS
	}
	return c.rtS, c.tpS
}

func (c *modelAlphaController) onRunEnd(rt, tp float64) {
	if !c.adaptive {
		return
	}
	srt, stp := c.smooth(rt, tp)
	if !c.havePrev {
		c.prevRt, c.prevTp = srt, stp
		c.havePrev = true
		return
	}
	if c.prevRt <= 0 || c.prevTp <= 0 {
		c.prevRt, c.prevTp = srt, stp
		return
	}
	rtRatio := srt / c.prevRt
	tpRatio := stp / c.prevTp
	c.prevRt, c.prevTp = srt, stp

	// The update expressions mirror the production controller verbatim:
	// bit-exact agreement matters, and expressions like α + fl(1−α) do
	// not round to the same double as branch-reconstructed equivalents.
	delta := rtRatio - tpRatio
	switch {
	case rtRatio >= 1 && tpRatio < rtRatio:
		c.alpha -= math.Min(delta, c.alpha)
		c.flatRuns = 0
	case rtRatio < 1 && tpRatio < rtRatio:
		c.alpha += math.Min(delta, 1-c.alpha)
		c.flatRuns = 0
	case math.Abs(rtRatio-1) < 0.01 && math.Abs(tpRatio-1) < 0.01:
		c.flatRuns++
		if c.flatRuns >= 2 {
			c.alpha += c.exploreSign * 0.05
			c.exploreSign = -c.exploreSign
			c.flatRuns = 0
		}
	default:
		c.flatRuns = 0
	}
	c.alpha = clamp01(c.alpha)
}
