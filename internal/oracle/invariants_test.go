package oracle

import (
	"strings"
	"testing"
	"time"

	"jaws/internal/cache"
	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/store"
)

// The checkers are only worth trusting if they actually flag broken runs;
// these tests hand them fabricated violations.

func subOf(qid query.ID, atom store.AtomID) *query.SubQuery {
	return &query.SubQuery{Query: &query.Query{ID: qid}, Atom: atom}
}

func TestCheckExactlyOnceFlagsViolations(t *testing.T) {
	a := store.AtomID{Step: 1, Code: 9}
	enqueued := subOf(1, a)
	ghost := subOf(2, a)
	c := &Capture{
		Log: &OpLog{Ops: []Op{
			{Kind: OpEnqueue, Now: 10, Sub: enqueued},
		}},
		Decisions: []Decision{
			// Served before its enqueue time, served twice, plus a sub-query
			// the scheduler was never given.
			{Now: 5, Batches: []sched.Batch{{Atom: a, SubQueries: []*query.SubQuery{enqueued, ghost}}}},
			{Now: 20, Batches: []sched.Batch{{Atom: a, SubQueries: []*query.SubQuery{enqueued}}}},
		},
	}
	out := CheckExactlyOnce(c, true)
	for _, want := range []string{"never-enqueued", "enqueued later", "served 2 times"} {
		if !containsAny(out, want) {
			t.Errorf("missing %q violation in %q", want, out)
		}
	}

	// A clean single-serve log must pass, and an unserved sub-query must
	// only be flagged on complete runs.
	c = &Capture{
		Log:       &OpLog{Ops: []Op{{Kind: OpEnqueue, Now: 10, Sub: enqueued}}},
		Decisions: nil,
	}
	if out := CheckExactlyOnce(c, false); len(out) != 0 {
		t.Errorf("crashed-run capture flagged: %q", out)
	}
	if out := CheckExactlyOnce(c, true); !containsAny(out, "never served") {
		t.Errorf("complete run with unserved sub-query not flagged: %q", out)
	}
}

func TestCheckSpanConservationFlagsViolations(t *testing.T) {
	good := obs.Span{Query: 1, Arrival: 0, Done: 10 * time.Millisecond, Queued: 4 * time.Millisecond, Disk: 6 * time.Millisecond}
	bad := obs.Span{Query: 2, Arrival: 0, Done: 10 * time.Millisecond, Queued: 4 * time.Millisecond}
	if out := CheckSpanConservation([]obs.Span{good}); len(out) != 0 {
		t.Errorf("conserving span flagged: %q", out)
	}
	if out := CheckSpanConservation([]obs.Span{good, bad}); !containsAny(out, "query 2") {
		t.Errorf("leaking span not flagged: %q", out)
	}
}

func TestCheckCacheBalanceFlagsViolations(t *testing.T) {
	if out := CheckCacheBalance(cache.Stats{Misses: 10, Evictions: 3, Corruptions: 1}, 6); len(out) != 0 {
		t.Errorf("balanced accounting flagged: %q", out)
	}
	if out := CheckCacheBalance(cache.Stats{Misses: 10, Evictions: 3}, 6); !containsAny(out, "cache accounting") {
		t.Errorf("unbalanced accounting not flagged: %q", out)
	}
}

func containsAny(out []string, want string) bool {
	for _, s := range out {
		if strings.Contains(s, want) {
			return true
		}
	}
	return false
}
