package oracle

import (
	"fmt"
	"time"

	"jaws/internal/cache"
	"jaws/internal/job"
	"jaws/internal/jobgraph"
	"jaws/internal/obs"
	"jaws/internal/query"
)

// The invariant checkers certify properties every correct run must hold,
// independent of which scheduler produced it. Each returns a list of
// violation descriptions (nil means the invariant holds) so tests can
// report every breach, not just the first.

// CheckExactlyOnce verifies exactly-once atom evaluation from the
// engine-level decision trace: every enqueued sub-query is served by
// exactly one decision, never before it was enqueued, and no decision
// serves a sub-query that was never enqueued. complete distinguishes a
// run that finished (crashed runs legitimately leave sub-queries pending,
// so only the at-most-once half applies).
func CheckExactlyOnce(c *Capture, complete bool) []string {
	var out []string
	enqueuedAt := make(map[*query.SubQuery]time.Duration)
	for _, op := range c.Log.Ops {
		if op.Kind != OpEnqueue {
			continue
		}
		if _, dup := enqueuedAt[op.Sub]; dup {
			out = append(out, fmt.Sprintf("sub-query %v of query %d enqueued twice", op.Sub.Atom, op.Sub.Query.ID))
		}
		enqueuedAt[op.Sub] = op.Now
	}
	served := make(map[*query.SubQuery]int)
	for di, d := range c.Decisions {
		for _, b := range d.Batches {
			for _, sq := range b.SubQueries {
				at, known := enqueuedAt[sq]
				if !known {
					out = append(out, fmt.Sprintf("decision %d serves never-enqueued sub-query %v of query %d", di, sq.Atom, sq.Query.ID))
					continue
				}
				if d.Now < at {
					out = append(out, fmt.Sprintf("decision %d at %v serves sub-query %v of query %d enqueued later at %v", di, d.Now, sq.Atom, sq.Query.ID, at))
				}
				served[sq]++
				if served[sq] > 1 {
					out = append(out, fmt.Sprintf("sub-query %v of query %d served %d times", sq.Atom, sq.Query.ID, served[sq]))
				}
			}
		}
	}
	if complete {
		for sq := range enqueuedAt {
			if served[sq] == 0 {
				out = append(out, fmt.Sprintf("sub-query %v of query %d enqueued but never served", sq.Atom, sq.Query.ID))
			}
		}
	}
	return out
}

// CheckGateRelease verifies gated execution's serving discipline against
// the reference partner sets (Capture.Partners):
//
//   - precedence: an ordered job's query seq+1 is never admitted before
//     the last serve of query seq (completion is later still);
//   - gating: no gated query is served before its gate releases — every
//     partner must have been admitted (its sharing opportunity live) no
//     later than the serving decision.
//
// A partner absent from the log is only legal when the run crashed.
func CheckGateRelease(c *Capture) []string {
	var out []string
	firstEnq := make(map[jobgraph.Ref]time.Duration)
	lastServe := make(map[jobgraph.Ref]time.Duration)
	ordered := make(map[int64]bool)
	for _, j := range c.Jobs {
		if j.Type == job.Ordered {
			ordered[j.ID] = true
		}
	}
	refOf := func(q *query.Query) jobgraph.Ref { return jobgraph.Ref{Job: q.JobID, Seq: q.Seq} }
	for _, op := range c.Log.Ops {
		if op.Kind != OpEnqueue || !ordered[op.Sub.Query.JobID] {
			continue
		}
		r := refOf(op.Sub.Query)
		if _, seen := firstEnq[r]; !seen {
			firstEnq[r] = op.Now
		}
	}
	for _, d := range c.Decisions {
		for _, b := range d.Batches {
			for _, sq := range b.SubQueries {
				if ordered[sq.Query.JobID] {
					lastServe[refOf(sq.Query)] = d.Now
				}
			}
		}
	}
	for r, enq := range firstEnq {
		if r.Seq == 0 {
			continue
		}
		pred := jobgraph.Ref{Job: r.Job, Seq: r.Seq - 1}
		if last, servedPred := lastServe[pred]; !servedPred {
			out = append(out, fmt.Sprintf("%v admitted but predecessor %v never served", r, pred))
		} else if enq < last {
			out = append(out, fmt.Sprintf("%v admitted at %v before predecessor %v finished serving at %v", r, enq, pred, last))
		}
	}
	for _, d := range c.Decisions {
		for _, b := range d.Batches {
			for _, sq := range b.SubQueries {
				r := refOf(sq.Query)
				for _, p := range c.Partners[r] {
					at, admitted := firstEnq[p]
					if !admitted {
						if c.RunErr == nil {
							out = append(out, fmt.Sprintf("gated %v served but partner %v never admitted", r, p))
						}
						continue
					}
					if at > d.Now {
						out = append(out, fmt.Sprintf("gated %v served at %v before partner %v admitted at %v", r, d.Now, p, at))
					}
				}
			}
		}
	}
	return out
}

// CheckSpanConservation verifies the response-time attribution invariant:
// each completed span's phase components sum exactly to its total.
func CheckSpanConservation(spans []obs.Span) []string {
	var out []string
	for _, s := range spans {
		if s.PhaseSum() != s.Total() {
			out = append(out, fmt.Sprintf("query %d: phases sum to %v, total %v", s.Query, s.PhaseSum(), s.Total()))
		}
	}
	return out
}

// CheckCacheBalance verifies the cache accounting identity for a
// completed run without prefetching: every miss inserts exactly one atom,
// every eviction and corruption-drop removes one, so
// Misses − Evictions − Corruptions must equal the resident count. (A run
// aborted mid-read counts a miss whose insert never happened; prefetch
// inserts without a miss — neither applies to harness captures.)
func CheckCacheBalance(st cache.Stats, residentLen int) []string {
	if got := st.Misses - st.Evictions - st.Corruptions; got != int64(residentLen) {
		return []string{fmt.Sprintf("cache accounting: misses(%d) − evictions(%d) − corruptions(%d) = %d, but %d atoms resident",
			st.Misses, st.Evictions, st.Corruptions, got, residentLen)}
	}
	return nil
}
