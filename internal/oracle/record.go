package oracle

import (
	"fmt"
	"time"

	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/store"
)

// OpKind discriminates the operations of an OpLog.
type OpKind int

const (
	// OpEnqueue is one sub-query admission.
	OpEnqueue OpKind = iota
	// OpDecision is one NextBatch call, with the cache-residency snapshot
	// the production scheduler saw and the batches it returned.
	OpDecision
	// OpRunEnd is one adaptation-run report to the α controller.
	OpRunEnd
)

// Op is one recorded scheduler interaction. Exactly the fields of its
// kind are set.
type Op struct {
	Kind OpKind
	Now  time.Duration

	// Enqueue.
	Sub *query.SubQuery

	// Decision. Resident snapshots residency of every then-pending atom —
	// NextBatch consults the cache only for queued atoms, and the cache
	// cannot change during the call, so the snapshot is exact. Got is the
	// production scheduler's answer (nil once a log has been shrunk).
	Resident map[store.AtomID]bool
	Got      []sched.Batch
	// Gates snapshots the gate source's answer for every then-pending
	// query (gate-aware schedulers only; the graph cannot change during
	// the call, so the snapshot is exact). Only non-GateFree states are
	// stored — absent queries read GateFree, matching the source.
	Gates map[query.ID]sched.GateState

	// Run end.
	RT, TP float64
}

// OpLog is a recorded sequence of scheduler interactions, replayable
// against any Model or production scheduler.
type OpLog struct {
	Ops []Op
}

// Enqueues returns the enqueue ops in order.
func (l *OpLog) Enqueues() []Op {
	var out []Op
	for _, op := range l.Ops {
		if op.Kind == OpEnqueue {
			out = append(out, op)
		}
	}
	return out
}

// Decisions returns the decision ops in order.
func (l *OpLog) Decisions() []Op {
	var out []Op
	for _, op := range l.Ops {
		if op.Kind == OpDecision {
			out = append(out, op)
		}
	}
	return out
}

// RecordingSched wraps a production scheduler, recording every
// interaction into an OpLog while delegating unchanged. The engine's
// behaviour is unaffected: the wrapper adds bookkeeping, never decisions.
type RecordingSched struct {
	inner    sched.Scheduler
	resident func(store.AtomID) bool
	log      *OpLog
	pending  map[store.AtomID]int
	// pendingQ counts pending sub-queries per query, so decisions can
	// snapshot the gate source for exactly the queries the scheduler may
	// consult. gateFn is the installed source; gateAware records whether
	// the inner scheduler consumes it (snapshots are skipped otherwise).
	pendingQ  map[query.ID]int
	gateFn    func(query.ID) sched.GateState
	gateAware bool
}

// NewRecordingSched wraps inner. resident is the same residency oracle
// the production scheduler consults (the cache's Contains); it is used
// only to snapshot, never to decide, and may be nil.
func NewRecordingSched(inner sched.Scheduler, resident func(store.AtomID) bool) *RecordingSched {
	_, gateAware := inner.(sched.GateAware)
	return &RecordingSched{
		inner:     inner,
		resident:  resident,
		log:       &OpLog{},
		pending:   make(map[store.AtomID]int),
		pendingQ:  make(map[query.ID]int),
		gateAware: gateAware,
	}
}

// Log returns the accumulated op log.
func (r *RecordingSched) Log() *OpLog { return r.log }

// Name implements sched.Scheduler.
func (r *RecordingSched) Name() string { return r.inner.Name() }

// Enqueue implements sched.Scheduler.
func (r *RecordingSched) Enqueue(sq *query.SubQuery, now time.Duration) {
	r.log.Ops = append(r.log.Ops, Op{Kind: OpEnqueue, Now: now, Sub: sq})
	r.pending[sq.Atom]++
	r.pendingQ[sq.Query.ID]++
	r.inner.Enqueue(sq, now)
}

// NextBatch implements sched.Scheduler: snapshot residency of the pending
// atoms, delegate, record the answer.
func (r *RecordingSched) NextBatch(now time.Duration) []sched.Batch {
	snap := make(map[store.AtomID]bool, len(r.pending))
	for id := range r.pending {
		snap[id] = r.resident != nil && r.resident(id)
	}
	var gates map[query.ID]sched.GateState
	if r.gateAware && r.gateFn != nil {
		gates = make(map[query.ID]sched.GateState, len(r.pendingQ))
		for qid := range r.pendingQ {
			if st := r.gateFn(qid); st != sched.GateFree {
				gates[qid] = st
			}
		}
	}
	got := r.inner.NextBatch(now)
	rec := make([]sched.Batch, len(got))
	for i, b := range got {
		rec[i] = sched.Batch{Atom: b.Atom, SubQueries: append([]*query.SubQuery(nil), b.SubQueries...)}
		if r.pending[b.Atom] -= len(b.SubQueries); r.pending[b.Atom] <= 0 {
			delete(r.pending, b.Atom)
		}
		for _, sq := range b.SubQueries {
			if r.pendingQ[sq.Query.ID]--; r.pendingQ[sq.Query.ID] <= 0 {
				delete(r.pendingQ, sq.Query.ID)
			}
		}
	}
	r.log.Ops = append(r.log.Ops, Op{Kind: OpDecision, Now: now, Resident: snap, Got: rec, Gates: gates})
	return got
}

// Pending implements sched.Scheduler.
func (r *RecordingSched) Pending() int { return r.inner.Pending() }

// OnRunEnd implements sched.Scheduler.
func (r *RecordingSched) OnRunEnd(rt, tp float64) {
	r.log.Ops = append(r.log.Ops, Op{Kind: OpRunEnd, RT: rt, TP: tp})
	r.inner.OnRunEnd(rt, tp)
}

// Alpha implements sched.Scheduler.
func (r *RecordingSched) Alpha() float64 { return r.inner.Alpha() }

// SetTracer implements sched.Traced, passing the tracer through so an
// instrumented engine traces the wrapped scheduler as usual.
func (r *RecordingSched) SetTracer(t *obs.Tracer) {
	if tr, ok := r.inner.(sched.Traced); ok {
		tr.SetTracer(t)
	}
}

// SetResidencyVersion implements sched.ResidencyVersioned, passing the
// cache's mutation counter through so the wrapped scheduler's memoized
// utility path stays engaged under recording — the differential suite
// must certify the incremental structures, not a fallback.
func (r *RecordingSched) SetResidencyVersion(fn func() uint64) {
	if rv, ok := r.inner.(sched.ResidencyVersioned); ok {
		rv.SetResidencyVersion(fn)
	}
}

// SetGateSource implements sched.GateAware, passing the engine's job-graph
// gate source through and remembering it so decisions can snapshot the
// gate states the wrapped scheduler saw.
func (r *RecordingSched) SetGateSource(fn func(query.ID) sched.GateState) {
	r.gateFn = fn
	if ga, ok := r.inner.(sched.GateAware); ok {
		ga.SetGateSource(fn)
	}
}

var (
	_ sched.Scheduler          = (*RecordingSched)(nil)
	_ sched.Traced             = (*RecordingSched)(nil)
	_ sched.ResidencyVersioned = (*RecordingSched)(nil)
	_ sched.GateAware          = (*RecordingSched)(nil)
)

// batchesEqual reports whether two decision answers agree exactly: same
// batch count, same atoms in the same order, same sub-queries (by
// identity) in the same order.
func batchesEqual(a, b []sched.Batch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Atom != b[i].Atom || len(a[i].SubQueries) != len(b[i].SubQueries) {
			return false
		}
		for j := range a[i].SubQueries {
			if a[i].SubQueries[j] != b[i].SubQueries[j] {
				return false
			}
		}
	}
	return true
}

// describeBatches renders a decision answer compactly for reports.
func describeBatches(bs []sched.Batch) string {
	if len(bs) == 0 {
		return "[]"
	}
	s := "["
	for i, b := range bs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("s%d/a%d×%d", b.Atom.Step, b.Atom.Code, len(b.SubQueries))
	}
	return s + "]"
}
