package oracle

import (
	"errors"
	"fmt"
	"time"

	"jaws/internal/fault"
	"jaws/internal/sched"
	"jaws/internal/workload"
)

// Suite profiles: parameter families a seed can run under.
const (
	// ProfileStandard is the original sustained-queueing configuration.
	ProfileStandard = "standard"
	// ProfileChurn is the high-churn configuration: tiny batches, adaptive
	// α, a tight cache, and short adaptation runs, so queue membership and
	// residency — and with them the memo epochs, heap rebuilds, and
	// freelist recycling of the incremental scheduler structures — turn
	// over at the maximum rate.
	ProfileChurn = "churn"
	// ProfileMatrix is the scenario-matrix configuration: the workload
	// mixes box cutouts and temporal-derivative chains over arrival
	// processes that vary by seed, so the differential suite certifies
	// every new query class and arrival shape against the reference
	// models, not just the calibrated point-query trace.
	ProfileMatrix = "matrix"
	// ProfileTail is the tail-policy configuration: JAWS decorated with a
	// per-seed tail-policy spec (gate-aware, cross-step, adaptive-batch,
	// and the full stack, cycling with the seed) on the scenario-matrix
	// workload under gated execution, so the policy decorators and their
	// reference models are certified on engine-captured logs — including
	// the live job-graph gate states the engine feeds the gate-aware
	// scoring.
	ProfileTail = "tail"
)

// SeedResult is the outcome of one differential run: one (algorithm,
// seed, profile, fault schedule) tuple captured on a real engine and
// replayed through the reference model.
type SeedResult struct {
	Algo      Algo
	Seed      int64
	Profile   string
	FaultSpec string
	// Policy is the tail-policy spec decorating the scheduler (tail
	// profile only; empty otherwise).
	Policy string
	// Ops and Decisions size the captured log.
	Ops, Decisions int
	// Crashed reports that the fault schedule killed the run (the log is
	// a prefix; differential and at-most-once checks still apply).
	Crashed bool
	// Divergence is the first model/production disagreement (nil: agree).
	Divergence *Divergence
	// Violations lists invariant breaches found in the capture.
	Violations []string
}

// Ok reports a clean result.
func (r *SeedResult) Ok() bool { return r.Divergence == nil && len(r.Violations) == 0 }

// String renders one report line.
func (r *SeedResult) String() string {
	status := "ok"
	if !r.Ok() {
		status = "FAIL"
	}
	f := r.FaultSpec
	if f == "" {
		f = "-"
	}
	p := r.Profile
	if p == "" {
		p = ProfileStandard
	}
	algo := r.Algo.String()
	if r.Policy != "" {
		algo += "+" + r.Policy
	}
	return fmt.Sprintf("%-8s seed=%-4d %-8s fault=%-40s ops=%-5d dec=%-4d %s", algo, r.Seed, p, f, r.Ops, r.Decisions, status)
}

// SuiteParams derives deterministic per-seed parameters: a tiny workload
// (64 atoms per step over a handful of steps) saturated enough that
// queues build real contention, with α and batch size varied across
// seeds so tie-breaking and truncation paths all get exercised.
func SuiteParams(a Algo, seed int64) (CaptureConfig, Params) {
	p := Params{
		Cost:      sched.CostModel{Tb: 41 * time.Millisecond, Tm: 20 * time.Microsecond},
		BatchSize: 2 + int(seed%4),         // small k so the >k truncation path runs
		Alpha:     float64(seed%11) / 10.0, // sweep [0,1]
		Adaptive:  a == AlgoJAWS && seed%2 == 0,
	}
	cfg := CaptureConfig{
		Algo:   a,
		Params: p,
		Workload: workload.Config{
			Seed:           seed,
			Steps:          4,
			Jobs:           5 + int(seed%4),
			PointsPerQuery: 12,
			OrderedFrac:    0.7,
			SpeedUp:        200, // compress arrivals: sustained queueing
			MeanJobGap:     2 * time.Second,
			ThinkTime:      20 * time.Millisecond,
			QueryScale:     25,
			Hotspots:       3,
		},
		CacheAtoms: 24,
		RunLength:  6,
		JobAware:   a == AlgoJAWS, // full JAWS runs gated
	}
	return cfg, p
}

// ChurnParams derives the high-churn variant of SuiteParams: batch size
// forced to 1 or 2, adaptive α on for every JAWS seed, double the arrival
// compression, half the cache, and 3-query adaptation runs. Decisions
// come thick and small, residency turns over constantly, and the α
// controller fires often — the regime that stresses the incremental
// utility structures (epoch invalidation, heap rebuilds, freelists)
// hardest.
func ChurnParams(a Algo, seed int64) (CaptureConfig, Params) {
	cfg, p := SuiteParams(a, seed)
	p.BatchSize = 1 + int(seed%2)
	p.Adaptive = a == AlgoJAWS
	cfg.Params = p
	cfg.Workload.Steps = 6
	cfg.Workload.SpeedUp = 400
	cfg.CacheAtoms = 12
	cfg.RunLength = 3
	return cfg, p
}

// MatrixParams derives the scenario-matrix variant of SuiteParams: 20%
// box cutouts on a coarse stride, 30% temporal-derivative queries
// chaining 3 of 6 steps, and an arrival process cycling Poisson /
// diurnal / calibrated on-off with the seed. Derivative chains widen
// each query's atom set across adjacent steps — the regime where gating
// edges, partner sets, and step-bucketed queues all get new shapes — so
// replaying these captures pins the reference and production schedulers
// to agreement on exactly the paths the scenario matrix added.
func MatrixParams(a Algo, seed int64) (CaptureConfig, Params) {
	cfg, p := SuiteParams(a, seed)
	cfg.Workload.Steps = 6
	cfg.Workload.BoxFrac = 0.2
	cfg.Workload.BoxStride = 8 // coarse lattice: a cutout stays a handful of positions
	cfg.Workload.DerivFrac = 0.3
	cfg.Workload.DerivChain = 3
	switch seed % 3 {
	case 0:
		cfg.Workload.Arrivals = workload.Poisson{}
	case 1:
		cfg.Workload.Arrivals = workload.NewDiurnal(workload.Poisson{}, 10*time.Second, 0.7)
	default:
		// Keep the calibrated on-off default: the matrix must also cover
		// the new classes under the original arrival process.
	}
	return cfg, p
}

// TailPolicySpec returns the tail-policy spec the tail profile pairs
// with a seed: the three policies singly, then the full stack, cycling.
// The adaptive-batch bounds are tight so engine-length runs drive k into
// both rails.
func TailPolicySpec(seed int64) string {
	switch seed % 4 {
	case 0:
		return "gate-aware"
	case 1:
		return "cross-step:span=3"
	case 2:
		return "adaptive-batch:min=2,max=6,grow=2,shrink=1,full=1,idle=2"
	}
	return "gate-aware:discount=0.5,boost=3;cross-step:span=2;adaptive-batch:min=2,max=5,grow=1,shrink=1,full=1,idle=3"
}

// TailParams derives the tail-policy variant: the scenario-matrix
// workload (derivative chains are what cross-step exists for) with the
// per-seed policy spec decorating JAWS.
func TailParams(a Algo, seed int64) (CaptureConfig, Params) {
	cfg, p := MatrixParams(a, seed)
	cfg.Policy = TailPolicySpec(seed)
	return cfg, p
}

// ProfileParams returns the capture config and parameters of a profile.
func ProfileParams(profile string, a Algo, seed int64) (CaptureConfig, Params) {
	switch profile {
	case ProfileChurn:
		return ChurnParams(a, seed)
	case ProfileMatrix:
		return MatrixParams(a, seed)
	case ProfileTail:
		return TailParams(a, seed)
	}
	return SuiteParams(a, seed)
}

// SuiteFaultSpec is the deterministic fault schedule paired with each
// seed in the with-faults pass: transient disk errors and cache
// corruption throughout, plus a node crash partway through the run.
func SuiteFaultSpec(seed int64) string {
	crashAt := 2 + seed%3
	return fmt.Sprintf("disk-transient:p=0.05;corrupt:p=0.05;crash@0:at=%ds", crashAt)
}

// DiffSeed captures one standard-profile run and checks it: differential
// replay plus the invariant suite. A non-nil error means the harness
// itself failed (bad config), not that the run diverged.
func DiffSeed(a Algo, seed int64, faultSpec string) (*SeedResult, error) {
	return DiffSeedProfile(ProfileStandard, a, seed, faultSpec)
}

// DiffSeedProfile captures one run under the named profile and checks
// it: differential replay plus the invariant suite.
func DiffSeedProfile(profile string, a Algo, seed int64, faultSpec string) (*SeedResult, error) {
	cfg, _ := ProfileParams(profile, a, seed)
	cfg.FaultSpec = faultSpec
	cfg.FaultSeed = seed
	c, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	res := &SeedResult{
		Algo:      a,
		Seed:      seed,
		Profile:   profile,
		FaultSpec: faultSpec,
		Policy:    cfg.Policy,
		Ops:       len(c.Log.Ops),
		Decisions: len(c.Decisions),
		Crashed:   c.RunErr != nil,
	}
	target, err := cfg.target()
	if err != nil {
		return nil, err
	}
	res.Divergence = Diff(target, c.Log)
	res.Violations = append(res.Violations, CheckExactlyOnce(c, c.RunErr == nil)...)
	if cfg.JobAware {
		res.Violations = append(res.Violations, CheckGateRelease(c)...)
	}
	res.Violations = append(res.Violations, CheckSpanConservation(c.Spans)...)
	var crash *fault.NodeCrashError
	if c.RunErr == nil || errors.As(c.RunErr, &crash) {
		// A crash kills the node between decisions, so cache accounting is
		// still balanced; only a mid-read abort (exhausted retries or a
		// permanent fault) legitimately leaves a miss without its insert.
		res.Violations = append(res.Violations, CheckCacheBalance(c.CacheStats, c.CacheLen)...)
	}
	return res, nil
}

// Suite runs the differential suite over seeds 1..n for every algorithm,
// without and (when withFaults) with the per-seed fault schedule. Every
// algorithm runs each seed under the scenario-matrix profile (box and
// derivative query classes, varied arrivals), and the contention-based
// algorithms (LifeRaft, JAWS) additionally run the high-churn profile,
// so one suite pass covers the sustained-queueing, maximum-turnover, and
// scenario-matrix regimes: 3n standard + 2n churn + 3n matrix captures
// per fault arm. report, when non-nil, receives every result as it
// completes.
func Suite(n int, withFaults bool, report func(*SeedResult)) ([]*SeedResult, error) {
	var out []*SeedResult
	for _, a := range []Algo{AlgoNoShare, AlgoLifeRaft, AlgoJAWS} {
		profiles := []string{ProfileStandard}
		if a != AlgoNoShare {
			profiles = append(profiles, ProfileChurn)
		}
		profiles = append(profiles, ProfileMatrix)
		if a == AlgoJAWS {
			profiles = append(profiles, ProfileTail)
		}
		for seed := int64(1); seed <= int64(n); seed++ {
			specs := []string{""}
			if withFaults {
				specs = append(specs, SuiteFaultSpec(seed))
			}
			for _, spec := range specs {
				for _, profile := range profiles {
					r, err := DiffSeedProfile(profile, a, seed, spec)
					if err != nil {
						return out, fmt.Errorf("oracle: %v seed %d %s fault %q: %w", a, seed, profile, spec, err)
					}
					if report != nil {
						report(r)
					}
					out = append(out, r)
				}
			}
		}
	}
	return out, nil
}
