package oracle

import (
	"errors"
	"fmt"
	"time"

	"jaws/internal/fault"
	"jaws/internal/sched"
	"jaws/internal/workload"
)

// SeedResult is the outcome of one differential run: one (algorithm,
// seed, fault schedule) triple captured on a real engine and replayed
// through the reference model.
type SeedResult struct {
	Algo      Algo
	Seed      int64
	FaultSpec string
	// Ops and Decisions size the captured log.
	Ops, Decisions int
	// Crashed reports that the fault schedule killed the run (the log is
	// a prefix; differential and at-most-once checks still apply).
	Crashed bool
	// Divergence is the first model/production disagreement (nil: agree).
	Divergence *Divergence
	// Violations lists invariant breaches found in the capture.
	Violations []string
}

// Ok reports a clean result.
func (r *SeedResult) Ok() bool { return r.Divergence == nil && len(r.Violations) == 0 }

// String renders one report line.
func (r *SeedResult) String() string {
	status := "ok"
	if !r.Ok() {
		status = "FAIL"
	}
	f := r.FaultSpec
	if f == "" {
		f = "-"
	}
	return fmt.Sprintf("%-8s seed=%-4d fault=%-40s ops=%-5d dec=%-4d %s", r.Algo, r.Seed, f, r.Ops, r.Decisions, status)
}

// SuiteParams derives deterministic per-seed parameters: a tiny workload
// (64 atoms per step over a handful of steps) saturated enough that
// queues build real contention, with α and batch size varied across
// seeds so tie-breaking and truncation paths all get exercised.
func SuiteParams(a Algo, seed int64) (CaptureConfig, Params) {
	p := Params{
		Cost:      sched.CostModel{Tb: 41 * time.Millisecond, Tm: 20 * time.Microsecond},
		BatchSize: 2 + int(seed%4),         // small k so the >k truncation path runs
		Alpha:     float64(seed%11) / 10.0, // sweep [0,1]
		Adaptive:  a == AlgoJAWS && seed%2 == 0,
	}
	cfg := CaptureConfig{
		Algo:   a,
		Params: p,
		Workload: workload.Config{
			Seed:           seed,
			Steps:          4,
			Jobs:           5 + int(seed%4),
			PointsPerQuery: 12,
			OrderedFrac:    0.7,
			SpeedUp:        200, // compress arrivals: sustained queueing
			MeanJobGap:     2 * time.Second,
			ThinkTime:      20 * time.Millisecond,
			QueryScale:     25,
			Hotspots:       3,
		},
		CacheAtoms: 24,
		RunLength:  6,
		JobAware:   a == AlgoJAWS, // full JAWS runs gated
	}
	return cfg, p
}

// SuiteFaultSpec is the deterministic fault schedule paired with each
// seed in the with-faults pass: transient disk errors and cache
// corruption throughout, plus a node crash partway through the run.
func SuiteFaultSpec(seed int64) string {
	crashAt := 2 + seed%3
	return fmt.Sprintf("disk-transient:p=0.05;corrupt:p=0.05;crash@0:at=%ds", crashAt)
}

// DiffSeed captures one run and checks it: differential replay plus the
// invariant suite. A non-nil error means the harness itself failed (bad
// config), not that the run diverged.
func DiffSeed(a Algo, seed int64, faultSpec string) (*SeedResult, error) {
	cfg, p := SuiteParams(a, seed)
	cfg.FaultSpec = faultSpec
	cfg.FaultSeed = seed
	c, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	res := &SeedResult{
		Algo:      a,
		Seed:      seed,
		FaultSpec: faultSpec,
		Ops:       len(c.Log.Ops),
		Decisions: len(c.Decisions),
		Crashed:   c.RunErr != nil,
	}
	res.Divergence = Diff(StandardTarget(a, p), c.Log)
	res.Violations = append(res.Violations, CheckExactlyOnce(c, c.RunErr == nil)...)
	if cfg.JobAware {
		res.Violations = append(res.Violations, CheckGateRelease(c)...)
	}
	res.Violations = append(res.Violations, CheckSpanConservation(c.Spans)...)
	var crash *fault.NodeCrashError
	if c.RunErr == nil || errors.As(c.RunErr, &crash) {
		// A crash kills the node between decisions, so cache accounting is
		// still balanced; only a mid-read abort (exhausted retries or a
		// permanent fault) legitimately leaves a miss without its insert.
		res.Violations = append(res.Violations, CheckCacheBalance(c.CacheStats, c.CacheLen)...)
	}
	return res, nil
}

// Suite runs the differential suite over seeds 1..n for every algorithm,
// without and (when withFaults) with the per-seed fault schedule. report,
// when non-nil, receives every result as it completes.
func Suite(n int, withFaults bool, report func(*SeedResult)) ([]*SeedResult, error) {
	var out []*SeedResult
	for _, a := range []Algo{AlgoNoShare, AlgoLifeRaft, AlgoJAWS} {
		for seed := int64(1); seed <= int64(n); seed++ {
			specs := []string{""}
			if withFaults {
				specs = append(specs, SuiteFaultSpec(seed))
			}
			for _, spec := range specs {
				r, err := DiffSeed(a, seed, spec)
				if err != nil {
					return out, fmt.Errorf("oracle: %v seed %d fault %q: %w", a, seed, spec, err)
				}
				if report != nil {
					report(r)
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}
