package oracle

import (
	"fmt"

	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/store"
)

// Target bundles the two sides of one differential comparison: a factory
// for a fresh production scheduler and one for the reference model. Both
// must be deterministic functions of their inputs so any op log can be
// replayed through fresh instances.
type Target struct {
	// Name labels the target in reports.
	Name string
	// New builds a fresh production scheduler; resident is the residency
	// oracle it must consult for the φ(i) term.
	New func(resident func(store.AtomID) bool) sched.Scheduler
	// NewModel builds a fresh reference model.
	NewModel func() Model
}

// StandardTarget pairs a production scheduler of the given algorithm with
// its reference model, both built from the same parameters.
func StandardTarget(a Algo, p Params) Target {
	return Target{
		Name: a.String(),
		New: func(resident func(store.AtomID) bool) sched.Scheduler {
			switch a {
			case AlgoNoShare:
				return sched.NewNoShare()
			case AlgoLifeRaft:
				return sched.NewLifeRaft(p.Cost, p.Alpha, resident)
			default:
				return sched.NewJAWS(sched.JAWSConfig{
					Cost:         p.Cost,
					BatchSize:    p.BatchSize,
					InitialAlpha: p.Alpha,
					Adaptive:     p.Adaptive,
					Resident:     resident,
				})
			}
		},
		NewModel: func() Model { return NewModel(a, p) },
	}
}

// Divergence describes the first disagreement found while replaying an op
// log through a target.
type Divergence struct {
	// Target names the diverging target.
	Target string
	// OpIndex is the position in the log at which the sides disagreed.
	OpIndex int
	// Kind classifies the disagreement: "model-vs-real" (the reference
	// model and the production scheduler chose differently),
	// "replay-vs-recorded" (a fresh production replay did not reproduce
	// the recorded run — lost state or nondeterminism),
	// "pending-mismatch" (queue accounting drifted), or
	// "utility-mismatch" (the production scheduler's memoized utility
	// view disagreed with the model's naive rescan).
	Kind string
	// Detail is a human-readable account of the two answers.
	Detail string
}

// Error renders the divergence as one line.
func (d *Divergence) Error() string {
	return fmt.Sprintf("%s: op %d: %s: %s", d.Target, d.OpIndex, d.Kind, d.Detail)
}

// Diff replays the op log through a fresh production scheduler and a
// fresh reference model, comparing every decision. When the log still
// carries recorded answers (Op.Got), the production replay is also
// checked against the recording — a determinism and
// recording-completeness audit. It returns the first divergence, or nil
// when the sides agree over the whole log.
//
// The replay installs a residency version source on the production
// scheduler — bumped whenever a decision's snapshot replaces the current
// one — so the memoized incremental utility path runs and is certified,
// not the recompute-everything fallback. After every decision the
// production UtilityProvider view (AtomUtility, StepMean, PendingSteps)
// is compared against the model's naive rescan with strict float
// equality.
func Diff(t Target, log *OpLog) *Divergence {
	var snap map[store.AtomID]bool
	var snapVersion uint64 = 1
	resident := func(id store.AtomID) bool { return snap[id] }
	real := t.New(resident)
	model := t.NewModel()
	if rv, ok := real.(sched.ResidencyVersioned); ok {
		rv.SetResidencyVersion(func() uint64 { return snapVersion })
	}
	// Gate-aware targets replay against the recorded per-decision gate
	// snapshot: the same source closure is installed on both sides, so a
	// disagreement is a decision-rule divergence, never a view skew.
	var gates map[query.ID]sched.GateState
	gateFn := func(q query.ID) sched.GateState { return gates[q] }
	if ga, ok := real.(sched.GateAware); ok {
		ga.SetGateSource(gateFn)
	}
	if gm, ok := model.(GateAwareModel); ok {
		gm.SetGateSource(gateFn)
	}

	for i, op := range log.Ops {
		switch op.Kind {
		case OpEnqueue:
			real.Enqueue(op.Sub, op.Now)
			model.Enqueue(op.Sub, op.Now)
		case OpDecision:
			snap = op.Resident
			gates = op.Gates
			snapVersion++
			rGot := real.NextBatch(op.Now)
			mGot := model.NextBatch(op.Now, func(id store.AtomID) bool { return snap[id] })
			if op.Got != nil && !batchesEqual(rGot, op.Got) {
				return &Divergence{
					Target: t.Name, OpIndex: i, Kind: "replay-vs-recorded",
					Detail: fmt.Sprintf("replay %s, recorded %s", describeBatches(rGot), describeBatches(op.Got)),
				}
			}
			if !batchesEqual(mGot, rGot) {
				return &Divergence{
					Target: t.Name, OpIndex: i, Kind: "model-vs-real",
					Detail: fmt.Sprintf("model %s, real %s", describeBatches(mGot), describeBatches(rGot)),
				}
			}
			if d := diffUtilities(t.Name, i, real, model, resident); d != nil {
				return d
			}
		case OpRunEnd:
			real.OnRunEnd(op.RT, op.TP)
			model.OnRunEnd(op.RT, op.TP)
		}
		if rp, mp := real.Pending(), model.Pending(); rp != mp {
			return &Divergence{
				Target: t.Name, OpIndex: i, Kind: "pending-mismatch",
				Detail: fmt.Sprintf("real has %d pending sub-queries, model %d", rp, mp),
			}
		}
	}
	if ra, ma := real.Alpha(), model.Alpha(); ra != ma {
		return &Divergence{
			Target: t.Name, OpIndex: len(log.Ops) - 1, Kind: "model-vs-real",
			Detail: fmt.Sprintf("final alpha: real %g, model %g", ra, ma),
		}
	}
	return nil
}

// diffUtilities compares the production scheduler's utility view against
// the model's naive rescan, when both sides expose one. Equality is
// strict (==): the incremental structures promise bit-identical floats,
// not approximations, because the URC cache policy ranks on these exact
// values.
func diffUtilities(name string, opIndex int, real sched.Scheduler, model Model, resident func(store.AtomID) bool) *Divergence {
	up, ok := real.(sched.UtilityProvider)
	if !ok {
		return nil
	}
	um, ok := model.(UtilityModel)
	if !ok {
		return nil
	}
	rSteps, mSteps := up.PendingSteps(), um.PendingSteps()
	if len(rSteps) != len(mSteps) {
		return &Divergence{
			Target: name, OpIndex: opIndex, Kind: "utility-mismatch",
			Detail: fmt.Sprintf("pending steps: real %v, model %v", rSteps, mSteps),
		}
	}
	for k := range mSteps {
		if rSteps[k] != mSteps[k] {
			return &Divergence{
				Target: name, OpIndex: opIndex, Kind: "utility-mismatch",
				Detail: fmt.Sprintf("pending steps: real %v, model %v", rSteps, mSteps),
			}
		}
	}
	for _, step := range mSteps {
		if r, m := up.StepMean(step), um.StepMean(step, resident); r != m {
			return &Divergence{
				Target: name, OpIndex: opIndex, Kind: "utility-mismatch",
				Detail: fmt.Sprintf("step %d mean U_t: real %v, model %v", step, r, m),
			}
		}
	}
	for _, id := range um.PendingAtoms() {
		if r, m := up.AtomUtility(id), um.AtomUtility(id, resident); r != m {
			return &Divergence{
				Target: name, OpIndex: opIndex, Kind: "utility-mismatch",
				Detail: fmt.Sprintf("atom s%d/a%d U_t: real %v, model %v", id.Step, id.Code, r, m),
			}
		}
	}
	return nil
}

// Shrink reduces a diverging op log to a locally minimal reproducer:
// first everything after the divergence point is dropped, then single ops
// are greedily removed while the model and the production scheduler still
// disagree. Recorded answers are stripped — after surgery the recording
// no longer corresponds to any real run; the model-vs-real disagreement
// is the property being preserved. Shrink returns the log unchanged
// (minus recordings) when the target does not diverge on it.
func Shrink(t Target, log *OpLog) *OpLog {
	cur := &OpLog{Ops: make([]Op, len(log.Ops))}
	for i, op := range log.Ops {
		op.Got = nil
		cur.Ops[i] = op
	}
	d := Diff(t, cur)
	if d == nil {
		return cur
	}
	if d.OpIndex+1 < len(cur.Ops) {
		cur.Ops = cur.Ops[:d.OpIndex+1]
	}
	for again := true; again; {
		again = false
		for i := 0; i < len(cur.Ops); i++ {
			cand := &OpLog{Ops: make([]Op, 0, len(cur.Ops)-1)}
			cand.Ops = append(cand.Ops, cur.Ops[:i]...)
			cand.Ops = append(cand.Ops, cur.Ops[i+1:]...)
			if Diff(t, cand) != nil {
				cur = cand
				again = true
				i--
			}
		}
	}
	return cur
}
