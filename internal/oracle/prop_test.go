package oracle

import (
	"testing"
	"time"

	"jaws/internal/sched"
	"jaws/internal/store"
)

// The quickcheck-style differential property: over seeded random op logs
// of enqueue/decision/α-update operations, the production schedulers'
// incremental structures (step buckets, memoized utilities, the indexed
// max-heap, the zero-alloc decision path) must return byte-identical
// batch decisions AND utilities vs the naive rescan reference models.
// Diff installs a residency version source bumped per decision, so the
// memoized path — not the recompute fallback — is what these seeds
// certify. A failing seed is shrunk to a locally minimal reproducer via
// the same machinery the suite uses.

var propCost = sched.CostModel{Tb: 41 * time.Millisecond, Tm: 20 * time.Microsecond}

// propTargets returns the target sweep for one seed: the α grid and
// batch sizes vary by seed so tie-break, truncation, heap (LifeRaft at
// α = 0) and adaptive-controller paths all get random-log coverage, and
// every tail-policy configuration plus the QoS decorator replays each
// log alongside the base algorithms.
func propTargets(seed int64) []Target {
	lrAlpha := Params{Cost: propCost, Alpha: float64(seed%11) / 10.0}
	lrZero := Params{Cost: propCost, Alpha: 0} // heap path under Diff's version source
	jaws := Params{Cost: propCost, BatchSize: 1 + int(seed%4), Alpha: float64((seed*3)%11) / 10.0, Adaptive: seed%2 == 0}
	targets := []Target{
		StandardTarget(AlgoNoShare, Params{}),
		StandardTarget(AlgoLifeRaft, lrAlpha),
		StandardTarget(AlgoLifeRaft, lrZero),
		StandardTarget(AlgoJAWS, jaws),
	}
	// The tail policies, singly and stacked. Gate factors and spans vary
	// by seed; the adaptive-batch bounds are tight (min 1–2, max ≤ 6) so
	// random logs actually drive k into both rails.
	gate := &sched.GateAwareParams{Discount: 0.25 + 0.05*float64(seed%4), Boost: 1.5 + float64(seed%3)}
	xstep := &sched.CrossStepParams{Span: 2 + int(seed%3)}
	adapt := &sched.AdaptiveBatchParams{
		Min: 1 + int(seed%2), Max: 3 + int(seed%4),
		Grow: 1 + int(seed%2), Shrink: 1,
		Full: 1 + int(seed%2), Idle: 1 + int(seed%3),
	}
	for _, spec := range []sched.PolicySpec{
		{GateAware: gate},
		{CrossStep: xstep},
		{AdaptiveBatch: adapt},
		{GateAware: gate, CrossStep: xstep},
		{GateAware: gate, CrossStep: xstep, AdaptiveBatch: adapt},
	} {
		targets = append(targets, PolicyTarget(jaws, spec))
	}
	// QoS in both regimes: a small stretch keeps deadlines inside the
	// horizon (urgent EDF path), a huge stretch with a tiny horizon never
	// finds one urgent (fallthrough through the QoS bookkeeping).
	targets = append(targets,
		QoSTarget(jaws, 1+float64(seed%8), time.Duration(seed%3+1)*time.Second),
		QoSTarget(jaws, 1e9, time.Nanosecond),
	)
	return targets
}

func TestRandomOpLogsDifferential(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		log := GenLog(seed, GenConfig{})
		for _, tgt := range propTargets(seed) {
			if d := Diff(tgt, log); d != nil {
				min := Shrink(tgt, log)
				t.Errorf("seed %d %s: %v\nminimal reproducer (%d of %d ops):\n%s",
					seed, tgt.Name, d, len(min.Ops), len(log.Ops), FormatOps(min))
			}
		}
	}
}

// A smaller universe (one step, four atoms) piles every sub-query into a
// handful of queues: maximal contention, constant queue membership
// churn, many exact utility ties.
func TestRandomOpLogsHighContention(t *testing.T) {
	seeds := 15
	if testing.Short() {
		seeds = 4
	}
	cfg := GenConfig{Ops: 300, Steps: 1, AtomSide: 2, MaxPoints: 40}
	for seed := int64(100); seed < int64(100+seeds); seed++ {
		log := GenLog(seed, cfg)
		for _, tgt := range propTargets(seed) {
			if d := Diff(tgt, log); d != nil {
				min := Shrink(tgt, log)
				t.Errorf("seed %d %s: %v\nminimal reproducer (%d ops):\n%s",
					seed, tgt.Name, d, len(min.Ops), FormatOps(min))
			}
		}
	}
}

// GenLog is deterministic in its seed — the property that makes a
// failing seed a complete reproducer.
func TestGenLogDeterministic(t *testing.T) {
	a := GenLog(42, GenConfig{})
	b := GenLog(42, GenConfig{})
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("op counts differ: %d vs %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		oa, ob := a.Ops[i], b.Ops[i]
		if oa.Kind != ob.Kind || oa.Now != ob.Now || oa.RT != ob.RT || oa.TP != ob.TP {
			t.Fatalf("op %d differs", i)
		}
		if oa.Kind == OpEnqueue && (oa.Sub.Atom != ob.Sub.Atom || len(oa.Sub.Points) != len(ob.Sub.Points)) {
			t.Fatalf("enqueue %d differs", i)
		}
		if oa.Kind == OpDecision && len(oa.Resident) != len(ob.Resident) {
			t.Fatalf("snapshot %d differs", i)
		}
	}
}

// wrongUtilitySched delegates decisions to a healthy LifeRaft but lies
// about utilities: the self-test that the per-decision utility
// comparison actually fires (a decisions-only diff would stay green).
type wrongUtilitySched struct {
	*sched.LifeRaft
}

func (s *wrongUtilitySched) AtomUtility(id store.AtomID) float64 {
	return s.LifeRaft.AtomUtility(id) * 2
}

func TestUtilityMismatchCaught(t *testing.T) {
	p := Params{Cost: propCost, Alpha: 0.3}
	buggy := Target{
		Name: "LifeRaft(2×-utility bug)",
		New: func(resident func(store.AtomID) bool) sched.Scheduler {
			return &wrongUtilitySched{sched.NewLifeRaft(p.Cost, p.Alpha, resident)}
		},
		NewModel: func() Model { return NewModel(AlgoLifeRaft, p) },
	}
	log := GenLog(7, GenConfig{Ops: 120})
	d := Diff(buggy, log)
	if d == nil {
		t.Fatal("utility comparison did not catch a scheduler reporting doubled utilities")
	}
	if d.Kind != "utility-mismatch" {
		t.Fatalf("divergence kind = %q, want utility-mismatch (detail: %s)", d.Kind, d.Detail)
	}
	min := Shrink(buggy, log)
	if Diff(buggy, min) == nil {
		t.Fatal("shrunk log no longer reproduces the utility divergence")
	}
	// Utilities are compared after the decision removes its pick, so the
	// minimum is two enqueues (one survives the take) plus the decision.
	if len(min.Ops) > 3 {
		t.Errorf("minimal reproducer has %d ops, want ≤ 3:\n%s", len(min.Ops), FormatOps(min))
	}
}
