package oracle

import (
	"sort"

	"jaws/internal/jobgraph"
)

// ModelGraph is the reference model of job-aware gated execution (§IV,
// Fig. 4), restated from the paper rather than from internal/jobgraph: a
// flat list of components, states recomputed by scanning, and the three
// feasibility checks written as separate predicates. It intentionally
// shares no code with the production graph beyond the exported Ref/State
// vocabulary.
type ModelGraph struct {
	shares func(a, b jobgraph.Ref) bool
	jobs   []int64 // registration order
	jobLen map[int64]int
	state  map[jobgraph.Ref]jobgraph.State
	comps  []*modelComponent
	byRef  map[jobgraph.Ref]*modelComponent

	admitted, rejected int
}

// modelComponent is one co-scheduling group and its gating number.
type modelComponent struct {
	members []jobgraph.Ref // sorted (Job, Seq)
	level   int
}

// NewModelGraph builds the reference gating graph. shares reports data
// sharing between queries of different jobs, as for jobgraph.New.
func NewModelGraph(shares func(a, b jobgraph.Ref) bool) *ModelGraph {
	return &ModelGraph{
		shares: shares,
		jobLen: make(map[int64]int),
		state:  make(map[jobgraph.Ref]jobgraph.State),
		byRef:  make(map[jobgraph.Ref]*modelComponent),
	}
}

// AddJob registers an ordered job of n queries and merges its gating
// edges: align against every prior job, then admit candidate edges taking
// the largest alignments first (ties to the lower job id), each job's
// pairs in precedence order.
func (g *ModelGraph) AddJob(id int64, n int) {
	if _, dup := g.jobLen[id]; dup || n <= 0 {
		return
	}
	g.jobLen[id] = n
	g.jobs = append(g.jobs, id)
	g.state[jobgraph.Ref{Job: id, Seq: 0}] = jobgraph.Ready
	for s := 1; s < n; s++ {
		g.state[jobgraph.Ref{Job: id, Seq: s}] = jobgraph.Wait
	}

	type cand struct {
		partner int64
		pairs   []jobgraph.Pair // SeqA in the new job, SeqB in partner
	}
	var cands []cand
	for _, other := range g.jobs {
		if other == id {
			continue
		}
		if pairs := g.align(id, other); len(pairs) > 0 {
			cands = append(cands, cand{partner: other, pairs: pairs})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if len(cands[i].pairs) != len(cands[j].pairs) {
			return len(cands[i].pairs) > len(cands[j].pairs)
		}
		return cands[i].partner < cands[j].partner
	})
	for _, c := range cands {
		for _, p := range c.pairs {
			g.admit(jobgraph.Ref{Job: id, Seq: p.SeqA}, jobgraph.Ref{Job: c.partner, Seq: p.SeqB})
		}
	}
	g.propagate()
}

// align computes the Needleman–Wunsch alignment between jobs a and b with
// the model's own DP (modelAlign), fresh each call. Because the production
// graph canonicalizes each pair to (lower id, higher id) before aligning,
// the model does too.
func (g *ModelGraph) align(a, b int64) []jobgraph.Pair {
	lo, hi, flip := a, b, false
	if a > b {
		lo, hi, flip = b, a, true
	}
	pairs := modelAlign(g.jobLen[lo], g.jobLen[hi], func(i, j int) bool {
		return g.shares(jobgraph.Ref{Job: lo, Seq: i}, jobgraph.Ref{Job: hi, Seq: j})
	})
	if !flip {
		return pairs
	}
	out := make([]jobgraph.Pair, len(pairs))
	for i, p := range pairs {
		out[i] = jobgraph.Pair{SeqA: p.SeqB, SeqB: p.SeqA}
	}
	return out
}

// modelAlign is the reference restatement of §IV.B's global alignment,
// independent of jobgraph.Align: match scores 1, gaps cost 0, and the
// traceback resolves ties by preferring a scoring diagonal, then dropping
// the A-side query, then the B-side one — the order that turns every unit
// of score into a gating edge and that the production DP documents.
func modelAlign(lenA, lenB int, share func(i, j int) bool) []jobgraph.Pair {
	score := func(i, j int) int {
		if share(i, j) {
			return 1
		}
		return 0
	}
	dp := make(map[[2]int]int, (lenA+1)*(lenB+1))
	for i := 1; i <= lenA; i++ {
		for j := 1; j <= lenB; j++ {
			best := dp[[2]int{i - 1, j - 1}] + score(i-1, j-1)
			if v := dp[[2]int{i - 1, j}]; v > best {
				best = v
			}
			if v := dp[[2]int{i, j - 1}]; v > best {
				best = v
			}
			dp[[2]int{i, j}] = best
		}
	}
	var pairs []jobgraph.Pair
	for i, j := lenA, lenB; i > 0 && j > 0; {
		switch {
		case score(i-1, j-1) == 1 && dp[[2]int{i, j}] == dp[[2]int{i - 1, j - 1}]+1:
			pairs = append(pairs, jobgraph.Pair{SeqA: i - 1, SeqB: j - 1})
			i, j = i-1, j-1
		case dp[[2]int{i, j}] == dp[[2]int{i - 1, j}]:
			i--
		case dp[[2]int{i, j}] == dp[[2]int{i, j - 1}]:
			j--
		default:
			i, j = i-1, j-1
		}
	}
	for l, r := 0, len(pairs)-1; l < r; l, r = l+1, r-1 {
		pairs[l], pairs[r] = pairs[r], pairs[l]
	}
	return pairs
}

// members returns the would-be component of r: its current component's
// members, or just itself.
func (g *ModelGraph) members(r jobgraph.Ref) []jobgraph.Ref {
	if c := g.byRef[r]; c != nil {
		return c.members
	}
	return []jobgraph.Ref{r}
}

// gatedOf lists job j's queries that carry gating edges, in seq order.
func (g *ModelGraph) gatedOf(j int64) []jobgraph.Ref {
	var out []jobgraph.Ref
	for s := 0; s < g.jobLen[j]; s++ {
		r := jobgraph.Ref{Job: j, Seq: s}
		if g.byRef[r] != nil {
			out = append(out, r)
		}
	}
	return out
}

// admit applies Fig. 4's feasibility checks to a candidate edge (u, v) and
// merges the two components when all pass.
func (g *ModelGraph) admit(u, v jobgraph.Ref) bool {
	cu, cv := g.byRef[u], g.byRef[v]
	if cu != nil && cu == cv {
		return true
	}
	mu, mv := g.members(u), g.members(v)
	union := append(append([]jobgraph.Ref{}, mu...), mv...)

	if g.duplicatesJob(mu, mv) || g.crosses(mu, mv) {
		g.rejected++
		return false
	}

	// Gating numbers: the level must exceed every member's gated
	// predecessors and sit strictly below every member's gated successors;
	// committed component levels cannot move. Levels start at 1 — Fig. 4's
	// MaxGatNum is 1 + the highest predecessor level, 0 predecessors
	// included.
	lower, upper := 1, 1<<30
	for _, m := range union {
		for _, q := range g.gatedOf(m.Job) {
			lvl := g.byRef[q].level
			if q.Seq < m.Seq && lvl+1 > lower {
				lower = lvl + 1
			}
			if q.Seq > m.Seq && lvl < upper {
				upper = lvl
			}
		}
	}
	level := lower
	switch {
	case cu != nil && cv != nil:
		if cu.level != cv.level {
			g.rejected++
			return false
		}
		level = cu.level
	case cu != nil:
		if cu.level < lower {
			g.rejected++
			return false
		}
		level = cu.level
	case cv != nil:
		if cv.level < lower {
			g.rejected++
			return false
		}
		level = cv.level
	}
	if level >= upper {
		g.rejected++
		return false
	}

	sort.Slice(union, func(i, j int) bool {
		if union[i].Job != union[j].Job {
			return union[i].Job < union[j].Job
		}
		return union[i].Seq < union[j].Seq
	})
	merged := &modelComponent{members: union, level: level}
	g.removeComp(cu)
	g.removeComp(cv)
	g.comps = append(g.comps, merged)
	for _, m := range union {
		g.byRef[m] = merged
	}
	g.admitted++
	return true
}

// duplicatesJob reports whether the union of mu and mv would co-schedule
// two queries of the same job (an immediate deadlock).
func (g *ModelGraph) duplicatesJob(mu, mv []jobgraph.Ref) bool {
	seen := make(map[int64]bool, len(mu))
	for _, m := range mu {
		seen[m.Job] = true
	}
	for _, m := range mv {
		if seen[m.Job] {
			return true
		}
		seen[m.Job] = true
	}
	return false
}

// crosses reports whether merging would create a second gating edge on the
// same query for some job pair, or cross an existing pair (lines 10–13 of
// Fig. 4): for jobs A and B, the pairs (seqA, seqB) must stay monotone.
func (g *ModelGraph) crosses(mu, mv []jobgraph.Ref) bool {
	for _, a := range mu {
		for _, b := range mv {
			if a.Job == b.Job {
				return true
			}
			for _, qa := range g.gatedOf(a.Job) {
				for _, m := range g.byRef[qa].members {
					if m.Job != b.Job {
						continue
					}
					if qa.Seq == a.Seq || m.Seq == b.Seq {
						return true
					}
					if (qa.Seq < a.Seq) != (m.Seq < b.Seq) {
						return true
					}
				}
			}
		}
	}
	return false
}

func (g *ModelGraph) removeComp(c *modelComponent) {
	if c == nil {
		return
	}
	for i, cc := range g.comps {
		if cc == c {
			g.comps = append(g.comps[:i], g.comps[i+1:]...)
			return
		}
	}
}

// MarkDone completes q, releases its precedence successor, and
// re-propagates gating releases.
func (g *ModelGraph) MarkDone(q jobgraph.Ref) {
	g.state[q] = jobgraph.Done
	succ := jobgraph.Ref{Job: q.Job, Seq: q.Seq + 1}
	if st, ok := g.state[succ]; ok && st == jobgraph.Wait {
		g.state[succ] = jobgraph.Ready
	}
	g.propagate()
}

// propagate promotes READY queries whose partners have all reached at
// least READY, to a fixpoint.
func (g *ModelGraph) propagate() {
	for changed := true; changed; {
		changed = false
		for _, jobID := range g.jobs {
			for s := 0; s < g.jobLen[jobID]; s++ {
				q := jobgraph.Ref{Job: jobID, Seq: s}
				if g.state[q] != jobgraph.Ready {
					continue
				}
				ok := true
				for _, m := range g.members(q) {
					if m != q && g.state[m] < jobgraph.Ready {
						ok = false
						break
					}
				}
				if ok {
					g.state[q] = jobgraph.Queue
					changed = true
				}
			}
		}
	}
}

// State returns the scheduling state of q.
func (g *ModelGraph) State(q jobgraph.Ref) jobgraph.State { return g.state[q] }

// GatingNumber returns the gating level of q's component (0 if ungated).
func (g *ModelGraph) GatingNumber(q jobgraph.Ref) int {
	if c := g.byRef[q]; c != nil {
		return c.level
	}
	return 0
}

// Partners returns q's co-scheduled queries in (Job, Seq) order.
func (g *ModelGraph) Partners(q jobgraph.Ref) []jobgraph.Ref {
	c := g.byRef[q]
	if c == nil {
		return nil
	}
	var out []jobgraph.Ref
	for _, m := range c.members {
		if m != q {
			out = append(out, m)
		}
	}
	return out
}

// Schedulable lists the QUEUE queries in (registration order, seq) order.
func (g *ModelGraph) Schedulable() []jobgraph.Ref {
	var out []jobgraph.Ref
	for _, jobID := range g.jobs {
		for s := 0; s < g.jobLen[jobID]; s++ {
			q := jobgraph.Ref{Job: jobID, Seq: s}
			if g.state[q] == jobgraph.Queue {
				out = append(out, q)
			}
		}
	}
	return out
}

// Finished reports whether every registered query is DONE.
func (g *ModelGraph) Finished() bool {
	for _, jobID := range g.jobs {
		for s := 0; s < g.jobLen[jobID]; s++ {
			if g.state[jobgraph.Ref{Job: jobID, Seq: s}] != jobgraph.Done {
				return false
			}
		}
	}
	return true
}

// EdgesAdmitted reports the number of admitted gating links.
func (g *ModelGraph) EdgesAdmitted() int { return g.admitted }

// EdgesRejected reports the number of refused candidate links.
func (g *ModelGraph) EdgesRejected() int { return g.rejected }

// Prune drops jobs whose queries are all DONE and whose components hold no
// live query, mirroring Graph.Prune's contract.
func (g *ModelGraph) Prune() {
	keep := g.jobs[:0]
	for _, jobID := range g.jobs {
		n := g.jobLen[jobID]
		done := true
		for s := 0; s < n; s++ {
			if g.state[jobgraph.Ref{Job: jobID, Seq: s}] != jobgraph.Done {
				done = false
				break
			}
		}
		live := false
		if done {
			for _, q := range g.gatedOf(jobID) {
				for _, m := range g.byRef[q].members {
					if st, known := g.state[m]; known && st != jobgraph.Done {
						live = true
						break
					}
				}
				if live {
					break
				}
			}
		}
		if done && !live {
			for s := 0; s < n; s++ {
				q := jobgraph.Ref{Job: jobID, Seq: s}
				if c := g.byRef[q]; c != nil {
					// Components may span pruned and live jobs; only detach
					// this job's refs, dropping the component when empty.
					g.detach(c, q)
				}
				delete(g.state, q)
				delete(g.byRef, q)
			}
			delete(g.jobLen, jobID)
			continue
		}
		keep = append(keep, jobID)
	}
	g.jobs = keep
}

// detach removes q from component c's member list.
func (g *ModelGraph) detach(c *modelComponent, q jobgraph.Ref) {
	for i, m := range c.members {
		if m == q {
			c.members = append(c.members[:i], c.members[i+1:]...)
			break
		}
	}
	if len(c.members) == 0 {
		g.removeComp(c)
	}
}

// CheckDeadlockFree drives both a production Graph and the model to
// completion by repeatedly serving every schedulable query, verifying at
// each round that (a) the schedulable sets agree, (b) progress is always
// possible while work remains — the gating-number guarantee of Fig. 4 —
// and (c) states and gating numbers agree for every live query. It returns
// the list of divergences found (nil means the graphs agree and drain).
func CheckDeadlockFree(g *jobgraph.Graph, m *ModelGraph) []string {
	var diffs []string
	for round := 0; ; round++ {
		if round > 1<<16 {
			diffs = append(diffs, "gating: no fixpoint after 65536 rounds")
			return diffs
		}
		real := g.Schedulable()
		model := m.Schedulable()
		if !refsEqual(real, model) {
			diffs = append(diffs, "gating: schedulable sets diverge: real="+refsString(real)+" model="+refsString(model))
			return diffs
		}
		if g.Finished() != m.Finished() {
			diffs = append(diffs, "gating: Finished() disagrees")
			return diffs
		}
		if g.Finished() {
			return diffs
		}
		if len(real) == 0 {
			diffs = append(diffs, "gating: deadlock — unfinished graph with empty schedulable set")
			return diffs
		}
		for _, q := range real {
			if gn, mn := g.GatingNumber(q), m.GatingNumber(q); gn != mn {
				diffs = append(diffs, "gating: gating number of "+q.String()+" diverges")
			}
			if !refsEqual(g.Partners(q), m.Partners(q)) {
				diffs = append(diffs, "gating: partners of "+q.String()+" diverge")
			}
		}
		if len(diffs) > 0 {
			return diffs
		}
		for _, q := range real {
			// Serving can promote later refs of the same round from QUEUE
			// already; MarkDone only on refs still queued.
			if g.State(q) == jobgraph.Queue {
				g.MarkDone(q)
				m.MarkDone(q)
			}
		}
	}
}

func refsEqual(a, b []jobgraph.Ref) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func refsString(refs []jobgraph.Ref) string {
	s := "["
	for i, r := range refs {
		if i > 0 {
			s += " "
		}
		s += r.String()
	}
	return s + "]"
}
