package oracle

import (
	"fmt"
	"math/rand"
	"testing"

	"jaws/internal/jobgraph"
)

// TestGatingDifferential drives the production gating graph and the
// reference ModelGraph over randomized job sets and requires them to make
// identical admission decisions, expose identical schedulable frontiers
// and gating numbers, and — the Fig. 4 guarantee — drain without
// deadlock.
func TestGatingDifferential(t *testing.T) {
	scenarios := 150
	if testing.Short() {
		scenarios = 25
	}
	for seed := int64(0); seed < int64(scenarios); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			jobs := 2 + rng.Intn(5) // 2–6 ordered jobs
			lens := make(map[int64]int, jobs)
			atoms := make(map[jobgraph.Ref]map[int]bool)
			universe := 4 + rng.Intn(6) // 4–9 atoms: dense sharing
			for j := int64(1); j <= int64(jobs); j++ {
				n := 1 + rng.Intn(6) // 1–6 queries per job
				lens[j] = n
				for s := 0; s < n; s++ {
					set := make(map[int]bool)
					for k := 0; k < universe; k++ {
						if rng.Intn(3) == 0 {
							set[k] = true
						}
					}
					atoms[jobgraph.Ref{Job: j, Seq: s}] = set
				}
			}
			shares := func(a, b jobgraph.Ref) bool {
				sa, sb := atoms[a], atoms[b]
				if len(sa) > len(sb) {
					sa, sb = sb, sa
				}
				for k := range sa {
					if sb[k] {
						return true
					}
				}
				return false
			}

			g := jobgraph.New(shares)
			m := NewModelGraph(shares)
			for j := int64(1); j <= int64(jobs); j++ {
				if err := g.AddJob(j, lens[j]); err != nil {
					t.Fatalf("AddJob(%d): %v", j, err)
				}
				m.AddJob(j, lens[j])
			}
			if ga, ma := g.EdgesAdmitted(), m.EdgesAdmitted(); ga != ma {
				t.Errorf("admitted edges: real %d, model %d", ga, ma)
			}
			if gr, mr := g.EdgesRejected(), m.EdgesRejected(); gr != mr {
				t.Errorf("rejected edges: real %d, model %d", gr, mr)
			}
			for _, d := range CheckDeadlockFree(g, m) {
				t.Error(d)
			}
		})
	}
}

// TestGatingPruneDifferential interleaves serving with pruning: after
// every round of completions both graphs prune, and late-arriving jobs
// must still merge identically against the survivors.
func TestGatingPruneDifferential(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		universe := 5
		atoms := make(map[jobgraph.Ref]map[int]bool)
		mkJob := func(id int64, n int) {
			for s := 0; s < n; s++ {
				set := make(map[int]bool)
				for k := 0; k < universe; k++ {
					if rng.Intn(3) == 0 {
						set[k] = true
					}
				}
				atoms[jobgraph.Ref{Job: id, Seq: s}] = set
			}
		}
		shares := func(a, b jobgraph.Ref) bool {
			for k := range atoms[a] {
				if atoms[b][k] {
					return true
				}
			}
			return false
		}
		g := jobgraph.New(shares)
		m := NewModelGraph(shares)

		// Two waves: drain and prune the first before the second arrives.
		for j := int64(1); j <= 3; j++ {
			n := 1 + rng.Intn(4)
			mkJob(j, n)
			if err := g.AddJob(j, n); err != nil {
				t.Fatalf("seed %d: AddJob(%d): %v", seed, j, err)
			}
			m.AddJob(j, n)
		}
		if diffs := CheckDeadlockFree(g, m); len(diffs) > 0 {
			t.Fatalf("seed %d wave 1: %v", seed, diffs)
		}
		g.Prune()
		m.Prune()
		for j := int64(4); j <= 6; j++ {
			n := 1 + rng.Intn(4)
			mkJob(j, n)
			if err := g.AddJob(j, n); err != nil {
				t.Fatalf("seed %d: AddJob(%d): %v", seed, j, err)
			}
			m.AddJob(j, n)
		}
		if diffs := CheckDeadlockFree(g, m); len(diffs) > 0 {
			t.Fatalf("seed %d wave 2: %v", seed, diffs)
		}
	}
}
