package oracle

import (
	"fmt"
	"sort"
	"time"

	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/store"
)

// Reference models for the tail policies (sched.PolicySpec) and for the
// QoS decorator. Like the base models they trade every optimization for
// legibility — naive rescans over the sorted queue list, one loop per
// decision rule — and rely on the differential harness to certify
// bit-exact agreement with the production decorators.

// GateAwareModel is the oracle-side counterpart of sched.GateAware: the
// harness installs the same per-query gate source on both sides of a
// differential comparison.
type GateAwareModel interface {
	SetGateSource(fn func(q query.ID) sched.GateState)
}

// resizableModel is the oracle-side counterpart of the production
// tailInner contract: a model whose batch bound the adaptive-batch policy
// model can steer, with the per-round truncation count it steers on.
type resizableModel interface {
	Model
	UtilityModel
	setBatchSize(k int)
	batchSize() int
	lastTruncated() int
}

// NewPolicyModel builds the reference model for a policy-decorated JAWS
// scheduler, mirroring sched.PolicySpec.Wrap: gate-aware and cross-step
// fold into one windowed selection model, adaptive-batch wraps outermost.
// The empty spec yields the plain JAWS model.
func NewPolicyModel(p Params, spec sched.PolicySpec) Model {
	k := p.BatchSize
	if k <= 0 {
		k = 15
	}
	ctrl := modelAlphaController{alpha: clamp01(p.Alpha), adaptive: p.Adaptive, exploreSign: 1}
	var inner resizableModel
	if spec.GateAware != nil || spec.CrossStep != nil {
		span := 1
		if spec.CrossStep != nil {
			span = spec.CrossStep.Span
		}
		inner = &modelTail{cost: p.Cost, k: k, span: span, gate: spec.GateAware, ctrl: ctrl}
	} else {
		inner = &modelJAWS{cost: p.Cost, k: k, ctrl: ctrl}
	}
	if spec.AdaptiveBatch != nil {
		return newModelAdaptiveBatch(inner, *spec.AdaptiveBatch)
	}
	return inner
}

// PolicyTarget pairs a policy-decorated production JAWS scheduler with
// its reference model, both built from the same parameters and spec.
func PolicyTarget(p Params, spec sched.PolicySpec) Target {
	return Target{
		Name: "JAWS+policy(" + spec.String() + ")",
		New: func(resident func(store.AtomID) bool) sched.Scheduler {
			inner := sched.NewJAWS(sched.JAWSConfig{
				Cost:         p.Cost,
				BatchSize:    p.BatchSize,
				InitialAlpha: p.Alpha,
				Adaptive:     p.Adaptive,
				Resident:     resident,
			})
			return spec.Wrap(inner)
		},
		NewModel: func() Model { return NewPolicyModel(p, spec) },
	}
}

// QoSTarget pairs the production QoS decorator with its reference model.
// stretch and horizon follow NewQoS's conventions (≤ 0 selects the
// defaults).
func QoSTarget(p Params, stretch float64, horizon time.Duration) Target {
	return Target{
		Name: fmt.Sprintf("JAWS+QoS(stretch=%g,horizon=%s)", stretch, horizon),
		New: func(resident func(store.AtomID) bool) sched.Scheduler {
			inner := sched.NewJAWS(sched.JAWSConfig{
				Cost:         p.Cost,
				BatchSize:    p.BatchSize,
				InitialAlpha: p.Alpha,
				Adaptive:     p.Adaptive,
				Resident:     resident,
			})
			return sched.NewQoS(inner, p.Cost, stretch, horizon)
		},
		NewModel: func() Model { return newModelQoS(p, stretch, horizon) },
	}
}

// --- TailJAWS model: gate-aware scoring + cross-step windows -------------

// modelTail restates sched.TailJAWS's decision: every atom's aged metric
// is multiplied by a gate factor, level one anchors on the best single
// step by mean adjusted metric (JAWS's rule) and extends the window
// across ≤ span−1 following contiguous steps that share a pending query
// with the anchor, level two batches the above-window-mean atoms (single
// best as fallback), truncated to the k most contentious and executed in
// Morton order.
type modelTail struct {
	cost   sched.CostModel
	k      int
	span   int
	gate   *sched.GateAwareParams
	gateFn func(query.ID) sched.GateState
	ctrl   modelAlphaController
	q      queueList

	lastTrunc int
}

// SetGateSource implements GateAwareModel.
func (m *modelTail) SetGateSource(fn func(q query.ID) sched.GateState) { m.gateFn = fn }

func (m *modelTail) Enqueue(sq *query.SubQuery, now time.Duration) { m.q.add(sq, now) }

// factor mirrors the production rule: Boost if any pending query on the
// atom is releasing, Discount if all are blocked, 1 otherwise (and always
// 1 without a gate policy or source).
func (m *modelTail) factor(q *modelQueue) float64 {
	if m.gate == nil || m.gateFn == nil {
		return 1
	}
	releasing := false
	blocked := len(q.subs) > 0
	for _, sq := range q.subs {
		switch m.gateFn(sq.Query.ID) {
		case sched.GateReleasing:
			releasing = true
		case sched.GateBlocked:
		default:
			blocked = false
		}
	}
	if releasing {
		return m.gate.Boost
	}
	if blocked {
		return m.gate.Discount
	}
	return 1
}

// adjusted is the decision score: Eq. 2's aged metric times the gate
// factor, spelled exactly as the production expression so agreement is
// bit-exact.
func (m *modelTail) adjusted(q *modelQueue, alpha float64, now time.Duration, resident func(store.AtomID) bool) float64 {
	return ue(m.cost, q, alpha, now, resident) * m.factor(q)
}

// stepsShareQuery reports whether any pending sub-query on step a belongs
// to the same query as one on step b — the production bucketsShareQuery
// predicate that qualifies a window extension.
func (m *modelTail) stepsShareQuery(a, b int) bool {
	for _, qa := range m.q.ofStep(a) {
		for _, sqa := range qa.subs {
			for _, qb := range m.q.ofStep(b) {
				for _, sqb := range qb.subs {
					if sqa.Query.ID == sqb.Query.ID {
						return true
					}
				}
			}
		}
	}
	return false
}

func (m *modelTail) NextBatch(now time.Duration, resident func(store.AtomID) bool) []sched.Batch {
	m.lastTrunc = 0
	if m.q.subs == 0 {
		return nil
	}
	alpha := m.ctrl.alpha
	steps := m.q.steps()

	// Level one: anchor on the best single step by mean adjusted metric
	// (strict >, earliest step on ties — JAWS's own rule), sums
	// accumulating atoms in key order, the production accumulation order.
	bestStart, bestLen := -1, 1
	bestMean, winSum, winCount := 0.0, 0.0, 0
	for i := range steps {
		sum := 0.0
		count := 0
		for _, q := range m.q.ofStep(steps[i]) {
			sum += m.adjusted(q, alpha, now, resident)
			count++
		}
		if mean := sum / float64(count); bestStart < 0 || mean > bestMean {
			bestStart, bestMean = i, mean
			winSum, winCount = sum, count
		}
	}

	// Window extension: fold in up to span−1 following steps whose values
	// stay contiguous and that share a pending query with the anchor (the
	// derivative-chain signature). The window mean replaces the anchor
	// mean as level two's bar.
	for j := bestStart + 1; j < len(steps) && j-bestStart < m.span; j++ {
		if steps[j] != steps[j-1]+1 ||
			!m.stepsShareQuery(steps[bestStart], steps[j]) {
			break
		}
		for _, q := range m.q.ofStep(steps[j]) {
			winSum += m.adjusted(q, alpha, now, resident)
			winCount++
		}
		bestLen++
	}
	if bestLen > 1 {
		bestMean = winSum / float64(winCount)
	}

	// Level two: the above-window-mean atoms across the window in key
	// order; if none strictly exceeds the mean, the single best atom
	// keeps the schedule moving.
	var selected []*modelQueue
	var fallback *modelQueue
	fallbackScore := 0.0
	for j := bestStart; j < bestStart+bestLen; j++ {
		for _, q := range m.q.ofStep(steps[j]) {
			score := m.adjusted(q, alpha, now, resident)
			if score > bestMean {
				selected = append(selected, q)
			}
			if fallback == nil || score > fallbackScore {
				fallback, fallbackScore = q, score
			}
		}
	}
	if len(selected) == 0 {
		selected = []*modelQueue{fallback}
	}
	// Keep the k most contentious (adjusted-score-descending,
	// key-ascending on ties), then execute in Morton order.
	if len(selected) > m.k {
		m.lastTrunc = len(selected) - m.k
		sort.SliceStable(selected, func(i, j int) bool {
			si := m.adjusted(selected[i], alpha, now, resident)
			sj := m.adjusted(selected[j], alpha, now, resident)
			if si != sj {
				return si > sj
			}
			return selected[i].atom.Key() < selected[j].atom.Key()
		})
		selected = selected[:m.k]
		sort.Slice(selected, func(i, j int) bool {
			return selected[i].atom.Key() < selected[j].atom.Key()
		})
	}
	out := make([]sched.Batch, len(selected))
	for i, q := range selected {
		out[i] = m.q.take(q)
	}
	return out
}

func (m *modelTail) OnRunEnd(rt, tp float64) { m.ctrl.onRunEnd(rt, tp) }
func (m *modelTail) Alpha() float64          { return m.ctrl.alpha }
func (m *modelTail) Pending() int            { return m.q.subs }

// AtomUtility implements UtilityModel.
func (m *modelTail) AtomUtility(id store.AtomID, resident func(store.AtomID) bool) float64 {
	return m.q.atomUtility(m.cost, id, resident)
}

// StepMean implements UtilityModel.
func (m *modelTail) StepMean(step int, resident func(store.AtomID) bool) float64 {
	return m.q.stepMean(m.cost, step, resident)
}

// PendingSteps implements UtilityModel.
func (m *modelTail) PendingSteps() []int { return m.q.steps() }

// PendingAtoms implements UtilityModel.
func (m *modelTail) PendingAtoms() []store.AtomID { return m.q.atoms() }

func (m *modelTail) setBatchSize(k int) {
	if k < 1 {
		k = 1
	}
	m.k = k
}
func (m *modelTail) batchSize() int     { return m.k }
func (m *modelTail) lastTruncated() int { return m.lastTrunc }

// --- AdaptiveBatch model: starvation-aware batch sizing ------------------

// modelAdaptiveBatch restates sched.AdaptiveBatch: after p.Full
// consecutive truncating rounds the inner batch bound grows by p.Grow up
// to p.Max; after p.Idle consecutive fitting rounds it shrinks by
// p.Shrink down to p.Min. Empty rounds leave the streaks untouched.
type modelAdaptiveBatch struct {
	inner resizableModel
	p     sched.AdaptiveBatchParams

	streakFull, streakIdle int
}

func newModelAdaptiveBatch(inner resizableModel, p sched.AdaptiveBatchParams) *modelAdaptiveBatch {
	k := inner.batchSize()
	if k < p.Min {
		k = p.Min
	}
	if k > p.Max {
		k = p.Max
	}
	inner.setBatchSize(k)
	return &modelAdaptiveBatch{inner: inner, p: p}
}

func (m *modelAdaptiveBatch) Enqueue(sq *query.SubQuery, now time.Duration) {
	m.inner.Enqueue(sq, now)
}

func (m *modelAdaptiveBatch) NextBatch(now time.Duration, resident func(store.AtomID) bool) []sched.Batch {
	out := m.inner.NextBatch(now, resident)
	if len(out) == 0 {
		return out
	}
	if t := m.inner.lastTruncated(); t > 0 {
		m.streakFull++
		m.streakIdle = 0
		if m.streakFull >= m.p.Full {
			m.streakFull = 0
			if k := m.inner.batchSize(); k < m.p.Max {
				k += m.p.Grow
				if k > m.p.Max {
					k = m.p.Max
				}
				m.inner.setBatchSize(k)
			}
		}
	} else {
		m.streakIdle++
		m.streakFull = 0
		if m.streakIdle >= m.p.Idle {
			m.streakIdle = 0
			if k := m.inner.batchSize(); k > m.p.Min {
				k -= m.p.Shrink
				if k < m.p.Min {
					k = m.p.Min
				}
				m.inner.setBatchSize(k)
			}
		}
	}
	return out
}

func (m *modelAdaptiveBatch) OnRunEnd(rt, tp float64) { m.inner.OnRunEnd(rt, tp) }
func (m *modelAdaptiveBatch) Alpha() float64          { return m.inner.Alpha() }
func (m *modelAdaptiveBatch) Pending() int            { return m.inner.Pending() }

// SetGateSource implements GateAwareModel by forwarding when the inner
// model consumes gate states.
func (m *modelAdaptiveBatch) SetGateSource(fn func(q query.ID) sched.GateState) {
	if ga, ok := m.inner.(GateAwareModel); ok {
		ga.SetGateSource(fn)
	}
}

// AtomUtility implements UtilityModel.
func (m *modelAdaptiveBatch) AtomUtility(id store.AtomID, resident func(store.AtomID) bool) float64 {
	return m.inner.AtomUtility(id, resident)
}

// StepMean implements UtilityModel.
func (m *modelAdaptiveBatch) StepMean(step int, resident func(store.AtomID) bool) float64 {
	return m.inner.StepMean(step, resident)
}

// PendingSteps implements UtilityModel.
func (m *modelAdaptiveBatch) PendingSteps() []int { return m.inner.PendingSteps() }

// PendingAtoms implements UtilityModel.
func (m *modelAdaptiveBatch) PendingAtoms() []store.AtomID { return m.inner.PendingAtoms() }

// --- QoS model: proportional completion-time guarantees ------------------

// modelQoS restates sched.QoS: each query's first enqueue fixes a
// deadline proportional to its estimated service time; whenever a pending
// atom carries a deadline within the look-ahead horizon the urgent atoms
// are served earliest-deadline-first (truncated to the inner batch bound,
// executed in Morton order), otherwise the decision falls through to the
// inner JAWS model.
type modelQoS struct {
	inner   *modelJAWS
	cost    sched.CostModel
	stretch float64
	horizon time.Duration

	deadlines map[query.ID]time.Duration
	// pendingCnt counts how many atom queues still hold sub-queries of
	// each query, so a deadline is retired exactly when the query's last
	// atom is served (mirroring the production bookkeeping).
	pendingCnt map[query.ID]int
}

func newModelQoS(p Params, stretch float64, horizon time.Duration) *modelQoS {
	if stretch <= 0 {
		stretch = 8
	}
	if horizon <= 0 {
		horizon = 2 * time.Second
	}
	k := p.BatchSize
	if k <= 0 {
		k = 15
	}
	return &modelQoS{
		inner: &modelJAWS{
			cost: p.Cost,
			k:    k,
			ctrl: modelAlphaController{alpha: clamp01(p.Alpha), adaptive: p.Adaptive, exploreSign: 1},
		},
		cost:       p.Cost,
		stretch:    stretch,
		horizon:    horizon,
		deadlines:  make(map[query.ID]time.Duration),
		pendingCnt: make(map[query.ID]int),
	}
}

// queryOnAtom reports whether the query already has a pending sub-query
// on the atom (the production pendingBy membership test).
func (m *modelQoS) queryOnAtom(atom store.AtomID, qid query.ID) bool {
	for _, q := range m.inner.q.queues {
		if q.atom != atom {
			continue
		}
		for _, sq := range q.subs {
			if sq.Query.ID == qid {
				return true
			}
		}
	}
	return false
}

func (m *modelQoS) Enqueue(sq *query.SubQuery, now time.Duration) {
	qid := sq.Query.ID
	if _, ok := m.deadlines[qid]; !ok {
		atoms := 1 + len(sq.Footprint)
		est := time.Duration(atoms)*m.cost.Tb +
			time.Duration(float64(len(sq.Query.Points))*sq.Query.Kernel.CostWeight())*m.cost.Tm
		m.deadlines[qid] = sq.Query.Arrival + time.Duration(m.stretch*float64(est))
	}
	if !m.queryOnAtom(sq.Atom, qid) {
		m.pendingCnt[qid]++
	}
	m.inner.Enqueue(sq, now)
}

// distinctQueries returns the distinct query IDs among the sub-queries,
// in first-appearance order.
func distinctQueries(subs []*query.SubQuery) []query.ID {
	var out []query.ID
	for _, sq := range subs {
		dup := false
		for _, qid := range out {
			if qid == sq.Query.ID {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, sq.Query.ID)
		}
	}
	return out
}

func (m *modelQoS) NextBatch(now time.Duration, resident func(store.AtomID) bool) []sched.Batch {
	type urgent struct {
		q        *modelQueue
		deadline time.Duration
	}
	var urgents []urgent
	for _, q := range m.inner.q.queues {
		best := time.Duration(1<<62 - 1)
		for _, qid := range distinctQueries(q.subs) {
			if d := m.deadlines[qid]; d < best {
				best = d
			}
		}
		if best <= now+m.horizon {
			urgents = append(urgents, urgent{q: q, deadline: best})
		}
	}
	var batches []sched.Batch
	if len(urgents) > 0 {
		// Earliest deadline first (key on ties), truncate to the inner
		// batch bound, execute in Morton order.
		sort.SliceStable(urgents, func(i, j int) bool {
			if urgents[i].deadline != urgents[j].deadline {
				return urgents[i].deadline < urgents[j].deadline
			}
			return urgents[i].q.atom.Key() < urgents[j].q.atom.Key()
		})
		if len(urgents) > m.inner.k {
			urgents = urgents[:m.inner.k]
		}
		sort.Slice(urgents, func(i, j int) bool {
			return urgents[i].q.atom.Key() < urgents[j].q.atom.Key()
		})
		batches = make([]sched.Batch, len(urgents))
		for i, u := range urgents {
			batches[i] = m.inner.q.take(u.q)
		}
	} else {
		batches = m.inner.NextBatch(now, resident)
	}
	// Retire served sub-queries; a query's deadline is dropped when its
	// last atom is served.
	for _, b := range batches {
		for _, qid := range distinctQueries(b.SubQueries) {
			if m.pendingCnt[qid]--; m.pendingCnt[qid] <= 0 {
				delete(m.pendingCnt, qid)
				delete(m.deadlines, qid)
			}
		}
	}
	return batches
}

func (m *modelQoS) OnRunEnd(rt, tp float64) { m.inner.OnRunEnd(rt, tp) }
func (m *modelQoS) Alpha() float64          { return m.inner.Alpha() }
func (m *modelQoS) Pending() int            { return m.inner.Pending() }

// AtomUtility implements UtilityModel.
func (m *modelQoS) AtomUtility(id store.AtomID, resident func(store.AtomID) bool) float64 {
	return m.inner.AtomUtility(id, resident)
}

// StepMean implements UtilityModel.
func (m *modelQoS) StepMean(step int, resident func(store.AtomID) bool) float64 {
	return m.inner.StepMean(step, resident)
}

// PendingSteps implements UtilityModel.
func (m *modelQoS) PendingSteps() []int { return m.inner.PendingSteps() }

// PendingAtoms implements UtilityModel.
func (m *modelQoS) PendingAtoms() []store.AtomID { return m.inner.PendingAtoms() }

var (
	_ resizableModel = (*modelJAWS)(nil)
	_ resizableModel = (*modelTail)(nil)
	_ UtilityModel   = (*modelTail)(nil)
	_ UtilityModel   = (*modelAdaptiveBatch)(nil)
	_ UtilityModel   = (*modelQoS)(nil)
	_ GateAwareModel = (*modelTail)(nil)
	_ GateAwareModel = (*modelAdaptiveBatch)(nil)
)
