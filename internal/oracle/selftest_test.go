package oracle

import (
	"strings"
	"testing"
	"time"

	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/store"
)

// minUESched is a deliberately broken LifeRaft: a utility-ordering bug
// makes it serve the atom with the LOWEST aged metric. The harness
// self-test plants it as the production side of a Target and requires the
// differential machinery to catch it and shrink the reproducer.
type minUESched struct {
	cost     sched.CostModel
	alpha    float64
	resident func(store.AtomID) bool
	q        queueList
}

func (s *minUESched) Name() string                                  { return "LifeRaft(min-ue bug)" }
func (s *minUESched) Enqueue(sq *query.SubQuery, now time.Duration) { s.q.add(sq, now) }
func (s *minUESched) Pending() int                                  { return s.q.subs }
func (s *minUESched) OnRunEnd(rt, tp float64)                       {}
func (s *minUESched) Alpha() float64                                { return s.alpha }

func (s *minUESched) NextBatch(now time.Duration) []sched.Batch {
	var worst *modelQueue
	worstScore := 0.0
	for _, q := range s.q.queues {
		if score := ue(s.cost, q, s.alpha, now, s.resident); worst == nil || score < worstScore {
			worst, worstScore = q, score
		}
	}
	if worst == nil {
		return nil
	}
	return []sched.Batch{s.q.take(worst)}
}

// TestInjectedBugCaughtAndShrunk captures a real LifeRaft run, swaps the
// production side for the min-U_e mutant, and requires Diff to flag the
// divergence and Shrink to cut the log to a minimal reproducer — two
// enqueues building two unequal queues plus the one decision that
// exposes the flipped ordering.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	cfg, p := SuiteParams(AlgoLifeRaft, 1)
	c, err := Run(cfg)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	buggy := Target{
		Name: "LifeRaft(min-ue bug)",
		New: func(resident func(store.AtomID) bool) sched.Scheduler {
			return &minUESched{cost: p.Cost, alpha: p.Alpha, resident: resident}
		},
		NewModel: func() Model { return NewModel(AlgoLifeRaft, p) },
	}

	d := Diff(buggy, c.Log)
	if d == nil {
		t.Fatal("differential harness did not catch the injected utility-ordering bug")
	}
	t.Logf("caught: %v", d)

	shrunk := Shrink(buggy, c.Log)
	if got := Diff(buggy, shrunk); got == nil {
		t.Fatal("shrunk log no longer reproduces the divergence")
	}
	t.Logf("shrunk %d ops to %d", len(c.Log.Ops), len(shrunk.Ops))
	if len(shrunk.Ops) > 3 {
		t.Errorf("minimal reproducer has %d ops, want ≤ 3 (two enqueues + one decision)", len(shrunk.Ops))
	}
	var enq, dec int
	for _, op := range shrunk.Ops {
		switch op.Kind {
		case OpEnqueue:
			enq++
		case OpDecision:
			dec++
		}
		if op.Got != nil {
			t.Error("shrunk log still carries recorded answers")
		}
	}
	if dec != 1 {
		t.Errorf("minimal reproducer has %d decisions, want 1", dec)
	}
	if enq < 2 {
		t.Errorf("minimal reproducer has %d enqueues; one queue cannot expose an ordering bug", enq)
	}

	// The control arm: the same machinery over the healthy scheduler must
	// stay silent, and Shrink on a non-diverging log must be the identity
	// (minus recordings).
	healthy := StandardTarget(AlgoLifeRaft, p)
	if d := Diff(healthy, c.Log); d != nil {
		t.Fatalf("healthy LifeRaft diverges: %v", d)
	}
	if kept := Shrink(healthy, c.Log); len(kept.Ops) != len(c.Log.Ops) {
		t.Errorf("Shrink on a passing log dropped ops: %d → %d", len(c.Log.Ops), len(kept.Ops))
	}
}

// TestDivergenceReporting pins the shape of the divergence report the
// jawscheck CLI prints.
func TestDivergenceReporting(t *testing.T) {
	d := &Divergence{Target: "JAWS", OpIndex: 7, Kind: "model-vs-real", Detail: "model [], real [s1/a9×1]"}
	msg := d.Error()
	for _, want := range []string{"JAWS", "op 7", "model-vs-real", "s1/a9×1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("divergence report %q missing %q", msg, want)
		}
	}
}
