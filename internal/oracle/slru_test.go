package oracle

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"jaws/internal/cache"
	"jaws/internal/morton"
	"jaws/internal/store"
)

// TestSLRUDifferential drives a real SLRU-backed cache and the reference
// ModelSLRU through randomized Get/Put/EndRun/Flush sequences shaped like
// the engine's read path (Get, then Put on miss), with deterministic
// corruption mixed in, and requires identical hit/miss outcomes, victim
// choices, resident sets, and final accounting.
func TestSLRUDifferential(t *testing.T) {
	scenarios := 60
	if testing.Short() {
		scenarios = 10
	}
	for seed := int64(0); seed < int64(scenarios); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			capacity := 4 + rng.Intn(12) // 4–15 atoms
			frac := []float64{0, 0.1, 0.25, 0.5}[rng.Intn(4)]
			universe := make([]store.AtomID, capacity*5/2) // ~2.5× capacity
			for i := range universe {
				universe[i] = store.AtomID{Step: i % 3, Code: morton.Code(i * 7)}
			}

			real := cache.New(capacity, cache.NewSLRU(capacity, frac))
			model := NewModelSLRU(capacity, frac)

			// Deterministic corruption in lockstep: the verdict of the next
			// integrity check is drawn before each Get, so both sides see the
			// identical answer regardless of who checks first.
			corruptNext := false
			integ := func(store.AtomID) bool { return !corruptNext }
			real.SetIntegrity(integ)
			model.Integrity = integ

			var realEvicted []store.AtomID
			real.SetObserver(cache.Observer{Evict: func(id store.AtomID) { realEvicted = append(realEvicted, id) }})

			requireSameResidents := func(op string) {
				t.Helper()
				rk := real.Keys()
				sort.Slice(rk, func(i, j int) bool { return rk[i].Key() < rk[j].Key() })
				mk := model.Resident()
				if fmt.Sprint(rk) != fmt.Sprint(mk) {
					t.Fatalf("after %s: resident sets diverge:\n real %v\nmodel %v", op, rk, mk)
				}
				if real.Len() != model.Len() {
					t.Fatalf("after %s: Len: real %d, model %d", op, real.Len(), model.Len())
				}
			}

			ops := 400
			for i := 0; i < ops; i++ {
				id := universe[rng.Intn(len(universe))]
				switch r := rng.Intn(100); {
				case r < 80: // the engine's read path: Get, Put on miss
					corruptNext = rng.Intn(13) == 0
					realEvicted = realEvicted[:0]
					_, realHit := real.Get(id)
					modelHit, _ := model.Get(id)
					if realHit != modelHit {
						t.Fatalf("op %d: Get(%v): real hit=%v, model hit=%v", i, id, realHit, modelHit)
					}
					if !realHit {
						real.Put(id, i)
						victims := model.Put(id)
						if fmt.Sprint(realEvicted) != fmt.Sprint(victims) {
							t.Fatalf("op %d: Put(%v) victims: real %v, model %v", i, id, realEvicted, victims)
						}
					}
				case r < 90: // recency refresh of a possibly-resident atom
					realEvicted = realEvicted[:0]
					real.Put(id, i)
					victims := model.Put(id)
					if fmt.Sprint(realEvicted) != fmt.Sprint(victims) {
						t.Fatalf("op %d: refresh Put(%v) victims: real %v, model %v", i, id, realEvicted, victims)
					}
				case r < 97: // end-of-run promotion
					real.EndRun()
					model.EndRun()
				default: // NoShare-style flush
					realEvicted = realEvicted[:0]
					real.Flush()
					victims := model.Flush()
					sort.Slice(realEvicted, func(a, b int) bool { return realEvicted[a].Key() < realEvicted[b].Key() })
					if fmt.Sprint(realEvicted) != fmt.Sprint(victims) {
						t.Fatalf("op %d: Flush victims: real %v, model %v", i, realEvicted, victims)
					}
				}
				requireSameResidents(fmt.Sprintf("op %d", i))
			}

			rs, ms := real.Stats(), model.Stats()
			if rs.Hits != ms.Hits || rs.Misses != ms.Misses || rs.Evictions != ms.Evictions || rs.Corruptions != ms.Corruptions {
				t.Fatalf("final stats diverge:\n real hits=%d misses=%d evictions=%d corruptions=%d\nmodel hits=%d misses=%d evictions=%d corruptions=%d",
					rs.Hits, rs.Misses, rs.Evictions, rs.Corruptions, ms.Hits, ms.Misses, ms.Evictions, ms.Corruptions)
			}
		})
	}
}

// TestModelSLRUPromotion pins the §V.B end-of-run semantics on a hand-run
// scenario: the most-accessed atoms land in the protected segment, ties
// break to the lower key, and demoted atoms re-enter the probationary
// segment at the MRU end.
func TestModelSLRUPromotion(t *testing.T) {
	id := func(c int) store.AtomID { return store.AtomID{Code: morton.Code(c)} }
	m := NewModelSLRU(4, 0.5) // protCap = 2
	for _, c := range []int{1, 2, 3, 4} {
		m.Put(id(c))
	}
	// Access counts: atom 2 ×3, atom 3 ×2, others ×1 (from Put).
	m.Get(id(2))
	m.Get(id(2))
	m.Get(id(3))
	m.EndRun()
	if got := m.ProtectedLen(); got != 2 {
		t.Fatalf("protected segment holds %d atoms, want 2", got)
	}
	for _, c := range []int{2, 3} {
		if !m.inProt(id(c)) {
			t.Errorf("atom %d not promoted", c)
		}
	}
	// A second run with no accesses: counts were reset, so ranking is empty
	// and the protected set drains losers on the next promotion.
	m.EndRun()
	if got := m.ProtectedLen(); got != 0 {
		t.Errorf("stale counts survived the run boundary: protected len %d, want 0", got)
	}
	if m.Len() != 4 {
		t.Errorf("demotion lost atoms: len %d, want 4", m.Len())
	}
}
