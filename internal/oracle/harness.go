package oracle

import (
	"sort"
	"time"

	"jaws/internal/cache"
	"jaws/internal/engine"
	"jaws/internal/fault"
	"jaws/internal/geom"
	"jaws/internal/job"
	"jaws/internal/jobgraph"
	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/store"
	"jaws/internal/workload"
)

// CaptureConfig assembles one recorded run for differential checking.
type CaptureConfig struct {
	// Algo and Params pick the scheduler under test.
	Algo   Algo
	Params Params
	// Policy, when non-empty, is a sched.PolicySpec string decorating a
	// JAWS scheduler with tail policies (Algo must be AlgoJAWS).
	Policy string
	// Workload parameterizes the synthetic trace. Zero Space/Steps default
	// to a deliberately tiny store (128³ grid in 32³ atoms over 5 steps)
	// so hundreds of seeds stay affordable in the test suite.
	Workload workload.Config
	// CacheAtoms is the cache capacity; zero means 32.
	CacheAtoms int
	// ProtectedFrac is the SLRU protected share; zero means 0.1.
	ProtectedFrac float64
	// RunLength is r, queries per adaptation run; zero means 8 (small, so
	// short runs still exercise OnRunEnd).
	RunLength int
	// JobAware enables gated execution.
	JobAware bool
	// FaultSpec, when non-empty, schedules deterministic fault injection
	// (see internal/fault for the grammar); FaultSeed seeds it.
	FaultSpec string
	FaultSeed int64
}

// Decision is one engine-level scheduling decision, exported through the
// engine's OnDecision hook.
type Decision struct {
	Now     time.Duration
	Batches []sched.Batch
}

// Capture is one recorded run: the scheduler op log, the engine-level
// decision trace, the lifecycle spans, and the final cache accounting.
// RunErr carries the engine's error for fault-schedule runs that crash or
// abort; the log is then a valid prefix.
type Capture struct {
	Log        *OpLog
	Decisions  []Decision
	Spans      []obs.Span
	Report     *engine.Report
	RunErr     error
	CacheStats cache.Stats
	CacheLen   int
	Jobs       []*job.Job
	// Partners maps each gated query of the workload to its co-scheduled
	// partners, derived from the reference ModelGraph (JobAware only).
	Partners map[jobgraph.Ref][]jobgraph.Ref
}

// target resolves the differential target the config describes: the
// standard algorithm pairing, or the policy-decorated JAWS pairing when a
// policy spec is set.
func (cfg CaptureConfig) target() (Target, error) {
	if cfg.Policy == "" {
		return StandardTarget(cfg.Algo, cfg.Params), nil
	}
	spec, err := sched.ParsePolicySpec(cfg.Policy)
	if err != nil {
		return Target{}, err
	}
	return PolicyTarget(cfg.Params, spec), nil
}

// Run executes the configured workload on a real engine with a recording
// scheduler and returns the capture. The run is deterministic in the
// configuration.
func Run(cfg CaptureConfig) (*Capture, error) {
	if cfg.Workload.Space.GridSide == 0 {
		cfg.Workload.Space = geom.Space{GridSide: 128, AtomSide: 32}
	}
	if cfg.Workload.Steps == 0 {
		cfg.Workload.Steps = 5
	}
	if cfg.CacheAtoms == 0 {
		cfg.CacheAtoms = 32
	}
	if cfg.ProtectedFrac == 0 {
		cfg.ProtectedFrac = 0.1
	}
	if cfg.RunLength == 0 {
		cfg.RunLength = 8
	}
	wl := workload.Generate(cfg.Workload)

	st, err := store.Open(store.Config{
		Space: cfg.Workload.Space,
		Steps: cfg.Workload.Steps,
		Seed:  cfg.Workload.Seed,
	})
	if err != nil {
		return nil, err
	}
	ch := cache.New(cfg.CacheAtoms, cache.NewSLRU(cfg.CacheAtoms, cfg.ProtectedFrac))

	target, err := cfg.target()
	if err != nil {
		return nil, err
	}
	rec := NewRecordingSched(target.New(ch.Contains), ch.Contains)

	var inj *fault.Injector
	if cfg.FaultSpec != "" {
		spec, err := fault.ParseSpec(cfg.FaultSpec)
		if err != nil {
			return nil, err
		}
		inj = fault.New(spec, cfg.FaultSeed, 0)
	}

	cap := &Capture{Jobs: wl.Jobs}
	spans := obs.NewSpanAgg()
	eng, err := engine.New(engine.Config{
		Store:    st,
		Cache:    ch,
		Sched:    rec,
		Cost:     cfg.Params.Cost,
		JobAware: cfg.JobAware,
		// Upfront declaration makes the gating graph a pure function of the
		// job set, so the reference ModelGraph's partner sets are exact at
		// every point of the run (incremental registration would make them
		// time-dependent); it is also the stronger discipline — queries
		// genuinely wait for partners from later-arriving jobs.
		DeclareUpfront:   cfg.JobAware,
		RunLength:        cfg.RunLength,
		FlushPerDecision: cfg.Algo == AlgoNoShare,
		Obs:              &obs.Obs{Spans: spans},
		Fault:            inj,
		OnDecision: func(now time.Duration, batches []sched.Batch) {
			cp := make([]sched.Batch, len(batches))
			for i, b := range batches {
				cp[i] = sched.Batch{Atom: b.Atom, SubQueries: append([]*query.SubQuery(nil), b.SubQueries...)}
			}
			cap.Decisions = append(cap.Decisions, Decision{Now: now, Batches: cp})
		},
	})
	if err != nil {
		return nil, err
	}
	cap.Report, cap.RunErr = eng.Run(wl.Jobs)
	cap.Log = rec.Log()
	cap.Spans = spans.Spans()
	cap.CacheStats = ch.Stats()
	cap.CacheLen = ch.Len()
	if cfg.JobAware {
		cap.Partners = referencePartners(wl.Jobs, st.Space())
	}
	return cap, nil
}

// referencePartners derives each gated query's co-scheduled partner set
// from the reference ModelGraph, registering ordered jobs in the order
// the engine does: first-query arrival order, stable on ties (the
// future-event list pops equal times in push order).
func referencePartners(jobs []*job.Job, space geom.Space) map[jobgraph.Ref][]jobgraph.Ref {
	ordered := make([]*job.Job, 0, len(jobs))
	for _, j := range jobs {
		if j.Type == job.Ordered {
			ordered = append(ordered, j)
		}
	}
	sort.SliceStable(ordered, func(i, k int) bool {
		return ordered[i].Queries[0].Arrival < ordered[k].Queries[0].Arrival
	})
	atomsOf := make(map[jobgraph.Ref]map[store.AtomID]bool)
	for _, j := range ordered {
		for s, q := range j.Queries {
			atomsOf[jobgraph.Ref{Job: j.ID, Seq: s}] = query.Atoms(q, space)
		}
	}
	g := NewModelGraph(func(a, b jobgraph.Ref) bool {
		sa, sb := atomsOf[a], atomsOf[b]
		if len(sa) > len(sb) {
			sa, sb = sb, sa
		}
		for id := range sa {
			if sb[id] {
				return true
			}
		}
		return false
	})
	for _, j := range ordered {
		g.AddJob(j.ID, len(j.Queries))
	}
	out := make(map[jobgraph.Ref][]jobgraph.Ref)
	for _, j := range ordered {
		for s := range j.Queries {
			r := jobgraph.Ref{Job: j.ID, Seq: s}
			if ps := g.Partners(r); len(ps) > 0 {
				out[r] = ps
			}
		}
	}
	return out
}
