// Package job models scientific jobs (§IV): collections of queries that
// belong to the same experiment. Batched jobs contain independent queries;
// ordered jobs contain a sequence with data dependencies — each query may
// only run after its predecessor completes (e.g. particle tracking, where
// the positions at the next time step are computed from the previous
// result).
//
// The package also implements the job-identification heuristics of §IV.A:
// grouping a raw query log into jobs using user ID, operation, time-step
// progression, and inter-arrival gaps.
package job

import (
	"fmt"
	"sort"
	"time"

	"jaws/internal/field"
	"jaws/internal/query"
)

// Type distinguishes the two job classes of §IV.
type Type int

const (
	// Batched jobs contain queries that may execute independently and in
	// any order; JAWS treats them like one-off queries.
	Batched Type = iota
	// Ordered jobs require queries to execute strictly in sequence
	// because each reuses its predecessor's result.
	Ordered
)

// String names the job type.
func (t Type) String() string {
	switch t {
	case Batched:
		return "batched"
	case Ordered:
		return "ordered"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// Job is a collection of queries from one experiment.
type Job struct {
	ID      int64
	User    int
	Type    Type
	Queries []*query.Query
	// ThinkTime is the wall-clock pause between a query's completion and
	// the submission of its successor in an ordered job (the scientist's
	// out-of-database computation).
	ThinkTime time.Duration
}

// Validate checks structural invariants: non-empty, consistent job IDs and
// sequence numbers.
func (j *Job) Validate() error {
	if len(j.Queries) == 0 {
		return fmt.Errorf("job %d: no queries", j.ID)
	}
	for i, q := range j.Queries {
		if q.JobID != j.ID {
			return fmt.Errorf("job %d: query %d carries job ID %d", j.ID, q.ID, q.JobID)
		}
		if j.Type == Ordered && q.Seq != i {
			return fmt.Errorf("job %d: query at index %d has seq %d", j.ID, i, q.Seq)
		}
	}
	return nil
}

// Len returns the number of queries.
func (j *Job) Len() int { return len(j.Queries) }

// TraceRecord is one line of the (simulated) SQL log: what the cluster
// actually observes about a query, without job labels. Job identification
// reconstructs jobs from these.
type TraceRecord struct {
	QueryID   query.ID
	User      int
	Kernel    field.Kernel
	Step      int
	NumPoints int
	Submitted time.Duration
	// TrueJobID is ground truth carried by the synthetic generator for
	// measuring identification accuracy; a real log would not have it.
	TrueJobID int64
}

// IdentifyParams tune the heuristics of §IV.A.
type IdentifyParams struct {
	// MaxGap is the largest wall-clock gap between consecutive queries of
	// the same job. The paper observes most jobs iterate with think times
	// of seconds to minutes.
	MaxGap time.Duration
	// MaxStepDelta is the largest time-step jump between consecutive
	// queries of one job (ordered jobs advance by small deltas).
	MaxStepDelta int
}

// DefaultIdentifyParams returns the tuning used in the evaluation.
func DefaultIdentifyParams() IdentifyParams {
	return IdentifyParams{MaxGap: 5 * time.Minute, MaxStepDelta: 4}
}

// Identify groups trace records into inferred jobs using the §IV.A
// heuristics: records belong to the same job when they come from the same
// user, perform the same operation (kernel), follow within MaxGap of the
// previous record, and access a time step within MaxStepDelta of it.
// Records are processed in submission order; each is appended to the most
// recent compatible open job of its user, else it opens a new job.
// The returned assignment maps each query to an inferred job label.
func Identify(records []TraceRecord, p IdentifyParams) map[query.ID]int64 {
	recs := append([]TraceRecord(nil), records...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Submitted < recs[j].Submitted })

	type open struct {
		label    int64
		kernel   field.Kernel
		lastStep int
		lastTime time.Duration
		size     int
	}
	assignment := make(map[query.ID]int64, len(recs))
	byUser := make(map[int][]*open)
	var nextLabel int64 = 1

	for _, r := range recs {
		var best *open
		for _, o := range byUser[r.User] {
			if o.kernel != r.Kernel {
				continue
			}
			if r.Submitted-o.lastTime > p.MaxGap {
				continue
			}
			delta := r.Step - o.lastStep
			if delta < 0 {
				delta = -delta
			}
			if delta > p.MaxStepDelta {
				continue
			}
			if best == nil || o.lastTime > best.lastTime {
				best = o
			}
		}
		if best == nil {
			best = &open{label: nextLabel, kernel: r.Kernel}
			nextLabel++
			byUser[r.User] = append(byUser[r.User], best)
		}
		best.lastStep = r.Step
		best.lastTime = r.Submitted
		best.size++
		assignment[r.QueryID] = best.label

		// Garbage-collect long-closed jobs to keep the scan short.
		opens := byUser[r.User][:0]
		for _, o := range byUser[r.User] {
			if r.Submitted-o.lastTime <= p.MaxGap {
				opens = append(opens, o)
			}
		}
		byUser[r.User] = opens
	}
	return assignment
}

// Accuracy scores an inferred assignment against the ground-truth job IDs
// carried in the records using pairwise Rand-index style accuracy: over
// all pairs of queries from the same user, the fraction where
// "same inferred job" agrees with "same true job". This is the measure
// behind the paper's claim that the heuristics are "highly accurate in
// practice" (§IV.A, §VI).
func Accuracy(records []TraceRecord, assignment map[query.ID]int64) float64 {
	byUser := make(map[int][]TraceRecord)
	for _, r := range records {
		byUser[r.User] = append(byUser[r.User], r)
	}
	var agree, total int64
	for _, recs := range byUser {
		for i := 0; i < len(recs); i++ {
			for j := i + 1; j < len(recs); j++ {
				sameTrue := recs[i].TrueJobID == recs[j].TrueJobID
				sameInferred := assignment[recs[i].QueryID] == assignment[recs[j].QueryID]
				if sameTrue == sameInferred {
					agree++
				}
				total++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(agree) / float64(total)
}
