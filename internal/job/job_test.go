package job

import (
	"testing"
	"time"

	"jaws/internal/field"
	"jaws/internal/geom"
	"jaws/internal/query"
)

func mkJob(id int64, typ Type, n int) *Job {
	j := &Job{ID: id, User: 1, Type: typ}
	for i := 0; i < n; i++ {
		j.Queries = append(j.Queries, &query.Query{
			ID:     query.ID(id*1000 + int64(i)),
			JobID:  id,
			Seq:    i,
			Step:   i,
			Points: []geom.Position{{X: 1, Y: 1, Z: 1}},
		})
	}
	return j
}

func TestTypeString(t *testing.T) {
	if Batched.String() != "batched" || Ordered.String() != "ordered" {
		t.Fatal("type names wrong")
	}
	if Type(9).String() == "" {
		t.Fatal("unknown type renders empty")
	}
}

func TestValidate(t *testing.T) {
	if err := mkJob(1, Ordered, 3).Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	empty := &Job{ID: 1}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty job accepted")
	}
	wrongID := mkJob(1, Ordered, 2)
	wrongID.Queries[1].JobID = 99
	if err := wrongID.Validate(); err == nil {
		t.Fatal("inconsistent job ID accepted")
	}
	wrongSeq := mkJob(1, Ordered, 2)
	wrongSeq.Queries[1].Seq = 5
	if err := wrongSeq.Validate(); err == nil {
		t.Fatal("out-of-order seq accepted")
	}
	// Batched jobs do not require sequential Seq.
	batched := mkJob(2, Batched, 2)
	batched.Queries[1].Seq = 7
	if err := batched.Validate(); err != nil {
		t.Fatalf("batched job with loose seq rejected: %v", err)
	}
}

func TestLen(t *testing.T) {
	if mkJob(1, Ordered, 5).Len() != 5 {
		t.Fatal("Len wrong")
	}
}

// mkTrace produces records for one synthetic job: user u, consecutive
// steps, fixed kernel, gap between submissions.
func mkTrace(jobID int64, u int, kernel field.Kernel, startStep int, n int, start, gap time.Duration, firstQID query.ID) []TraceRecord {
	recs := make([]TraceRecord, n)
	for i := 0; i < n; i++ {
		recs[i] = TraceRecord{
			QueryID:   firstQID + query.ID(i),
			User:      u,
			Kernel:    kernel,
			Step:      startStep + i,
			NumPoints: 100,
			Submitted: start + time.Duration(i)*gap,
			TrueJobID: jobID,
		}
	}
	return recs
}

func TestIdentifySingleJob(t *testing.T) {
	recs := mkTrace(1, 7, field.KernelLag4, 0, 10, 0, 30*time.Second, 1)
	got := Identify(recs, DefaultIdentifyParams())
	label := got[recs[0].QueryID]
	for _, r := range recs {
		if got[r.QueryID] != label {
			t.Fatalf("job split: query %d got label %d, want %d", r.QueryID, got[r.QueryID], label)
		}
	}
}

func TestIdentifySplitsOnGap(t *testing.T) {
	a := mkTrace(1, 7, field.KernelLag4, 0, 3, 0, 30*time.Second, 1)
	b := mkTrace(2, 7, field.KernelLag4, 3, 3, 2*time.Hour, 30*time.Second, 100)
	got := Identify(append(a, b...), DefaultIdentifyParams())
	if got[a[0].QueryID] == got[b[0].QueryID] {
		t.Fatal("two-hour gap did not split jobs")
	}
}

func TestIdentifySplitsOnUser(t *testing.T) {
	a := mkTrace(1, 7, field.KernelLag4, 0, 3, 0, 30*time.Second, 1)
	b := mkTrace(2, 8, field.KernelLag4, 0, 3, 0, 30*time.Second, 100)
	got := Identify(append(a, b...), DefaultIdentifyParams())
	if got[a[0].QueryID] == got[b[0].QueryID] {
		t.Fatal("different users merged into one job")
	}
}

func TestIdentifySplitsOnKernel(t *testing.T) {
	a := mkTrace(1, 7, field.KernelLag4, 0, 3, 0, 30*time.Second, 1)
	b := mkTrace(2, 7, field.KernelLag8, 0, 3, 15*time.Second, 30*time.Second, 100)
	got := Identify(append(a, b...), DefaultIdentifyParams())
	if got[a[0].QueryID] == got[b[0].QueryID] {
		t.Fatal("different operations merged into one job")
	}
}

func TestIdentifySplitsOnStepJump(t *testing.T) {
	a := mkTrace(1, 7, field.KernelLag4, 0, 3, 0, 30*time.Second, 1)
	// Same user/kernel, small time gap, but a jump of 100 time steps.
	b := mkTrace(2, 7, field.KernelLag4, 200, 3, 2*time.Minute, 30*time.Second, 100)
	got := Identify(append(a, b...), DefaultIdentifyParams())
	if got[a[0].QueryID] == got[b[0].QueryID] {
		t.Fatal("large step jump merged into one job")
	}
}

func TestIdentifyInterleavedUsers(t *testing.T) {
	// Two users' jobs interleaved in time must stay separate and intact.
	a := mkTrace(1, 1, field.KernelLag4, 0, 5, 0, time.Minute, 1)
	b := mkTrace(2, 2, field.KernelLag4, 10, 5, 30*time.Second, time.Minute, 100)
	got := Identify(append(a, b...), DefaultIdentifyParams())
	for _, r := range a[1:] {
		if got[r.QueryID] != got[a[0].QueryID] {
			t.Fatal("user 1 job fractured")
		}
	}
	for _, r := range b[1:] {
		if got[r.QueryID] != got[b[0].QueryID] {
			t.Fatal("user 2 job fractured")
		}
	}
	if got[a[0].QueryID] == got[b[0].QueryID] {
		t.Fatal("interleaved users merged")
	}
}

func TestIdentifyEmptyInput(t *testing.T) {
	if got := Identify(nil, DefaultIdentifyParams()); len(got) != 0 {
		t.Fatal("empty trace produced assignments")
	}
}

func TestAccuracyPerfect(t *testing.T) {
	recs := append(
		mkTrace(1, 1, field.KernelLag4, 0, 4, 0, time.Minute, 1),
		mkTrace(2, 1, field.KernelLag4, 0, 4, 3*time.Hour, time.Minute, 100)...,
	)
	got := Identify(recs, DefaultIdentifyParams())
	if acc := Accuracy(recs, got); acc != 1 {
		t.Fatalf("accuracy = %g, want 1 on well-separated jobs", acc)
	}
}

func TestAccuracyDegradedAssignment(t *testing.T) {
	recs := append(
		mkTrace(1, 1, field.KernelLag4, 0, 4, 0, time.Minute, 1),
		mkTrace(2, 1, field.KernelLag4, 0, 4, 3*time.Hour, time.Minute, 100)...,
	)
	// Deliberately merge everything into one label.
	bad := make(map[query.ID]int64)
	for _, r := range recs {
		bad[r.QueryID] = 1
	}
	if acc := Accuracy(recs, bad); acc >= 1 {
		t.Fatalf("merged assignment scored %g, want < 1", acc)
	}
}

func TestAccuracyEmptyTotal(t *testing.T) {
	if Accuracy(nil, nil) != 1 {
		t.Fatal("vacuous accuracy should be 1")
	}
}

// The paper's §IV.A claims the heuristics are "highly accurate in
// practice". Reproduce that on a messy synthetic log: many users, varied
// think times (within gap), interleaved jobs, back-to-back sessions.
func TestIdentifyAccuracyOnRealisticMix(t *testing.T) {
	var recs []TraceRecord
	var qid query.ID = 1
	var jid int64 = 1
	base := time.Duration(0)
	for u := 0; u < 20; u++ {
		t0 := base
		for s := 0; s < 3; s++ { // three sessions per user, separated well
			n := 3 + (u+s)%8
			recs = append(recs, mkTrace(jid, u, field.Kernel((u+s)%3+1), (u*7+s*11)%100, n, t0, 45*time.Second, qid)...)
			qid += query.ID(n)
			jid++
			t0 += time.Duration(n)*45*time.Second + 30*time.Minute
		}
		base += 90 * time.Second
	}
	got := Identify(recs, DefaultIdentifyParams())
	if acc := Accuracy(recs, got); acc < 0.95 {
		t.Fatalf("identification accuracy %.3f below the 'highly accurate' bar", acc)
	}
}

func BenchmarkIdentify10k(b *testing.B) {
	var recs []TraceRecord
	var qid query.ID = 1
	for u := 0; u < 50; u++ {
		for s := 0; s < 4; s++ {
			recs = append(recs, mkTrace(int64(u*10+s), u, field.KernelLag4, s*10, 50,
				time.Duration(s)*time.Hour, 30*time.Second, qid)...)
			qid += 50
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Identify(recs, DefaultIdentifyParams())
	}
}
