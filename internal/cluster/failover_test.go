package cluster

import (
	"strings"
	"testing"

	"jaws/internal/cache"
	"jaws/internal/fault"
	"jaws/internal/field"
	"jaws/internal/geom"
	"jaws/internal/job"
	"jaws/internal/morton"
	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/store"
)

// nodeCenters returns positions at the centers of every atom owned by node
// under cfg's partitioning, in Morton order.
func nodeCenters(t *testing.T, cfg Config, node int) []geom.Position {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	space := cfg.Store.Space
	atomLen := float64(space.AtomSide) * space.VoxelSize()
	side := space.GridSide / space.AtomSide
	var pts []geom.Position
	for code := 0; code < space.AtomsPerStep(); code++ {
		if c.Partitioner().NodeOf(store.AtomID{Step: 0, Code: morton.Code(code)}) != node {
			continue
		}
		x, y, z := morton.Code(code).Decode()
		if int(x) >= side || int(y) >= side || int(z) >= side {
			continue
		}
		pts = append(pts, geom.Position{
			X: (float64(x) + 0.5) * atomLen,
			Y: (float64(y) + 0.5) * atomLen,
			Z: (float64(z) + 0.5) * atomLen,
		})
	}
	if len(pts) == 0 {
		t.Fatalf("no atoms owned by node %d", node)
	}
	return pts
}

// heavyJob builds a job whose queries sweep all of node's atoms several
// times — enough virtual disk time to outlive any crash schedule in these
// tests (each full sweep costs at least 16 misses × 40ms = 640ms).
func heavyJob(t *testing.T, cfg Config, id int64, node int) *job.Job {
	t.Helper()
	pts := nodeCenters(t, cfg, node)
	j := &job.Job{ID: id, User: 1, Type: job.Batched, ThinkTime: 0}
	for i := 0; i < 4; i++ {
		j.Queries = append(j.Queries, &query.Query{
			ID: query.ID(id*100 + int64(i)), JobID: id, Seq: i, Step: 0,
			Points: pts, Kernel: field.KernelNone, Arrival: 0,
		})
	}
	return j
}

func mustSpec(t *testing.T, s string) fault.Spec {
	t.Helper()
	spec, err := fault.ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestRunPartialReportOnCrash(t *testing.T) {
	// Node 0 crashes with no replica to fail over to: Run must return a
	// joined error naming the node AND a partial report carrying node 1's
	// completed work — with the crashed run's spans and metrics discarded.
	cfg := testConfig(2)
	cfg.Observe = true
	cfg.FaultSpec = mustSpec(t, "crash@0:at=50ms")
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*job.Job{
		heavyJob(t, cfg, 1, 0),
		mkClusterJob(2, nodeCenters(t, cfg, 1)[:1], job.Batched),
	}
	rep, err := c.Run(jobs)
	if err == nil {
		t.Fatal("crashed node with replicas=1 did not surface an error")
	}
	if !strings.Contains(err.Error(), "cluster node 0") || !strings.Contains(err.Error(), "no surviving replica") {
		t.Errorf("error does not attribute the crash: %v", err)
	}
	if !strings.Contains(err.Error(), "crashed") {
		t.Errorf("crash cause not surfaced: %v", err)
	}
	if rep == nil {
		t.Fatal("no partial report alongside the error")
	}
	if len(rep.PerNode) != 1 || rep.PerNode[0].Node != 1 {
		t.Fatalf("partial report should hold exactly node 1's run: %+v", rep.PerNode)
	}
	if rep.Completed != 1 {
		t.Errorf("Completed = %d, want only node 1's query", rep.Completed)
	}
	if len(rep.FailedNodes) != 1 || rep.FailedNodes[0] != 0 {
		t.Errorf("FailedNodes = %v, want [0]", rep.FailedNodes)
	}
	if rep.Failovers != 0 {
		t.Errorf("Failovers = %d with replicas=1", rep.Failovers)
	}
	// Exactly-once span accounting: only the kept run's spans remain.
	want := 0
	for _, nr := range rep.PerNode {
		want += nr.Report.Completed
	}
	if got := rep.Spans.Count(); got != want {
		t.Errorf("Spans.Count() = %d, want %d (crashed run's spans must be discarded)", got, want)
	}
	if got := rep.Metrics.Counter("jaws_node_crashes_total").Value(); got != 1 {
		t.Errorf("jaws_node_crashes_total = %d, want 1", got)
	}
	if got := rep.Metrics.Counter("jaws_failovers_total").Value(); got != 0 {
		t.Errorf("jaws_failovers_total = %d, want 0", got)
	}
}

func TestRunFailoverReplicaServes(t *testing.T) {
	// With replicas=2 the dead node's jobs rerun on node 1 and the cluster
	// completes everything: no error, one failover, exactly-once spans.
	cfg := testConfig(2)
	cfg.Observe = true
	cfg.Replicas = 2
	cfg.FaultSpec = mustSpec(t, "crash@0:at=50ms")
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*job.Job{
		heavyJob(t, cfg, 1, 0),
		mkClusterJob(2, nodeCenters(t, cfg, 1)[:1], job.Batched),
	}
	rep, err := c.Run(jobs)
	if err != nil {
		t.Fatalf("failover did not absorb the crash: %v", err)
	}
	if rep.Failovers != 1 || len(rep.FailedNodes) != 0 {
		t.Fatalf("Failovers = %d, FailedNodes = %v", rep.Failovers, rep.FailedNodes)
	}
	// The rerun appears as node 1 hosting node 0's partition.
	var hosted bool
	for _, nr := range rep.PerNode {
		if nr.Node == 1 && nr.For == 0 {
			hosted = true
		}
	}
	if !hosted {
		t.Fatalf("no PerNode entry for the failover rerun: %+v", rep.PerNode)
	}
	if rep.Completed != 5 { // 4 heavy queries + 1 tiny
		t.Errorf("Completed = %d, want 5", rep.Completed)
	}
	want := 0
	for _, nr := range rep.PerNode {
		want += nr.Report.Completed
	}
	if got := rep.Spans.Count(); got != want {
		t.Errorf("Spans.Count() = %d, want %d", got, want)
	}
	if got := rep.Metrics.Counter("jaws_failovers_total").Value(); got != 1 {
		t.Errorf("jaws_failovers_total = %d, want 1", got)
	}
}

func TestRunCascadeFailover(t *testing.T) {
	// Node 0 crashes immediately. Its first replica (node 1) survives its
	// own tiny run but its crash schedule kills the much longer rerun of
	// node 0's jobs, so the partition cascades to node 2, which serves it.
	cfg := testConfig(4)
	cfg.Observe = true
	cfg.Replicas = 3
	cfg.FaultSpec = mustSpec(t, "crash@0:at=50ms;crash@1:at=500ms")
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*job.Job{
		heavyJob(t, cfg, 1, 0), // ≥ 16 atoms × 40ms per sweep ≫ 500ms
		mkClusterJob(2, nodeCenters(t, cfg, 1)[:1], job.Batched), // ~40ms ≪ 500ms
	}
	rep, err := c.Run(jobs)
	if err != nil {
		t.Fatalf("cascade failover did not recover: %v", err)
	}
	if rep.Failovers != 1 || len(rep.FailedNodes) != 0 {
		t.Fatalf("Failovers = %d, FailedNodes = %v", rep.Failovers, rep.FailedNodes)
	}
	var host = -1
	for _, nr := range rep.PerNode {
		if nr.For == 0 {
			host = nr.Node
		}
	}
	if host != 2 {
		t.Fatalf("node 0's partition served by node %d, want cascade to 2", host)
	}
	// Two hosts died along the way: node 0 itself and node 1 mid-rerun.
	if got := rep.Metrics.Counter("jaws_node_crashes_total").Value(); got != 2 {
		t.Errorf("jaws_node_crashes_total = %d, want 2 (origin + cascade)", got)
	}
	// Node 1's own completed run is still kept (it died as a host, not on
	// its own schedule), so its query counts.
	if rep.Completed != 5 {
		t.Errorf("Completed = %d, want 5", rep.Completed)
	}
}

func TestRunAllReplicasDead(t *testing.T) {
	// Every replica in the chain crashes: the partition ends unserved and
	// the joined error names the dead node.
	cfg := testConfig(2)
	cfg.Replicas = 2
	cfg.FaultSpec = mustSpec(t, "crash@0:at=50ms;crash@1:at=50ms")
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*job.Job{
		heavyJob(t, cfg, 1, 0),
		heavyJob(t, cfg, 2, 1),
	}
	rep, err := c.Run(jobs)
	if err == nil {
		t.Fatal("total cluster loss reported success")
	}
	for _, want := range []string{"cluster node 0", "cluster node 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
	if rep == nil || len(rep.PerNode) != 0 || rep.Completed != 0 {
		t.Fatalf("expected an empty partial report, got %+v", rep)
	}
	if len(rep.FailedNodes) != 2 {
		t.Errorf("FailedNodes = %v, want both", rep.FailedNodes)
	}
}

func TestRunJoinsNonCrashErrors(t *testing.T) {
	// A node failure that is not a crash (here: a scheduler factory that
	// returns nil, failing engine construction) is joined per node and
	// never triggers failover — only fault.NodeCrashError does.
	cfg := testConfig(2)
	cfg.Replicas = 2
	cfg.NewSched = func(c *cache.Cache) sched.Scheduler { return nil }
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*job.Job{
		mkClusterJob(1, nodeCenters(t, cfg, 0)[:1], job.Batched),
		mkClusterJob(2, nodeCenters(t, cfg, 1)[:1], job.Batched),
	}
	rep, err := c.Run(jobs)
	if err == nil {
		t.Fatal("nil scheduler accepted")
	}
	for _, want := range []string{"cluster node 0", "cluster node 1", "scheduler"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
	if rep == nil || len(rep.PerNode) != 0 || rep.Failovers != 0 || len(rep.FailedNodes) != 0 {
		t.Fatalf("non-crash failure misreported: %+v", rep)
	}
}

func TestRunStoreOpenFailureJoined(t *testing.T) {
	// An invalid store (zero steps passes New's space validation but fails
	// store.Open inside runNode) is reported per node via errors.Join.
	cfg := testConfig(2)
	cfg.Store.Steps = 0
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run([]*job.Job{mkClusterJob(1, nodeCenters(t, cfg, 0)[:1], job.Batched)})
	if err == nil || !strings.Contains(err.Error(), "cluster node 0") {
		t.Fatalf("store failure not attributed: %v", err)
	}
	if !strings.Contains(err.Error(), "time step") {
		t.Errorf("store cause lost: %v", err)
	}
	if rep == nil || rep.Completed != 0 {
		t.Fatalf("unexpected report %+v", rep)
	}
}

func TestNewRejectsBadReplicasAndSpace(t *testing.T) {
	cfg := testConfig(2)
	cfg.Replicas = 3
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "replicas") {
		t.Errorf("replicas > nodes accepted: %v", err)
	}
	cfg = testConfig(2)
	cfg.Store.Space = geom.Space{GridSide: 100, AtomSide: 32} // not divisible
	if _, err := New(cfg); err == nil {
		t.Error("invalid space accepted")
	}
	cfg = testConfig(2)
	cfg.NewPolicy = nil
	if _, err := New(cfg); err == nil {
		t.Error("missing policy factory accepted")
	}
	// Defaults: CacheAtoms and Replicas fall back rather than fail.
	cfg = testConfig(2)
	cfg.CacheAtoms = 0
	cfg.Replicas = 0
	if _, err := New(cfg); err != nil {
		t.Errorf("defaulting config rejected: %v", err)
	}
}

func TestPartitionerAccessors(t *testing.T) {
	if _, err := NewPartitionerStrategy(0, 64, Striped); err == nil {
		t.Error("zero nodes accepted")
	}
	p, err := NewPartitionerStrategy(4, 64, Striped)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes() != 4 {
		t.Errorf("Nodes() = %d, want 4", p.Nodes())
	}
}
