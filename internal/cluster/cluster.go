// Package cluster models the multi-node Turbulence architecture of
// Fig. 7: data are partitioned spatially across nodes, each node runs its
// own JAWS instance (scheduler + cache + disk array), incoming queries are
// split by the partitioner so every node only touches its own atoms, and
// per-node results are combined.
//
// Simulation scope: each node advances its own virtual clock, and the
// nodes execute concurrently in real goroutines. Ordered jobs are split
// into per-node ordered jobs (sequence preserved within each node), which
// matches the deployment reality that cross-node queries synchronize at
// the mediator, not inside the per-node schedulers.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"jaws/internal/cache"
	"jaws/internal/engine"
	"jaws/internal/fault"
	"jaws/internal/job"
	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/store"
)

// Strategy selects how atoms map to nodes.
type Strategy int

const (
	// Contiguous assigns contiguous Morton ranges, so each node owns a
	// spatially compact region (the shaded regions of Fig. 7). This is
	// the deployment strategy: a job's queries concentrate on one node
	// and per-node batching stays effective.
	Contiguous Strategy = iota
	// Striped round-robins atoms across nodes (ablation): every query
	// scatters over all nodes, which balances raw load but destroys
	// per-node locality.
	Striped
)

// String names the strategy.
func (st Strategy) String() string {
	switch st {
	case Contiguous:
		return "contiguous"
	case Striped:
		return "striped"
	}
	return fmt.Sprintf("Strategy(%d)", int(st))
}

// Partitioner maps atoms to nodes.
type Partitioner struct {
	nodes        int
	atomsPerStep int
	strategy     Strategy
}

// NewPartitioner builds a partitioner for n nodes over a step of
// atomsPerStep atoms, using the Contiguous strategy.
func NewPartitioner(n, atomsPerStep int) (*Partitioner, error) {
	return NewPartitionerStrategy(n, atomsPerStep, Contiguous)
}

// NewPartitionerStrategy builds a partitioner with an explicit strategy.
func NewPartitionerStrategy(n, atomsPerStep int, st Strategy) (*Partitioner, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	if atomsPerStep <= 0 || atomsPerStep%n != 0 {
		return nil, fmt.Errorf("cluster: atoms per step %d not divisible by %d nodes", atomsPerStep, n)
	}
	return &Partitioner{nodes: n, atomsPerStep: atomsPerStep, strategy: st}, nil
}

// NodeOf returns the node owning the atom.
func (p *Partitioner) NodeOf(id store.AtomID) int {
	if p.strategy == Striped {
		return int(id.Code) % p.nodes
	}
	return int(id.Code) * p.nodes / p.atomsPerStep
}

// Nodes returns the node count.
func (p *Partitioner) Nodes() int { return p.nodes }

// Config assembles a cluster.
type Config struct {
	// Nodes is the number of database nodes.
	Nodes int
	// Store configures each node's store (all nodes share the synthetic
	// field seed, so the cluster presents one coherent dataset).
	Store store.Config
	// CacheAtoms is each node's cache capacity in atoms.
	CacheAtoms int
	// NewPolicy builds a fresh replacement policy per node.
	NewPolicy func() cache.Policy
	// NewSched builds a fresh scheduler per node, given that node's cache
	// (for the residency function).
	NewSched func(c *cache.Cache) sched.Scheduler
	// Cost is the shared T_b/T_m model.
	Cost sched.CostModel
	// JobAware enables gated execution on every node.
	JobAware bool
	// RunLength is the adaptation run length per node.
	RunLength int
	// Strategy selects the atom→node mapping; default Contiguous.
	Strategy Strategy
	// Observe gives every node its own metrics registry and merges them
	// into Report.Metrics. Per-node registries (not one shared) keep the
	// nodes' goroutines from contending on the same counters.
	Observe bool
	// Replicas is the data replication factor: each node's partition is
	// also readable on the Replicas-1 nodes that follow it (mod Nodes),
	// and the mediator reruns a crashed node's jobs on the first live
	// replica. 0 or 1 disables failover.
	Replicas int
	// FaultSpec schedules deterministic fault injection on every node
	// (see internal/fault); the empty spec disables it. Each node derives
	// its own independent injector from FaultSeed and its node index.
	FaultSpec fault.Spec
	// FaultSeed seeds the fault injectors when FaultSpec is non-empty.
	FaultSeed int64
}

// NodeReport pairs an executed engine run with the node that hosted it.
type NodeReport struct {
	// Node is the node that executed the run.
	Node int
	// For is the node whose partition the run served. It differs from
	// Node only for failover reruns of a crashed node's jobs.
	For    int
	Report *engine.Report
}

// Report aggregates a cluster run.
type Report struct {
	PerNode []NodeReport
	// Completed counts distinct logical queries completed (a query split
	// across nodes counts once). Queries owned by a node that crashed
	// without a surviving replica are not counted.
	Completed int
	// MaxElapsed is the slowest node's virtual time — the cluster's
	// makespan. A node hosting failover reruns accumulates their elapsed
	// time on top of its own.
	MaxElapsed float64
	// AggregateThroughput is completed / MaxElapsed.
	AggregateThroughput float64
	// Metrics is the cluster-wide metric aggregate (counters summed,
	// histograms pooled across nodes); nil unless Config.Observe.
	// Crashed runs' registries are discarded — only work that counted
	// toward Completed is aggregated — and the mediator adds its own
	// jaws_node_crashes_total / jaws_failovers_total counters.
	Metrics *obs.Registry
	// Spans pools every kept node run's completed query-lifecycle spans
	// (per-node response-time attribution merged at the mediator); nil
	// unless Config.Observe. Crashed runs' spans are discarded with the
	// rest of their report (exactly-once accounting).
	Spans *obs.SpanAgg
	// Failovers counts crashed nodes whose jobs a replica successfully
	// reran; FailedNodes lists nodes whose partitions ended unserved.
	Failovers   int
	FailedNodes []int
}

// Cluster is a set of simulated nodes behind a partitioner.
type Cluster struct {
	cfg  Config
	part *Partitioner
}

// New validates the configuration.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	if cfg.NewSched == nil || cfg.NewPolicy == nil {
		return nil, fmt.Errorf("cluster: NewSched and NewPolicy are required")
	}
	if cfg.CacheAtoms <= 0 {
		cfg.CacheAtoms = 64
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > cfg.Nodes {
		return nil, fmt.Errorf("cluster: %d replicas exceed %d nodes", cfg.Replicas, cfg.Nodes)
	}
	if err := cfg.Store.Space.Validate(); err != nil {
		return nil, err
	}
	part, err := NewPartitionerStrategy(cfg.Nodes, cfg.Store.Space.AtomsPerStep(), cfg.Strategy)
	if err != nil {
		return nil, err
	}
	return &Cluster{cfg: cfg, part: part}, nil
}

// Partitioner exposes the atom→node mapping.
func (c *Cluster) Partitioner() *Partitioner { return c.part }

// SplitJob routes one job's queries across nodes: each query's positions
// are divided by owning node, producing at most one per-node job that
// preserves the original query order. The returned map holds only nodes
// that received work.
func (c *Cluster) SplitJob(j *job.Job) map[int]*job.Job {
	space := c.cfg.Store.Space
	out := make(map[int]*job.Job)
	seqPerNode := make(map[int]int)
	for _, q := range j.Queries {
		perNode := make(map[int][]int) // node -> indices into q.Points
		for i, p := range q.Points {
			id := store.AtomID{Step: q.Step, Code: space.AtomOf(p).Code()}
			n := c.part.NodeOf(id)
			perNode[n] = append(perNode[n], i)
		}
		// Deterministic node order.
		nodes := make([]int, 0, len(perNode))
		for n := range perNode {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		for _, n := range nodes {
			nj, ok := out[n]
			if !ok {
				nj = &job.Job{
					ID:        j.ID,
					User:      j.User,
					Type:      j.Type,
					ThinkTime: j.ThinkTime,
				}
				out[n] = nj
			}
			idx := perNode[n]
			sub := &query.Query{
				ID:      q.ID,
				JobID:   q.JobID,
				Seq:     seqPerNode[n],
				Step:    q.Step,
				Kernel:  q.Kernel,
				User:    q.User,
				Arrival: q.Arrival,
			}
			for _, i := range idx {
				sub.Points = append(sub.Points, q.Points[i])
			}
			nj.Queries = append(nj.Queries, sub)
			seqPerNode[n]++
		}
	}
	return out
}

// split routes every job across nodes. Each call produces fresh per-node
// query copies, so a rerun (failover, or a deterministic replay of the
// whole cluster) never sees arrival times a previous engine run mutated.
func (c *Cluster) split(jobs []*job.Job) map[int][]*job.Job {
	perNode := make(map[int][]*job.Job)
	for _, j := range jobs {
		for n, nj := range c.SplitJob(j) {
			perNode[n] = append(perNode[n], nj)
		}
	}
	return perNode
}

// runNode executes njobs on one node with a fresh store, cache, scheduler
// and — when fault injection is configured — the node's own deterministic
// injector.
func (c *Cluster) runNode(node int, njobs []*job.Job) (*engine.Report, *obs.Obs, error) {
	st, err := store.Open(c.cfg.Store)
	if err != nil {
		return nil, nil, err
	}
	ch := cache.New(c.cfg.CacheAtoms, c.cfg.NewPolicy())
	var o *obs.Obs
	if c.cfg.Observe {
		o = &obs.Obs{Reg: obs.NewRegistry(), Spans: obs.NewSpanAgg()}
	}
	e, err := engine.New(engine.Config{
		Store:     st,
		Cache:     ch,
		Sched:     c.cfg.NewSched(ch),
		Cost:      c.cfg.Cost,
		JobAware:  c.cfg.JobAware,
		RunLength: c.cfg.RunLength,
		Obs:       o,
		Fault:     fault.New(c.cfg.FaultSpec, c.cfg.FaultSeed, node),
	})
	if err != nil {
		return nil, nil, err
	}
	rep, err := e.Run(njobs)
	return rep, o, err
}

// Run splits the jobs, executes every node concurrently, and aggregates.
//
// Node failures do not discard the healthy nodes' work: crashed nodes
// (fault.NodeCrashError) have their full job lists rerun on the first
// surviving replica when Config.Replicas > 1, and any failures that
// remain are joined into the returned error alongside a partial Report
// covering the nodes that did complete. The report is non-nil whenever
// the split itself succeeded, even if every node failed.
func (c *Cluster) Run(jobs []*job.Job) (*Report, error) {
	perNode := c.split(jobs)
	// owners maps each logical query to the nodes holding a piece of it;
	// the query counts as completed only when all of them served.
	owners := make(map[query.ID]map[int]bool)
	for n, njobs := range perNode {
		for _, nj := range njobs {
			for _, q := range nj.Queries {
				if owners[q.ID] == nil {
					owners[q.ID] = make(map[int]bool)
				}
				owners[q.ID][n] = true
			}
		}
	}

	type result struct {
		node int
		rep  *engine.Report
		obs  *obs.Obs
		err  error
	}
	var wg sync.WaitGroup
	results := make(chan result, c.cfg.Nodes)
	for n := 0; n < c.cfg.Nodes; n++ {
		njobs := perNode[n]
		if len(njobs) == 0 {
			continue
		}
		wg.Add(1)
		go func(n int, njobs []*job.Job) {
			defer wg.Done()
			rep, o, err := c.runNode(n, njobs)
			results <- result{node: n, rep: rep, obs: o, err: err}
		}(n, njobs)
	}
	wg.Wait()
	close(results)

	rep := &Report{}
	if c.cfg.Observe {
		rep.Metrics = obs.NewRegistry()
		rep.Spans = obs.NewSpanAgg()
	}
	served := make(map[int]bool)  // partition → fully executed by someone
	crashed := make(map[int]bool) // node → injector killed it (dead host)
	hostElapsed := make(map[int]float64)
	var crashes, toFailover []int
	var errs []error

	keep := func(host, forNode int, r *engine.Report, o *obs.Obs) {
		served[forNode] = true
		rep.PerNode = append(rep.PerNode, NodeReport{Node: host, For: forNode, Report: r})
		hostElapsed[host] += r.Elapsed.Seconds()
		if rep.Metrics != nil {
			rep.Metrics.Merge(o.Registry())
		}
		rep.Spans.Merge(o.SpanAggregator())
	}

	for r := range results {
		var crash *fault.NodeCrashError
		switch {
		case r.err == nil:
			keep(r.node, r.node, r.rep, r.obs)
		case errors.As(r.err, &crash):
			// The run died mid-flight: discard its partial report and
			// registry entirely (exactly-once accounting) and line the
			// partition up for failover.
			crashed[r.node] = true
			crashes = append(crashes, r.node)
			toFailover = append(toFailover, r.node)
		default:
			errs = append(errs, fmt.Errorf("cluster node %d: %w", r.node, r.err))
		}
	}

	// Failover: rerun each dead node's full job list on its first live
	// replica, cascading down the replica chain if a rerun crashes too.
	// Reruns are sequential in node order so replays are deterministic.
	sort.Ints(toFailover)
	for _, dead := range toFailover {
		var lastErr error
		for k := 1; k < c.cfg.Replicas && !served[dead]; k++ {
			host := (dead + k) % c.cfg.Nodes
			if crashed[host] {
				continue
			}
			// Fresh split: the crashed run mutated its copies' arrivals.
			njobs := c.split(jobs)[dead]
			frep, fobs, err := c.runNode(host, njobs)
			var crash *fault.NodeCrashError
			switch {
			case err == nil:
				keep(host, dead, frep, fobs)
				rep.Failovers++
			case errors.As(err, &crash):
				// The replica's own schedule killed this rerun; the host
				// is dead for everyone from here on.
				crashed[host] = true
				crashes = append(crashes, host)
				lastErr = err
			default:
				lastErr = err
			}
		}
		if !served[dead] {
			rep.FailedNodes = append(rep.FailedNodes, dead)
			if lastErr == nil {
				lastErr = fmt.Errorf("node crashed (replicas=%d)", c.cfg.Replicas)
			}
			errs = append(errs, fmt.Errorf("cluster node %d: no surviving replica: %w", dead, lastErr))
		}
	}

	for _, own := range owners {
		all := true
		for n := range own {
			if !served[n] {
				all = false
				break
			}
		}
		if all {
			rep.Completed++
		}
	}
	for _, e := range hostElapsed {
		if e > rep.MaxElapsed {
			rep.MaxElapsed = e
		}
	}
	if rep.Metrics != nil {
		// Crashed runs' registries were discarded, so the mediator
		// re-records the crashes (and the recoveries) itself.
		rep.Metrics.Counter("jaws_node_crashes_total").Add(int64(len(crashes)))
		rep.Metrics.Counter("jaws_failovers_total").Add(int64(rep.Failovers))
	}
	sort.Slice(rep.PerNode, func(i, j int) bool {
		if rep.PerNode[i].Node != rep.PerNode[j].Node {
			return rep.PerNode[i].Node < rep.PerNode[j].Node
		}
		return rep.PerNode[i].For < rep.PerNode[j].For
	})
	if rep.MaxElapsed > 0 {
		rep.AggregateThroughput = float64(rep.Completed) / rep.MaxElapsed
	}
	return rep, errors.Join(errs...)
}
