// Package cluster models the multi-node Turbulence architecture of
// Fig. 7: data are partitioned spatially across nodes, each node runs its
// own JAWS instance (scheduler + cache + disk array), incoming queries are
// split by the partitioner so every node only touches its own atoms, and
// per-node results are combined.
//
// Simulation scope: each node advances its own virtual clock, and the
// nodes execute concurrently in real goroutines. Ordered jobs are split
// into per-node ordered jobs (sequence preserved within each node), which
// matches the deployment reality that cross-node queries synchronize at
// the mediator, not inside the per-node schedulers.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"jaws/internal/cache"
	"jaws/internal/engine"
	"jaws/internal/job"
	"jaws/internal/obs"
	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/store"
)

// Strategy selects how atoms map to nodes.
type Strategy int

const (
	// Contiguous assigns contiguous Morton ranges, so each node owns a
	// spatially compact region (the shaded regions of Fig. 7). This is
	// the deployment strategy: a job's queries concentrate on one node
	// and per-node batching stays effective.
	Contiguous Strategy = iota
	// Striped round-robins atoms across nodes (ablation): every query
	// scatters over all nodes, which balances raw load but destroys
	// per-node locality.
	Striped
)

// String names the strategy.
func (st Strategy) String() string {
	switch st {
	case Contiguous:
		return "contiguous"
	case Striped:
		return "striped"
	}
	return fmt.Sprintf("Strategy(%d)", int(st))
}

// Partitioner maps atoms to nodes.
type Partitioner struct {
	nodes        int
	atomsPerStep int
	strategy     Strategy
}

// NewPartitioner builds a partitioner for n nodes over a step of
// atomsPerStep atoms, using the Contiguous strategy.
func NewPartitioner(n, atomsPerStep int) (*Partitioner, error) {
	return NewPartitionerStrategy(n, atomsPerStep, Contiguous)
}

// NewPartitionerStrategy builds a partitioner with an explicit strategy.
func NewPartitionerStrategy(n, atomsPerStep int, st Strategy) (*Partitioner, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	if atomsPerStep <= 0 || atomsPerStep%n != 0 {
		return nil, fmt.Errorf("cluster: atoms per step %d not divisible by %d nodes", atomsPerStep, n)
	}
	return &Partitioner{nodes: n, atomsPerStep: atomsPerStep, strategy: st}, nil
}

// NodeOf returns the node owning the atom.
func (p *Partitioner) NodeOf(id store.AtomID) int {
	if p.strategy == Striped {
		return int(id.Code) % p.nodes
	}
	return int(id.Code) * p.nodes / p.atomsPerStep
}

// Nodes returns the node count.
func (p *Partitioner) Nodes() int { return p.nodes }

// Config assembles a cluster.
type Config struct {
	// Nodes is the number of database nodes.
	Nodes int
	// Store configures each node's store (all nodes share the synthetic
	// field seed, so the cluster presents one coherent dataset).
	Store store.Config
	// CacheAtoms is each node's cache capacity in atoms.
	CacheAtoms int
	// NewPolicy builds a fresh replacement policy per node.
	NewPolicy func() cache.Policy
	// NewSched builds a fresh scheduler per node, given that node's cache
	// (for the residency function).
	NewSched func(c *cache.Cache) sched.Scheduler
	// Cost is the shared T_b/T_m model.
	Cost sched.CostModel
	// JobAware enables gated execution on every node.
	JobAware bool
	// RunLength is the adaptation run length per node.
	RunLength int
	// Strategy selects the atom→node mapping; default Contiguous.
	Strategy Strategy
	// Observe gives every node its own metrics registry and merges them
	// into Report.Metrics. Per-node registries (not one shared) keep the
	// nodes' goroutines from contending on the same counters.
	Observe bool
}

// NodeReport pairs a node index with its engine report.
type NodeReport struct {
	Node   int
	Report *engine.Report
}

// Report aggregates a cluster run.
type Report struct {
	PerNode []NodeReport
	// Completed counts distinct logical queries completed (a query split
	// across nodes counts once).
	Completed int
	// MaxElapsed is the slowest node's virtual time — the cluster's
	// makespan.
	MaxElapsed float64
	// AggregateThroughput is completed / MaxElapsed.
	AggregateThroughput float64
	// Metrics is the cluster-wide metric aggregate (counters summed,
	// histograms pooled across nodes); nil unless Config.Observe.
	Metrics *obs.Registry
}

// Cluster is a set of simulated nodes behind a partitioner.
type Cluster struct {
	cfg  Config
	part *Partitioner
}

// New validates the configuration.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	if cfg.NewSched == nil || cfg.NewPolicy == nil {
		return nil, fmt.Errorf("cluster: NewSched and NewPolicy are required")
	}
	if cfg.CacheAtoms <= 0 {
		cfg.CacheAtoms = 64
	}
	if err := cfg.Store.Space.Validate(); err != nil {
		return nil, err
	}
	part, err := NewPartitionerStrategy(cfg.Nodes, cfg.Store.Space.AtomsPerStep(), cfg.Strategy)
	if err != nil {
		return nil, err
	}
	return &Cluster{cfg: cfg, part: part}, nil
}

// Partitioner exposes the atom→node mapping.
func (c *Cluster) Partitioner() *Partitioner { return c.part }

// SplitJob routes one job's queries across nodes: each query's positions
// are divided by owning node, producing at most one per-node job that
// preserves the original query order. The returned map holds only nodes
// that received work.
func (c *Cluster) SplitJob(j *job.Job) map[int]*job.Job {
	space := c.cfg.Store.Space
	out := make(map[int]*job.Job)
	seqPerNode := make(map[int]int)
	for _, q := range j.Queries {
		perNode := make(map[int][]int) // node -> indices into q.Points
		for i, p := range q.Points {
			id := store.AtomID{Step: q.Step, Code: space.AtomOf(p).Code()}
			n := c.part.NodeOf(id)
			perNode[n] = append(perNode[n], i)
		}
		// Deterministic node order.
		nodes := make([]int, 0, len(perNode))
		for n := range perNode {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		for _, n := range nodes {
			nj, ok := out[n]
			if !ok {
				nj = &job.Job{
					ID:        j.ID,
					User:      j.User,
					Type:      j.Type,
					ThinkTime: j.ThinkTime,
				}
				out[n] = nj
			}
			idx := perNode[n]
			sub := &query.Query{
				ID:      q.ID,
				JobID:   q.JobID,
				Seq:     seqPerNode[n],
				Step:    q.Step,
				Kernel:  q.Kernel,
				User:    q.User,
				Arrival: q.Arrival,
			}
			for _, i := range idx {
				sub.Points = append(sub.Points, q.Points[i])
			}
			nj.Queries = append(nj.Queries, sub)
			seqPerNode[n]++
		}
	}
	return out
}

// Run splits the jobs, executes every node concurrently, and aggregates.
func (c *Cluster) Run(jobs []*job.Job) (*Report, error) {
	perNode := make(map[int][]*job.Job)
	logical := make(map[query.ID]bool)
	for _, j := range jobs {
		for _, q := range j.Queries {
			logical[q.ID] = true
		}
		for n, nj := range c.SplitJob(j) {
			perNode[n] = append(perNode[n], nj)
		}
	}

	type result struct {
		node int
		rep  *engine.Report
		reg  *obs.Registry
		err  error
	}
	var wg sync.WaitGroup
	results := make(chan result, c.cfg.Nodes)
	for n := 0; n < c.cfg.Nodes; n++ {
		njobs := perNode[n]
		if len(njobs) == 0 {
			continue
		}
		wg.Add(1)
		go func(n int, njobs []*job.Job) {
			defer wg.Done()
			st, err := store.Open(c.cfg.Store)
			if err != nil {
				results <- result{node: n, err: err}
				return
			}
			ch := cache.New(c.cfg.CacheAtoms, c.cfg.NewPolicy())
			var o *obs.Obs
			var reg *obs.Registry
			if c.cfg.Observe {
				reg = obs.NewRegistry()
				o = &obs.Obs{Reg: reg}
			}
			e, err := engine.New(engine.Config{
				Store:     st,
				Cache:     ch,
				Sched:     c.cfg.NewSched(ch),
				Cost:      c.cfg.Cost,
				JobAware:  c.cfg.JobAware,
				RunLength: c.cfg.RunLength,
				Obs:       o,
			})
			if err != nil {
				results <- result{node: n, err: err}
				return
			}
			rep, err := e.Run(njobs)
			results <- result{node: n, rep: rep, reg: reg, err: err}
		}(n, njobs)
	}
	wg.Wait()
	close(results)

	rep := &Report{Completed: len(logical)}
	if c.cfg.Observe {
		rep.Metrics = obs.NewRegistry()
	}
	for r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("cluster node %d: %w", r.node, r.err)
		}
		rep.PerNode = append(rep.PerNode, NodeReport{Node: r.node, Report: r.rep})
		if s := r.rep.Elapsed.Seconds(); s > rep.MaxElapsed {
			rep.MaxElapsed = s
		}
		if rep.Metrics != nil {
			rep.Metrics.Merge(r.reg)
		}
	}
	sort.Slice(rep.PerNode, func(i, j int) bool { return rep.PerNode[i].Node < rep.PerNode[j].Node })
	if rep.MaxElapsed > 0 {
		rep.AggregateThroughput = float64(rep.Completed) / rep.MaxElapsed
	}
	return rep, nil
}
