package cluster

import (
	"math/rand"
	"testing"

	"jaws/internal/field"
	"jaws/internal/geom"
	"jaws/internal/job"
	"jaws/internal/morton"
	"jaws/internal/query"
	"jaws/internal/store"
)

// TestPartitionerMapsEveryAtomToExactlyOneNode is the partitioning
// property both strategies must satisfy for the cluster to be a correct
// shared-nothing split of the store: NodeOf is total, in range, stable,
// independent of the time step, and the per-node atom sets partition the
// step (disjoint cover — equivalently, 64 atoms get 64 assignments).
func TestPartitionerMapsEveryAtomToExactlyOneNode(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const atoms = 64
	for _, strat := range []Strategy{Contiguous, Striped} {
		for _, nodes := range []int{1, 2, 4, 8, 16} {
			p, err := NewPartitionerStrategy(nodes, atoms, strat)
			if err != nil {
				t.Fatal(err)
			}
			perNode := make([]int, nodes)
			for c := 0; c < atoms; c++ {
				id := store.AtomID{Step: rng.Intn(31), Code: morton.Code(c)}
				n := p.NodeOf(id)
				if n < 0 || n >= nodes {
					t.Fatalf("%v/%d nodes: atom %d mapped to node %d", strat, nodes, c, n)
				}
				// Stability: re-asking, at any step, yields the same owner.
				for trial := 0; trial < 4; trial++ {
					again := p.NodeOf(store.AtomID{Step: rng.Intn(31), Code: morton.Code(c)})
					if again != n {
						t.Fatalf("%v/%d nodes: atom %d owned by both %d and %d", strat, nodes, c, n, again)
					}
				}
				perNode[n]++
			}
			total := 0
			for _, cnt := range perNode {
				total += cnt
			}
			if total != atoms {
				t.Fatalf("%v/%d nodes: %d assignments for %d atoms", strat, nodes, total, atoms)
			}
		}
	}
}

// TestSplitJobPreservesPerNodeQueryOrder is the ordering property the
// failover and gating layers rely on: however a job's queries scatter
// over nodes, each node sees its share in the original submission order,
// renumbered into a dense per-node sequence.
func TestSplitJobPreservesPerNodeQueryOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, strat := range []Strategy{Contiguous, Striped} {
		cfg := testConfig(4)
		cfg.Strategy = strat
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		space := cfg.Store.Space
		domain := float64(space.GridSide) * space.VoxelSize()
		for trial := 0; trial < 20; trial++ {
			j := &job.Job{ID: 9, User: 1, Type: job.Batched}
			nq := 2 + rng.Intn(15)
			for i := 0; i < nq; i++ {
				q := &query.Query{
					ID: query.ID(1000 + i), JobID: 9, Seq: i, Step: rng.Intn(2),
					Kernel: field.KernelNone,
				}
				for p := 0; p < 1+rng.Intn(4); p++ {
					q.Points = append(q.Points, geom.Position{
						X: rng.Float64() * domain,
						Y: rng.Float64() * domain,
						Z: rng.Float64() * domain,
					})
				}
				j.Queries = append(j.Queries, q)
			}
			for n, nj := range c.SplitJob(j) {
				prev := query.ID(-1)
				for i, q := range nj.Queries {
					if q.Seq != i {
						t.Fatalf("%v node %d: query %d has seq %d, want dense renumbering", strat, n, q.ID, q.Seq)
					}
					// Original IDs are assigned in submission order, so
					// order preservation means strictly increasing IDs.
					if q.ID <= prev {
						t.Fatalf("%v node %d: query order not preserved (%d after %d)", strat, n, q.ID, prev)
					}
					prev = q.ID
				}
			}
		}
	}
}
