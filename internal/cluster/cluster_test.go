package cluster

import (
	"testing"
	"time"

	"jaws/internal/cache"
	"jaws/internal/field"
	"jaws/internal/geom"
	"jaws/internal/job"
	"jaws/internal/morton"
	"jaws/internal/query"
	"jaws/internal/sched"
	"jaws/internal/store"
)

var testCost = sched.CostModel{Tb: 40 * time.Millisecond, Tm: 20 * time.Microsecond}

func testConfig(nodes int) Config {
	return Config{
		Nodes: nodes,
		Store: store.Config{
			Space:      geom.Space{GridSide: 128, AtomSide: 32}, // 64 atoms/step
			Steps:      2,
			SampleSide: 4,
			Seed:       3,
		},
		CacheAtoms: 8,
		NewPolicy:  func() cache.Policy { return cache.NewLRU() },
		NewSched: func(c *cache.Cache) sched.Scheduler {
			return sched.NewJAWS(sched.JAWSConfig{Cost: testCost, BatchSize: 4, Resident: c.Contains})
		},
		Cost: testCost,
	}
}

func TestNewValidation(t *testing.T) {
	cfg := testConfig(4)
	cfg.Nodes = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero nodes accepted")
	}
	cfg = testConfig(4)
	cfg.NewSched = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("missing scheduler factory accepted")
	}
	cfg = testConfig(3) // 64 atoms not divisible by 3
	if _, err := New(cfg); err == nil {
		t.Fatal("indivisible partition accepted")
	}
}

func TestPartitionerContiguousAndBalanced(t *testing.T) {
	p, err := NewPartitioner(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	prev := 0
	for c := 0; c < 64; c++ {
		n := p.NodeOf(store.AtomID{Step: 0, Code: morton.Code(c)})
		if n < 0 || n >= 4 {
			t.Fatalf("atom %d mapped to node %d", c, n)
		}
		if n < prev {
			t.Fatal("partition not contiguous in Morton order")
		}
		prev = n
		counts[n]++
	}
	for n, c := range counts {
		if c != 16 {
			t.Fatalf("node %d owns %d atoms, want 16", n, c)
		}
	}
	// Step must not affect ownership (partitioning is spatial).
	a := p.NodeOf(store.AtomID{Step: 0, Code: 5})
	b := p.NodeOf(store.AtomID{Step: 9, Code: 5})
	if a != b {
		t.Fatal("partition varies with time step")
	}
}

func mkClusterJob(id int64, pts []geom.Position, typ job.Type) *job.Job {
	j := &job.Job{ID: id, User: 1, Type: typ, ThinkTime: time.Millisecond}
	j.Queries = []*query.Query{{
		ID: query.ID(id), JobID: id, Seq: 0, Step: 0,
		Points: pts, Kernel: field.KernelNone, Arrival: 0,
	}}
	return j
}

func TestSplitJobRoutesByPartition(t *testing.T) {
	c, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	space := testConfig(4).Store.Space
	// One point in the very first atom (node 0), one in the last (node 3).
	atomLen := float64(space.AtomSide) * space.VoxelSize()
	pts := []geom.Position{
		{X: 0.5 * atomLen, Y: 0.5 * atomLen, Z: 0.5 * atomLen},
		{X: 3.5 * atomLen, Y: 3.5 * atomLen, Z: 3.5 * atomLen},
	}
	split := c.SplitJob(mkClusterJob(1, pts, job.Batched))
	if len(split) != 2 {
		t.Fatalf("split across %d nodes, want 2", len(split))
	}
	total := 0
	for n, nj := range split {
		for _, q := range nj.Queries {
			total += len(q.Points)
			for _, p := range q.Points {
				id := store.AtomID{Step: 0, Code: space.AtomOf(p).Code()}
				if c.Partitioner().NodeOf(id) != n {
					t.Fatalf("point routed to wrong node %d", n)
				}
			}
		}
	}
	if total != 2 {
		t.Fatalf("split lost points: %d", total)
	}
}

func TestSplitJobPreservesOrderedSequence(t *testing.T) {
	c, _ := New(testConfig(2))
	space := testConfig(2).Store.Space
	atomLen := float64(space.AtomSide) * space.VoxelSize()
	j := &job.Job{ID: 5, User: 1, Type: job.Ordered, ThinkTime: time.Millisecond}
	for i := 0; i < 3; i++ {
		j.Queries = append(j.Queries, &query.Query{
			ID: query.ID(100 + i), JobID: 5, Seq: i, Step: 0,
			Points: []geom.Position{{X: 0.5 * atomLen, Y: 0.5 * atomLen, Z: 0.5 * atomLen}},
			Kernel: field.KernelNone,
		})
	}
	j.Queries[0].Arrival = 0
	split := c.SplitJob(j)
	if len(split) != 1 {
		t.Fatalf("single-region ordered job split across %d nodes", len(split))
	}
	for _, nj := range split {
		if err := nj.Validate(); err != nil {
			t.Fatalf("split job invalid: %v", err)
		}
		for i, q := range nj.Queries {
			if q.Seq != i {
				t.Fatal("per-node sequence not renumbered")
			}
		}
	}
}

func TestRunAggregates(t *testing.T) {
	c, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	space := testConfig(4).Store.Space
	atomLen := float64(space.AtomSide) * space.VoxelSize()
	var jobs []*job.Job
	for id := int64(1); id <= 8; id++ {
		x := float64(id%4) + 0.5
		pts := []geom.Position{
			{X: x * atomLen, Y: 0.5 * atomLen, Z: 0.5 * atomLen},
			{X: x * atomLen, Y: 1.5 * atomLen, Z: 2.5 * atomLen},
		}
		jobs = append(jobs, mkClusterJob(id, pts, job.Batched))
	}
	rep, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 8 {
		t.Fatalf("Completed = %d, want 8 logical queries", rep.Completed)
	}
	if len(rep.PerNode) == 0 || rep.MaxElapsed <= 0 || rep.AggregateThroughput <= 0 {
		t.Fatalf("bad aggregate report: %+v", rep)
	}
	// Per-node reports sorted by node.
	for i := 1; i < len(rep.PerNode); i++ {
		if rep.PerNode[i-1].Node >= rep.PerNode[i].Node {
			t.Fatal("per-node reports unsorted")
		}
	}
}

func TestRunSingleNodeEqualsEngine(t *testing.T) {
	// A 1-node cluster must behave like a plain engine run.
	c, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	space := testConfig(1).Store.Space
	atomLen := float64(space.AtomSide) * space.VoxelSize()
	jobs := []*job.Job{mkClusterJob(1, []geom.Position{
		{X: 0.5 * atomLen, Y: 0.5 * atomLen, Z: 0.5 * atomLen},
	}, job.Batched)}
	rep, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerNode) != 1 || rep.PerNode[0].Report.Completed != 1 {
		t.Fatalf("unexpected report %+v", rep)
	}
}

func TestRunParallelismMatchesSequential(t *testing.T) {
	// Cluster results are deterministic despite concurrent node execution.
	run := func() *Report {
		c, err := New(testConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		space := testConfig(4).Store.Space
		atomLen := float64(space.AtomSide) * space.VoxelSize()
		var jobs []*job.Job
		for id := int64(1); id <= 12; id++ {
			x := float64(id%4) + 0.2
			jobs = append(jobs, mkClusterJob(id, []geom.Position{
				{X: x * atomLen, Y: float64(id%3) * atomLen, Z: 0.5 * atomLen},
			}, job.Batched))
		}
		rep, err := c.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.MaxElapsed != b.MaxElapsed || a.AggregateThroughput != b.AggregateThroughput {
		t.Fatalf("cluster runs not deterministic: %+v vs %+v", a, b)
	}
}

func TestStripedStrategy(t *testing.T) {
	p, err := NewPartitionerStrategy(4, 64, Striped)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for c := 0; c < 64; c++ {
		counts[p.NodeOf(store.AtomID{Step: 0, Code: morton.Code(c)})]++
	}
	for n, c := range counts {
		if c != 16 {
			t.Fatalf("striped node %d owns %d atoms, want 16", n, c)
		}
	}
	// Adjacent Morton codes land on different nodes (no locality).
	a := p.NodeOf(store.AtomID{Step: 0, Code: 0})
	b := p.NodeOf(store.AtomID{Step: 0, Code: 1})
	if a == b {
		t.Fatal("striped partitioner kept adjacent atoms together")
	}
	if Contiguous.String() == "" || Striped.String() == "" || Strategy(9).String() == "" {
		t.Fatal("empty strategy name")
	}
}

func TestContiguousBeatsStripedOnLocality(t *testing.T) {
	// A compact job (all points in one octant) should touch a single node
	// under the contiguous partition but scatter under striping.
	mk := func(st Strategy) int {
		cfg := testConfig(4)
		cfg.Strategy = st
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		space := cfg.Store.Space
		atomLen := float64(space.AtomSide) * space.VoxelSize()
		var pts []geom.Position
		for i := 0; i < 8; i++ {
			pts = append(pts, geom.Position{
				X: (0.1 + 0.2*float64(i%2)) * atomLen,
				Y: (0.1 + 0.2*float64(i/2%2)) * atomLen,
				Z: (0.1 + 0.3*float64(i/4)) * atomLen,
			})
		}
		// Spread the points across the octant's 8 atoms.
		for i := range pts {
			pts[i].X += float64(i%2) * atomLen
			pts[i].Y += float64(i/2%2) * atomLen
			pts[i].Z += float64(i/4%2) * atomLen
		}
		split := c.SplitJob(mkClusterJob(1, pts, job.Batched))
		return len(split)
	}
	contiguous := mk(Contiguous)
	striped := mk(Striped)
	if contiguous != 1 {
		t.Fatalf("octant job split across %d nodes under contiguous partitioning, want 1", contiguous)
	}
	if striped <= contiguous {
		t.Fatalf("striping did not scatter the job: %d nodes", striped)
	}
}
