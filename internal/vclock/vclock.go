// Package vclock provides a virtual clock and a future-event list for
// deterministic discrete-event simulation.
//
// All JAWS experiments run against a virtual clock rather than wall time so
// that throughput and response-time measurements are reproducible and so
// that a simulated 800 GB database can be exercised in milliseconds of real
// time. The clock only moves forward; components charge costs to it by
// calling Advance and schedule future work (query arrivals, gated releases)
// through the EventList.
package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock is a monotonically advancing virtual clock. The zero value is a
// clock at virtual time zero, ready to use.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// Now returns the current virtual time as an offset from the simulation
// start.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
// Advancing by a negative duration is a programming error and panics:
// virtual time, like real time, never rewinds.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic(fmt.Sprintf("vclock: cannot advance by negative duration %v", d))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// AdvanceTo moves the clock forward to t. If t is in the past the clock is
// left unchanged; simulation components use this to fast-forward to the
// next arrival when the system is idle.
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset rewinds the clock to zero. Only tests and back-to-back experiment
// runs should call this.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}

// Event is an entry in the future-event list: an opaque payload that
// becomes runnable at a virtual time.
type Event struct {
	At      time.Duration
	Payload any

	seq int // tie-break so equal-time events pop in push order
}

// EventList is a min-heap of future events ordered by virtual time.
// It is not safe for concurrent use; the simulation loop owns it.
type EventList struct {
	h   eventHeap
	seq int
}

// Push schedules payload to become runnable at virtual time at.
func (l *EventList) Push(at time.Duration, payload any) {
	l.seq++
	heap.Push(&l.h, &Event{At: at, Payload: payload, seq: l.seq})
}

// Pop removes and returns the earliest event. It returns nil when empty.
func (l *EventList) Pop() *Event {
	if len(l.h) == 0 {
		return nil
	}
	return heap.Pop(&l.h).(*Event)
}

// Peek returns the earliest event without removing it, or nil when empty.
func (l *EventList) Peek() *Event {
	if len(l.h) == 0 {
		return nil
	}
	return l.h[0]
}

// Len reports the number of pending events.
func (l *EventList) Len() int { return len(l.h) }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
