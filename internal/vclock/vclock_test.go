package vclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	if got := c.Advance(5 * time.Second); got != 5*time.Second {
		t.Fatalf("Advance returned %v, want 5s", got)
	}
	c.Advance(time.Millisecond)
	if got := c.Now(); got != 5*time.Second+time.Millisecond {
		t.Fatalf("Now() = %v, want 5.001s", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Advance(10 * time.Second)
	if got := c.AdvanceTo(5 * time.Second); got != 10*time.Second {
		t.Fatalf("AdvanceTo(past) = %v, want clock unchanged at 10s", got)
	}
	if got := c.AdvanceTo(20 * time.Second); got != 20*time.Second {
		t.Fatalf("AdvanceTo(future) = %v, want 20s", got)
	}
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(time.Hour)
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Fatalf("after Reset Now() = %v, want 0", got)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	var c Clock
	const workers, perWorker = 8, 1000
	done := make(chan struct{})
	for i := 0; i < workers; i++ {
		go func() {
			for j := 0; j < perWorker; j++ {
				c.Advance(time.Microsecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	want := time.Duration(workers*perWorker) * time.Microsecond
	if got := c.Now(); got != want {
		t.Fatalf("concurrent advances lost updates: Now() = %v, want %v", got, want)
	}
}

func TestEventListOrdering(t *testing.T) {
	var l EventList
	l.Push(3*time.Second, "c")
	l.Push(1*time.Second, "a")
	l.Push(2*time.Second, "b")
	var got []string
	for ev := l.Pop(); ev != nil; ev = l.Pop() {
		got = append(got, ev.Payload.(string))
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestEventListFIFOTieBreak(t *testing.T) {
	var l EventList
	for i := 0; i < 10; i++ {
		l.Push(time.Second, i)
	}
	for i := 0; i < 10; i++ {
		ev := l.Pop()
		if ev.Payload.(int) != i {
			t.Fatalf("equal-time events popped out of push order: got %d at position %d", ev.Payload, i)
		}
	}
}

func TestEventListPeek(t *testing.T) {
	var l EventList
	if l.Peek() != nil {
		t.Fatal("Peek on empty list should return nil")
	}
	l.Push(time.Second, "x")
	if ev := l.Peek(); ev == nil || ev.Payload != "x" {
		t.Fatalf("Peek = %v, want event x", ev)
	}
	if l.Len() != 1 {
		t.Fatal("Peek must not remove the event")
	}
}

func TestEventListPopEmpty(t *testing.T) {
	var l EventList
	if l.Pop() != nil {
		t.Fatal("Pop on empty list should return nil")
	}
}

// Property: popping all events always yields them in non-decreasing time
// order, regardless of push order.
func TestEventListSortedProperty(t *testing.T) {
	f := func(times []int64) bool {
		var l EventList
		for _, ti := range times {
			if ti < 0 {
				ti = -ti
			}
			l.Push(time.Duration(ti), ti)
		}
		prev := time.Duration(-1)
		for ev := l.Pop(); ev != nil; ev = l.Pop() {
			if ev.At < prev {
				return false
			}
			prev = ev.At
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the event list is a permutation-stable priority queue — the
// multiset of popped times equals the multiset of pushed times.
func TestEventListPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var l EventList
	var pushed []time.Duration
	for i := 0; i < 500; i++ {
		d := time.Duration(rng.Intn(100)) * time.Millisecond
		pushed = append(pushed, d)
		l.Push(d, nil)
	}
	var popped []time.Duration
	for ev := l.Pop(); ev != nil; ev = l.Pop() {
		popped = append(popped, ev.At)
	}
	if len(popped) != len(pushed) {
		t.Fatalf("popped %d events, pushed %d", len(popped), len(pushed))
	}
	sort.Slice(pushed, func(i, j int) bool { return pushed[i] < pushed[j] })
	for i := range pushed {
		if pushed[i] != popped[i] {
			t.Fatalf("multiset mismatch at %d: pushed %v popped %v", i, pushed[i], popped[i])
		}
	}
}
