package disk

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func testParams() Params {
	return Params{
		SeekTime:          8 * time.Millisecond,
		RotationalLatency: 4 * time.Millisecond,
		TransferRate:      100e6, // 100 MB/s per spindle
	}
}

func TestNewArrayValidation(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewArray(%d) did not panic", n)
				}
			}()
			NewArray(n, testParams())
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero transfer rate did not panic")
			}
		}()
		NewArray(1, Params{})
	}()
}

func TestColdReadPaysSeek(t *testing.T) {
	a := NewArray(1, testParams())
	cost := a.Read(0, 100e6) // 100 MB at 100 MB/s = 1 s transfer
	want := 12*time.Millisecond + time.Second
	if cost != want {
		t.Fatalf("cold read cost = %v, want %v", cost, want)
	}
}

func TestSequentialReadSkipsSeek(t *testing.T) {
	a := NewArray(1, testParams())
	a.Read(0, 1000)
	cost := a.Read(1000, 1000) // continues the run
	if cost >= 12*time.Millisecond {
		t.Fatalf("sequential read paid a seek: %v", cost)
	}
	s := a.Snapshot()
	if s.SeqReads != 1 {
		t.Fatalf("SeqReads = %d, want 1", s.SeqReads)
	}
}

func TestRandomReadPaysSeekEachTime(t *testing.T) {
	a := NewArray(1, testParams())
	a.Read(0, 1000)
	a.Read(1<<30, 1000)
	a.Read(0, 1000)
	s := a.Snapshot()
	if s.SeqReads != 0 {
		t.Fatalf("random pattern counted %d sequential reads", s.SeqReads)
	}
	if s.Reads != 3 {
		t.Fatalf("Reads = %d, want 3", s.Reads)
	}
}

func TestStripingSpreadsBandwidth(t *testing.T) {
	one := NewArray(1, testParams())
	four := NewArray(4, testParams())
	c1 := one.Read(0, 8<<20)
	c4 := four.Read(0, 8<<20)
	if c4 >= c1 {
		t.Fatalf("4-way stripe not faster: 1 disk %v vs 4 disks %v", c1, c4)
	}
	// Transfer portion should be ~4x faster; totals include equal seek.
	seek := 12 * time.Millisecond
	t1, t4 := c1-seek, c4-seek
	ratio := float64(t1) / float64(t4)
	if ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("stripe speedup = %.2f, want ~4", ratio)
	}
}

func TestZeroSizeReadFree(t *testing.T) {
	a := NewArray(2, testParams())
	if c := a.Read(0, 0); c != 0 {
		t.Fatalf("zero-size read cost %v", c)
	}
	if s := a.Snapshot(); s.Reads != 0 {
		t.Fatalf("zero-size read counted: %+v", s)
	}
}

func TestStatsAccumulation(t *testing.T) {
	a := NewArray(2, testParams())
	a.Read(0, 1<<20)
	a.Read(StripeUnit, 1<<20) // different spindle
	s := a.Snapshot()
	if s.Reads != 2 || s.Bytes != 2<<20 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BusyTime != s.SeekTime+s.TransferDur {
		t.Fatalf("BusyTime %v != seek %v + transfer %v", s.BusyTime, s.SeekTime, s.TransferDur)
	}
	a.ResetStats()
	if s := a.Snapshot(); s.Reads != 0 {
		t.Fatalf("ResetStats left %+v", s)
	}
}

func TestSpindleIndependence(t *testing.T) {
	// Sequential runs are tracked per spindle: interleaved reads on two
	// spindles can both be sequential.
	a := NewArray(2, testParams())
	a.Read(0, 100)              // spindle 0
	a.Read(StripeUnit, 100)     // spindle 1
	a.Read(100, 100)            // spindle 0, continues
	a.Read(StripeUnit+100, 100) // spindle 1, continues
	if s := a.Snapshot(); s.SeqReads != 2 {
		t.Fatalf("per-spindle sequential detection broken: SeqReads = %d, want 2", s.SeqReads)
	}
}

// Property: cost is monotone in size and always at least the pure
// transfer time.
func TestCostMonotoneInSize(t *testing.T) {
	a := NewArray(4, testParams())
	f := func(sz uint32) bool {
		size := int64(sz%10e6) + 1
		cost := a.Read(1<<40, size) // far address: always a seek
		transfer := time.Duration(float64(size) / (100e6 * 4) * float64(time.Second))
		return cost >= transfer && cost >= 12*time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultParamsSane(t *testing.T) {
	p := DefaultParams()
	if p.SeekTime <= 0 || p.RotationalLatency <= 0 || p.TransferRate <= 0 {
		t.Fatalf("DefaultParams not positive: %+v", p)
	}
	// An 8 MB atom read on a cold 4-disk array should take tens of ms —
	// the T_b scale the paper's Eq. 1 assumes.
	a := NewArray(4, p)
	c := a.Read(0, 8<<20)
	if c < 10*time.Millisecond || c > 200*time.Millisecond {
		t.Fatalf("8 MB atom read cost %v outside plausible T_b range", c)
	}
}

func BenchmarkRead(b *testing.B) {
	a := NewArray(4, DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Read(int64(i)*(8<<20), 8<<20)
	}
}

func TestReadCheckedWithoutHookEqualsRead(t *testing.T) {
	a := NewArray(4, DefaultParams())
	b := NewArray(4, DefaultParams())
	for i := int64(0); i < 8; i++ {
		want := a.Read(i*(8<<20), 8<<20)
		got, err := b.ReadChecked(i*(8<<20), 8<<20)
		if err != nil || got != want {
			t.Fatalf("ReadChecked = %v, %v; want %v, nil", got, err, want)
		}
	}
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Snapshot(), b.Snapshot())
	}
}

func TestReadCheckedInjectsErrorsAndLatency(t *testing.T) {
	a := NewArray(4, DefaultParams())
	boom := errors.New("boom")
	fail := true
	a.SetFault(func(addr, size int64) (time.Duration, error) {
		if fail {
			return 3 * time.Millisecond, boom
		}
		return 7 * time.Millisecond, nil
	})

	cost, err := a.ReadChecked(0, 8<<20)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if cost != 3*time.Millisecond {
		t.Fatalf("failure-detection cost = %v, want 3ms", cost)
	}
	st := a.Snapshot()
	if st.Errors != 1 || st.Reads != 0 || st.FaultDelay != 3*time.Millisecond {
		t.Fatalf("stats after failed read: %+v", st)
	}

	fail = false
	plain := NewArray(4, DefaultParams())
	want := plain.Read(0, 8<<20) + 7*time.Millisecond
	cost, err = a.ReadChecked(0, 8<<20)
	if err != nil || cost != want {
		t.Fatalf("slow read = %v, %v; want %v, nil", cost, err, want)
	}
	st = a.Snapshot()
	if st.Reads != 1 || st.FaultDelay != 10*time.Millisecond {
		t.Fatalf("stats after slow read: %+v", st)
	}

	a.SetFault(nil)
	if _, err := a.ReadChecked(8<<20, 8<<20); err != nil {
		t.Fatalf("cleared hook still injecting: %v", err)
	}
}
