// Package disk simulates the storage subsystem of the Turbulence cluster
// node used in the paper's evaluation: data tables striped across a set of
// four disks in RAID-5 (§VI), with a seek+rotate+transfer cost model.
//
// The simulator returns the virtual-time cost of each read so the
// execution engine can charge it to the virtual clock; it never touches
// real storage. Sequential-run detection rewards Morton-ordered batch
// reads with seek-free transfers, reproducing the I/O behaviour that makes
// data-driven batching profitable.
package disk

import (
	"fmt"
	"sync"
	"time"
)

// Params describe one spindle.
type Params struct {
	// SeekTime is the average cost of a non-sequential repositioning.
	SeekTime time.Duration
	// RotationalLatency is the average half-rotation wait added to seeks.
	RotationalLatency time.Duration
	// TransferRate is the sustained bandwidth in bytes per second.
	TransferRate float64
}

// DefaultParams models a mid-2000s SATA spindle of the kind in the
// evaluation testbed (~8.5 ms seek, 7200 rpm, ~70 MB/s sustained).
func DefaultParams() Params {
	return Params{
		SeekTime:          8500 * time.Microsecond,
		RotationalLatency: 4160 * time.Microsecond, // half of 8.33 ms per rev
		TransferRate:      70e6,
	}
}

// Array is a striped array of identical simulated disks. Reads are mapped
// to spindles by logical block address; RAID-5 parity costs are ignored
// for reads (parity only matters for writes, and the workload is
// read-only), so the array behaves as a 4-way stripe for bandwidth.
type Array struct {
	mu      sync.Mutex
	params  Params
	n       int
	lastEnd []int64 // per-spindle last byte address read, -1 = cold

	stats    Stats
	observer func(addr, size int64, seq bool, cost time.Duration)
	fault    func(addr, size int64) (time.Duration, error)
}

// Stats accumulates I/O accounting for an Array.
type Stats struct {
	Reads       int64         // read operations issued
	SeqReads    int64         // reads that continued a sequential run
	Bytes       int64         // bytes transferred
	BusyTime    time.Duration // total virtual time spent in I/O
	SeekTime    time.Duration // virtual time spent seeking
	TransferDur time.Duration // virtual time spent transferring
	Errors      int64         // reads that failed (injected faults)
	FaultDelay  time.Duration // virtual time added by injected latency
}

// NewArray creates an array of n spindles with the given per-disk
// parameters. n must be positive.
func NewArray(n int, p Params) *Array {
	if n <= 0 {
		panic(fmt.Sprintf("disk: array needs at least one spindle, got %d", n))
	}
	if p.TransferRate <= 0 {
		panic("disk: transfer rate must be positive")
	}
	last := make([]int64, n)
	for i := range last {
		last[i] = -1
	}
	return &Array{params: p, n: n, lastEnd: last}
}

// StripeUnit is the RAID stripe chunk size in bytes.
const StripeUnit = 256 << 10

// Read simulates reading size bytes starting at logical address addr and
// returns the virtual-time cost. A read that begins exactly where the
// spindle's previous read ended skips the seek (a sequential run); any
// other read pays seek plus rotational latency.
func (a *Array) Read(addr int64, size int64) time.Duration {
	if size <= 0 {
		return 0
	}
	a.mu.Lock()

	// Which spindle owns the first stripe unit of this extent. Large atom
	// reads span all spindles; we model the dominant spindle's seek and
	// divide transfer bandwidth across the stripe width.
	spindle := int((addr / StripeUnit) % int64(a.n))

	var seek time.Duration
	seq := a.lastEnd[spindle] == addr
	if seq {
		a.stats.SeqReads++
	} else {
		seek = a.params.SeekTime + a.params.RotationalLatency
	}
	a.lastEnd[spindle] = addr + size

	aggregate := a.params.TransferRate * float64(a.n)
	transfer := time.Duration(float64(size) / aggregate * float64(time.Second))

	a.stats.Reads++
	a.stats.Bytes += size
	a.stats.SeekTime += seek
	a.stats.TransferDur += transfer
	a.stats.BusyTime += seek + transfer
	observer := a.observer
	a.mu.Unlock()

	if observer != nil {
		observer(addr, size, seq, seek+transfer)
	}
	return seek + transfer
}

// ReadChecked is Read behind the fault hook: when a fault injector is
// installed it may fail the read or stretch its latency. On error the
// returned duration is the virtual-time cost of discovering the failure
// (the injector's detection latency), which callers still charge to the
// virtual clock. Without a hook it is exactly Read — the disabled path
// pays one nil check.
func (a *Array) ReadChecked(addr int64, size int64) (time.Duration, error) {
	a.mu.Lock()
	fault := a.fault
	a.mu.Unlock()
	if fault == nil {
		return a.Read(addr, size), nil
	}
	extra, err := fault(addr, size)
	a.mu.Lock()
	a.stats.FaultDelay += extra
	a.stats.BusyTime += extra
	if err != nil {
		a.stats.Errors++
		a.mu.Unlock()
		return extra, err
	}
	a.mu.Unlock()
	return a.Read(addr, size) + extra, nil
}

// SetFault installs (or, with nil, removes) the fault hook consulted by
// ReadChecked before each read. The hook returns extra virtual latency to
// charge and an optional injected error.
func (a *Array) SetFault(fn func(addr, size int64) (time.Duration, error)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.fault = fn
}

// SetObserver registers fn to be called after every read with the extent,
// whether it continued a sequential run, and the charged virtual-time
// cost. The hook runs outside the array lock; nil disables it.
func (a *Array) SetObserver(fn func(addr, size int64, seq bool, cost time.Duration)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.observer = fn
}

// Snapshot returns a copy of the accumulated statistics.
func (a *Array) Snapshot() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// ResetStats clears the accumulated statistics (spindle head positions are
// kept; the data layout does not change between experiment phases).
func (a *Array) ResetStats() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats = Stats{}
}

// Spindles reports the stripe width.
func (a *Array) Spindles() int { return a.n }
