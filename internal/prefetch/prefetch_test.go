package prefetch

import (
	"math/rand"
	"testing"

	"jaws/internal/geom"
	"jaws/internal/query"
	"jaws/internal/store"
)

func testSpace() geom.Space { return geom.Space{GridSide: 128, AtomSide: 32} }

// cloudQuery builds a query of n points jittered around center.
func cloudQuery(step int, center geom.Position, n int, sigma float64, seed int64) *query.Query {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Position, n)
	for i := range pts {
		pts[i] = geom.Wrap(geom.Position{
			X: center.X + rng.NormFloat64()*sigma,
			Y: center.Y + rng.NormFloat64()*sigma,
			Z: center.Z + rng.NormFloat64()*sigma,
		})
	}
	return &query.Query{ID: 1, Step: step, Points: pts}
}

func TestPredictNeedsHistory(t *testing.T) {
	p := New(testSpace())
	if got := p.Predict(1); got != nil {
		t.Fatalf("prediction with no history: %v", got)
	}
	p.Observe(1, cloudQuery(0, geom.Position{X: 1, Y: 1, Z: 1}, 20, 0.05, 1))
	if got := p.Predict(1); got != nil {
		t.Fatalf("prediction with one observation: %v", got)
	}
}

func TestPredictLinearDrift(t *testing.T) {
	sp := testSpace()
	p := New(sp)
	// A job drifting +0.4 in x per query, stepping +1 per query.
	c0 := geom.Position{X: 1.0, Y: 2.0, Z: 3.0}
	c1 := geom.Position{X: 1.4, Y: 2.0, Z: 3.0}
	c2 := geom.Position{X: 1.8, Y: 2.0, Z: 3.0} // the true next center
	p.Observe(7, cloudQuery(3, c0, 30, 0.05, 1))
	p.Observe(7, cloudQuery(4, c1, 30, 0.05, 2))
	got := p.Predict(7)
	if len(got) == 0 {
		t.Fatal("no prediction")
	}
	want := store.AtomID{Step: 5, Code: sp.AtomOf(c2).Code()}
	if got[0] != want {
		t.Fatalf("predicted %v, want %v first", got[0], want)
	}
}

func TestPredictStationaryJob(t *testing.T) {
	sp := testSpace()
	p := New(sp)
	c := geom.Position{X: 4, Y: 4, Z: 4}
	p.Observe(2, cloudQuery(5, c, 30, 0.05, 1))
	p.Observe(2, cloudQuery(5, c, 30, 0.05, 2))
	got := p.Predict(2)
	if len(got) == 0 {
		t.Fatal("no prediction")
	}
	if got[0].Step != 5 {
		t.Fatalf("stationary job predicted step %d, want 5", got[0].Step)
	}
	if got[0].Code != sp.AtomOf(c).Code() {
		t.Fatalf("stationary job predicted wrong atom")
	}
}

func TestPredictAcrossPeriodicBoundary(t *testing.T) {
	sp := testSpace()
	p := New(sp)
	// Drift crosses the domain seam: x = 6.0 → 6.2 → (wraps past 2π≈6.283).
	p.Observe(3, cloudQuery(0, geom.Position{X: 6.0, Y: 1, Z: 1}, 30, 0.03, 1))
	p.Observe(3, cloudQuery(1, geom.Position{X: 6.2, Y: 1, Z: 1}, 30, 0.03, 2))
	got := p.Predict(3)
	if len(got) == 0 {
		t.Fatal("no prediction")
	}
	wantAtom := sp.AtomOf(geom.Position{X: 6.4, Y: 1, Z: 1}) // wraps to ≈0.12
	if got[0].Code != wantAtom.Code() {
		t.Fatalf("periodic drift predicted %v, want %v", got[0], wantAtom)
	}
}

func TestPredictSpreadWidensFootprint(t *testing.T) {
	sp := testSpace()
	p := New(sp)
	// A wide cloud centred on an atom corner must predict several atoms.
	corner := geom.Position{X: 1.57, Y: 1.57, Z: 1.57} // atomLen ≈ 1.57 at this scale
	p.Observe(9, cloudQuery(0, corner, 200, 0.3, 1))
	p.Observe(9, cloudQuery(1, corner, 200, 0.3, 2))
	got := p.Predict(9)
	if len(got) < 2 {
		t.Fatalf("wide cloud predicted %d atoms, want several", len(got))
	}
}

func TestPredictionAccuracyOnDriftingJob(t *testing.T) {
	// End-to-end: predictions must cover the majority of atoms the next
	// query actually touches, for a drifting job over many steps.
	sp := testSpace()
	p := New(sp)
	center := geom.Position{X: 2, Y: 2, Z: 2}
	vel := geom.Position{X: 0.15, Y: -0.1, Z: 0.05}
	var hits, total int
	for i := 0; i < 20; i++ {
		q := cloudQuery(i, center, 40, 0.08, int64(i))
		if pred := p.Predict(1); i >= 2 {
			predicted := make(map[store.AtomID]bool, len(pred))
			for _, id := range pred {
				predicted[id] = true
			}
			for id := range query.Atoms(q, sp) {
				total++
				if predicted[id] {
					hits++
				}
			}
		}
		p.Observe(1, q)
		center = geom.Wrap(geom.Position{X: center.X + vel.X, Y: center.Y + vel.Y, Z: center.Z + vel.Z})
	}
	if total == 0 {
		t.Fatal("no atoms evaluated")
	}
	if cov := float64(hits) / float64(total); cov < 0.6 {
		t.Fatalf("prediction coverage %.2f, want ≥ 0.6", cov)
	}
}

func TestForget(t *testing.T) {
	p := New(testSpace())
	p.Observe(1, cloudQuery(0, geom.Position{X: 1, Y: 1, Z: 1}, 10, 0.05, 1))
	p.Observe(1, cloudQuery(1, geom.Position{X: 1, Y: 1, Z: 1}, 10, 0.05, 2))
	if p.Jobs() != 1 {
		t.Fatalf("Jobs = %d", p.Jobs())
	}
	p.Forget(1)
	if p.Jobs() != 0 {
		t.Fatal("Forget did not drop the job")
	}
	if p.Predict(1) != nil {
		t.Fatal("prediction after Forget")
	}
}

func TestObserveEmptyQueryIgnored(t *testing.T) {
	p := New(testSpace())
	p.Observe(1, &query.Query{ID: 1, Step: 0})
	if p.Jobs() != 0 {
		t.Fatal("empty query recorded")
	}
}
