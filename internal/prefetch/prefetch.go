// Package prefetch implements the trajectory extrapolation sketched in
// the paper's discussion (§VII): "we can extrapolate the trajectory of
// jobs in time and space (i.e. the velocity of the bounding box or time
// step delta between consecutive queries) to predict which data atoms are
// accessed by subsequent queries" and pre-fetch them to mask page faults.
//
// The predictor watches each ordered job's completed queries, estimates
// the drift velocity of the query cloud's centroid and the step delta
// between consecutive queries, and predicts the atom footprint of the
// next query. The engine fetches predicted atoms during the job's think
// time, when the scientist is computing the next positions outside the
// database and the job holds no I/O.
package prefetch

import (
	"math"

	"jaws/internal/geom"
	"jaws/internal/query"
	"jaws/internal/store"
)

// observation summarizes one completed query of a job.
type observation struct {
	step     int
	centroid geom.Position
	spread   float64 // RMS distance of points from the centroid
}

// Predictor extrapolates per-job query trajectories.
type Predictor struct {
	space geom.Space
	hist  map[int64][2]observation // previous and latest observation
	seen  map[int64]int            // observations so far per job
}

// New creates a predictor for the given geometry.
func New(space geom.Space) *Predictor {
	return &Predictor{
		space: space,
		hist:  make(map[int64][2]observation),
		seen:  make(map[int64]int),
	}
}

// Observe records a completed query of job jobID.
func (p *Predictor) Observe(jobID int64, q *query.Query) {
	if len(q.Points) == 0 {
		return
	}
	ob := summarize(q)
	h := p.hist[jobID]
	h[0] = h[1]
	h[1] = ob
	p.hist[jobID] = h
	p.seen[jobID]++
}

// summarize computes the centroid and spread of a query's point cloud.
// The centroid of a periodic cloud is computed by unwrapping every point
// to the copy nearest the first point — valid for clouds much smaller
// than the box, which query clouds are.
func summarize(q *query.Query) observation {
	ref := geom.Wrap(q.Points[0])
	var sx, sy, sz float64
	unwrapped := make([]geom.Position, len(q.Points))
	for i, raw := range q.Points {
		pt := geom.Wrap(raw)
		pt = geom.Position{
			X: ref.X + wrapDelta(pt.X-ref.X),
			Y: ref.Y + wrapDelta(pt.Y-ref.Y),
			Z: ref.Z + wrapDelta(pt.Z-ref.Z),
		}
		unwrapped[i] = pt
		sx += pt.X
		sy += pt.Y
		sz += pt.Z
	}
	n := float64(len(q.Points))
	c := geom.Position{X: sx / n, Y: sy / n, Z: sz / n}
	var s2 float64
	for _, pt := range unwrapped {
		dx, dy, dz := pt.X-c.X, pt.Y-c.Y, pt.Z-c.Z
		s2 += dx*dx + dy*dy + dz*dz
	}
	return observation{step: q.Step, centroid: geom.Wrap(c), spread: math.Sqrt(s2 / n)}
}

// wrapDelta maps a coordinate difference into (−L/2, L/2] (minimum image).
func wrapDelta(d float64) float64 {
	d = math.Mod(d, geom.DomainSide)
	switch {
	case d > geom.DomainSide/2:
		d -= geom.DomainSide
	case d < -geom.DomainSide/2:
		d += geom.DomainSide
	}
	return d
}

// Predict returns the atoms the job's next query is likely to touch, most
// probable first, or nil when the job has too little history (fewer than
// two observations).
func (p *Predictor) Predict(jobID int64) []store.AtomID {
	if p.seen[jobID] < 2 {
		return nil
	}
	h := p.hist[jobID]
	prev, last := h[0], h[1]

	stepDelta := last.step - prev.step
	nextStep := last.step + stepDelta
	if nextStep < 0 {
		nextStep = 0
	}
	vel := geom.Position{
		X: wrapDelta(last.centroid.X - prev.centroid.X),
		Y: wrapDelta(last.centroid.Y - prev.centroid.Y),
		Z: wrapDelta(last.centroid.Z - prev.centroid.Z),
	}
	next := geom.Wrap(geom.Position{
		X: last.centroid.X + vel.X,
		Y: last.centroid.Y + vel.Y,
		Z: last.centroid.Z + vel.Z,
	})

	// Enumerate atoms within the cloud's spread of the predicted
	// centroid: the centroid's atom first, then the face neighbours the
	// cloud plausibly spills into.
	radiusVox := int(math.Ceil(last.spread / p.space.VoxelSize()))
	coords := p.space.Footprint(next, radiusVox)
	out := make([]store.AtomID, 0, len(coords))
	for _, ac := range coords {
		out = append(out, store.AtomID{Step: nextStep, Code: ac.Code()})
	}
	return out
}

// Forget drops a completed job's history.
func (p *Predictor) Forget(jobID int64) {
	delete(p.hist, jobID)
	delete(p.seen, jobID)
}

// Jobs reports how many jobs are currently tracked.
func (p *Predictor) Jobs() int { return len(p.hist) }
