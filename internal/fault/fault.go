// Package fault is the deterministic fault model of the simulated
// Turbulence cluster: a seeded injector that imposes transient and
// permanent disk read errors, latency spikes, cache corruption (checksum
// mismatch on atom payloads) and whole-node crashes at chosen virtual
// times.
//
// Determinism contract: given the same Spec, seed and node index, an
// injector driven by the same sequence of operations at the same virtual
// times makes exactly the same decisions. All randomness comes from one
// seeded generator consumed in operation order, and all time windows are
// evaluated against the owning engine's virtual clock — never wall time —
// so a run with faults replays bit-for-bit.
//
// Zero-overhead-when-disabled contract (mirroring internal/obs): every
// method on *Injector is nil-safe. Hot paths hold a possibly-nil pointer
// and pay one nil check when fault injection is off.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Sentinel errors injected into the storage path. The engine retries
// reads failing with ErrDiskTransient and aborts on ErrDiskPermanent.
var (
	ErrDiskTransient = errors.New("transient disk read error (injected)")
	ErrDiskPermanent = errors.New("permanent disk read error (injected)")
)

// IsTransient reports whether err is a retryable injected disk error.
func IsTransient(err error) bool { return errors.Is(err, ErrDiskTransient) }

// NodeCrashError is returned by an engine run whose node was crashed by
// the injector. The cluster layer uses it to trigger failover.
type NodeCrashError struct {
	Node int
	At   time.Duration // virtual time of death
}

// Error renders the crash.
func (e *NodeCrashError) Error() string {
	return fmt.Sprintf("fault: node %d crashed at virtual time %v", e.Node, e.At)
}

// Counts tallies the faults an injector actually imposed.
type Counts struct {
	Transient int64 // transient disk errors injected
	Permanent int64 // permanent disk errors injected
	Slow      int64 // latency spikes injected
	Corrupt   int64 // cache payloads corrupted
}

// Injector imposes the faults of a Spec on one node. Not safe for
// concurrent use: each node's engine owns its injector, matching the
// single-threaded discrete-event loop. A nil *Injector disables all
// injection.
type Injector struct {
	node   int
	rng    *rand.Rand
	now    func() time.Duration
	disk   []Rule // DiskTransient / DiskPermanent / DiskSlow, in spec order
	hits   []Rule // CacheCorrupt rules, in spec order
	crash  time.Duration
	hasCr  bool
	counts Counts
}

// New builds the injector for one node of the cluster (node 0 for a
// single-node system). Rules targeting other nodes are dropped; if none
// remain, New returns nil so the disabled path stays a single nil check.
// The same (spec, seed, node) triple always yields an identical injector.
func New(spec Spec, seed int64, node int) *Injector {
	in := &Injector{node: node}
	for _, r := range spec.Rules {
		if r.Node >= 0 && r.Node != node {
			continue
		}
		switch r.Kind {
		case DiskTransient, DiskPermanent, DiskSlow:
			in.disk = append(in.disk, r)
		case CacheCorrupt:
			in.hits = append(in.hits, r)
		case Crash:
			if !in.hasCr || r.At < in.crash {
				in.crash, in.hasCr = r.At, true
			}
		}
	}
	if len(in.disk) == 0 && len(in.hits) == 0 && !in.hasCr {
		return nil
	}
	// Mix the node index into the seed (splitmix-style) so nodes draw
	// independent but reproducible streams.
	mixed := int64(uint64(seed) ^ (uint64(node)+1)*0x9e3779b97f4a7c15)
	in.rng = rand.New(rand.NewSource(mixed))
	return in
}

// BindClock attaches the owning engine's virtual clock. Rules with time
// windows are inactive until a clock is bound. Nil-safe no-op.
func (in *Injector) BindClock(now func() time.Duration) {
	if in == nil {
		return
	}
	in.now = now
}

// Node reports which node this injector targets (0 for a nil injector).
func (in *Injector) Node() int {
	if in == nil {
		return 0
	}
	return in.node
}

// vnow reads the bound virtual clock (zero when unbound).
func (in *Injector) vnow() time.Duration {
	if in.now == nil {
		return 0
	}
	return in.now()
}

// active reports whether the rule's [After, Until) window covers now.
func (r *Rule) active(now time.Duration) bool {
	if now < r.After {
		return false
	}
	return r.Until == 0 || now < r.Until
}

// DiskRead decides the fate of one disk read of size bytes at address
// addr. It returns extra virtual latency to charge (an injected latency
// spike, or the failure-detection cost of an injected error) and the
// injected error, if any. Nil-safe: a nil injector never injects.
func (in *Injector) DiskRead(addr, size int64) (time.Duration, error) {
	if in == nil || len(in.disk) == 0 {
		return 0, nil
	}
	now := in.vnow()
	var extra time.Duration
	for i := range in.disk {
		r := &in.disk[i]
		if !r.active(now) || in.rng.Float64() >= r.P {
			continue
		}
		switch r.Kind {
		case DiskTransient:
			in.counts.Transient++
			return extra + r.Extra, fmt.Errorf("fault: read of %d bytes at %d: %w", size, addr, ErrDiskTransient)
		case DiskPermanent:
			in.counts.Permanent++
			return extra + r.Extra, fmt.Errorf("fault: read of %d bytes at %d: %w", size, addr, ErrDiskPermanent)
		case DiskSlow:
			in.counts.Slow++
			extra += r.Extra
		}
	}
	return extra, nil
}

// CorruptHit decides whether a cache hit's payload fails its checksum at
// the current virtual time. The cache drops a corrupted entry and reports
// a miss, so the engine re-reads the atom from disk. Nil-safe.
func (in *Injector) CorruptHit() bool {
	if in == nil || len(in.hits) == 0 {
		return false
	}
	now := in.vnow()
	for i := range in.hits {
		r := &in.hits[i]
		if r.active(now) && in.rng.Float64() < r.P {
			in.counts.Corrupt++
			return true
		}
	}
	return false
}

// CrashAt returns the virtual time at which this node dies, if a crash is
// scheduled. Nil-safe: a nil injector never crashes.
func (in *Injector) CrashAt() (time.Duration, bool) {
	if in == nil {
		return 0, false
	}
	return in.crash, in.hasCr
}

// Counts returns the faults injected so far (zero for a nil injector).
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	return in.counts
}
