package fault

import "testing"

// FuzzParseSpec hammers the spec parser with arbitrary strings: it must
// never panic, and anything it accepts must render (String) back into a
// spec it accepts again with identical rules.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("disk-transient:p=0.05,until=30s")
	f.Add("crash@1:at=5s;disk-slow:p=0.1,extra=50ms")
	f.Add("corrupt:p=0.01,after=10s;disk-permanent@3:p=0.001")
	f.Add("disk-transient:p=;;crash@@1")
	f.Add("crash:at=9999999999999h")
	f.Add("disk-slow:p=1,extra=1ns,extra=2ns")

	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", s, spec.String(), err)
		}
		if len(again.Rules) != len(spec.Rules) {
			t.Fatalf("round trip changed rule count: %q -> %q", s, spec.String())
		}
		for i := range spec.Rules {
			if again.Rules[i] != spec.Rules[i] {
				t.Fatalf("round trip changed rule %d: %+v vs %+v", i, spec.Rules[i], again.Rules[i])
			}
		}
		for _, r := range spec.Rules {
			if r.Kind != Crash && !(r.P > 0 && r.P <= 1) {
				t.Fatalf("accepted out-of-range probability %g in %q", r.P, s)
			}
		}
	})
}
