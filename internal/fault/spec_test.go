package fault

import (
	"strings"
	"testing"
	"time"
)

func TestParseSpecBasics(t *testing.T) {
	spec, err := ParseSpec("disk-transient:p=0.05,until=30s; crash@1:at=5s ;disk-slow:p=0.1,extra=50ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(spec.Rules))
	}
	r := spec.Rules[0]
	if r.Kind != DiskTransient || r.P != 0.05 || r.Until != 30*time.Second || r.Node != -1 {
		t.Fatalf("bad transient rule: %+v", r)
	}
	r = spec.Rules[1]
	if r.Kind != Crash || r.Node != 1 || r.At != 5*time.Second {
		t.Fatalf("bad crash rule: %+v", r)
	}
	r = spec.Rules[2]
	if r.Kind != DiskSlow || r.Extra != 50*time.Millisecond {
		t.Fatalf("bad slow rule: %+v", r)
	}
}

func TestParseSpecEmpty(t *testing.T) {
	for _, s := range []string{"", "  ", ";", " ; "} {
		spec, err := ParseSpec(s)
		if err != nil || !spec.Empty() {
			t.Fatalf("ParseSpec(%q) = %+v, %v; want empty, nil", s, spec, err)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := map[string]string{
		"frobnicate:p=0.5":             "unknown fault kind",
		"disk-transient":               "needs p",
		"disk-transient:p=0":           "needs p",
		"disk-transient:p=1.5":         "needs p",
		"disk-transient:p=0.5,at=3s":   "does not take at",
		"crash:p=0.5,at=1s":            "does not take p",
		"crash":                        "needs at",
		"crash@x:at=1s":                "bad node",
		"crash@-2:at=1s":               "bad node",
		"disk-slow:p=0.5":              "needs extra",
		"corrupt:p=0.5,p=0.6":          "duplicate parameter",
		"corrupt:p":                    "not key=value",
		"corrupt:p=0.5,zap=1":          "unknown parameter",
		"corrupt:p=0.5,after=2s,until=1s": "empty window",
		"crash:at=-1s":                 "negative duration",
		"crash:at=bogus":               "parameter at",
	}
	for in, want := range bad {
		_, err := ParseSpec(in)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
		} else if !strings.Contains(err.Error(), want) {
			t.Errorf("ParseSpec(%q) = %v, want mention of %q", in, err, want)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	in := "disk-transient:p=0.05,after=1s,until=30s,extra=2ms;disk-permanent@3:p=0.001;crash@1:at=5s;corrupt:p=0.01;disk-slow:p=0.1,extra=50ms"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", spec.String(), err)
	}
	if len(again.Rules) != len(spec.Rules) {
		t.Fatalf("round trip lost rules: %q", spec.String())
	}
	for i := range spec.Rules {
		if again.Rules[i] != spec.Rules[i] {
			t.Fatalf("rule %d changed: %+v vs %+v", i, spec.Rules[i], again.Rules[i])
		}
	}
}
